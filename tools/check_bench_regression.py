#!/usr/bin/env python3
"""Soft throughput-regression guard for the R-F18 hot-path benchmark.

Reads a freshly produced f18_hotpath.csv and the committed baseline and
applies three checks:

  1. Equivalence (hard): within the fresh run, the `checksum` and
     `emissions` columns must agree between the legacy and hot engines for
     every (aggregate, shape, batch) configuration. The benchmark doubles
     as an end-to-end equivalence witness; a mismatch means the hot engine
     changed results, not just speed.
  2. Devirtualization win (hard): on the sliding shapes (fold fanout > 1)
     the hot engine must stay clearly faster than the legacy engine
     measured in the SAME run -- machine-independent, so it is safe to
     enforce on shared CI runners. The bound is deliberately loose
     (hot <= 0.8 * legacy; real ratios are 0.05-0.4).
  3. Baseline drift (soft): hot-engine ns/tuple beyond DRIFT_FACTOR x the
     committed baseline prints a warning (GitHub annotation) but does not
     fail the job -- absolute timings are machine-dependent.

Exit status: 1 on a hard-check failure, 0 otherwise.

Usage: check_bench_regression.py --current CSV [--baseline CSV]
"""

import argparse
import csv
import sys

RELATIVE_BOUND = 0.8  # hot must be <= this fraction of legacy (sliding).
DRIFT_FACTOR = 1.5    # soft warning threshold vs. committed baseline.

# Kinds with inline AggregateState folds. Heavy kinds (median/quantile/
# distinct) keep the polymorphic accumulator, so their hot-engine win is
# only the flat store -- too small to enforce a ratio on.
INLINE_AGGS = {"count", "sum", "mean", "min", "max", "variance", "stddev"}


def load(path):
    rows = {}
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            key = (row["aggregate"], row["shape"], row["batch"],
                   row["engine"])
            rows[key] = row
    return rows


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--current", required=True)
    parser.add_argument("--baseline")
    args = parser.parse_args()

    current = load(args.current)
    configs = sorted({k[:3] for k in current})
    failures = []
    warnings = []

    for agg, shape, batch in configs:
        legacy = current.get((agg, shape, batch, "legacy"))
        hot = current.get((agg, shape, batch, "hot"))
        if legacy is None or hot is None:
            failures.append(
                f"{agg}/{shape}/batch={batch}: missing engine row")
            continue

        # 1. Equivalence: same emissions, same checksum, bit for bit as
        # printed (3 decimal places is far inside the bitwise guarantee the
        # unit tests pin; the CSV check catches gross divergence).
        for col in ("emissions", "checksum"):
            if legacy[col] != hot[col]:
                failures.append(
                    f"{agg}/{shape}/batch={batch}: {col} mismatch "
                    f"legacy={legacy[col]} hot={hot[col]}")

        # 2. Relative speed on overlapping windows, same machine same run.
        if shape.startswith("sliding") and agg in INLINE_AGGS:
            l_ns = float(legacy["ns_per_tuple"])
            h_ns = float(hot["ns_per_tuple"])
            if h_ns > l_ns * RELATIVE_BOUND:
                failures.append(
                    f"{agg}/{shape}/batch={batch}: hot {h_ns:.2f} ns/tuple "
                    f"vs legacy {l_ns:.2f} (bound {RELATIVE_BOUND}x)")

    # 3. Soft drift vs. committed baseline.
    if args.baseline:
        baseline = load(args.baseline)
        for key, row in current.items():
            if key[3] != "hot":
                continue
            base = baseline.get(key)
            if base is None:
                continue
            cur_ns = float(row["ns_per_tuple"])
            base_ns = float(base["ns_per_tuple"])
            if cur_ns > base_ns * DRIFT_FACTOR:
                warnings.append(
                    f"{'/'.join(key[:3])}: hot {cur_ns:.2f} ns/tuple vs "
                    f"baseline {base_ns:.2f} ({cur_ns / base_ns:.2f}x)")

    for w in warnings:
        print(f"::warning title=bench_f18 drift::{w}")
    for f in failures:
        print(f"::error title=bench_f18 regression::{f}")
    print(f"checked {len(configs)} configurations: "
          f"{len(failures)} hard failure(s), {len(warnings)} drift warning(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
