#!/usr/bin/env python3
"""Soft throughput-regression guard for the R-F18..R-F24 benchmarks.

Reads a freshly produced benchmark CSV (f18_hotpath.csv, f19_disorder.csv,
f20_degradation.csv, f21_runtime.csv, f22_service.csv, f23_amend.csv or
f24_scheduler.csv, auto-detected from the header) plus the committed
baseline and applies per-suite checks:

R-F18 (window-operator hot path):
  1. Equivalence (hard): `checksum` and `emissions` must agree between the
     legacy and hot engines for every (aggregate, shape, batch)
     configuration. The benchmark doubles as an end-to-end equivalence
     witness; a mismatch means the hot engine changed results, not speed.
  2. Devirtualization win (hard): on sliding shapes (fold fanout > 1) the
     hot engine must stay clearly faster than legacy measured in the SAME
     run -- machine-independent, so safe on shared CI runners. The bound
     is deliberately loose (hot <= 0.8 * legacy; real ratios 0.05-0.4).

R-F19 (disorder-stage layout):
  1. Equivalence (hard): `checksum` must agree between the heap and ring
     engines for every (section, config) -- identical released-event
     sequences are the PR's core guarantee.
  2. Ring win (hard): in the buffer section at occupancies >= 1e4 the ring
     engine must beat the heap by RING_BUFFER_BOUND in the same run (real
     ratios are 6-36x; the heap's per-tuple cost is O(log n) there).
  3. Batch win (hard): on the deep keyed rows, the run-segmented OnBatch
     ring row must not be slower than the per-event ring row. The full
     >= 1.3x target is a soft warning (the margin is real but modest, and
     shared runners are noisy).

R-F20 (bounded-memory degradation):
  1. Memory bound (hard): every capped row's max_buffer must be <= cap.
     The cap is the PR's contract; exceeding it means shedding leaks.
  2. Cap overhead (hard): in the overhead section the never-binding cap
     must cost <= OVERHEAD_BOUND x the uncapped run measured in the SAME
     run (interleaved min-of-N, so the pair is machine-comparable), with
     identical checksums (a non-binding cap must not change output).
  3. Shed accounting (hard): in the shed section every capped policy row
     must actually shed (shed + forced > 0 -- the config is built so the
     cap binds; zero means the cap silently stopped applying), and the
     uncapped reference must shed nothing.

R-F21 (extreme-scale runtime):
  1. Equivalence (hard): within every compared group -- feed arena/malloc
     per batch size, pipeline arena/malloc, mpsc p1/p2/p4, skew
     static/rebalance per config -- `checksum` must be identical. All the
     runtime switches (arena, MPSC feed, rebalancing) are performance
     switches, never semantic ones.
  2. Arena win (hard): on the smallest-batch feed row the arena must be
     >= F21_ARENA_TARGET x the malloc path in the same run (per-batch
     allocation dominates there); larger batches must never invert beyond
     F21_NO_INVERSION.
  3. MPSC scaling (hard): with 2 producers the throttled-feed run must be
     >= F21_MPSC_TARGET x the single-producer run in the same run; p4
     falling behind p2 is a soft warning (it is overhead-bound).
  4. Rebalance win (hard): on the sink-latency skew config the static
     placement must cost >= F21_SKEW_TARGET x the rebalanced run, and the
     rebalanced row must report migrations > 0. On the pure-cpu config the
     rebalancer's bookkeeping staying within F21_REBALANCE_TAX of static
     is a soft warning check.

R-F22 (service path: server + load generator over loopback):
  1. Determinism (hard): the combined per-tenant result checksum must be
     identical across every client count (single writer per tenant =>
     byte-identical streams), every row's accounting identity must hold,
     delivery must be exact and errors zero.
  2. Scaling (hard): 4 paced client connections must reach >=
     F22_SCALING_TARGET x the throughput of 1 in the same run -- the
     pacing sleeps overlap, so this holds even on a single core. 8 falling
     behind 4 is a soft warning.

R-F23 (amend engine + speculative emit-then-amend):
  1. Final-answer identity (hard): `final_checksum` must agree across all
     three modes (hot-buffered, amend-buffered, amend-speculative) of
     every (workload, kind) group -- the last revision per window is the
     PR's correctness contract, however many provisional emissions the
     speculative run published on the way.
  2. Latency win (hard): on speculative rows where >= F23_LATE_GATE of
     tuples arrived behind the output watermark, first-emission p50 must
     be <= F23_LATENCY_BOUND x the hot-buffered settle p50 in the SAME
     run. Emitting provisionally then amending must actually buy latency,
     or the mode has no reason to exist.
  3. Store overhead (soft): amend-buffered exceeding F23_STORE_TAX x
     hot-buffered ns/tuple on the in-order path prints a warning -- the
     B-tree's amend capability should be close to free when unused.

R-F24 (pull-based scheduler):
  1. Equivalence (hard): within every section all modes -- steal
     static/steal/steal+rebal, the fixed-batch sweep plus adaptive, numa
     flat/numa -- must produce identical `checksum`s. The scheduler
     switches are performance switches, never semantic ones.
  2. Steal win (hard): on the sink-latency colocated-skew config the
     static placement must cost >= F24_STEAL_TARGET x the stealing run in
     the same run, the stealing run must report steals > 0, and the
     steal+rebalance composition must hold the same bar.
  3. Adaptive batch (hard): the PI controller's throughput must land
     within F24_ADAPTIVE_TAX of the best fixed batch size in the same
     run, without being told which size that is.
  4. NUMA tax (soft): per-node arena pools exceeding F24_NUMA_TAX x the
     flat arena's wall clock prints a warning (single-node hosts degrade
     the set to one pool, so this is bookkeeping overhead only).

R-F25 (resilience: chaos transport, idempotent replay, admission control):
  1. Exactly-once under faults (hard): the combined per-tenant result
     checksum must be identical across EVERY row -- fault-free, 1% and 5%
     chaos, throttled, and chaos-plus-throttled runs all converge to
     byte-identical results -- with errors zero, accounting identities
     holding and delivery exact in every row. Every row must also report
     replayed == deduped: a retransmit the server applied instead of
     suppressing would break checksum identity silently on some future
     workload even if it happened to be harmless here.
  2. Chaos is real (hard): every row with fault_pct > 0 must report
     faults > 0 (the seeded schedule actually fired), the 5% chaos row
     must inject more faults than the 1% row, and the 5% rows must
     report replayed > 0 -- ack-side faults force genuine retransmits, so
     a zero means the dedup path silently stopped being exercised.
  3. Quotas hold exactly (hard): a token bucket admitting at rate R with
     burst B cannot accept N events per tenant in less than (N - B) / R
     seconds, so every quota row must satisfy wall >= F25_QUOTA_SLACK x
     that bound and report throttled > 0: admission control genuinely
     stretched the run.

All suites: baseline drift (soft) -- fast-engine ns/tuple (f21: keps)
beyond DRIFT_FACTOR x the committed baseline prints a GitHub warning
annotation but does not fail the job; absolute timings are
machine-dependent.

Exit status: 1 on a hard-check failure, 0 otherwise.

Usage: check_bench_regression.py --current CSV [--baseline CSV]
"""

import argparse
import csv
import sys

RELATIVE_BOUND = 0.8  # f18: hot must be <= this fraction of legacy (sliding).
DRIFT_FACTOR = 1.5    # soft warning threshold vs. committed baseline.

# f19: ring must be <= heap/1.5 on deep buffers, and batch ingestion should
# be >= 1.3x per-event on the deep keyed rows (soft).
RING_BUFFER_BOUND = 1.0 / 1.5
RING_BUFFER_GATED_SIZES = {"size=1e4", "size=1e5", "size=1e6"}
KEYED_BATCH_TARGET = 1.3
KEYED_DEEP_PAIR = ("bursty16-deep-perevent", "bursty16-deep-batch256")

# f20: a never-binding cap may cost at most 2% over the uncapped hot path.
OVERHEAD_BOUND = 1.02

# f21: same-run relative targets (machine-independent). The arena target is
# gated on the smallest feed batch (observed ~1.5x); the MPSC target on the
# 2-producer row (observed ~1.9x); the skew target on the sink-latency
# config (observed ~2x). No-inversion bounds leave noise headroom.
F21_ARENA_TARGET = 1.3
F21_MPSC_TARGET = 1.3
F21_SKEW_TARGET = 1.2
F21_NO_INVERSION = 0.95   # arena >= 0.95x malloc on non-gated batches.
F21_REBALANCE_TAX = 1.15  # soft: pure-cpu rebalance <= 1.15x static.

# f22: 4 paced clients vs 1 over loopback — the sleeps overlap, so the
# observed ratio is ~4x; 1.3x leaves room for loaded runners. Tail-latency
# drift against the baseline is machine-dependent, warning only.
F22_SCALING_TARGET = 1.3
F22_P99_DRIFT = 3.0

# f24: same-run relative targets. The steal target mirrors the f21 skew
# target — both schedulers attack the same colocated-hot-shard case, so
# demand-driven stealing must match the rebalancer's bar (observed ~2.2x).
# The adaptive controller must land within 10% of the best fixed batch
# size without being told which one it is. The NUMA arena bookkeeping
# staying near the flat arena is a soft check (single-node CI degrades it
# to one pool).
F24_STEAL_TARGET = 1.2
F24_ADAPTIVE_TAX = 1.1
F24_NUMA_TAX = 1.2  # soft: numa <= 1.2x flat wall on a single node.

# f23: the speculative mode's first emission must halve the buffered
# settle latency wherever disorder is material (>= 10% of tuples arrive
# behind the speculative watermark); observed ratios are 0.01-0.15x. The
# amend store costing more than 1.5x the flat store on the in-order path
# is a soft warning (observed ~1x either way).
F23_LATENCY_BOUND = 0.5
F23_LATE_GATE = 0.10
F23_STORE_TAX = 1.5

# f25: the wall-clock floor a correct token bucket imposes is exact
# ((events/tenant - burst) / rate); the slack only absorbs timer
# granularity, since the measured wall starts before the first send.
F25_QUOTA_SLACK = 0.95

# Kinds with inline AggregateState folds. Heavy kinds (median/quantile/
# distinct) keep the polymorphic accumulator, so their hot-engine win is
# only the flat store -- too small to enforce a ratio on.
INLINE_AGGS = {"count", "sum", "mean", "min", "max", "variance", "stddev"}


def load(path, key_cols):
    rows = {}
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            rows[tuple(row[c] for c in key_cols)] = row
    return rows


def sniff_suite(path):
    with open(path, newline="") as f:
        header = next(csv.reader(f))
    if "amend_rate" in header:
        return "f23"
    if "fault_pct" in header:  # before f22: both carry clients.
        return "f25"
    if "clients" in header:
        return "f22"
    if "batch_end" in header:  # before f21: both carry vshards.
        return "f24"
    if "vshards" in header:
        return "f21"
    if "policy" in header:
        return "f20"
    return "f19" if "section" in header else "f18"


def check_f18(args):
    key_cols = ("aggregate", "shape", "batch", "engine")
    current = load(args.current, key_cols)
    configs = sorted({k[:3] for k in current})
    failures = []
    warnings = []

    for agg, shape, batch in configs:
        legacy = current.get((agg, shape, batch, "legacy"))
        hot = current.get((agg, shape, batch, "hot"))
        if legacy is None or hot is None:
            failures.append(
                f"{agg}/{shape}/batch={batch}: missing engine row")
            continue

        # 1. Equivalence: same emissions, same checksum, bit for bit as
        # printed (3 decimal places is far inside the bitwise guarantee the
        # unit tests pin; the CSV check catches gross divergence).
        for col in ("emissions", "checksum"):
            if legacy[col] != hot[col]:
                failures.append(
                    f"{agg}/{shape}/batch={batch}: {col} mismatch "
                    f"legacy={legacy[col]} hot={hot[col]}")

        # 2. Relative speed on overlapping windows, same machine same run.
        if shape.startswith("sliding") and agg in INLINE_AGGS:
            l_ns = float(legacy["ns_per_tuple"])
            h_ns = float(hot["ns_per_tuple"])
            if h_ns > l_ns * RELATIVE_BOUND:
                failures.append(
                    f"{agg}/{shape}/batch={batch}: hot {h_ns:.2f} ns/tuple "
                    f"vs legacy {l_ns:.2f} (bound {RELATIVE_BOUND}x)")

    # 3. Soft drift vs. committed baseline.
    if args.baseline:
        baseline = load(args.baseline, key_cols)
        for key, row in current.items():
            if key[3] != "hot":
                continue
            base = baseline.get(key)
            if base is None:
                continue
            cur_ns = float(row["ns_per_tuple"])
            base_ns = float(base["ns_per_tuple"])
            if cur_ns > base_ns * DRIFT_FACTOR:
                warnings.append(
                    f"{'/'.join(key[:3])}: hot {cur_ns:.2f} ns/tuple vs "
                    f"baseline {base_ns:.2f} ({cur_ns / base_ns:.2f}x)")

    return "f18", configs, failures, warnings


def check_f19(args):
    key_cols = ("section", "config", "engine")
    current = load(args.current, key_cols)
    configs = sorted({k[:2] for k in current})
    failures = []
    warnings = []

    for section, config in configs:
        heap = current.get((section, config, "heap"))
        ring = current.get((section, config, "ring"))
        if heap is None or ring is None:
            failures.append(f"{section}/{config}: missing engine row")
            continue

        # 1. Identical released-event sequences, engine for engine.
        if heap["checksum"] != ring["checksum"]:
            failures.append(
                f"{section}/{config}: checksum mismatch "
                f"heap={heap['checksum']} ring={ring['checksum']}")

        # 2. Ring wins on deep buffers, same machine same run.
        if section == "buffer" and config in RING_BUFFER_GATED_SIZES:
            h_ns = float(heap["ns_per_tuple"])
            r_ns = float(ring["ns_per_tuple"])
            if r_ns > h_ns * RING_BUFFER_BOUND:
                failures.append(
                    f"{section}/{config}: ring {r_ns:.2f} ns/tuple vs heap "
                    f"{h_ns:.2f} (bound {RING_BUFFER_BOUND:.3f}x)")

    # 3. Batched keyed ingestion on the deep rows (ring, the default
    # engine): inversion is a hard failure, missing the full target a soft
    # warning.
    per_event = current.get(("keyed", KEYED_DEEP_PAIR[0], "ring"))
    batched = current.get(("keyed", KEYED_DEEP_PAIR[1], "ring"))
    if per_event is not None and batched is not None:
        pe_ns = float(per_event["ns_per_tuple"])
        b_ns = float(batched["ns_per_tuple"])
        if b_ns > pe_ns:
            failures.append(
                f"keyed deep: OnBatch {b_ns:.2f} ns/tuple slower than "
                f"per-event {pe_ns:.2f}")
        elif pe_ns < b_ns * KEYED_BATCH_TARGET:
            warnings.append(
                f"keyed deep: OnBatch speedup {pe_ns / b_ns:.2f}x below the "
                f"{KEYED_BATCH_TARGET}x target")

    # 4. Soft drift vs. committed baseline on ring rows.
    if args.baseline:
        baseline = load(args.baseline, key_cols)
        for key, row in current.items():
            if key[2] != "ring":
                continue
            base = baseline.get(key)
            if base is None:
                continue
            cur_ns = float(row["ns_per_tuple"])
            base_ns = float(base["ns_per_tuple"])
            if cur_ns > base_ns * DRIFT_FACTOR:
                warnings.append(
                    f"{'/'.join(key[:2])}: ring {cur_ns:.2f} ns/tuple vs "
                    f"baseline {base_ns:.2f} ({cur_ns / base_ns:.2f}x)")

    return "f19", configs, failures, warnings


def check_f20(args):
    key_cols = ("section", "config", "policy")
    current = load(args.current, key_cols)
    configs = sorted({k[:2] for k in current})
    failures = []
    warnings = []

    # 1. The memory bound holds on every capped row.
    for key, row in current.items():
        cap = int(row["cap"])
        if cap > 0 and int(row["max_buffer"]) > cap:
            failures.append(
                f"{'/'.join(key)}: max_buffer {row['max_buffer']} exceeds "
                f"cap {cap}")

    # 2. Overhead pair: same output, <= OVERHEAD_BOUND x cost, same run.
    for section, config in configs:
        if section != "overhead":
            continue
        uncapped = current.get((section, config, "uncapped"))
        capped = current.get((section, config, "emit-early"))
        if uncapped is None or capped is None:
            failures.append(f"{section}/{config}: missing overhead row")
            continue
        if uncapped["checksum"] != capped["checksum"]:
            failures.append(
                f"{section}/{config}: non-binding cap changed output "
                f"(checksum {capped['checksum']} vs {uncapped['checksum']})")
        u_ns = float(uncapped["ns_per_tuple"])
        c_ns = float(capped["ns_per_tuple"])
        if c_ns > u_ns * OVERHEAD_BOUND:
            failures.append(
                f"{section}/{config}: capped {c_ns:.2f} ns/tuple vs uncapped "
                f"{u_ns:.2f} ({c_ns / u_ns:.3f}x, bound {OVERHEAD_BOUND}x)")

    # 3. Shed accounting: capped policies must bind, uncapped must not.
    for key, row in current.items():
        if key[0] != "shed":
            continue
        lost = int(row["shed"]) + int(row["forced"])
        if key[2] == "uncapped" and lost != 0:
            failures.append(f"{'/'.join(key)}: uncapped run shed {lost} tuples")
        if key[2] != "uncapped" and lost == 0:
            failures.append(
                f"{'/'.join(key)}: cap {row['cap']} never bound "
                f"(shed+forced == 0)")

    # 4. Soft drift vs. committed baseline.
    if args.baseline:
        baseline = load(args.baseline, key_cols)
        for key, row in current.items():
            base = baseline.get(key)
            if base is None:
                continue
            cur_ns = float(row["ns_per_tuple"])
            base_ns = float(base["ns_per_tuple"])
            if cur_ns > base_ns * DRIFT_FACTOR:
                warnings.append(
                    f"{'/'.join(key)}: {cur_ns:.2f} ns/tuple vs baseline "
                    f"{base_ns:.2f} ({cur_ns / base_ns:.2f}x)")

    return "f20", configs, failures, warnings


def check_f21(args):
    key_cols = ("section", "config", "mode")
    current = load(args.current, key_cols)
    configs = sorted({k[:2] for k in current})
    failures = []
    warnings = []

    def pair(section, config, mode_a, mode_b):
        a = current.get((section, config, mode_a))
        b = current.get((section, config, mode_b))
        if a is None or b is None:
            failures.append(f"{section}/{config}: missing {mode_a}/{mode_b} row")
            return None
        # 1. Equivalence: every compared pair produced identical output.
        if a["checksum"] != b["checksum"]:
            failures.append(
                f"{section}/{config}: checksum mismatch "
                f"{mode_a}={a['checksum']} {mode_b}={b['checksum']}")
        return a, b

    # 2. Arena win on the feed rows: hard target on the smallest batch
    # (where per-batch allocation dominates), no inversion on the rest.
    feed_batches = sorted(
        (int(c.split("=")[1]), c) for s, c in configs if s == "feed")
    for i, (_, config) in enumerate(feed_batches):
        rows = pair("feed", config, "arena", "malloc")
        if rows is None:
            continue
        arena_keps = float(rows[0]["keps"])
        malloc_keps = float(rows[1]["keps"])
        bound = F21_ARENA_TARGET if i == 0 else F21_NO_INVERSION
        if arena_keps < malloc_keps * bound:
            failures.append(
                f"feed/{config}: arena {arena_keps:.1f} keps vs malloc "
                f"{malloc_keps:.1f} ({arena_keps / malloc_keps:.2f}x, "
                f"bound {bound}x)")

    # Pipeline: end-to-end the window operator dominates, so equivalence
    # plus no-inversion only.
    rows = pair("pipeline", "zipf-keyed", "arena", "malloc")
    if rows is not None:
        arena_keps = float(rows[0]["keps"])
        malloc_keps = float(rows[1]["keps"])
        if arena_keps < malloc_keps * F21_NO_INVERSION:
            failures.append(
                f"pipeline/zipf-keyed: arena {arena_keps:.1f} keps vs malloc "
                f"{malloc_keps:.1f} ({arena_keps / malloc_keps:.2f}x)")

    # 3. MPSC scaling: two producers' throttle sleeps overlap, so p2 must
    # clearly beat p1 in the same run; p4 is overhead-bound (soft).
    rows = pair("mpsc", "throttled-feed", "p1", "p2")
    if rows is not None:
        p1_keps = float(rows[0]["keps"])
        p2_keps = float(rows[1]["keps"])
        if p2_keps < p1_keps * F21_MPSC_TARGET:
            failures.append(
                f"mpsc/throttled-feed: p2 {p2_keps:.1f} keps vs p1 "
                f"{p1_keps:.1f} ({p2_keps / p1_keps:.2f}x, target "
                f"{F21_MPSC_TARGET}x)")
        p4 = current.get(("mpsc", "throttled-feed", "p4"))
        if p4 is not None:
            if p4["checksum"] != rows[0]["checksum"]:
                failures.append(
                    f"mpsc/throttled-feed: p4 checksum {p4['checksum']} vs "
                    f"p1 {rows[0]['checksum']}")
            if float(p4["keps"]) < p2_keps:
                warnings.append(
                    f"mpsc/throttled-feed: p4 {float(p4['keps']):.1f} keps "
                    f"behind p2 {p2_keps:.1f}")

    # 4. Rebalance: pays off under sink latency (hard), costs ~nothing on
    # pure cpu (soft).
    rows = pair("skew", "sink-latency", "static", "rebalance")
    if rows is not None:
        static_ms = float(rows[0]["wall_ms"])
        rebal_ms = float(rows[1]["wall_ms"])
        if static_ms < rebal_ms * F21_SKEW_TARGET:
            failures.append(
                f"skew/sink-latency: static {static_ms:.2f} ms vs rebalance "
                f"{rebal_ms:.2f} ({static_ms / rebal_ms:.2f}x, target "
                f"{F21_SKEW_TARGET}x)")
        if int(rows[1]["migrations"]) <= 0:
            failures.append(
                "skew/sink-latency: rebalanced run performed no migrations")
    rows = pair("skew", "pure-cpu", "static", "rebalance")
    if rows is not None:
        static_ms = float(rows[0]["wall_ms"])
        rebal_ms = float(rows[1]["wall_ms"])
        if rebal_ms > static_ms * F21_REBALANCE_TAX:
            warnings.append(
                f"skew/pure-cpu: rebalance {rebal_ms:.2f} ms vs static "
                f"{static_ms:.2f} ({rebal_ms / static_ms:.2f}x, soft bound "
                f"{F21_REBALANCE_TAX}x)")

    # 5. Soft drift vs. committed baseline on throughput.
    if args.baseline:
        baseline = load(args.baseline, key_cols)
        for key, row in current.items():
            base = baseline.get(key)
            if base is None:
                continue
            cur_keps = float(row["keps"])
            base_keps = float(base["keps"])
            if cur_keps * DRIFT_FACTOR < base_keps:
                warnings.append(
                    f"{'/'.join(key)}: {cur_keps:.1f} keps vs baseline "
                    f"{base_keps:.1f} ({base_keps / cur_keps:.2f}x slower)")

    return "f21", configs, failures, warnings


def check_f24(args):
    key_cols = ("section", "config", "mode")
    current = load(args.current, key_cols)
    configs = sorted({k[:2] for k in current})
    failures = []
    warnings = []

    def rows_in(section):
        return {k[2]: current[k] for k in current if k[0] == section}

    # 1. Equivalence (hard): within every section all modes produced
    # identical merged output — steal schedule, batch size, and arena
    # placement are performance switches, never semantic ones.
    for section, _ in configs:
        modes = rows_in(section)
        checksums = {row["checksum"] for row in modes.values()}
        if len(checksums) > 1:
            failures.append(
                f"{section}: checksum differs across modes "
                f"{sorted(checksums)}")

    # 2. Steal win (hard): under per-tuple sink latency the colocated
    # static placement must cost >= F24_STEAL_TARGET x the stealing run,
    # the stealing run must actually steal, and composing with the
    # rebalancer must hold the same bar.
    steal_rows = rows_in("steal")
    static = steal_rows.get("static")
    steal = steal_rows.get("steal")
    both = steal_rows.get("steal+rebal")
    if static is None or steal is None or both is None:
        failures.append("steal: missing static/steal/steal+rebal row")
    else:
        static_ms = float(static["wall_ms"])
        steal_ms = float(steal["wall_ms"])
        if static_ms < steal_ms * F24_STEAL_TARGET:
            failures.append(
                f"steal/sink-latency: static {static_ms:.2f} ms vs steal "
                f"{steal_ms:.2f} ({static_ms / steal_ms:.2f}x, target "
                f"{F24_STEAL_TARGET}x)")
        if int(steal["steals"]) <= 0:
            failures.append(
                "steal/sink-latency: stealing run performed no steals")
        both_ms = float(both["wall_ms"])
        if static_ms < both_ms * F24_STEAL_TARGET:
            failures.append(
                f"steal/sink-latency: static {static_ms:.2f} ms vs "
                f"steal+rebal {both_ms:.2f} ({static_ms / both_ms:.2f}x, "
                f"target {F24_STEAL_TARGET}x)")

    # 3. Adaptive batch (hard): the controller must land within
    # F24_ADAPTIVE_TAX of the best fixed size in the same run, without
    # being told which size that is.
    batch_rows = rows_in("batch")
    adaptive = batch_rows.get("adaptive")
    fixed = {m: r for m, r in batch_rows.items() if m.startswith("fixed-")}
    if adaptive is None or not fixed:
        failures.append("batch: missing adaptive or fixed rows")
    else:
        best_mode, best_row = max(
            fixed.items(), key=lambda kv: float(kv[1]["keps"]))
        best_keps = float(best_row["keps"])
        adaptive_keps = float(adaptive["keps"])
        if adaptive_keps * F24_ADAPTIVE_TAX < best_keps:
            failures.append(
                f"batch/zipf-keyed: adaptive {adaptive_keps:.1f} keps "
                f"(settled at {adaptive['batch_end']}) vs best fixed "
                f"{best_mode} {best_keps:.1f} "
                f"({best_keps / adaptive_keps:.2f}x, bound "
                f"{F24_ADAPTIVE_TAX}x)")

    # 4. NUMA arena tax (soft): on a single-node host the per-node pools
    # degrade to one, so the bookkeeping must stay near the flat arena.
    numa_rows = rows_in("numa")
    flat = numa_rows.get("flat")
    numa = numa_rows.get("numa")
    if flat is None or numa is None:
        failures.append("numa: missing flat/numa row")
    else:
        flat_ms = float(flat["wall_ms"])
        numa_ms = float(numa["wall_ms"])
        if numa_ms > flat_ms * F24_NUMA_TAX:
            warnings.append(
                f"numa/zipf-keyed: numa {numa_ms:.2f} ms vs flat "
                f"{flat_ms:.2f} ({numa_ms / flat_ms:.2f}x, soft bound "
                f"{F24_NUMA_TAX}x)")

    # 5. Soft drift vs. committed baseline on throughput.
    if args.baseline:
        baseline = load(args.baseline, key_cols)
        for key, row in current.items():
            base = baseline.get(key)
            if base is None:
                continue
            cur_keps = float(row["keps"])
            base_keps = float(base["keps"])
            if cur_keps * DRIFT_FACTOR < base_keps:
                warnings.append(
                    f"{'/'.join(key)}: {cur_keps:.1f} keps vs baseline "
                    f"{base_keps:.1f} ({base_keps / cur_keps:.2f}x slower)")

    return "f24", configs, failures, warnings


def check_f22(args):
    key_cols = ("clients",)
    current = load(args.current, key_cols)
    configs = sorted(current, key=lambda k: int(k[0]))
    failures = []
    warnings = []

    # 1. Determinism: with a single writer per tenant, every client count
    # must drive byte-identical tenant streams — the combined checksum is
    # the same in every row, accounting identities hold, delivery is exact
    # and no cell saw a single error.
    checksums = {current[k]["checksum"] for k in configs}
    if len(checksums) > 1:
        failures.append(
            f"checksum differs across client counts: {sorted(checksums)}")
    for key in configs:
        row = current[key]
        if int(row["errors"]) != 0:
            failures.append(f"clients={key[0]}: {row['errors']} error(s)")
        if row["identities"] != "1":
            failures.append(f"clients={key[0]}: accounting identity violated")
        if row["deliveries"] != "1":
            failures.append(f"clients={key[0]}: incomplete delivery")

    # 2. Scaling: paced clients overlap their sleeps, so 4 connections must
    # clearly outrun 1 even on a single core (ideal is ~4x); 8 falling
    # behind 4 is overhead-bound and soft.
    c1 = current.get(("1",))
    c4 = current.get(("4",))
    if c1 is None or c4 is None:
        failures.append("missing clients=1 or clients=4 row")
    else:
        k1 = float(c1["keps"])
        k4 = float(c4["keps"])
        if k4 < k1 * F22_SCALING_TARGET:
            failures.append(
                f"clients=4 {k4:.1f} keps vs clients=1 {k1:.1f} "
                f"({k4 / k1:.2f}x, target {F22_SCALING_TARGET}x)")
        c8 = current.get(("8",))
        if c8 is not None and float(c8["keps"]) < k4:
            warnings.append(
                f"clients=8 {float(c8['keps']):.1f} keps behind clients=4 "
                f"{k4:.1f}")

    # 3. Soft drift vs. committed baseline on throughput and tail latency.
    if args.baseline:
        baseline = load(args.baseline, key_cols)
        for key, row in current.items():
            base = baseline.get(key)
            if base is None:
                continue
            cur_keps = float(row["keps"])
            base_keps = float(base["keps"])
            if cur_keps * DRIFT_FACTOR < base_keps:
                warnings.append(
                    f"clients={key[0]}: {cur_keps:.1f} keps vs baseline "
                    f"{base_keps:.1f} ({base_keps / cur_keps:.2f}x slower)")
            cur_p99 = float(row["rtt_p99_us"])
            base_p99 = float(base["rtt_p99_us"])
            if cur_p99 > base_p99 * F22_P99_DRIFT:
                warnings.append(
                    f"clients={key[0]}: rtt p99 {cur_p99:.1f} us vs baseline "
                    f"{base_p99:.1f} ({cur_p99 / base_p99:.2f}x)")

    return "f22", configs, failures, warnings


def check_f25(args):
    key_cols = ("section", "fault_pct")
    current = load(args.current, key_cols)
    configs = sorted(current)
    failures = []
    warnings = []

    # 1. Exactly-once under faults: every row — clean, chaotic, throttled,
    # both — must land on the same combined result checksum, with clean
    # accounting and every server-side replay absorbed by dedup.
    checksums = {current[k]["checksum"] for k in configs}
    if len(checksums) > 1:
        failures.append(
            f"checksum differs across fault/quota rows: {sorted(checksums)}")
    for key in configs:
        row = current[key]
        label = f"{key[0]}/fault={key[1]}"
        if int(row["errors"]) != 0:
            failures.append(f"{label}: {row['errors']} error(s)")
        if row["identities"] != "1":
            failures.append(f"{label}: accounting identity violated")
        if row["deliveries"] != "1":
            failures.append(f"{label}: incomplete delivery")
        if int(row["replayed"]) != int(row["deduped"]):
            failures.append(
                f"{label}: replayed {row['replayed']} != deduped "
                f"{row['deduped']} — a retransmit was applied twice")

    # 2. Chaos is real: faulted rows must actually inject, more chaos must
    # inject more, and ack-side faults must force genuine retransmits.
    for key in configs:
        row = current[key]
        pct = float(key[1])
        faults = int(row["faults"])
        if pct > 0 and faults == 0:
            failures.append(
                f"{key[0]}/fault={key[1]}: fault schedule never fired")
        if pct >= 5.0 and int(row["replayed"]) == 0:
            failures.append(
                f"{key[0]}/fault={key[1]}: replayed == 0 — the dedup path "
                "was not exercised")
    low = current.get(("chaos", "1.0"))
    high = current.get(("chaos", "5.0"))
    if low is None or high is None:
        failures.append("missing chaos 1% or 5% row")
    elif int(high["faults"]) <= int(low["faults"]):
        failures.append(
            f"5% chaos injected {high['faults']} faults vs {low['faults']} "
            "at 1% — the fault-rate knob is not scaling")

    # 3. Quotas hold exactly: the bucket's wall-clock floor is arithmetic,
    # not a tuning target — a quota row finishing faster than the bucket
    # allows means admitted events were never debited.
    for key in configs:
        row = current[key]
        rate = float(row["quota_eps"])
        if rate <= 0:
            continue
        if int(row["throttled"]) == 0:
            failures.append(
                f"{key[0]}/fault={key[1]}: quota set but nothing throttled")
        per_tenant = float(row["events"]) / float(row["tenants"])
        floor_s = (per_tenant - float(row["burst"])) / rate
        wall_s = float(row["wall_ms"]) / 1000.0
        if wall_s < floor_s * F25_QUOTA_SLACK:
            failures.append(
                f"{key[0]}/fault={key[1]}: wall {wall_s:.3f}s beat the "
                f"token-bucket floor {floor_s:.3f}s — quota not enforced")

    # 4. Soft drift vs. committed baseline on the fault-free goodput row.
    if args.baseline:
        baseline = load(args.baseline, key_cols)
        for key in (("chaos", "0.0"), ("overload", "0.0")):
            row, base = current.get(key), baseline.get(key)
            if row is None or base is None:
                continue
            cur_keps = float(row["keps"])
            base_keps = float(base["keps"])
            if cur_keps * DRIFT_FACTOR < base_keps:
                warnings.append(
                    f"{key[0]}/fault={key[1]}: {cur_keps:.1f} keps vs "
                    f"baseline {base_keps:.1f} "
                    f"({base_keps / cur_keps:.2f}x slower)")

    return "f25", configs, failures, warnings


def check_f23(args):
    key_cols = ("workload", "kind", "mode")
    current = load(args.current, key_cols)
    configs = sorted({k[:2] for k in current})
    failures = []
    warnings = []

    for workload, kind in configs:
        hot = current.get((workload, kind, "hot-buffered"))
        amend = current.get((workload, kind, "amend-buffered"))
        spec = current.get((workload, kind, "amend-speculative"))
        if hot is None or amend is None or spec is None:
            failures.append(f"{workload}/{kind}: missing mode row")
            continue

        # 1. Final-answer identity across all three modes: the speculative
        # run's last revision per window must equal the fully-buffered
        # reference bit for bit (as printed).
        for row, mode in ((amend, "amend-buffered"),
                          (spec, "amend-speculative")):
            if row["final_checksum"] != hot["final_checksum"]:
                failures.append(
                    f"{workload}/{kind}: final_checksum mismatch "
                    f"{mode}={row['final_checksum']} "
                    f"hot-buffered={hot['final_checksum']}")

        # 2. Latency win where disorder is material, same machine same run.
        if float(spec["late_frac"]) >= F23_LATE_GATE:
            first = float(spec["first_p50_us"])
            settle = float(hot["settle_p50_us"])
            if first > settle * F23_LATENCY_BOUND:
                failures.append(
                    f"{workload}/{kind}: speculative first p50 {first:.0f} us "
                    f"vs buffered settle p50 {settle:.0f} "
                    f"({first / settle:.2f}x, bound {F23_LATENCY_BOUND}x)")

        # 3. Amend-store tax on the in-order path (soft; noisy).
        h_ns = float(hot["ns_per_tuple"])
        a_ns = float(amend["ns_per_tuple"])
        if a_ns > h_ns * F23_STORE_TAX:
            warnings.append(
                f"{workload}/{kind}: amend-buffered {a_ns:.2f} ns/tuple vs "
                f"hot-buffered {h_ns:.2f} ({a_ns / h_ns:.2f}x, soft bound "
                f"{F23_STORE_TAX}x)")

    # 4. Soft drift vs. committed baseline on the speculative rows.
    if args.baseline:
        baseline = load(args.baseline, key_cols)
        for key, row in current.items():
            if key[2] != "amend-speculative":
                continue
            base = baseline.get(key)
            if base is None:
                continue
            cur_ns = float(row["ns_per_tuple"])
            base_ns = float(base["ns_per_tuple"])
            if cur_ns > base_ns * DRIFT_FACTOR:
                warnings.append(
                    f"{'/'.join(key[:2])}: speculative {cur_ns:.2f} ns/tuple "
                    f"vs baseline {base_ns:.2f} ({cur_ns / base_ns:.2f}x)")

    return "f23", configs, failures, warnings


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--current", required=True)
    parser.add_argument("--baseline")
    args = parser.parse_args()

    suite = sniff_suite(args.current)
    if suite == "f25":
        suite, configs, failures, warnings = check_f25(args)
    elif suite == "f24":
        suite, configs, failures, warnings = check_f24(args)
    elif suite == "f23":
        suite, configs, failures, warnings = check_f23(args)
    elif suite == "f22":
        suite, configs, failures, warnings = check_f22(args)
    elif suite == "f21":
        suite, configs, failures, warnings = check_f21(args)
    elif suite == "f20":
        suite, configs, failures, warnings = check_f20(args)
    elif suite == "f19":
        suite, configs, failures, warnings = check_f19(args)
    else:
        suite, configs, failures, warnings = check_f18(args)

    for w in warnings:
        print(f"::warning title=bench_{suite} drift::{w}")
    for f in failures:
        print(f"::error title=bench_{suite} regression::{f}")
    print(f"[{suite}] checked {len(configs)} configurations: "
          f"{len(failures)} hard failure(s), {len(warnings)} warning(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
