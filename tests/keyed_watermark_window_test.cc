/// Direct unit tests for WindowedAggregation's per-key watermark firing
/// (the consumer half of KeyedDisorderHandler's keyed protocol).

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "window/window_operator.h"

namespace streamq {
namespace {

using testutil::E;

WindowedAggregation::Options Opt(bool per_key) {
  WindowedAggregation::Options o;
  o.window = WindowSpec::Tumbling(100);
  o.aggregate.kind = AggKind::kSum;
  o.per_key_watermarks = per_key;
  return o;
}

TEST(KeyedWatermarkWindowTest, IgnoredWhenFlagOff) {
  CollectingResultSink results;
  WindowedAggregation op(Opt(false), &results);
  op.OnEvent(E(5, 10, 10, /*key=*/1));
  op.OnKeyedWatermark(1, 200, 200);
  EXPECT_TRUE(results.results.empty());  // Only merged watermarks fire.
  op.OnWatermark(200, 200);
  EXPECT_EQ(results.results.size(), 1u);
}

TEST(KeyedWatermarkWindowTest, FiresOnlyTheNamedKey) {
  CollectingResultSink results;
  WindowedAggregation op(Opt(true), &results);
  op.OnEvent(E(5, 10, 10, /*key=*/1));
  op.OnEvent(E(7, 20, 20, /*key=*/2));
  op.OnKeyedWatermark(1, 150, 150);
  ASSERT_EQ(results.results.size(), 1u);
  EXPECT_EQ(results.results[0].key, 1);
  EXPECT_DOUBLE_EQ(results.results[0].value, 5.0);
  // Key 2's window is still open.
  op.OnKeyedWatermark(2, 150, 160);
  ASSERT_EQ(results.results.size(), 2u);
  EXPECT_EQ(results.results[1].key, 2);
}

TEST(KeyedWatermarkWindowTest, FiresBeforeMergedWatermark) {
  // The whole point: key 1's window fires on its own progress, ahead of the
  // merged (minimum) watermark.
  CollectingResultSink results;
  WindowedAggregation op(Opt(true), &results);
  op.OnEvent(E(5, 10, 10, 1));
  op.OnKeyedWatermark(1, 500, 500);   // Key 1 far ahead.
  ASSERT_EQ(results.results.size(), 1u);
  EXPECT_EQ(results.results[0].emit_stream_time, 500);
  // Merged watermark arrives later; the window must not fire twice, and the
  // purge must reclaim the state.
  op.OnWatermark(500, 900);
  EXPECT_EQ(results.results.size(), 1u);
  EXPECT_EQ(op.live_windows(), 0u);
}

TEST(KeyedWatermarkWindowTest, DoesNotFireIncompleteWindows) {
  CollectingResultSink results;
  WindowedAggregation op(Opt(true), &results);
  op.OnEvent(E(5, 10, 10, 1));
  op.OnKeyedWatermark(1, 99, 99);  // End 100 > 99: not complete.
  EXPECT_TRUE(results.results.empty());
  op.OnKeyedWatermark(1, 100, 120);
  EXPECT_EQ(results.results.size(), 1u);
}

TEST(KeyedWatermarkWindowTest, LateAmendmentsStillWorkAfterKeyedFire) {
  WindowedAggregation::Options o = Opt(true);
  o.allowed_lateness = 1000;
  CollectingResultSink results;
  WindowedAggregation op(o, &results);
  op.OnEvent(E(5, 10, 10, 1));
  op.OnKeyedWatermark(1, 200, 200);  // Fires with 5.
  ASSERT_EQ(results.results.size(), 1u);
  op.OnLateEvent(E(3, 20, 210, 1));  // Amends: revision with 8.
  ASSERT_EQ(results.results.size(), 2u);
  EXPECT_TRUE(results.results[1].is_revision);
  EXPECT_DOUBLE_EQ(results.results[1].value, 8.0);
}

TEST(KeyedWatermarkWindowTest, SlidingWindowsPerKey) {
  WindowedAggregation::Options o = Opt(true);
  o.window = WindowSpec::Sliding(100, 50);
  CollectingResultSink results;
  WindowedAggregation op(o, &results);
  op.OnEvent(E(5, 75, 75, 1));  // Windows [0,100) and [50,150).
  op.OnKeyedWatermark(1, 120, 120);
  ASSERT_EQ(results.results.size(), 1u);  // Only [0,100) complete.
  op.OnKeyedWatermark(1, 150, 150);
  EXPECT_EQ(results.results.size(), 2u);
}

TEST(KeyedWatermarkWindowTest, TerminalMergedWatermarkFiresTheRest) {
  CollectingResultSink results;
  WindowedAggregation op(Opt(true), &results);
  op.OnEvent(E(5, 10, 10, 1));
  op.OnEvent(E(7, 10, 10, 2));
  op.OnKeyedWatermark(1, 200, 200);  // Key 1 fires; key 2 never gets one.
  ASSERT_EQ(results.results.size(), 1u);
  op.OnWatermark(kMaxTimestamp, 300);  // Flush: fires key 2, purges all.
  ASSERT_EQ(results.results.size(), 2u);
  EXPECT_EQ(results.results[1].key, 2);
  EXPECT_EQ(op.live_windows(), 0u);
}

}  // namespace
}  // namespace streamq
