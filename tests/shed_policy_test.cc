// Bounded-memory degradation: every buffering handler — global and per-key,
// heap and ring engine, fed per-event and batched — must honor a hard
// buffer cap under each shed policy while keeping the sink contract
// (event-time order, watermark monotonicity) and exact tuple accounting
// (in == out + late + shed). A cap that never binds must be invisible:
// byte-identical output to the uncapped run.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/continuous_query.h"
#include "core/executor.h"
#include "disorder/handler_factory.h"
#include "stream/generator.h"
#include "stream/source.h"
#include "tests/test_util.h"

namespace streamq {
namespace {

using Engine = ReorderBuffer::Engine;

constexpr ShedPolicy kAllPolicies[] = {
    ShedPolicy::kEmitEarly, ShedPolicy::kDropNewest, ShedPolicy::kDropOldest};

/// The five buffering handler kinds (pass-through holds nothing, so a cap
/// is meaningless for it).
std::vector<DisorderHandlerSpec> BufferingSpecs() {
  std::vector<DisorderHandlerSpec> specs;
  specs.push_back(DisorderHandlerSpec::Fixed(Millis(50)));
  {
    MpKSlack::Options mp;
    specs.push_back(DisorderHandlerSpec::Mp(mp));
  }
  {
    AqKSlack::Options aq;
    aq.target_quality = 0.95;
    specs.push_back(DisorderHandlerSpec::Aq(aq));
  }
  {
    LbKSlack::Options lb;
    specs.push_back(DisorderHandlerSpec::Lb(lb));
  }
  {
    WatermarkReorderer::Options wm;
    wm.bound = Millis(50);
    wm.period_events = 7;
    wm.allowed_lateness = Millis(10);
    specs.push_back(DisorderHandlerSpec::Watermark(wm));
  }
  return specs;
}

const std::vector<Event>& TestStream() {
  static const std::vector<Event>* events = [] {
    WorkloadConfig cfg;
    cfg.num_events = 4000;
    cfg.events_per_second = 10000.0;
    cfg.num_keys = 8;
    cfg.delay.model = DelayModel::kExponential;
    cfg.delay.a = 20000.0;  // 20ms mean delay: ~200 tuples in flight.
    cfg.seed = 42;
    return new std::vector<Event>(GenerateWorkload(cfg).arrival_order);
  }();
  return *events;
}

/// ContractCheckingSink that also records the watermark sequence, so two
/// runs can be compared signal for signal.
struct TraceSink : testutil::ContractCheckingSink {
  void OnWatermark(TimestampUs watermark, TimestampUs stream_time) override {
    watermarks.push_back(watermark);
    testutil::ContractCheckingSink::OnWatermark(watermark, stream_time);
  }
  std::vector<TimestampUs> watermarks;
};

std::vector<int64_t> Ids(const std::vector<Event>& events) {
  std::vector<int64_t> ids;
  ids.reserve(events.size());
  for (const Event& e : events) ids.push_back(e.id);
  return ids;
}

/// Runs `spec` over the test stream. batch_size 0 = per-event OnEvent loop.
void RunSpec(const DisorderHandlerSpec& spec, size_t batch_size,
             TraceSink* sink, DisorderHandlerStats* stats) {
  auto handler = MakeDisorderHandlerOrDie(spec);
  const std::vector<Event>& stream = TestStream();
  if (batch_size == 0) {
    for (const Event& e : stream) handler->OnEvent(e, sink);
  } else {
    for (size_t i = 0; i < stream.size(); i += batch_size) {
      const size_t n = std::min(batch_size, stream.size() - i);
      handler->OnBatch(std::span<const Event>(stream).subspan(i, n), sink);
    }
  }
  handler->Flush(sink);
  *stats = handler->stats();
}

struct FeedMode {
  const char* name;
  size_t batch_size;
};

TEST(ShedPolicyTest, CapHoldsAcrossHandlersScopesEnginesAndFeedModes) {
  constexpr size_t kCap = 64;
  const FeedMode kFeedModes[] = {{"per-event", 0}, {"batched", 37}};
  for (const DisorderHandlerSpec& base : BufferingSpecs()) {
    for (bool per_key : {false, true}) {
      for (Engine engine : {Engine::kHeap, Engine::kRing}) {
        for (const FeedMode& feed : kFeedModes) {
          // Heap is the reference engine; one feed mode there keeps the
          // matrix affordable (ring runs both).
          if (engine == Engine::kHeap && feed.batch_size != 0) continue;
          for (ShedPolicy policy : kAllPolicies) {
            DisorderHandlerSpec spec = base.PerKey(per_key)
                                           .WithBufferEngine(engine)
                                           .WithBufferCap(kCap, policy);
            SCOPED_TRACE(spec.Describe() + (per_key ? " keyed" : " global") +
                         " " + feed.name);
            TraceSink sink;
            DisorderHandlerStats stats;
            RunSpec(spec, feed.batch_size, &sink, &stats);

            // The memory bound: occupancy never exceeded the cap.
            EXPECT_LE(stats.max_buffer_size, static_cast<int64_t>(kCap));
            // Exact accounting: every arrival is out, late, or shed.
            EXPECT_EQ(stats.events_in,
                      static_cast<int64_t>(TestStream().size()));
            EXPECT_EQ(stats.events_in,
                      stats.events_out + stats.events_late + stats.events_shed);
            EXPECT_EQ(static_cast<int64_t>(sink.events.size()),
                      stats.events_out);
            // Drops (watermark reorderer's beyond-lateness discards) are
            // counted late but never delivered to the sink.
            EXPECT_EQ(static_cast<int64_t>(sink.late.size()),
                      stats.events_late - stats.events_dropped);
            // Shedding may advance watermarks early but never backwards.
            EXPECT_TRUE(sink.watermarks_monotone);
            EXPECT_EQ(sink.current_watermark, kMaxTimestamp);
            if (!per_key) {
              // Keyed output is only ordered per key; globally the merged
              // stream interleaves, so these two hold for global runs only.
              EXPECT_TRUE(sink.ordered);
              EXPECT_TRUE(sink.respects_watermark);
            }
            if (policy == ShedPolicy::kEmitEarly) {
              EXPECT_EQ(stats.events_shed, 0);
            } else {
              EXPECT_EQ(stats.events_force_released, 0);
            }
          }
        }
      }
    }
  }
}

TEST(ShedPolicyTest, NonBindingCapIsInvisible) {
  // A cap far above peak occupancy must leave the run byte-identical to the
  // uncapped one: same released ids, same late set, same watermark stream.
  for (const DisorderHandlerSpec& base : BufferingSpecs()) {
    for (bool per_key : {false, true}) {
      DisorderHandlerSpec uncapped = base.PerKey(per_key);
      SCOPED_TRACE(uncapped.Describe() + (per_key ? " keyed" : " global"));
      TraceSink base_sink;
      DisorderHandlerStats base_stats;
      RunSpec(uncapped, 0, &base_sink, &base_stats);

      for (ShedPolicy policy : kAllPolicies) {
        TraceSink capped_sink;
        DisorderHandlerStats capped_stats;
        RunSpec(uncapped.WithBufferCap(1u << 20, policy), 0, &capped_sink,
                &capped_stats);
        EXPECT_EQ(Ids(capped_sink.events), Ids(base_sink.events));
        EXPECT_EQ(Ids(capped_sink.late), Ids(base_sink.late));
        EXPECT_EQ(capped_sink.watermarks, base_sink.watermarks);
        EXPECT_EQ(capped_stats.events_shed, 0);
        EXPECT_EQ(capped_stats.events_force_released, 0);
        EXPECT_EQ(capped_stats.max_buffer_size, base_stats.max_buffer_size);
      }
    }
  }
}

TEST(ShedPolicyTest, BatchedFeedMatchesPerEventUnderCap) {
  // The cap's shed decisions must be feed-mode-invariant: OnBatch replays
  // exactly the per-event sequence, cap checks included.
  constexpr size_t kCap = 64;
  for (const DisorderHandlerSpec& base : BufferingSpecs()) {
    for (bool per_key : {false, true}) {
      for (ShedPolicy policy : kAllPolicies) {
        DisorderHandlerSpec spec = base.PerKey(per_key)
                                       .WithBufferCap(kCap, policy);
        SCOPED_TRACE(spec.Describe() + (per_key ? " keyed" : " global"));
        TraceSink per_event, batched;
        DisorderHandlerStats per_event_stats, batched_stats;
        RunSpec(spec, 0, &per_event, &per_event_stats);
        RunSpec(spec, 53, &batched, &batched_stats);
        EXPECT_EQ(Ids(batched.events), Ids(per_event.events));
        EXPECT_EQ(Ids(batched.late), Ids(per_event.late));
        EXPECT_EQ(batched_stats.events_shed, per_event_stats.events_shed);
        EXPECT_EQ(batched_stats.events_force_released,
                  per_event_stats.events_force_released);
        EXPECT_EQ(batched_stats.max_buffer_size,
                  per_event_stats.max_buffer_size);
      }
    }
  }
}

TEST(ShedPolicyTest, EmitEarlyBindsByForcedReleaseNotLoss) {
  // With a binding cap, kEmitEarly never discards: tuples leave early (and
  // later arrivals behind the advanced watermark divert late), so the only
  // shed counter that moves is events_force_released.
  DisorderHandlerSpec spec =
      DisorderHandlerSpec::Fixed(Millis(50)).WithBufferCap(
          32, ShedPolicy::kEmitEarly);
  TraceSink sink;
  DisorderHandlerStats stats;
  RunSpec(spec, 0, &sink, &stats);
  EXPECT_LE(stats.max_buffer_size, 32);
  EXPECT_EQ(stats.events_shed, 0);
  EXPECT_GT(stats.events_force_released, 0);
  EXPECT_EQ(stats.events_in, stats.events_out + stats.events_late);
  EXPECT_TRUE(sink.ordered);
  EXPECT_TRUE(sink.watermarks_monotone);
}

TEST(ShedPolicyTest, DropNewestKeepsDrainingUnderSustainedPressure) {
  // The arrival-side policy must not wedge: rejected ingests still trigger
  // releases, so output keeps flowing and only the overflow is lost.
  DisorderHandlerSpec spec =
      DisorderHandlerSpec::Fixed(Millis(50)).WithBufferCap(
          32, ShedPolicy::kDropNewest);
  TraceSink sink;
  DisorderHandlerStats stats;
  RunSpec(spec, 0, &sink, &stats);
  EXPECT_LE(stats.max_buffer_size, 32);
  EXPECT_GT(stats.events_shed, 0);
  // The cap binds hard here (32 slots vs ~500 in flight), so most arrivals
  // are shed — but the buffer keeps draining instead of wedging.
  EXPECT_GT(stats.events_out, 0);
  EXPECT_EQ(stats.events_in,
            stats.events_out + stats.events_late + stats.events_shed);
}

TEST(ShedPolicyTest, DropOldestDiscardsFromTheBufferFront) {
  DisorderHandlerSpec spec =
      DisorderHandlerSpec::Fixed(Millis(50)).WithBufferCap(
          32, ShedPolicy::kDropOldest);
  TraceSink sink;
  DisorderHandlerStats stats;
  RunSpec(spec, 0, &sink, &stats);
  EXPECT_LE(stats.max_buffer_size, 32);
  EXPECT_GT(stats.events_shed, 0);
  EXPECT_TRUE(sink.ordered);
  EXPECT_TRUE(sink.respects_watermark);
  EXPECT_EQ(stats.events_in,
            stats.events_out + stats.events_late + stats.events_shed);
}

TEST(ShedPolicyTest, MaxSlackClampsAdaptiveHandlers) {
  // No control loop may request a buffer the clamp forbids, globally or in
  // any shard of a keyed run.
  const DurationUs kClamp = Millis(5);
  std::vector<DisorderHandlerSpec> adaptive;
  {
    MpKSlack::Options mp;
    adaptive.push_back(DisorderHandlerSpec::Mp(mp));
    AqKSlack::Options aq;
    adaptive.push_back(DisorderHandlerSpec::Aq(aq));
    LbKSlack::Options lb;
    adaptive.push_back(DisorderHandlerSpec::Lb(lb));
  }
  for (const DisorderHandlerSpec& base : adaptive) {
    for (bool per_key : {false, true}) {
      DisorderHandlerSpec spec = base.PerKey(per_key).WithMaxSlack(kClamp);
      SCOPED_TRACE(spec.Describe() + (per_key ? " keyed" : " global"));
      auto handler = MakeDisorderHandlerOrDie(spec);
      testutil::ContractCheckingSink sink;
      for (const Event& e : TestStream()) handler->OnEvent(e, &sink);
      // current_slack() (keyed: mean over shards) respects the clamp; the
      // clamped run still delivers everything.
      EXPECT_LE(handler->current_slack(), kClamp);
      handler->Flush(&sink);
      EXPECT_EQ(handler->stats().events_in,
                handler->stats().events_out + handler->stats().events_late);
    }
  }
}

TEST(ShedPolicyTest, DescribeNamesTheCap) {
  DisorderHandlerSpec spec = DisorderHandlerSpec::Fixed(Millis(10)).WithBufferCap(
      128, ShedPolicy::kDropOldest);
  EXPECT_NE(spec.Describe().find("+cap(128,drop-oldest)"), std::string::npos);
  EXPECT_EQ(spec.WithBufferCap(0).Describe().find("+cap"), std::string::npos);
}

TEST(ShedPolicyTest, ExecutorHonorsBuilderBufferCap) {
  // End-to-end through QueryBuilder and QueryExecutor: the report carries
  // the bounded occupancy and the same conservation identity.
  ContinuousQuery query = QueryBuilder("capped")
                              .Tumbling(Millis(100))
                              .Aggregate("sum")
                              .FixedSlack(Millis(50))
                              .BufferCap(128, ShedPolicy::kEmitEarly)
                              .Build();
  QueryExecutor exec(query);
  VectorSource source(TestStream());
  const RunReport report = exec.Run(&source);
  EXPECT_TRUE(report.status.ok());
  EXPECT_LE(report.handler_stats.max_buffer_size, 128);
  EXPECT_GT(report.handler_stats.events_force_released, 0);
  EXPECT_EQ(report.handler_stats.events_in,
            report.handler_stats.events_out + report.handler_stats.events_late);
  EXPECT_EQ(report.events_processed,
            static_cast<int64_t>(TestStream().size()));
}

}  // namespace
}  // namespace streamq
