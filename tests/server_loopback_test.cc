#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/session_options.h"
#include "core/stream_session.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "stream/generator.h"
#include "stream/source.h"

namespace streamq {
namespace {

std::vector<Event> TestStream(uint64_t seed, int64_t n = 20000) {
  WorkloadConfig config;
  config.num_events = n;
  config.num_keys = 8;
  config.seed = seed;
  return GenerateWorkload(config).arrival_order;
}

void IngestInBatches(StreamQClient* client, uint32_t tenant,
                     const std::vector<Event>& events, size_t batch = 512) {
  for (size_t i = 0; i < events.size(); i += batch) {
    const size_t n = std::min(batch, events.size() - i);
    ASSERT_TRUE(client
                    ->Ingest(tenant,
                             std::span<const Event>(events.data() + i, n))
                    .ok());
  }
}

/// What a tenant's final report looks like when the same options and the
/// same stream run in-process with nobody else around — the isolation
/// baseline.
SnapshotStats SoloBaseline(const SessionOptions& options,
                           const std::vector<Event>& events) {
  auto session = StreamSession::Open(options);
  EXPECT_TRUE(session.ok());
  VectorSource source(events);
  const RunReport report = session.value()->Run(&source);
  return SnapshotFromReport(report, static_cast<int64_t>(events.size()),
                            /*finished=*/true);
}

class ServerLoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(server_.Start().ok());
    ASSERT_GT(server_.port(), 0);
  }

  void TearDown() override { server_.Stop(); }

  std::unique_ptr<StreamQClient> Connect() {
    auto client = StreamQClient::Connect(server_.port());
    EXPECT_TRUE(client.ok());
    return std::move(client).value();
  }

  StreamQServer server_;
};

TEST_F(ServerLoopbackTest, FullLifecycleWithExactAccounting) {
  const std::vector<Event> events = TestStream(11);
  SessionOptions options;
  options.Name("tenant-1").Window(100).QualityTarget(0.9);

  auto client = Connect();
  ASSERT_TRUE(client->RegisterQuery(1, options).ok());
  EXPECT_EQ(server_.active_tenants(), 1u);
  IngestInBatches(client.get(), 1, events);

  // Live snapshot mid-stream: counts are flowing, session not sealed.
  auto live = client->Snapshot(1);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live.value().finished, 0);
  EXPECT_EQ(live.value().events_ingested,
            static_cast<int64_t>(events.size()));

  // Unregister seals the session and returns the final report, which must
  // be byte-identical to running the same options solo, in-process.
  auto final_stats = client->Unregister(1);
  ASSERT_TRUE(final_stats.ok());
  EXPECT_EQ(final_stats.value().finished, 1);
  EXPECT_TRUE(final_stats.value().AccountingIdentityHolds());
  EXPECT_EQ(final_stats.value(), SoloBaseline(options, events));
  EXPECT_EQ(server_.active_tenants(), 0u);

  // The id is free again.
  EXPECT_TRUE(client->RegisterQuery(1, options).ok());
  EXPECT_EQ(server_.stats().protocol_errors, 0);
}

TEST_F(ServerLoopbackTest, ThreadedTenantRunsOnShardedRunner) {
  const std::vector<Event> events = TestStream(12);
  SessionOptions options;
  options.Name("tenant-1").Window(100).PerKey().Threads(2);

  auto client = Connect();
  ASSERT_TRUE(client->RegisterQuery(1, options).ok());
  IngestInBatches(client.get(), 1, events);
  auto final_stats = client->Unregister(1);
  ASSERT_TRUE(final_stats.ok());
  EXPECT_TRUE(final_stats.value().AccountingIdentityHolds());
  EXPECT_EQ(final_stats.value().events_ingested,
            static_cast<int64_t>(events.size()));
  EXPECT_GT(final_stats.value().results, 0);
}

TEST_F(ServerLoopbackTest, MisbehavingTenantLeavesOthersByteIdentical) {
  const std::vector<Event> clean_events = TestStream(21);
  SessionOptions clean_options;
  clean_options.Name("clean").Window(100).QualityTarget(0.9);
  const SnapshotStats baseline = SoloBaseline(clean_options, clean_events);

  auto clean_client = Connect();
  ASSERT_TRUE(clean_client->RegisterQuery(1, clean_options).ok());

  // Tenant 2 misbehaves on its own connections, interleaved with tenant
  // 1's ingest: bad registration, mangled batches, a corrupt frame, shed
  // pressure through a tiny buffer cap.
  auto bad_client = Connect();
  SessionOptions bad_options;
  bad_options.Name("bad").Window(100);
  bad_options.BufferCap(64, "drop-newest");
  ASSERT_TRUE(bad_client->RegisterQuery(2, bad_options).ok());

  const std::vector<Event> bad_events = TestStream(22, 5000);
  std::thread chaos([&] {
    // Unparseable register payload (unknown option on the wire).
    Frame bad_register{FrameType::kRegisterQuery, 3, "--warp=9"};
    (void)bad_client->RoundTrip(bad_register);
    // Mangled event batch: count says 2, body has 1 event.
    std::string mangled;
    EncodeEventBatch(std::span<const Event>(bad_events.data(), 1), &mangled);
    mangled[0] = 2;
    (void)bad_client->RoundTrip(Frame{FrameType::kIngest, 2, mangled});
    // Ingest to a tenant that does not exist.
    (void)bad_client->RoundTrip(Frame{FrameType::kIngest, 99, mangled});
    // A shedding stream of its own.
    for (size_t i = 0; i < bad_events.size(); i += 512) {
      const size_t n = std::min<size_t>(512, bad_events.size() - i);
      (void)bad_client->Ingest(
          2, std::span<const Event>(bad_events.data() + i, n));
    }
    // A connection that turns to garbage mid-stream.
    auto garbage = StreamQClient::Connect(server_.port());
    if (garbage.ok()) {
      (void)garbage.value()->SendRawAndAwaitReply(
          "this is not a frame at all!!");
    }
  });

  IngestInBatches(clean_client.get(), 1, clean_events);
  chaos.join();

  // Tenant 1's sealed report must match the solo baseline exactly — same
  // counters, same checksum, byte-for-byte.
  auto final_stats = clean_client->Unregister(1);
  ASSERT_TRUE(final_stats.ok());
  EXPECT_EQ(final_stats.value(), baseline);
  EXPECT_TRUE(final_stats.value().AccountingIdentityHolds());

  // Tenant 2 still owes a coherent (identity-preserving) report of its own.
  auto bad_final = bad_client->Unregister(2);
  ASSERT_TRUE(bad_final.ok());
  EXPECT_TRUE(bad_final.value().AccountingIdentityHolds());
  EXPECT_GT(server_.stats().protocol_errors, 0);
}

TEST_F(ServerLoopbackTest, PayloadErrorsAreRecoverablePerConnection) {
  auto client = Connect();
  // Unknown tenant: error reply, but the connection keeps working.
  const Status missing = client->Ingest(7, {});
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
  SessionOptions options;
  ASSERT_TRUE(client->RegisterQuery(7, options).ok());
  // Duplicate registration: AlreadyExists, connection still fine.
  EXPECT_EQ(client->RegisterQuery(7, options).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(client->Ingest(7, {}).ok());
  auto stats = client->Unregister(7);
  ASSERT_TRUE(stats.ok());
}

TEST_F(ServerLoopbackTest, FramingErrorsCloseTheConnection) {
  auto client = Connect();
  auto reply = client->SendRawAndAwaitReply("garbage garbage garbage!");
  // One error frame comes back...
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
  // ...and the server is still alive for new connections.
  auto fresh = Connect();
  SessionOptions options;
  EXPECT_TRUE(fresh->RegisterQuery(1, options).ok());
  EXPECT_GT(server_.stats().protocol_errors, 0);
}

TEST_F(ServerLoopbackTest, OversizedFrameIsRejectedNotAllocated) {
  auto client = Connect();
  // Hand-build a header claiming a payload far over the cap.
  std::string header;
  header.push_back(kFrameMagic0);
  header.push_back(kFrameMagic1);
  header.push_back(static_cast<char>(FrameType::kIngest));
  header.push_back(0);
  AppendU32(1, &header);
  AppendU32(0x7fffffff, &header);
  auto reply = client->SendRawAndAwaitReply(header);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ServerLoopbackTest, HeartbeatOverTheWire) {
  auto client = Connect();
  SessionOptions options;
  options.Window(100).FixedK(10);
  ASSERT_TRUE(client->RegisterQuery(4, options).ok());
  std::vector<Event> events;
  for (int i = 0; i < 200; ++i) {
    Event e;
    e.id = i;
    e.event_time = i * Millis(1);
    e.arrival_time = e.event_time;
    e.value = 1.0;
    events.push_back(e);
  }
  ASSERT_TRUE(client->Ingest(4, events).ok());
  ASSERT_TRUE(client->Heartbeat(4, Millis(2000), Millis(2000)).ok());
  auto live = client->Snapshot(4);
  ASSERT_TRUE(live.ok());
  EXPECT_GT(live.value().results, 0);
  ASSERT_TRUE(client->Unregister(4).ok());
}

TEST_F(ServerLoopbackTest, ConcurrentTenantsKeepIndependentAccounts) {
  constexpr int kTenants = 4;
  std::vector<std::vector<Event>> streams;
  for (int t = 0; t < kTenants; ++t) {
    streams.push_back(TestStream(100 + static_cast<uint64_t>(t), 10000));
  }
  std::vector<std::thread> drivers;
  std::vector<SnapshotStats> finals(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    drivers.emplace_back([this, t, &streams, &finals] {
      auto client = StreamQClient::Connect(server_.port());
      ASSERT_TRUE(client.ok());
      SessionOptions options;
      options.Name("tenant-" + std::to_string(t)).Window(100);
      const uint32_t tenant = static_cast<uint32_t>(t + 1);
      ASSERT_TRUE(client.value()->RegisterQuery(tenant, options).ok());
      IngestInBatches(client.value().get(), tenant, streams[t]);
      auto stats = client.value()->Unregister(tenant);
      ASSERT_TRUE(stats.ok());
      finals[t] = stats.value();
    });
  }
  for (std::thread& d : drivers) d.join();
  for (int t = 0; t < kTenants; ++t) {
    EXPECT_TRUE(finals[t].AccountingIdentityHolds()) << "tenant " << t;
    EXPECT_EQ(finals[t].events_ingested,
              static_cast<int64_t>(streams[t].size()));
    // Concurrency must not leak events across tenants: each final matches
    // its own solo baseline.
    SessionOptions options;
    options.Name("tenant-" + std::to_string(t)).Window(100);
    EXPECT_EQ(finals[t], SoloBaseline(options, streams[t])) << "tenant " << t;
  }
  EXPECT_EQ(server_.stats().protocol_errors, 0);
}

TEST_F(ServerLoopbackTest, MetricsFrameExposesServerWideRegistry) {
  const std::vector<Event> events = TestStream(31);
  SessionOptions options;
  options.Name("metered").Window(100).QualityTarget(0.9);

  auto client = Connect();
  ASSERT_TRUE(client->RegisterQuery(1, options).ok());
  IngestInBatches(client.get(), 1, events);
  ASSERT_TRUE(client->Unregister(1).ok());

  auto prom = client->Metrics(kMetricsFormatPrometheus);
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom.value().find("streamq_source_events_total"),
            std::string::npos);
  EXPECT_NE(prom.value().find("streamq_window_amends_total"),
            std::string::npos);
  EXPECT_NE(prom.value().find("streamq_window_amend_rate"), std::string::npos);

  auto json = client->Metrics(kMetricsFormatJson);
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json.value().front(), '{');
  EXPECT_NE(json.value().find("streamq.window.amends_total"),
            std::string::npos);

  // Unknown format byte is a protocol error, and the connection survives it.
  auto bad = client->Metrics(42);
  EXPECT_FALSE(bad.ok());
  auto again = client->Metrics(kMetricsFormatPrometheus);
  EXPECT_TRUE(again.ok());
}

TEST_F(ServerLoopbackTest, ShutdownFrameUnblocksWait) {
  std::thread waiter([this] { server_.WaitForShutdownRequest(); });
  auto client = Connect();
  EXPECT_TRUE(client->Shutdown().ok());
  waiter.join();  // Must return promptly after the shutdown request.
}

}  // namespace
}  // namespace streamq
