#include "stream/disorder_metrics.h"

#include <gtest/gtest.h>

#include "stream/generator.h"

namespace streamq {
namespace {

Event MakeEvent(int64_t id, TimestampUs ts) {
  Event e;
  e.id = id;
  e.event_time = ts;
  e.arrival_time = 1000 + id;  // Arrival order == id order.
  return e;
}

TEST(DisorderMetricsTest, EmptyStream) {
  const DisorderStats s = ComputeDisorderStats({});
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.out_of_order_fraction, 0.0);
}

TEST(DisorderMetricsTest, InOrderStreamHasZeroLateness) {
  std::vector<Event> events;
  for (int i = 0; i < 10; ++i) events.push_back(MakeEvent(i, i * 100));
  const DisorderStats s = ComputeDisorderStats(events);
  EXPECT_EQ(s.count, 10);
  EXPECT_DOUBLE_EQ(s.out_of_order_fraction, 0.0);
  EXPECT_EQ(s.max_lateness_us, 0);
  EXPECT_EQ(s.max_displacement, 0);
}

TEST(DisorderMetricsTest, SingleLateTuple) {
  // ts: 0, 100, 200, 50, 300 -> the 4th tuple is 150 late.
  std::vector<Event> events = {MakeEvent(0, 0), MakeEvent(1, 100),
                               MakeEvent(2, 200), MakeEvent(3, 50),
                               MakeEvent(4, 300)};
  const DisorderStats s = ComputeDisorderStats(events);
  EXPECT_DOUBLE_EQ(s.out_of_order_fraction, 0.2);
  EXPECT_EQ(s.max_lateness_us, 150);

  const auto lateness = ComputeLateness(events);
  ASSERT_EQ(lateness.size(), 5u);
  EXPECT_EQ(lateness[0], 0);
  EXPECT_EQ(lateness[3], 150);
  EXPECT_EQ(lateness[4], 0);
}

TEST(DisorderMetricsTest, MaxDisplacement) {
  // Event with ts=10 arrives last among 5: it must move 4 positions left.
  std::vector<Event> events = {MakeEvent(0, 100), MakeEvent(1, 200),
                               MakeEvent(2, 300), MakeEvent(3, 400),
                               MakeEvent(4, 10)};
  const DisorderStats s = ComputeDisorderStats(events);
  EXPECT_EQ(s.max_displacement, 4);
}

TEST(DisorderMetricsTest, FullyReversedStream) {
  std::vector<Event> events;
  for (int i = 0; i < 10; ++i) events.push_back(MakeEvent(i, 1000 - i * 100));
  const DisorderStats s = ComputeDisorderStats(events);
  EXPECT_DOUBLE_EQ(s.out_of_order_fraction, 0.9);  // All but the first.
  EXPECT_EQ(s.max_displacement, 9);
  EXPECT_EQ(s.max_lateness_us, 900);
}

TEST(DisorderMetricsTest, LatenessIsKSlackSufficiency) {
  // Property: a K-slack buffer with K = max_lateness re-orders the stream
  // perfectly. Here: generated workload, check the reported max lateness
  // is exactly the max over the per-tuple lateness trace.
  WorkloadConfig cfg;
  cfg.num_events = 2000;
  cfg.seed = 77;
  const GeneratedWorkload w = GenerateWorkload(cfg);
  const DisorderStats s = ComputeDisorderStats(w.arrival_order);
  const auto lateness = ComputeLateness(w.arrival_order);
  DurationUs max_l = 0;
  for (DurationUs l : lateness) max_l = std::max(max_l, l);
  EXPECT_EQ(s.max_lateness_us, max_l);
  EXPECT_GT(max_l, 0);
}

TEST(DisorderMetricsTest, ToStringHasFields) {
  const DisorderStats s = ComputeDisorderStats(
      {MakeEvent(0, 100), MakeEvent(1, 50)});
  const std::string str = s.ToString();
  EXPECT_NE(str.find("ooo="), std::string::npos);
  EXPECT_NE(str.find("max_disp="), std::string::npos);
}

}  // namespace
}  // namespace streamq
