/// Edge cases across modules: extreme timestamps, empty streams, idle gaps,
/// degenerate configurations — the inputs that find arithmetic bugs.

#include <gtest/gtest.h>

#include "core/executor.h"
#include "quality/oracle.h"
#include "disorder/fixed_kslack.h"
#include "disorder/mp_kslack.h"
#include "tests/test_util.h"
#include "window/paned_window_operator.h"
#include "window/window_operator.h"

namespace streamq {
namespace {

using testutil::E;

TEST(EdgeCaseTest, EmptyStreamThroughFullPipeline) {
  QueryExecutor exec(QueryBuilder("empty")
                         .Tumbling(Millis(10))
                         .Aggregate("sum")
                         .QualityTarget(0.95)
                         .Build());
  VectorSource source({});
  const RunReport report = exec.Run(&source);
  EXPECT_EQ(report.events_processed, 0);
  EXPECT_TRUE(report.results.empty());
}

TEST(EdgeCaseTest, SingleEventStream) {
  QueryExecutor exec(QueryBuilder("one")
                         .Tumbling(Millis(10))
                         .Aggregate("mean")
                         .FixedSlack(Millis(5))
                         .Build());
  exec.Feed(E(0, 1234, 1234));
  exec.Finish();
  ASSERT_EQ(exec.results().size(), 1u);
  EXPECT_DOUBLE_EQ(exec.results()[0].value, 0.0);  // Value == id == 0.
  EXPECT_EQ(exec.results()[0].tuple_count, 1);
}

TEST(EdgeCaseTest, NegativeEventTimes) {
  // The engine must handle negative timestamps (epochs before the origin).
  FixedKSlack handler(100);
  CollectingSink sink;
  handler.OnEvent(E(0, -1000, 10), &sink);
  handler.OnEvent(E(1, -900, 20), &sink);
  handler.OnEvent(E(2, -700, 30), &sink);  // Threshold -800: releases -1000.
  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_EQ(sink.events[0].event_time, -1000);
  handler.Flush(&sink);
  EXPECT_EQ(sink.events.size(), 3u);
  EXPECT_TRUE(IsEventTimeOrdered(sink.events));
}

TEST(EdgeCaseTest, NegativeTimesThroughWindows) {
  CollectingResultSink results;
  WindowedAggregation::Options o;
  o.window = WindowSpec::Tumbling(100);
  o.aggregate.kind = AggKind::kCount;
  WindowedAggregation op(o, &results);
  op.OnEvent(E(0, -150, 0));
  op.OnEvent(E(1, -50, 1));
  op.OnWatermark(kMaxTimestamp, 10);
  ASSERT_EQ(results.results.size(), 2u);
  EXPECT_EQ(results.results[0].bounds, (WindowBounds{-200, -100}));
  EXPECT_EQ(results.results[1].bounds, (WindowBounds{-100, 0}));
}

TEST(EdgeCaseTest, HugeSlackDoesNotOverflowThreshold) {
  // K near the full timestamp range: ReleaseThreshold must saturate rather
  // than wrap.
  FixedKSlack handler(kMaxTimestamp / 2);
  CollectingSink sink;
  handler.OnEvent(E(0, 0, 0), &sink);
  handler.OnEvent(E(1, 1000, 1000), &sink);
  EXPECT_TRUE(sink.events.empty());  // Nothing releasable; no crash.
  handler.Flush(&sink);
  EXPECT_EQ(sink.events.size(), 2u);
}

TEST(EdgeCaseTest, DuplicateTimestampsKeepStableIdOrder) {
  // K large enough that the equal-timestamp tuples sit in the buffer
  // together and are released as one batch: order must be by id.
  FixedKSlack handler(50);
  CollectingSink sink;
  handler.OnEvent(E(5, 100, 10), &sink);
  handler.OnEvent(E(3, 100, 11), &sink);
  handler.OnEvent(E(4, 100, 12), &sink);
  EXPECT_TRUE(sink.events.empty());
  handler.OnEvent(E(9, 200, 13), &sink);  // Threshold 150: releases batch.
  ASSERT_EQ(sink.events.size(), 3u);
  EXPECT_EQ(sink.events[0].id, 3);
  EXPECT_EQ(sink.events[1].id, 4);
  EXPECT_EQ(sink.events[2].id, 5);
  handler.Flush(&sink);
  EXPECT_EQ(sink.events.size(), 4u);
}

TEST(EdgeCaseTest, PanedOperatorSkipsLongIdleGaps) {
  // Hours of idle event time between two bursts: the fire cursor must jump,
  // not iterate over millions of empty windows.
  CollectingResultSink results;
  PanedWindowedAggregation::Options o;
  o.window = WindowSpec::Sliding(Millis(1), Millis(1));
  o.aggregate.kind = AggKind::kCount;
  PanedWindowedAggregation op(o, &results);
  op.OnEvent(E(0, 0, 0));
  op.OnWatermark(Millis(1), 1);
  ASSERT_EQ(results.results.size(), 1u);
  // Jump ~1 hour of event time.
  op.OnEvent(E(1, Seconds(3600), Seconds(3600)));
  op.OnWatermark(Seconds(3600) + Millis(1), Seconds(3600) + 1);
  ASSERT_EQ(results.results.size(), 2u);  // Returns promptly.
  EXPECT_EQ(results.results[1].bounds.start, Seconds(3600));
}

TEST(EdgeCaseTest, WindowOperatorIdleGapFiresAllPendingWindows) {
  CollectingResultSink results;
  WindowedAggregation::Options o;
  o.window = WindowSpec::Tumbling(Millis(1));
  o.aggregate.kind = AggKind::kCount;
  WindowedAggregation op(o, &results);
  op.OnEvent(E(0, 0, 0));
  op.OnEvent(E(1, Seconds(100), Seconds(100)));
  op.OnWatermark(Seconds(100), Seconds(100));
  ASSERT_EQ(results.results.size(), 1u);  // Only the old window.
  EXPECT_EQ(op.live_windows(), 1u);       // The new one stays open.
}

TEST(EdgeCaseTest, MpKSlackHandlesInOrderStreamWithZeroSlack) {
  // Fully in-order input: bound stays 0 and everything passes with zero
  // buffering latency.
  MpKSlack handler(MpKSlack::Options{});
  CollectingSink sink;
  for (int i = 0; i < 100; ++i) {
    handler.OnEvent(E(i, i * 100, i * 100), &sink);
  }
  handler.Flush(&sink);
  EXPECT_EQ(handler.current_slack(), 0);
  EXPECT_EQ(sink.events.size(), 100u);
  EXPECT_TRUE(sink.late_events.empty());
}

TEST(EdgeCaseTest, QuantileAggregateOverSingleValue) {
  auto agg = MakeAggregator(
      AggregateSpec{.kind = AggKind::kQuantile, .quantile_q = 0.99});
  agg->Add(7.0);
  EXPECT_DOUBLE_EQ(agg->Value(), 7.0);
}

TEST(EdgeCaseTest, ZeroLengthStreamOracle) {
  const OracleEvaluator oracle({}, WindowSpec::Tumbling(100),
                               AggregateSpec{.kind = AggKind::kSum});
  EXPECT_EQ(oracle.total_windows(), 0);
}

TEST(EdgeCaseTest, HeartbeatOnlyStream) {
  // A stream of pure heartbeats produces watermarks but no results.
  QueryExecutor exec(QueryBuilder("hb-only")
                         .Tumbling(Millis(10))
                         .Aggregate("sum")
                         .FixedSlack(Millis(5))
                         .Build());
  exec.FeedHeartbeat(Millis(100), Millis(100));
  exec.FeedHeartbeat(Millis(200), Millis(200));
  exec.Finish();
  EXPECT_TRUE(exec.results().empty());
}

TEST(EdgeCaseTest, IdenticalArrivalTimesProcessDeterministically) {
  // Batched arrivals (equal arrival_time) are a common real pattern.
  WorkloadConfig cfg;
  cfg.num_events = 1000;
  cfg.delay.model = DelayModel::kConstant;
  cfg.delay.a = 0.0;
  cfg.events_per_second = 1e9;  // Microsecond collisions guaranteed.
  cfg.seed = 3;
  const auto w = GenerateWorkload(cfg);
  QueryExecutor a(QueryBuilder("b").Tumbling(Millis(1)).Aggregate("sum")
                      .FixedSlack(Millis(1)).Build());
  QueryExecutor b(QueryBuilder("b").Tumbling(Millis(1)).Aggregate("sum")
                      .FixedSlack(Millis(1)).Build());
  VectorSource sa(w.arrival_order), sb(w.arrival_order);
  const RunReport ra = a.Run(&sa);
  const RunReport rb = b.Run(&sb);
  ASSERT_EQ(ra.results.size(), rb.results.size());
  for (size_t i = 0; i < ra.results.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.results[i].value, rb.results[i].value);
  }
}

}  // namespace
}  // namespace streamq
