#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/stats.h"

namespace streamq {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(10);
  RunningMoments m;
  for (int i = 0; i < 100000; ++i) m.Add(rng.NextDouble());
  EXPECT_NEAR(m.mean(), 0.5, 0.01);
  EXPECT_NEAR(m.variance(), 1.0 / 12.0, 0.01);
}

TEST(RngTest, NextIntCoversRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextIntSingleton) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextInt(5, 5), 5);
}

TEST(RngTest, NextIntIsUnbiased) {
  // Chi-squared-ish sanity check over 10 buckets.
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<size_t>(rng.NextInt(0, 9))];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(14);
  RunningMoments m;
  for (int i = 0; i < 200000; ++i) m.Add(rng.NextGaussian());
  EXPECT_NEAR(m.mean(), 0.0, 0.01);
  EXPECT_NEAR(m.variance(), 1.0, 0.02);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(15);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.NextBool(0.3)) ++heads;
  }
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.01);
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(16);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

// --- Delay samplers -------------------------------------------------------

struct SamplerCase {
  const char* name;
  std::unique_ptr<DelaySampler> (*make)();
  double mean_tolerance_frac;
};

std::unique_ptr<DelaySampler> MakeConst() {
  return std::make_unique<ConstantDelay>(500.0);
}
std::unique_ptr<DelaySampler> MakeUniform() {
  return std::make_unique<UniformDelay>(100.0, 900.0);
}
std::unique_ptr<DelaySampler> MakeExp() {
  return std::make_unique<ExponentialDelay>(400.0);
}
std::unique_ptr<DelaySampler> MakeNormal() {
  return std::make_unique<NormalDelay>(500.0, 50.0);
}
std::unique_ptr<DelaySampler> MakeLogNormal() {
  return std::make_unique<LogNormalDelay>(5.0, 0.5);
}
std::unique_ptr<DelaySampler> MakePareto() {
  return std::make_unique<ParetoDelay>(100.0, 3.0);
}

class DelaySamplerTest
    : public ::testing::TestWithParam<SamplerCase> {};

TEST_P(DelaySamplerTest, SamplesNonNegative) {
  auto sampler = GetParam().make();
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(sampler->Sample(&rng), 0.0);
  }
}

TEST_P(DelaySamplerTest, EmpiricalMeanMatchesAnalytic) {
  auto sampler = GetParam().make();
  Rng rng(18);
  RunningMoments m;
  for (int i = 0; i < 200000; ++i) m.Add(sampler->Sample(&rng));
  const double expected = sampler->Mean();
  EXPECT_NEAR(m.mean(), expected,
              expected * GetParam().mean_tolerance_frac + 1e-9)
      << sampler->Describe();
}

TEST_P(DelaySamplerTest, DescribeIsNonEmpty) {
  auto sampler = GetParam().make();
  EXPECT_FALSE(sampler->Describe().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllSamplers, DelaySamplerTest,
    ::testing::Values(SamplerCase{"constant", &MakeConst, 0.0},
                      SamplerCase{"uniform", &MakeUniform, 0.02},
                      SamplerCase{"exponential", &MakeExp, 0.02},
                      SamplerCase{"normal", &MakeNormal, 0.02},
                      SamplerCase{"lognormal", &MakeLogNormal, 0.03},
                      SamplerCase{"pareto", &MakePareto, 0.05}),
    [](const ::testing::TestParamInfo<SamplerCase>& info) {
      return info.param.name;
    });

TEST(ParetoDelayTest, InfiniteMeanForAlphaLeqOne) {
  ParetoDelay p(100.0, 1.0);
  EXPECT_TRUE(std::isinf(p.Mean()));
}

TEST(LogNormalDelayTest, AnalyticMean) {
  LogNormalDelay d(0.0, 1.0);
  EXPECT_NEAR(d.Mean(), std::exp(0.5), 1e-12);
}

TEST(ZipfSamplerTest, SkewConcentratesOnSmallKeys) {
  ZipfSampler zipf(1000, 1.2);
  Rng rng(19);
  int64_t first_decile = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(&rng) < 100) ++first_decile;
  }
  // With s=1.2 the head is much heavier than uniform (10%).
  EXPECT_GT(first_decile, n / 2);
}

TEST(ZipfSamplerTest, CoversDomain) {
  ZipfSampler zipf(5, 0.5);
  Rng rng(20);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 20000; ++i) {
    const int64_t k = zipf.Sample(&rng);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, 5);
    ++counts[static_cast<size_t>(k)];
  }
  for (int c : counts) EXPECT_GT(c, 0);
  // Monotone decreasing frequencies.
  for (size_t i = 1; i < counts.size(); ++i) {
    EXPECT_GE(counts[i - 1], counts[i] * 3 / 4);
  }
}

TEST(ZipfSamplerTest, SingleKey) {
  ZipfSampler zipf(1, 2.0);
  Rng rng(21);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(&rng), 0);
}

}  // namespace
}  // namespace streamq
