#include "disorder/lb_kslack.h"

#include <gtest/gtest.h>

#include "core/continuous_query.h"
#include "tests/test_util.h"

namespace streamq {
namespace {

LbKSlack::Options WithBudget(DurationUs budget) {
  LbKSlack::Options o;
  o.latency_budget = budget;
  return o;
}

double AchievedCoverage(const DisorderHandlerStats& stats) {
  return 1.0 - static_cast<double>(stats.events_late) /
                   static_cast<double>(stats.events_in);
}

TEST(LbKSlackTest, OrderingContractHolds) {
  for (DurationUs budget : {Millis(2), Millis(10), Millis(50)}) {
    LbKSlack handler(WithBudget(budget));
    testutil::ContractCheckingSink sink;
    testutil::RunHandler(&handler,
                         testutil::DisorderedWorkload(5000).arrival_order,
                         &sink);
    EXPECT_TRUE(sink.ordered) << budget;
    EXPECT_TRUE(sink.respects_watermark) << budget;
    EXPECT_TRUE(sink.watermarks_monotone) << budget;
  }
}

TEST(LbKSlackTest, ConservationOfTuples) {
  LbKSlack handler(WithBudget(Millis(10)));
  CollectingSink sink;
  const auto w = testutil::DisorderedWorkload(5000);
  testutil::RunHandler(&handler, w.arrival_order, &sink);
  EXPECT_EQ(sink.events.size() + sink.late_events.size(),
            w.arrival_order.size());
}

class LbKSlackBudgetTest : public ::testing::TestWithParam<DurationUs> {};

TEST_P(LbKSlackBudgetTest, MeanLatencyNearBudget) {
  const DurationUs budget = GetParam();
  LbKSlack handler(WithBudget(budget));
  CollectingSink sink;
  testutil::RunHandler(&handler,
                       testutil::DisorderedWorkload(40000, 23).arrival_order,
                       &sink);
  const double mean = handler.stats().buffering_latency_us.mean();
  // Within 40% of the budget (the loop regulates a noisy plant; what
  // matters is the order of magnitude and no runaway).
  EXPECT_GT(mean, static_cast<double>(budget) * 0.6) << budget;
  EXPECT_LT(mean, static_cast<double>(budget) * 1.4) << budget;
}

INSTANTIATE_TEST_SUITE_P(Budgets, LbKSlackBudgetTest,
                         ::testing::Values(Millis(5), Millis(15), Millis(40)));

TEST(LbKSlackTest, LargerBudgetBuysMoreQuality) {
  const auto w = testutil::DisorderedWorkload(40000, 29);
  double prev_coverage = -1.0;
  for (DurationUs budget : {Millis(3), Millis(12), Millis(50)}) {
    LbKSlack handler(WithBudget(budget));
    CollectingSink sink;
    testutil::RunHandler(&handler, w.arrival_order, &sink);
    const double coverage = AchievedCoverage(handler.stats());
    EXPECT_GT(coverage, prev_coverage) << budget;
    prev_coverage = coverage;
  }
  EXPECT_GT(prev_coverage, 0.9);  // 50ms budget on 20ms-mean delays.
}

TEST(LbKSlackTest, AdaptsToDelayShift) {
  // After delays shrink, the operator should spend the freed budget is
  // moot — latency stays near budget, and K shrinks with the delays.
  WorkloadConfig cfg;
  cfg.num_events = 40000;
  cfg.delay.model = DelayModel::kExponential;
  cfg.delay.a = 20000.0;
  cfg.dynamics.kind = DynamicsKind::kStep;
  cfg.dynamics.factor = 0.2;
  cfg.dynamics.t0 = Seconds(2);
  cfg.seed = 31;
  const auto w = GenerateWorkload(cfg);

  LbKSlack handler(WithBudget(Millis(15)));
  CollectingSink sink;
  // Track K at the end of each regime.
  DurationUs k_before = 0;
  for (const Event& e : w.arrival_order) {
    handler.OnEvent(e, &sink);
    if (e.arrival_time < Seconds(2)) k_before = handler.current_slack();
  }
  const DurationUs k_after = handler.current_slack();
  handler.Flush(&sink);
  // With 5x smaller delays, achieving the same latency budget allows a
  // relatively *higher* coverage; K tracks the (smaller) delay quantiles.
  EXPECT_LT(k_after, k_before);
}

TEST(LbKSlackTest, InstrumentationPopulated) {
  LbKSlack handler(WithBudget(Millis(10)));
  CollectingSink sink;
  testutil::RunHandler(&handler,
                       testutil::DisorderedWorkload(5000).arrival_order,
                       &sink);
  EXPECT_GE(handler.setpoint(), 0.0);
  EXPECT_LE(handler.setpoint(), 1.0);
  EXPECT_GT(handler.last_interval_latency(), 0.0);
  EXPECT_EQ(handler.name(), "lb-kslack");
}

TEST(LbKSlackTest, RejectsBadOptions) {
  EXPECT_DEATH(LbKSlack handler(WithBudget(0)), "Check failed");
  LbKSlack::Options o = WithBudget(Millis(10));
  o.adaptation_interval = 0;
  EXPECT_DEATH(LbKSlack handler(o), "Check failed");
}

TEST(LbKSlackTest, BuilderIntegration) {
  const ContinuousQuery q = QueryBuilder("lb")
                                .Tumbling(Millis(50))
                                .Aggregate("sum")
                                .LatencyBudget(Millis(10))
                                .Build();
  EXPECT_EQ(q.handler.kind, DisorderHandlerSpec::Kind::kLbKSlack);
  EXPECT_NE(q.Describe().find("lb-kslack"), std::string::npos);
  auto handler = MakeDisorderHandlerOrDie(q.handler);
  EXPECT_EQ(handler->name(), "lb-kslack");
}

}  // namespace
}  // namespace streamq
