// Skew-aware rebalancing and the new runtime switches must never change
// results. The load-bearing property (parallel_runner.h): a virtual shard
// is a whole pipeline, so WHERE it runs — and when it migrates — cannot
// affect WHAT it emits. These tests pin that, byte for byte, against
// static placement, against the legacy topology, across allocation modes,
// and across single- vs multi-producer feeds.

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel_runner.h"
#include "stream/generator.h"
#include "stream/source.h"

namespace streamq {
namespace {

ContinuousQuery KeyedQuery() {
  ContinuousQuery q;
  q.name = "keyed";
  q.handler = DisorderHandlerSpec::Fixed(Millis(50)).PerKey();
  q.window.window = WindowSpec::Tumbling(Millis(50));
  q.window.aggregate.kind = AggKind::kSum;
  q.window.per_key_watermarks = true;
  return q;
}

/// Zipf-skewed keys (a handful of keys dominate → hot shards), delays
/// bounded strictly below K so nothing is ever late and even cross-source
/// interleaving cannot change any per-key outcome.
GeneratedWorkload SkewedWorkload(int64_t n = 20000, double zipf_s = 1.2) {
  WorkloadConfig cfg;
  cfg.num_events = n;
  cfg.events_per_second = 10000.0;
  cfg.num_keys = 64;
  cfg.key_zipf_s = zipf_s;
  cfg.delay.model = DelayModel::kUniform;
  cfg.delay.a = 0.0;
  cfg.delay.b = 30000.0;  // < K = 50ms.
  cfg.seed = 11;
  return GenerateWorkload(cfg);
}

ParallelOptions SkewOptions() {
  ParallelOptions options;
  options.batch_size = 64;
  options.virtual_shards = 16;
  return options;
}

void ExpectSameMergedOutcome(const RunReport& a, const RunReport& b) {
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.results, b.results);
  EXPECT_EQ(a.handler_stats.events_in, b.handler_stats.events_in);
  EXPECT_EQ(a.handler_stats.events_out, b.handler_stats.events_out);
  EXPECT_EQ(a.handler_stats.events_late, b.handler_stats.events_late);
  EXPECT_EQ(a.window_stats.windows_fired, b.window_stats.windows_fired);
  EXPECT_EQ(a.window_stats.revisions, b.window_stats.revisions);
}

TEST(RebalanceEquivalenceTest, RebalancedRunMatchesStaticPlacementByteForByte) {
  const auto w = SkewedWorkload();

  ParallelOptions static_opts = SkewOptions();
  ShardedKeyedRunner static_runner(KeyedQuery(), /*num_workers=*/4,
                                   static_opts);
  VectorSource s1(w.arrival_order);
  const RunReport static_report = static_runner.Run(&s1);
  ASSERT_TRUE(static_report.status.ok()) << static_report.status.ToString();
  EXPECT_EQ(static_runner.migrations(), 0);

  ParallelOptions rebalance_opts = SkewOptions();
  rebalance_opts.rebalance = true;
  rebalance_opts.rebalance_interval_batches = 8;
  rebalance_opts.rebalance_threshold = 1.1;
  ShardedKeyedRunner rebalance_runner(KeyedQuery(), /*num_workers=*/4,
                                      rebalance_opts);
  VectorSource s2(w.arrival_order);
  const RunReport rebalanced = rebalance_runner.Run(&s2);
  ASSERT_TRUE(rebalanced.status.ok()) << rebalanced.status.ToString();

  // The Zipf skew must actually trip the rebalancer…
  EXPECT_GT(rebalance_runner.migrations(), 0);
  // …and moving shards mid-run must not change a single byte of output.
  ExpectSameMergedOutcome(static_report, rebalanced);

  // Accounting sanity: every routed event was processed by some worker.
  int64_t routed = 0;
  int64_t processed = 0;
  for (const WorkerLoad& load : rebalance_runner.worker_loads()) {
    routed += load.events_routed;
    processed += load.events_processed;
  }
  EXPECT_EQ(routed, static_cast<int64_t>(w.arrival_order.size()));
  EXPECT_EQ(processed, static_cast<int64_t>(w.arrival_order.size()));
}

TEST(RebalanceEquivalenceTest, RebalancedRunIsDeterministic) {
  const auto w = SkewedWorkload(12000);
  ParallelOptions opts = SkewOptions();
  opts.rebalance = true;
  opts.rebalance_interval_batches = 8;
  opts.rebalance_threshold = 1.1;

  ShardedKeyedRunner first(KeyedQuery(), 3, opts);
  VectorSource s1(w.arrival_order);
  const RunReport r1 = first.Run(&s1);
  ShardedKeyedRunner second(KeyedQuery(), 3, opts);
  VectorSource s2(w.arrival_order);
  const RunReport r2 = second.Run(&s2);

  // Decisions derive only from routed counts, so reruns repeat them.
  EXPECT_EQ(first.migrations(), second.migrations());
  ExpectSameMergedOutcome(r1, r2);
}

TEST(RebalanceEquivalenceTest, VirtualShardsMatchLegacyTopology) {
  const auto w = SkewedWorkload(10000);

  // Legacy: virtual_shards = 0 → one shard per worker (W = V = 8).
  ParallelOptions legacy_opts;
  legacy_opts.batch_size = 64;
  ShardedKeyedRunner legacy(KeyedQuery(), /*num_workers=*/8, legacy_opts);
  VectorSource s1(w.arrival_order);
  const RunReport legacy_report = legacy.Run(&s1);

  // Same 8 hash shards multiplexed onto 2 workers: same executors, same
  // subsequences, same merged output.
  ParallelOptions mux_opts;
  mux_opts.batch_size = 64;
  mux_opts.virtual_shards = 8;
  ShardedKeyedRunner mux(KeyedQuery(), /*num_workers=*/2, mux_opts);
  VectorSource s2(w.arrival_order);
  const RunReport mux_report = mux.Run(&s2);

  ExpectSameMergedOutcome(legacy_report, mux_report);
}

TEST(RebalanceEquivalenceTest, ArenaModeIsAPureAllocationSwitch) {
  const auto w = SkewedWorkload(10000);

  ParallelOptions arena_opts = SkewOptions();
  arena_opts.use_arena = true;
  ShardedKeyedRunner arena_runner(KeyedQuery(), 3, arena_opts);
  VectorSource s1(w.arrival_order);
  const RunReport with_arena = arena_runner.Run(&s1);

  ParallelOptions malloc_opts = SkewOptions();
  malloc_opts.use_arena = false;
  ShardedKeyedRunner malloc_runner(KeyedQuery(), 3, malloc_opts);
  VectorSource s2(w.arrival_order);
  const RunReport with_malloc = malloc_runner.Run(&s2);

  ExpectSameMergedOutcome(with_arena, with_malloc);
  EXPECT_NE(with_arena.runtime_config.find("arena=on"), std::string::npos);
  EXPECT_NE(with_malloc.runtime_config.find("arena=off"), std::string::npos);
}

TEST(RebalanceEquivalenceTest, CorePinningIsBestEffortAndHarmless) {
  const auto w = SkewedWorkload(6000);
  ParallelOptions opts = SkewOptions();
  opts.pin_cores = true;  // May be refused (cpuset); must never fail the run.
  ShardedKeyedRunner runner(KeyedQuery(), 2, opts);
  VectorSource source(w.arrival_order);
  const RunReport report = runner.Run(&source);
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_EQ(report.events_processed,
            static_cast<int64_t>(w.arrival_order.size()));
  EXPECT_NE(report.runtime_config.find("pin="), std::string::npos);
}

/// Strips emission order/time for cross-interleaving comparison.
std::multiset<std::tuple<TimestampUs, int64_t, double, int64_t>>
FirstEmissions(const std::vector<WindowResult>& results) {
  std::multiset<std::tuple<TimestampUs, int64_t, double, int64_t>> out;
  for (const WindowResult& r : results) {
    if (r.is_revision) continue;
    out.insert({r.bounds.start, r.key, r.value, r.tuple_count});
  }
  return out;
}

/// Splits a stream into key-disjoint sub-streams (arrival order preserved
/// within each), the precondition under which RunMultiSource's merged
/// first emissions must match the single-source run.
std::vector<std::vector<Event>> PartitionByKey(const std::vector<Event>& events,
                                               size_t parts) {
  std::vector<std::vector<Event>> out(parts);
  for (const Event& e : events) {
    out[static_cast<size_t>(e.key) % parts].push_back(e);
  }
  return out;
}

TEST(RebalanceEquivalenceTest, MpscKeyDisjointSourcesMatchSingleSource) {
  const auto w = SkewedWorkload(12000);
  const ContinuousQuery q = KeyedQuery();
  ParallelOptions opts = SkewOptions();

  ShardedKeyedRunner single(q, 3, opts);
  VectorSource merged_source(w.arrival_order);
  const RunReport single_report = single.Run(&merged_source);
  ASSERT_EQ(single_report.handler_stats.events_late, 0);  // Sanity.

  const auto parts = PartitionByKey(w.arrival_order, 3);
  VectorSource sa(parts[0]);
  VectorSource sb(parts[1]);
  VectorSource sc(parts[2]);
  EventSource* sources[3] = {&sa, &sb, &sc};
  ShardedKeyedRunner multi(q, 3, opts);
  const RunReport multi_report = multi.RunMultiSource(sources);

  ASSERT_TRUE(multi_report.status.ok()) << multi_report.status.ToString();
  EXPECT_EQ(multi_report.events_processed, single_report.events_processed);
  EXPECT_EQ(multi_report.handler_stats.events_in,
            single_report.handler_stats.events_in);
  EXPECT_EQ(multi_report.handler_stats.events_late, 0);
  EXPECT_EQ(FirstEmissions(multi_report.results),
            FirstEmissions(single_report.results));
  EXPECT_NE(multi_report.runtime_config.find("feed=mpsc"), std::string::npos);
}

TEST(RebalanceEquivalenceTest, RebalanceRejectsMultiSourceRuns) {
  ParallelOptions opts = SkewOptions();
  opts.rebalance = true;
  ShardedKeyedRunner runner(KeyedQuery(), 2, opts);
  const auto w = SkewedWorkload(1000);
  const auto parts = PartitionByKey(w.arrival_order, 2);
  VectorSource sa(parts[0]);
  VectorSource sb(parts[1]);
  EventSource* sources[2] = {&sa, &sb};
  EXPECT_DEATH(runner.RunMultiSource(sources),
               "rebalance requires a single-source run");
}

TEST(RebalanceEquivalenceTest, MultiQueryRunnerMultiSourceFeedsEverything) {
  const auto w = SkewedWorkload(9000);
  const auto parts = PartitionByKey(w.arrival_order, 3);
  VectorSource sa(parts[0]);
  VectorSource sb(parts[1]);
  VectorSource sc(parts[2]);
  EventSource* sources[3] = {&sa, &sb, &sc};

  ContinuousQuery q;
  q.name = "count";
  q.handler = DisorderHandlerSpec::Fixed(Millis(50));
  q.window.window = WindowSpec::Tumbling(Millis(50));
  q.window.aggregate.kind = AggKind::kCount;

  ParallelMultiQueryRunner runner;
  runner.AddQuery(q);
  ContinuousQuery q2 = q;
  q2.name = "count2";
  runner.AddQuery(q2);
  const auto reports = runner.RunMultiSource(sources);
  ASSERT_EQ(reports.size(), 2u);
  for (const RunReport& r : reports) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    // Every query sees every source's events exactly once.
    EXPECT_EQ(r.events_processed,
              static_cast<int64_t>(w.arrival_order.size()));
    EXPECT_NE(r.runtime_config.find("producers=3"), std::string::npos);
  }
}

}  // namespace
}  // namespace streamq
