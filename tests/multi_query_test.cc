#include "core/multi_query.h"

#include <gtest/gtest.h>

#include "quality/oracle.h"
#include "quality/quality_metrics.h"
#include "tests/test_util.h"

namespace streamq {
namespace {

ContinuousQuery MakeQuery(const std::string& name, double target,
                          AggKind kind = AggKind::kSum) {
  AggregateSpec agg;
  agg.kind = kind;
  return QueryBuilder(name)
      .Tumbling(Millis(50))
      .Aggregate(agg)
      .QualityTarget(target, /*gamma=*/1.0)
      .Build();
}

TEST(MultiQueryTest, SharedSpecPicksStrictestTarget) {
  const std::vector<ContinuousQuery> queries = {
      MakeQuery("a", 0.85), MakeQuery("b", 0.99), MakeQuery("c", 0.90)};
  const DisorderHandlerSpec spec = MultiQueryRunner::SharedHandlerSpec(queries);
  EXPECT_EQ(spec.kind, DisorderHandlerSpec::Kind::kAqKSlack);
  EXPECT_DOUBLE_EQ(spec.aq.target_quality, 0.99);
}

TEST(MultiQueryTest, SharedSpecFallsBackToFirstHandler) {
  ContinuousQuery fixed = MakeQuery("f", 0.9);
  fixed.handler = DisorderHandlerSpec::Fixed(Millis(7));
  ContinuousQuery pass = MakeQuery("p", 0.9);
  pass.handler = DisorderHandlerSpec::PassThrough();
  const DisorderHandlerSpec spec =
      MultiQueryRunner::SharedHandlerSpec({fixed, pass});
  EXPECT_EQ(spec.kind, DisorderHandlerSpec::Kind::kFixedKSlack);
  EXPECT_EQ(spec.fixed_k, Millis(7));
}

TEST(MultiQueryTest, IndependentMatchesSingleQueryRuns) {
  const auto w = testutil::DisorderedWorkload(10000);
  const ContinuousQuery q1 = MakeQuery("q1", 0.90);
  const ContinuousQuery q2 = MakeQuery("q2", 0.99, AggKind::kCount);

  MultiQueryRunner runner(MultiQueryRunner::Plan::kIndependent);
  runner.AddQuery(q1);
  runner.AddQuery(q2);
  VectorSource source(w.arrival_order);
  const auto reports = runner.Run(&source);
  ASSERT_EQ(reports.size(), 2u);

  for (size_t i = 0; i < 2; ++i) {
    QueryExecutor solo(i == 0 ? q1 : q2);
    VectorSource solo_source(w.arrival_order);
    const RunReport solo_report = solo.Run(&solo_source);
    ASSERT_EQ(reports[i].results.size(), solo_report.results.size())
        << reports[i].query_name;
    for (size_t j = 0; j < solo_report.results.size(); ++j) {
      EXPECT_EQ(reports[i].results[j].bounds, solo_report.results[j].bounds);
      EXPECT_DOUBLE_EQ(reports[i].results[j].value,
                       solo_report.results[j].value);
    }
  }
}

TEST(MultiQueryTest, SharedHandlerMeetsEveryTarget) {
  const auto w = testutil::DisorderedWorkload(30000, 3);
  MultiQueryRunner runner(MultiQueryRunner::Plan::kSharedHandler);
  runner.AddQuery(MakeQuery("loose", 0.85));
  runner.AddQuery(MakeQuery("strict", 0.97));
  VectorSource source(w.arrival_order);
  const auto reports = runner.Run(&source);
  ASSERT_EQ(reports.size(), 2u);

  AggregateSpec sum;
  sum.kind = AggKind::kSum;
  const OracleEvaluator oracle(w.arrival_order, WindowSpec::Tumbling(Millis(50)),
                               sum);
  for (const RunReport& r : reports) {
    const QualityReport quality = EvaluateQuality(r.results, oracle);
    // The shared handler runs at the strictest target, so both queries see
    // quality >= 0.97-ish.
    EXPECT_GE(quality.MeanQualityIncludingMissed(), 0.93) << r.query_name;
  }
  // Both reports describe the same shared handler.
  EXPECT_EQ(reports[0].handler_stats.events_in,
            reports[1].handler_stats.events_in);
  EXPECT_EQ(reports[0].final_slack, reports[1].final_slack);
}

TEST(MultiQueryTest, SharedHandlerCostsLooseQueriesLatency) {
  // The documented trade-off: under sharing, the loose query inherits the
  // strict query's buffering latency.
  const auto w = testutil::DisorderedWorkload(30000, 5);

  MultiQueryRunner shared(MultiQueryRunner::Plan::kSharedHandler);
  shared.AddQuery(MakeQuery("loose", 0.80));
  shared.AddQuery(MakeQuery("strict", 0.99));
  VectorSource s1(w.arrival_order);
  const auto shared_reports = shared.Run(&s1);

  MultiQueryRunner indep(MultiQueryRunner::Plan::kIndependent);
  indep.AddQuery(MakeQuery("loose", 0.80));
  indep.AddQuery(MakeQuery("strict", 0.99));
  VectorSource s2(w.arrival_order);
  const auto indep_reports = indep.Run(&s2);

  const double shared_loose_latency =
      shared_reports[0].handler_stats.buffering_latency_us.mean();
  const double indep_loose_latency =
      indep_reports[0].handler_stats.buffering_latency_us.mean();
  EXPECT_GT(shared_loose_latency, indep_loose_latency * 1.5);
}

TEST(MultiQueryTest, ManyQueriesOneStream) {
  const auto w = testutil::DisorderedWorkload(10000);
  MultiQueryRunner runner(MultiQueryRunner::Plan::kSharedHandler);
  const AggKind kinds[] = {AggKind::kSum, AggKind::kCount, AggKind::kMean,
                           AggKind::kMax, AggKind::kMin};
  int i = 0;
  for (AggKind kind : kinds) {
    // Built via += to dodge GCC 12's -Wrestrict false positive on
    // operator+(const char*, string&&) (GCC PR105651).
    std::string name = "q";
    name += std::to_string(i++);
    runner.AddQuery(MakeQuery(name, 0.95, kind));
  }
  VectorSource source(w.arrival_order);
  const auto reports = runner.Run(&source);
  ASSERT_EQ(reports.size(), 5u);
  for (const RunReport& r : reports) {
    EXPECT_GT(r.results.size(), 10u) << r.query_name;
    EXPECT_EQ(r.events_processed,
              static_cast<int64_t>(w.arrival_order.size()));
  }
}

TEST(MultiQueryTest, RunWithoutQueriesAborts) {
  MultiQueryRunner runner(MultiQueryRunner::Plan::kIndependent);
  VectorSource source({});
  EXPECT_DEATH(runner.Run(&source), "no queries added");
}

}  // namespace
}  // namespace streamq
