// Ring-vs-heap ReorderBuffer engine equivalence: the bucket-ring engine must
// be indistinguishable from the reference binary heap — byte-identical
// released-event sequences, watermark streams (merged and keyed), and whole
// RunReports — across every buffering handler kind, global and per-key, fed
// per-event and batched, including mid-stream heartbeats and the
// end-of-stream flush. Pop order is fully determined by the total order
// (event_time, id), so any divergence is an engine bug, not a tie-break.

#include <algorithm>
#include <cstddef>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/continuous_query.h"
#include "core/executor.h"
#include "disorder/handler_factory.h"
#include "stream/generator.h"
#include "tests/test_util.h"
#include "window/window.h"

namespace streamq {
namespace {

using Engine = ReorderBuffer::Engine;

/// The five buffering handler kinds (pass-through has no buffer and thus no
/// engine to compare).
std::vector<DisorderHandlerSpec> BufferingSpecs() {
  std::vector<DisorderHandlerSpec> specs;
  specs.push_back(DisorderHandlerSpec::Fixed(Millis(30)));
  {
    MpKSlack::Options mp;  // Default: sliding estimation window.
    specs.push_back(DisorderHandlerSpec::Mp(mp));
  }
  {
    AqKSlack::Options aq;
    aq.target_quality = 0.95;
    specs.push_back(DisorderHandlerSpec::Aq(aq));
  }
  {
    LbKSlack::Options lb;
    specs.push_back(DisorderHandlerSpec::Lb(lb));
  }
  {
    WatermarkReorderer::Options wm;
    wm.bound = Millis(30);
    wm.period_events = 7;  // Off-stride from the batch sizes under test.
    wm.allowed_lateness = Millis(10);
    specs.push_back(DisorderHandlerSpec::Watermark(wm));
  }
  return specs;
}

const std::vector<Event>& TestStream() {
  static const std::vector<Event>* events = [] {
    WorkloadConfig cfg;
    cfg.num_events = 4000;
    cfg.events_per_second = 10000.0;
    cfg.num_keys = 8;
    cfg.delay.model = DelayModel::kExponential;
    cfg.delay.a = 20000.0;
    cfg.seed = 42;
    return new std::vector<Event>(GenerateWorkload(cfg).arrival_order);
  }();
  return *events;
}

/// Records every sink callback with full payloads, in call order, so two
/// handler runs can be compared signal for signal.
struct RecordingSink : EventSink {
  void OnEvent(const Event& e) override { events.push_back(e); }
  void OnWatermark(TimestampUs watermark, TimestampUs stream_time) override {
    watermarks.emplace_back(watermark, stream_time);
  }
  void OnLateEvent(const Event& e) override { late_events.push_back(e); }
  void OnKeyedWatermark(int64_t key, TimestampUs watermark,
                        TimestampUs stream_time) override {
    keyed_watermarks.emplace_back(key, watermark, stream_time);
  }

  std::vector<Event> events;
  std::vector<std::pair<TimestampUs, TimestampUs>> watermarks;
  std::vector<Event> late_events;
  std::vector<std::tuple<int64_t, TimestampUs, TimestampUs>> keyed_watermarks;
};

/// Drives a bare handler over the test stream with heartbeats every 512
/// arrivals (bound = event-time frontier of the prefix) and a final Flush.
RecordingSink RunHandler(const DisorderHandlerSpec& spec, Engine engine,
                         size_t batch_size) {
  std::unique_ptr<DisorderHandler> handler =
      MakeDisorderHandlerOrDie(spec.WithBufferEngine(engine));
  RecordingSink sink;
  const std::span<const Event> stream(TestStream());
  TimestampUs frontier = kMinTimestamp;
  size_t fed = 0;
  while (fed < stream.size()) {
    const size_t n =
        std::min(batch_size == 0 ? size_t{1} : batch_size,
                 stream.size() - fed);
    const std::span<const Event> chunk = stream.subspan(fed, n);
    for (const Event& e : chunk) frontier = std::max(frontier, e.event_time);
    if (batch_size == 0) {
      for (const Event& e : chunk) handler->OnEvent(e, &sink);
    } else {
      handler->OnBatch(chunk, &sink);
    }
    fed += n;
    if (fed % 512 == 0) {
      handler->OnHeartbeat(frontier, chunk.back().arrival_time, &sink);
    }
  }
  handler->Flush(&sink);
  // Engine choice must not leak into the handler's own accounting either.
  EXPECT_EQ(handler->buffered(), 0u);
  return sink;
}

void ExpectSameSignals(const RecordingSink& heap, const RecordingSink& ring) {
  EXPECT_EQ(heap.events, ring.events);
  EXPECT_EQ(heap.watermarks, ring.watermarks);
  EXPECT_EQ(heap.late_events, ring.late_events);
  EXPECT_EQ(heap.keyed_watermarks, ring.keyed_watermarks);
}

using HandlerParam = std::tuple<int, bool, size_t>;  // (spec, keyed, batch)

class DisorderEngineEquivalenceTest
    : public ::testing::TestWithParam<HandlerParam> {};

TEST_P(DisorderEngineEquivalenceTest, RingMatchesHeapSignalForSignal) {
  const auto [spec_index, keyed, batch_size] = GetParam();
  DisorderHandlerSpec spec = BufferingSpecs()[static_cast<size_t>(spec_index)];
  if (keyed) spec = spec.PerKey();
  SCOPED_TRACE(spec.Describe() + " batch=" + std::to_string(batch_size));
  ExpectSameSignals(RunHandler(spec, Engine::kHeap, batch_size),
                    RunHandler(spec, Engine::kRing, batch_size));
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecs, DisorderEngineEquivalenceTest,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Bool(),
                       ::testing::Values<size_t>(0, 1, 64)),
    [](const ::testing::TestParamInfo<HandlerParam>& info) {
      std::string name = "spec";  // += avoids GCC 12 -Wrestrict (PR105651).
      name += std::to_string(std::get<0>(info.param));
      name += std::get<1>(info.param) ? "_keyed" : "_global";
      const size_t b = std::get<2>(info.param);
      name += b == 0 ? std::string("_perevent") : "_batch" + std::to_string(b);
      return name;
    });

// --- Full-pipeline RunReport equivalence ---------------------------------

ContinuousQuery QueryFor(const DisorderHandlerSpec& spec) {
  ContinuousQuery q;
  q.name = "engine-equiv";
  q.handler = spec;
  q.window.window = WindowSpec::Sliding(Millis(50), Millis(25));
  q.window.aggregate.kind = AggKind::kSum;
  q.window.allowed_lateness = Millis(20);
  q.window.per_key_watermarks = spec.per_key;
  return q;
}

RunReport RunPipeline(const ContinuousQuery& q, size_t batch_size) {
  QueryExecutor exec(q);
  const std::span<const Event> events(TestStream());
  size_t fed = 0;
  TimestampUs frontier = kMinTimestamp;
  while (fed < events.size()) {
    const size_t n = std::min(batch_size == 0 ? size_t{1} : batch_size,
                              events.size() - fed);
    const std::span<const Event> chunk = events.subspan(fed, n);
    for (const Event& e : chunk) frontier = std::max(frontier, e.event_time);
    if (batch_size == 0) {
      for (const Event& e : chunk) exec.Feed(e);
    } else {
      exec.FeedBatch(chunk);
    }
    fed += n;
    if (fed % 512 == 0) {
      exec.FeedHeartbeat(frontier, chunk.back().arrival_time);
    }
  }
  exec.Finish();
  return exec.Report();
}

void ExpectIdenticalReports(const RunReport& heap, const RunReport& ring) {
  EXPECT_EQ(heap.events_processed, ring.events_processed);
  EXPECT_EQ(heap.results, ring.results);

  const DisorderHandlerStats& a = heap.handler_stats;
  const DisorderHandlerStats& b = ring.handler_stats;
  EXPECT_EQ(a.events_in, b.events_in);
  EXPECT_EQ(a.events_out, b.events_out);
  EXPECT_EQ(a.events_late, b.events_late);
  EXPECT_EQ(a.events_dropped, b.events_dropped);
  EXPECT_EQ(a.max_buffer_size, b.max_buffer_size);
  EXPECT_EQ(a.buffering_latency_us.count(), b.buffering_latency_us.count());
  EXPECT_EQ(a.buffering_latency_us.mean(), b.buffering_latency_us.mean());
  EXPECT_EQ(a.buffering_latency_us.min(), b.buffering_latency_us.min());
  EXPECT_EQ(a.buffering_latency_us.max(), b.buffering_latency_us.max());
  EXPECT_EQ(a.latency_samples, b.latency_samples);

  const WindowedAggregation::Stats& wa = heap.window_stats;
  const WindowedAggregation::Stats& wb = ring.window_stats;
  EXPECT_EQ(wa.events, wb.events);
  EXPECT_EQ(wa.late_applied, wb.late_applied);
  EXPECT_EQ(wa.late_dropped, wb.late_dropped);
  EXPECT_EQ(wa.windows_fired, wb.windows_fired);
  EXPECT_EQ(wa.revisions, wb.revisions);
  EXPECT_EQ(wa.max_live_windows, wb.max_live_windows);

  EXPECT_EQ(heap.final_slack, ring.final_slack);
}

class DisorderEnginePipelineTest
    : public ::testing::TestWithParam<HandlerParam> {};

TEST_P(DisorderEnginePipelineTest, RingMatchesHeapReportForReport) {
  const auto [spec_index, keyed, batch_size] = GetParam();
  DisorderHandlerSpec spec = BufferingSpecs()[static_cast<size_t>(spec_index)];
  if (keyed) spec = spec.PerKey();
  SCOPED_TRACE(spec.Describe() + " batch=" + std::to_string(batch_size));
  const ContinuousQuery heap_q =
      QueryFor(spec.WithBufferEngine(Engine::kHeap));
  const ContinuousQuery ring_q =
      QueryFor(spec.WithBufferEngine(Engine::kRing));
  ExpectIdenticalReports(RunPipeline(heap_q, batch_size),
                         RunPipeline(ring_q, batch_size));
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecs, DisorderEnginePipelineTest,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Bool(),
                       ::testing::Values<size_t>(0, 64)),
    [](const ::testing::TestParamInfo<HandlerParam>& info) {
      std::string name = "spec";
      name += std::to_string(std::get<0>(info.param));
      name += std::get<1>(info.param) ? "_keyed" : "_global";
      const size_t b = std::get<2>(info.param);
      name += b == 0 ? std::string("_perevent") : "_batch" + std::to_string(b);
      return name;
    });

// Sanity: the workload actually stresses both engines (lateness, deep
// buffers, heartbeat drains), so the equivalence above is not vacuous.
TEST(DisorderEngineWorkload, ExercisesBufferingAndLateness) {
  const RunReport r =
      RunPipeline(QueryFor(DisorderHandlerSpec::Fixed(Millis(30))), 0);
  EXPECT_GT(r.handler_stats.events_late, 0);
  EXPECT_GT(r.handler_stats.max_buffer_size, 16);
  EXPECT_FALSE(r.handler_stats.latency_samples.empty());
}

}  // namespace
}  // namespace streamq
