#ifndef STREAMQ_TESTS_TEST_UTIL_H_
#define STREAMQ_TESTS_TEST_UTIL_H_

#include <vector>

#include "disorder/disorder_handler.h"
#include "disorder/event_sink.h"
#include "stream/event.h"
#include "stream/generator.h"

namespace streamq {
namespace testutil {

/// Builds an event with explicit timestamps (value = id for traceability).
inline Event E(int64_t id, TimestampUs ts, TimestampUs at, int64_t key = 0) {
  Event e;
  e.id = id;
  e.key = key;
  e.event_time = ts;
  e.arrival_time = at;
  e.value = static_cast<double>(id);
  return e;
}

/// Feeds a whole arrival-ordered stream through a handler and flushes.
inline void RunHandler(DisorderHandler* handler,
                       const std::vector<Event>& arrival_order,
                       EventSink* sink) {
  for (const Event& e : arrival_order) handler->OnEvent(e, sink);
  handler->Flush(sink);
}

/// Standard moderately-disordered workload for handler tests.
inline GeneratedWorkload DisorderedWorkload(int64_t n = 5000,
                                            uint64_t seed = 42) {
  WorkloadConfig cfg;
  cfg.num_events = n;
  cfg.events_per_second = 10000.0;
  cfg.delay.model = DelayModel::kExponential;
  cfg.delay.a = 20000.0;  // 20ms mean delay at 100us mean gap: heavy disorder.
  cfg.seed = seed;
  return GenerateWorkload(cfg);
}

/// Checks the EventSink ordering contract: OnEvent sequence is event-time
/// ordered and never behind the watermark active at delivery time.
class ContractCheckingSink : public EventSink {
 public:
  void OnEvent(const Event& e) override {
    if (!events.empty()) {
      ordered &= events.back().event_time <= e.event_time;
    }
    if (current_watermark != kMinTimestamp) {
      respects_watermark &= e.event_time >= current_watermark;
    }
    events.push_back(e);
  }
  void OnWatermark(TimestampUs watermark, TimestampUs) override {
    if (current_watermark != kMinTimestamp) {
      watermarks_monotone &= watermark >= current_watermark;
    }
    current_watermark = watermark;
  }
  void OnLateEvent(const Event& e) override { late.push_back(e); }

  std::vector<Event> events;
  std::vector<Event> late;
  TimestampUs current_watermark = kMinTimestamp;
  bool ordered = true;
  bool respects_watermark = true;
  bool watermarks_monotone = true;
};

}  // namespace testutil
}  // namespace streamq

#endif  // STREAMQ_TESTS_TEST_UTIL_H_
