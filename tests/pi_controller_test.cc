#include "control/pi_controller.h"

#include <gtest/gtest.h>

namespace streamq {
namespace {

PiController::Options Opt(double kp, double ki, double lo = -1.0,
                          double hi = 1.0) {
  PiController::Options o;
  o.kp = kp;
  o.ki = ki;
  o.out_min = lo;
  o.out_max = hi;
  o.integral_limit = 1.0;
  return o;
}

TEST(PiControllerTest, ZeroErrorZeroOutput) {
  PiController pi(Opt(1.0, 0.5));
  EXPECT_DOUBLE_EQ(pi.Update(0.0), 0.0);
  EXPECT_DOUBLE_EQ(pi.output(), 0.0);
}

TEST(PiControllerTest, ProportionalTerm) {
  PiController pi(Opt(2.0, 0.0));
  EXPECT_DOUBLE_EQ(pi.Update(0.25), 0.5);
  EXPECT_DOUBLE_EQ(pi.Update(-0.25), -0.5);
}

TEST(PiControllerTest, IntegralAccumulates) {
  PiController pi(Opt(0.0, 0.1));
  EXPECT_DOUBLE_EQ(pi.Update(1.0), 0.1);
  EXPECT_DOUBLE_EQ(pi.Update(1.0), 0.2);
  EXPECT_DOUBLE_EQ(pi.Update(1.0), 0.3);
}

TEST(PiControllerTest, IntegralDischargesOnOppositeError) {
  PiController pi(Opt(0.0, 0.5));
  pi.Update(1.0);
  pi.Update(1.0);
  EXPECT_DOUBLE_EQ(pi.integral(), 1.0);
  pi.Update(-1.0);
  EXPECT_DOUBLE_EQ(pi.integral(), 0.5);
}

TEST(PiControllerTest, OutputClamped) {
  PiController pi(Opt(10.0, 0.0, -0.3, 0.3));
  EXPECT_DOUBLE_EQ(pi.Update(1.0), 0.3);
  EXPECT_DOUBLE_EQ(pi.Update(-1.0), -0.3);
}

TEST(PiControllerTest, AntiWindupFreezesIntegralWhenSaturated) {
  PiController pi(Opt(0.0, 0.5, -0.2, 0.2));
  for (int i = 0; i < 100; ++i) pi.Update(1.0);
  // Without anti-windup the integral would be 50; it must stay near the
  // clamp so recovery is immediate.
  EXPECT_LE(pi.integral(), 0.5 + 1e-12);
  // One opposite error should start pulling the output down right away.
  pi.Update(-1.0);
  pi.Update(-1.0);
  EXPECT_LT(pi.output(), 0.2);
}

TEST(PiControllerTest, IntegralLimitRespected) {
  PiController::Options o = Opt(0.0, 1.0, -10.0, 10.0);
  o.integral_limit = 0.5;
  PiController pi(o);
  for (int i = 0; i < 100; ++i) pi.Update(1.0);
  EXPECT_LE(pi.integral(), 0.5);
  EXPECT_LE(pi.output(), 0.5);
}

TEST(PiControllerTest, ConvergesOnFirstOrderPlant) {
  // Classic closed-loop check: plant y += 0.5 * u; target 1.0. The loop
  // must settle close to the setpoint without oscillating forever.
  PiController pi(Opt(0.8, 0.3, -10.0, 10.0));
  double y = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double u = pi.Update(1.0 - y);
    y += 0.5 * u;
  }
  EXPECT_NEAR(y, 1.0, 0.02);
}

TEST(PiControllerTest, Reset) {
  PiController pi(Opt(1.0, 1.0));
  pi.Update(0.5);
  pi.Reset();
  EXPECT_DOUBLE_EQ(pi.output(), 0.0);
  EXPECT_DOUBLE_EQ(pi.integral(), 0.0);
}

TEST(PiControllerTest, RejectsInvertedBounds) {
  EXPECT_DEATH(PiController pi(Opt(1.0, 1.0, 1.0, -1.0)), "Check failed");
}

TEST(PiControllerTest, ToStringHasGains) {
  PiController pi(Opt(0.25, 0.125));
  const std::string s = pi.ToString();
  EXPECT_NE(s.find("kp=0.250"), std::string::npos);
  EXPECT_NE(s.find("ki=0.125"), std::string::npos);
}

TEST(SlewRateLimiterTest, FirstValuePassesThrough) {
  SlewRateLimiter s(0.1);
  EXPECT_DOUBLE_EQ(s.Apply(5.0), 5.0);
}

TEST(SlewRateLimiterTest, LimitsStep) {
  SlewRateLimiter s(0.1);
  s.Apply(0.0);
  EXPECT_DOUBLE_EQ(s.Apply(1.0), 0.1);
  EXPECT_DOUBLE_EQ(s.Apply(1.0), 0.2);
  EXPECT_DOUBLE_EQ(s.Apply(-1.0), 0.1);
}

TEST(SlewRateLimiterTest, ReachesTargetEventually) {
  SlewRateLimiter s(0.25);
  s.Apply(0.0);
  double v = 0.0;
  for (int i = 0; i < 10; ++i) v = s.Apply(1.0);
  EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(SlewRateLimiterTest, Reset) {
  SlewRateLimiter s(0.1);
  s.Apply(100.0);
  s.Reset();
  EXPECT_DOUBLE_EQ(s.Apply(3.0), 3.0);
}

TEST(DeadbandTest, HoldsSmallChanges) {
  Deadband d(0.5);
  EXPECT_DOUBLE_EQ(d.Apply(1.0), 1.0);
  EXPECT_DOUBLE_EQ(d.Apply(1.3), 1.0);  // Within band.
  EXPECT_DOUBLE_EQ(d.Apply(1.6), 1.6);  // Exceeds band.
  EXPECT_DOUBLE_EQ(d.Apply(1.2), 1.6);  // Within band of new value.
}

TEST(DeadbandTest, ZeroWidthPassesEverything) {
  Deadband d(0.0);
  d.Apply(1.0);
  EXPECT_DOUBLE_EQ(d.Apply(1.0001), 1.0001);
}

}  // namespace
}  // namespace streamq
