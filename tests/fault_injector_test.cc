// FaultInjectingSource unit tests: determinism (same seed, same faulty
// stream), transparency when every probability is zero, per-fault-class
// accounting, burst arrival monotonicity, duplicate identity, and spec
// validation.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "stream/event.h"
#include "stream/fault_injector.h"
#include "stream/source.h"
#include "tests/test_util.h"

namespace streamq {
namespace {

std::vector<Event> Workload(int64_t n = 2000, uint64_t seed = 7) {
  return testutil::DisorderedWorkload(n, seed).arrival_order;
}

std::vector<Event> Drain(EventSource* source) {
  std::vector<Event> out;
  Event e;
  while (source->Next(&e)) out.push_back(e);
  return out;
}

/// Bitwise event equality: value compared by bit pattern so NaN == NaN.
bool SameEvent(const Event& a, const Event& b) {
  uint64_t va, vb;
  std::memcpy(&va, &a.value, sizeof(va));
  std::memcpy(&vb, &b.value, sizeof(vb));
  return a.id == b.id && a.key == b.key && a.event_time == b.event_time &&
         a.arrival_time == b.arrival_time && va == vb;
}

FaultSpec EverythingSpec() {
  FaultSpec spec;
  spec.seed = 1234;
  spec.drop_prob = 0.05;
  spec.duplicate_prob = 0.05;
  spec.timestamp_corrupt_prob = 0.02;
  spec.value_corrupt_prob = 0.02;
  spec.burst_prob = 0.01;
  spec.burst_len = 16;
  spec.burst_spread_us = Millis(50);
  return spec;
}

TEST(FaultInjectorTest, SameSeedReplaysTheIdenticalFaultyStream) {
  VectorSource inner(Workload());
  FaultInjectingSource faulty(&inner, EverythingSpec());
  const std::vector<Event> first = Drain(&faulty);
  const FaultInjectionStats first_stats = faulty.stats();

  faulty.Reset();
  const std::vector<Event> second = Drain(&faulty);

  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(SameEvent(first[i], second[i])) << "at " << i;
  }
  EXPECT_EQ(first_stats.events_in, faulty.stats().events_in);
  EXPECT_EQ(first_stats.events_out, faulty.stats().events_out);
  EXPECT_EQ(first_stats.dropped, faulty.stats().dropped);
  EXPECT_EQ(first_stats.duplicated, faulty.stats().duplicated);
  EXPECT_EQ(first_stats.timestamp_corrupted,
            faulty.stats().timestamp_corrupted);
  EXPECT_EQ(first_stats.value_corrupted, faulty.stats().value_corrupted);
  EXPECT_EQ(first_stats.bursts, faulty.stats().bursts);
}

TEST(FaultInjectorTest, AllZeroSpecIsTransparent) {
  const std::vector<Event> original = Workload();
  VectorSource inner(original);
  FaultInjectingSource faulty(&inner, FaultSpec{});
  const std::vector<Event> out = Drain(&faulty);

  ASSERT_EQ(out.size(), original.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(SameEvent(out[i], original[i])) << "at " << i;
  }
  const FaultInjectionStats& s = faulty.stats();
  EXPECT_EQ(s.events_in, static_cast<int64_t>(original.size()));
  EXPECT_EQ(s.events_out, s.events_in);
  EXPECT_EQ(s.dropped + s.duplicated + s.timestamp_corrupted +
                s.value_corrupted + s.stalls + s.bursts,
            0);
}

TEST(FaultInjectorTest, DropsReduceOutputByExactlyTheDropCount) {
  FaultSpec spec;
  spec.drop_prob = 0.25;
  VectorSource inner(Workload());
  FaultInjectingSource faulty(&inner, spec);
  const std::vector<Event> out = Drain(&faulty);
  const FaultInjectionStats& s = faulty.stats();
  EXPECT_GT(s.dropped, 0);
  EXPECT_EQ(s.events_out, s.events_in - s.dropped);
  EXPECT_EQ(static_cast<int64_t>(out.size()), s.events_out);
}

TEST(FaultInjectorTest, DuplicatesArriveBackToBackWithTheSameIdentity) {
  FaultSpec spec;
  spec.duplicate_prob = 1.0;
  const std::vector<Event> original = Workload(500);
  VectorSource inner(original);
  FaultInjectingSource faulty(&inner, spec);
  const std::vector<Event> out = Drain(&faulty);
  const FaultInjectionStats& s = faulty.stats();

  EXPECT_EQ(s.duplicated, static_cast<int64_t>(original.size()));
  EXPECT_EQ(s.events_out, s.events_in + s.duplicated);
  ASSERT_EQ(out.size(), 2 * original.size());
  for (size_t i = 0; i < out.size(); i += 2) {
    EXPECT_TRUE(SameEvent(out[i], out[i + 1])) << "pair at " << i;
  }
}

TEST(FaultInjectorTest, CorruptedTimestampsAreExactlyTheValidationFailures) {
  FaultSpec spec;
  spec.timestamp_corrupt_prob = 0.1;
  VectorSource inner(Workload());
  FaultInjectingSource faulty(&inner, spec);
  const std::vector<Event> out = Drain(&faulty);
  int64_t invalid = 0;
  for (const Event& e : out) {
    if (!ValidateEvent(e).ok()) ++invalid;
  }
  EXPECT_GT(faulty.stats().timestamp_corrupted, 0);
  EXPECT_EQ(invalid, faulty.stats().timestamp_corrupted);
}

TEST(FaultInjectorTest, CorruptedValuesAreExactlyTheNonFiniteOnes) {
  FaultSpec spec;
  spec.value_corrupt_prob = 0.1;
  VectorSource inner(Workload());
  FaultInjectingSource faulty(&inner, spec);
  const std::vector<Event> out = Drain(&faulty);
  int64_t non_finite = 0;
  for (const Event& e : out) {
    if (!std::isfinite(e.value)) ++non_finite;
  }
  EXPECT_GT(faulty.stats().value_corrupted, 0);
  EXPECT_EQ(non_finite, faulty.stats().value_corrupted);
}

TEST(FaultInjectorTest, BurstsKeepArrivalOrderMonotone) {
  FaultSpec spec;
  spec.burst_prob = 0.02;
  spec.burst_len = 32;
  spec.burst_spread_us = Millis(200);
  VectorSource inner(Workload());
  FaultInjectingSource faulty(&inner, spec);
  const std::vector<Event> out = Drain(&faulty);

  EXPECT_GT(faulty.stats().bursts, 0);
  for (size_t i = 1; i < out.size(); ++i) {
    ASSERT_GE(out[i].arrival_time, out[i - 1].arrival_time) << "at " << i;
  }
  // A burst pushes event times back, never past arrival: the faulty stream
  // is disordered harder but still physically possible.
  for (const Event& e : out) {
    ASSERT_LE(e.event_time, e.arrival_time);
    ASSERT_TRUE(ValidateEvent(e).ok());
  }
}

TEST(FaultInjectorTest, StallsSleepButPreserveTheStream) {
  FaultSpec spec;
  spec.stall_prob = 1.0;
  spec.stall_us = 1;  // Keep the wall cost of 100 sleeps negligible.
  const std::vector<Event> original = Workload(100);
  VectorSource inner(original);
  FaultInjectingSource faulty(&inner, spec);
  const std::vector<Event> out = Drain(&faulty);
  EXPECT_EQ(faulty.stats().stalls, static_cast<int64_t>(original.size()));
  ASSERT_EQ(out.size(), original.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(SameEvent(out[i], original[i]));
  }
}

TEST(FaultInjectorTest, ValidateRejectsMalformedSpecs) {
  FaultSpec spec;
  EXPECT_TRUE(spec.Validate().ok());
  spec.drop_prob = 1.5;
  EXPECT_FALSE(spec.Validate().ok());
  spec = FaultSpec{};
  spec.burst_prob = -0.1;
  EXPECT_FALSE(spec.Validate().ok());
  spec = FaultSpec{};
  spec.burst_len = 0;
  EXPECT_FALSE(spec.Validate().ok());
  spec = FaultSpec{};
  spec.stall_us = -1;
  EXPECT_FALSE(spec.Validate().ok());
  spec = FaultSpec{};
  spec.burst_spread_us = -1;
  EXPECT_FALSE(spec.Validate().ok());
}

}  // namespace
}  // namespace streamq
