// Engine-equivalence property test: the devirtualized hot path (inline
// states + flat store + fold-plan memo + pane-shared batch folding) must be
// indistinguishable from the legacy std::map + virtual-Aggregator engine —
// byte-identical WindowResult sequences and window stats — for every
// aggregate kind, window family, handler spec, revision mode, and feed
// granularity, including late-tuple, revision and allowed-lateness paths.

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/continuous_query.h"
#include "core/executor.h"
#include "stream/generator.h"
#include "tests/test_util.h"
#include "window/window.h"
#include "window/window_operator.h"

namespace streamq {
namespace {

using Engine = WindowedAggregation::Engine;
using PaneSharing = WindowedAggregation::PaneSharing;

const std::vector<AggKind> kAllKinds = {
    AggKind::kCount,    AggKind::kSum,    AggKind::kMean,
    AggKind::kMin,      AggKind::kMax,    AggKind::kVariance,
    AggKind::kStdDev,   AggKind::kMedian, AggKind::kQuantile,
    AggKind::kDistinctCount};

struct Shape {
  const char* name;
  WindowSpec spec;
};

const std::vector<Shape>& Shapes() {
  static const std::vector<Shape> shapes = {
      {"tumbling", WindowSpec::Tumbling(Millis(40))},
      {"sliding_tiling", WindowSpec::Sliding(Millis(50), Millis(25))},
      {"sliding_nontiling", WindowSpec::Sliding(Millis(50), Millis(30))},
      {"sampling", WindowSpec::Sliding(Millis(20), Millis(50))},
  };
  return shapes;
}

std::vector<DisorderHandlerSpec> HandlerSpecs() {
  std::vector<DisorderHandlerSpec> specs;
  specs.push_back(DisorderHandlerSpec::PassThrough());
  specs.push_back(DisorderHandlerSpec::Fixed(Millis(30)));
  {
    WatermarkReorderer::Options wm;
    wm.bound = Millis(30);
    wm.period_events = 7;
    wm.allowed_lateness = Millis(10);
    specs.push_back(DisorderHandlerSpec::Watermark(wm));
  }
  {
    AqKSlack::Options aq;
    aq.target_quality = 0.95;
    specs.push_back(DisorderHandlerSpec::Aq(aq));
  }
  specs.push_back(DisorderHandlerSpec::Fixed(Millis(30)).PerKey());
  return specs;
}

const std::vector<Event>& TestStream() {
  static const std::vector<Event>* events = [] {
    WorkloadConfig cfg;
    cfg.num_events = 3000;
    cfg.events_per_second = 10000.0;
    cfg.num_keys = 4;
    cfg.delay.model = DelayModel::kExponential;
    cfg.delay.a = 20000.0;  // Heavy disorder: plenty of late tuples.
    cfg.seed = 1234;
    return new std::vector<Event>(GenerateWorkload(cfg).arrival_order);
  }();
  return *events;
}

ContinuousQuery MakeQuery(AggKind kind, const WindowSpec& shape,
                          const DisorderHandlerSpec& handler,
                          bool emit_revision_per_update, Engine engine,
                          PaneSharing pane) {
  ContinuousQuery q;
  q.name = "agg_equiv";
  q.handler = handler;
  q.window.window = shape;
  q.window.aggregate.kind = kind;
  if (kind == AggKind::kQuantile) q.window.aggregate.quantile_q = 0.9;
  q.window.allowed_lateness = Millis(20);
  q.window.emit_revision_per_update = emit_revision_per_update;
  q.window.per_key_watermarks = handler.per_key;
  q.window.engine = engine;
  q.window.pane_sharing = pane;
  return q;
}

RunReport RunQuery(const ContinuousQuery& q, bool batched) {
  QueryExecutor exec(q);
  if (batched) {
    exec.FeedBatch(std::span<const Event>(TestStream()));
  } else {
    for (const Event& e : TestStream()) exec.Feed(e);
  }
  exec.Finish();
  return exec.Report();
}

void ExpectBitIdentical(const RunReport& want, const RunReport& got) {
  EXPECT_EQ(want.events_processed, got.events_processed);
  ASSERT_EQ(want.results.size(), got.results.size());
  for (size_t i = 0; i < want.results.size(); ++i) {
    // operator== would treat two NaNs as different; compare value bits and
    // everything else structurally.
    const WindowResult& a = want.results[i];
    const WindowResult& b = got.results[i];
    EXPECT_EQ(a.bounds, b.bounds) << "result " << i;
    EXPECT_EQ(a.key, b.key) << "result " << i;
    EXPECT_EQ(std::bit_cast<uint64_t>(a.value),
              std::bit_cast<uint64_t>(b.value))
        << "result " << i << ": " << a.value << " vs " << b.value;
    EXPECT_EQ(a.tuple_count, b.tuple_count) << "result " << i;
    EXPECT_EQ(a.emit_stream_time, b.emit_stream_time) << "result " << i;
    EXPECT_EQ(a.is_revision, b.is_revision) << "result " << i;
    EXPECT_EQ(a.revision_index, b.revision_index) << "result " << i;
  }

  const WindowedAggregation::Stats& wa = want.window_stats;
  const WindowedAggregation::Stats& wb = got.window_stats;
  EXPECT_EQ(wa.events, wb.events);
  EXPECT_EQ(wa.late_applied, wb.late_applied);
  EXPECT_EQ(wa.late_dropped, wb.late_dropped);
  EXPECT_EQ(wa.windows_fired, wb.windows_fired);
  EXPECT_EQ(wa.revisions, wb.revisions);
  EXPECT_EQ(wa.max_live_windows, wb.max_live_windows);

  // The handler runs upstream of the engine under test; identical stats
  // confirm the engines cannot perturb it.
  EXPECT_EQ(want.handler_stats.events_out, got.handler_stats.events_out);
  EXPECT_EQ(want.handler_stats.events_late, got.handler_stats.events_late);
  EXPECT_EQ(want.final_slack, got.final_slack);
}

using Param = std::tuple<int, int>;  // (kind index, shape index)

class AggregationEquivalenceTest : public ::testing::TestWithParam<Param> {};

// Hot engine (default pane policy) == legacy engine, bit for bit, per-event
// and batched, in both revision modes, under every handler spec.
TEST_P(AggregationEquivalenceTest, HotMatchesLegacyBitwise) {
  const auto [kind_index, shape_index] = GetParam();
  const AggKind kind = kAllKinds[static_cast<size_t>(kind_index)];
  const Shape& shape = Shapes()[static_cast<size_t>(shape_index)];
  for (const DisorderHandlerSpec& handler : HandlerSpecs()) {
    for (bool per_update : {true, false}) {
      SCOPED_TRACE(handler.Describe() + (per_update ? " perupdate" : " batchrev"));
      const ContinuousQuery legacy_q =
          MakeQuery(kind, shape.spec, handler, per_update, Engine::kLegacy,
                    PaneSharing::kAuto);
      const ContinuousQuery hot_q =
          MakeQuery(kind, shape.spec, handler, per_update, Engine::kHot,
                    PaneSharing::kAuto);
      const RunReport reference = RunQuery(legacy_q, /*batched=*/false);
      ExpectBitIdentical(reference, RunQuery(legacy_q, /*batched=*/true));
      ExpectBitIdentical(reference, RunQuery(hot_q, /*batched=*/false));
      ExpectBitIdentical(reference, RunQuery(hot_q, /*batched=*/true));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAllShapes, AggregationEquivalenceTest,
    ::testing::Combine(::testing::Range(0, 10), ::testing::Range(0, 4)),
    [](const ::testing::TestParamInfo<Param>& info) {
      AggregateSpec spec;
      spec.kind = kAllKinds[static_cast<size_t>(std::get<0>(info.param))];
      std::string name = spec.Describe();
      name.erase(std::remove_if(name.begin(), name.end(),
                                [](char c) { return !std::isalnum(c); }),
                 name.end());
      name += "_";
      name += Shapes()[static_cast<size_t>(std::get<1>(info.param))].name;
      return name;
    });

// Forced pane sharing regroups floating-point folds; results must still
// match the reference structurally, with values within rounding noise.
TEST(PaneSharingForcedTest, InexactKindsMatchWithinRounding) {
  const WindowSpec shape = WindowSpec::Sliding(Millis(50), Millis(25));
  for (AggKind kind : {AggKind::kSum, AggKind::kMean, AggKind::kVariance,
                       AggKind::kStdDev}) {
    SCOPED_TRACE(static_cast<int>(kind));
    const DisorderHandlerSpec handler = DisorderHandlerSpec::Fixed(Millis(30));
    const RunReport want =
        RunQuery(MakeQuery(kind, shape, handler, true, Engine::kLegacy,
                      PaneSharing::kAuto),
            /*batched=*/true);
    const RunReport got =
        RunQuery(MakeQuery(kind, shape, handler, true, Engine::kHot,
                      PaneSharing::kForce),
            /*batched=*/true);
    ASSERT_EQ(want.results.size(), got.results.size());
    for (size_t i = 0; i < want.results.size(); ++i) {
      const WindowResult& a = want.results[i];
      const WindowResult& b = got.results[i];
      EXPECT_EQ(a.bounds, b.bounds);
      EXPECT_EQ(a.key, b.key);
      EXPECT_EQ(a.tuple_count, b.tuple_count);
      EXPECT_EQ(a.is_revision, b.is_revision);
      const double tol = 1e-9 * std::max(1.0, std::abs(a.value));
      EXPECT_NEAR(a.value, b.value, tol);
    }
    EXPECT_EQ(want.window_stats.windows_fired, got.window_stats.windows_fired);
    EXPECT_EQ(want.window_stats.revisions, got.window_stats.revisions);
  }
}

// ...and for the grouping-exact kinds, forced sharing stays bit-identical.
TEST(PaneSharingForcedTest, ExactKindsStayBitIdentical) {
  const WindowSpec shape = WindowSpec::Sliding(Millis(100), Millis(25));
  for (AggKind kind : {AggKind::kCount, AggKind::kMin, AggKind::kMax}) {
    SCOPED_TRACE(static_cast<int>(kind));
    const DisorderHandlerSpec handler = DisorderHandlerSpec::Fixed(Millis(30));
    const RunReport want =
        RunQuery(MakeQuery(kind, shape, handler, true, Engine::kLegacy,
                      PaneSharing::kAuto),
            /*batched=*/true);
    ExpectBitIdentical(want, RunQuery(MakeQuery(kind, shape, handler, true,
                                           Engine::kHot, PaneSharing::kForce),
                                 /*batched=*/true));
  }
}

// Engine/pane plumbing sanity.
TEST(EngineSelectionTest, DefaultsAndGates) {
  CollectingResultSink sink;
  {
    WindowedAggregation::Options o;
    o.window = WindowSpec::Sliding(Millis(100), Millis(25));
    o.aggregate.kind = AggKind::kMax;
    WindowedAggregation op(o, &sink);
    EXPECT_TRUE(op.uses_inline_states());
    EXPECT_TRUE(op.uses_pane_sharing());  // Exact kind, tiling window.
  }
  {
    WindowedAggregation::Options o;
    o.window = WindowSpec::Sliding(Millis(100), Millis(25));
    o.aggregate.kind = AggKind::kSum;
    WindowedAggregation op(o, &sink);
    EXPECT_TRUE(op.uses_inline_states());
    EXPECT_FALSE(op.uses_pane_sharing());  // Inexact under kAuto.
    WindowedAggregation::Options f = o;
    f.pane_sharing = PaneSharing::kForce;
    WindowedAggregation opf(f, &sink);
    EXPECT_TRUE(opf.uses_pane_sharing());
  }
  {
    WindowedAggregation::Options o;
    o.window = WindowSpec::Tumbling(Millis(100));
    o.aggregate.kind = AggKind::kCount;
    WindowedAggregation op(o, &sink);
    EXPECT_FALSE(op.uses_pane_sharing());  // No overlap to share.
  }
  {
    WindowedAggregation::Options o;
    o.window = WindowSpec::Sliding(Millis(100), Millis(30));
    o.aggregate.kind = AggKind::kCount;
    WindowedAggregation op(o, &sink);
    EXPECT_FALSE(op.uses_pane_sharing());  // Non-tiling.
  }
  {
    WindowedAggregation::Options o;
    o.aggregate.kind = AggKind::kMedian;
    WindowedAggregation op(o, &sink);
    EXPECT_FALSE(op.uses_inline_states());  // Heavy kind.
  }
  {
    WindowedAggregation::Options o;
    o.engine = Engine::kLegacy;
    WindowedAggregation op(o, &sink);
    EXPECT_FALSE(op.uses_inline_states());
  }
}

// Regression for the fold-plan dangling-pointer hazard: a late event that
// inserts a NEW key into buckets the plan memo is caching reallocates those
// buckets' slot arrays. The epoch check must force a plan rebuild — under
// ASan a miss here is a use-after-free; here it shows up as wrong sums.
TEST(FoldPlanInvalidationTest, LateInsertIntoCachedBucketForcesRebuild) {
  for (Engine engine : {Engine::kHot, Engine::kLegacy}) {
    SCOPED_TRACE(engine == Engine::kHot ? "hot" : "legacy");
    WindowedAggregation::Options o;
    o.window = WindowSpec::Sliding(Seconds(4), Seconds(1));
    o.aggregate.kind = AggKind::kSum;
    o.allowed_lateness = Seconds(100);
    o.engine = engine;
    CollectingResultSink sink;
    WindowedAggregation op(o, &sink);

    auto ev = [](TimestampUs ts, int64_t key, double v) {
      Event e;
      e.event_time = ts;
      e.arrival_time = ts;
      e.key = key;
      e.value = v;
      return e;
    };
    // Prime the plan memo for key 0 in the pane at t=10s. No watermark in
    // between: only the store's epoch stands between the memo and the
    // reallocation below.
    op.OnEvent(ev(Seconds(10), 0, 1.0));
    // Late tuples for a DIFFERENT key land in the same buckets the plan is
    // caching and grow their slot tables (several keys to force realloc).
    for (int64_t k = 1; k <= 8; ++k) {
      op.OnLateEvent(ev(Seconds(10) + k, k, 100.0));
    }
    // Same pane, same key as the primed plan: must fold into valid slots.
    op.OnEvent(ev(Seconds(10) + 1, 0, 2.0));
    op.OnWatermark(kMaxTimestamp, Seconds(20));

    double key0_window_sum = 0.0;
    int64_t key0_results = 0;
    for (const WindowResult& r : sink.results) {
      if (r.key == 0 && r.bounds.start == Seconds(7)) {
        key0_window_sum = r.value;
        ++key0_results;
      }
    }
    EXPECT_EQ(key0_results, 1);
    EXPECT_EQ(key0_window_sum, 3.0);  // Both folds survived the realloc.
  }
}

}  // namespace
}  // namespace streamq
