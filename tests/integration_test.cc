/// Cross-module integration tests: every disorder handler driving the full
/// pipeline on shared workloads, checking the system-level invariants the
/// paper's comparison rests on.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/executor.h"
#include "quality/oracle.h"
#include "quality/quality_metrics.h"
#include "stream/disorder_metrics.h"
#include "stream/generator.h"
#include "stream/trace_io.h"
#include "tests/test_util.h"

namespace streamq {
namespace {

struct PipelineCase {
  const char* name;
  DisorderHandlerSpec spec;
};

std::vector<PipelineCase> AllHandlers() {
  AqKSlack::Options aq;
  aq.target_quality = 0.95;
  LbKSlack::Options lb;
  lb.latency_budget = Millis(15);
  MpKSlack::Options mp;
  WatermarkReorderer::Options wm;
  wm.bound = Millis(30);
  wm.period_events = 16;
  wm.allowed_lateness = Millis(10);
  return {
      {"pass-through", DisorderHandlerSpec::PassThrough()},
      {"fixed-kslack", DisorderHandlerSpec::Fixed(Millis(30))},
      {"mp-kslack", DisorderHandlerSpec::Mp(mp)},
      {"aq-kslack", DisorderHandlerSpec::Aq(aq)},
      {"lb-kslack", DisorderHandlerSpec::Lb(lb)},
      {"watermark", DisorderHandlerSpec::Watermark(wm)},
  };
}

ContinuousQuery QueryWith(const DisorderHandlerSpec& spec) {
  ContinuousQuery q;
  q.name = "integration";
  q.handler = spec;
  q.window.window = WindowSpec::Tumbling(Millis(50));
  q.window.aggregate.kind = AggKind::kSum;
  return q;
}

class AllHandlersTest : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(AllHandlersTest, PipelineRunsAndAccountsForEveryTuple) {
  const auto w = testutil::DisorderedWorkload(10000);
  QueryExecutor exec(QueryWith(GetParam().spec));
  VectorSource source(w.arrival_order);
  const RunReport report = exec.Run(&source);

  EXPECT_EQ(report.events_processed,
            static_cast<int64_t>(w.arrival_order.size()));
  // Handler conservation: in == out + late (drops are a subset of late).
  EXPECT_EQ(report.handler_stats.events_in,
            report.handler_stats.events_out + report.handler_stats.events_late);
  // Window operator saw every tuple the handler released or forwarded late
  // (minus watermark-reorderer drops, which never reach it).
  EXPECT_EQ(report.window_stats.events,
            report.handler_stats.events_out + report.handler_stats.events_late -
                report.handler_stats.events_dropped);
}

TEST_P(AllHandlersTest, EveryOracleWindowIsEventuallyProduced) {
  // All handlers fire every window at the terminal watermark, so no window
  // may be missing (its value may be partial — that is the quality metric).
  const auto w = testutil::DisorderedWorkload(5000);
  QueryExecutor exec(QueryWith(GetParam().spec));
  VectorSource source(w.arrival_order);
  const RunReport report = exec.Run(&source);

  const OracleEvaluator oracle(w.arrival_order, WindowSpec::Tumbling(Millis(50)),
                               exec.query().window.aggregate);
  const QualityReport quality = EvaluateQuality(report.results, oracle);
  EXPECT_EQ(quality.missed_windows, 0) << GetParam().name;
  EXPECT_EQ(quality.spurious_windows, 0) << GetParam().name;
}

TEST_P(AllHandlersTest, DeterministicAcrossRuns) {
  const auto w = testutil::DisorderedWorkload(5000);
  QueryExecutor a(QueryWith(GetParam().spec));
  QueryExecutor b(QueryWith(GetParam().spec));
  VectorSource sa(w.arrival_order), sb(w.arrival_order);
  const RunReport ra = a.Run(&sa);
  const RunReport rb = b.Run(&sb);
  ASSERT_EQ(ra.results.size(), rb.results.size());
  for (size_t i = 0; i < ra.results.size(); ++i) {
    EXPECT_EQ(ra.results[i].bounds, rb.results[i].bounds);
    EXPECT_DOUBLE_EQ(ra.results[i].value, rb.results[i].value);
  }
}

INSTANTIATE_TEST_SUITE_P(Handlers, AllHandlersTest,
                         ::testing::ValuesIn(AllHandlers()),
                         [](const ::testing::TestParamInfo<PipelineCase>& i) {
                           std::string name = i.param.name;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(IntegrationTest, QualityLatencyOrderingAcrossStrategies) {
  // The headline system-level property:
  //   pass-through:   lowest latency, lowest quality;
  //   mp-kslack:      highest quality, highest latency;
  //   aq-kslack@0.9:  quality >= 0.9 at latency between the two.
  WorkloadConfig cfg;
  cfg.num_events = 40000;
  cfg.delay.model = DelayModel::kLogNormal;
  cfg.delay.a = 9.5;  // exp(9.5) ~ 13ms median.
  cfg.delay.b = 1.0;  // Heavy-ish tail.
  cfg.seed = 3;
  const auto w = GenerateWorkload(cfg);
  const OracleEvaluator oracle(w.arrival_order, WindowSpec::Tumbling(Millis(50)),
                               AggregateSpec{.kind = AggKind::kSum});

  auto run = [&](const DisorderHandlerSpec& spec) {
    QueryExecutor exec(QueryWith(spec));
    VectorSource source(w.arrival_order);
    const RunReport report = exec.Run(&source);
    const QualityReport quality = EvaluateQuality(report.results, oracle);
    return std::pair<double, double>(
        quality.MeanQualityIncludingMissed(),
        report.handler_stats.buffering_latency_us.mean());
  };

  AqKSlack::Options aq;
  aq.target_quality = 0.90;
  const auto [q_pt, l_pt] = run(DisorderHandlerSpec::PassThrough());
  const auto [q_aq, l_aq] = run(DisorderHandlerSpec::Aq(aq));
  const auto [q_mp, l_mp] = run(DisorderHandlerSpec::Mp({}));

  EXPECT_LT(q_pt, 0.9);
  EXPECT_GE(q_aq, 0.87);
  EXPECT_GT(q_mp, q_aq - 0.02);
  EXPECT_LT(l_pt, l_aq);
  EXPECT_LT(l_aq, l_mp);
}

TEST(IntegrationTest, TraceRoundTripReproducesRun) {
  // Save a workload as a trace, reload, and verify the pipeline produces
  // identical results — the replay path used for "real" traces.
  const auto w = testutil::DisorderedWorkload(3000);
  const std::string path = ::testing::TempDir() + "/integration_trace.csv";
  ASSERT_TRUE(SaveTrace(path, w.arrival_order).ok());
  auto loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok());

  QueryExecutor a(QueryWith(DisorderHandlerSpec::Fixed(Millis(20))));
  QueryExecutor b(QueryWith(DisorderHandlerSpec::Fixed(Millis(20))));
  VectorSource sa(w.arrival_order), sb(loaded.value());
  const RunReport ra = a.Run(&sa);
  const RunReport rb = b.Run(&sb);
  ASSERT_EQ(ra.results.size(), rb.results.size());
  for (size_t i = 0; i < ra.results.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.results[i].value, rb.results[i].value);
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, KeyedPipelineMatchesOracleAcrossKeys) {
  WorkloadConfig cfg;
  cfg.num_events = 20000;
  cfg.num_keys = 8;
  cfg.key_zipf_s = 1.0;
  cfg.seed = 13;
  const auto w = GenerateWorkload(cfg);

  ContinuousQuery q = QueryWith(DisorderHandlerSpec::Fixed(Seconds(1000)));
  q.window.aggregate.kind = AggKind::kMean;
  QueryExecutor exec(q);
  VectorSource source(w.arrival_order);
  const RunReport report = exec.Run(&source);

  const OracleEvaluator oracle(w.arrival_order, q.window.window,
                               q.window.aggregate);
  const QualityReport quality = EvaluateQuality(report.results, oracle);
  EXPECT_EQ(quality.missed_windows, 0);
  EXPECT_NEAR(quality.value_quality.mean, 1.0, 1e-9);
}

TEST(IntegrationTest, BurstyWorkloadKeepsQualityUnderControl) {
  WorkloadConfig cfg;
  cfg.num_events = 50000;
  cfg.dynamics.kind = DynamicsKind::kBurst;
  cfg.dynamics.factor = 5.0;
  cfg.dynamics.t0 = Seconds(1);
  cfg.dynamics.period = Seconds(2);
  cfg.dynamics.duration = Millis(500);
  cfg.seed = 8;
  const auto w = GenerateWorkload(cfg);

  AqKSlack::Options aq;
  aq.target_quality = 0.9;
  QueryExecutor exec(QueryWith(DisorderHandlerSpec::Aq(aq)));
  VectorSource source(w.arrival_order);
  const RunReport report = exec.Run(&source);

  const OracleEvaluator oracle(w.arrival_order, WindowSpec::Tumbling(Millis(50)),
                               AggregateSpec{.kind = AggKind::kSum});
  const QualityReport quality = EvaluateQuality(report.results, oracle);
  // Bursts cost some transient quality; the controller must keep the mean
  // within a few points of target.
  EXPECT_GE(quality.MeanQualityIncludingMissed(), 0.85);
}

}  // namespace
}  // namespace streamq
