// Pins the inline AggregateState fold/merge/value against the polymorphic
// Aggregators bit-for-bit: the hot window engine relies on this equivalence
// to produce byte-identical results to the legacy engine.

#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "agg/aggregate.h"
#include "agg/aggregate_state.h"

namespace streamq {
namespace {

const std::vector<AggKind> kInlineKinds = {
    AggKind::kCount, AggKind::kSum,      AggKind::kMean,  AggKind::kMin,
    AggKind::kMax,   AggKind::kVariance, AggKind::kStdDev};

std::vector<double> RandomValues(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  // Mixed magnitudes so compensated summation actually matters.
  std::uniform_real_distribution<double> small(-1.0, 1.0);
  std::uniform_real_distribution<double> large(-1e12, 1e12);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = (i % 7 == 0) ? large(rng) : small(rng);
  }
  return v;
}

TEST(AggregateStateTest, KindTables) {
  for (AggKind k : kInlineKinds) EXPECT_TRUE(IsInlineAggKind(k));
  EXPECT_FALSE(IsInlineAggKind(AggKind::kMedian));
  EXPECT_FALSE(IsInlineAggKind(AggKind::kQuantile));
  EXPECT_FALSE(IsInlineAggKind(AggKind::kDistinctCount));

  EXPECT_TRUE(PaneMergeIsExact(AggKind::kCount));
  EXPECT_TRUE(PaneMergeIsExact(AggKind::kMin));
  EXPECT_TRUE(PaneMergeIsExact(AggKind::kMax));
  EXPECT_FALSE(PaneMergeIsExact(AggKind::kSum));
  EXPECT_FALSE(PaneMergeIsExact(AggKind::kMean));
  EXPECT_FALSE(PaneMergeIsExact(AggKind::kVariance));
  EXPECT_FALSE(PaneMergeIsExact(AggKind::kStdDev));
}

// Folding any value sequence must match Aggregator::Add bitwise — at every
// prefix, not just the end (the operator emits at arbitrary points).
TEST(AggregateStateTest, FoldMatchesAggregatorBitwiseAtEveryPrefix) {
  const std::vector<double> values = RandomValues(500, 7);
  for (AggKind kind : kInlineKinds) {
    SCOPED_TRACE(static_cast<int>(kind));
    AggregateSpec spec;
    spec.kind = kind;
    auto acc = MakeAggregator(spec);
    AggregateState s;
    for (double v : values) {
      InlineFoldDyn(kind, s, v);
      acc->Add(v);
      EXPECT_EQ(acc->count(), s.n);
      const double got = InlineValueDyn(kind, s);
      const double want = acc->Value();
      // Bitwise, not EXPECT_DOUBLE_EQ: the engines must be exchangeable.
      EXPECT_EQ(std::bit_cast<uint64_t>(want), std::bit_cast<uint64_t>(got));
    }
  }
}

// Merging split partials must match Aggregator::Merge bitwise.
TEST(AggregateStateTest, MergeMatchesAggregatorMergeBitwise) {
  const std::vector<double> values = RandomValues(400, 11);
  for (AggKind kind : kInlineKinds) {
    SCOPED_TRACE(static_cast<int>(kind));
    AggregateSpec spec;
    spec.kind = kind;
    for (size_t split : {size_t{0}, size_t{1}, size_t{137}, values.size()}) {
      auto a = MakeAggregator(spec);
      auto b = MakeAggregator(spec);
      AggregateState sa, sb;
      for (size_t i = 0; i < values.size(); ++i) {
        if (i < split) {
          a->Add(values[i]);
          InlineFoldDyn(kind, sa, values[i]);
        } else {
          b->Add(values[i]);
          InlineFoldDyn(kind, sb, values[i]);
        }
      }
      a->Merge(*b);
      InlineMergeDyn(kind, sa, sb);
      EXPECT_EQ(a->count(), sa.n);
      EXPECT_EQ(std::bit_cast<uint64_t>(a->Value()),
                std::bit_cast<uint64_t>(InlineValueDyn(kind, sa)));
    }
  }
}

// For the pane-exact kinds, merging partials over ANY grouping must be
// bit-identical to folding the values one at a time — the property the
// kAuto pane-sharing gate relies on.
TEST(AggregateStateTest, PaneExactKindsAreGroupingInsensitive) {
  const std::vector<double> values = RandomValues(300, 13);
  std::mt19937_64 rng(17);
  for (AggKind kind : kInlineKinds) {
    if (!PaneMergeIsExact(kind)) continue;
    SCOPED_TRACE(static_cast<int>(kind));
    AggregateState sequential;
    for (double v : values) InlineFoldDyn(kind, sequential, v);
    for (int trial = 0; trial < 20; ++trial) {
      AggregateState total;
      size_t i = 0;
      while (i < values.size()) {
        const size_t run =
            1 + rng() % 40;  // Random pane-run lengths.
        AggregateState partial;
        for (size_t j = i; j < std::min(i + run, values.size()); ++j) {
          InlineFoldDyn(kind, partial, values[j]);
        }
        InlineMergeDyn(kind, total, partial);
        i += run;
      }
      EXPECT_EQ(std::bit_cast<uint64_t>(InlineValueDyn(kind, sequential)),
                std::bit_cast<uint64_t>(InlineValueDyn(kind, total)));
      EXPECT_EQ(sequential.n, total.n);
    }
  }
}

TEST(AggregateStateTest, EmptyStateConventionsMatchAggregators) {
  for (AggKind kind : kInlineKinds) {
    SCOPED_TRACE(static_cast<int>(kind));
    AggregateSpec spec;
    spec.kind = kind;
    auto acc = MakeAggregator(spec);
    AggregateState s;
    const double want = acc->Value();
    const double got = InlineValueDyn(kind, s);
    if (std::isnan(want)) {
      EXPECT_TRUE(std::isnan(got));
    } else {
      EXPECT_EQ(std::bit_cast<uint64_t>(want), std::bit_cast<uint64_t>(got));
    }
    // Merging an empty partial is a no-op.
    AggregateState sa;
    InlineFoldDyn(kind, sa, 3.25);
    AggregateState before = sa;
    AggregateState empty;
    InlineMergeDyn(kind, sa, empty);
    EXPECT_EQ(std::bit_cast<uint64_t>(before.f0),
              std::bit_cast<uint64_t>(sa.f0));
    EXPECT_EQ(before.n, sa.n);
  }
}

TEST(AggregateStateTest, VarianceSmallCountConventions) {
  AggregateState s;
  InlineFold<AggKind::kVariance>(s, 5.0);
  EXPECT_EQ(InlineValue<AggKind::kVariance>(s), 0.0);  // n == 1.
  EXPECT_EQ(InlineValue<AggKind::kStdDev>(s), 0.0);
  InlineFold<AggKind::kVariance>(s, 7.0);
  EXPECT_DOUBLE_EQ(InlineValue<AggKind::kVariance>(s), 1.0);
}

}  // namespace
}  // namespace streamq
