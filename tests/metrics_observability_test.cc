// Observability layer: FixedHistogram bucketing/quantiles, registry
// thread-safety under concurrent record + snapshot, Series gating, and
// golden Prometheus/JSON exports (the exporters are deterministic by
// construction — name-sorted maps, fixed number formatting — which is what
// makes exact-string goldens possible).

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace streamq {
namespace {

FixedHistogram::Options SmallOptions() {
  // Three decade buckets over [1, 1000): bounds 1, 10, 100, 1000, +Inf.
  FixedHistogram::Options o;
  o.min = 1.0;
  o.max = 1000.0;
  o.buckets = 3;
  return o;
}

TEST(FixedHistogramTest, RoutesValuesToLogBuckets) {
  FixedHistogram h(SmallOptions());
  EXPECT_EQ(h.bucket_count(), 5u);  // 3 log + underflow + overflow.

  h.Record(0.5);    // Underflow (< min).
  h.Record(5.0);    // [1, 10)
  h.Record(50.0);   // [10, 100)
  h.Record(5000.0); // Overflow (>= max).

  const HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.upper_bounds.size(), 5u);
  EXPECT_DOUBLE_EQ(s.upper_bounds[0], 1.0);
  EXPECT_NEAR(s.upper_bounds[1], 10.0, 1e-9);
  EXPECT_NEAR(s.upper_bounds[2], 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.upper_bounds[3], 1000.0);  // Exact top edge.
  EXPECT_TRUE(std::isinf(s.upper_bounds[4]));

  EXPECT_EQ(s.counts, (std::vector<int64_t>{1, 1, 1, 0, 1}));
  EXPECT_EQ(s.count, 4);
  EXPECT_DOUBLE_EQ(s.sum, 5055.5);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 5000.0);
}

TEST(FixedHistogramTest, ExactStatsAndZeroWhenEmpty) {
  FixedHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.min_seen(), 0.0);
  EXPECT_DOUBLE_EQ(h.max_seen(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);

  h.Record(3.0);
  h.Record(7.0);
  EXPECT_EQ(h.count(), 2);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
  EXPECT_DOUBLE_EQ(h.min_seen(), 3.0);
  EXPECT_DOUBLE_EQ(h.max_seen(), 7.0);

  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min_seen(), 0.0);
}

TEST(FixedHistogramTest, QuantilesHaveRelativeBucketError) {
  // ~5% relative bucket width: estimates must land within one bucket
  // (factor gamma) of the true quantile, and inside the exact envelope.
  FixedHistogram::Options o;
  o.min = 1.0;
  o.max = 1e6;
  o.buckets = 288;
  const double gamma = std::pow(o.max / o.min, 1.0 / 288.0);
  FixedHistogram h(o);
  for (int i = 1; i <= 10000; ++i) h.Record(static_cast<double>(i));

  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const double truth = q * 10000.0;
    const double est = h.Quantile(q);
    EXPECT_GE(est, truth / gamma) << "q=" << q;
    EXPECT_LE(est, truth * gamma) << "q=" << q;
  }
  EXPECT_GE(h.Quantile(0.0), h.min_seen());
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), h.max_seen());
}

TEST(FixedHistogramTest, SingleValueQuantilesAreExact) {
  // Everything in one bucket clamps to the exact [min, max] envelope.
  FixedHistogram h(SmallOptions());
  for (int i = 0; i < 4; ++i) h.Record(5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 5.0);
}

TEST(FixedHistogramTest, MemoryIsBoundedByConstruction) {
  // The whole point: bucket count never depends on how much was recorded.
  FixedHistogram h(SmallOptions());
  const size_t buckets = h.bucket_count();
  for (int i = 0; i < 100000; ++i) h.Record(static_cast<double>(i % 997));
  EXPECT_EQ(h.bucket_count(), buckets);
  EXPECT_EQ(h.count(), 100000);
}

TEST(MetricsRegistryTest, ConcurrentRecordAndSnapshot) {
  MetricsRegistry reg;
  Counter* c = reg.counter("ops");
  FixedHistogram* h = reg.histogram("lat");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Record(static_cast<double>(t * kPerThread + i + 1));
      }
    });
  }
  // Snapshots taken mid-flight must be internally consistent (bucket sum
  // never exceeds what the total count will become) and never crash.
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snap = reg.Snapshot();
    const HistogramSnapshot& hs = snap.histograms.at("lat");
    int64_t bucket_sum = 0;
    for (int64_t b : hs.counts) bucket_sum += b;
    EXPECT_LE(bucket_sum, int64_t{kThreads} * kPerThread);
  }
  for (auto& w : writers) w.join();

  const MetricsSnapshot final_snap = reg.Snapshot();
  EXPECT_EQ(final_snap.counters.at("ops"), int64_t{kThreads} * kPerThread);
  const HistogramSnapshot& hs = final_snap.histograms.at("lat");
  EXPECT_EQ(hs.count, int64_t{kThreads} * kPerThread);
  int64_t bucket_sum = 0;
  for (int64_t b : hs.counts) bucket_sum += b;
  EXPECT_EQ(bucket_sum, hs.count);
  EXPECT_DOUBLE_EQ(hs.min, 1.0);
  EXPECT_DOUBLE_EQ(hs.max, static_cast<double>(kThreads * kPerThread));
}

TEST(MetricsRegistryTest, SeriesGatedByOptions) {
  MetricsRegistry off;  // Default: production-safe, Series disabled.
  off.series("s")->Record(1.0);
  EXPECT_FALSE(off.series("s")->enabled());
  EXPECT_TRUE(off.Snapshot().series.empty());

  MetricsRegistry on(MetricsRegistry::Options{.enable_series = true});
  on.series("s")->Record(1.0);
  EXPECT_TRUE(on.series("s")->enabled());
  EXPECT_EQ(on.Snapshot().series.at("s").count, 1);
}

TEST(MetricsSnapshotTest, GoldenPrometheusText) {
  MetricsRegistry reg;
  reg.counter("events_total")->Increment(42);
  reg.gauge("slack_us")->Set(1500.5);
  FixedHistogram* h = reg.histogram("lat", SmallOptions());
  h->Record(0.5);
  h->Record(5.0);
  h->Record(50.0);
  h->Record(5000.0);

  EXPECT_EQ(reg.Snapshot().ToPrometheusText(),
            "# TYPE events_total counter\n"
            "events_total 42\n"
            "# TYPE slack_us gauge\n"
            "slack_us 1500.5\n"
            "# TYPE lat histogram\n"
            "lat_bucket{le=\"1\"} 1\n"
            "lat_bucket{le=\"10\"} 2\n"
            "lat_bucket{le=\"100\"} 3\n"
            "lat_bucket{le=\"1000\"} 3\n"
            "lat_bucket{le=\"+Inf\"} 4\n"
            "lat_sum 5055.5\n"
            "lat_count 4\n");
}

TEST(MetricsSnapshotTest, PrometheusNamesAreSanitized) {
  MetricsRegistry reg;
  reg.counter("streamq.source.events_total")->Increment();
  const std::string text = reg.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("streamq_source_events_total 1"), std::string::npos);
  EXPECT_EQ(text.find("streamq.source"), std::string::npos);
}

TEST(MetricsSnapshotTest, GoldenJson) {
  MetricsRegistry reg;
  reg.counter("events_total")->Increment(42);
  reg.gauge("slack_us")->Set(1500.5);
  // Single repeated value: every quantile clamps to the exact envelope, so
  // the JSON is fully deterministic.
  FixedHistogram* h = reg.histogram("lat", SmallOptions());
  for (int i = 0; i < 4; ++i) h->Record(5.0);

  EXPECT_EQ(reg.Snapshot().ToJson(),
            "{\n"
            "  \"counters\": {\n"
            "    \"events_total\": 42\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"slack_us\": 1500.5\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"lat\": {\"count\": 4, \"sum\": 20, \"min\": 5, "
            "\"max\": 5, \"p50\": 5, \"p90\": 5, \"p99\": 5, "
            "\"buckets\": [{\"le\": 10, \"count\": 4}]}\n"
            "  },\n"
            "  \"series\": {}\n"
            "}\n");
}

TEST(MetricsSnapshotTest, JsonEscapesNames) {
  MetricsRegistry reg;
  reg.counter("weird\"name")->Increment();
  const std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("\"weird\\\"name\": 1"), std::string::npos);
}

}  // namespace
}  // namespace streamq
