#include "disorder/fixed_kslack.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "stream/disorder_metrics.h"
#include "tests/test_util.h"

namespace streamq {
namespace {

using testutil::E;

TEST(FixedKSlackTest, HoldsTuplesUntilSlackExpires) {
  FixedKSlack handler(100);
  CollectingSink sink;
  handler.OnEvent(E(0, 1000, 1000), &sink);
  EXPECT_TRUE(sink.events.empty());  // Frontier 1000, threshold 900: held.
  handler.OnEvent(E(1, 1100, 1100), &sink);
  // Threshold 1000: releases the first tuple.
  ASSERT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(sink.events[0].id, 0);
  EXPECT_EQ(sink.watermarks.back(), 1000);
}

TEST(FixedKSlackTest, ReordersWithinSlack) {
  FixedKSlack handler(200);
  CollectingSink sink;
  handler.OnEvent(E(1, 300, 300), &sink);
  handler.OnEvent(E(0, 200, 310), &sink);  // 100 late: within K=200.
  handler.OnEvent(E(2, 600, 600), &sink);  // Threshold 400: release both.
  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_EQ(sink.events[0].id, 0);
  EXPECT_EQ(sink.events[1].id, 1);
  EXPECT_TRUE(sink.late_events.empty());
}

TEST(FixedKSlackTest, DivertsTuplesBeyondSlack) {
  FixedKSlack handler(100);
  CollectingSink sink;
  handler.OnEvent(E(0, 1000, 1000), &sink);
  handler.OnEvent(E(1, 2000, 2000), &sink);  // Watermark -> 1900.
  handler.OnEvent(E(2, 500, 2010), &sink);   // Hopelessly late.
  ASSERT_EQ(sink.late_events.size(), 1u);
  EXPECT_EQ(sink.late_events[0].id, 2);
}

TEST(FixedKSlackTest, KZeroStillSortsTiesAndFrontier) {
  // K = 0 releases everything up to the frontier immediately; out-of-order
  // tuples are all late.
  FixedKSlack handler(0);
  CollectingSink sink;
  const auto w = testutil::DisorderedWorkload(2000);
  testutil::RunHandler(&handler, w.arrival_order, &sink);
  EXPECT_TRUE(IsEventTimeOrdered(sink.events));
  const DisorderStats stats = ComputeDisorderStats(w.arrival_order);
  // Late tuples == out-of-order tuples (modulo equal-timestamp ties).
  EXPECT_NEAR(static_cast<double>(handler.stats().events_late) /
                  static_cast<double>(w.arrival_order.size()),
              stats.out_of_order_fraction, 0.01);
}

TEST(FixedKSlackTest, HugeKDeliversEverythingInOrder) {
  const auto w = testutil::DisorderedWorkload(3000);
  const DisorderStats stats = ComputeDisorderStats(w.arrival_order);
  FixedKSlack handler(stats.max_lateness_us);  // Sufficient by construction.
  CollectingSink sink;
  testutil::RunHandler(&handler, w.arrival_order, &sink);
  EXPECT_EQ(sink.events.size(), w.arrival_order.size());
  EXPECT_TRUE(sink.late_events.empty());
  EXPECT_TRUE(IsEventTimeOrdered(sink.events));
}

TEST(FixedKSlackTest, FlushDrainsBuffer) {
  FixedKSlack handler(1000000);
  CollectingSink sink;
  handler.OnEvent(E(0, 100, 100), &sink);
  handler.OnEvent(E(1, 200, 200), &sink);
  EXPECT_TRUE(sink.events.empty());
  handler.Flush(&sink);
  EXPECT_EQ(sink.events.size(), 2u);
  EXPECT_EQ(sink.watermarks.back(), kMaxTimestamp);
}

TEST(FixedKSlackTest, LatencyGrowsWithK) {
  const auto w = testutil::DisorderedWorkload(5000);
  double prev_latency = -1.0;
  for (DurationUs k : {Millis(5), Millis(20), Millis(80)}) {
    FixedKSlack handler(k);
    CollectingSink sink;
    testutil::RunHandler(&handler, w.arrival_order, &sink);
    const double latency = handler.stats().buffering_latency_us.mean();
    EXPECT_GT(latency, prev_latency) << "K=" << k;
    prev_latency = latency;
  }
}

TEST(FixedKSlackTest, LatenessShedGrowsAsKShrinks) {
  const auto w = testutil::DisorderedWorkload(5000);
  int64_t prev_late = -1;
  for (DurationUs k : {Millis(80), Millis(20), Millis(5)}) {
    FixedKSlack handler(k);
    CollectingSink sink;
    testutil::RunHandler(&handler, w.arrival_order, &sink);
    EXPECT_GT(handler.stats().events_late, prev_late) << "K=" << k;
    prev_late = handler.stats().events_late;
  }
}

TEST(FixedKSlackTest, OutputSatisfiesOrderingContract) {
  for (DurationUs k : {DurationUs{0}, Millis(1), Millis(10), Millis(100)}) {
    FixedKSlack handler(k);
    testutil::ContractCheckingSink sink;
    testutil::RunHandler(&handler,
                         testutil::DisorderedWorkload(2000).arrival_order,
                         &sink);
    EXPECT_TRUE(sink.ordered) << "K=" << k;
    EXPECT_TRUE(sink.respects_watermark) << "K=" << k;
    EXPECT_TRUE(sink.watermarks_monotone) << "K=" << k;
  }
}

TEST(FixedKSlackTest, ConservationOfTuples) {
  FixedKSlack handler(Millis(10));
  CollectingSink sink;
  const auto w = testutil::DisorderedWorkload(3000);
  testutil::RunHandler(&handler, w.arrival_order, &sink);
  EXPECT_EQ(sink.events.size() + sink.late_events.size(),
            w.arrival_order.size());
}

TEST(FixedKSlackTest, BufferingLatencyBoundedByObservedGap) {
  // A tuple is held while the frontier advances by at most K (plus the gap
  // to the triggering arrival); with event-time ~ arrival-time scales this
  // bounds mean latency to the same order as K. Smoke-check the max is not
  // absurd (e.g. 100x K) on a stationary workload.
  const DurationUs k = Millis(20);
  FixedKSlack handler(k);
  CollectingSink sink;
  testutil::RunHandler(&handler, testutil::DisorderedWorkload(5000).arrival_order,
                       &sink);
  EXPECT_LT(handler.stats().buffering_latency_us.mean(),
            static_cast<double>(5 * k));
}

TEST(FixedKSlackTest, RejectsNegativeK) {
  EXPECT_DEATH(FixedKSlack handler(-1), "Check failed");
}

TEST(FixedKSlackTest, NameAndSlack) {
  FixedKSlack handler(123);
  EXPECT_EQ(handler.name(), "fixed-kslack");
  EXPECT_EQ(handler.current_slack(), 123);
}

}  // namespace
}  // namespace streamq
