#include "disorder/mp_kslack.h"

#include <gtest/gtest.h>

#include "stream/disorder_metrics.h"
#include "tests/test_util.h"

namespace streamq {
namespace {

using testutil::E;

MpKSlack::Options GrowOnly() {
  MpKSlack::Options o;
  o.mode = MpKSlack::Mode::kGrowOnly;
  return o;
}

MpKSlack::Options Sliding(int64_t window) {
  MpKSlack::Options o;
  o.mode = MpKSlack::Mode::kSlidingMax;
  o.window_size = window;
  return o;
}

TEST(MpKSlackTest, SlackStartsAtZero) {
  MpKSlack handler(GrowOnly());
  EXPECT_EQ(handler.current_slack(), 0);
}

TEST(MpKSlackTest, GrowOnlyTracksMaxLateness) {
  MpKSlack handler(GrowOnly());
  CollectingSink sink;
  handler.OnEvent(E(0, 1000, 1000), &sink);
  handler.OnEvent(E(1, 2000, 2000), &sink);
  handler.OnEvent(E(2, 1500, 2010), &sink);  // 500 late.
  EXPECT_EQ(handler.current_slack(), 500);
  handler.OnEvent(E(3, 3000, 3000), &sink);
  handler.OnEvent(E(4, 2900, 3010), &sink);  // Only 100 late: no shrink.
  EXPECT_EQ(handler.current_slack(), 500);
}

TEST(MpKSlackTest, GrowOnlyEventuallyLosesNothing) {
  // After warm-up the bound covers the max lateness; quality loss is
  // limited to the warm-up phase.
  const auto w = testutil::DisorderedWorkload(10000);
  MpKSlack handler(GrowOnly());
  CollectingSink sink;
  testutil::RunHandler(&handler, w.arrival_order, &sink);
  EXPECT_TRUE(IsEventTimeOrdered(sink.events));
  // Much less than the out-of-order fraction (~60% of tuples).
  EXPECT_LT(handler.stats().events_late,
            static_cast<int64_t>(w.arrival_order.size() / 10));
}

TEST(MpKSlackTest, SafetyFactorScalesBound) {
  MpKSlack::Options o = GrowOnly();
  o.safety_factor = 2.0;
  MpKSlack handler(o);
  CollectingSink sink;
  handler.OnEvent(E(0, 1000, 1000), &sink);
  handler.OnEvent(E(1, 2000, 2000), &sink);
  handler.OnEvent(E(2, 1500, 2010), &sink);  // 500 late -> K = 1000.
  EXPECT_EQ(handler.current_slack(), 1000);
}

TEST(MpKSlackTest, SlidingMaxShrinksAfterBurstLeavesWindow) {
  MpKSlack handler(Sliding(10));
  CollectingSink sink;
  TimestampUs ts = 1000;
  int64_t id = 0;
  // One big lateness spike.
  handler.OnEvent(E(id++, ts, ts), &sink);
  ts += 1000;
  handler.OnEvent(E(id++, ts, ts), &sink);
  handler.OnEvent(E(id++, ts - 900, ts + 1), &sink);  // 900 late.
  EXPECT_GE(handler.current_slack(), 900);
  // 20 in-order tuples push the spike out of the 10-tuple window.
  for (int i = 0; i < 20; ++i) {
    ts += 1000;
    handler.OnEvent(E(id++, ts, ts), &sink);
  }
  EXPECT_EQ(handler.current_slack(), 0);
}

TEST(MpKSlackTest, SlidingWindowBoundsQualityLocally) {
  const auto w = testutil::DisorderedWorkload(10000);
  MpKSlack handler(Sliding(2000));
  CollectingSink sink;
  testutil::RunHandler(&handler, w.arrival_order, &sink);
  EXPECT_TRUE(IsEventTimeOrdered(sink.events));
  EXPECT_EQ(sink.events.size() + sink.late_events.size(),
            w.arrival_order.size());
}

TEST(MpKSlackTest, GrowOnlyNeverExceedsGlobalMaxLateness) {
  const auto w = testutil::DisorderedWorkload(5000);
  const DisorderStats stats = ComputeDisorderStats(w.arrival_order);
  MpKSlack handler(GrowOnly());
  CollectingSink sink;
  testutil::RunHandler(&handler, w.arrival_order, &sink);
  EXPECT_LE(handler.current_slack(), stats.max_lateness_us);
}

TEST(MpKSlackTest, OrderingContractHolds) {
  for (auto options : {GrowOnly(), Sliding(100), Sliding(5000)}) {
    MpKSlack handler(options);
    testutil::ContractCheckingSink sink;
    testutil::RunHandler(&handler,
                         testutil::DisorderedWorkload(3000).arrival_order,
                         &sink);
    EXPECT_TRUE(sink.ordered);
    EXPECT_TRUE(sink.respects_watermark);
    EXPECT_TRUE(sink.watermarks_monotone);
  }
}

TEST(MpKSlackTest, HeavyTailInflatesLatencyVsQualityDriven) {
  // The motivating pathology: with Pareto delays the observed max keeps
  // growing, and the disorder-bound tracker buffers for the worst case.
  WorkloadConfig cfg;
  cfg.num_events = 20000;
  cfg.delay.model = DelayModel::kPareto;
  cfg.delay.a = 1000.0;
  cfg.delay.b = 1.2;  // Very heavy tail.
  cfg.seed = 9;
  const auto w = GenerateWorkload(cfg);

  MpKSlack grow(GrowOnly());
  CollectingSink sink;
  testutil::RunHandler(&grow, w.arrival_order, &sink);

  const DisorderStats stats = ComputeDisorderStats(w.arrival_order);
  // The final bound is within an order of magnitude of the global max and
  // far above the p95 lateness: the tail dominates.
  EXPECT_GT(grow.current_slack(), stats.p95_lateness_us * 5);
}

TEST(MpKSlackTest, RejectsBadOptions) {
  MpKSlack::Options o;
  o.window_size = 0;
  EXPECT_DEATH(MpKSlack handler(o), "Check failed");
  MpKSlack::Options o2;
  o2.safety_factor = -1.0;
  EXPECT_DEATH(MpKSlack handler(o2), "Check failed");
}

TEST(MpKSlackTest, Name) {
  MpKSlack handler(GrowOnly());
  EXPECT_EQ(handler.name(), "mp-kslack");
}

}  // namespace
}  // namespace streamq
