#include "window/paned_window_operator.h"

#include <gtest/gtest.h>

#include <map>

#include "disorder/fixed_kslack.h"
#include "disorder/handler_factory.h"
#include "tests/test_util.h"
#include "window/window_operator.h"

namespace streamq {
namespace {

using testutil::E;

PanedWindowedAggregation::Options Opt(DurationUs size, DurationUs slide,
                                      AggKind kind = AggKind::kSum) {
  PanedWindowedAggregation::Options o;
  o.window = WindowSpec::Sliding(size, slide);
  o.aggregate.kind = kind;
  return o;
}

TEST(PanedWindowTest, TumblingBasic) {
  CollectingResultSink results;
  PanedWindowedAggregation op(Opt(100, 100), &results);
  op.OnEvent(E(1, 10, 10));
  op.OnEvent(E(2, 20, 20));
  op.OnEvent(E(3, 150, 150));
  op.OnWatermark(kMaxTimestamp, 200);
  ASSERT_EQ(results.results.size(), 2u);
  EXPECT_EQ(results.results[0].bounds, (WindowBounds{0, 100}));
  EXPECT_DOUBLE_EQ(results.results[0].value, 3.0);
  EXPECT_EQ(results.results[1].bounds, (WindowBounds{100, 200}));
  EXPECT_DOUBLE_EQ(results.results[1].value, 3.0);
}

TEST(PanedWindowTest, SlidingSharesPanes) {
  CollectingResultSink results;
  PanedWindowedAggregation op(Opt(100, 50, AggKind::kCount), &results);
  op.OnEvent(E(0, 75, 75));  // Pane [50,100): windows [0,100) and [50,150).
  op.OnWatermark(kMaxTimestamp, 200);
  ASSERT_EQ(results.results.size(), 2u);
  EXPECT_EQ(results.results[0].bounds, (WindowBounds{0, 100}));
  EXPECT_EQ(results.results[1].bounds, (WindowBounds{50, 150}));
  EXPECT_DOUBLE_EQ(results.results[0].value, 1.0);
  EXPECT_DOUBLE_EQ(results.results[1].value, 1.0);
}

TEST(PanedWindowTest, FiresOnlyCompleteWindows) {
  CollectingResultSink results;
  PanedWindowedAggregation op(Opt(100, 50), &results);
  op.OnEvent(E(1, 75, 75));
  op.OnWatermark(120, 120);  // [0,100) complete, [50,150) not.
  ASSERT_EQ(results.results.size(), 1u);
  EXPECT_EQ(results.results[0].bounds, (WindowBounds{0, 100}));
}

TEST(PanedWindowTest, PurgesConsumedPanes) {
  CollectingResultSink results;
  PanedWindowedAggregation op(Opt(100, 50), &results);
  op.OnEvent(E(1, 25, 25));
  op.OnEvent(E(2, 125, 125));
  EXPECT_EQ(op.live_panes(), 2u);
  op.OnWatermark(160, 160);  // Windows [-50,50), [0,100) fired.
  // Pane [0,50) is consumed by its last window [0,100): purged.
  EXPECT_EQ(op.live_panes(), 1u);
}

TEST(PanedWindowTest, RejectsNonTilingSpecs) {
  CollectingResultSink results;
  EXPECT_DEATH(PanedWindowedAggregation op(Opt(100, 33), &results),
               "size % slide");
  EXPECT_DEATH(PanedWindowedAggregation op(Opt(50, 100), &results),
               "slide <= size");
}

struct EquivCase {
  DurationUs size;
  DurationUs slide;
  AggKind kind;
};

class PanedEquivalenceTest : public ::testing::TestWithParam<EquivCase> {};

TEST_P(PanedEquivalenceTest, MatchesNaiveOperatorThroughHandler) {
  // The optimization must be invisible: identical results to the naive
  // per-window operator, over a disordered stream with a lossy handler
  // (late tuples exercise the late-pane path).
  const auto& param = GetParam();
  WorkloadConfig cfg;
  cfg.num_events = 8000;
  cfg.num_keys = 4;
  cfg.delay.model = DelayModel::kExponential;
  cfg.delay.a = 15000.0;
  cfg.seed = 77;
  const auto w = GenerateWorkload(cfg);

  auto run = [&](EventSink* op) {
    FixedKSlack handler(Millis(10));  // Lossy: produces late events.
    testutil::RunHandler(&handler, w.arrival_order, op);
  };

  CollectingResultSink naive_results;
  WindowedAggregation::Options naive_opts;
  naive_opts.window = WindowSpec::Sliding(param.size, param.slide);
  naive_opts.aggregate.kind = param.kind;
  naive_opts.allowed_lateness = 0;
  WindowedAggregation naive(naive_opts, &naive_results);
  run(&naive);

  CollectingResultSink paned_results;
  PanedWindowedAggregation paned(Opt(param.size, param.slide, param.kind),
                                 &paned_results);
  run(&paned);

  // Compare as (window, key) -> (value, count) maps: emission grouping
  // differs across watermark batches but the set of results must match.
  using Key = std::tuple<TimestampUs, TimestampUs, int64_t>;
  std::map<Key, std::pair<double, int64_t>> a, b;
  for (const WindowResult& r : naive_results.results) {
    a[{r.bounds.start, r.bounds.end, r.key}] = {r.value, r.tuple_count};
  }
  for (const WindowResult& r : paned_results.results) {
    b[{r.bounds.start, r.bounds.end, r.key}] = {r.value, r.tuple_count};
  }
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, va] : a) {
    auto it = b.find(key);
    ASSERT_NE(it, b.end());
    EXPECT_NEAR(va.first, it->second.first, 1e-9);
    EXPECT_EQ(va.second, it->second.second);
  }
  EXPECT_GT(a.size(), 10u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PanedEquivalenceTest,
    ::testing::Values(EquivCase{Millis(50), Millis(50), AggKind::kSum},
                      EquivCase{Millis(100), Millis(25), AggKind::kSum},
                      EquivCase{Millis(100), Millis(25), AggKind::kCount},
                      EquivCase{Millis(80), Millis(10), AggKind::kMax},
                      EquivCase{Millis(60), Millis(20), AggKind::kMedian}));

TEST(PanedWindowTest, PaneCountStaysBoundedWithBoundedSlack) {
  const auto w = testutil::DisorderedWorkload(10000);
  CollectingResultSink results;
  PanedWindowedAggregation op(Opt(Millis(100), Millis(10)), &results);
  FixedKSlack handler(Millis(30));
  testutil::RunHandler(&handler, w.arrival_order, &op);
  // Live panes cover roughly window size + slack of event time:
  // (100ms + 30ms) / 10ms ~ 13 panes; allow headroom.
  EXPECT_LT(op.stats().max_live_panes, 40);
}

TEST(PanedWindowTest, LateAccounting) {
  CollectingResultSink results;
  PanedWindowedAggregation op(Opt(100, 50, AggKind::kCount), &results);
  op.OnEvent(E(0, 200, 200));
  op.OnWatermark(200, 200);   // Fires windows ending <= 200.
  op.OnLateEvent(E(1, 180, 210));  // Pane [150,200) still live.
  EXPECT_EQ(op.stats().late_applied, 1);
  op.OnLateEvent(E(2, 20, 220));  // Pane [0,50) long consumed.
  EXPECT_EQ(op.stats().late_dropped, 1);
}

}  // namespace
}  // namespace streamq
