#include "disorder/quality_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace streamq {
namespace {

TEST(CoverageQualityModelTest, IsIdentity) {
  CoverageQualityModel m;
  EXPECT_DOUBLE_EQ(m.QualityFromCoverage(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.QualityFromCoverage(0.7), 0.7);
  EXPECT_DOUBLE_EQ(m.QualityFromCoverage(1.0), 1.0);
  EXPECT_DOUBLE_EQ(m.CoverageForQuality(0.9), 0.9);
}

TEST(CoverageQualityModelTest, Clamps) {
  CoverageQualityModel m;
  EXPECT_DOUBLE_EQ(m.QualityFromCoverage(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(m.QualityFromCoverage(2.0), 1.0);
  EXPECT_DOUBLE_EQ(m.CoverageForQuality(2.0), 1.0);
}

class PowerModelGammaTest : public ::testing::TestWithParam<double> {};

TEST_P(PowerModelGammaTest, RoundTripInverse) {
  const double gamma = GetParam();
  PowerQualityModel m(gamma);
  for (double q : {0.1, 0.5, 0.8, 0.9, 0.95, 0.99, 1.0}) {
    const double c = m.CoverageForQuality(q);
    EXPECT_NEAR(m.QualityFromCoverage(c), q, 1e-12) << "gamma=" << gamma;
  }
}

TEST_P(PowerModelGammaTest, MonotoneInCoverage) {
  PowerQualityModel m(GetParam());
  double prev = -1.0;
  for (double c = 0.0; c <= 1.0; c += 0.05) {
    const double q = m.QualityFromCoverage(c);
    EXPECT_GE(q, prev);
    prev = q;
  }
  EXPECT_DOUBLE_EQ(m.QualityFromCoverage(1.0), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Gammas, PowerModelGammaTest,
                         ::testing::Values(0.1, 0.3, 0.5, 1.0, 1.5, 3.0));

TEST(PowerQualityModelTest, LowGammaIsRobust) {
  // gamma < 1: high quality at moderate coverage (max-like aggregates).
  PowerQualityModel robust(0.3);
  EXPECT_GT(robust.QualityFromCoverage(0.7), 0.89);
  // And correspondingly needs less coverage for the same target.
  PowerQualityModel proportional(1.0);
  EXPECT_LT(robust.CoverageForQuality(0.95),
            proportional.CoverageForQuality(0.95));
}

TEST(PowerQualityModelTest, HighGammaIsFragile) {
  PowerQualityModel fragile(2.0);
  EXPECT_NEAR(fragile.QualityFromCoverage(0.9), 0.81, 1e-12);
  EXPECT_GT(fragile.CoverageForQuality(0.9), 0.94);
}

TEST(PowerQualityModelTest, GammaOneEqualsIdentity) {
  PowerQualityModel m(1.0);
  CoverageQualityModel id;
  for (double c : {0.0, 0.3, 0.5, 0.77, 1.0}) {
    EXPECT_DOUBLE_EQ(m.QualityFromCoverage(c), id.QualityFromCoverage(c));
  }
}

TEST(PowerQualityModelTest, RejectsNonPositiveGamma) {
  EXPECT_DEATH(PowerQualityModel m(0.0), "Check failed");
  EXPECT_DEATH(PowerQualityModel m(-1.0), "Check failed");
}

TEST(QualityModelFactoryTest, Factories) {
  auto cov = MakeCoverageQualityModel();
  EXPECT_EQ(cov->name(), "coverage");
  auto pow = MakePowerQualityModel(0.5);
  EXPECT_EQ(pow->name(), "power");
}

}  // namespace
}  // namespace streamq
