// OnBatch/FeedBatch equivalence: for EVERY factory handler and EVERY chunk
// size, the batched path must be indistinguishable from the per-event path —
// byte-identical WindowResult sequences and identical handler stats (the
// latency_samples vector included, which also pins the reservoir's
// determinism). This is the contract that lets Run() batch by default.

#include <algorithm>
#include <cstddef>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/continuous_query.h"
#include "core/executor.h"
#include "stream/generator.h"
#include "tests/test_util.h"
#include "window/window.h"

namespace streamq {
namespace {

/// All handler kinds the factory can build, in both flat and per-key form
/// where per-key applies.
std::vector<DisorderHandlerSpec> AllSpecs() {
  std::vector<DisorderHandlerSpec> specs;
  specs.push_back(DisorderHandlerSpec::PassThrough());
  specs.push_back(DisorderHandlerSpec::Fixed(Millis(30)));
  {
    MpKSlack::Options mp;  // Default: sliding estimation window.
    specs.push_back(DisorderHandlerSpec::Mp(mp));
  }
  {
    MpKSlack::Options mp;
    mp.mode = MpKSlack::Mode::kGrowOnly;
    specs.push_back(DisorderHandlerSpec::Mp(mp));
  }
  {
    AqKSlack::Options aq;
    aq.target_quality = 0.95;
    specs.push_back(DisorderHandlerSpec::Aq(aq));
  }
  {
    LbKSlack::Options lb;
    specs.push_back(DisorderHandlerSpec::Lb(lb));
  }
  {
    WatermarkReorderer::Options wm;
    wm.bound = Millis(30);
    wm.period_events = 7;  // Off-stride from every batch size under test.
    wm.allowed_lateness = Millis(10);
    specs.push_back(DisorderHandlerSpec::Watermark(wm));
  }
  specs.push_back(DisorderHandlerSpec::Fixed(Millis(30)).PerKey());
  {
    AqKSlack::Options aq;
    aq.target_quality = 0.95;
    specs.push_back(DisorderHandlerSpec::Aq(aq).PerKey());
  }
  return specs;
}

ContinuousQuery QueryFor(const DisorderHandlerSpec& spec) {
  ContinuousQuery q;
  q.name = "equiv";
  q.handler = spec;
  q.window.window = WindowSpec::Sliding(Millis(50), Millis(25));
  q.window.aggregate.kind = AggKind::kSum;
  q.window.allowed_lateness = Millis(20);
  q.window.per_key_watermarks = spec.per_key;
  return q;
}

const std::vector<Event>& TestStream() {
  static const std::vector<Event>* events = [] {
    WorkloadConfig cfg;
    cfg.num_events = 4000;
    cfg.events_per_second = 10000.0;
    cfg.num_keys = 8;
    cfg.delay.model = DelayModel::kExponential;
    cfg.delay.a = 20000.0;
    cfg.seed = 42;
    return new std::vector<Event>(GenerateWorkload(cfg).arrival_order);
  }();
  return *events;
}

RunReport RunPerEvent(const ContinuousQuery& q) {
  QueryExecutor exec(q);
  for (const Event& e : TestStream()) exec.Feed(e);
  exec.Finish();
  return exec.Report();
}

RunReport RunBatched(const ContinuousQuery& q, size_t batch_size) {
  QueryExecutor exec(q);
  const std::span<const Event> events(TestStream());
  if (batch_size == 0) {
    exec.FeedBatch(events);  // Whole stream as one batch.
  } else {
    for (size_t i = 0; i < events.size(); i += batch_size) {
      exec.FeedBatch(
          events.subspan(i, std::min(batch_size, events.size() - i)));
    }
  }
  exec.Finish();
  return exec.Report();
}

void ExpectIdentical(const RunReport& base, const RunReport& batched) {
  EXPECT_EQ(base.events_processed, batched.events_processed);
  EXPECT_EQ(base.results, batched.results);

  const DisorderHandlerStats& a = base.handler_stats;
  const DisorderHandlerStats& b = batched.handler_stats;
  EXPECT_EQ(a.events_in, b.events_in);
  EXPECT_EQ(a.events_out, b.events_out);
  EXPECT_EQ(a.events_late, b.events_late);
  EXPECT_EQ(a.events_dropped, b.events_dropped);
  EXPECT_EQ(a.max_buffer_size, b.max_buffer_size);
  EXPECT_EQ(a.buffering_latency_us.count(), b.buffering_latency_us.count());
  EXPECT_EQ(a.buffering_latency_us.mean(), b.buffering_latency_us.mean());
  EXPECT_EQ(a.buffering_latency_us.min(), b.buffering_latency_us.min());
  EXPECT_EQ(a.buffering_latency_us.max(), b.buffering_latency_us.max());
  EXPECT_EQ(a.latency_samples, b.latency_samples);

  const WindowedAggregation::Stats& wa = base.window_stats;
  const WindowedAggregation::Stats& wb = batched.window_stats;
  EXPECT_EQ(wa.events, wb.events);
  EXPECT_EQ(wa.late_applied, wb.late_applied);
  EXPECT_EQ(wa.late_dropped, wb.late_dropped);
  EXPECT_EQ(wa.windows_fired, wb.windows_fired);
  EXPECT_EQ(wa.revisions, wb.revisions);
  EXPECT_EQ(wa.max_live_windows, wb.max_live_windows);

  EXPECT_EQ(base.final_slack, batched.final_slack);
}

using Param = std::tuple<int, size_t>;  // (spec index, batch size; 0 = all)

class BatchEquivalenceTest : public ::testing::TestWithParam<Param> {};

TEST_P(BatchEquivalenceTest, BatchedRunMatchesPerEventRun) {
  const auto [spec_index, batch_size] = GetParam();
  const DisorderHandlerSpec spec = AllSpecs()[static_cast<size_t>(spec_index)];
  SCOPED_TRACE(spec.Describe() + " batch=" + std::to_string(batch_size));
  const ContinuousQuery q = QueryFor(spec);
  ExpectIdentical(RunPerEvent(q), RunBatched(q, batch_size));
}

INSTANTIATE_TEST_SUITE_P(
    AllHandlersAllBatchSizes, BatchEquivalenceTest,
    ::testing::Combine(::testing::Range(0, 9),
                       ::testing::Values<size_t>(1, 3, 16, 257, 0)),
    [](const ::testing::TestParamInfo<Param>& info) {
      const size_t b = std::get<1>(info.param);
      std::string name = "spec";  // += avoids GCC 12 -Wrestrict (PR105651).
      name += std::to_string(std::get<0>(info.param));
      name += "_batch";
      name += b == 0 ? std::string("all") : std::to_string(b);
      return name;
    });

// Sanity: the test stream actually exercises every interesting path.
TEST(BatchEquivalenceWorkload, ExercisesLatenessAndBuffering) {
  const ContinuousQuery q = QueryFor(DisorderHandlerSpec::Fixed(Millis(30)));
  const RunReport r = RunPerEvent(q);
  EXPECT_GT(r.handler_stats.events_late, 0);
  EXPECT_GT(r.handler_stats.max_buffer_size, 0);
  EXPECT_GT(r.window_stats.revisions + r.window_stats.late_applied, 0);
  EXPECT_FALSE(r.handler_stats.latency_samples.empty());
}

}  // namespace
}  // namespace streamq
