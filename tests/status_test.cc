#include "common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace streamq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::InvalidArgument("m").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("m").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("m").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("m").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("m").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("m").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unimplemented("m").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("m").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("m").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Cancelled("m").code(), StatusCode::kCancelled);
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string(1000, 'x'));
  ASSERT_TRUE(r.ok());
  const std::string v = std::move(r).value();
  EXPECT_EQ(v.size(), 1000u);
}

TEST(ResultTest, OkStatusIsCoercedToInternalError) {
  // Constructing a Result from an OK status is a bug; it must not silently
  // pretend to hold a value.
  Result<int> r{Status::OK()};
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status UseReturnNotOk(int x, int* calls) {
  STREAMQ_RETURN_NOT_OK(FailIfNegative(x));
  ++*calls;
  return Status::OK();
}

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  int calls = 0;
  EXPECT_TRUE(UseReturnNotOk(1, &calls).ok());
  EXPECT_EQ(calls, 1);
  const Status s = UseReturnNotOk(-1, &calls);
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(calls, 1);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  STREAMQ_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(StatusMacroTest, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseAssignOrReturn(3, &out).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out, 5);  // Unchanged on error.
}

}  // namespace
}  // namespace streamq
