#include "agg/aggregate.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace streamq {
namespace {

std::vector<double> TestValues() {
  return {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
}

std::unique_ptr<Aggregator> Make(AggKind kind, double q = 0.5) {
  AggregateSpec spec;
  spec.kind = kind;
  spec.quantile_q = q;
  return MakeAggregator(spec);
}

TEST(AggregateTest, Count) {
  auto agg = Make(AggKind::kCount);
  for (double v : TestValues()) agg->Add(v);
  EXPECT_DOUBLE_EQ(agg->Value(), 8.0);
  EXPECT_EQ(agg->count(), 8);
  EXPECT_EQ(agg->name(), "count");
}

TEST(AggregateTest, Sum) {
  auto agg = Make(AggKind::kSum);
  for (double v : TestValues()) agg->Add(v);
  EXPECT_DOUBLE_EQ(agg->Value(), 40.0);
}

TEST(AggregateTest, SumIsCompensated) {
  // Kahan summation: adding many tiny values to a huge one must not lose
  // them all.
  auto agg = Make(AggKind::kSum);
  agg->Add(1e16);
  for (int i = 0; i < 10000; ++i) agg->Add(1.0);
  EXPECT_DOUBLE_EQ(agg->Value(), 1e16 + 10000.0);
}

TEST(AggregateTest, Mean) {
  auto agg = Make(AggKind::kMean);
  for (double v : TestValues()) agg->Add(v);
  EXPECT_DOUBLE_EQ(agg->Value(), 5.0);
}

TEST(AggregateTest, MinMax) {
  auto mn = Make(AggKind::kMin);
  auto mx = Make(AggKind::kMax);
  for (double v : TestValues()) {
    mn->Add(v);
    mx->Add(v);
  }
  EXPECT_DOUBLE_EQ(mn->Value(), 2.0);
  EXPECT_DOUBLE_EQ(mx->Value(), 9.0);
}

TEST(AggregateTest, VarianceAndStdDev) {
  auto var = Make(AggKind::kVariance);
  auto sd = Make(AggKind::kStdDev);
  for (double v : TestValues()) {
    var->Add(v);
    sd->Add(v);
  }
  EXPECT_DOUBLE_EQ(var->Value(), 4.0);
  EXPECT_DOUBLE_EQ(sd->Value(), 2.0);
}

TEST(AggregateTest, Median) {
  auto agg = Make(AggKind::kMedian);
  for (double v : TestValues()) agg->Add(v);
  EXPECT_DOUBLE_EQ(agg->Value(), 4.5);
  EXPECT_EQ(agg->name(), "median");
}

TEST(AggregateTest, Quantile) {
  auto agg = Make(AggKind::kQuantile, 0.25);
  for (double v : TestValues()) agg->Add(v);
  EXPECT_DOUBLE_EQ(agg->Value(), 4.0);
  EXPECT_EQ(agg->name(), "quantile");
}

TEST(AggregateTest, DistinctCount) {
  auto agg = Make(AggKind::kDistinctCount);
  for (double v : TestValues()) agg->Add(v);
  EXPECT_DOUBLE_EQ(agg->Value(), 5.0);  // {2, 4, 5, 7, 9}.
  EXPECT_EQ(agg->count(), 8);
}

struct EmptyCase {
  AggKind kind;
  bool value_is_nan;
  double value_if_not_nan;
};

class EmptyAggregateTest : public ::testing::TestWithParam<EmptyCase> {};

TEST_P(EmptyAggregateTest, EmptyWindowValue) {
  auto agg = Make(GetParam().kind);
  EXPECT_EQ(agg->count(), 0);
  if (GetParam().value_is_nan) {
    EXPECT_TRUE(std::isnan(agg->Value()));
  } else {
    EXPECT_DOUBLE_EQ(agg->Value(), GetParam().value_if_not_nan);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, EmptyAggregateTest,
    ::testing::Values(EmptyCase{AggKind::kCount, false, 0.0},
                      EmptyCase{AggKind::kSum, false, 0.0},
                      EmptyCase{AggKind::kMean, true, 0.0},
                      EmptyCase{AggKind::kMin, true, 0.0},
                      EmptyCase{AggKind::kMax, true, 0.0},
                      EmptyCase{AggKind::kVariance, true, 0.0},
                      EmptyCase{AggKind::kMedian, true, 0.0},
                      EmptyCase{AggKind::kDistinctCount, false, 0.0}));

class MergeAggregateTest : public ::testing::TestWithParam<AggKind> {};

TEST_P(MergeAggregateTest, MergeEqualsSingleStream) {
  // Property: splitting a stream arbitrarily and merging accumulators gives
  // the same value as one accumulator over the whole stream.
  Rng rng(91);
  for (int trial = 0; trial < 10; ++trial) {
    auto whole = Make(GetParam());
    auto left = Make(GetParam());
    auto right = Make(GetParam());
    const int n = static_cast<int>(rng.NextInt(1, 200));
    const int split = static_cast<int>(rng.NextInt(0, n));
    for (int i = 0; i < n; ++i) {
      const double v = rng.NextUniform(-10.0, 10.0);
      whole->Add(v);
      (i < split ? left : right)->Add(v);
    }
    left->Merge(*right);
    EXPECT_NEAR(left->Value(), whole->Value(), 1e-9)
        << "kind=" << static_cast<int>(GetParam()) << " trial=" << trial;
    EXPECT_EQ(left->count(), whole->count());
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, MergeAggregateTest,
                         ::testing::Values(AggKind::kCount, AggKind::kSum,
                                           AggKind::kMean, AggKind::kMin,
                                           AggKind::kMax, AggKind::kVariance,
                                           AggKind::kStdDev, AggKind::kMedian,
                                           AggKind::kDistinctCount));

TEST(MergeAggregateTest, MergeEmptySides) {
  auto a = Make(AggKind::kMin);
  auto b = Make(AggKind::kMin);
  a->Add(5.0);
  a->Merge(*b);  // Empty rhs: no-op.
  EXPECT_DOUBLE_EQ(a->Value(), 5.0);
  b->Merge(*a);  // Empty lhs adopts rhs.
  EXPECT_DOUBLE_EQ(b->Value(), 5.0);
}

TEST(MergeAggregateTest, TypeMismatchAborts) {
  auto sum = Make(AggKind::kSum);
  auto cnt = Make(AggKind::kCount);
  EXPECT_DEATH(sum->Merge(*cnt), "Merge type mismatch");
}

TEST(AggregateTest, MakeEmptyPreservesKindAndParams) {
  auto q = Make(AggKind::kQuantile, 0.9);
  q->Add(1.0);
  auto fresh = q->MakeEmpty();
  EXPECT_EQ(fresh->count(), 0);
  for (int i = 1; i <= 10; ++i) fresh->Add(i);
  EXPECT_NEAR(fresh->Value(), 9.1, 1e-9);  // 0.9-quantile of 1..10.
}

TEST(AggregateSpecTest, Describe) {
  AggregateSpec spec;
  spec.kind = AggKind::kQuantile;
  spec.quantile_q = 0.9;
  EXPECT_EQ(spec.Describe(), "quantile(0.90)");
  spec.kind = AggKind::kSum;
  EXPECT_EQ(spec.Describe(), "sum");
}

TEST(AggregateSpecTest, Validation) {
  AggregateSpec spec;
  spec.kind = AggKind::kQuantile;
  spec.quantile_q = 0.0;
  EXPECT_FALSE(spec.Validate().ok());
  spec.quantile_q = 1.0;
  EXPECT_FALSE(spec.Validate().ok());
  spec.quantile_q = 0.5;
  EXPECT_TRUE(spec.Validate().ok());
}

TEST(ParseAggregateSpecTest, AllNames) {
  EXPECT_EQ(ParseAggregateSpec("count").value().kind, AggKind::kCount);
  EXPECT_EQ(ParseAggregateSpec("sum").value().kind, AggKind::kSum);
  EXPECT_EQ(ParseAggregateSpec("mean").value().kind, AggKind::kMean);
  EXPECT_EQ(ParseAggregateSpec("avg").value().kind, AggKind::kMean);
  EXPECT_EQ(ParseAggregateSpec("min").value().kind, AggKind::kMin);
  EXPECT_EQ(ParseAggregateSpec("max").value().kind, AggKind::kMax);
  EXPECT_EQ(ParseAggregateSpec("variance").value().kind, AggKind::kVariance);
  EXPECT_EQ(ParseAggregateSpec("var").value().kind, AggKind::kVariance);
  EXPECT_EQ(ParseAggregateSpec("stddev").value().kind, AggKind::kStdDev);
  EXPECT_EQ(ParseAggregateSpec("median").value().kind, AggKind::kMedian);
  EXPECT_EQ(ParseAggregateSpec("distinct").value().kind,
            AggKind::kDistinctCount);
}

TEST(ParseAggregateSpecTest, QuantileWithParameter) {
  auto r = ParseAggregateSpec("quantile:0.75");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().kind, AggKind::kQuantile);
  EXPECT_DOUBLE_EQ(r.value().quantile_q, 0.75);
}

TEST(ParseAggregateSpecTest, Rejections) {
  EXPECT_FALSE(ParseAggregateSpec("frobnicate").ok());
  EXPECT_FALSE(ParseAggregateSpec("quantile:").ok());
  EXPECT_FALSE(ParseAggregateSpec("quantile:abc").ok());
  EXPECT_FALSE(ParseAggregateSpec("quantile:1.5").ok());
  EXPECT_FALSE(ParseAggregateSpec("").ok());
}

TEST(DefaultQualityGammaTest, OrderStatisticsAreRobust) {
  EXPECT_LT(DefaultQualityGamma(AggKind::kMax),
            DefaultQualityGamma(AggKind::kSum));
  EXPECT_LT(DefaultQualityGamma(AggKind::kMedian),
            DefaultQualityGamma(AggKind::kCount));
  EXPECT_DOUBLE_EQ(DefaultQualityGamma(AggKind::kSum), 1.0);
  for (AggKind kind :
       {AggKind::kCount, AggKind::kSum, AggKind::kMean, AggKind::kMin,
        AggKind::kMax, AggKind::kVariance, AggKind::kStdDev, AggKind::kMedian,
        AggKind::kQuantile, AggKind::kDistinctCount}) {
    EXPECT_GT(DefaultQualityGamma(kind), 0.0);
    EXPECT_LE(DefaultQualityGamma(kind), 5.0);
  }
}

TEST(AggregateReferenceTest, MatchesBatchComputationOnRandomData) {
  Rng rng(123);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) values.push_back(rng.NextGaussian() * 7 + 2);

  auto sum = Make(AggKind::kSum);
  auto mean = Make(AggKind::kMean);
  auto mn = Make(AggKind::kMin);
  auto mx = Make(AggKind::kMax);
  auto med = Make(AggKind::kMedian);
  for (double v : values) {
    sum->Add(v);
    mean->Add(v);
    mn->Add(v);
    mx->Add(v);
    med->Add(v);
  }
  double ref_sum = 0;
  for (double v : values) ref_sum += v;
  EXPECT_NEAR(sum->Value(), ref_sum, 1e-6);
  EXPECT_NEAR(mean->Value(), ref_sum / 5000.0, 1e-9);
  EXPECT_DOUBLE_EQ(mn->Value(), *std::min_element(values.begin(), values.end()));
  EXPECT_DOUBLE_EQ(mx->Value(), *std::max_element(values.begin(), values.end()));
  EXPECT_DOUBLE_EQ(med->Value(), ExactQuantile(values, 0.5));
}

}  // namespace
}  // namespace streamq
