// MpscQueue: bounded lock-free multi-producer/single-consumer ring.
//
// The contract mirrors SpscQueue (close-then-drain, TryPushFor keeps the
// value on failure) with one addition: any number of producers may push
// concurrently. The stress tests here are the ones the TSan job leans on.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/mpsc_queue.h"

namespace streamq {
namespace {

TEST(MpscQueueTest, CapacityRoundsUpToPowerOfTwoWithFloorOfTwo) {
  MpscQueue<int> q3(3);
  EXPECT_EQ(q3.capacity(), 4u);
  MpscQueue<int> q4(4);
  EXPECT_EQ(q4.capacity(), 4u);
  // One slot can't distinguish "published" from "free next lap" in the
  // sequence scheme, so the floor is 2.
  MpscQueue<int> q1(1);
  EXPECT_EQ(q1.capacity(), 2u);
}

TEST(MpscQueueTest, FifoSingleThread) {
  MpscQueue<int> q(4);
  int out = 0;
  EXPECT_FALSE(q.TryPop(&out));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(int(i)));
  EXPECT_FALSE(q.TryPush(99));  // Full.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.TryPop(&out));  // Empty again.
}

TEST(MpscQueueTest, CloseStopsPushesButDrainsPops) {
  MpscQueue<int> q(4);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.TryPush(3));  // Closed: no new elements.
  EXPECT_FALSE(q.Push(3));     // Blocking push returns instead of spinning.
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));  // Published elements survive the close…
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.Pop(&out));  // …then the drained queue reports done.
}

TEST(MpscQueueTest, TryPushForTimesOutOnFullRingAndKeepsValue) {
  MpscQueue<std::unique_ptr<int>> q(2);
  ASSERT_TRUE(q.TryPush(std::make_unique<int>(0)));
  ASSERT_TRUE(q.TryPush(std::make_unique<int>(1)));  // Ring now full.
  auto value = std::make_unique<int>(2);
  EXPECT_FALSE(q.TryPushFor(std::move(value), /*timeout_us=*/2000));
  ASSERT_NE(value, nullptr);  // Only consumed on success.
  EXPECT_EQ(*value, 2);
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_TRUE(q.TryPushFor(std::move(value), /*timeout_us=*/2000));
  EXPECT_EQ(value, nullptr);
}

/// N producers × everything delivered, each producer's subsequence in
/// order. Encodes (producer, seq) into one int64 so the consumer can check
/// per-producer monotonicity without any extra synchronization.
TEST(MpscQueueTest, ManyProducersTransferEverythingInProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int64_t kPerProducer = 20000;
  MpscQueue<int64_t> q(8);  // Tiny ring: constant full/empty contention.

  std::vector<int64_t> next_seq(kProducers, 0);
  std::atomic<int64_t> received_total{0};
  std::thread consumer([&] {
    int64_t item = 0;
    while (q.Pop(&item)) {
      const auto p = static_cast<size_t>(item >> 32);
      const int64_t seq = item & 0xffffffff;
      ASSERT_LT(p, static_cast<size_t>(kProducers));
      ASSERT_EQ(seq, next_seq[p]) << "producer " << p << " reordered";
      ++next_seq[p];
      received_total.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push((static_cast<int64_t>(p) << 32) | i));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  q.Close();
  consumer.join();
  EXPECT_EQ(received_total.load(), kProducers * kPerProducer);
}

/// Producers racing a close: every Push observes either success or the
/// close — never a hang, never a torn element. The consumer drains whatever
/// was published; accepted == consumed.
TEST(MpscQueueTest, CloseUnderProducerContentionLosesNothingAccepted) {
  constexpr int kProducers = 4;
  MpscQueue<int> q(16);
  std::atomic<int64_t> accepted{0};
  std::atomic<bool> closed_seen{false};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      int i = 0;
      while (q.Push(i)) {
        accepted.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
      closed_seen.store(true, std::memory_order_relaxed);
    });
  }

  int64_t consumed = 0;
  int out = 0;
  // Let traffic build, then slam the door while everyone is mid-push.
  for (int n = 0; n < 1000; ++n) {
    if (q.Pop(&out)) ++consumed;
  }
  q.Close();
  for (std::thread& t : producers) t.join();
  while (q.TryPop(&out)) ++consumed;

  EXPECT_TRUE(closed_seen.load());
  EXPECT_EQ(consumed, accepted.load());
}

/// Close-then-drain race: the consumer closes FIRST and only then drains,
/// while producers are still mid-push. Every push that reported success
/// must be recovered by the post-close drain — a pusher that won the slot
/// race before the close cannot have its element dropped by the drain
/// starting "too early". Repeated rounds give the sanitizers many distinct
/// interleavings of the publish/close/drain edges.
TEST(MpscQueueTest, CloseThenDrainRaceLosesNothingAccepted) {
  constexpr int kRounds = 50;
  constexpr int kProducers = 4;
  for (int round = 0; round < kRounds; ++round) {
    MpscQueue<int64_t> q(8);  // Tiny ring: pushes contend with the drain.
    std::atomic<int64_t> accepted_sum{0};
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&q, &accepted_sum, p] {
        int64_t i = 1;
        while (q.Push((static_cast<int64_t>(p) << 32) | i)) {
          accepted_sum.fetch_add((static_cast<int64_t>(p) << 32) | i,
                                 std::memory_order_relaxed);
          ++i;
        }
      });
    }
    // Close with producers in flight, then drain. The drain must observe
    // every accepted element even though some were published after Close
    // returned (their Push won the reservation race first).
    q.Close();
    int64_t drained_sum = 0;
    int64_t out = 0;
    while (q.Pop(&out)) drained_sum += out;
    for (std::thread& t : producers) t.join();
    // Producers may have squeezed in a final accepted push between the
    // consumer's last failed Pop and their own close observation.
    while (q.TryPop(&out)) drained_sum += out;
    ASSERT_EQ(drained_sum, accepted_sum.load()) << "round " << round;
  }
}

/// Move-only payloads survive the multi-producer path: nothing is copied,
/// nothing leaks (ASan checks the latter).
TEST(MpscQueueTest, MoveOnlyPayloadAcrossProducers) {
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 5000;
  MpscQueue<std::unique_ptr<int>> q(32);
  std::atomic<int64_t> sum{0};
  std::thread consumer([&] {
    std::unique_ptr<int> item;
    while (q.Pop(&item)) sum.fetch_add(*item, std::memory_order_relaxed);
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(std::make_unique<int>(1)));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  q.Close();
  consumer.join();
  EXPECT_EQ(sum.load(), kProducers * kPerProducer);
}

}  // namespace
}  // namespace streamq
