#include "core/stream_join.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "stream/generator.h"
#include "tests/test_util.h"

namespace streamq {
namespace {

using testutil::E;

WindowedStreamJoin::Options Opt(DurationUs window,
                                DurationUs slack = Seconds(1000)) {
  WindowedStreamJoin::Options o;
  o.join_window = window;
  o.left_handler = DisorderHandlerSpec::Fixed(slack);
  o.right_handler = DisorderHandlerSpec::Fixed(slack);
  return o;
}

/// Interleaves two arrival-ordered streams into the join by arrival time.
void FeedMerged(WindowedStreamJoin* join, const std::vector<Event>& left,
                const std::vector<Event>& right) {
  size_t li = 0, ri = 0;
  while (li < left.size() || ri < right.size()) {
    const bool take_left =
        ri >= right.size() ||
        (li < left.size() && left[li].arrival_time <= right[ri].arrival_time);
    if (take_left) {
      join->FeedLeft(left[li++]);
    } else {
      join->FeedRight(right[ri++]);
    }
  }
  join->Finish();
}

TEST(StreamJoinTest, BasicMatchWithinWindow) {
  CollectingJoinSink sink;
  WindowedStreamJoin join(Opt(100), &sink);
  join.FeedLeft(E(0, 1000, 1000));
  join.FeedRight(E(1, 1050, 1050));  // 50 apart: match.
  join.FeedRight(E(2, 1200, 1200));  // 200 apart: no match.
  join.Finish();
  ASSERT_EQ(sink.pairs.size(), 1u);
  EXPECT_EQ(sink.pairs[0].left.id, 0);
  EXPECT_EQ(sink.pairs[0].right.id, 1);
}

TEST(StreamJoinTest, WindowBoundaryIsInclusive) {
  CollectingJoinSink sink;
  WindowedStreamJoin join(Opt(100), &sink);
  join.FeedLeft(E(0, 1000, 1000));
  join.FeedRight(E(1, 1100, 1100));  // Exactly 100 apart.
  join.FeedRight(E(2, 899, 1101));   // 101 apart: out.
  join.Finish();
  ASSERT_EQ(sink.pairs.size(), 1u);
  EXPECT_EQ(sink.pairs[0].right.id, 1);
}

TEST(StreamJoinTest, KeysMustMatch) {
  CollectingJoinSink sink;
  WindowedStreamJoin join(Opt(100), &sink);
  join.FeedLeft(E(0, 1000, 1000, /*key=*/1));
  join.FeedRight(E(1, 1000, 1001, /*key=*/2));
  join.Finish();
  EXPECT_TRUE(sink.pairs.empty());
}

TEST(StreamJoinTest, SymmetricProbing) {
  // Matches are found regardless of which side arrives first.
  CollectingJoinSink sink;
  WindowedStreamJoin join(Opt(100), &sink);
  join.FeedRight(E(0, 1000, 1000));
  join.FeedLeft(E(1, 1050, 1050));
  join.FeedRight(E(2, 1080, 1080));
  join.Finish();
  EXPECT_EQ(sink.pairs.size(), 2u);  // (1,0) and (1,2).
}

TEST(StreamJoinTest, OracleJoinCountTwoPointer) {
  std::vector<Event> left = {E(0, 100, 0), E(1, 200, 0), E(2, 300, 0)};
  std::vector<Event> right = {E(3, 150, 0), E(4, 250, 0), E(5, 1000, 0)};
  // W=60: pairs (100,150),(200,150),(200,250),(300,250) = 4.
  EXPECT_EQ(OracleJoinCount(left, right, 60), 4);
  EXPECT_EQ(OracleJoinCount(left, right, 0), 0);
  EXPECT_EQ(OracleJoinCount(left, right, 10000), 9);
  EXPECT_EQ(OracleJoinCount({}, right, 100), 0);
}

TEST(StreamJoinTest, OracleCountIsKeyAware) {
  std::vector<Event> left = {E(0, 100, 0, 1), E(1, 100, 0, 2)};
  std::vector<Event> right = {E(2, 100, 0, 1), E(3, 100, 0, 3)};
  EXPECT_EQ(OracleJoinCount(left, right, 10), 1);
}

GeneratedWorkload Side(uint64_t seed, int64_t n = 4000) {
  WorkloadConfig cfg;
  cfg.num_events = n;
  cfg.events_per_second = 5000.0;
  cfg.num_keys = 32;
  cfg.delay.model = DelayModel::kExponential;
  cfg.delay.a = 15000.0;
  cfg.seed = seed;
  return GenerateWorkload(cfg);
}

TEST(StreamJoinTest, FullSlackRecoversEveryOraclePair) {
  const auto l = Side(1), r = Side(2);
  CountingJoinSink sink;
  WindowedStreamJoin join(Opt(Millis(5)), &sink);
  FeedMerged(&join, l.arrival_order, r.arrival_order);
  const int64_t truth =
      OracleJoinCount(l.arrival_order, r.arrival_order, Millis(5));
  EXPECT_EQ(sink.pairs, truth);
  EXPECT_GT(truth, 100);  // The workload actually joins.
  EXPECT_EQ(join.stats().pairs_emitted, truth);
  EXPECT_EQ(join.stats().left_late_dropped, 0);
  EXPECT_EQ(join.stats().right_late_dropped, 0);
}

TEST(StreamJoinTest, NoDuplicatePairs) {
  const auto l = Side(3, 1000), r = Side(4, 1000);
  CollectingJoinSink sink;
  WindowedStreamJoin join(Opt(Millis(5)), &sink);
  FeedMerged(&join, l.arrival_order, r.arrival_order);
  std::vector<std::pair<int64_t, int64_t>> ids;
  ids.reserve(sink.pairs.size());
  for (const JoinedPair& p : sink.pairs) {
    ids.emplace_back(p.left.id, p.right.id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(StreamJoinTest, SmallSlackLosesPairs) {
  const auto l = Side(5), r = Side(6);
  const int64_t truth =
      OracleJoinCount(l.arrival_order, r.arrival_order, Millis(5));

  WindowedStreamJoin::Options o = Opt(Millis(5));
  o.left_handler = DisorderHandlerSpec::Fixed(Millis(2));
  o.right_handler = DisorderHandlerSpec::Fixed(Millis(2));
  CountingJoinSink sink;
  WindowedStreamJoin join(o, &sink);
  FeedMerged(&join, l.arrival_order, r.arrival_order);
  EXPECT_LT(sink.pairs, truth);
  EXPECT_GT(join.stats().left_late_dropped, 0);
}

TEST(StreamJoinTest, QualityDrivenHandlersApproachTargetSquared) {
  // Per-side coverage c gives pair recall ~c^2: with q* = 0.97 per side,
  // recall should be >= ~0.90.
  const auto l = Side(7, 8000), r = Side(8, 8000);
  const int64_t truth =
      OracleJoinCount(l.arrival_order, r.arrival_order, Millis(5));

  WindowedStreamJoin::Options o = Opt(Millis(5));
  AqKSlack::Options aq;
  aq.target_quality = 0.97;
  o.left_handler = DisorderHandlerSpec::Aq(aq);
  o.right_handler = DisorderHandlerSpec::Aq(aq);
  CountingJoinSink sink;
  WindowedStreamJoin join(o, &sink);
  FeedMerged(&join, l.arrival_order, r.arrival_order);
  const double recall =
      static_cast<double>(sink.pairs) / static_cast<double>(truth);
  EXPECT_GE(recall, 0.88);
  EXPECT_LE(recall, 1.0);
}

TEST(StreamJoinTest, EvictionBoundsStoreSize) {
  // With bounded slack and bounded join window, the store must not grow
  // with stream length.
  const auto l = Side(9, 8000), r = Side(10, 8000);
  WindowedStreamJoin::Options o = Opt(Millis(5), /*slack=*/Millis(50));
  CountingJoinSink sink;
  WindowedStreamJoin join(o, &sink);
  FeedMerged(&join, l.arrival_order, r.arrival_order);
  // ~5000 events/s per side, horizon = slack + window ~ 55ms -> ~550 tuples
  // stored; allow generous headroom but forbid O(n).
  EXPECT_LT(join.stats().max_store_size, 4000);
}

TEST(StreamJoinTest, ZeroWindowMatchesEqualTimestampsOnly) {
  CollectingJoinSink sink;
  WindowedStreamJoin join(Opt(0), &sink);
  join.FeedLeft(E(0, 1000, 1000));
  join.FeedRight(E(1, 1000, 1001));
  join.FeedRight(E(2, 1001, 1002));
  join.Finish();
  ASSERT_EQ(sink.pairs.size(), 1u);
  EXPECT_EQ(sink.pairs[0].right.id, 1);
}

TEST(StreamJoinTest, StatsCountInputs) {
  CollectingJoinSink sink;
  WindowedStreamJoin join(Opt(100), &sink);
  join.FeedLeft(E(0, 1, 1));
  join.FeedRight(E(1, 2, 2));
  join.FeedRight(E(2, 3, 3));
  join.Finish();
  EXPECT_EQ(join.stats().left_in, 1);
  EXPECT_EQ(join.stats().right_in, 2);
}

}  // namespace
}  // namespace streamq
