#include "quality/value_error_model.h"

#include <gtest/gtest.h>

#include "stream/generator.h"

namespace streamq {
namespace {

GeneratedWorkload SmallWorkload() {
  WorkloadConfig cfg;
  cfg.num_events = 4000;
  cfg.events_per_second = 10000.0;
  cfg.value.model = ValueModel::kUniform;
  cfg.value.a = 0.5;
  cfg.value.b = 1.5;
  cfg.seed = 7;
  return GenerateWorkload(cfg);
}

AggregateSpec Spec(AggKind kind) {
  AggregateSpec s;
  s.kind = kind;
  return s;
}

GammaFitOptions FastFit() {
  GammaFitOptions o;
  o.coverage_grid = {0.6, 0.8, 0.95};
  o.trials = 2;
  return o;
}

TEST(GammaFitTest, SumGammaIsNearOne) {
  // For sum over positive values, missing a fraction (1-c) of tuples makes
  // the relative error ~(1-c): quality ~ c, i.e. gamma ~ 1.
  const auto w = SmallWorkload();
  const GammaFit fit = FitQualityGamma(w.arrival_order,
                                       WindowSpec::Tumbling(Millis(20)),
                                       Spec(AggKind::kSum), FastFit());
  EXPECT_NEAR(fit.gamma, 1.0, 0.25);
}

TEST(GammaFitTest, MaxIsMoreRobustThanSum) {
  const auto w = SmallWorkload();
  const WindowSpec spec = WindowSpec::Tumbling(Millis(20));
  const GammaFit sum_fit =
      FitQualityGamma(w.arrival_order, spec, Spec(AggKind::kSum), FastFit());
  const GammaFit max_fit =
      FitQualityGamma(w.arrival_order, spec, Spec(AggKind::kMax), FastFit());
  EXPECT_LT(max_fit.gamma, sum_fit.gamma * 0.7)
      << "sum=" << sum_fit.ToString() << " max=" << max_fit.ToString();
}

TEST(GammaFitTest, CountGammaNearOne) {
  const auto w = SmallWorkload();
  const GammaFit fit = FitQualityGamma(w.arrival_order,
                                       WindowSpec::Tumbling(Millis(20)),
                                       Spec(AggKind::kCount), FastFit());
  EXPECT_NEAR(fit.gamma, 1.0, 0.2);
}

TEST(GammaFitTest, CurveIsMonotoneInCoverage) {
  const auto w = SmallWorkload();
  const GammaFit fit = FitQualityGamma(w.arrival_order,
                                       WindowSpec::Tumbling(Millis(20)),
                                       Spec(AggKind::kSum), FastFit());
  ASSERT_EQ(fit.curve.size(), 3u);
  for (size_t i = 1; i < fit.curve.size(); ++i) {
    EXPECT_GE(fit.curve[i].mean_quality + 0.02,
              fit.curve[i - 1].mean_quality);
  }
}

TEST(GammaFitTest, FullCoverageIsPerfectQuality) {
  const auto w = SmallWorkload();
  GammaFitOptions o;
  o.coverage_grid = {1.0};
  o.trials = 1;
  const GammaFit fit = FitQualityGamma(w.arrival_order,
                                       WindowSpec::Tumbling(Millis(20)),
                                       Spec(AggKind::kSum), o);
  ASSERT_EQ(fit.curve.size(), 1u);
  EXPECT_DOUBLE_EQ(fit.curve[0].mean_quality, 1.0);
  EXPECT_DOUBLE_EQ(fit.gamma, 1.0);  // No informative points: default.
}

TEST(GammaFitTest, DeterministicForSeed) {
  const auto w = SmallWorkload();
  const GammaFit a = FitQualityGamma(w.arrival_order,
                                     WindowSpec::Tumbling(Millis(20)),
                                     Spec(AggKind::kMean), FastFit());
  const GammaFit b = FitQualityGamma(w.arrival_order,
                                     WindowSpec::Tumbling(Millis(20)),
                                     Spec(AggKind::kMean), FastFit());
  EXPECT_DOUBLE_EQ(a.gamma, b.gamma);
}

TEST(GammaFitTest, ToStringHasGamma) {
  GammaFit fit;
  fit.gamma = 0.5;
  EXPECT_NE(fit.ToString().find("gamma=0.500"), std::string::npos);
}

}  // namespace
}  // namespace streamq
