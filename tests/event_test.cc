#include "stream/event.h"

#include <gtest/gtest.h>

#include "stream/source.h"

namespace streamq {
namespace {

Event MakeEvent(int64_t id, TimestampUs ts, TimestampUs at) {
  Event e;
  e.id = id;
  e.event_time = ts;
  e.arrival_time = at;
  return e;
}

TEST(EventTest, DelayIsArrivalMinusEventTime) {
  const Event e = MakeEvent(1, 1000, 1700);
  EXPECT_EQ(e.delay(), 700);
}

TEST(EventTest, EqualityIsFieldwise) {
  Event a = MakeEvent(1, 10, 20);
  Event b = a;
  EXPECT_EQ(a, b);
  b.value = 1.0;
  EXPECT_FALSE(a == b);
}

TEST(EventTest, ToStringContainsFields) {
  Event e = MakeEvent(3, 1000, 1500);
  e.key = 1;
  e.value = 2.5;
  const std::string s = ToString(e);
  EXPECT_NE(s.find("id=3"), std::string::npos);
  EXPECT_NE(s.find("ts=1000"), std::string::npos);
  EXPECT_NE(s.find("at=1500"), std::string::npos);
  EXPECT_NE(s.find("v=2.5"), std::string::npos);
}

TEST(EventOrderTest, EventTimeLessBreaksTiesById) {
  const Event a = MakeEvent(1, 100, 0);
  const Event b = MakeEvent(2, 100, 0);
  const Event c = MakeEvent(0, 200, 0);
  EventTimeLess less;
  EXPECT_TRUE(less(a, b));
  EXPECT_FALSE(less(b, a));
  EXPECT_TRUE(less(a, c));
}

TEST(EventOrderTest, ArrivalTimeLess) {
  const Event a = MakeEvent(1, 100, 50);
  const Event b = MakeEvent(2, 10, 60);
  ArrivalTimeLess less;
  EXPECT_TRUE(less(a, b));
  EXPECT_FALSE(less(b, a));
}

TEST(EventOrderTest, OrderPredicates) {
  std::vector<Event> in_order = {MakeEvent(0, 10, 10), MakeEvent(1, 20, 30),
                                 MakeEvent(2, 20, 40)};
  EXPECT_TRUE(IsEventTimeOrdered(in_order));
  EXPECT_TRUE(IsArrivalTimeOrdered(in_order));

  std::vector<Event> disordered = {MakeEvent(0, 30, 10), MakeEvent(1, 20, 20)};
  EXPECT_FALSE(IsEventTimeOrdered(disordered));
  EXPECT_TRUE(IsArrivalTimeOrdered(disordered));

  EXPECT_TRUE(IsEventTimeOrdered({}));
  EXPECT_TRUE(IsArrivalTimeOrdered({}));
}

TEST(VectorSourceTest, DrainsAllEventsInOrder) {
  std::vector<Event> events = {MakeEvent(0, 1, 1), MakeEvent(1, 2, 2),
                               MakeEvent(2, 3, 3)};
  VectorSource source(events);
  EXPECT_EQ(source.size_hint(), 3);
  const std::vector<Event> drained = DrainSource(&source);
  EXPECT_EQ(drained, events);

  // Exhausted until reset.
  Event e;
  EXPECT_FALSE(source.Next(&e));
  source.Reset();
  EXPECT_TRUE(source.Next(&e));
  EXPECT_EQ(e.id, 0);
}

TEST(VectorSourceTest, EmptySource) {
  VectorSource source({});
  Event e;
  EXPECT_FALSE(source.Next(&e));
  EXPECT_EQ(source.size_hint(), 0);
}

}  // namespace
}  // namespace streamq
