#include "window/window_operator.h"

#include <gtest/gtest.h>

#include "disorder/fixed_kslack.h"
#include "disorder/pass_through.h"
#include "quality/oracle.h"
#include "tests/test_util.h"

namespace streamq {
namespace {

using testutil::E;

WindowedAggregation::Options Opt(DurationUs size, AggKind kind,
                                 DurationUs lateness = 0) {
  WindowedAggregation::Options o;
  o.window = WindowSpec::Tumbling(size);
  o.aggregate.kind = kind;
  o.allowed_lateness = lateness;
  return o;
}

TEST(WindowOperatorTest, FiresOnWatermarkPastEnd) {
  CollectingResultSink results;
  WindowedAggregation op(Opt(100, AggKind::kSum), &results);
  op.OnEvent(E(0, 10, 10));
  op.OnEvent(E(1, 20, 20));
  op.OnWatermark(99, 99);
  EXPECT_TRUE(results.results.empty());  // Window [0,100) not closed at 99.
  op.OnWatermark(100, 120);
  ASSERT_EQ(results.results.size(), 1u);
  const WindowResult& r = results.results[0];
  EXPECT_EQ(r.bounds, (WindowBounds{0, 100}));
  EXPECT_DOUBLE_EQ(r.value, 1.0);  // Values are ids: 0 + 1.
  EXPECT_EQ(r.tuple_count, 2);
  EXPECT_EQ(r.emit_stream_time, 120);
  EXPECT_FALSE(r.is_revision);
}

TEST(WindowOperatorTest, TerminalWatermarkFiresEverything) {
  CollectingResultSink results;
  WindowedAggregation op(Opt(100, AggKind::kCount), &results);
  op.OnEvent(E(0, 10, 10));
  op.OnEvent(E(1, 150, 150));
  op.OnEvent(E(2, 290, 290));
  op.OnWatermark(kMaxTimestamp, 300);
  ASSERT_EQ(results.results.size(), 3u);
  EXPECT_EQ(op.live_windows(), 0u);  // All purged.
}

TEST(WindowOperatorTest, KeyedWindowsAreIndependent) {
  CollectingResultSink results;
  WindowedAggregation op(Opt(100, AggKind::kSum), &results);
  op.OnEvent(E(10, 10, 10, /*key=*/1));
  op.OnEvent(E(20, 20, 20, /*key=*/2));
  op.OnEvent(E(30, 30, 30, /*key=*/1));
  op.OnWatermark(kMaxTimestamp, 100);
  ASSERT_EQ(results.results.size(), 2u);
  // Ordered by (start, key).
  EXPECT_EQ(results.results[0].key, 1);
  EXPECT_DOUBLE_EQ(results.results[0].value, 40.0);
  EXPECT_EQ(results.results[1].key, 2);
  EXPECT_DOUBLE_EQ(results.results[1].value, 20.0);
}

TEST(WindowOperatorTest, SlidingWindowsEachGetTheTuple) {
  WindowedAggregation::Options o;
  o.window = WindowSpec::Sliding(100, 50);
  o.aggregate.kind = AggKind::kCount;
  CollectingResultSink results;
  WindowedAggregation op(o, &results);
  op.OnEvent(E(0, 75, 75));  // Windows [0,100) and [50,150).
  op.OnWatermark(kMaxTimestamp, 200);
  ASSERT_EQ(results.results.size(), 2u);
  EXPECT_DOUBLE_EQ(results.results[0].value, 1.0);
  EXPECT_DOUBLE_EQ(results.results[1].value, 1.0);
}

TEST(WindowOperatorTest, LateEventDroppedWithoutLateness) {
  CollectingResultSink results;
  WindowedAggregation op(Opt(100, AggKind::kSum, /*lateness=*/0), &results);
  op.OnEvent(E(5, 10, 10));
  op.OnWatermark(100, 100);
  ASSERT_EQ(results.results.size(), 1u);
  op.OnLateEvent(E(7, 50, 120));  // Window gone (purged at watermark 100).
  EXPECT_EQ(op.stats().late_dropped, 1);
  EXPECT_EQ(results.results.size(), 1u);  // No revision.
}

TEST(WindowOperatorTest, LateEventAmendsWithinLateness) {
  CollectingResultSink results;
  WindowedAggregation op(Opt(100, AggKind::kSum, /*lateness=*/100), &results);
  op.OnEvent(E(5, 10, 10));
  op.OnWatermark(100, 100);  // Fires with value 5.
  ASSERT_EQ(results.results.size(), 1u);
  EXPECT_DOUBLE_EQ(results.results[0].value, 5.0);

  op.OnLateEvent(E(7, 50, 120));  // State still live until watermark 200.
  ASSERT_EQ(results.results.size(), 2u);
  const WindowResult& rev = results.results[1];
  EXPECT_TRUE(rev.is_revision);
  EXPECT_EQ(rev.revision_index, 1);
  EXPECT_DOUBLE_EQ(rev.value, 12.0);
  EXPECT_EQ(rev.emit_stream_time, 120);
  EXPECT_EQ(op.stats().late_applied, 1);
  EXPECT_EQ(op.stats().revisions, 1);
}

TEST(WindowOperatorTest, MultipleRevisionsIncrementIndex) {
  CollectingResultSink results;
  WindowedAggregation op(Opt(100, AggKind::kCount, 1000), &results);
  op.OnEvent(E(0, 10, 10));
  op.OnWatermark(100, 100);
  op.OnLateEvent(E(1, 20, 110));
  op.OnLateEvent(E(2, 30, 120));
  ASSERT_EQ(results.results.size(), 3u);
  EXPECT_EQ(results.results[1].revision_index, 1);
  EXPECT_EQ(results.results[2].revision_index, 2);
  EXPECT_DOUBLE_EQ(results.results[2].value, 3.0);
}

TEST(WindowOperatorTest, BatchRefinementEmitsOneRevisionAtPurge) {
  WindowedAggregation::Options o = Opt(100, AggKind::kCount, 1000);
  o.emit_revision_per_update = false;
  CollectingResultSink results;
  WindowedAggregation op(o, &results);
  op.OnEvent(E(0, 10, 10));
  op.OnWatermark(100, 100);
  op.OnLateEvent(E(1, 20, 110));
  op.OnLateEvent(E(2, 30, 120));
  EXPECT_EQ(results.results.size(), 1u);  // Amendments buffered.
  op.OnWatermark(kMaxTimestamp, 200);     // Purge flushes one revision.
  ASSERT_EQ(results.results.size(), 2u);
  EXPECT_TRUE(results.results[1].is_revision);
  EXPECT_DOUBLE_EQ(results.results[1].value, 3.0);
}

TEST(WindowOperatorTest, LateEventBeforeFireAccumulatesSilently) {
  // A tuple can be behind the handler watermark while its window is still
  // open (watermark inside the window). It must fold in with no revision.
  CollectingResultSink results;
  WindowedAggregation op(Opt(100, AggKind::kCount, 0), &results);
  op.OnEvent(E(0, 60, 60));
  op.OnWatermark(50, 60);
  op.OnLateEvent(E(1, 40, 70));  // Behind watermark 50, window [0,100) open.
  op.OnWatermark(100, 110);
  ASSERT_EQ(results.results.size(), 1u);
  EXPECT_DOUBLE_EQ(results.results[0].value, 2.0);
  EXPECT_EQ(op.stats().late_applied, 1);
  EXPECT_EQ(op.stats().revisions, 0);
}

TEST(WindowOperatorTest, LateEventCreatesMissingWindowWithinLateness) {
  // No on-time tuple ever created the window; a late one within lateness
  // must still produce a (first) result rather than vanish.
  CollectingResultSink results;
  WindowedAggregation op(Opt(100, AggKind::kSum, /*lateness=*/500), &results);
  op.OnEvent(E(0, 250, 250));
  op.OnWatermark(250, 250);  // Window [0,100) never existed; end 100 <= 250.
  op.OnLateEvent(E(9, 50, 260));
  ASSERT_EQ(results.results.size(), 1u);
  EXPECT_EQ(results.results[0].bounds.start, 0);
  EXPECT_DOUBLE_EQ(results.results[0].value, 9.0);
  EXPECT_FALSE(results.results[0].is_revision);
  // And the usual in-window path still fires later.
  op.OnWatermark(kMaxTimestamp, 400);
  EXPECT_EQ(results.results.size(), 2u);  // [200,300) window for event 0.
}

TEST(WindowOperatorTest, WatermarkMustAdvanceToHaveEffect) {
  CollectingResultSink results;
  WindowedAggregation op(Opt(100, AggKind::kCount), &results);
  op.OnEvent(E(0, 10, 10));
  op.OnWatermark(100, 100);
  const size_t n = results.results.size();
  op.OnWatermark(100, 150);  // Duplicate: no-op.
  op.OnWatermark(50, 160);   // Regression: ignored.
  EXPECT_EQ(results.results.size(), n);
}

TEST(WindowOperatorTest, EndToEndMatchesOracleWithSufficientSlack) {
  // Full-slack K-slack + windowed sum == oracle exactly.
  const auto w = testutil::DisorderedWorkload(5000);
  const WindowSpec spec = WindowSpec::Tumbling(Millis(50));
  AggregateSpec agg;
  agg.kind = AggKind::kSum;

  WindowedAggregation::Options o;
  o.window = spec;
  o.aggregate = agg;
  CollectingResultSink results;
  WindowedAggregation op(o, &results);
  FixedKSlack handler(Seconds(100));  // Effectively infinite.
  testutil::RunHandler(&handler, w.arrival_order, &op);

  const OracleEvaluator oracle(w.arrival_order, spec, agg);
  ASSERT_EQ(results.results.size(), oracle.results().size());
  for (size_t i = 0; i < results.results.size(); ++i) {
    EXPECT_EQ(results.results[i].bounds, oracle.results()[i].bounds);
    EXPECT_NEAR(results.results[i].value, oracle.results()[i].value, 1e-9);
    EXPECT_EQ(results.results[i].tuple_count,
              oracle.results()[i].tuple_count);
  }
}

TEST(WindowOperatorTest, SpeculativePipelineConvergesToOracle) {
  // PassThrough + unlimited lateness: first emissions are speculative and
  // possibly wrong, but the final revision per window matches the oracle.
  const auto w = testutil::DisorderedWorkload(3000);
  const WindowSpec spec = WindowSpec::Tumbling(Millis(50));
  AggregateSpec agg;
  agg.kind = AggKind::kCount;

  WindowedAggregation::Options o;
  o.window = spec;
  o.aggregate = agg;
  o.allowed_lateness = Seconds(1000);
  CollectingResultSink results;
  WindowedAggregation op(o, &results);
  PassThrough handler;
  testutil::RunHandler(&handler, w.arrival_order, &op);

  // Last emission per window.
  std::map<TimestampUs, WindowResult> final_result;
  for (const WindowResult& r : results.results) {
    final_result[r.bounds.start] = r;
  }
  const OracleEvaluator oracle(w.arrival_order, spec, agg);
  for (const WindowResult& truth : oracle.results()) {
    auto it = final_result.find(truth.bounds.start);
    ASSERT_NE(it, final_result.end());
    EXPECT_DOUBLE_EQ(it->second.value, truth.value)
        << truth.bounds.ToString();
  }
  EXPECT_GT(op.stats().revisions, 0);
}

TEST(WindowOperatorTest, StatsTrackLiveWindows) {
  CollectingResultSink results;
  WindowedAggregation op(Opt(100, AggKind::kCount), &results);
  op.OnEvent(E(0, 10, 10));
  op.OnEvent(E(1, 110, 110));
  op.OnEvent(E(2, 210, 210));
  EXPECT_EQ(op.live_windows(), 3u);
  EXPECT_EQ(op.stats().max_live_windows, 3);
  op.OnWatermark(kMaxTimestamp, 300);
  EXPECT_EQ(op.live_windows(), 0u);
}

TEST(WindowOperatorTest, RejectsBadOptions) {
  CollectingResultSink results;
  WindowedAggregation::Options bad = Opt(0, AggKind::kSum);
  EXPECT_DEATH(WindowedAggregation op(bad, &results), "Check failed");
  WindowedAggregation::Options bad2 = Opt(100, AggKind::kSum);
  bad2.allowed_lateness = -1;
  EXPECT_DEATH(WindowedAggregation op(bad2, &results), "Check failed");
}

}  // namespace
}  // namespace streamq
