#include "window/session_window_operator.h"

#include <gtest/gtest.h>

#include "disorder/fixed_kslack.h"
#include "stream/disorder_metrics.h"
#include "tests/test_util.h"

namespace streamq {
namespace {

using testutil::E;

SessionWindowedAggregation::Options Opt(DurationUs gap,
                                        AggKind kind = AggKind::kCount) {
  SessionWindowedAggregation::Options o;
  o.gap = gap;
  o.aggregate.kind = kind;
  return o;
}

TEST(SessionWindowTest, SingleSession) {
  CollectingResultSink results;
  SessionWindowedAggregation op(Opt(100), &results);
  op.OnEvent(E(0, 10, 10));
  op.OnEvent(E(1, 50, 50));
  op.OnEvent(E(2, 120, 120));  // 70 after previous: same session.
  op.OnWatermark(kMaxTimestamp, 500);
  ASSERT_EQ(results.results.size(), 1u);
  EXPECT_EQ(results.results[0].bounds, (WindowBounds{10, 220}));
  EXPECT_DOUBLE_EQ(results.results[0].value, 3.0);
}

TEST(SessionWindowTest, GapSplitsSessions) {
  CollectingResultSink results;
  SessionWindowedAggregation op(Opt(100), &results);
  op.OnEvent(E(0, 10, 10));
  op.OnEvent(E(1, 200, 200));  // 190 > gap: new session.
  op.OnWatermark(kMaxTimestamp, 500);
  ASSERT_EQ(results.results.size(), 2u);
  EXPECT_EQ(results.results[0].bounds, (WindowBounds{10, 110}));
  EXPECT_EQ(results.results[1].bounds, (WindowBounds{200, 300}));
}

TEST(SessionWindowTest, ExactGapStartsNewSession) {
  // Half-open semantics: ts == last_ts + gap does NOT extend.
  CollectingResultSink results;
  SessionWindowedAggregation op(Opt(100), &results);
  op.OnEvent(E(0, 10, 10));
  op.OnEvent(E(1, 110, 110));
  op.OnWatermark(kMaxTimestamp, 500);
  EXPECT_EQ(results.results.size(), 2u);
}

TEST(SessionWindowTest, JustUnderGapExtends) {
  CollectingResultSink results;
  SessionWindowedAggregation op(Opt(100), &results);
  op.OnEvent(E(0, 10, 10));
  op.OnEvent(E(1, 109, 109));
  op.OnWatermark(kMaxTimestamp, 500);
  EXPECT_EQ(results.results.size(), 1u);
}

TEST(SessionWindowTest, FiresOnlyWhenGapPassedByWatermark) {
  CollectingResultSink results;
  SessionWindowedAggregation op(Opt(100), &results);
  op.OnEvent(E(0, 10, 10));
  op.OnWatermark(109, 109);  // last_ts + gap = 110 > 109: still open.
  EXPECT_TRUE(results.results.empty());
  op.OnWatermark(110, 120);
  ASSERT_EQ(results.results.size(), 1u);
  EXPECT_EQ(results.results[0].emit_stream_time, 120);
}

TEST(SessionWindowTest, KeysHaveIndependentSessions) {
  CollectingResultSink results;
  SessionWindowedAggregation op(Opt(100, AggKind::kSum), &results);
  op.OnEvent(E(1, 10, 10, /*key=*/1));
  op.OnEvent(E(2, 20, 20, /*key=*/2));
  op.OnEvent(E(3, 60, 60, /*key=*/1));
  op.OnWatermark(kMaxTimestamp, 500);
  ASSERT_EQ(results.results.size(), 2u);
  // Values are ids.
  double sum_k1 = 0, sum_k2 = 0;
  for (const WindowResult& r : results.results) {
    (r.key == 1 ? sum_k1 : sum_k2) = r.value;
  }
  EXPECT_DOUBLE_EQ(sum_k1, 4.0);
  EXPECT_DOUBLE_EQ(sum_k2, 2.0);
}

TEST(SessionWindowTest, MultipleOpenSessionsFireInOrder) {
  CollectingResultSink results;
  SessionWindowedAggregation op(Opt(50), &results);
  op.OnEvent(E(0, 10, 10));
  op.OnEvent(E(1, 100, 100));
  op.OnEvent(E(2, 200, 200));
  EXPECT_EQ(op.open_sessions(), 3u);
  op.OnWatermark(160, 160);  // Closes first two (ends 60, 150).
  ASSERT_EQ(results.results.size(), 2u);
  EXPECT_EQ(results.results[0].bounds.start, 10);
  EXPECT_EQ(results.results[1].bounds.start, 100);
  EXPECT_EQ(op.open_sessions(), 1u);
  EXPECT_EQ(op.stats().max_open_sessions, 3);
}

TEST(SessionWindowTest, LateEventsAreDroppedAndCounted) {
  CollectingResultSink results;
  SessionWindowedAggregation op(Opt(100), &results);
  op.OnEvent(E(0, 1000, 1000));
  op.OnLateEvent(E(1, 10, 1010));
  EXPECT_EQ(op.stats().late_dropped, 1);
  op.OnWatermark(kMaxTimestamp, 2000);
  ASSERT_EQ(results.results.size(), 1u);
  EXPECT_EQ(results.results[0].tuple_count, 1);
}

TEST(SessionWindowTest, EndToEndWithReordererMatchesInOrderReference) {
  // Full-slack reorderer + session op over a disordered stream must equal
  // the same op fed the stream pre-sorted.
  const auto w = testutil::DisorderedWorkload(5000);
  const DisorderStats stats = ComputeDisorderStats(w.arrival_order);

  CollectingResultSink via_handler;
  {
    SessionWindowedAggregation op(Opt(Micros(300), AggKind::kCount),
                                  &via_handler);
    FixedKSlack handler(stats.max_lateness_us);
    testutil::RunHandler(&handler, w.arrival_order, &op);
  }

  CollectingResultSink reference;
  {
    SessionWindowedAggregation op(Opt(Micros(300), AggKind::kCount),
                                  &reference);
    for (const Event& e : w.InOrder()) op.OnEvent(e);
    op.OnWatermark(kMaxTimestamp, 0);
  }

  ASSERT_EQ(via_handler.results.size(), reference.results.size());
  for (size_t i = 0; i < reference.results.size(); ++i) {
    EXPECT_EQ(via_handler.results[i].bounds, reference.results[i].bounds);
    EXPECT_DOUBLE_EQ(via_handler.results[i].value,
                     reference.results[i].value);
  }
  // Sanity: the stream actually produced multiple sessions.
  EXPECT_GT(reference.results.size(), 1u);
}

TEST(SessionWindowTest, SessionCountsPartitionTheStream) {
  // Every in-order tuple lands in exactly one session.
  const auto w = testutil::DisorderedWorkload(3000);
  CollectingResultSink results;
  SessionWindowedAggregation op(Opt(Micros(300), AggKind::kCount), &results);
  for (const Event& e : w.InOrder()) op.OnEvent(e);
  op.OnWatermark(kMaxTimestamp, 0);
  int64_t total = 0;
  for (const WindowResult& r : results.results) total += r.tuple_count;
  EXPECT_EQ(total, static_cast<int64_t>(w.arrival_order.size()));
  EXPECT_EQ(op.stats().sessions_fired,
            static_cast<int64_t>(results.results.size()));
}

TEST(SessionWindowTest, RejectsBadOptions) {
  CollectingResultSink results;
  EXPECT_DEATH(SessionWindowedAggregation op(Opt(0), &results),
               "Check failed");
}

}  // namespace
}  // namespace streamq
