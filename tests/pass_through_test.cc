#include "disorder/pass_through.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace streamq {
namespace {

using testutil::E;

TEST(PassThroughTest, ForwardsInOrderImmediately) {
  PassThrough handler;
  CollectingSink sink;
  handler.OnEvent(E(0, 100, 100), &sink);
  handler.OnEvent(E(1, 200, 210), &sink);
  EXPECT_EQ(sink.events.size(), 2u);
  EXPECT_TRUE(sink.late_events.empty());
  EXPECT_EQ(sink.watermarks.back(), 200);
}

TEST(PassThroughTest, DivertsLateEvents) {
  PassThrough handler;
  CollectingSink sink;
  handler.OnEvent(E(0, 100, 100), &sink);
  handler.OnEvent(E(2, 300, 310), &sink);
  handler.OnEvent(E(1, 200, 320), &sink);  // Behind frontier 300.
  EXPECT_EQ(sink.events.size(), 2u);
  ASSERT_EQ(sink.late_events.size(), 1u);
  EXPECT_EQ(sink.late_events[0].id, 1);
  EXPECT_EQ(handler.stats().events_late, 1);
}

TEST(PassThroughTest, EqualTimestampIsNotLate) {
  PassThrough handler;
  CollectingSink sink;
  handler.OnEvent(E(0, 100, 100), &sink);
  handler.OnEvent(E(1, 100, 110), &sink);
  EXPECT_EQ(sink.events.size(), 2u);
  EXPECT_TRUE(sink.late_events.empty());
}

TEST(PassThroughTest, ZeroBufferingLatency) {
  PassThrough handler;
  CollectingSink sink;
  testutil::RunHandler(&handler, testutil::DisorderedWorkload(1000).arrival_order,
                       &sink);
  EXPECT_DOUBLE_EQ(handler.stats().buffering_latency_us.mean(), 0.0);
  EXPECT_DOUBLE_EQ(handler.stats().buffering_latency_us.max(), 0.0);
}

TEST(PassThroughTest, OutputSatisfiesOrderingContract) {
  PassThrough handler;
  testutil::ContractCheckingSink sink;
  testutil::RunHandler(&handler, testutil::DisorderedWorkload(2000).arrival_order,
                       &sink);
  EXPECT_TRUE(sink.ordered);
  EXPECT_TRUE(sink.respects_watermark);
  EXPECT_TRUE(sink.watermarks_monotone);
  EXPECT_EQ(sink.current_watermark, kMaxTimestamp);  // Flush emitted it.
}

TEST(PassThroughTest, ConservationOfTuples) {
  PassThrough handler;
  CollectingSink sink;
  const auto w = testutil::DisorderedWorkload(3000);
  testutil::RunHandler(&handler, w.arrival_order, &sink);
  EXPECT_EQ(sink.events.size() + sink.late_events.size(),
            w.arrival_order.size());
  EXPECT_EQ(handler.stats().events_in,
            static_cast<int64_t>(w.arrival_order.size()));
  EXPECT_EQ(handler.stats().events_out,
            static_cast<int64_t>(sink.events.size()));
}

TEST(PassThroughTest, DisorderedInputYieldsLateEvents) {
  PassThrough handler;
  CollectingSink sink;
  testutil::RunHandler(&handler, testutil::DisorderedWorkload(3000).arrival_order,
                       &sink);
  // The workload is heavily disordered; pass-through must shed a lot.
  EXPECT_GT(sink.late_events.size(), 500u);
}

TEST(PassThroughTest, NameAndSlack) {
  PassThrough handler;
  EXPECT_EQ(handler.name(), "pass-through");
  EXPECT_EQ(handler.current_slack(), 0);
  EXPECT_EQ(handler.buffered(), 0u);
}

}  // namespace
}  // namespace streamq
