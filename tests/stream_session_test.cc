#include <algorithm>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/executor.h"
#include "core/session_options.h"
#include "core/stream_session.h"
#include "stream/generator.h"
#include "stream/source.h"

namespace streamq {
namespace {

std::vector<Event> TestStream(int64_t n = 30000, uint64_t seed = 7) {
  WorkloadConfig config;
  config.num_events = n;
  config.num_keys = 8;
  config.seed = seed;
  return GenerateWorkload(config).arrival_order;
}

bool IdentityHolds(const RunReport& report) {
  const DisorderHandlerStats& h = report.handler_stats;
  return h.events_in == h.events_out + h.events_late + h.events_shed;
}

std::vector<WindowResult> Sorted(std::vector<WindowResult> results) {
  std::sort(results.begin(), results.end(),
            [](const WindowResult& a, const WindowResult& b) {
              if (a.bounds.start != b.bounds.start) {
                return a.bounds.start < b.bounds.start;
              }
              if (a.key != b.key) return a.key < b.key;
              return a.value < b.value;
            });
  return results;
}

TEST(StreamSession, OpenRejectsInvalidOptions) {
  SessionOptions options;
  options.Threads(2);  // Missing per_key.
  auto session = StreamSession::Open(options);
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
}

TEST(StreamSession, SequentialRunMatchesHandRolledExecutor) {
  const std::vector<Event> events = TestStream();
  SessionOptions options;
  options.Name("facade").Window(100).Aggregate("sum").QualityTarget(0.9);

  auto session = StreamSession::Open(options);
  ASSERT_TRUE(session.ok());
  VectorSource source(events);
  const RunReport via_session = session.value()->Run(&source);

  // The facade must assemble exactly what the old hand-rolled wiring did.
  auto query = options.BuildQuery();
  ASSERT_TRUE(query.ok());
  QueryExecutor executor(query.value());
  VectorSource source2(events);
  const RunReport direct = executor.Run(&source2);

  EXPECT_EQ(via_session.results, direct.results);
  EXPECT_EQ(via_session.events_processed, direct.events_processed);
  EXPECT_EQ(via_session.handler_stats.events_late,
            direct.handler_stats.events_late);
  EXPECT_TRUE(IdentityHolds(via_session));
  EXPECT_TRUE(session.value()->finished());
}

TEST(StreamSession, SequentialIncrementalMatchesWholeStreamRun) {
  const std::vector<Event> events = TestStream();
  SessionOptions options;
  options.Window(100).QualityTarget(0.95);

  auto whole = StreamSession::Open(options);
  ASSERT_TRUE(whole.ok());
  VectorSource source(events);
  const RunReport run_report = whole.value()->Run(&source);

  auto incremental = StreamSession::Open(options);
  ASSERT_TRUE(incremental.ok());
  // Feed in the same chunk size Run uses so the comparison is exact.
  for (size_t i = 0; i < events.size(); i += QueryExecutor::kDefaultRunBatchSize) {
    const size_t n = std::min(QueryExecutor::kDefaultRunBatchSize, events.size() - i);
    ASSERT_TRUE(incremental.value()
                    ->Ingest(std::span<const Event>(events.data() + i, n))
                    .ok());
  }
  const RunReport inc_report = incremental.value()->Finish();

  EXPECT_EQ(inc_report.results, run_report.results);
  EXPECT_EQ(inc_report.events_processed, run_report.events_processed);
  EXPECT_EQ(incremental.value()->events_ingested(),
            static_cast<int64_t>(events.size()));
  EXPECT_TRUE(IdentityHolds(inc_report));
}

TEST(StreamSession, SnapshotReadsLiveProgressSequential) {
  const std::vector<Event> events = TestStream(5000);
  SessionOptions options;
  auto session = StreamSession::Open(options);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()
                  ->Ingest(std::span<const Event>(events.data(), 2000))
                  .ok());
  const RunReport live = session.value()->Snapshot();
  EXPECT_EQ(live.events_processed, 2000);
  EXPECT_FALSE(session.value()->finished());
  session.value()->Finish();
  EXPECT_TRUE(session.value()->finished());
}

TEST(StreamSession, ThreadedIncrementalMatchesThreadedRun) {
  const std::vector<Event> events = TestStream();
  SessionOptions options;
  options.Window(100).QualityTarget(0.9).PerKey().Threads(2);

  auto whole = StreamSession::Open(options);
  ASSERT_TRUE(whole.ok());
  VectorSource source(events);
  const RunReport run_report = whole.value()->Run(&source);
  ASSERT_TRUE(run_report.status.ok());

  auto incremental = StreamSession::Open(options);
  ASSERT_TRUE(incremental.ok());
  for (size_t i = 0; i < events.size(); i += 1000) {
    const size_t n = std::min<size_t>(1000, events.size() - i);
    ASSERT_TRUE(incremental.value()
                    ->Ingest(std::span<const Event>(events.data() + i, n))
                    .ok());
  }
  const RunReport inc_report = incremental.value()->Finish();
  ASSERT_TRUE(inc_report.status.ok());

  // Shard-local processing is deterministic for a fixed arrival order, so
  // the merged result multisets must agree exactly.
  EXPECT_EQ(Sorted(inc_report.results), Sorted(run_report.results));
  EXPECT_EQ(inc_report.events_processed, run_report.events_processed);
  EXPECT_TRUE(IdentityHolds(inc_report));
  EXPECT_EQ(incremental.value()->events_ingested(),
            static_cast<int64_t>(events.size()));
}

TEST(StreamSession, ThreadedSnapshotMidRunReportsPending) {
  const std::vector<Event> events = TestStream(4000);
  SessionOptions options;
  options.PerKey().Threads(2);
  auto session = StreamSession::Open(options);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->Ingest(events).ok());
  const RunReport live = session.value()->Snapshot();
  EXPECT_EQ(live.runtime_config, "pending");
  EXPECT_EQ(live.events_processed, static_cast<int64_t>(events.size()));
  const RunReport final_report = session.value()->Finish();
  EXPECT_TRUE(IdentityHolds(final_report));
  // After Finish, Snapshot returns the sealed report.
  EXPECT_EQ(session.value()->Snapshot().results, final_report.results);
}

TEST(StreamSession, RunIsExclusiveWithIncremental) {
  const std::vector<Event> events = TestStream(1000);
  SessionOptions options;
  auto session = StreamSession::Open(options);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()
                  ->Ingest(std::span<const Event>(events.data(), 100))
                  .ok());
  VectorSource source(events);
  const RunReport report = session.value()->Run(&source);
  EXPECT_EQ(report.status.code(), StatusCode::kFailedPrecondition);

  auto ran = StreamSession::Open(options);
  ASSERT_TRUE(ran.ok());
  VectorSource source2(events);
  ASSERT_TRUE(ran.value()->Run(&source2).status.ok());
  VectorSource source3(events);
  EXPECT_EQ(ran.value()->Run(&source3).status.code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ran.value()->Ingest(events).code(),
            StatusCode::kFailedPrecondition);
}

TEST(StreamSession, FinishIsIdempotent) {
  SessionOptions options;
  auto session = StreamSession::Open(options);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->Ingest(TestStream(500)).ok());
  const RunReport& first = session.value()->Finish();
  const RunReport& second = session.value()->Finish();
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(first.results, second.results);
}

TEST(StreamSession, HeartbeatDrainsSequentialAndRejectsThreaded) {
  SessionOptions options;
  options.Window(100).FixedK(10);
  auto session = StreamSession::Open(options);
  ASSERT_TRUE(session.ok());
  std::vector<Event> events;
  for (int i = 0; i < 100; ++i) {
    Event e;
    e.id = i;
    e.key = 0;
    e.event_time = i * Millis(1);
    e.arrival_time = e.event_time;
    e.value = 1.0;
    events.push_back(e);
  }
  ASSERT_TRUE(session.value()->Ingest(events).ok());
  // A heartbeat far past the data must flush completed windows mid-stream.
  ASSERT_TRUE(session.value()->Heartbeat(Millis(1000), Millis(1000)).ok());
  const RunReport live = session.value()->Snapshot();
  EXPECT_GT(live.results.size(), 0u);

  SessionOptions threaded;
  threaded.PerKey().Threads(2);
  auto tsession = StreamSession::Open(threaded);
  ASSERT_TRUE(tsession.ok());
  EXPECT_EQ(tsession.value()->Heartbeat(0, 0).code(),
            StatusCode::kUnimplemented);
}

TEST(StreamSession, DestructorFinishesThreadedSession) {
  // A threaded session abandoned mid-stream must join its driver thread
  // instead of crashing or leaking (the server relies on this on Stop()).
  SessionOptions options;
  options.PerKey().Threads(2);
  auto session = StreamSession::Open(options);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->Ingest(TestStream(2000)).ok());
  session.value().reset();  // Must not hang.
}

}  // namespace
}  // namespace streamq
