#include "quality/oracle.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_util.h"

namespace streamq {
namespace {

using testutil::E;

AggregateSpec Sum() {
  AggregateSpec s;
  s.kind = AggKind::kSum;
  return s;
}

TEST(OracleTest, EmptyStream) {
  const OracleEvaluator oracle({}, WindowSpec::Tumbling(100), Sum());
  EXPECT_EQ(oracle.total_windows(), 0);
  EXPECT_EQ(oracle.Lookup(0, 0), nullptr);
}

TEST(OracleTest, SingleWindowSum) {
  const std::vector<Event> events = {E(1, 10, 0), E(2, 20, 0), E(3, 99, 0)};
  const OracleEvaluator oracle(events, WindowSpec::Tumbling(100), Sum());
  ASSERT_EQ(oracle.total_windows(), 1);
  const WindowResult* r = oracle.Lookup(0, 0);
  ASSERT_NE(r, nullptr);
  EXPECT_DOUBLE_EQ(r->value, 6.0);
  EXPECT_EQ(r->tuple_count, 3);
  EXPECT_EQ(r->emit_stream_time, 100);  // Window end.
}

TEST(OracleTest, OrderInsensitive) {
  std::vector<Event> events = {E(1, 10, 5), E(2, 250, 6), E(3, 120, 7)};
  const OracleEvaluator a(events, WindowSpec::Tumbling(100), Sum());
  std::reverse(events.begin(), events.end());
  const OracleEvaluator b(events, WindowSpec::Tumbling(100), Sum());
  ASSERT_EQ(a.total_windows(), b.total_windows());
  for (const WindowResult& r : a.results()) {
    const WindowResult* other = b.Lookup(r.bounds.start, r.key);
    ASSERT_NE(other, nullptr);
    EXPECT_DOUBLE_EQ(r.value, other->value);
  }
}

TEST(OracleTest, KeysSeparated) {
  const std::vector<Event> events = {E(1, 10, 0, 1), E(2, 20, 0, 2),
                                     E(3, 30, 0, 1)};
  const OracleEvaluator oracle(events, WindowSpec::Tumbling(100), Sum());
  EXPECT_EQ(oracle.total_windows(), 2);
  EXPECT_DOUBLE_EQ(oracle.Lookup(0, 1)->value, 4.0);
  EXPECT_DOUBLE_EQ(oracle.Lookup(0, 2)->value, 2.0);
  EXPECT_EQ(oracle.Lookup(0, 3), nullptr);
}

TEST(OracleTest, SlidingWindowsCoverEachTupleMultipleTimes) {
  const std::vector<Event> events = {E(1, 75, 0)};
  const OracleEvaluator oracle(events, WindowSpec::Sliding(100, 50), Sum());
  EXPECT_EQ(oracle.total_windows(), 2);  // [0,100) and [50,150).
  EXPECT_NE(oracle.Lookup(0, 0), nullptr);
  EXPECT_NE(oracle.Lookup(50, 0), nullptr);
}

TEST(OracleTest, ResultsOrderedByStartThenKey) {
  const std::vector<Event> events = {E(1, 250, 0, 2), E(2, 10, 0, 1),
                                     E(3, 20, 0, 2)};
  const OracleEvaluator oracle(events, WindowSpec::Tumbling(100), Sum());
  const auto& rs = oracle.results();
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_LE(rs[0].bounds.start, rs[1].bounds.start);
  EXPECT_LE(rs[1].bounds.start, rs[2].bounds.start);
  EXPECT_EQ(rs[0].key, 1);  // (0, 1) before (0, 2).
  EXPECT_EQ(rs[1].key, 2);
}

TEST(OracleTest, AgreesWithFullSlackPipeline) {
  const auto w = testutil::DisorderedWorkload(2000);
  const OracleEvaluator oracle(w.arrival_order, WindowSpec::Tumbling(Millis(20)),
                               Sum());
  // Oracle total tuples across tumbling windows == stream size.
  int64_t total = 0;
  for (const WindowResult& r : oracle.results()) total += r.tuple_count;
  EXPECT_EQ(total, static_cast<int64_t>(w.arrival_order.size()));
}

}  // namespace
}  // namespace streamq
