// The observer contract: installing a PipelineObserver is strictly
// read-only. For every factory handler kind (same spec set as
// batch_equivalence_test) the run with a full MetricsObserver attached must
// be byte-identical to the run without one — results, handler stats
// (latency samples included), window stats, final slack. A second set of
// checks pins the observer's counters to the pipeline's own stats, so the
// hooks can't silently under- or over-fire.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/continuous_query.h"
#include "core/executor.h"
#include "core/metrics_observer.h"
#include "stream/generator.h"
#include "window/window.h"

namespace streamq {
namespace {

/// Mirrors batch_equivalence_test's AllSpecs(): every handler kind the
/// factory can build, in both flat and per-key form where per-key applies.
std::vector<DisorderHandlerSpec> AllSpecs() {
  std::vector<DisorderHandlerSpec> specs;
  specs.push_back(DisorderHandlerSpec::PassThrough());
  specs.push_back(DisorderHandlerSpec::Fixed(Millis(30)));
  {
    MpKSlack::Options mp;  // Default: sliding estimation window.
    specs.push_back(DisorderHandlerSpec::Mp(mp));
  }
  {
    MpKSlack::Options mp;
    mp.mode = MpKSlack::Mode::kGrowOnly;
    specs.push_back(DisorderHandlerSpec::Mp(mp));
  }
  {
    AqKSlack::Options aq;
    aq.target_quality = 0.95;
    specs.push_back(DisorderHandlerSpec::Aq(aq));
  }
  {
    LbKSlack::Options lb;
    specs.push_back(DisorderHandlerSpec::Lb(lb));
  }
  {
    WatermarkReorderer::Options wm;
    wm.bound = Millis(30);
    wm.period_events = 7;
    wm.allowed_lateness = Millis(10);
    specs.push_back(DisorderHandlerSpec::Watermark(wm));
  }
  specs.push_back(DisorderHandlerSpec::Fixed(Millis(30)).PerKey());
  {
    AqKSlack::Options aq;
    aq.target_quality = 0.95;
    specs.push_back(DisorderHandlerSpec::Aq(aq).PerKey());
  }
  return specs;
}

ContinuousQuery QueryFor(const DisorderHandlerSpec& spec) {
  ContinuousQuery q;
  q.name = "observer-equiv";
  q.handler = spec;
  q.window.window = WindowSpec::Sliding(Millis(50), Millis(25));
  q.window.aggregate.kind = AggKind::kSum;
  q.window.allowed_lateness = Millis(20);
  q.window.per_key_watermarks = spec.per_key;
  return q;
}

const std::vector<Event>& TestStream() {
  static const std::vector<Event>* events = [] {
    WorkloadConfig cfg;
    cfg.num_events = 4000;
    cfg.events_per_second = 10000.0;
    cfg.num_keys = 8;
    cfg.delay.model = DelayModel::kExponential;
    cfg.delay.a = 20000.0;
    cfg.seed = 42;
    return new std::vector<Event>(GenerateWorkload(cfg).arrival_order);
  }();
  return *events;
}

RunReport RunWith(const ContinuousQuery& q, PipelineObserver* observer) {
  QueryExecutor exec(q);
  if (observer != nullptr) exec.SetObserver(observer);
  VectorSource source(TestStream());
  return exec.Run(&source);
}

void ExpectIdentical(const RunReport& base, const RunReport& observed) {
  EXPECT_EQ(base.events_processed, observed.events_processed);
  EXPECT_EQ(base.results, observed.results);

  const DisorderHandlerStats& a = base.handler_stats;
  const DisorderHandlerStats& b = observed.handler_stats;
  EXPECT_EQ(a.events_in, b.events_in);
  EXPECT_EQ(a.events_out, b.events_out);
  EXPECT_EQ(a.events_late, b.events_late);
  EXPECT_EQ(a.events_dropped, b.events_dropped);
  EXPECT_EQ(a.max_buffer_size, b.max_buffer_size);
  EXPECT_EQ(a.buffering_latency_us.count(), b.buffering_latency_us.count());
  EXPECT_EQ(a.buffering_latency_us.mean(), b.buffering_latency_us.mean());
  EXPECT_EQ(a.buffering_latency_us.min(), b.buffering_latency_us.min());
  EXPECT_EQ(a.buffering_latency_us.max(), b.buffering_latency_us.max());
  EXPECT_EQ(a.latency_samples, b.latency_samples);

  const WindowedAggregation::Stats& wa = base.window_stats;
  const WindowedAggregation::Stats& wb = observed.window_stats;
  EXPECT_EQ(wa.events, wb.events);
  EXPECT_EQ(wa.late_applied, wb.late_applied);
  EXPECT_EQ(wa.late_dropped, wb.late_dropped);
  EXPECT_EQ(wa.windows_fired, wb.windows_fired);
  EXPECT_EQ(wa.revisions, wb.revisions);
  EXPECT_EQ(wa.max_live_windows, wb.max_live_windows);

  EXPECT_EQ(base.final_slack, observed.final_slack);
}

class ObserverEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ObserverEquivalenceTest, ObserverDoesNotPerturbResults) {
  const DisorderHandlerSpec spec =
      AllSpecs()[static_cast<size_t>(GetParam())];
  SCOPED_TRACE(spec.Describe());
  const ContinuousQuery q = QueryFor(spec);

  const RunReport base = RunWith(q, nullptr);
  MetricsObserver observer;
  const RunReport observed = RunWith(q, &observer);
  ExpectIdentical(base, observed);

  // The hooks must also have fired consistently with the pipeline's own
  // accounting (true for every spec, flat or per-key: per-key propagates
  // the observer to the inner shard handlers only, so nothing is counted
  // twice).
  const MetricsSnapshot snap = observer.Snapshot();
  EXPECT_EQ(snap.counters.at("streamq.source.events_total"),
            observed.events_processed);
  EXPECT_EQ(snap.counters.at("streamq.handler.late_events_total"),
            observed.handler_stats.events_late);
  EXPECT_EQ(snap.counters.at("streamq.handler.dropped_events_total"),
            observed.handler_stats.events_dropped);
  EXPECT_EQ(snap.histograms.at("streamq.handler.buffering_latency_us").count,
            observed.handler_stats.buffering_latency_us.count());
  EXPECT_EQ(snap.counters.at("streamq.window.fired_total"),
            observed.window_stats.windows_fired);
  EXPECT_EQ(snap.counters.at("streamq.window.revisions_total"),
            observed.window_stats.revisions);
  EXPECT_EQ(snap.counters.at("streamq.window.late_dropped_total"),
            observed.window_stats.late_dropped);
  EXPECT_EQ(snap.counters.at("streamq.runs_total"), 1);
}

INSTANTIATE_TEST_SUITE_P(AllHandlers, ObserverEquivalenceTest,
                         ::testing::Range(0, 9),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "spec" + std::to_string(info.param);
                         });

// Re-running through the same executor-with-observer accumulates rather
// than resets (registries are owned by the observer, not the run).
TEST(ObserverReuse, CountersAccumulateAcrossRuns) {
  const ContinuousQuery q = QueryFor(DisorderHandlerSpec::Fixed(Millis(30)));
  MetricsObserver observer;
  RunWith(q, &observer);
  RunWith(q, &observer);
  const MetricsSnapshot snap = observer.Snapshot();
  EXPECT_EQ(snap.counters.at("streamq.runs_total"), 2);
  EXPECT_EQ(snap.counters.at("streamq.source.events_total"),
            2 * static_cast<int64_t>(TestStream().size()));
}

}  // namespace
}  // namespace streamq
