#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/csv.h"
#include "common/metrics.h"
#include "common/table_writer.h"
#include "common/time.h"

namespace streamq {
namespace {

TEST(MetricsTest, CounterLifecycle) {
  MetricsRegistry reg;
  Counter* c = reg.counter("events");
  EXPECT_EQ(c->value(), 0);
  c->Increment();
  c->Increment(5);
  EXPECT_EQ(c->value(), 6);
  EXPECT_EQ(reg.counter("events"), c);  // Same instance by name.
  reg.ResetAll();
  EXPECT_EQ(c->value(), 0);
}

TEST(MetricsTest, GaugeSetsLastValue) {
  MetricsRegistry reg;
  Gauge* g = reg.gauge("k");
  g->Set(5.0);
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(g->value(), 2.5);
}

TEST(MetricsTest, SeriesSummarizes) {
  MetricsRegistry reg(MetricsRegistry::Options{.enable_series = true});
  Series* s = reg.series("latency");
  for (int i = 1; i <= 10; ++i) s->Record(i);
  EXPECT_EQ(s->Summarize().count, 10);
  EXPECT_DOUBLE_EQ(s->Summarize().mean, 5.5);
}

TEST(MetricsTest, SeriesDisabledByDefault) {
  // Production registries keep Series off: Record() is a no-op, so memory
  // stays bounded on unbounded streams (the harness opts in explicitly).
  MetricsRegistry reg;
  Series* s = reg.series("latency");
  for (int i = 1; i <= 10; ++i) s->Record(i);
  EXPECT_FALSE(s->enabled());
  EXPECT_EQ(s->Summarize().count, 0);
}

TEST(MetricsTest, ReportContainsAllNames) {
  MetricsRegistry reg(MetricsRegistry::Options{.enable_series = true});
  reg.counter("a")->Increment();
  reg.gauge("b")->Set(1.0);
  reg.series("c")->Record(1.0);
  const std::string report = reg.Report();
  EXPECT_NE(report.find("a 1"), std::string::npos);
  EXPECT_NE(report.find("b 1"), std::string::npos);
  EXPECT_NE(report.find("c n=1"), std::string::npos);
}

TEST(TableWriterTest, AlignedOutput) {
  TableWriter t("demo", {"name", "value"});
  t.BeginRow();
  t.Cell("alpha");
  t.Cell(int64_t{42});
  t.BeginRow();
  t.Cell("b");
  t.Cell(3.14159, 2);
  EXPECT_EQ(t.row_count(), 2u);
  const std::string s = t.ToString();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
}

TEST(TableWriterTest, CsvExport) {
  TableWriter t("t", {"x", "y"});
  t.BeginRow();
  t.Cell(int64_t{1});
  t.Cell(int64_t{2});
  EXPECT_EQ(t.ToCsv(), "x,y\n1,2\n");
}

TEST(CsvTest, SplitAndJoinRoundTrip) {
  const std::string line = "a,b,,d";
  const auto fields = csv::SplitLine(line);
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(csv::JoinLine(fields), line);
}

TEST(CsvTest, SplitStripsCarriageReturn) {
  const auto fields = csv::SplitLine("a,b\r");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/streamq_csv_test.csv";
  ASSERT_TRUE(csv::WriteFile(path, {{"h1", "h2"}, {"1", "2"}, {"3", "4"}}).ok());

  auto with_header = csv::ReadFile(path, /*skip_header=*/false);
  ASSERT_TRUE(with_header.ok());
  EXPECT_EQ(with_header.value().size(), 3u);

  auto skipped = csv::ReadFile(path, /*skip_header=*/true);
  ASSERT_TRUE(skipped.ok());
  ASSERT_EQ(skipped.value().size(), 2u);
  EXPECT_EQ(skipped.value()[0][0], "1");
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIOError) {
  auto r = csv::ReadFile("/nonexistent/streamq/definitely_missing.csv", false);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(TimeTest, Conversions) {
  EXPECT_EQ(Millis(3), 3000);
  EXPECT_EQ(Seconds(2), 2000000);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(5)), 5.0);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(7)), 7.0);
}

TEST(TimeTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(Micros(640)), "640us");
  EXPECT_EQ(FormatDuration(Millis(13)), "13.00ms");
  EXPECT_EQ(FormatDuration(Seconds(1) + Millis(250)), "1.250s");
  EXPECT_EQ(FormatDuration(Micros(-5)), "-5us");
}

TEST(TimeTest, WallClockIsMonotonicNonDecreasing) {
  const TimestampUs a = WallClockMicros();
  const TimestampUs b = WallClockMicros();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace streamq
