#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/frame.h"
#include "stream/event.h"

namespace streamq {
namespace {

Event MakeEvent(int64_t id, int64_t key, TimestampUs et, TimestampUs at,
                double value) {
  Event e;
  e.id = id;
  e.key = key;
  e.event_time = et;
  e.arrival_time = at;
  e.value = value;
  return e;
}

TEST(FrameCodec, RoundTripsFramesFedByteByByte) {
  const std::vector<Frame> frames = {
      {FrameType::kRegisterQuery, 7, "--window=100 --agg=mean"},
      {FrameType::kIngest, 7, std::string("\x00\x00\x00\x00", 4)},
      {FrameType::kSnapshot, 42, ""},
      {FrameType::kMetricsRequest, 0, std::string(1, '\x00')},
      {FrameType::kOk, 7, ""},
      {FrameType::kMetricsReply, 0, "streamq_runs_total 1\n"},
  };
  std::string wire;
  for (const Frame& f : frames) AppendFrame(f, &wire);

  FrameDecoder decoder;
  std::vector<Frame> decoded;
  for (char c : wire) {
    decoder.Feed(std::string_view(&c, 1));
    Frame out;
    bool have = false;
    ASSERT_TRUE(decoder.Next(&out, &have).ok());
    if (have) decoded.push_back(out);
  }
  EXPECT_EQ(decoded, frames);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameCodec, PartialHeaderYieldsNoFrame) {
  std::string wire;
  AppendFrame({FrameType::kSnapshot, 1, ""}, &wire);
  FrameDecoder decoder;
  decoder.Feed(std::string_view(wire.data(), kFrameHeaderBytes - 1));
  Frame out;
  bool have = true;
  ASSERT_TRUE(decoder.Next(&out, &have).ok());
  EXPECT_FALSE(have);
  decoder.Feed(std::string_view(wire.data() + kFrameHeaderBytes - 1, 1));
  ASSERT_TRUE(decoder.Next(&out, &have).ok());
  EXPECT_TRUE(have);
  EXPECT_EQ(out.type, FrameType::kSnapshot);
  EXPECT_EQ(out.tenant, 1u);
}

TEST(FrameCodec, RejectsBadMagicAndStaysFailed) {
  FrameDecoder decoder;
  decoder.Feed("XQ..........");
  Frame out;
  bool have = false;
  const Status first = decoder.Next(&out, &have);
  EXPECT_EQ(first.code(), StatusCode::kInvalidArgument);
  // Sticky: even valid bytes afterwards cannot resynchronize the stream.
  std::string wire;
  AppendFrame({FrameType::kOk, 0, ""}, &wire);
  decoder.Feed(wire);
  EXPECT_EQ(decoder.Next(&out, &have).code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(have);
}

TEST(FrameCodec, RejectsUnknownTypeAndNonzeroFlags) {
  {
    std::string wire;
    AppendFrame({FrameType::kOk, 0, ""}, &wire);
    wire[2] = 99;  // Unknown type.
    FrameDecoder decoder;
    decoder.Feed(wire);
    Frame out;
    bool have = false;
    EXPECT_EQ(decoder.Next(&out, &have).code(),
              StatusCode::kInvalidArgument);
  }
  {
    std::string wire;
    AppendFrame({FrameType::kOk, 0, ""}, &wire);
    wire[3] = 1;  // Reserved flags must be zero.
    FrameDecoder decoder;
    decoder.Feed(wire);
    Frame out;
    bool have = false;
    EXPECT_EQ(decoder.Next(&out, &have).code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(FrameCodec, RejectsOversizedPayloadWithoutBuffering) {
  // A length prefix over the cap must fail immediately from the header
  // alone — the decoder must not wait for (or try to allocate) the body.
  std::string wire;
  AppendFrame({FrameType::kIngest, 1, "xxxxxxxx"}, &wire);
  FrameDecoder decoder(/*max_payload=*/4);
  decoder.Feed(std::string_view(wire.data(), kFrameHeaderBytes));
  Frame out;
  bool have = false;
  EXPECT_EQ(decoder.Next(&out, &have).code(), StatusCode::kInvalidArgument);
}

TEST(FrameCodec, EventBatchRoundTrip) {
  std::vector<Event> events = {
      MakeEvent(1, 3, 1000, 1500, 0.5),
      MakeEvent(2, -9, 2000, 2000, -1.25),
      MakeEvent(3, 0, 0, 0, 0.0),
  };
  std::string payload;
  EncodeEventBatch(events, &payload);
  std::vector<Event> decoded;
  ASSERT_TRUE(DecodeEventBatch(payload, &decoded).ok());
  EXPECT_EQ(decoded, events);

  std::string empty_payload;
  EncodeEventBatch(std::span<const Event>(), &empty_payload);
  std::vector<Event> none;
  ASSERT_TRUE(DecodeEventBatch(empty_payload, &none).ok());
  EXPECT_TRUE(none.empty());
}

TEST(FrameCodec, EventBatchRejectsLengthMismatchAndGarbage) {
  std::vector<Event> events = {MakeEvent(1, 1, 1, 1, 1.0)};
  std::string payload;
  EncodeEventBatch(events, &payload);

  std::vector<Event> out;
  // Truncated record.
  EXPECT_EQ(DecodeEventBatch(std::string_view(payload).substr(
                                 0, payload.size() - 1),
                             &out)
                .code(),
            StatusCode::kInvalidArgument);
  // Trailing garbage.
  EXPECT_EQ(DecodeEventBatch(payload + "z", &out).code(),
            StatusCode::kInvalidArgument);
  // Count lies about the body size.
  std::string tampered = payload;
  tampered[0] = 2;
  EXPECT_EQ(DecodeEventBatch(tampered, &out).code(),
            StatusCode::kInvalidArgument);
  // Too short for even the count.
  EXPECT_EQ(DecodeEventBatch("ab", &out).code(), StatusCode::kOutOfRange);
}

TEST(FrameCodec, ErrorRoundTrip) {
  const Status original = Status::NotFound("tenant 9 not registered");
  std::string payload;
  EncodeError(original, &payload);
  const Status decoded = DecodeError(payload);
  EXPECT_EQ(decoded.code(), StatusCode::kNotFound);
  EXPECT_EQ(decoded.message(), "tenant 9 not registered");
}

TEST(FrameCodec, SnapshotStatsRoundTrip) {
  SnapshotStats stats;
  stats.finished = 1;
  stats.status_code = StatusCode::kResourceExhausted;
  stats.status_message = "buffer cap reached";
  stats.events_ingested = 100;
  stats.events_processed = 98;
  stats.events_rejected = 2;
  stats.events_out = 90;
  stats.events_late = 5;
  stats.events_dropped = 1;
  stats.events_shed = 3;
  stats.events_force_released = 7;
  stats.max_buffer_size = 4096;
  stats.results = 12;
  stats.result_checksum = 0xdeadbeefcafef00dULL;
  stats.mean_buffering_latency_us = 1234.5;
  stats.final_slack_us = 30000;
  stats.shard_migrations = 6;
  stats.segments_stolen = 11;

  std::string payload;
  EncodeSnapshotStats(stats, &payload);
  SnapshotStats decoded;
  ASSERT_TRUE(DecodeSnapshotStats(payload, &decoded).ok());
  EXPECT_EQ(decoded, stats);
  EXPECT_TRUE(decoded.AccountingIdentityHolds());

  // Truncation at every prefix length must fail cleanly, never crash.
  for (size_t n = 0; n < payload.size(); ++n) {
    SnapshotStats partial;
    EXPECT_FALSE(
        DecodeSnapshotStats(std::string_view(payload).substr(0, n), &partial)
            .ok());
  }
  // Unknown version byte.
  std::string versioned = payload;
  versioned[0] = 9;
  SnapshotStats wrong;
  EXPECT_EQ(DecodeSnapshotStats(versioned, &wrong).code(),
            StatusCode::kInvalidArgument);
}

TEST(FrameCodec, SnapshotFromReportCarriesSchedulerCounters) {
  RunReport report;
  report.events_processed = 50;
  report.shard_migrations = 3;
  report.segments_stolen = 9;
  const SnapshotStats stats =
      SnapshotFromReport(report, /*ingested=*/50, /*finished=*/true);
  EXPECT_EQ(stats.shard_migrations, 3);
  EXPECT_EQ(stats.segments_stolen, 9);

  std::string payload;
  EncodeSnapshotStats(stats, &payload);
  SnapshotStats decoded;
  ASSERT_TRUE(DecodeSnapshotStats(payload, &decoded).ok());
  EXPECT_EQ(decoded.shard_migrations, 3);
  EXPECT_EQ(decoded.segments_stolen, 9);
}

TEST(FrameCodec, AccountingIdentity) {
  SnapshotStats stats;
  stats.events_processed = 10;
  stats.events_out = 7;
  stats.events_late = 2;
  stats.events_shed = 1;
  EXPECT_TRUE(stats.AccountingIdentityHolds());
  stats.events_shed = 0;
  EXPECT_FALSE(stats.AccountingIdentityHolds());
}

TEST(FrameCodec, ResultChecksumIsOrderAndValueSensitive) {
  RunReport a;
  WindowResult r1;
  r1.bounds.start = 0;
  r1.bounds.end = 100;
  r1.key = 1;
  r1.value = 2.5;
  r1.tuple_count = 4;
  WindowResult r2 = r1;
  r2.bounds.start = 100;
  r2.value = 3.5;
  a.results = {r1, r2};

  RunReport same = a;
  EXPECT_EQ(ResultChecksum(a), ResultChecksum(same));

  RunReport reordered = a;
  std::swap(reordered.results[0], reordered.results[1]);
  EXPECT_NE(ResultChecksum(a), ResultChecksum(reordered));

  RunReport perturbed = a;
  perturbed.results[1].value += 1e-5;
  EXPECT_NE(ResultChecksum(a), ResultChecksum(perturbed));
}

TEST(FrameCodec, PayloadReaderBoundsChecks) {
  PayloadReader reader(std::string_view("\x01\x02\x03", 3));
  uint32_t v = 0;
  EXPECT_EQ(reader.ReadU32(&v).code(), StatusCode::kOutOfRange);
  uint8_t b = 0;
  ASSERT_TRUE(reader.ReadU8(&b).ok());
  EXPECT_EQ(b, 1);
  EXPECT_EQ(reader.remaining(), 2u);
  EXPECT_EQ(reader.ExpectEnd().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace streamq
