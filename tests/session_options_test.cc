#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/session_options.h"

namespace streamq {
namespace {

TEST(SessionOptions, DefaultsValidate) {
  SessionOptions options;
  EXPECT_TRUE(options.Validate().ok());
  EXPECT_TRUE(options.BuildQuery().ok());
}

TEST(SessionOptions, SettersChainAndSelectStrategy) {
  SessionOptions options;
  options.Name("t").Window(200).Slide(50).Aggregate("mean").QualityTarget(0.9);
  EXPECT_EQ(options.name, "t");
  EXPECT_EQ(options.window_ms, 200);
  EXPECT_EQ(options.slide_ms, 50);
  EXPECT_EQ(options.agg, "mean");
  EXPECT_EQ(options.strategy, "aq");
  EXPECT_DOUBLE_EQ(options.quality, 0.9);
  options.LatencyBudget(25);
  EXPECT_EQ(options.strategy, "lb");
  options.FixedK(40);
  EXPECT_EQ(options.strategy, "fixed");
}

TEST(SessionOptions, ValidationMatrix) {
  struct Case {
    const char* label;
    void (*mutate)(SessionOptions*);
    bool ok;
  };
  const Case kCases[] = {
      {"default", [](SessionOptions*) {}, true},
      {"zero window", [](SessionOptions* o) { o->window_ms = 0; }, false},
      {"negative slide", [](SessionOptions* o) { o->slide_ms = -1; }, false},
      {"bad agg", [](SessionOptions* o) { o->agg = "bogus"; }, false},
      {"quantile agg", [](SessionOptions* o) { o->agg = "quantile:0.5"; },
       true},
      {"bad strategy", [](SessionOptions* o) { o->strategy = "magic"; },
       false},
      {"aq quality 0", [](SessionOptions* o) { o->quality = 0.0; }, false},
      {"aq quality > 1", [](SessionOptions* o) { o->quality = 1.5; }, false},
      {"quality ignored off-aq",
       [](SessionOptions* o) {
         o->strategy = "fixed";
         o->quality = 1.5;
       },
       true},
      {"lb zero budget",
       [](SessionOptions* o) {
         o->strategy = "lb";
         o->latency_budget_ms = 0;
       },
       false},
      {"fixed negative k",
       [](SessionOptions* o) {
         o->strategy = "fixed";
         o->k_ms = -1;
       },
       false},
      {"negative lateness", [](SessionOptions* o) { o->lateness_ms = -5; },
       false},
      {"negative threads", [](SessionOptions* o) { o->threads = -1; }, false},
      {"threads without per-key", [](SessionOptions* o) { o->threads = 2; },
       false},
      {"threads with per-key",
       [](SessionOptions* o) {
         o->threads = 2;
         o->per_key = true;
       },
       true},
      {"vshards without threads", [](SessionOptions* o) { o->vshards = 4; },
       false},
      {"rebalance without threads",
       [](SessionOptions* o) { o->rebalance = true; }, false},
      {"pin-cores without threads",
       [](SessionOptions* o) { o->pin_cores = true; }, false},
      {"mpsc without threads", [](SessionOptions* o) { o->mpsc = 2; }, false},
      {"vshards below threads",
       [](SessionOptions* o) {
         o->threads = 4;
         o->per_key = true;
         o->vshards = 2;
       },
       false},
      {"vshards above threads",
       [](SessionOptions* o) {
         o->threads = 2;
         o->per_key = true;
         o->vshards = 8;
       },
       true},
      {"single mpsc producer",
       [](SessionOptions* o) {
         o->threads = 2;
         o->per_key = true;
         o->mpsc = 1;
       },
       false},
      {"mpsc with rebalance",
       [](SessionOptions* o) {
         o->threads = 2;
         o->per_key = true;
         o->mpsc = 2;
         o->rebalance = true;
       },
       false},
      {"mpsc alone",
       [](SessionOptions* o) {
         o->threads = 2;
         o->per_key = true;
         o->mpsc = 2;
       },
       true},
      {"negative buffer cap", [](SessionOptions* o) { o->buffer_cap = -1; },
       false},
      {"cap with policy",
       [](SessionOptions* o) { o->BufferCap(1000, "drop-oldest"); }, true},
      {"bad shed policy", [](SessionOptions* o) { o->shed = "drop-some"; },
       false},
      {"negative max slack",
       [](SessionOptions* o) { o->max_slack_ms = -1; }, false},
      {"bad validation mode",
       [](SessionOptions* o) { o->validate = "maybe"; }, false},
      {"strict validation", [](SessionOptions* o) { o->validate = "strict"; },
       true},
      {"empty name", [](SessionOptions* o) { o->name.clear(); }, false},
  };
  for (const Case& c : kCases) {
    SessionOptions options;
    c.mutate(&options);
    EXPECT_EQ(options.Validate().ok(), c.ok) << c.label;
    // Validate() passing must guarantee BuildQuery() succeeds.
    if (c.ok) {
      EXPECT_TRUE(options.BuildQuery().ok()) << c.label;
    }
  }
}

TEST(SessionOptions, SerializeRoundTripsNonDefaults) {
  SessionOptions options;
  options.Name("wire")
      .Window(250)
      .Slide(50)
      .Aggregate("quantile:0.9")
      .QualityTarget(0.85)
      .PerKey()
      .AllowedLateness(20)
      .Threads(4)
      .VirtualShards(8)
      .Arena(false)
      .BufferCap(5000, "drop-newest")
      .MaxSlack(400)
      .ValidateIngest("drop");
  ASSERT_TRUE(options.Validate().ok());

  const std::string wire = options.Serialize();
  auto decoded = SessionOptions::Deserialize(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  // Full field-by-field round trip.
  EXPECT_EQ(decoded.value().Serialize(), wire);
  EXPECT_EQ(decoded.value().name, "wire");
  EXPECT_EQ(decoded.value().window_ms, 250);
  EXPECT_EQ(decoded.value().slide_ms, 50);
  EXPECT_EQ(decoded.value().agg, "quantile:0.9");
  EXPECT_DOUBLE_EQ(decoded.value().quality, 0.85);
  EXPECT_TRUE(decoded.value().per_key);
  EXPECT_EQ(decoded.value().threads, 4);
  EXPECT_EQ(decoded.value().vshards, 8);
  EXPECT_FALSE(decoded.value().arena);
  EXPECT_EQ(decoded.value().buffer_cap, 5000);
  EXPECT_EQ(decoded.value().shed, "drop-newest");
  EXPECT_EQ(decoded.value().max_slack_ms, 400);
  EXPECT_EQ(decoded.value().validate, "drop");
}

TEST(SessionOptions, DefaultSerializesEmpty) {
  // ToTokens emits only non-default fields, so defaults cross the wire as
  // zero bytes and parse back to defaults.
  SessionOptions options;
  EXPECT_EQ(options.Serialize(), "");
  auto decoded = SessionOptions::Deserialize("");
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().Validate().ok());
  EXPECT_EQ(decoded.value().window_ms, options.window_ms);
}

TEST(SessionOptions, DeserializeRejectsUnknownTokens) {
  auto decoded = SessionOptions::Deserialize("--window=100 --bogus=1");
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionOptions, ParseTokensCollectsLeftovers) {
  const std::vector<std::string> tokens = {"--window=75", "--trace=feed.csv",
                                           "--per-key", "--demo"};
  SessionOptions options;
  std::vector<std::string> leftover;
  ASSERT_TRUE(
      SessionOptions::ParseTokens(tokens, &options, &leftover).ok());
  EXPECT_EQ(options.window_ms, 75);
  EXPECT_TRUE(options.per_key);
  EXPECT_EQ(leftover,
            (std::vector<std::string>{"--trace=feed.csv", "--demo"}));
}

TEST(SessionOptions, ParseTokensRejectsMalformedValues) {
  SessionOptions options;
  std::vector<std::string> leftover;
  EXPECT_EQ(SessionOptions::ParseTokens(
                std::vector<std::string>{"--window=abc"}, &options, &leftover)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SessionOptions::ParseTokens(std::vector<std::string>{"--window"},
                                        &options, &leftover)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SessionOptions::ParseTokens(
                std::vector<std::string>{"--arena=sometimes"}, &options,
                &leftover)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SessionOptions::ParseTokens(
                std::vector<std::string>{"--quality=fast"}, &options,
                &leftover)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionOptions, SpeculativeAndEngineFlags) {
  // Parse, validate and build the speculative emit-then-amend mode.
  {
    SessionOptions options;
    std::vector<std::string> leftover;
    const std::vector<std::string> tokens = {"--speculative",
                                             "--window-engine=amend"};
    ASSERT_TRUE(SessionOptions::ParseTokens(tokens, &options, &leftover).ok());
    EXPECT_TRUE(leftover.empty());
    EXPECT_TRUE(options.speculative);
    EXPECT_EQ(options.window_engine, "amend");
    ASSERT_TRUE(options.Validate().ok());
    auto query = options.BuildQuery();
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    EXPECT_EQ(query.value().handler.kind,
              DisorderHandlerSpec::Kind::kSpeculative);
    EXPECT_EQ(query.value().window.engine,
              WindowedAggregation::Engine::kAmend);
    // Round-trips over the wire like every other flag.
    auto decoded = SessionOptions::Deserialize(options.Serialize());
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(decoded.value().speculative);
    EXPECT_EQ(decoded.value().window_engine, "amend");
  }
  // --speculative with the legacy engine is rejected, not ignored.
  {
    SessionOptions options;
    options.Speculative().Engine("legacy");
    const Status status = options.Validate();
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("amend"), std::string::npos)
        << status.ToString();
  }
  // --speculative replaces the buffered strategies.
  {
    SessionOptions options;
    options.Speculative().Strategy("fixed");
    EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  }
  // Engine names are validated.
  {
    SessionOptions options;
    options.Engine("btree");
    EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  }
  // The non-speculative engines all build.
  for (const char* engine : {"hot", "amend", "legacy"}) {
    SessionOptions options;
    options.Engine(engine);
    EXPECT_TRUE(options.BuildQuery().ok()) << engine;
  }
}

TEST(SessionOptions, SuggestFlagFindsNearMisses) {
  EXPECT_EQ(SuggestFlag("--thread=2", {}), "--threads");
  EXPECT_EQ(SuggestFlag("--qualty=0.9", {}), "--quality");
  EXPECT_EQ(SuggestFlag("--windw=10", {}), "--window");
  EXPECT_EQ(SuggestFlag("--window-engin=amend", {}), "--window-engine");
  EXPECT_EQ(SuggestFlag("--speculativ", {}), "--speculative");
  const std::vector<std::string> extra = {"--trace"};
  EXPECT_EQ(SuggestFlag("--trce=x", extra), "--trace");
  // Far-off garbage should produce no suggestion at all.
  EXPECT_EQ(SuggestFlag("--zzzzzzzzzzzz", {}), "");
}

TEST(SessionOptions, StrictNumericParsers) {
  int64_t i = 0;
  EXPECT_TRUE(ParseInt64Strict("-42", &i).ok());
  EXPECT_EQ(i, -42);
  EXPECT_FALSE(ParseInt64Strict("", &i).ok());
  EXPECT_FALSE(ParseInt64Strict("12x", &i).ok());
  EXPECT_FALSE(ParseInt64Strict("99999999999999999999999", &i).ok());
  double d = 0.0;
  EXPECT_TRUE(ParseDoubleStrict("0.25", &d).ok());
  EXPECT_DOUBLE_EQ(d, 0.25);
  EXPECT_FALSE(ParseDoubleStrict("", &d).ok());
  EXPECT_FALSE(ParseDoubleStrict("1.2.3", &d).ok());
}

TEST(SessionOptions, DescribeNamesTheConfiguration) {
  SessionOptions options;
  options.Name("svc").Window(100).PerKey().Threads(2).VirtualShards(4);
  const std::string text = options.Describe();
  EXPECT_NE(text.find("svc"), std::string::npos);
  EXPECT_NE(text.find("per-key"), std::string::npos);
  EXPECT_NE(text.find("2 threads"), std::string::npos);
}

TEST(SessionOptions, BuildParallelOptionsMirrorsFields) {
  SessionOptions options;
  options.PerKey().Threads(2).VirtualShards(6).Rebalance().Arena(false);
  const ParallelOptions popts = options.BuildParallelOptions();
  EXPECT_FALSE(popts.use_arena);
  EXPECT_EQ(popts.virtual_shards, 6u);
  EXPECT_TRUE(popts.rebalance);
  EXPECT_FALSE(popts.pin_cores);
}

TEST(SessionOptions, SchedulerFlagsParseRoundTripAndValidate) {
  // Parse the three scheduler flags, round-trip them through the wire
  // form, and check they land in ParallelOptions.
  SessionOptions options;
  std::vector<std::string> leftover;
  const std::vector<std::string> tokens = {
      "--per-key", "--threads=2", "--steal", "--adaptive-batch",
      "--numa-arena"};
  ASSERT_TRUE(SessionOptions::ParseTokens(tokens, &options, &leftover).ok());
  EXPECT_TRUE(leftover.empty());
  EXPECT_TRUE(options.steal);
  EXPECT_TRUE(options.adaptive_batch);
  EXPECT_TRUE(options.numa_arena);
  ASSERT_TRUE(options.Validate().ok());

  auto decoded = SessionOptions::Deserialize(options.Serialize());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.value().steal);
  EXPECT_TRUE(decoded.value().adaptive_batch);
  EXPECT_TRUE(decoded.value().numa_arena);
  EXPECT_EQ(decoded.value().Serialize(), options.Serialize());

  const ParallelOptions popts = options.BuildParallelOptions();
  EXPECT_TRUE(popts.steal);
  EXPECT_TRUE(popts.adaptive_batch);
  EXPECT_TRUE(popts.numa_arena);

  const std::string text = options.Describe();
  EXPECT_NE(text.find("steal"), std::string::npos);
  EXPECT_NE(text.find("adaptive-batch"), std::string::npos);
  EXPECT_NE(text.find("numa"), std::string::npos);
}

TEST(SessionOptions, SchedulerFlagsRequireThreadsAndSingleSource) {
  {
    // No --threads: all three scheduler flags are parallel-only.
    SessionOptions options;
    options.PerKey().Steal();
    const Status st = options.Validate();
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(st.message().find("--steal"), std::string::npos);
    EXPECT_NE(st.message().find("--threads"), std::string::npos);
  }
  {
    SessionOptions options;
    options.PerKey().AdaptiveBatch();
    EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    SessionOptions options;
    options.PerKey().NumaArena();
    EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    // Steal is driver-mediated, so a multi-producer MPSC feed cannot host
    // it: the combination must be rejected up front, not at run time.
    SessionOptions options;
    options.PerKey().Threads(2).MpscProducers(2).Steal();
    const Status st = options.Validate();
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(st.message().find("--mpsc"), std::string::npos);
  }
  {
    // Valid combination passes.
    SessionOptions options;
    options.PerKey().Threads(2).Steal().AdaptiveBatch().NumaArena();
    EXPECT_TRUE(options.Validate().ok());
  }
}

TEST(SessionOptions, SchedulerFlagNearMissesSuggest) {
  EXPECT_EQ(SuggestFlag("--stea", {}), "--steal");
  EXPECT_EQ(SuggestFlag("--adaptve-batch", {}), "--adaptive-batch");
  EXPECT_EQ(SuggestFlag("--numa-aren", {}), "--numa-arena");
}

}  // namespace
}  // namespace streamq
