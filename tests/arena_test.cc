// SlabArena: slab recycling, intrusive batch refcounting, pool bounds, and
// the lifetime guarantee that a Batch may outlive every arena handle.

#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "stream/event.h"

namespace streamq {
namespace {

using IntArena = SlabArena<int>;

TEST(SlabArenaTest, AcquireReservesDefaultCapacity) {
  IntArena arena(IntArena::Options{.slab_capacity = 64});
  IntArena::Slab slab = arena.Acquire();
  EXPECT_TRUE(slab.empty());
  EXPECT_GE(slab.capacity(), 64u);
  IntArena::Slab big = arena.AcquireAtLeast(1000);
  EXPECT_GE(big.capacity(), 1000u);
}

TEST(SlabArenaTest, RecycleKeepsCapacityAndServesReuses) {
  IntArena arena(IntArena::Options{.slab_capacity = 8});
  IntArena::Slab slab = arena.AcquireAtLeast(500);
  for (int i = 0; i < 500; ++i) slab.push_back(i);
  arena.Recycle(std::move(slab));

  IntArena::Slab again = arena.Acquire();
  EXPECT_TRUE(again.empty());             // Contents discarded…
  EXPECT_GE(again.capacity(), 500u);      // …capacity survives the round trip.
  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.slab_acquires, 2);
  EXPECT_EQ(stats.slab_reuses, 1);
  EXPECT_EQ(stats.slab_recycles, 1);
}

TEST(SlabArenaTest, ShareSwapsScratchSoFeedLoopsAllocateNothing) {
  IntArena arena(IntArena::Options{.slab_capacity = 16});
  IntArena::Slab scratch = arena.Acquire();

  scratch.assign({1, 2, 3});
  IntArena::Batch first = arena.Share(&scratch);
  ASSERT_TRUE(first);
  EXPECT_EQ(first->size(), 3u);
  EXPECT_EQ((*first)[2], 3);
  // The scratch came back as a different (empty) buffer, ready to refill.
  EXPECT_TRUE(scratch.empty());

  first.reset();  // Node returns to the pool…
  scratch.assign({4, 5});
  IntArena::Batch second = arena.Share(&scratch);
  EXPECT_EQ((*second)[0], 4);
  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.batch_shares, 2);
  EXPECT_EQ(stats.batch_reuses, 1);  // …and the second share reused it.
}

TEST(SlabArenaTest, BatchCopiesShareOneNodeUntilLastReset) {
  IntArena arena;
  IntArena::Slab scratch = arena.Acquire();
  scratch.assign({7});
  IntArena::Batch a = arena.Share(&scratch);
  IntArena::Batch b = a;            // Copy: refcount 2, same storage.
  IntArena::Batch c = std::move(a);  // Move: no refcount traffic.
  EXPECT_FALSE(a);
  ASSERT_TRUE(b);
  ASSERT_TRUE(c);
  EXPECT_EQ(&*b, &*c);

  b.reset();
  EXPECT_EQ(arena.stats().free_batches, 0u);  // c still holds the node.
  c.reset();
  EXPECT_EQ(arena.stats().free_batches, 1u);  // Last reference pooled it.
}

TEST(SlabArenaTest, BatchOutlivesEveryArenaHandle) {
  IntArena::Batch survivor;
  {
    IntArena arena(IntArena::Options{.slab_capacity = 4});
    IntArena::Slab scratch = arena.Acquire();
    scratch.assign({42, 43});
    survivor = arena.Share(&scratch);
  }  // All arena handles gone; the batch keeps the pools alive.
  ASSERT_TRUE(survivor);
  EXPECT_EQ(survivor->at(0), 42);
  EXPECT_EQ(survivor->at(1), 43);
  survivor.reset();  // Last reference: pool dies with it (ASan watches).
}

TEST(SlabArenaTest, CopiedHandlesShareTheSamePools) {
  IntArena arena(IntArena::Options{.slab_capacity = 8});
  IntArena other = arena;  // Same pools, different handle.
  IntArena::Slab slab = arena.AcquireAtLeast(300);
  other.Recycle(std::move(slab));
  EXPECT_EQ(arena.stats().free_slabs, 1u);
  EXPECT_GE(other.Acquire().capacity(), 300u);
}

TEST(SlabArenaTest, PoolBoundsAreRespected) {
  IntArena arena(IntArena::Options{
      .slab_capacity = 4, .max_free_slabs = 2, .max_free_batches = 1});
  for (int i = 0; i < 4; ++i) {
    IntArena::Slab slab = arena.AcquireAtLeast(8);
    arena.Recycle(std::move(slab));
    // Each round trip reuses the pooled slab, so the pool never overflows…
  }
  IntArena::Slab a = arena.Acquire();
  IntArena::Slab b = arena.Acquire();
  IntArena::Slab c = arena.Acquire();
  arena.Recycle(std::move(a));
  arena.Recycle(std::move(b));
  arena.Recycle(std::move(c));  // …but three at once exceeds max_free_slabs.
  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.free_slabs, 2u);
  EXPECT_GE(stats.slab_drops, 1);
}

TEST(SlabArenaTest, DisabledPoolingDegradesToPlainHeap) {
  IntArena arena(IntArena::Options{
      .slab_capacity = 4, .max_free_slabs = 0, .max_free_batches = 0});
  IntArena::Slab slab = arena.AcquireAtLeast(100);
  slab.push_back(1);
  IntArena::Batch batch = arena.Share(&slab);
  batch.reset();
  arena.Recycle(std::move(slab));
  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.slab_reuses, 0);
  EXPECT_EQ(stats.batch_reuses, 0);
  EXPECT_EQ(stats.free_slabs, 0u);
  EXPECT_EQ(stats.free_batches, 0u);
}

TEST(SlabArenaTest, ZeroCapacitySlabIsNotPooled) {
  IntArena arena;
  IntArena::Slab empty;  // Never allocated: nothing worth keeping.
  arena.Recycle(std::move(empty));
  EXPECT_EQ(arena.stats().free_slabs, 0u);
}

/// The cross-thread pattern the runners rely on: one thread shares, another
/// drops the last reference; the node must land back in the *minting*
/// arena's pool, ready for reuse (TSan checks the handoff ordering).
TEST(SlabArenaTest, CrossThreadReleaseReturnsNodesHome) {
  IntArena arena(IntArena::Options{.slab_capacity = 8});
  constexpr int kBatches = 2000;
  std::vector<IntArena::Batch> in_flight(kBatches);
  IntArena::Slab scratch = arena.Acquire();
  for (int i = 0; i < kBatches; ++i) {
    scratch.assign({i});
    in_flight[static_cast<size_t>(i)] = arena.Share(&scratch);
  }
  int64_t sum = 0;
  std::thread consumer([&] {
    for (IntArena::Batch& b : in_flight) {
      sum += (*b)[0];
      b.reset();  // Last reference dropped off-thread.
    }
  });
  consumer.join();
  EXPECT_EQ(sum, int64_t{kBatches} * (kBatches - 1) / 2);
  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.free_batches, std::min<size_t>(kBatches, 1024));
  // A second wave now runs entirely off the pool.
  for (int i = 0; i < 100; ++i) {
    scratch.assign({i});
    arena.Share(&scratch).reset();
  }
  EXPECT_GE(arena.stats().batch_reuses, 100);
}

TEST(EventArenaTest, GlobalEventArenaSharesAndRecycles) {
  EventArena& arena = GlobalEventArena();
  EventArena::Slab slab = arena.AcquireAtLeast(4);
  Event e;
  e.id = 1;
  e.event_time = 10;
  e.arrival_time = 12;
  slab.push_back(e);
  EventArena::Batch batch = arena.Share(&slab);
  ASSERT_TRUE(batch);
  EXPECT_EQ((*batch)[0].id, 1);
  batch.reset();
  arena.Recycle(std::move(slab));
  EXPECT_GT(arena.stats().batch_shares, 0);
}

}  // namespace
}  // namespace streamq
