/// Randomized cross-cutting property tests: for a sweep of generated
/// workload shapes and handler configurations, the system-level invariants
/// must hold — ordering contract, tuple conservation, watermark
/// monotonicity, closed-form late-set characterization of K-slack, and
/// window production completeness.

#include <gtest/gtest.h>

#include <memory>

#include "core/executor.h"
#include "quality/oracle.h"
#include "quality/quality_metrics.h"
#include "stream/disorder_metrics.h"
#include "stream/generator.h"
#include "tests/test_util.h"

namespace streamq {
namespace {

/// Derives a random-but-reproducible workload from a seed.
WorkloadConfig RandomWorkload(uint64_t seed) {
  Rng rng(seed * 2654435761ULL + 17);
  WorkloadConfig cfg;
  cfg.num_events = 2000 + rng.NextInt(0, 4000);
  cfg.events_per_second = rng.NextUniform(2000.0, 30000.0);
  cfg.poisson_arrivals = rng.NextBool(0.7);
  cfg.num_keys = rng.NextInt(1, 16);
  cfg.key_zipf_s = rng.NextBool(0.5) ? rng.NextUniform(0.5, 1.5) : 0.0;
  switch (rng.NextInt(0, 4)) {
    case 0:
      cfg.delay.model = DelayModel::kExponential;
      cfg.delay.a = rng.NextUniform(1000.0, 50000.0);
      break;
    case 1:
      cfg.delay.model = DelayModel::kUniform;
      cfg.delay.a = 0.0;
      cfg.delay.b = rng.NextUniform(1000.0, 80000.0);
      break;
    case 2:
      cfg.delay.model = DelayModel::kLogNormal;
      cfg.delay.a = rng.NextUniform(7.0, 10.0);
      cfg.delay.b = rng.NextUniform(0.3, 1.2);
      break;
    case 3:
      cfg.delay.model = DelayModel::kPareto;
      cfg.delay.a = rng.NextUniform(500.0, 3000.0);
      cfg.delay.b = rng.NextUniform(1.2, 3.0);
      break;
    default:
      cfg.delay.model = DelayModel::kNormal;
      cfg.delay.a = rng.NextUniform(5000.0, 30000.0);
      cfg.delay.b = rng.NextUniform(1000.0, 10000.0);
      break;
  }
  if (rng.NextBool(0.4)) {
    cfg.dynamics.kind = DynamicsKind::kStep;
    cfg.dynamics.factor = rng.NextUniform(0.2, 6.0);
    cfg.dynamics.t0 = rng.NextInt(Millis(50), Millis(400));
  }
  cfg.seed = seed;
  return cfg;
}

/// Derives a random handler configuration from a seed.
DisorderHandlerSpec RandomHandler(uint64_t seed) {
  Rng rng(seed * 40503ULL + 3);
  switch (rng.NextInt(0, 5)) {
    case 0:
      return DisorderHandlerSpec::PassThrough();
    case 1:
      return DisorderHandlerSpec::Fixed(rng.NextInt(0, Millis(80)));
    case 2: {
      MpKSlack::Options mp;
      mp.mode = rng.NextBool(0.5) ? MpKSlack::Mode::kGrowOnly
                                  : MpKSlack::Mode::kSlidingMax;
      mp.window_size = rng.NextInt(100, 5000);
      return DisorderHandlerSpec::Mp(mp);
    }
    case 3: {
      AqKSlack::Options aq;
      aq.target_quality = rng.NextUniform(0.7, 0.999);
      aq.adaptation_interval = rng.NextInt(32, 1024);
      aq.sketch_window = static_cast<size_t>(rng.NextInt(256, 8192));
      return DisorderHandlerSpec::Aq(aq);
    }
    case 4: {
      LbKSlack::Options lb;
      lb.latency_budget = rng.NextInt(Millis(1), Millis(60));
      return DisorderHandlerSpec::Lb(lb);
    }
    default: {
      WatermarkReorderer::Options wm;
      wm.bound = rng.NextInt(0, Millis(60));
      wm.period_events = rng.NextInt(1, 128);
      wm.allowed_lateness = rng.NextInt(0, Millis(20));
      return DisorderHandlerSpec::Watermark(wm);
    }
  }
}

class RandomizedPipelineTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomizedPipelineTest, HandlerInvariantsHold) {
  const uint64_t seed = GetParam();
  const GeneratedWorkload w = GenerateWorkload(RandomWorkload(seed));
  auto handler = MakeDisorderHandlerOrDie(RandomHandler(seed));

  testutil::ContractCheckingSink sink;
  for (const Event& e : w.arrival_order) handler->OnEvent(e, &sink);
  handler->Flush(&sink);

  EXPECT_TRUE(sink.ordered) << "seed=" << seed;
  EXPECT_TRUE(sink.respects_watermark) << "seed=" << seed;
  EXPECT_TRUE(sink.watermarks_monotone) << "seed=" << seed;
  EXPECT_EQ(sink.current_watermark, kMaxTimestamp);

  const auto& stats = handler->stats();
  EXPECT_EQ(stats.events_in, static_cast<int64_t>(w.arrival_order.size()));
  EXPECT_EQ(stats.events_in, stats.events_out + stats.events_late);
  EXPECT_EQ(static_cast<int64_t>(sink.events.size()), stats.events_out);
  EXPECT_GE(stats.buffering_latency_us.min(), 0.0);
}

TEST_P(RandomizedPipelineTest, FixedKSlackLateSetIsExactlyLatenessAboveK) {
  // Closed-form differential oracle: FixedKSlack(K) diverts tuple i as late
  // iff lateness_i > K, where lateness_i is measured against the event-time
  // frontier of earlier arrivals.
  const uint64_t seed = GetParam();
  const GeneratedWorkload w = GenerateWorkload(RandomWorkload(seed));
  Rng rng(seed + 5);
  const DurationUs k = rng.NextInt(0, Millis(50));

  FixedKSlack handler(k, /*collect_latency_samples=*/false);
  CollectingSink sink;
  testutil::RunHandler(&handler, w.arrival_order, &sink);

  const auto lateness = ComputeLateness(w.arrival_order);
  std::vector<int64_t> expected_late_ids;
  for (size_t i = 0; i < lateness.size(); ++i) {
    if (lateness[i] > k) expected_late_ids.push_back(w.arrival_order[i].id);
  }
  std::vector<int64_t> actual_late_ids;
  actual_late_ids.reserve(sink.late_events.size());
  for (const Event& e : sink.late_events) actual_late_ids.push_back(e.id);
  EXPECT_EQ(actual_late_ids, expected_late_ids) << "seed=" << seed;
}

TEST_P(RandomizedPipelineTest, FullPipelineProducesEveryWindowOnce) {
  const uint64_t seed = GetParam();
  const GeneratedWorkload w = GenerateWorkload(RandomWorkload(seed));

  ContinuousQuery q;
  q.name = "rand";
  q.handler = RandomHandler(seed);
  q.window.window = WindowSpec::Tumbling(Millis(20));
  q.window.aggregate.kind = AggKind::kSum;
  QueryExecutor exec(q);
  VectorSource source(w.arrival_order);
  const RunReport report = exec.Run(&source);

  const OracleEvaluator oracle(w.arrival_order, q.window.window,
                               q.window.aggregate);
  const QualityReport quality = EvaluateQuality(report.results, oracle);
  // A window can only go missing if every one of its tuples was dropped
  // (by the handler's allowed-lateness policy or by the window operator),
  // so each missed window needs at least one dropped tuple. With no drops
  // anywhere, every oracle window must appear.
  const int64_t dropped = report.handler_stats.events_dropped +
                          report.window_stats.late_dropped;
  EXPECT_LE(quality.missed_windows, dropped) << "seed=" << seed;
  if (dropped == 0) {
    EXPECT_EQ(quality.missed_windows, 0) << "seed=" << seed;
  }
  EXPECT_EQ(quality.spurious_windows, 0) << "seed=" << seed;
  // Quality and coverage are proper fractions.
  EXPECT_GE(quality.coverage.min, 0.0);
  EXPECT_LE(quality.coverage.max, 1.0);
  EXPECT_GE(quality.value_quality.min, 0.0);
  EXPECT_LE(quality.value_quality.max, 1.0);
  // Response latency is never negative.
  EXPECT_GE(quality.response_latency_us.min, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedPipelineTest,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

}  // namespace
}  // namespace streamq
