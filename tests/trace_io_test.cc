#include "stream/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "stream/generator.h"

namespace streamq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(TraceIoTest, RoundTripPreservesEvents) {
  WorkloadConfig cfg;
  cfg.num_events = 500;
  cfg.num_keys = 3;
  cfg.seed = 5;
  const GeneratedWorkload w = GenerateWorkload(cfg);

  const std::string path = TempPath("trace_roundtrip.csv");
  ASSERT_TRUE(SaveTrace(path, w.arrival_order).ok());
  auto loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value(), w.arrival_order);
  std::remove(path.c_str());
}

TEST(TraceIoTest, LoadSortsByArrival) {
  // Write a trace out of arrival order; LoadTrace must normalize.
  const std::string path = TempPath("trace_unsorted.csv");
  {
    std::ofstream out(path);
    out << "id,key,event_time,arrival_time,value\n";
    out << "1,0,200,900,2.5\n";
    out << "0,0,100,400,1.5\n";
  }
  auto loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0].id, 0);
  EXPECT_EQ(loaded.value()[1].id, 1);
  std::remove(path.c_str());
}

TEST(TraceIoTest, RejectsWrongFieldCount) {
  const std::string path = TempPath("trace_badfields.csv");
  {
    std::ofstream out(path);
    out << "id,key,event_time,arrival_time,value\n";
    out << "1,0,200\n";
  }
  auto loaded = LoadTrace(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(TraceIoTest, RejectsNonNumeric) {
  const std::string path = TempPath("trace_nonnum.csv");
  {
    std::ofstream out(path);
    out << "id,key,event_time,arrival_time,value\n";
    out << "1,0,abc,900,2.5\n";
  }
  auto loaded = LoadTrace(path);
  ASSERT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(TraceIoTest, MissingFileFails) {
  auto loaded = LoadTrace("/nonexistent/streamq_trace.csv");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(TraceIoTest, PreservesExactDoubleValues) {
  Event e;
  e.id = 0;
  e.key = 1;
  e.event_time = 10;
  e.arrival_time = 20;
  e.value = 0.1 + 0.2;  // Not exactly representable as short decimal.
  const std::string path = TempPath("trace_doubles.csv");
  ASSERT_TRUE(SaveTrace(path, {e}).ok());
  auto loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()[0].value, e.value);  // Bit-exact via %.17g.
  std::remove(path.c_str());
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  const std::string path = TempPath("trace_empty.csv");
  ASSERT_TRUE(SaveTrace(path, {}).ok());
  auto loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace streamq
