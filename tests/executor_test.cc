#include "core/executor.h"

#include <gtest/gtest.h>

#include "quality/oracle.h"
#include "quality/quality_metrics.h"
#include "stream/generator.h"
#include "tests/test_util.h"

namespace streamq {
namespace {

GeneratedWorkload Workload(int64_t n = 10000, uint64_t seed = 42) {
  return testutil::DisorderedWorkload(n, seed);
}

TEST(QueryBuilderTest, DefaultsToQualityDriven) {
  const ContinuousQuery q = QueryBuilder("q").Tumbling(Seconds(1)).Build();
  EXPECT_EQ(q.handler.kind, DisorderHandlerSpec::Kind::kAqKSlack);
  EXPECT_DOUBLE_EQ(q.handler.aq.target_quality, 0.95);
  EXPECT_TRUE(q.Validate().ok());
}

TEST(QueryBuilderTest, AggregateGammaIsWiredAutomatically) {
  const ContinuousQuery q = QueryBuilder("q")
                                .Tumbling(Seconds(1))
                                .Aggregate("max")
                                .QualityTarget(0.9)
                                .Build();
  EXPECT_DOUBLE_EQ(q.handler.aq_quality_gamma, DefaultQualityGamma(AggKind::kMax));
}

TEST(QueryBuilderTest, ExplicitGammaWins) {
  const ContinuousQuery q = QueryBuilder("q")
                                .Tumbling(Seconds(1))
                                .Aggregate("max")
                                .QualityTarget(0.9, /*gamma=*/1.0)
                                .Build();
  EXPECT_DOUBLE_EQ(q.handler.aq_quality_gamma, 1.0);
}

TEST(QueryBuilderTest, StrategySelection) {
  EXPECT_EQ(QueryBuilder("q").FixedSlack(Millis(5)).Build().handler.kind,
            DisorderHandlerSpec::Kind::kFixedKSlack);
  EXPECT_EQ(QueryBuilder("q").AdaptiveMaxSlack().Build().handler.kind,
            DisorderHandlerSpec::Kind::kMpKSlack);
  EXPECT_EQ(QueryBuilder("q").NoDisorderHandling().Build().handler.kind,
            DisorderHandlerSpec::Kind::kPassThrough);
  WatermarkReorderer::Options wm;
  EXPECT_EQ(QueryBuilder("q").Watermark(wm).Build().handler.kind,
            DisorderHandlerSpec::Kind::kWatermark);
}

TEST(QueryBuilderTest, DescribeMentionsEverything) {
  const ContinuousQuery q = QueryBuilder("my-query")
                                .Sliding(Seconds(10), Seconds(1))
                                .Aggregate("mean")
                                .QualityTarget(0.9)
                                .Build();
  const std::string d = q.Describe();
  EXPECT_NE(d.find("my-query"), std::string::npos);
  EXPECT_NE(d.find("sliding"), std::string::npos);
  EXPECT_NE(d.find("mean"), std::string::npos);
  EXPECT_NE(d.find("aq-kslack"), std::string::npos);
}

TEST(QueryExecutorTest, RunProducesResults) {
  const auto w = Workload();
  const ContinuousQuery q = QueryBuilder("q")
                                .Tumbling(Millis(50))
                                .Aggregate("sum")
                                .QualityTarget(0.95)
                                .Build();
  QueryExecutor exec(q);
  VectorSource source(w.arrival_order);
  const RunReport report = exec.Run(&source);

  EXPECT_EQ(report.events_processed,
            static_cast<int64_t>(w.arrival_order.size()));
  EXPECT_GT(report.results.size(), 10u);
  EXPECT_GT(report.throughput_eps, 0.0);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.final_slack, 0);
}

TEST(QueryExecutorTest, FixedSlackFullCoverageMatchesOracle) {
  const auto w = Workload(5000);
  const ContinuousQuery q = QueryBuilder("exact")
                                .Tumbling(Millis(50))
                                .Aggregate("sum")
                                .FixedSlack(Seconds(1000))
                                .Build();
  QueryExecutor exec(q);
  VectorSource source(w.arrival_order);
  const RunReport report = exec.Run(&source);

  const OracleEvaluator oracle(w.arrival_order, q.window.window,
                               q.window.aggregate);
  const QualityReport quality = EvaluateQuality(report.results, oracle);
  EXPECT_EQ(quality.missed_windows, 0);
  EXPECT_NEAR(quality.value_quality.mean, 1.0, 1e-9);
}

TEST(QueryExecutorTest, QualityDrivenMeetsTargetApproximately) {
  const auto w = Workload(30000, 5);
  for (double target : {0.85, 0.95}) {
    QueryExecutor exec(QueryBuilder("aq")
                           .Tumbling(Millis(50))
                           .Aggregate("sum")
                           .QualityTarget(target)
                           .Build());
    VectorSource source(w.arrival_order);
    const RunReport report = exec.Run(&source);
    const OracleEvaluator oracle(w.arrival_order, WindowSpec::Tumbling(Millis(50)),
                                 exec.query().window.aggregate);
    const QualityReport quality = EvaluateQuality(report.results, oracle);
    EXPECT_GE(quality.MeanQualityIncludingMissed(), target - 0.05)
        << "target=" << target;
  }
}

TEST(QueryExecutorTest, SpeculativePipelineEmitsRevisions) {
  const auto w = Workload(5000);
  QueryExecutor exec(QueryBuilder("spec")
                         .Tumbling(Millis(50))
                         .Aggregate("count")
                         .NoDisorderHandling()
                         .AllowedLateness(Seconds(10))
                         .Build());
  VectorSource source(w.arrival_order);
  const RunReport report = exec.Run(&source);
  EXPECT_GT(report.window_stats.revisions, 0);
  // First emissions appear immediately: near-zero response latency.
  const auto latencies = ResponseLatencies(report.results);
  const DistributionSummary s = Summarize(latencies);
  EXPECT_LT(s.p50, static_cast<double>(Millis(5)));
}

TEST(QueryExecutorTest, IncrementalFeedMatchesRun) {
  const auto w = Workload(3000);
  const ContinuousQuery q = QueryBuilder("inc")
                                .Tumbling(Millis(50))
                                .Aggregate("sum")
                                .FixedSlack(Millis(20))
                                .Build();
  QueryExecutor a(q);
  VectorSource source(w.arrival_order);
  const RunReport ra = a.Run(&source);

  QueryExecutor b(q);
  for (const Event& e : w.arrival_order) b.Feed(e);
  b.Finish();
  const RunReport rb = b.Report();

  ASSERT_EQ(ra.results.size(), rb.results.size());
  for (size_t i = 0; i < ra.results.size(); ++i) {
    EXPECT_EQ(ra.results[i].bounds, rb.results[i].bounds);
    EXPECT_DOUBLE_EQ(ra.results[i].value, rb.results[i].value);
  }
}

TEST(QueryExecutorTest, ReportToStringMentionsQuery) {
  const auto w = Workload(1000);
  QueryExecutor exec(QueryBuilder("named-query")
                         .Tumbling(Millis(50))
                         .Aggregate("sum")
                         .FixedSlack(Millis(5))
                         .Build());
  VectorSource source(w.arrival_order);
  const RunReport report = exec.Run(&source);
  EXPECT_NE(report.ToString().find("named-query"), std::string::npos);
}

TEST(QueryExecutorTest, HandlerAndWindowViews) {
  QueryExecutor exec(
      QueryBuilder("q").Tumbling(Millis(10)).Aggregate("sum").Build());
  EXPECT_EQ(exec.handler_view().name(), "aq-kslack");
  EXPECT_EQ(exec.handler_view().buffered(), 0u);
  EXPECT_EQ(exec.window_view().live_windows(), 0u);
}

TEST(HandlerFactoryTest, DescribeAllKinds) {
  EXPECT_EQ(DisorderHandlerSpec::PassThrough().Describe(), "pass-through");
  EXPECT_NE(DisorderHandlerSpec::Fixed(Millis(5)).Describe().find("fixed"),
            std::string::npos);
  EXPECT_NE(DisorderHandlerSpec::Mp({}).Describe().find("mp-kslack"),
            std::string::npos);
  EXPECT_NE(DisorderHandlerSpec::Aq({}).Describe().find("aq-kslack"),
            std::string::npos);
  EXPECT_NE(DisorderHandlerSpec::Watermark({}).Describe().find("watermark"),
            std::string::npos);
}

TEST(HandlerFactoryTest, MakesMatchingHandlers) {
  EXPECT_EQ(MakeDisorderHandlerOrDie(DisorderHandlerSpec::PassThrough())->name(),
            "pass-through");
  EXPECT_EQ(MakeDisorderHandlerOrDie(DisorderHandlerSpec::Fixed(1))->name(),
            "fixed-kslack");
  EXPECT_EQ(MakeDisorderHandlerOrDie(DisorderHandlerSpec::Mp({}))->name(),
            "mp-kslack");
  EXPECT_EQ(MakeDisorderHandlerOrDie(DisorderHandlerSpec::Aq({}))->name(),
            "aq-kslack");
  EXPECT_EQ(MakeDisorderHandlerOrDie(DisorderHandlerSpec::Watermark({}))->name(),
            "watermark");
}

TEST(HandlerFactoryTest, RejectsInvalidSpecs) {
  std::unique_ptr<DisorderHandler> handler;
  EXPECT_FALSE(
      MakeDisorderHandler(DisorderHandlerSpec::Fixed(-1), &handler).ok());
  EXPECT_EQ(handler, nullptr);

  EXPECT_FALSE(
      MakeDisorderHandler(DisorderHandlerSpec::Aq({}, -0.5), &handler).ok());

  AqKSlack::Options bad_aq;
  bad_aq.target_quality = 1.5;
  EXPECT_FALSE(
      MakeDisorderHandler(DisorderHandlerSpec::Aq(bad_aq), &handler).ok());

  MpKSlack::Options bad_mp;
  bad_mp.window_size = 0;
  EXPECT_FALSE(
      MakeDisorderHandler(DisorderHandlerSpec::Mp(bad_mp), &handler).ok());

  LbKSlack::Options bad_lb;
  bad_lb.latency_budget = -Millis(1);
  EXPECT_FALSE(
      MakeDisorderHandler(DisorderHandlerSpec::Lb(bad_lb), &handler).ok());

  WatermarkReorderer::Options bad_wm;
  bad_wm.period_events = 0;
  EXPECT_FALSE(
      MakeDisorderHandler(DisorderHandlerSpec::Watermark(bad_wm), &handler)
          .ok());

  // A per-key wrapper validates its inner spec too.
  EXPECT_FALSE(
      MakeDisorderHandler(DisorderHandlerSpec::Fixed(-1).PerKey(), &handler)
          .ok());

  // The checked API also hands back valid handlers.
  EXPECT_TRUE(
      MakeDisorderHandler(DisorderHandlerSpec::Fixed(Millis(5)), &handler)
          .ok());
  ASSERT_NE(handler, nullptr);
  EXPECT_EQ(handler->name(), "fixed-kslack");
}

TEST(HandlerFactoryTest, AqGammaConfiguresPowerModel) {
  auto handler = MakeDisorderHandlerOrDie(DisorderHandlerSpec::Aq({}, 0.5));
  auto* aq = dynamic_cast<AqKSlack*>(handler.get());
  ASSERT_NE(aq, nullptr);
  EXPECT_EQ(aq->quality_model().name(), "power");
}

}  // namespace
}  // namespace streamq
