// Work stealing, adaptive batch sizing, and NUMA-aware arenas must never
// change results. The same placement-invariance that makes rebalancing
// output-preserving (a virtual shard is a whole pipeline, so WHERE it runs
// cannot affect WHAT it emits) covers demand-driven stealing — and batch
// size only changes when work happens, never what each shard observes.
// These tests pin the merged output byte-for-byte against static
// placement across seeds, worker counts, and handler kinds (including
// speculative emit-then-amend), force real steals with a sleep-bound sink
// on a colocated-skew stream, and cover the option validation and NUMA
// topology plumbing introduced with the scheduler.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/cpu_affinity.h"
#include "core/adaptive_batch.h"
#include "core/parallel_runner.h"
#include "quality/speculation.h"
#include "stream/generator.h"
#include "stream/source.h"

namespace streamq {
namespace {

ContinuousQuery FixedKeyedQuery() {
  ContinuousQuery q;
  q.name = "steal_fixed";
  q.handler = DisorderHandlerSpec::Fixed(Millis(50)).PerKey();
  q.window.window = WindowSpec::Tumbling(Millis(50));
  q.window.aggregate.kind = AggKind::kSum;
  q.window.per_key_watermarks = true;
  return q;
}

ContinuousQuery AqKeyedQuery() {
  AqKSlack::Options aq;
  aq.target_quality = 0.95;
  ContinuousQuery q;
  q.name = "steal_aq";
  q.handler = DisorderHandlerSpec::Aq(aq).PerKey();
  q.window.window = WindowSpec::Tumbling(Millis(50));
  q.window.aggregate.kind = AggKind::kMean;
  q.window.per_key_watermarks = true;
  return q;
}

/// Speculative emit-then-amend per key: revisions exercise the kAmend
/// emission path, so steal equivalence covers amended results too.
ContinuousQuery SpeculativeKeyedQuery() {
  SpeculativeHandler::Options sp;
  sp.target_quality = 0.9;
  ContinuousQuery q;
  q.name = "steal_spec";
  q.handler = DisorderHandlerSpec::Speculative(sp).PerKey();
  q.window.window = WindowSpec::Tumbling(Millis(50));
  q.window.aggregate.kind = AggKind::kSum;
  q.window.allowed_lateness = Millis(30);
  q.window.per_key_watermarks = true;
  q.window.engine = WindowedAggregation::Engine::kAmend;
  return q;
}

GeneratedWorkload SkewedWorkload(uint64_t seed, int64_t n = 12000) {
  WorkloadConfig cfg;
  cfg.num_events = n;
  cfg.events_per_second = 10000.0;
  cfg.num_keys = 64;
  cfg.key_zipf_s = 1.2;
  cfg.delay.model = DelayModel::kUniform;
  cfg.delay.a = 0.0;
  cfg.delay.b = 25000.0;  // < K = 50ms: nothing is ever late.
  cfg.seed = seed;
  return GenerateWorkload(cfg);
}

void ExpectSameMergedOutcome(const RunReport& a, const RunReport& b) {
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.results, b.results);
  EXPECT_EQ(a.handler_stats.events_in, b.handler_stats.events_in);
  EXPECT_EQ(a.handler_stats.events_out, b.handler_stats.events_out);
  EXPECT_EQ(a.handler_stats.events_late, b.handler_stats.events_late);
  EXPECT_EQ(a.window_stats.windows_fired, b.window_stats.windows_fired);
  EXPECT_EQ(a.window_stats.revisions, b.window_stats.revisions);
  EXPECT_EQ(a.results_amended, b.results_amended);
}

// --- Steal-vs-static equivalence ------------------------------------------

TEST(StealEquivalenceTest, StealMatchesStaticAcrossSeedsWorkersAndHandlers) {
  const ContinuousQuery queries[] = {FixedKeyedQuery(), AqKeyedQuery(),
                                     SpeculativeKeyedQuery()};
  for (const uint64_t seed : {11u, 29u}) {
    const auto w = SkewedWorkload(seed, 8000);
    for (const size_t workers : {2u, 4u}) {
      for (const ContinuousQuery& q : queries) {
        ParallelOptions static_opts;
        static_opts.batch_size = 64;
        static_opts.virtual_shards = 16;
        ShardedKeyedRunner static_runner(q, workers, static_opts);
        VectorSource s1(w.arrival_order);
        const RunReport static_report = static_runner.Run(&s1);
        ASSERT_TRUE(static_report.status.ok())
            << static_report.status.ToString();
        EXPECT_EQ(static_runner.steals(), 0);
        EXPECT_EQ(static_report.segments_stolen, 0);

        ParallelOptions steal_opts = static_opts;
        steal_opts.steal = true;
        steal_opts.steal_min_backlog = 64;
        ShardedKeyedRunner steal_runner(q, workers, steal_opts);
        VectorSource s2(w.arrival_order);
        const RunReport stolen = steal_runner.Run(&s2);
        ASSERT_TRUE(stolen.status.ok()) << stolen.status.ToString();

        // Whatever the (timing-dependent) steal schedule was, the merged
        // output is byte-identical, and the accounting is consistent.
        ExpectSameMergedOutcome(static_report, stolen);
        EXPECT_EQ(stolen.segments_stolen, steal_runner.steals());
        int64_t stolen_total = 0;
        int64_t donated_total = 0;
        for (const WorkerLoad& load : steal_runner.worker_loads()) {
          stolen_total += load.segments_stolen;
          donated_total += load.segments_donated;
        }
        EXPECT_EQ(stolen_total, steal_runner.steals());
        EXPECT_EQ(donated_total, steal_runner.steals());
      }
    }
  }
}

TEST(StealEquivalenceTest, StealComposesWithRebalance) {
  const auto w = SkewedWorkload(7);

  ParallelOptions static_opts;
  static_opts.batch_size = 64;
  static_opts.virtual_shards = 16;
  ShardedKeyedRunner static_runner(FixedKeyedQuery(), 3, static_opts);
  VectorSource s1(w.arrival_order);
  const RunReport static_report = static_runner.Run(&s1);

  ParallelOptions both_opts = static_opts;
  both_opts.rebalance = true;
  both_opts.rebalance_interval_batches = 8;
  both_opts.rebalance_threshold = 1.1;
  both_opts.steal = true;
  both_opts.steal_min_backlog = 64;
  ShardedKeyedRunner both_runner(FixedKeyedQuery(), 3, both_opts);
  VectorSource s2(w.arrival_order);
  const RunReport both = both_runner.Run(&s2);
  ASSERT_TRUE(both.status.ok()) << both.status.ToString();

  ExpectSameMergedOutcome(static_report, both);
  EXPECT_EQ(both.shard_migrations, both_runner.migrations());
}

/// Sleeps in the sink, making shard service time dwarf routing time: the
/// one way to make workers starve (and steal) deterministically enough to
/// assert on, even on a single-core machine.
class SlowSinkObserver : public PipelineObserver {
 public:
  void OnHandlerRelease(int64_t released, size_t, TimestampUs) override {
    std::this_thread::sleep_for(std::chrono::microseconds(released));
  }
};

TEST(StealEquivalenceTest, StarvedWorkersActuallySteal) {
  // Keys whose shards all start on worker 0 (placement v % workers), so
  // workers 1..3 begin with nothing to do and go hungry immediately.
  constexpr size_t kWorkers = 4;
  constexpr size_t kVShards = 16;
  std::vector<int64_t> hot_keys;
  for (int64_t k = 0; hot_keys.size() < 12; ++k) {
    if (ShardedKeyedRunner::ShardOf(k, kVShards) % kWorkers == 0) {
      hot_keys.push_back(k);
    }
  }
  std::vector<Event> events;
  events.reserve(16000);
  for (int64_t i = 0; i < 16000; ++i) {
    Event e;
    e.id = i;
    e.event_time = i * 100;  // 10k events/s of stream time, in order.
    e.arrival_time = e.event_time;
    e.key = hot_keys[static_cast<size_t>(i) % hot_keys.size()];
    e.value = 1.0;
    events.push_back(e);
  }

  ParallelOptions opts;
  opts.batch_size = 64;
  opts.virtual_shards = kVShards;
  opts.steal = true;
  opts.steal_min_backlog = 128;
  SlowSinkObserver slow;

  ShardedKeyedRunner steal_runner(FixedKeyedQuery(), kWorkers, opts);
  steal_runner.SetObserver(&slow);
  VectorSource s1(events);
  const RunReport stolen = steal_runner.Run(&s1);
  ASSERT_TRUE(stolen.status.ok()) << stolen.status.ToString();
  EXPECT_GT(steal_runner.steals(), 0);
  EXPECT_NE(stolen.runtime_config.find("steal=on"), std::string::npos);
  EXPECT_NE(stolen.runtime_config.find("steals="), std::string::npos);

  ParallelOptions static_opts = opts;
  static_opts.steal = false;
  ShardedKeyedRunner static_runner(FixedKeyedQuery(), kWorkers, static_opts);
  VectorSource s2(events);
  const RunReport static_report = static_runner.Run(&s2);
  ExpectSameMergedOutcome(static_report, stolen);
}

TEST(StealEquivalenceTest, StealRejectsMultiSourceRuns) {
  ParallelOptions opts;
  opts.steal = true;
  ShardedKeyedRunner runner(FixedKeyedQuery(), 2, opts);
  const auto w = SkewedWorkload(3, 500);
  std::vector<Event> a;
  std::vector<Event> b;
  for (const Event& e : w.arrival_order) {
    (e.key % 2 == 0 ? a : b).push_back(e);
  }
  VectorSource sa(a);
  VectorSource sb(b);
  EventSource* sources[2] = {&sa, &sb};
  EXPECT_DEATH(runner.RunMultiSource(sources),
               "steal requires a single-source run");
}

// --- Adaptive batch sizing ------------------------------------------------

TEST(StealEquivalenceTest, AdaptiveBatchDoesNotChangeResults) {
  const auto w = SkewedWorkload(17);

  ParallelOptions fixed_opts;
  fixed_opts.batch_size = 256;
  fixed_opts.virtual_shards = 16;
  ShardedKeyedRunner fixed_runner(FixedKeyedQuery(), 3, fixed_opts);
  VectorSource s1(w.arrival_order);
  const RunReport fixed_report = fixed_runner.Run(&s1);
  EXPECT_EQ(fixed_runner.final_batch_size(), 256u);

  ParallelOptions ad_opts = fixed_opts;
  ad_opts.adaptive_batch = true;
  ad_opts.min_batch = 32;
  ad_opts.max_batch = 2048;
  ShardedKeyedRunner ad_runner(FixedKeyedQuery(), 3, ad_opts);
  VectorSource s2(w.arrival_order);
  const RunReport adapted = ad_runner.Run(&s2);
  ASSERT_TRUE(adapted.status.ok()) << adapted.status.ToString();

  ExpectSameMergedOutcome(fixed_report, adapted);
  EXPECT_GE(ad_runner.final_batch_size(), 32u);
  EXPECT_LE(ad_runner.final_batch_size(), 2048u);
  EXPECT_NE(adapted.runtime_config.find("batch_final="), std::string::npos);
}

TEST(AdaptiveBatcherTest, ControllerStaysWithinRailsAndTracksPressure) {
  AdaptiveBatcher::Options o;
  o.min_batch = 64;
  o.max_batch = 4096;
  o.initial = 512;
  o.interval_batches = 4;
  AdaptiveBatcher full(o);
  // Saturated queues: the controller must shrink the batch, never past
  // the floor.
  for (int i = 0; i < 400; ++i) full.Observe(1.0, 0.0);
  EXPECT_LT(full.batch(), 512u);
  EXPECT_GE(full.batch(), 64u);
  EXPECT_GT(full.adaptations(), 0);

  AdaptiveBatcher empty(o);
  // Starved queues with cheap service: grow, never past the ceiling.
  for (int i = 0; i < 400; ++i) empty.Observe(0.0, 0.0);
  EXPECT_GT(empty.batch(), 512u);
  EXPECT_LE(empty.batch(), 4096u);

  AdaptiveBatcher slow(o);
  // Service time far past the guard dominates the depth term: shrink even
  // with empty queues.
  for (int i = 0; i < 400; ++i) slow.Observe(0.0, 50000.0);
  EXPECT_LT(slow.batch(), 512u);
}

// --- NUMA arena pools -----------------------------------------------------

TEST(StealEquivalenceTest, NumaArenaDoesNotChangeResults) {
  const auto w = SkewedWorkload(23);

  ParallelOptions plain_opts;
  plain_opts.batch_size = 64;
  plain_opts.virtual_shards = 16;
  ShardedKeyedRunner plain_runner(FixedKeyedQuery(), 3, plain_opts);
  VectorSource s1(w.arrival_order);
  const RunReport plain = plain_runner.Run(&s1);

  ParallelOptions numa_opts = plain_opts;
  numa_opts.numa_arena = true;
  ShardedKeyedRunner numa_runner(FixedKeyedQuery(), 3, numa_opts);
  VectorSource s2(w.arrival_order);
  const RunReport numa = numa_runner.Run(&s2);
  ASSERT_TRUE(numa.status.ok()) << numa.status.ToString();

  ExpectSameMergedOutcome(plain, numa);
  EXPECT_NE(numa.runtime_config.find("numa=on"), std::string::npos);
  // Every batch lands somewhere in the node accounting.
  int64_t local = 0;
  int64_t remote = 0;
  int64_t batches = 0;
  for (const WorkerLoad& load : numa_runner.worker_loads()) {
    local += load.node_local_batches;
    remote += load.node_remote_batches;
    batches += load.batches_routed;
  }
  EXPECT_EQ(local + remote, batches);
}

TEST(NumaTopologyTest, SystemTopologyIsSane) {
  const NumaTopology& topo = NumaTopology::System();
  EXPECT_GE(topo.node_count(), 1);
  const int node = topo.NodeOfCurrentThread();
  EXPECT_GE(node, 0);
  EXPECT_LT(node, topo.node_count());
}

TEST(NumaTopologyTest, FromCpuListsParsesRangesAndSingles) {
  auto topo = NumaTopology::FromCpuLists({"0-3,8", "4-7,9-11"});
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  EXPECT_EQ(topo.value().node_count(), 2);
  EXPECT_EQ(topo.value().NodeOfCore(0), 0);
  EXPECT_EQ(topo.value().NodeOfCore(3), 0);
  EXPECT_EQ(topo.value().NodeOfCore(8), 0);
  EXPECT_EQ(topo.value().NodeOfCore(4), 1);
  EXPECT_EQ(topo.value().NodeOfCore(11), 1);
  // Unknown and out-of-range cores fall back to node 0 — never an index
  // fault on a machine with more cores than the parsed lists cover.
  EXPECT_EQ(topo.value().NodeOfCore(64), 0);
  EXPECT_EQ(topo.value().NodeOfCore(-1), 0);
}

TEST(NumaTopologyTest, FromCpuListsRejectsGarbage) {
  EXPECT_FALSE(NumaTopology::FromCpuLists({"0-"}).ok());
  EXPECT_FALSE(NumaTopology::FromCpuLists({"3-1"}).ok());
  EXPECT_FALSE(NumaTopology::FromCpuLists({"x,2"}).ok());
  // No lists at all degrades to the one-node fallback instead of failing.
  auto none = NumaTopology::FromCpuLists({});
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.value().node_count(), 1);
}

// --- Option validation ----------------------------------------------------

TEST(ParallelOptionsValidateTest, RejectsBadNumericsWithHints) {
  ParallelOptions ok;
  EXPECT_TRUE(ok.Validate().ok());

  ParallelOptions o1;
  o1.rebalance_interval_batches = 0;
  const Status s1 = o1.Validate();
  EXPECT_FALSE(s1.ok());
  EXPECT_NE(s1.message().find("did you mean 32?"), std::string::npos);

  ParallelOptions o2;
  o2.rebalance_threshold = 0.8;
  const Status s2 = o2.Validate();
  EXPECT_FALSE(s2.ok());
  EXPECT_NE(s2.message().find("did you mean 1.25?"), std::string::npos);

  ParallelOptions o3;
  o3.rebalance_decay = 1.5;
  const Status s3 = o3.Validate();
  EXPECT_FALSE(s3.ok());
  EXPECT_NE(s3.message().find("did you mean 0.5?"), std::string::npos);

  ParallelOptions o4;
  o4.steal_min_backlog = -1;
  const Status s4 = o4.Validate();
  EXPECT_FALSE(s4.ok());
  EXPECT_NE(s4.message().find("did you mean 1024?"), std::string::npos);

  ParallelOptions o5;
  o5.batch_size = 0;
  EXPECT_FALSE(o5.Validate().ok());

  ParallelOptions o6;
  o6.max_batch = 16;  // < min_batch (64).
  EXPECT_FALSE(o6.Validate().ok());

  ParallelOptions o7;
  o7.adaptive_batch = true;
  o7.batch_size = 16;  // Outside [min_batch, max_batch].
  EXPECT_FALSE(o7.Validate().ok());

  ParallelOptions o8;
  o8.feed_max_attempts = 0;
  EXPECT_FALSE(o8.Validate().ok());
}

TEST(ParallelOptionsValidateTest, RunnerConstructorChecksOptions) {
  ParallelOptions bad;
  bad.rebalance_threshold = 0.5;
  EXPECT_DEATH(ShardedKeyedRunner(FixedKeyedQuery(), 2, bad),
               "rebalance_threshold");
}

}  // namespace
}  // namespace streamq
