#include "quality/quality_metrics.h"

#include <gtest/gtest.h>

#include "disorder/fixed_kslack.h"
#include "tests/test_util.h"
#include "window/window_operator.h"

namespace streamq {
namespace {

using testutil::E;

AggregateSpec Sum() {
  AggregateSpec s;
  s.kind = AggKind::kSum;
  return s;
}

WindowResult MakeResult(TimestampUs start, TimestampUs end, double value,
                        int64_t count, TimestampUs emit, bool revision = false,
                        int32_t rev_index = 0) {
  WindowResult r;
  r.bounds = {start, end};
  r.value = value;
  r.tuple_count = count;
  r.emit_stream_time = emit;
  r.is_revision = revision;
  r.revision_index = rev_index;
  return r;
}

TEST(QualityMetricsTest, PerfectRun) {
  const std::vector<Event> events = {E(1, 10, 10), E(2, 20, 20)};
  const OracleEvaluator oracle(events, WindowSpec::Tumbling(100), Sum());
  const std::vector<WindowResult> produced = {MakeResult(0, 100, 3.0, 2, 150)};
  const QualityReport report = EvaluateQuality(produced, oracle);
  ASSERT_EQ(report.per_window.size(), 1u);
  EXPECT_DOUBLE_EQ(report.per_window[0].coverage, 1.0);
  EXPECT_DOUBLE_EQ(report.per_window[0].value_quality, 1.0);
  EXPECT_DOUBLE_EQ(report.per_window[0].relative_error, 0.0);
  EXPECT_EQ(report.per_window[0].response_latency_us, 50);
  EXPECT_EQ(report.missed_windows, 0);
  EXPECT_EQ(report.spurious_windows, 0);
  EXPECT_DOUBLE_EQ(report.FractionMeeting(0.99), 1.0);
}

TEST(QualityMetricsTest, PartialCoverageAndError) {
  const std::vector<Event> events = {E(1, 10, 10), E(2, 20, 20),
                                     E(3, 30, 30), E(4, 40, 40)};
  const OracleEvaluator oracle(events, WindowSpec::Tumbling(100), Sum());
  // Produced saw only values 1+2=3 of the true 10: coverage 0.5,
  // relative error 0.7.
  const std::vector<WindowResult> produced = {MakeResult(0, 100, 3.0, 2, 100)};
  const QualityReport report = EvaluateQuality(produced, oracle);
  ASSERT_EQ(report.per_window.size(), 1u);
  EXPECT_DOUBLE_EQ(report.per_window[0].coverage, 0.5);
  EXPECT_NEAR(report.per_window[0].relative_error, 0.7, 1e-12);
  EXPECT_NEAR(report.per_window[0].value_quality, 0.3, 1e-12);
}

TEST(QualityMetricsTest, MissedWindowsCounted) {
  const std::vector<Event> events = {E(1, 10, 10), E(2, 150, 150)};
  const OracleEvaluator oracle(events, WindowSpec::Tumbling(100), Sum());
  const std::vector<WindowResult> produced = {MakeResult(0, 100, 1.0, 1, 100)};
  const QualityReport report = EvaluateQuality(produced, oracle);
  EXPECT_EQ(report.missed_windows, 1);  // [100,200) never produced.
  EXPECT_DOUBLE_EQ(report.MeanQualityIncludingMissed(), 0.5);
  EXPECT_DOUBLE_EQ(report.FractionMeeting(0.9), 0.5);
}

TEST(QualityMetricsTest, SpuriousWindowsCounted) {
  const std::vector<Event> events = {E(1, 10, 10)};
  const OracleEvaluator oracle(events, WindowSpec::Tumbling(100), Sum());
  const std::vector<WindowResult> produced = {
      MakeResult(0, 100, 1.0, 1, 100), MakeResult(500, 600, 9.0, 1, 600)};
  const QualityReport report = EvaluateQuality(produced, oracle);
  EXPECT_EQ(report.spurious_windows, 1);
  EXPECT_EQ(report.per_window.size(), 1u);
}

TEST(QualityMetricsTest, FirstVsFinalEmission) {
  const std::vector<Event> events = {E(1, 10, 10), E(2, 20, 20)};
  const OracleEvaluator oracle(events, WindowSpec::Tumbling(100), Sum());
  const std::vector<WindowResult> produced = {
      MakeResult(0, 100, 1.0, 1, 100),               // First: half the sum.
      MakeResult(0, 100, 3.0, 2, 150, true, 1),      // Revision: exact.
  };
  QualityEvalOptions first;
  first.use_final_emission = false;
  const QualityReport rf = EvaluateQuality(produced, oracle, first);
  EXPECT_NEAR(rf.per_window[0].value_quality, 1.0 - 2.0 / 3.0, 1e-12);

  QualityEvalOptions final_opt;
  final_opt.use_final_emission = true;
  const QualityReport rl = EvaluateQuality(produced, oracle, final_opt);
  EXPECT_DOUBLE_EQ(rl.per_window[0].value_quality, 1.0);
  // Latency is judged on the FIRST emission in both modes.
  EXPECT_EQ(rl.per_window[0].response_latency_us, 0);
}

TEST(QualityMetricsTest, NearZeroTruthUsesEpsilon) {
  const std::vector<Event> events = {E(1, 10, 10)};  // Value 1.
  OracleEvaluator oracle(events, WindowSpec::Tumbling(100), Sum());
  // Pretend produced is 0.0 while truth is 1.0: error 1.0 -> quality 0.
  const std::vector<WindowResult> produced = {MakeResult(0, 100, 0.0, 0, 100)};
  const QualityReport report = EvaluateQuality(produced, oracle);
  EXPECT_DOUBLE_EQ(report.per_window[0].value_quality, 0.0);
}

TEST(QualityMetricsTest, ResponseLatenciesSkipRevisions) {
  const std::vector<WindowResult> results = {
      MakeResult(0, 100, 1.0, 1, 160),
      MakeResult(0, 100, 2.0, 2, 220, true, 1),
      MakeResult(100, 200, 1.0, 1, 230),
  };
  const auto latencies = ResponseLatencies(results);
  ASSERT_EQ(latencies.size(), 2u);
  EXPECT_DOUBLE_EQ(latencies[0], 60.0);
  EXPECT_DOUBLE_EQ(latencies[1], 30.0);
}

TEST(QualityMetricsTest, EndToEndFullSlackIsPerfect) {
  const auto w = testutil::DisorderedWorkload(3000);
  const WindowSpec spec = WindowSpec::Tumbling(Millis(20));
  WindowedAggregation::Options o;
  o.window = spec;
  o.aggregate = Sum();
  CollectingResultSink results;
  WindowedAggregation op(o, &results);
  FixedKSlack handler(Seconds(1000));
  testutil::RunHandler(&handler, w.arrival_order, &op);

  const OracleEvaluator oracle(w.arrival_order, spec, Sum());
  const QualityReport report = EvaluateQuality(results.results, oracle);
  EXPECT_EQ(report.missed_windows, 0);
  EXPECT_EQ(report.spurious_windows, 0);
  EXPECT_NEAR(report.value_quality.mean, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(report.coverage.mean, 1.0);
}

TEST(QualityMetricsTest, SmallerSlackLowersQuality) {
  const auto w = testutil::DisorderedWorkload(5000);
  const WindowSpec spec = WindowSpec::Tumbling(Millis(20));
  double prev_quality = -1.0;
  for (DurationUs k : {Millis(1), Millis(10), Millis(200)}) {
    WindowedAggregation::Options o;
    o.window = spec;
    o.aggregate = Sum();
    CollectingResultSink results;
    WindowedAggregation op(o, &results);
    FixedKSlack handler(k);
    testutil::RunHandler(&handler, w.arrival_order, &op);
    const OracleEvaluator oracle(w.arrival_order, spec, Sum());
    const QualityReport report = EvaluateQuality(results.results, oracle);
    const double q = report.MeanQualityIncludingMissed();
    EXPECT_GT(q, prev_quality) << "K=" << k;
    prev_quality = q;
  }
  EXPECT_GT(prev_quality, 0.99);  // 200ms slack covers ~1-e^-10 of delays.
}

TEST(QualityMetricsTest, ReportToString) {
  const std::vector<Event> events = {E(1, 10, 10)};
  const OracleEvaluator oracle(events, WindowSpec::Tumbling(100), Sum());
  const QualityReport report =
      EvaluateQuality({MakeResult(0, 100, 1.0, 1, 100)}, oracle);
  EXPECT_NE(report.ToString().find("QualityReport{"), std::string::npos);
}

}  // namespace
}  // namespace streamq
