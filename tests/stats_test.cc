#include "common/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace streamq {
namespace {

TEST(RunningMomentsTest, Empty) {
  RunningMoments m;
  EXPECT_EQ(m.count(), 0);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
}

TEST(RunningMomentsTest, SingleValue) {
  RunningMoments m;
  m.Add(7.5);
  EXPECT_EQ(m.count(), 1);
  EXPECT_DOUBLE_EQ(m.mean(), 7.5);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
  EXPECT_DOUBLE_EQ(m.min(), 7.5);
  EXPECT_DOUBLE_EQ(m.max(), 7.5);
}

TEST(RunningMomentsTest, KnownSequence) {
  RunningMoments m;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.Add(v);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_DOUBLE_EQ(m.variance(), 4.0);  // Classic textbook example.
  EXPECT_DOUBLE_EQ(m.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(m.min(), 2.0);
  EXPECT_DOUBLE_EQ(m.max(), 9.0);
  EXPECT_DOUBLE_EQ(m.sum(), 40.0);
}

TEST(RunningMomentsTest, MergeMatchesCombinedStream) {
  Rng rng(7);
  RunningMoments all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextGaussian() * 3.0 + 1.0;
    all.Add(v);
    (i < 400 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningMomentsTest, MergeWithEmpty) {
  RunningMoments a, b;
  a.Add(1.0);
  a.Add(3.0);
  const double mean = a.mean();
  a.Merge(b);  // No-op.
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.Merge(a);  // Copy.
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2);
}

TEST(RunningMomentsTest, Reset) {
  RunningMoments m;
  m.Add(5.0);
  m.Reset();
  EXPECT_EQ(m.count(), 0);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
}

TEST(EwmaTest, FirstSamplePassesThrough) {
  Ewma e(0.5);
  EXPECT_TRUE(e.empty());
  e.Add(10.0);
  EXPECT_FALSE(e.empty());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(EwmaTest, ConvergesToConstant) {
  Ewma e(0.2);
  for (int i = 0; i < 200; ++i) e.Add(3.0);
  EXPECT_NEAR(e.value(), 3.0, 1e-12);
}

TEST(EwmaTest, WeightsNewSamples) {
  Ewma e(0.5);
  e.Add(0.0);
  e.Add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.Add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.5);
}

TEST(EwmaTest, Reset) {
  Ewma e(0.5);
  e.Add(1.0);
  e.Reset();
  EXPECT_TRUE(e.empty());
}

TEST(ReservoirSampleTest, KeepsAllBelowCapacity) {
  ReservoirSample r(100, 1);
  for (int i = 0; i < 50; ++i) r.Add(i);
  EXPECT_EQ(r.seen(), 50);
  EXPECT_EQ(r.samples().size(), 50u);
}

TEST(ReservoirSampleTest, CapsAtCapacity) {
  ReservoirSample r(64, 1);
  for (int i = 0; i < 10000; ++i) r.Add(i);
  EXPECT_EQ(r.seen(), 10000);
  EXPECT_EQ(r.samples().size(), 64u);
}

TEST(ReservoirSampleTest, IsApproximatelyUniform) {
  // Mean of reservoir over uniform [0, 1) input should be near 0.5.
  ReservoirSample r(512, 99);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) r.Add(rng.NextDouble());
  double sum = 0.0;
  for (double v : r.samples()) sum += v;
  EXPECT_NEAR(sum / static_cast<double>(r.samples().size()), 0.5, 0.05);
}

TEST(ReservoirSampleTest, QuantileOfKnownData) {
  ReservoirSample r(1000, 1);
  for (int i = 1; i <= 1000; ++i) r.Add(i);  // Below capacity: exact.
  EXPECT_NEAR(r.Quantile(0.5), 500.5, 1.0);
  EXPECT_NEAR(r.Quantile(0.99), 990.0, 1.5);
}

TEST(ExactQuantileTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(ExactQuantile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(ExactQuantile({42.0}, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(ExactQuantile({42.0}, 1.0), 42.0);
  EXPECT_DOUBLE_EQ(ExactQuantile({1.0, 2.0}, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(ExactQuantile({3.0, 1.0, 2.0}, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(ExactQuantile({3.0, 1.0, 2.0}, 0.0), 1.0);
}

TEST(ExactQuantileTest, ClampsQ) {
  EXPECT_DOUBLE_EQ(ExactQuantile({1.0, 2.0, 3.0}, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(ExactQuantile({1.0, 2.0, 3.0}, 1.5), 3.0);
}

class P2QuantileParamTest : public ::testing::TestWithParam<double> {};

TEST_P(P2QuantileParamTest, TracksExactQuantileOnGaussian) {
  const double q = GetParam();
  P2Quantile est(q);
  Rng rng(11);
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.NextGaussian();
    est.Add(v);
    all.push_back(v);
  }
  const double exact = ExactQuantile(all, q);
  EXPECT_NEAR(est.value(), exact, 0.06) << "q=" << q;
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2QuantileParamTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 0.95,
                                           0.99));

TEST(P2QuantileTest, ExactForFewSamples) {
  P2Quantile est(0.5);
  est.Add(3.0);
  EXPECT_DOUBLE_EQ(est.value(), 3.0);
  est.Add(1.0);
  EXPECT_DOUBLE_EQ(est.value(), 2.0);
  est.Add(2.0);
  EXPECT_DOUBLE_EQ(est.value(), 2.0);
}

TEST(P2QuantileTest, EmptyIsZero) {
  P2Quantile est(0.9);
  EXPECT_DOUBLE_EQ(est.value(), 0.0);
  EXPECT_EQ(est.count(), 0);
}

TEST(SlidingWindowQuantileTest, WindowEviction) {
  SlidingWindowQuantile s(4);
  for (double v : {1.0, 2.0, 3.0, 4.0, 100.0, 100.0, 100.0, 100.0}) s.Add(v);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 100.0);  // Old small values evicted.
  EXPECT_EQ(s.seen(), 8);
}

TEST(SlidingWindowQuantileTest, QuantileAndCdfConsistency) {
  SlidingWindowQuantile s(1000);
  for (int i = 1; i <= 1000; ++i) s.Add(i);
  const double p95 = s.Quantile(0.95);
  EXPECT_NEAR(p95, 950.0, 2.0);
  EXPECT_NEAR(s.CdfAt(p95), 0.95, 0.01);
  EXPECT_DOUBLE_EQ(s.CdfAt(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.CdfAt(1e9), 1.0);
}

TEST(SlidingWindowQuantileTest, EmptyDefaults) {
  SlidingWindowQuantile s(10);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.0);
  // Optimistic prior: no observed delays means "everything on time".
  EXPECT_DOUBLE_EQ(s.CdfAt(123.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 0.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
}

TEST(SlidingWindowQuantileTest, MaxAndMean) {
  SlidingWindowQuantile s(3);
  s.Add(1.0);
  s.Add(5.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.Max(), 5.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
  s.Add(10.0);  // Evicts 1.0.
  EXPECT_DOUBLE_EQ(s.Max(), 10.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 6.0);
}

TEST(SlidingWindowQuantileTest, TracksDistributionShift) {
  // After a step change, the windowed quantile must follow the new regime —
  // the property the adaptive buffer depends on.
  SlidingWindowQuantile s(500);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) s.Add(rng.NextUniform(0.0, 10.0));
  EXPECT_LT(s.Quantile(0.95), 11.0);
  for (int i = 0; i < 2000; ++i) s.Add(rng.NextUniform(100.0, 110.0));
  EXPECT_GT(s.Quantile(0.5), 99.0);
}

TEST(SummarizeTest, EmptyInput) {
  const DistributionSummary s = Summarize({});
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(SummarizeTest, KnownPercentiles) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  const DistributionSummary s = Summarize(v);
  EXPECT_EQ(s.count, 100);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 0.01);
  EXPECT_NEAR(s.p90, 90.1, 0.01);
  EXPECT_NEAR(s.p99, 99.01, 0.01);
}

TEST(SummarizeTest, ToStringMentionsFields) {
  const DistributionSummary s = Summarize({1.0, 2.0, 3.0});
  const std::string str = s.ToString();
  EXPECT_NE(str.find("n=3"), std::string::npos);
  EXPECT_NE(str.find("mean="), std::string::npos);
  EXPECT_NE(str.find("p99="), std::string::npos);
}

}  // namespace
}  // namespace streamq
