#include "stream/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/stats.h"
#include "stream/disorder_metrics.h"

namespace streamq {
namespace {

WorkloadConfig SmallConfig() {
  WorkloadConfig cfg;
  cfg.num_events = 5000;
  cfg.events_per_second = 10000.0;
  cfg.delay.model = DelayModel::kExponential;
  cfg.delay.a = 20000.0;
  cfg.seed = 42;
  return cfg;
}

TEST(WorkloadConfigTest, DefaultValidates) {
  EXPECT_TRUE(WorkloadConfig{}.Validate().ok());
}

TEST(WorkloadConfigTest, RejectsBadParameters) {
  WorkloadConfig cfg;
  cfg.num_events = 0;
  EXPECT_FALSE(cfg.Validate().ok());

  cfg = WorkloadConfig{};
  cfg.events_per_second = -1.0;
  EXPECT_FALSE(cfg.Validate().ok());

  cfg = WorkloadConfig{};
  cfg.num_keys = 0;
  EXPECT_FALSE(cfg.Validate().ok());

  cfg = WorkloadConfig{};
  cfg.delayed_fraction = 1.5;
  EXPECT_FALSE(cfg.Validate().ok());

  cfg = WorkloadConfig{};
  cfg.dynamics.kind = DynamicsKind::kSine;
  cfg.dynamics.period = 0;
  EXPECT_FALSE(cfg.Validate().ok());

  cfg = WorkloadConfig{};
  cfg.dynamics.kind = DynamicsKind::kRamp;
  cfg.dynamics.t0 = 100;
  cfg.dynamics.t1 = 100;
  EXPECT_FALSE(cfg.Validate().ok());

  cfg = WorkloadConfig{};
  cfg.dynamics.kind = DynamicsKind::kBurst;
  cfg.dynamics.duration = 0;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(GenerateWorkloadTest, ProducesRequestedCount) {
  const GeneratedWorkload w = GenerateWorkload(SmallConfig());
  EXPECT_EQ(w.arrival_order.size(), 5000u);
}

TEST(GenerateWorkloadTest, ArrivalOrderIsSorted) {
  const GeneratedWorkload w = GenerateWorkload(SmallConfig());
  EXPECT_TRUE(IsArrivalTimeOrdered(w.arrival_order));
}

TEST(GenerateWorkloadTest, ArrivalNeverBeforeEvent) {
  const GeneratedWorkload w = GenerateWorkload(SmallConfig());
  for (const Event& e : w.arrival_order) {
    EXPECT_GE(e.arrival_time, e.event_time);
  }
}

TEST(GenerateWorkloadTest, IdsAreEventTimeRanks) {
  const GeneratedWorkload w = GenerateWorkload(SmallConfig());
  const std::vector<Event> in_order = w.InOrder();
  EXPECT_TRUE(IsEventTimeOrdered(in_order));
  for (size_t i = 0; i < in_order.size(); ++i) {
    EXPECT_EQ(in_order[i].id, static_cast<int64_t>(i));
  }
}

TEST(GenerateWorkloadTest, DeterministicForEqualSeeds) {
  const GeneratedWorkload a = GenerateWorkload(SmallConfig());
  const GeneratedWorkload b = GenerateWorkload(SmallConfig());
  ASSERT_EQ(a.arrival_order.size(), b.arrival_order.size());
  EXPECT_EQ(a.arrival_order, b.arrival_order);
}

TEST(GenerateWorkloadTest, SeedChangesStream) {
  WorkloadConfig cfg = SmallConfig();
  cfg.seed = 43;
  const GeneratedWorkload a = GenerateWorkload(SmallConfig());
  const GeneratedWorkload b = GenerateWorkload(cfg);
  EXPECT_NE(a.arrival_order, b.arrival_order);
}

TEST(GenerateWorkloadTest, EventRateApproximatelyHonored) {
  WorkloadConfig cfg = SmallConfig();
  cfg.num_events = 50000;
  const GeneratedWorkload w = GenerateWorkload(cfg);
  const std::vector<Event> in_order = w.InOrder();
  const double span_s = ToSeconds(in_order.back().event_time -
                                  in_order.front().event_time);
  const double rate = static_cast<double>(cfg.num_events) / span_s;
  EXPECT_NEAR(rate, cfg.events_per_second, cfg.events_per_second * 0.05);
}

TEST(GenerateWorkloadTest, RegularArrivalsAreEquallySpaced) {
  WorkloadConfig cfg = SmallConfig();
  cfg.poisson_arrivals = false;
  cfg.delay.model = DelayModel::kConstant;
  cfg.delay.a = 0.0;
  const GeneratedWorkload w = GenerateWorkload(cfg);
  const std::vector<Event> in_order = w.InOrder();
  const DurationUs gap = in_order[1].event_time - in_order[0].event_time;
  for (size_t i = 2; i < 100; ++i) {
    EXPECT_EQ(in_order[i].event_time - in_order[i - 1].event_time, gap);
  }
}

TEST(GenerateWorkloadTest, ZeroDelayMeansInOrder) {
  WorkloadConfig cfg = SmallConfig();
  cfg.delay.model = DelayModel::kConstant;
  cfg.delay.a = 0.0;
  const GeneratedWorkload w = GenerateWorkload(cfg);
  EXPECT_TRUE(IsEventTimeOrdered(w.arrival_order));
}

TEST(GenerateWorkloadTest, ConstantDelayAlsoInOrder) {
  // A constant shift preserves order.
  WorkloadConfig cfg = SmallConfig();
  cfg.delay.model = DelayModel::kConstant;
  cfg.delay.a = 123456.0;
  const GeneratedWorkload w = GenerateWorkload(cfg);
  EXPECT_TRUE(IsEventTimeOrdered(w.arrival_order));
}

TEST(GenerateWorkloadTest, RandomDelaysCreateDisorder) {
  const GeneratedWorkload w = GenerateWorkload(SmallConfig());
  const DisorderStats stats = ComputeDisorderStats(w.arrival_order);
  EXPECT_GT(stats.out_of_order_fraction, 0.2);
  EXPECT_GT(stats.max_lateness_us, 0);
}

TEST(GenerateWorkloadTest, DelayedFractionLimitsDisorder) {
  WorkloadConfig cfg = SmallConfig();
  cfg.delayed_fraction = 0.05;
  const GeneratedWorkload w = GenerateWorkload(cfg);
  const DisorderStats stats = ComputeDisorderStats(w.arrival_order);
  // Only ~5% of tuples are delayed, so disorder is bounded accordingly
  // (each delayed tuple can make at most itself late).
  EXPECT_LT(stats.out_of_order_fraction, 0.1);
}

TEST(GenerateWorkloadTest, KeysStayInRange) {
  WorkloadConfig cfg = SmallConfig();
  cfg.num_keys = 7;
  const GeneratedWorkload w = GenerateWorkload(cfg);
  std::set<int64_t> seen;
  for (const Event& e : w.arrival_order) {
    ASSERT_GE(e.key, 0);
    ASSERT_LT(e.key, 7);
    seen.insert(e.key);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(GenerateWorkloadTest, ZipfKeysAreSkewed) {
  WorkloadConfig cfg = SmallConfig();
  cfg.num_events = 20000;
  cfg.num_keys = 100;
  cfg.key_zipf_s = 1.2;
  const GeneratedWorkload w = GenerateWorkload(cfg);
  int64_t key0 = 0;
  for (const Event& e : w.arrival_order) {
    if (e.key == 0) ++key0;
  }
  // Uniform would give ~200; Zipf(1.2) head should be far above.
  EXPECT_GT(key0, 1000);
}

TEST(GenerateWorkloadTest, SingleKeyByDefault) {
  const GeneratedWorkload w = GenerateWorkload(SmallConfig());
  for (const Event& e : w.arrival_order) EXPECT_EQ(e.key, 0);
}

TEST(DelayDynamicsTest, StationaryIsUnit) {
  DelayDynamics d;
  EXPECT_DOUBLE_EQ(d.ScaleAt(0), 1.0);
  EXPECT_DOUBLE_EQ(d.ScaleAt(Seconds(100)), 1.0);
}

TEST(DelayDynamicsTest, StepSwitchesAtT0) {
  DelayDynamics d;
  d.kind = DynamicsKind::kStep;
  d.factor = 4.0;
  d.t0 = Seconds(10);
  EXPECT_DOUBLE_EQ(d.ScaleAt(Seconds(9)), 1.0);
  EXPECT_DOUBLE_EQ(d.ScaleAt(Seconds(10)), 4.0);
  EXPECT_DOUBLE_EQ(d.ScaleAt(Seconds(100)), 4.0);
}

TEST(DelayDynamicsTest, RampInterpolates) {
  DelayDynamics d;
  d.kind = DynamicsKind::kRamp;
  d.factor = 3.0;
  d.t0 = Seconds(10);
  d.t1 = Seconds(20);
  EXPECT_DOUBLE_EQ(d.ScaleAt(Seconds(10)), 1.0);
  EXPECT_DOUBLE_EQ(d.ScaleAt(Seconds(15)), 2.0);
  EXPECT_DOUBLE_EQ(d.ScaleAt(Seconds(20)), 3.0);
  EXPECT_DOUBLE_EQ(d.ScaleAt(Seconds(25)), 3.0);
}

TEST(DelayDynamicsTest, SineOscillatesAndStaysPositive) {
  DelayDynamics d;
  d.kind = DynamicsKind::kSine;
  d.amplitude = 2.0;  // Would dip negative without flooring.
  d.period = Seconds(4);
  double lo = 1e9, hi = -1e9;
  for (TimestampUs t = 0; t < Seconds(8); t += Millis(10)) {
    const double s = d.ScaleAt(t);
    EXPECT_GT(s, 0.0);
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  EXPECT_DOUBLE_EQ(lo, 0.05);  // Floored.
  EXPECT_NEAR(hi, 3.0, 0.01);
}

TEST(DelayDynamicsTest, BurstRepeatsWithPeriod) {
  DelayDynamics d;
  d.kind = DynamicsKind::kBurst;
  d.factor = 10.0;
  d.t0 = Seconds(1);
  d.period = Seconds(10);
  d.duration = Seconds(2);
  EXPECT_DOUBLE_EQ(d.ScaleAt(0), 1.0);
  EXPECT_DOUBLE_EQ(d.ScaleAt(Seconds(1)), 10.0);
  EXPECT_DOUBLE_EQ(d.ScaleAt(Seconds(2)), 10.0);
  EXPECT_DOUBLE_EQ(d.ScaleAt(Seconds(4)), 1.0);
  EXPECT_DOUBLE_EQ(d.ScaleAt(Seconds(11)), 10.0);  // Next period.
  EXPECT_DOUBLE_EQ(d.ScaleAt(Seconds(14)), 1.0);
}

TEST(DelayDynamicsTest, StepDynamicsIncreaseLateDelays) {
  WorkloadConfig cfg = SmallConfig();
  cfg.num_events = 20000;
  cfg.dynamics.kind = DynamicsKind::kStep;
  cfg.dynamics.factor = 8.0;
  cfg.dynamics.t0 = Seconds(1);
  const GeneratedWorkload w = GenerateWorkload(cfg);

  RunningMoments before, after;
  for (const Event& e : w.arrival_order) {
    (e.event_time < Seconds(1) ? before : after)
        .Add(static_cast<double>(e.delay()));
  }
  EXPECT_GT(after.mean(), before.mean() * 4.0);
}

TEST(ValueModelTest, ConstantValues) {
  WorkloadConfig cfg = SmallConfig();
  cfg.value.model = ValueModel::kConstant;
  cfg.value.a = 3.25;
  const GeneratedWorkload w = GenerateWorkload(cfg);
  for (const Event& e : w.arrival_order) EXPECT_DOUBLE_EQ(e.value, 3.25);
}

TEST(ValueModelTest, UniformValuesInRange) {
  WorkloadConfig cfg = SmallConfig();
  cfg.value.model = ValueModel::kUniform;
  cfg.value.a = -2.0;
  cfg.value.b = 2.0;
  const GeneratedWorkload w = GenerateWorkload(cfg);
  for (const Event& e : w.arrival_order) {
    EXPECT_GE(e.value, -2.0);
    EXPECT_LT(e.value, 2.0);
  }
}

TEST(ValueModelTest, GaussianMoments) {
  WorkloadConfig cfg = SmallConfig();
  cfg.num_events = 50000;
  cfg.value.model = ValueModel::kGaussian;
  cfg.value.a = 10.0;
  cfg.value.b = 2.0;
  const GeneratedWorkload w = GenerateWorkload(cfg);
  RunningMoments m;
  for (const Event& e : w.arrival_order) m.Add(e.value);
  EXPECT_NEAR(m.mean(), 10.0, 0.1);
  EXPECT_NEAR(m.stddev(), 2.0, 0.1);
}

TEST(ValueModelTest, RandomWalkIsContinuous) {
  WorkloadConfig cfg = SmallConfig();
  cfg.value.model = ValueModel::kRandomWalk;
  cfg.value.a = 100.0;
  cfg.value.b = 0.5;
  const GeneratedWorkload w = GenerateWorkload(cfg);
  const std::vector<Event> in_order = w.InOrder();
  for (size_t i = 1; i < in_order.size(); ++i) {
    // Steps are N(0, 0.5); 6 sigma bound.
    EXPECT_LT(std::abs(in_order[i].value - in_order[i - 1].value), 3.0);
  }
}

TEST(DescribeTest, SpecsDescribeThemselves) {
  EXPECT_FALSE(SmallConfig().delay.Describe().empty());
  DelayDynamics d;
  EXPECT_EQ(d.Describe(), "stationary");
  d.kind = DynamicsKind::kStep;
  EXPECT_NE(d.Describe().find("step"), std::string::npos);
}

}  // namespace
}  // namespace streamq
