#include "disorder/reorder_buffer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace streamq {
namespace {

Event MakeEvent(int64_t id, TimestampUs ts) {
  Event e;
  e.id = id;
  e.event_time = ts;
  return e;
}

TEST(ReorderBufferTest, StartsEmpty) {
  ReorderBuffer buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.max_size(), 0u);
}

TEST(ReorderBufferTest, PopMinReturnsEarliest) {
  ReorderBuffer buf;
  buf.Push(MakeEvent(0, 300));
  buf.Push(MakeEvent(1, 100));
  buf.Push(MakeEvent(2, 200));
  EXPECT_EQ(buf.MinEventTime(), 100);
  Event e;
  buf.PopMin(&e);
  EXPECT_EQ(e.event_time, 100);
  buf.PopMin(&e);
  EXPECT_EQ(e.event_time, 200);
  buf.PopMin(&e);
  EXPECT_EQ(e.event_time, 300);
  EXPECT_TRUE(buf.empty());
}

TEST(ReorderBufferTest, TieBrokenById) {
  ReorderBuffer buf;
  buf.Push(MakeEvent(5, 100));
  buf.Push(MakeEvent(2, 100));
  buf.Push(MakeEvent(9, 100));
  Event e;
  buf.PopMin(&e);
  EXPECT_EQ(e.id, 2);
  buf.PopMin(&e);
  EXPECT_EQ(e.id, 5);
  buf.PopMin(&e);
  EXPECT_EQ(e.id, 9);
}

TEST(ReorderBufferTest, PopUpToReleasesPrefixOnly) {
  ReorderBuffer buf;
  for (int i = 0; i < 10; ++i) buf.Push(MakeEvent(i, i * 100));
  std::vector<Event> out;
  const size_t n = buf.PopUpTo(450, &out);
  EXPECT_EQ(n, 5u);  // ts 0, 100, 200, 300, 400.
  EXPECT_EQ(buf.size(), 5u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].event_time, out[i].event_time);
  }
  EXPECT_EQ(out.back().event_time, 400);
}

TEST(ReorderBufferTest, PopUpToInclusiveThreshold) {
  ReorderBuffer buf;
  buf.Push(MakeEvent(0, 100));
  std::vector<Event> out;
  EXPECT_EQ(buf.PopUpTo(99, &out), 0u);
  EXPECT_EQ(buf.PopUpTo(100, &out), 1u);
}

TEST(ReorderBufferTest, MaxSizeTracksHighWater) {
  ReorderBuffer buf;
  for (int i = 0; i < 5; ++i) buf.Push(MakeEvent(i, i));
  std::vector<Event> out;
  buf.PopUpTo(10, &out);
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.max_size(), 5u);
  buf.Push(MakeEvent(9, 9));
  EXPECT_EQ(buf.max_size(), 5u);  // Unchanged.
}

TEST(ReorderBufferTest, ClearEmpties) {
  ReorderBuffer buf;
  buf.Push(MakeEvent(0, 1));
  buf.Clear();
  EXPECT_TRUE(buf.empty());
}

TEST(ReorderBufferTest, RandomizedHeapProperty) {
  // Property test: pushing N random events and popping them all yields a
  // sorted sequence identical to std::sort.
  Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    ReorderBuffer buf;
    std::vector<Event> reference;
    const int n = static_cast<int>(rng.NextInt(1, 500));
    for (int i = 0; i < n; ++i) {
      const Event e = MakeEvent(i, rng.NextInt(0, 1000));
      buf.Push(e);
      reference.push_back(e);
    }
    std::sort(reference.begin(), reference.end(), EventTimeLess());
    std::vector<Event> popped;
    buf.PopUpTo(kMaxTimestamp, &popped);
    ASSERT_EQ(popped.size(), reference.size());
    for (size_t i = 0; i < popped.size(); ++i) {
      EXPECT_EQ(popped[i].id, reference[i].id) << "trial " << trial;
    }
  }
}

TEST(ReorderBufferTest, InterleavedPushPop) {
  // Pops between pushes must still produce globally plausible order for
  // the released prefixes.
  Rng rng(7);
  ReorderBuffer buf;
  std::vector<Event> released;
  TimestampUs threshold = 0;
  for (int i = 0; i < 1000; ++i) {
    buf.Push(MakeEvent(i, rng.NextInt(threshold, threshold + 200)));
    if (i % 10 == 9) {
      threshold += 50;
      buf.PopUpTo(threshold, &released);
    }
  }
  buf.PopUpTo(kMaxTimestamp, &released);
  EXPECT_EQ(released.size(), 1000u);
  for (size_t i = 1; i < released.size(); ++i) {
    EXPECT_LE(released[i - 1].event_time, released[i].event_time);
  }
}

}  // namespace
}  // namespace streamq
