#include "disorder/reorder_buffer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace streamq {
namespace {

using Engine = ReorderBuffer::Engine;

Event MakeEvent(int64_t id, TimestampUs ts) {
  Event e;
  e.id = id;
  e.event_time = ts;
  return e;
}

/// Every buffer-contract test runs against both engines: the heap is the
/// reference, the bucket ring the default.
class ReorderBufferTest : public ::testing::TestWithParam<Engine> {
 protected:
  ReorderBuffer MakeBuffer() const { return ReorderBuffer(GetParam()); }
};

TEST_P(ReorderBufferTest, StartsEmpty) {
  ReorderBuffer buf = MakeBuffer();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.max_size(), 0u);
}

TEST_P(ReorderBufferTest, PopMinReturnsEarliest) {
  ReorderBuffer buf = MakeBuffer();
  buf.Push(MakeEvent(0, 300));
  buf.Push(MakeEvent(1, 100));
  buf.Push(MakeEvent(2, 200));
  EXPECT_EQ(buf.MinEventTime(), 100);
  Event e;
  buf.PopMin(&e);
  EXPECT_EQ(e.event_time, 100);
  buf.PopMin(&e);
  EXPECT_EQ(e.event_time, 200);
  buf.PopMin(&e);
  EXPECT_EQ(e.event_time, 300);
  EXPECT_TRUE(buf.empty());
}

TEST_P(ReorderBufferTest, TieBrokenById) {
  ReorderBuffer buf = MakeBuffer();
  buf.Push(MakeEvent(5, 100));
  buf.Push(MakeEvent(2, 100));
  buf.Push(MakeEvent(9, 100));
  Event e;
  buf.PopMin(&e);
  EXPECT_EQ(e.id, 2);
  buf.PopMin(&e);
  EXPECT_EQ(e.id, 5);
  buf.PopMin(&e);
  EXPECT_EQ(e.id, 9);
}

TEST_P(ReorderBufferTest, PopUpToReleasesPrefixOnly) {
  ReorderBuffer buf = MakeBuffer();
  for (int i = 0; i < 10; ++i) buf.Push(MakeEvent(i, i * 100));
  std::vector<Event> out;
  const size_t n = buf.PopUpTo(450, &out);
  EXPECT_EQ(n, 5u);  // ts 0, 100, 200, 300, 400.
  EXPECT_EQ(buf.size(), 5u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].event_time, out[i].event_time);
  }
  EXPECT_EQ(out.back().event_time, 400);
}

TEST_P(ReorderBufferTest, PopUpToInclusiveThreshold) {
  ReorderBuffer buf = MakeBuffer();
  buf.Push(MakeEvent(0, 100));
  std::vector<Event> out;
  EXPECT_EQ(buf.PopUpTo(99, &out), 0u);
  EXPECT_EQ(buf.PopUpTo(100, &out), 1u);
}

TEST_P(ReorderBufferTest, MaxSizeTracksHighWater) {
  ReorderBuffer buf = MakeBuffer();
  for (int i = 0; i < 5; ++i) buf.Push(MakeEvent(i, i));
  std::vector<Event> out;
  buf.PopUpTo(10, &out);
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.max_size(), 5u);
  buf.Push(MakeEvent(9, 9));
  EXPECT_EQ(buf.max_size(), 5u);  // Unchanged.
}

TEST_P(ReorderBufferTest, ClearEmpties) {
  ReorderBuffer buf = MakeBuffer();
  buf.Push(MakeEvent(0, 1));
  buf.Clear();
  EXPECT_TRUE(buf.empty());
  // Still usable after Clear.
  buf.Push(MakeEvent(1, 7));
  EXPECT_EQ(buf.MinEventTime(), 7);
}

TEST_P(ReorderBufferTest, PushBatchMatchesPerPush) {
  Rng rng(99);
  std::vector<Event> events;
  for (int i = 0; i < 300; ++i) {
    events.push_back(MakeEvent(i, rng.NextInt(0, 5000)));
  }
  ReorderBuffer a = MakeBuffer();
  ReorderBuffer b = MakeBuffer();
  for (const Event& e : events) a.Push(e);
  b.PushBatch(events);
  std::vector<Event> out_a;
  std::vector<Event> out_b;
  a.DrainInto(&out_a);
  b.DrainInto(&out_b);
  EXPECT_EQ(out_a, out_b);
}

TEST_P(ReorderBufferTest, RandomizedOrderProperty) {
  // Property test: pushing N random events and popping them all yields a
  // sorted sequence identical to std::sort.
  Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    ReorderBuffer buf = MakeBuffer();
    std::vector<Event> reference;
    const int n = static_cast<int>(rng.NextInt(1, 500));
    for (int i = 0; i < n; ++i) {
      const Event e = MakeEvent(i, rng.NextInt(0, 1000));
      buf.Push(e);
      reference.push_back(e);
    }
    std::sort(reference.begin(), reference.end(), EventTimeLess());
    std::vector<Event> popped;
    buf.PopUpTo(kMaxTimestamp, &popped);
    ASSERT_EQ(popped.size(), reference.size());
    for (size_t i = 0; i < popped.size(); ++i) {
      EXPECT_EQ(popped[i].id, reference[i].id) << "trial " << trial;
    }
  }
}

TEST_P(ReorderBufferTest, InterleavedPushPop) {
  // Pops between pushes must still produce globally plausible order for
  // the released prefixes.
  Rng rng(7);
  ReorderBuffer buf = MakeBuffer();
  std::vector<Event> released;
  TimestampUs threshold = 0;
  for (int i = 0; i < 1000; ++i) {
    buf.Push(MakeEvent(i, rng.NextInt(threshold, threshold + 200)));
    if (i % 10 == 9) {
      threshold += 50;
      buf.PopUpTo(threshold, &released);
    }
  }
  buf.PopUpTo(kMaxTimestamp, &released);
  EXPECT_EQ(released.size(), 1000u);
  for (size_t i = 1; i < released.size(); ++i) {
    EXPECT_LE(released[i - 1].event_time, released[i].event_time);
  }
}

INSTANTIATE_TEST_SUITE_P(BothEngines, ReorderBufferTest,
                         ::testing::Values(Engine::kHeap, Engine::kRing),
                         [](const ::testing::TestParamInfo<Engine>& info) {
                           return info.param == Engine::kHeap ? "Heap"
                                                              : "Ring";
                         });

// --- Cross-engine and ring-specific behavior -----------------------------

TEST(ReorderBufferEngines, DefaultIsRingAndSetEngineSwitches) {
  ReorderBuffer buf;
  EXPECT_EQ(buf.engine(), Engine::kRing);
  buf.SetEngine(Engine::kHeap);
  EXPECT_EQ(buf.engine(), Engine::kHeap);
  buf.SetEngine(Engine::kRing);
  EXPECT_EQ(buf.engine(), Engine::kRing);
}

/// Replays an identical interleaved push/pop schedule on both engines and
/// requires byte-identical releases at every step.
void ExpectEnginesAgree(uint32_t seed, TimestampUs time_range,
                        int batch_every) {
  Rng rng(seed);
  ReorderBuffer heap(Engine::kHeap);
  ReorderBuffer ring(Engine::kRing);
  std::vector<Event> schedule;
  TimestampUs base = 0;
  for (int i = 0; i < 3000; ++i) {
    schedule.push_back(MakeEvent(i, base + rng.NextInt(0, time_range)));
    base += time_range / 200 + 1;  // Advancing frontier, K-slack style.
  }
  std::vector<Event> out_heap;
  std::vector<Event> out_ring;
  size_t i = 0;
  while (i < schedule.size()) {
    if (batch_every > 0 && i % static_cast<size_t>(batch_every) == 0) {
      const size_t n =
          std::min<size_t>(static_cast<size_t>(batch_every), schedule.size() - i);
      const std::span<const Event> chunk(schedule.data() + i, n);
      heap.PushBatch(chunk);
      ring.PushBatch(chunk);
      i += n;
    } else {
      heap.Push(schedule[i]);
      ring.Push(schedule[i]);
      ++i;
    }
    if (i % 37 == 0) {
      const TimestampUs threshold = schedule[i - 1].event_time - time_range / 3;
      ASSERT_EQ(heap.PopUpTo(threshold, &out_heap),
                ring.PopUpTo(threshold, &out_ring));
      ASSERT_EQ(out_heap, out_ring);
      ASSERT_EQ(heap.size(), ring.size());
    }
  }
  heap.DrainInto(&out_heap);
  ring.DrainInto(&out_ring);
  EXPECT_EQ(out_heap, out_ring);
  EXPECT_EQ(out_heap.size(), schedule.size());
}

TEST(ReorderBufferEngines, AgreeOnNarrowTimeRange) {
  ExpectEnginesAgree(/*seed=*/11, /*time_range=*/64, /*batch_every=*/0);
}

TEST(ReorderBufferEngines, AgreeOnWideTimeRange) {
  // Span far beyond the initial bucket layout: forces widen rebucketing.
  ExpectEnginesAgree(/*seed=*/12, /*time_range=*/5'000'000, /*batch_every=*/0);
}

TEST(ReorderBufferEngines, AgreeWithBatchedPushes) {
  ExpectEnginesAgree(/*seed=*/13, /*time_range=*/100'000, /*batch_every=*/64);
}

TEST(ReorderBufferEngines, AgreeOnDuplicateTimestamps) {
  // Heavy ties: pop order must fall back to id deterministically.
  Rng rng(21);
  ReorderBuffer heap(Engine::kHeap);
  ReorderBuffer ring(Engine::kRing);
  std::vector<Event> out_heap;
  std::vector<Event> out_ring;
  for (int i = 0; i < 2000; ++i) {
    const Event e = MakeEvent(i, rng.NextInt(0, 16));
    heap.Push(e);
    ring.Push(e);
  }
  heap.PopUpTo(16, &out_heap);
  ring.PopUpTo(16, &out_ring);
  EXPECT_EQ(out_heap, out_ring);
  EXPECT_EQ(out_heap.size(), 2000u);
}

TEST(ReorderBufferRing, SurvivesSlackCollapseAndGrowth) {
  // Slack regime change: a wide span (wide buckets) followed by a tight
  // cluster (narrow rebucketing) followed by another widening. All events
  // must come back in exact order.
  ReorderBuffer ring(Engine::kRing);
  ReorderBuffer heap(Engine::kHeap);
  int64_t id = 0;
  auto push_both = [&](TimestampUs t) {
    const Event e = MakeEvent(id++, t);
    ring.Push(e);
    heap.Push(e);
  };
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) push_both(rng.NextInt(0, 10'000'000));
  std::vector<Event> out_ring;
  std::vector<Event> out_heap;
  ring.PopUpTo(10'000'000, &out_ring);
  heap.PopUpTo(10'000'000, &out_heap);
  ASSERT_EQ(out_ring, out_heap);
  // Tight cluster: hundreds of events inside a few microseconds.
  for (int i = 0; i < 1000; ++i) push_both(20'000'000 + rng.NextInt(0, 8));
  // Wide again.
  for (int i = 0; i < 500; ++i) {
    push_both(20'000'000 + rng.NextInt(0, 50'000'000));
  }
  out_ring.clear();
  out_heap.clear();
  ring.DrainInto(&out_ring);
  heap.DrainInto(&out_heap);
  EXPECT_EQ(out_ring, out_heap);
  EXPECT_EQ(out_ring.size(), 1500u);
}

TEST(ReorderBufferRing, MinEventTimeOnUnsortedBoundaryBucket) {
  // Two out-of-order events in the same bucket: MinEventTime must scan the
  // unsorted live range, not report the first insertion.
  ReorderBuffer ring(Engine::kRing);
  ring.Push(MakeEvent(0, 150));
  ring.Push(MakeEvent(1, 120));  // Same 256us bucket, earlier time.
  EXPECT_EQ(ring.MinEventTime(), 120);
}

}  // namespace
}  // namespace streamq
