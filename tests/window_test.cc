#include "window/window.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace streamq {
namespace {

TEST(WindowSpecTest, Factories) {
  const WindowSpec t = WindowSpec::Tumbling(Seconds(5));
  EXPECT_TRUE(t.IsTumbling());
  EXPECT_EQ(t.size, Seconds(5));
  EXPECT_EQ(t.slide, Seconds(5));

  const WindowSpec s = WindowSpec::Sliding(Seconds(10), Seconds(2));
  EXPECT_FALSE(s.IsTumbling());
}

TEST(WindowSpecTest, Validation) {
  EXPECT_TRUE(WindowSpec::Tumbling(1).Validate().ok());
  EXPECT_FALSE((WindowSpec{0, 1}).Validate().ok());
  EXPECT_FALSE((WindowSpec{1, 0}).Validate().ok());
  EXPECT_FALSE((WindowSpec{-5, 5}).Validate().ok());
}

TEST(WindowSpecTest, Describe) {
  EXPECT_NE(WindowSpec::Tumbling(Seconds(1)).Describe().find("tumbling"),
            std::string::npos);
  EXPECT_NE(
      WindowSpec::Sliding(Seconds(2), Seconds(1)).Describe().find("sliding"),
      std::string::npos);
}

TEST(WindowBoundsTest, ContainsIsHalfOpen) {
  const WindowBounds w{100, 200};
  EXPECT_TRUE(w.Contains(100));
  EXPECT_TRUE(w.Contains(199));
  EXPECT_FALSE(w.Contains(200));
  EXPECT_FALSE(w.Contains(99));
  EXPECT_EQ(w.length(), 100);
}

TEST(AssignWindowsTest, TumblingAssignsExactlyOne) {
  const WindowSpec spec = WindowSpec::Tumbling(100);
  for (TimestampUs ts : {0, 1, 50, 99, 100, 101, 999}) {
    const auto windows = AssignWindows(spec, ts);
    ASSERT_EQ(windows.size(), 1u) << "ts=" << ts;
    EXPECT_TRUE(windows[0].Contains(ts));
    EXPECT_EQ(windows[0].start % 100, 0);
  }
}

TEST(AssignWindowsTest, TumblingBoundaries) {
  const WindowSpec spec = WindowSpec::Tumbling(100);
  EXPECT_EQ(AssignWindows(spec, 0)[0], (WindowBounds{0, 100}));
  EXPECT_EQ(AssignWindows(spec, 99)[0], (WindowBounds{0, 100}));
  EXPECT_EQ(AssignWindows(spec, 100)[0], (WindowBounds{100, 200}));
}

TEST(AssignWindowsTest, SlidingAssignsSizeOverSlideWindows) {
  const WindowSpec spec = WindowSpec::Sliding(100, 25);
  const auto windows = AssignWindows(spec, 110);
  ASSERT_EQ(windows.size(), 4u);  // size/slide = 4.
  // Earliest-first, each contains ts, consecutive starts differ by slide.
  for (size_t i = 0; i < windows.size(); ++i) {
    EXPECT_TRUE(windows[i].Contains(110));
    if (i > 0) {
      EXPECT_EQ(windows[i].start - windows[i - 1].start, 25);
    }
  }
  EXPECT_EQ(windows.front().start, 25);
  EXPECT_EQ(windows.back().start, 100);
}

TEST(AssignWindowsTest, NegativeTimestamps) {
  const WindowSpec spec = WindowSpec::Tumbling(100);
  const auto windows = AssignWindows(spec, -1);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0], (WindowBounds{-100, 0}));
  EXPECT_TRUE(windows[0].Contains(-1));
}

TEST(AssignWindowsTest, SamplingWindowsMayBeEmpty) {
  // slide > size: gaps between windows.
  const WindowSpec spec{/*size=*/10, /*slide=*/100};
  EXPECT_EQ(AssignWindows(spec, 5).size(), 1u);
  EXPECT_TRUE(AssignWindows(spec, 50).empty());
}

TEST(AssignWindowsTest, PropertyEveryAssignedWindowContainsTs) {
  Rng rng(55);
  const WindowSpec specs[] = {
      WindowSpec::Tumbling(1000), WindowSpec::Sliding(1000, 100),
      WindowSpec::Sliding(999, 100), WindowSpec::Sliding(7, 3)};
  for (const WindowSpec& spec : specs) {
    for (int i = 0; i < 2000; ++i) {
      const TimestampUs ts = rng.NextInt(-100000, 100000);
      const auto windows = AssignWindows(spec, ts);
      const size_t expected =
          spec.slide >= spec.size
              ? windows.size()  // 0 or 1, checked below.
              : static_cast<size_t>((spec.size + spec.slide - 1) / spec.slide);
      if (spec.slide < spec.size) {
        // Number of covering windows is ceil(size/slide) or one less.
        EXPECT_GE(windows.size(), expected - 1);
        EXPECT_LE(windows.size(), expected);
      } else {
        EXPECT_LE(windows.size(), 1u);
      }
      for (const WindowBounds& w : windows) {
        EXPECT_TRUE(w.Contains(ts))
            << spec.Describe() << " ts=" << ts << " w=" << w.ToString();
        EXPECT_EQ(w.length(), spec.size);
        // Start is aligned to slide.
        EXPECT_EQ(((w.start % spec.slide) + spec.slide) % spec.slide, 0);
      }
      // Earliest-first and distinct.
      for (size_t j = 1; j < windows.size(); ++j) {
        EXPECT_LT(windows[j - 1].start, windows[j].start);
      }
    }
  }
}

TEST(FirstWindowStartTest, MatchesAssignWindows) {
  Rng rng(56);
  const WindowSpec spec = WindowSpec::Sliding(1000, 300);
  for (int i = 0; i < 2000; ++i) {
    const TimestampUs ts = rng.NextInt(-50000, 50000);
    const auto windows = AssignWindows(spec, ts);
    ASSERT_FALSE(windows.empty());
    EXPECT_EQ(FirstWindowStart(spec, ts), windows.front().start);
  }
}

TEST(WindowResultTest, ToStringHasFields) {
  WindowResult r;
  r.bounds = {0, 100};
  r.key = 3;
  r.value = 1.5;
  r.tuple_count = 7;
  const std::string s = r.ToString();
  EXPECT_NE(s.find("key=3"), std::string::npos);
  EXPECT_NE(s.find("n=7"), std::string::npos);
}

}  // namespace
}  // namespace streamq
