// Amend-engine equivalence: the kAmend B-tree store must be
// indistinguishable from the kLegacy reference (and therefore from kHot)
// — byte-identical WindowResult sequences and stats — for every aggregate
// kind, window family, handler spec, and feed granularity. On top, the
// speculative emit-then-amend mode is pinned two ways: kAmend and kHot
// produce bit-identical emission logs under the same speculative handler,
// and the *final revision* per window matches a fully-buffered run
// byte-for-byte for the order-insensitive exact aggregate kinds.

#include <algorithm>
#include <bit>
#include <cctype>
#include <cstdint>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/continuous_query.h"
#include "core/executor.h"
#include "quality/speculation.h"
#include "stream/generator.h"
#include "window/amend_window_store.h"
#include "window/window.h"
#include "window/window_operator.h"

namespace streamq {
namespace {

using Engine = WindowedAggregation::Engine;

const std::vector<AggKind> kAllKinds = {
    AggKind::kCount,    AggKind::kSum,    AggKind::kMean,
    AggKind::kMin,      AggKind::kMax,    AggKind::kVariance,
    AggKind::kStdDev,   AggKind::kMedian, AggKind::kQuantile,
    AggKind::kDistinctCount};

struct Shape {
  const char* name;
  WindowSpec spec;
};

const std::vector<Shape>& Shapes() {
  static const std::vector<Shape> shapes = {
      {"tumbling", WindowSpec::Tumbling(Millis(40))},
      {"sliding_tiling", WindowSpec::Sliding(Millis(50), Millis(25))},
      {"sliding_nontiling", WindowSpec::Sliding(Millis(50), Millis(30))},
      {"sampling", WindowSpec::Sliding(Millis(20), Millis(50))},
  };
  return shapes;
}

std::vector<DisorderHandlerSpec> HandlerSpecs() {
  std::vector<DisorderHandlerSpec> specs;
  specs.push_back(DisorderHandlerSpec::PassThrough());
  specs.push_back(DisorderHandlerSpec::Fixed(Millis(30)));
  {
    WatermarkReorderer::Options wm;
    wm.bound = Millis(30);
    wm.period_events = 7;
    wm.allowed_lateness = Millis(10);
    specs.push_back(DisorderHandlerSpec::Watermark(wm));
  }
  {
    AqKSlack::Options aq;
    aq.target_quality = 0.95;
    specs.push_back(DisorderHandlerSpec::Aq(aq));
  }
  specs.push_back(DisorderHandlerSpec::Fixed(Millis(30)).PerKey());
  {
    SpeculativeHandler::Options sp;
    sp.target_quality = 0.95;
    specs.push_back(DisorderHandlerSpec::Speculative(sp));
  }
  return specs;
}

const std::vector<Event>& TestStream() {
  static const std::vector<Event>* events = [] {
    WorkloadConfig cfg;
    cfg.num_events = 3000;
    cfg.events_per_second = 10000.0;
    cfg.num_keys = 4;
    cfg.delay.model = DelayModel::kExponential;
    cfg.delay.a = 20000.0;  // Heavy disorder: plenty of late tuples.
    cfg.seed = 1234;
    return new std::vector<Event>(GenerateWorkload(cfg).arrival_order);
  }();
  return *events;
}

ContinuousQuery MakeQuery(AggKind kind, const WindowSpec& shape,
                          const DisorderHandlerSpec& handler, Engine engine,
                          DurationUs lateness = Millis(20)) {
  ContinuousQuery q;
  q.name = "amend_equiv";
  q.handler = handler;
  q.window.window = shape;
  q.window.aggregate.kind = kind;
  if (kind == AggKind::kQuantile) q.window.aggregate.quantile_q = 0.9;
  q.window.allowed_lateness = lateness;
  q.window.emit_revision_per_update = true;
  q.window.per_key_watermarks = handler.per_key;
  q.window.engine = engine;
  return q;
}

RunReport RunQuery(const ContinuousQuery& q, bool batched) {
  QueryExecutor exec(q);
  if (batched) {
    exec.FeedBatch(std::span<const Event>(TestStream()));
  } else {
    for (const Event& e : TestStream()) exec.Feed(e);
  }
  exec.Finish();
  return exec.Report();
}

void ExpectBitIdentical(const RunReport& want, const RunReport& got) {
  EXPECT_EQ(want.events_processed, got.events_processed);
  ASSERT_EQ(want.results.size(), got.results.size());
  for (size_t i = 0; i < want.results.size(); ++i) {
    const WindowResult& a = want.results[i];
    const WindowResult& b = got.results[i];
    EXPECT_EQ(a.bounds, b.bounds) << "result " << i;
    EXPECT_EQ(a.key, b.key) << "result " << i;
    EXPECT_EQ(std::bit_cast<uint64_t>(a.value),
              std::bit_cast<uint64_t>(b.value))
        << "result " << i << ": " << a.value << " vs " << b.value;
    EXPECT_EQ(a.tuple_count, b.tuple_count) << "result " << i;
    EXPECT_EQ(a.emit_stream_time, b.emit_stream_time) << "result " << i;
    EXPECT_EQ(a.is_revision, b.is_revision) << "result " << i;
    EXPECT_EQ(a.revision_index, b.revision_index) << "result " << i;
  }

  const WindowedAggregation::Stats& wa = want.window_stats;
  const WindowedAggregation::Stats& wb = got.window_stats;
  EXPECT_EQ(wa.events, wb.events);
  EXPECT_EQ(wa.late_applied, wb.late_applied);
  EXPECT_EQ(wa.late_dropped, wb.late_dropped);
  EXPECT_EQ(wa.windows_fired, wb.windows_fired);
  EXPECT_EQ(wa.revisions, wb.revisions);
  EXPECT_EQ(want.results_amended, got.results_amended);
  EXPECT_EQ(want.handler_stats.events_out, got.handler_stats.events_out);
  EXPECT_EQ(want.handler_stats.events_late, got.handler_stats.events_late);
  EXPECT_EQ(want.final_slack, got.final_slack);
}

using Param = std::tuple<int, int>;  // (kind index, shape index)

class AmendEquivalenceTest : public ::testing::TestWithParam<Param> {};

// kAmend == kLegacy == kHot, bit for bit, per-event and batched, under
// every handler spec — including the speculative handler, which feeds the
// engines out-of-order tuples directly (kLegacy is skipped there: Validate
// rejects the pairing, so kHot serves as the reference).
TEST_P(AmendEquivalenceTest, AmendMatchesReferenceBitwise) {
  const auto [kind_index, shape_index] = GetParam();
  const AggKind kind = kAllKinds[static_cast<size_t>(kind_index)];
  const Shape& shape = Shapes()[static_cast<size_t>(shape_index)];
  for (const DisorderHandlerSpec& handler : HandlerSpecs()) {
    SCOPED_TRACE(handler.Describe());
    const bool speculative =
        handler.kind == DisorderHandlerSpec::Kind::kSpeculative;
    const ContinuousQuery reference_q =
        MakeQuery(kind, shape.spec, handler,
                  speculative ? Engine::kHot : Engine::kLegacy);
    const ContinuousQuery amend_q =
        MakeQuery(kind, shape.spec, handler, Engine::kAmend);
    const RunReport reference = RunQuery(reference_q, /*batched=*/false);
    ExpectBitIdentical(reference, RunQuery(reference_q, /*batched=*/true));
    ExpectBitIdentical(reference, RunQuery(amend_q, /*batched=*/false));
    ExpectBitIdentical(reference, RunQuery(amend_q, /*batched=*/true));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAllShapes, AmendEquivalenceTest,
    ::testing::Combine(::testing::Range(0, 10), ::testing::Range(0, 4)),
    [](const ::testing::TestParamInfo<Param>& info) {
      AggregateSpec spec;
      spec.kind = kAllKinds[static_cast<size_t>(std::get<0>(info.param))];
      std::string name = spec.Describe();
      name.erase(std::remove_if(name.begin(), name.end(),
                                [](char c) { return !std::isalnum(c); }),
                 name.end());
      name += "_";
      name += Shapes()[static_cast<size_t>(std::get<1>(info.param))].name;
      return name;
    });

// The speculative contract: with enough allowed lateness for every tuple
// to land, the *final revision* per window from an emit-then-amend run
// equals what a fully buffered run produces — byte for byte — for the
// aggregate kinds whose value is independent of fold order. (Sum-family
// kinds agree only to rounding, because the two modes fold tuples in
// different orders; the bench gates them via the same exact-kind subset.)
TEST(SpeculativeFinalResultTest, FinalRevisionsMatchBufferedBitwise) {
  const std::vector<AggKind> order_insensitive = {
      AggKind::kCount, AggKind::kMin, AggKind::kMax, AggKind::kMedian,
      AggKind::kDistinctCount};
  for (AggKind kind : order_insensitive) {
    for (const Shape& shape : Shapes()) {
      SCOPED_TRACE(std::string(shape.name) + " kind " +
                   std::to_string(static_cast<int>(kind)));
      SpeculativeHandler::Options sp;
      sp.target_quality = 0.9;
      const ContinuousQuery spec_q =
          MakeQuery(kind, shape.spec, DisorderHandlerSpec::Speculative(sp),
                    Engine::kAmend, /*lateness=*/Seconds(100));
      // Fully buffered reference: slack far beyond the delay tail, so no
      // tuple is ever late and every first emission is already final.
      const ContinuousQuery buffered_q =
          MakeQuery(kind, shape.spec, DisorderHandlerSpec::Fixed(Seconds(1)),
                    Engine::kHot, /*lateness=*/Seconds(100));
      const RunReport speculative = RunQuery(spec_q, /*batched=*/true);
      const RunReport buffered = RunQuery(buffered_q, /*batched=*/true);

      const std::vector<WindowResult> got = FinalResults(speculative.results);
      const std::vector<WindowResult> want = FinalResults(buffered.results);
      ASSERT_EQ(want.size(), got.size());
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(want[i].bounds, got[i].bounds) << i;
        EXPECT_EQ(want[i].key, got[i].key) << i;
        EXPECT_EQ(want[i].tuple_count, got[i].tuple_count) << i;
        EXPECT_EQ(std::bit_cast<uint64_t>(want[i].value),
                  std::bit_cast<uint64_t>(got[i].value))
            << i << ": " << want[i].value << " vs " << got[i].value;
      }
      EXPECT_EQ(FinalChecksum(buffered.results),
                FinalChecksum(speculative.results));

      // The accounting the bench reports: the speculative run published
      // amendments, the buffered one did not.
      EXPECT_EQ(buffered.results_amended, 0);
      EXPECT_EQ(speculative.results_amended,
                speculative.window_stats.revisions);
    }
  }
}

// The amend store itself: out-of-order inserts land in start order, the
// back finger keeps in-order appends cheap, and bulk evict via Scan purges
// whole leaves.
TEST(AmendWindowStoreTest, OutOfOrderInsertScanAndEvict) {
  AmendWindowStore store(Millis(10));
  // Shuffled starts, several keys each.
  const std::vector<int64_t> starts = {50, 10, 90, 30, 70, 20, 0, 80, 60, 40};
  for (int64_t s : starts) {
    for (int64_t key = 0; key < 3; ++key) {
      bool created = false;
      auto* slot = store.GetOrCreate(Millis(s), key, &created);
      ASSERT_NE(slot, nullptr);
      EXPECT_TRUE(created);
      slot->key = key;
    }
  }
  EXPECT_EQ(store.size(), starts.size() * 3);
  EXPECT_EQ(store.live_buckets(), starts.size());

  // Scan must visit in ascending start order.
  std::vector<TimestampUs> seen;
  store.Scan([&](AmendWindowStore::Bucket& b) {
    seen.push_back(b.start());
    return AmendWindowStore::Visit::kKeep;
  });
  std::vector<TimestampUs> want_order = seen;
  std::sort(want_order.begin(), want_order.end());
  EXPECT_EQ(seen, want_order);
  EXPECT_EQ(seen.size(), starts.size());

  // Find hits every inserted pair, misses absent ones.
  EXPECT_NE(store.Find(Millis(30), 2), nullptr);
  EXPECT_EQ(store.Find(Millis(30), 3), nullptr);
  EXPECT_EQ(store.Find(Millis(35), 0), nullptr);

  // Bulk evict everything below 50ms; the rest stays scannable in order.
  const uint64_t epoch_before = store.epoch();
  store.Scan([&](AmendWindowStore::Bucket& b) {
    return b.start() < Millis(50) ? AmendWindowStore::Visit::kPurge
                                  : AmendWindowStore::Visit::kKeep;
  });
  EXPECT_EQ(store.live_buckets(), 5u);
  EXPECT_EQ(store.size(), 15u);
  EXPECT_GT(store.epoch(), epoch_before);
  seen.clear();
  store.Scan([&](AmendWindowStore::Bucket& b) {
    seen.push_back(b.start());
    return AmendWindowStore::Visit::kKeep;
  });
  EXPECT_EQ(seen, (std::vector<TimestampUs>{Millis(50), Millis(60), Millis(70),
                                            Millis(80), Millis(90)}));
  // Early-out stops the scan.
  int visited = 0;
  store.Scan([&](AmendWindowStore::Bucket&) {
    ++visited;
    return AmendWindowStore::Visit::kStop;
  });
  EXPECT_EQ(visited, 1);
}

// Leaf splits: enough distinct starts to force several splits, inserted
// adversarially (alternating front/back), must stay ordered and findable.
TEST(AmendWindowStoreTest, SplitsPreserveOrderAndFind) {
  AmendWindowStore store(Millis(1));
  std::vector<int64_t> starts;
  for (int64_t i = 0; i < 300; ++i) {
    starts.push_back(i % 2 == 0 ? i : 600 - i);
  }
  for (int64_t s : starts) {
    bool created = false;
    store.GetOrCreate(Millis(s), /*key=*/7, &created);
    EXPECT_TRUE(created) << s;
  }
  EXPECT_EQ(store.size(), starts.size());
  for (int64_t s : starts) {
    EXPECT_NE(store.Find(Millis(s), 7), nullptr) << s;
  }
  std::vector<TimestampUs> seen;
  store.Scan([&](AmendWindowStore::Bucket& b) {
    seen.push_back(b.start());
    return AmendWindowStore::Visit::kKeep;
  });
  ASSERT_EQ(seen.size(), starts.size());
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

// Speculative + kLegacy is a configuration error, not a silent downgrade.
TEST(SpeculativeValidationTest, LegacyEngineRejected) {
  SpeculativeHandler::Options sp;
  ContinuousQuery q = MakeQuery(AggKind::kSum, Shapes()[0].spec,
                                DisorderHandlerSpec::Speculative(sp),
                                Engine::kLegacy);
  const Status status = q.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("amend"), std::string::npos)
      << status.ToString();
}

// The builder's Speculative() upgrades the engine away from the default
// only when it would otherwise be the legacy reference.
TEST(SpeculativeValidationTest, BuilderPairsSpeculativeWithAmendEngine) {
  const ContinuousQuery q = QueryBuilder("spec")
                                .Sliding(Millis(50), Millis(25))
                                .Aggregate("count")
                                .WindowEngine(Engine::kLegacy)
                                .Speculative(0.9)
                                .Build();
  EXPECT_EQ(q.window.engine, Engine::kAmend);
  EXPECT_EQ(q.handler.kind, DisorderHandlerSpec::Kind::kSpeculative);
}

}  // namespace
}  // namespace streamq
