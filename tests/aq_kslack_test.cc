#include "disorder/aq_kslack.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "disorder/fixed_kslack.h"
#include "stream/disorder_metrics.h"
#include "tests/test_util.h"

namespace streamq {
namespace {

AqKSlack::Options WithTarget(double q) {
  AqKSlack::Options o;
  o.target_quality = q;
  return o;
}

/// Achieved coverage over a run: released / total.
double AchievedCoverage(const DisorderHandlerStats& stats) {
  return 1.0 - static_cast<double>(stats.events_late) /
                   static_cast<double>(stats.events_in);
}

TEST(AqKSlackTest, OrderingContractHolds) {
  for (double target : {0.8, 0.9, 0.95, 0.99}) {
    AqKSlack handler(WithTarget(target));
    testutil::ContractCheckingSink sink;
    testutil::RunHandler(&handler,
                         testutil::DisorderedWorkload(5000).arrival_order,
                         &sink);
    EXPECT_TRUE(sink.ordered) << target;
    EXPECT_TRUE(sink.respects_watermark) << target;
    EXPECT_TRUE(sink.watermarks_monotone) << target;
  }
}

TEST(AqKSlackTest, ConservationOfTuples) {
  AqKSlack handler(WithTarget(0.9));
  CollectingSink sink;
  const auto w = testutil::DisorderedWorkload(5000);
  testutil::RunHandler(&handler, w.arrival_order, &sink);
  EXPECT_EQ(sink.events.size() + sink.late_events.size(),
            w.arrival_order.size());
}

class AqKSlackTargetTest : public ::testing::TestWithParam<double> {};

TEST_P(AqKSlackTargetTest, AchievesCoverageNearTarget) {
  const double target = GetParam();
  AqKSlack handler(WithTarget(target));
  CollectingSink sink;
  const auto w = testutil::DisorderedWorkload(30000, /*seed=*/11);
  testutil::RunHandler(&handler, w.arrival_order, &sink);
  const double achieved = AchievedCoverage(handler.stats());
  // Must reach the target (within noise) and not wildly overshoot toward
  // max-quality (which would betray uncontrolled buffering). Overshoot is
  // acceptable up to the point where it costs latency; the latency
  // comparison tests pin that down separately.
  EXPECT_GE(achieved, target - 0.03) << "target=" << target;
}

INSTANTIATE_TEST_SUITE_P(Targets, AqKSlackTargetTest,
                         ::testing::Values(0.80, 0.90, 0.95, 0.99));

TEST(AqKSlackTest, LowerTargetGivesLowerLatency) {
  const auto w = testutil::DisorderedWorkload(30000, 13);
  double latency_low, latency_high;
  {
    AqKSlack handler(WithTarget(0.80));
    CollectingSink sink;
    testutil::RunHandler(&handler, w.arrival_order, &sink);
    latency_low = handler.stats().buffering_latency_us.mean();
  }
  {
    AqKSlack handler(WithTarget(0.99));
    CollectingSink sink;
    testutil::RunHandler(&handler, w.arrival_order, &sink);
    latency_high = handler.stats().buffering_latency_us.mean();
  }
  EXPECT_LT(latency_low, latency_high);
}

TEST(AqKSlackTest, BeatsWorstCaseBufferingOnHeavyTail) {
  // At quality target 0.9 on Pareto delays, the quality-driven buffer must
  // be far below the max-lateness bound a disorder-bound tracker would use.
  WorkloadConfig cfg;
  cfg.num_events = 30000;
  cfg.delay.model = DelayModel::kPareto;
  cfg.delay.a = 2000.0;
  cfg.delay.b = 1.5;
  cfg.seed = 21;
  const auto w = GenerateWorkload(cfg);
  const DisorderStats stats = ComputeDisorderStats(w.arrival_order);

  AqKSlack handler(WithTarget(0.9));
  CollectingSink sink;
  testutil::RunHandler(&handler, w.arrival_order, &sink);
  EXPECT_GE(AchievedCoverage(handler.stats()), 0.87);
  EXPECT_LT(handler.current_slack(), stats.max_lateness_us / 2);
}

TEST(AqKSlackTest, AdaptsToStepChangeInDelays) {
  WorkloadConfig cfg;
  cfg.num_events = 40000;
  cfg.delay.model = DelayModel::kExponential;
  cfg.delay.a = 10000.0;
  cfg.dynamics.kind = DynamicsKind::kStep;
  cfg.dynamics.factor = 6.0;
  cfg.dynamics.t0 = Seconds(2);
  cfg.seed = 31;
  const auto w = GenerateWorkload(cfg);

  AqKSlack handler(WithTarget(0.95));
  handler.set_record_adaptation_trace(true);
  CollectingSink sink;
  testutil::RunHandler(&handler, w.arrival_order, &sink);

  const auto& trace = handler.adaptation_trace();
  ASSERT_GT(trace.size(), 20u);
  // Slack after the step (steady state) must be well above slack before.
  double k_before = 0, k_after = 0;
  int n_before = 0, n_after = 0;
  for (const auto& rec : trace) {
    if (rec.stream_time < Seconds(2)) {
      k_before += static_cast<double>(rec.k);
      ++n_before;
    } else if (rec.stream_time > Seconds(3)) {  // Skip the transient.
      k_after += static_cast<double>(rec.k);
      ++n_after;
    }
  }
  ASSERT_GT(n_before, 0);
  ASSERT_GT(n_after, 0);
  k_before /= n_before;
  k_after /= n_after;
  EXPECT_GT(k_after, k_before * 3.0);
}

TEST(AqKSlackTest, ShrinksWhenDisorderVanishes) {
  WorkloadConfig cfg;
  cfg.num_events = 40000;
  cfg.delay.model = DelayModel::kExponential;
  cfg.delay.a = 20000.0;
  cfg.dynamics.kind = DynamicsKind::kStep;
  cfg.dynamics.factor = 0.05;  // Delays nearly disappear at t0.
  cfg.dynamics.t0 = Seconds(2);
  cfg.seed = 33;
  const auto w = GenerateWorkload(cfg);

  AqKSlack handler(WithTarget(0.95));
  handler.set_record_adaptation_trace(true);
  CollectingSink sink;
  testutil::RunHandler(&handler, w.arrival_order, &sink);

  const auto& trace = handler.adaptation_trace();
  double k_before = 0, k_after = 0;
  int n_before = 0, n_after = 0;
  for (const auto& rec : trace) {
    if (rec.stream_time < Seconds(2)) {
      k_before += static_cast<double>(rec.k);
      ++n_before;
    } else if (rec.stream_time > Seconds(3)) {
      k_after += static_cast<double>(rec.k);
      ++n_after;
    }
  }
  ASSERT_GT(n_before, 0);
  ASSERT_GT(n_after, 0);
  EXPECT_LT(k_after / n_after, k_before / n_before * 0.5);
}

TEST(AqKSlackTest, PowerModelLowGammaBuffersLess) {
  // gamma = 0.3 (max-like): quality 0.95 needs coverage 0.95^(1/0.3)≈0.84,
  // so the buffer should be smaller than with the identity model.
  const auto w = testutil::DisorderedWorkload(30000, 17);
  double latency_identity, latency_power;
  {
    AqKSlack handler(WithTarget(0.95));
    CollectingSink sink;
    testutil::RunHandler(&handler, w.arrival_order, &sink);
    latency_identity = handler.stats().buffering_latency_us.mean();
  }
  {
    AqKSlack handler(WithTarget(0.95), MakePowerQualityModel(0.3));
    CollectingSink sink;
    testutil::RunHandler(&handler, w.arrival_order, &sink);
    latency_power = handler.stats().buffering_latency_us.mean();
  }
  EXPECT_LT(latency_power, latency_identity);
}

TEST(AqKSlackTest, InstrumentationIsPopulated) {
  AqKSlack handler(WithTarget(0.9));
  CollectingSink sink;
  testutil::RunHandler(&handler, testutil::DisorderedWorkload(5000).arrival_order,
                       &sink);
  EXPECT_GT(handler.current_slack(), 0);
  EXPECT_GT(handler.setpoint(), 0.0);
  EXPECT_LE(handler.setpoint(), 1.0);
  EXPECT_GT(handler.measured_quality(), 0.0);
  EXPECT_LE(handler.measured_quality(), 1.0);
}

TEST(AqKSlackTest, TraceOffByDefault) {
  AqKSlack handler(WithTarget(0.9));
  CollectingSink sink;
  testutil::RunHandler(&handler, testutil::DisorderedWorkload(2000).arrival_order,
                       &sink);
  EXPECT_TRUE(handler.adaptation_trace().empty());
}

TEST(AqKSlackTest, RejectsBadOptions) {
  EXPECT_DEATH(AqKSlack handler(WithTarget(0.0)), "Check failed");
  EXPECT_DEATH(AqKSlack handler(WithTarget(1.5)), "Check failed");
  AqKSlack::Options o = WithTarget(0.9);
  o.adaptation_interval = 0;
  EXPECT_DEATH(AqKSlack handler(o), "Check failed");
  AqKSlack::Options o2 = WithTarget(0.9);
  o2.p_min = 0.9;
  o2.p_max = 0.5;
  EXPECT_DEATH(AqKSlack handler(o2), "Check failed");
}

TEST(AqKSlackTest, Name) {
  AqKSlack handler(WithTarget(0.9));
  EXPECT_EQ(handler.name(), "aq-kslack");
  EXPECT_EQ(handler.quality_model().name(), "coverage");
}

}  // namespace
}  // namespace streamq
