// SpscQueue, ParallelMultiQueryRunner, and ShardedKeyedRunner.
//
// The parallel runner's contract is *determinism*: threads change when work
// happens, never what each query observes, so its reports must be
// byte-identical to the sequential kIndependent plan. The sharded runner's
// contract is weaker (see parallel_runner.h): first-emission content is
// shard-invariant; with no late tuples at all, entire runs are.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/multi_query.h"
#include "core/parallel_runner.h"
#include "core/spsc_queue.h"
#include "stream/generator.h"
#include "stream/source.h"
#include "tests/test_util.h"

namespace streamq {
namespace {

// ---------------------------------------------------------------- SpscQueue

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  SpscQueue<int> q3(3);
  EXPECT_EQ(q3.capacity(), 4u);
  SpscQueue<int> q4(4);
  EXPECT_EQ(q4.capacity(), 4u);
  SpscQueue<int> q1(1);
  EXPECT_EQ(q1.capacity(), 1u);
}

TEST(SpscQueueTest, FifoSingleThread) {
  SpscQueue<int> q(4);
  int out = 0;
  EXPECT_FALSE(q.TryPop(&out));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(int(i)));
  EXPECT_FALSE(q.TryPush(99));  // Full.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.TryPop(&out));  // Empty again.
}

TEST(SpscQueueTest, TwoThreadsTransferEverythingInOrder) {
  constexpr int kCount = 100000;
  SpscQueue<int> q(8);  // Tiny ring so both sides hit full/empty often.
  std::vector<int> received;
  received.reserve(kCount);
  std::thread consumer([&q, &received] {
    int out = 0;
    while (q.Pop(&out)) received.push_back(out);
  });
  for (int i = 0; i < kCount; ++i) EXPECT_TRUE(q.Push(int(i)));
  q.Close();
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; ++i) ASSERT_EQ(received[i], i);
}

TEST(SpscQueueTest, CloseStopsPushesButDrainsPops) {
  SpscQueue<int> q(4);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.TryPush(3));  // Closed: no new elements.
  EXPECT_FALSE(q.Push(3));     // Blocking push returns instead of spinning.
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));  // Published elements survive the close…
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.Pop(&out));  // …then the drained queue reports done.
}

TEST(SpscQueueTest, TryPushForTimesOutOnFullRingAndKeepsValue) {
  SpscQueue<std::unique_ptr<int>> q(1);
  ASSERT_TRUE(q.TryPush(std::make_unique<int>(1)));  // Ring now full.
  auto value = std::make_unique<int>(2);
  EXPECT_FALSE(q.TryPushFor(std::move(value), /*timeout_us=*/2000));
  ASSERT_NE(value, nullptr);  // Only consumed on success.
  EXPECT_EQ(*value, 2);
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_TRUE(q.TryPushFor(std::move(value), /*timeout_us=*/2000));
  EXPECT_EQ(value, nullptr);
}

// ------------------------------------------------- ParallelMultiQueryRunner

ContinuousQuery HandlerQuery(const std::string& name, double target_quality) {
  ContinuousQuery q;
  q.name = name;
  AqKSlack::Options aq;
  aq.target_quality = target_quality;
  q.handler = DisorderHandlerSpec::Aq(aq);
  q.window.window = WindowSpec::Tumbling(Millis(50));
  q.window.aggregate.kind = AggKind::kSum;
  return q;
}

void ExpectSameOutcome(const RunReport& a, const RunReport& b) {
  EXPECT_EQ(a.query_name, b.query_name);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.results, b.results);
  EXPECT_EQ(a.handler_stats.events_in, b.handler_stats.events_in);
  EXPECT_EQ(a.handler_stats.events_out, b.handler_stats.events_out);
  EXPECT_EQ(a.handler_stats.events_late, b.handler_stats.events_late);
  EXPECT_EQ(a.handler_stats.latency_samples, b.handler_stats.latency_samples);
  EXPECT_EQ(a.window_stats.windows_fired, b.window_stats.windows_fired);
  EXPECT_EQ(a.window_stats.revisions, b.window_stats.revisions);
  EXPECT_EQ(a.final_slack, b.final_slack);
}

TEST(ParallelMultiQueryRunnerTest, MatchesSequentialIndependentPlan) {
  const auto w = testutil::DisorderedWorkload(8000);

  MultiQueryRunner sequential(MultiQueryRunner::Plan::kIndependent);
  ParallelMultiQueryRunner parallel;
  for (int i = 0; i < 3; ++i) {
    // Built via += to dodge GCC 12's -Wrestrict false positive (PR105651).
    std::string name = "q";
    name += std::to_string(i);
    const ContinuousQuery q = HandlerQuery(name, 0.90 + 0.03 * i);
    sequential.AddQuery(q);
    parallel.AddQuery(q);
  }

  VectorSource s1(w.arrival_order);
  const auto seq_reports = sequential.Run(&s1);
  VectorSource s2(w.arrival_order);
  const auto par_reports = parallel.Run(&s2);

  ASSERT_EQ(seq_reports.size(), par_reports.size());
  for (size_t i = 0; i < seq_reports.size(); ++i) {
    ExpectSameOutcome(seq_reports[i], par_reports[i]);
  }
}

TEST(ParallelMultiQueryRunnerTest, TinyQueueStillDeliversEverything) {
  const auto w = testutil::DisorderedWorkload(4000);
  ParallelOptions options;
  options.batch_size = 13;    // Off-stride chunks…
  options.queue_capacity = 2;  // …through a nearly degenerate ring.
  ParallelMultiQueryRunner runner(options);
  runner.AddQuery(HandlerQuery("q", 0.95));
  VectorSource source(w.arrival_order);
  const auto reports = runner.Run(&source);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].events_processed,
            static_cast<int64_t>(w.arrival_order.size()));
  EXPECT_GT(reports[0].results.size(), 5u);  // ~9 windows in a 0.4 s stream.
}

// ------------------------------------------------------ failure containment

/// Observer whose worker-side hook throws after `fuse` releases: simulates
/// a worker pipeline blowing up mid-run (the hook runs inside
/// QueryExecutor::FeedBatch on the worker thread).
class ExplodingObserver : public PipelineObserver {
 public:
  explicit ExplodingObserver(int fuse) : remaining_(fuse) {}

  void OnHandlerRelease(int64_t released, size_t buffered_after,
                        TimestampUs watermark) override {
    (void)released;
    (void)buffered_after;
    (void)watermark;
    if (remaining_.fetch_sub(1) <= 0) {
      throw std::runtime_error("injected worker fault");
    }
  }

 private:
  std::atomic<int> remaining_;
};

TEST(ParallelMultiQueryRunnerTest, WorkerExceptionDegradesInsteadOfCrashing) {
  const auto w = testutil::DisorderedWorkload(8000);
  ExplodingObserver observer(/*fuse=*/100);
  ParallelMultiQueryRunner runner;
  runner.AddQuery(HandlerQuery("q0", 0.95));
  runner.AddQuery(HandlerQuery("q1", 0.95));
  runner.SetObserver(&observer);
  VectorSource source(w.arrival_order);
  const auto reports = runner.Run(&source);  // Must return, not terminate.
  ASSERT_EQ(reports.size(), 2u);
  int failed = 0;
  for (const RunReport& r : reports) {
    if (!r.status.ok()) {
      ++failed;
      EXPECT_EQ(r.status.code(), StatusCode::kInternal);
      EXPECT_NE(r.status.message().find("injected worker fault"),
                std::string::npos)
          << r.status.ToString();
      // The degraded report still covers the prefix processed pre-fault.
      EXPECT_LT(r.events_processed,
                static_cast<int64_t>(w.arrival_order.size()));
    }
  }
  EXPECT_GE(failed, 1);  // The fuse fires on at least one worker.
}

// --------------------------------------------------------- ShardedKeyedRunner

ContinuousQuery KeyedQuery() {
  ContinuousQuery q;
  q.name = "keyed";
  q.handler = DisorderHandlerSpec::Fixed(Millis(50)).PerKey();
  q.window.window = WindowSpec::Tumbling(Millis(50));
  q.window.aggregate.kind = AggKind::kSum;
  q.window.per_key_watermarks = true;
  return q;
}

/// Multi-key workload whose delays are bounded strictly below the handler's
/// K, so no tuple is ever late: every run (sharded or not) sees the same
/// releases and the same window contents.
GeneratedWorkload BoundedDelayWorkload(int64_t n = 6000) {
  WorkloadConfig cfg;
  cfg.num_events = n;
  cfg.events_per_second = 10000.0;
  cfg.num_keys = 16;
  cfg.delay.model = DelayModel::kUniform;
  cfg.delay.a = 0.0;
  cfg.delay.b = 30000.0;  // < K = 50ms: nothing is ever late.
  cfg.seed = 7;
  return GenerateWorkload(cfg);
}

TEST(ShardedKeyedRunnerTest, WorkerExceptionDegradesInsteadOfCrashing) {
  const auto w = BoundedDelayWorkload();
  ExplodingObserver observer(/*fuse=*/50);
  ShardedKeyedRunner runner(KeyedQuery(), /*num_shards=*/3);
  runner.SetObserver(&observer);
  VectorSource source(w.arrival_order);
  const RunReport merged = runner.Run(&source);  // Must return, not crash.
  EXPECT_FALSE(merged.status.ok());
  EXPECT_EQ(merged.status.code(), StatusCode::kInternal);
  EXPECT_LT(merged.events_processed,
            static_cast<int64_t>(w.arrival_order.size()));
}

TEST(ShardedKeyedRunnerTest, ShardOfIsStableAndCoversAllShards) {
  std::set<size_t> seen;
  for (int64_t key = 0; key < 64; ++key) {
    const size_t s = ShardedKeyedRunner::ShardOf(key, 4);
    EXPECT_LT(s, 4u);
    EXPECT_EQ(s, ShardedKeyedRunner::ShardOf(key, 4));  // Deterministic.
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 4u);  // 64 mixed keys should touch every shard.
}

/// Strips emission order/time from a result set for shard comparison.
std::multiset<std::tuple<TimestampUs, int64_t, double, int64_t>>
FirstEmissions(const std::vector<WindowResult>& results) {
  std::multiset<std::tuple<TimestampUs, int64_t, double, int64_t>> out;
  for (const WindowResult& r : results) {
    if (r.is_revision) continue;
    out.insert({r.bounds.start, r.key, r.value, r.tuple_count});
  }
  return out;
}

TEST(ShardedKeyedRunnerTest, SingleShardMatchesSequentialRun) {
  const auto w = BoundedDelayWorkload();
  ContinuousQuery q = KeyedQuery();

  QueryExecutor exec(q);
  VectorSource s1(w.arrival_order);
  const RunReport sequential = exec.Run(&s1);

  ShardedKeyedRunner runner(q, /*num_shards=*/1);
  VectorSource s2(w.arrival_order);
  const RunReport sharded = runner.Run(&s2);

  EXPECT_EQ(sequential.events_processed, sharded.events_processed);
  EXPECT_EQ(sequential.handler_stats.events_in, sharded.handler_stats.events_in);
  EXPECT_EQ(sequential.handler_stats.events_late,
            sharded.handler_stats.events_late);
  // One shard = the full stream through one identical pipeline; only the
  // final deterministic sort may reorder results.
  EXPECT_EQ(FirstEmissions(sequential.results),
            FirstEmissions(sharded.results));
  EXPECT_EQ(sequential.results.size(), sharded.results.size());
}

TEST(ShardedKeyedRunnerTest, ShardingPreservesFirstEmissions) {
  const auto w = BoundedDelayWorkload();
  ContinuousQuery q = KeyedQuery();

  QueryExecutor exec(q);
  VectorSource s1(w.arrival_order);
  const RunReport sequential = exec.Run(&s1);
  ASSERT_EQ(sequential.handler_stats.events_late, 0);  // Workload sanity.

  for (size_t shards : {2u, 4u}) {
    ShardedKeyedRunner runner(q, shards);
    VectorSource source(w.arrival_order);
    const RunReport merged = runner.Run(&source);
    std::string trace = "shards=";
    trace += std::to_string(shards);
    SCOPED_TRACE(trace);
    EXPECT_EQ(merged.events_processed,
              static_cast<int64_t>(w.arrival_order.size()));
    EXPECT_EQ(merged.handler_stats.events_in,
              sequential.handler_stats.events_in);
    EXPECT_EQ(merged.handler_stats.events_out,
              sequential.handler_stats.events_out);
    EXPECT_EQ(merged.handler_stats.events_late, 0);
    EXPECT_EQ(FirstEmissions(merged.results),
              FirstEmissions(sequential.results));
    // Merged results arrive sorted by (window start, key, revision).
    EXPECT_TRUE(std::is_sorted(
        merged.results.begin(), merged.results.end(),
        [](const WindowResult& a, const WindowResult& b) {
          return std::tie(a.bounds.start, a.key, a.revision_index) <
                 std::tie(b.bounds.start, b.key, b.revision_index);
        }));
  }
}

TEST(ShardedKeyedRunnerTest, RequiresPerKeyHandler) {
  ContinuousQuery q = KeyedQuery();
  q.handler = q.handler.PerKey(false);
  EXPECT_DEATH(ShardedKeyedRunner(q, 2),
               "requires a per-key disorder handler");
}

}  // namespace
}  // namespace streamq
