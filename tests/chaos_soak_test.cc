// Chaos soak: every pipeline configuration must *degrade* under injected
// faults — drops, duplicates, corrupted timestamps and values, disorder
// bursts — never crash, never leak a tuple from the accounting, never
// exceed its memory bound, never move a watermark backwards. Runs are
// deterministic (seeded injector), sized to stay fast under ASan/TSan.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/continuous_query.h"
#include "core/executor.h"
#include "core/parallel_runner.h"
#include "disorder/handler_factory.h"
#include "stream/event.h"
#include "stream/fault_injector.h"
#include "stream/generator.h"
#include "stream/source.h"
#include "tests/test_util.h"

namespace streamq {
namespace {

using Engine = ReorderBuffer::Engine;

std::vector<Event> SoakWorkload(uint64_t seed) {
  WorkloadConfig cfg;
  cfg.num_events = 6000;
  cfg.events_per_second = 10000.0;
  cfg.num_keys = 8;
  cfg.delay.model = DelayModel::kExponential;
  cfg.delay.a = 20000.0;
  cfg.seed = seed;
  return GenerateWorkload(cfg).arrival_order;
}

/// Full blast: includes faults that only ingest validation can absorb.
FaultSpec FullFaults(uint64_t seed) {
  FaultSpec f;
  f.seed = seed;
  f.drop_prob = 0.02;
  f.duplicate_prob = 0.02;
  f.timestamp_corrupt_prob = 0.01;
  f.value_corrupt_prob = 0.01;
  f.burst_prob = 0.005;
  f.burst_len = 64;
  f.burst_spread_us = Millis(200);
  return f;
}

/// Disorder-spike heavy, timestamps left intact.
FaultSpec BurstyFaults(uint64_t seed) {
  FaultSpec f;
  f.seed = seed;
  f.drop_prob = 0.01;
  f.burst_prob = 0.02;
  f.burst_len = 128;
  f.burst_spread_us = Millis(500);
  return f;
}

/// Only faults that produce valid events (safe without validation).
FaultSpec ValidFaults(uint64_t seed) {
  FaultSpec f;
  f.seed = seed;
  f.drop_prob = 0.03;
  f.duplicate_prob = 0.03;
  f.burst_prob = 0.01;
  f.burst_len = 64;
  f.burst_spread_us = Millis(200);
  return f;
}

enum class HandlerKind { kAq, kLb, kFixed, kMp, kWatermark, kSpeculative };

ContinuousQuery BuildQuery(HandlerKind kind, bool per_key, Engine engine,
                           size_t cap, ShedPolicy policy,
                           IngestValidation validation,
                           DurationUs max_slack = 0) {
  QueryBuilder builder("chaos");
  builder.Tumbling(Millis(100)).Aggregate("sum").AllowedLateness(Millis(50));
  switch (kind) {
    case HandlerKind::kAq:
      builder.QualityTarget(0.9);
      break;
    case HandlerKind::kLb:
      builder.LatencyBudget(Millis(30));
      break;
    case HandlerKind::kFixed:
      builder.FixedSlack(Millis(50));
      break;
    case HandlerKind::kMp:
      builder.AdaptiveMaxSlack();
      break;
    case HandlerKind::kWatermark: {
      WatermarkReorderer::Options wm;
      wm.bound = Millis(30);
      wm.allowed_lateness = Millis(10);
      builder.Watermark(wm);
      break;
    }
    case HandlerKind::kSpeculative:
      // Emit-then-amend over the kAmend store (the builder pairs them).
      builder.Speculative(0.9);
      break;
  }
  if (per_key) builder.PerKey();
  if (cap != 0) builder.BufferCap(cap, policy);
  if (max_slack > 0) builder.MaxSlack(max_slack);
  builder.ValidateIngest(validation);
  ContinuousQuery query = builder.Build();
  query.handler = query.handler.WithBufferEngine(engine);
  return query;
}

/// The soak contract for a completed degraded run: OK status, exact
/// accounting end to end, bounded memory.
void ExpectGracefulDegradation(const RunReport& report,
                               const FaultInjectionStats& faults, size_t cap) {
  EXPECT_TRUE(report.status.ok()) << report.status.ToString();
  // Every tuple the faulty source emitted is accounted for at the ingest
  // boundary...
  EXPECT_EQ(report.events_processed + report.events_rejected,
            faults.events_out);
  // ...and inside the handler, where shed tuples are charged explicitly.
  const DisorderHandlerStats& hs = report.handler_stats;
  EXPECT_EQ(hs.events_in, report.events_processed);
  EXPECT_EQ(hs.events_in, hs.events_out + hs.events_late + hs.events_shed);
  if (cap != 0) {
    EXPECT_LE(hs.max_buffer_size, static_cast<int64_t>(cap));
  }
  EXPECT_FALSE(report.results.empty());
}

struct SoakCase {
  const char* name;
  HandlerKind kind;
  bool per_key;
  Engine engine;
  size_t cap;
  ShedPolicy policy;
  IngestValidation validation;
  FaultSpec (*faults)(uint64_t);
  DurationUs max_slack;
};

constexpr SoakCase kSoakCases[] = {
    {"aq/global/ring/emit-early", HandlerKind::kAq, false, Engine::kRing, 1024,
     ShedPolicy::kEmitEarly, IngestValidation::kDrop, FullFaults, Millis(100)},
    {"aq/keyed/ring/emit-early", HandlerKind::kAq, true, Engine::kRing, 512,
     ShedPolicy::kEmitEarly, IngestValidation::kDrop, FullFaults, 0},
    {"lb/global/heap/drop-oldest", HandlerKind::kLb, false, Engine::kHeap, 512,
     ShedPolicy::kDropOldest, IngestValidation::kDrop, FullFaults,
     Millis(100)},
    {"lb/keyed/ring/drop-newest", HandlerKind::kLb, true, Engine::kRing, 512,
     ShedPolicy::kDropNewest, IngestValidation::kDrop, BurstyFaults, 0},
    {"fixed/global/ring/drop-newest", HandlerKind::kFixed, false, Engine::kRing,
     256, ShedPolicy::kDropNewest, IngestValidation::kDrop, BurstyFaults, 0},
    {"fixed/keyed/heap/drop-oldest", HandlerKind::kFixed, true, Engine::kHeap,
     256, ShedPolicy::kDropOldest, IngestValidation::kDrop, FullFaults, 0},
    {"mp/global/ring/emit-early", HandlerKind::kMp, false, Engine::kRing, 1024,
     ShedPolicy::kEmitEarly, IngestValidation::kDrop, BurstyFaults, 0},
    {"watermark/global/ring/emit-early", HandlerKind::kWatermark, false,
     Engine::kRing, 512, ShedPolicy::kEmitEarly, IngestValidation::kDrop,
     FullFaults, 0},
    // Speculative emit-then-amend: no reorder buffer to cap, so disorder
    // bursts turn into amendment storms — which must stay graceful.
    {"speculative/global/amend", HandlerKind::kSpeculative, false,
     Engine::kRing, 0, ShedPolicy::kEmitEarly, IngestValidation::kDrop,
     FullFaults, Millis(100)},
    {"speculative/keyed/amend/bursts", HandlerKind::kSpeculative, true,
     Engine::kRing, 0, ShedPolicy::kEmitEarly, IngestValidation::kDrop,
     BurstyFaults, 0},
    // Unvalidated runs: the injected faults stay within the valid domain,
    // so kOff pipelines must survive them untouched.
    {"aq/global/ring/uncapped/no-validation", HandlerKind::kAq, false,
     Engine::kRing, 0, ShedPolicy::kEmitEarly, IngestValidation::kOff,
     ValidFaults, 0},
    {"fixed/global/ring/emit-early/no-validation", HandlerKind::kFixed, false,
     Engine::kRing, 256, ShedPolicy::kEmitEarly, IngestValidation::kOff,
     ValidFaults, 0},
};

TEST(ChaosSoakTest, EveryConfigurationDegradesGracefully) {
  for (const uint64_t seed : {11u, 29u}) {
    const std::vector<Event> workload = SoakWorkload(seed);
    for (const SoakCase& c : kSoakCases) {
      SCOPED_TRACE(std::string(c.name) + " seed=" + std::to_string(seed));
      VectorSource inner(workload);
      FaultInjectingSource faulty(&inner, c.faults(seed));
      QueryExecutor exec(BuildQuery(c.kind, c.per_key, c.engine, c.cap,
                                    c.policy, c.validation, c.max_slack));
      const RunReport report = exec.Run(&faulty);
      ExpectGracefulDegradation(report, faulty.stats(), c.cap);
      if (c.validation == IngestValidation::kOff) {
        EXPECT_EQ(report.events_rejected, 0);
      }
    }
  }
}

TEST(ChaosSoakTest, HandlerContractSurvivesFaultyStreams) {
  // Straight into the handler (no executor): order, watermark monotonicity
  // and the terminal flush must hold on a burst-spiked, duplicated,
  // drop-riddled stream, capped and uncapped, both engines.
  const std::vector<Event> workload = SoakWorkload(17);
  VectorSource inner(workload);
  FaultInjectingSource faulty(&inner, ValidFaults(17));
  std::vector<Event> stream;
  Event e;
  while (faulty.Next(&e)) stream.push_back(e);

  for (Engine engine : {Engine::kHeap, Engine::kRing}) {
    for (size_t cap : {size_t{0}, size_t{128}}) {
      for (ShedPolicy policy :
           {ShedPolicy::kEmitEarly, ShedPolicy::kDropNewest,
            ShedPolicy::kDropOldest}) {
        if (cap == 0 && policy != ShedPolicy::kEmitEarly) continue;
        for (bool per_key : {false, true}) {
          DisorderHandlerSpec spec = DisorderHandlerSpec::Aq(AqKSlack::Options{})
                                         .PerKey(per_key)
                                         .WithBufferEngine(engine)
                                         .WithBufferCap(cap, policy);
          SCOPED_TRACE(spec.Describe() + (per_key ? " keyed" : " global"));
          auto handler = MakeDisorderHandlerOrDie(spec);
          testutil::ContractCheckingSink sink;
          for (const Event& ev : stream) handler->OnEvent(ev, &sink);
          handler->Flush(&sink);

          EXPECT_TRUE(sink.watermarks_monotone);
          EXPECT_EQ(sink.current_watermark, kMaxTimestamp);
          if (!per_key) {
            EXPECT_TRUE(sink.ordered);
            EXPECT_TRUE(sink.respects_watermark);
          }
          const DisorderHandlerStats& hs = handler->stats();
          EXPECT_EQ(hs.events_in, static_cast<int64_t>(stream.size()));
          EXPECT_EQ(hs.events_in,
                    hs.events_out + hs.events_late + hs.events_shed);
          if (cap != 0) {
            EXPECT_LE(hs.max_buffer_size, static_cast<int64_t>(cap));
          }
        }
      }
    }
  }
}

TEST(ChaosSoakTest, StrictValidationStopsTheRunWithoutCrashing) {
  const std::vector<Event> workload = SoakWorkload(23);
  VectorSource inner(workload);
  FaultSpec f;
  f.seed = 23;
  f.timestamp_corrupt_prob = 0.05;
  FaultInjectingSource faulty(&inner, f);
  QueryExecutor exec(BuildQuery(HandlerKind::kAq, false, Engine::kRing, 0,
                                ShedPolicy::kEmitEarly,
                                IngestValidation::kStrict));
  const RunReport report = exec.Run(&faulty);
  EXPECT_FALSE(report.status.ok());
  EXPECT_EQ(report.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(report.events_rejected, 1);
  // Strict stops early; everything up to the poison tuple was processed.
  EXPECT_GT(report.events_processed, 0);
  EXPECT_LT(report.events_processed + report.events_rejected,
            faulty.stats().events_out);
}

TEST(ChaosSoakTest, ParallelRunnersDegradeGracefullyUnderFaults) {
  const std::vector<Event> workload = SoakWorkload(31);

  // Two independent queries over one faulty stream: each worker sees the
  // identical faulty prefix order, so each reconciles independently.
  {
    VectorSource inner(workload);
    FaultInjectingSource faulty(&inner, FullFaults(31));
    ParallelMultiQueryRunner runner;
    runner.AddQuery(BuildQuery(HandlerKind::kAq, false, Engine::kRing, 512,
                               ShedPolicy::kEmitEarly,
                               IngestValidation::kDrop));
    runner.AddQuery(BuildQuery(HandlerKind::kFixed, false, Engine::kRing, 512,
                               ShedPolicy::kDropOldest,
                               IngestValidation::kDrop));
    const std::vector<RunReport> reports = runner.Run(&faulty);
    ASSERT_EQ(reports.size(), 2u);
    for (const RunReport& report : reports) {
      ExpectGracefulDegradation(report, faulty.stats(), 512);
    }
  }

  // One keyed query sharded across workers: the merged report reconciles
  // against the faulty stream total; the memory bound is per shard.
  {
    VectorSource inner(workload);
    FaultInjectingSource faulty(&inner, BurstyFaults(31));
    const size_t kShards = 3;
    ShardedKeyedRunner runner(
        BuildQuery(HandlerKind::kAq, true, Engine::kRing, 512,
                   ShedPolicy::kEmitEarly, IngestValidation::kDrop),
        kShards);
    const RunReport merged = runner.Run(&faulty);
    EXPECT_TRUE(merged.status.ok()) << merged.status.ToString();
    EXPECT_EQ(merged.events_processed + merged.events_rejected,
              faulty.stats().events_out);
    const DisorderHandlerStats& hs = merged.handler_stats;
    EXPECT_EQ(hs.events_in, merged.events_processed);
    EXPECT_EQ(hs.events_in, hs.events_out + hs.events_late + hs.events_shed);
    // max_buffer_size is summed across shards in the merged report.
    EXPECT_LE(hs.max_buffer_size, static_cast<int64_t>(kShards * 512));
    EXPECT_FALSE(merged.results.empty());
  }

  // Speculative emit-then-amend sharded across workers: amendments are
  // produced inside each shard and cross into the merged report through
  // the watermark-aligned merge; accounting must still reconcile and the
  // merged amendment count must match the summed revision stats.
  {
    VectorSource inner(workload);
    FaultInjectingSource faulty(&inner, BurstyFaults(31));
    ShardedKeyedRunner runner(
        BuildQuery(HandlerKind::kSpeculative, true, Engine::kRing, 0,
                   ShedPolicy::kEmitEarly, IngestValidation::kDrop),
        /*shards=*/3);
    const RunReport merged = runner.Run(&faulty);
    EXPECT_TRUE(merged.status.ok()) << merged.status.ToString();
    EXPECT_EQ(merged.events_processed + merged.events_rejected,
              faulty.stats().events_out);
    const DisorderHandlerStats& hs = merged.handler_stats;
    EXPECT_EQ(hs.events_in, merged.events_processed);
    EXPECT_EQ(hs.events_in, hs.events_out + hs.events_late + hs.events_shed);
    EXPECT_EQ(hs.max_buffer_size, 0);  // No reorder buffer anywhere.
    EXPECT_EQ(merged.results_amended, merged.window_stats.revisions);
    EXPECT_FALSE(merged.results.empty());
  }
}

}  // namespace
}  // namespace streamq
