// FlatWindowStore invariants: O(1) lookup correctness, ordered scans,
// whole-bucket purging, ring growth, and the epoch contract that guards
// cached Slot pointers (the operator's fold-plan memo).

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/time.h"
#include "window/flat_window_store.h"

namespace streamq {
namespace {

using Slot = FlatWindowStore::Slot;
using Visit = FlatWindowStore::Visit;

TEST(FlatWindowStoreTest, GetOrCreateThenFind) {
  FlatWindowStore store(/*slide=*/100);
  bool created = false;
  Slot* s = store.GetOrCreate(300, /*key=*/7, &created);
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(created);
  EXPECT_EQ(s->key, 7);
  s->state.n = 42;

  Slot* again = store.GetOrCreate(300, 7, &created);
  EXPECT_FALSE(created);
  EXPECT_EQ(again, s);
  EXPECT_EQ(store.Find(300, 7), s);
  EXPECT_EQ(store.Find(300, 8), nullptr);
  EXPECT_EQ(store.Find(200, 7), nullptr);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.live_buckets(), 1u);
}

TEST(FlatWindowStoreTest, ManyKeysPerBucketSurviveProbeGrowth) {
  FlatWindowStore store(100);
  bool created = false;
  for (int64_t k = 0; k < 500; ++k) {
    Slot* s = store.GetOrCreate(0, k, &created);
    ASSERT_TRUE(created);
    s->state.f0 = static_cast<double>(k);
  }
  EXPECT_EQ(store.size(), 500u);
  for (int64_t k = 0; k < 500; ++k) {
    Slot* s = store.Find(0, k);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->key, k);
    EXPECT_EQ(s->state.f0, static_cast<double>(k));
  }
  EXPECT_EQ(store.Find(0, 500), nullptr);
}

TEST(FlatWindowStoreTest, ScanVisitsBucketsInAscendingStartOrder) {
  FlatWindowStore store(100);
  bool created = false;
  // Insert out of order, including negative starts (floor semantics).
  for (TimestampUs start : {400, -200, 0, 100, -300, 700}) {
    store.GetOrCreate(start, 1, &created);
  }
  std::vector<TimestampUs> seen;
  store.Scan([&](FlatWindowStore::Bucket& b) {
    seen.push_back(b.start());
    return Visit::kKeep;
  });
  EXPECT_EQ(seen,
            (std::vector<TimestampUs>{-300, -200, 0, 100, 400, 700}));
}

TEST(FlatWindowStoreTest, SortedByKeyOrdersSlots) {
  FlatWindowStore store(100);
  bool created = false;
  for (int64_t k : {9, -3, 5, 0, 12, 7}) store.GetOrCreate(0, k, &created);
  store.Scan([&](FlatWindowStore::Bucket& b) {
    std::vector<int64_t> keys;
    for (uint32_t idx : b.SortedByKey()) keys.push_back(b.slot(idx).key);
    EXPECT_EQ(keys, (std::vector<int64_t>{-3, 0, 5, 7, 9, 12}));
    return Visit::kKeep;
  });
  // Insertion invalidates the cached order; it must rebuild correctly.
  store.GetOrCreate(0, 3, &created);
  store.Scan([&](FlatWindowStore::Bucket& b) {
    std::vector<int64_t> keys;
    for (uint32_t idx : b.SortedByKey()) keys.push_back(b.slot(idx).key);
    EXPECT_EQ(keys, (std::vector<int64_t>{-3, 0, 3, 5, 7, 9, 12}));
    return Visit::kKeep;
  });
}

TEST(FlatWindowStoreTest, PurgeRemovesWholeBucketAndStopsEarly) {
  FlatWindowStore store(100);
  bool created = false;
  for (TimestampUs start : {0, 100, 200, 300}) {
    store.GetOrCreate(start, 1, &created);
    store.GetOrCreate(start, 2, &created);
  }
  ASSERT_EQ(store.size(), 8u);

  // Purge everything below 200, stop at 200 (monotone early-out).
  std::vector<TimestampUs> visited;
  store.Scan([&](FlatWindowStore::Bucket& b) {
    visited.push_back(b.start());
    if (b.start() < 200) return Visit::kPurge;
    return Visit::kStop;
  });
  EXPECT_EQ(visited, (std::vector<TimestampUs>{0, 100, 200}));
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.live_buckets(), 2u);
  EXPECT_EQ(store.Find(0, 1), nullptr);
  EXPECT_EQ(store.Find(100, 2), nullptr);
  EXPECT_NE(store.Find(200, 1), nullptr);
  EXPECT_NE(store.Find(300, 2), nullptr);

  // After the purge the scan starts at the first live bucket.
  visited.clear();
  store.Scan([&](FlatWindowStore::Bucket& b) {
    visited.push_back(b.start());
    return Visit::kKeep;
  });
  EXPECT_EQ(visited, (std::vector<TimestampUs>{200, 300}));
}

TEST(FlatWindowStoreTest, RingGrowsPastInitialCapacity) {
  FlatWindowStore store(10);
  bool created = false;
  // 1000 live starts forces repeated geometric ring growth.
  for (int64_t i = 0; i < 1000; ++i) {
    Slot* s = store.GetOrCreate(i * 10, /*key=*/i % 3, &created);
    ASSERT_TRUE(created);
    s->state.n = i;
  }
  EXPECT_EQ(store.live_buckets(), 1000u);
  for (int64_t i = 0; i < 1000; ++i) {
    Slot* s = store.Find(i * 10, i % 3);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->state.n, i);
  }
  std::vector<TimestampUs> seen;
  store.Scan([&](FlatWindowStore::Bucket& b) {
    seen.push_back(b.start());
    return Visit::kKeep;
  });
  ASSERT_EQ(seen.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(FlatWindowStoreTest, SparseStartsFarApart) {
  FlatWindowStore store(100);
  bool created = false;
  store.GetOrCreate(0, 1, &created);
  store.GetOrCreate(1000000, 1, &created);  // Span 10001 buckets.
  EXPECT_NE(store.Find(0, 1), nullptr);
  EXPECT_NE(store.Find(1000000, 1), nullptr);
  EXPECT_EQ(store.Find(500000, 1), nullptr);
  EXPECT_EQ(store.live_buckets(), 2u);
}

TEST(FlatWindowStoreTest, EpochBumpsOnInsertAndPurge) {
  FlatWindowStore store(100);
  bool created = false;
  const uint64_t e0 = store.epoch();
  store.GetOrCreate(0, 1, &created);
  const uint64_t e1 = store.epoch();
  EXPECT_GT(e1, e0);  // Insert bumps (slot vector may have moved).

  store.GetOrCreate(0, 1, &created);  // Pure lookup: no bump.
  EXPECT_EQ(store.epoch(), e1);
  store.Find(0, 1);
  EXPECT_EQ(store.epoch(), e1);

  store.GetOrCreate(0, 2, &created);  // Same-bucket insert bumps.
  const uint64_t e2 = store.epoch();
  EXPECT_GT(e2, e1);

  store.Scan([](FlatWindowStore::Bucket&) { return Visit::kPurge; });
  EXPECT_GT(store.epoch(), e2);  // Purge bumps.
  EXPECT_EQ(store.size(), 0u);

  // Store is reusable after full purge.
  store.GetOrCreate(700, 3, &created);
  EXPECT_TRUE(created);
  EXPECT_NE(store.Find(700, 3), nullptr);
}

}  // namespace
}  // namespace streamq
