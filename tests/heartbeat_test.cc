/// Heartbeat (punctuation) semantics: progress during idle stream periods.

#include <gtest/gtest.h>

#include "core/executor.h"
#include "disorder/fixed_kslack.h"
#include "disorder/pass_through.h"
#include "tests/test_util.h"

namespace streamq {
namespace {

using testutil::E;

TEST(HeartbeatTest, DrainsIdleBuffer) {
  FixedKSlack handler(100);
  CollectingSink sink;
  handler.OnEvent(E(0, 1000, 1000), &sink);
  EXPECT_TRUE(sink.events.empty());  // Held: frontier 1000, K 100.
  // Source goes idle but promises progress: no future ts < 2000.
  handler.OnHeartbeat(2000, 2500, &sink);
  ASSERT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(sink.watermarks.back(), 1900);
}

TEST(HeartbeatTest, LatencyChargedToHeartbeatTime) {
  FixedKSlack handler(100);
  CollectingSink sink;
  handler.OnEvent(E(0, 1000, 1000), &sink);
  handler.OnHeartbeat(2000, 5000, &sink);
  // The tuple waited from arrival (1000) to the heartbeat (5000).
  EXPECT_DOUBLE_EQ(handler.stats().buffering_latency_us.max(), 4000.0);
}

TEST(HeartbeatTest, DoesNotRegressFrontier) {
  FixedKSlack handler(0);
  CollectingSink sink;
  handler.OnEvent(E(0, 1000, 1000), &sink);
  const TimestampUs wm_before = sink.watermarks.back();
  handler.OnHeartbeat(500, 1100, &sink);  // Stale bound: ignored.
  EXPECT_EQ(sink.watermarks.back(), wm_before);
  handler.OnEvent(E(1, 1200, 1200), &sink);  // Still works afterwards.
  EXPECT_EQ(sink.events.size(), 2u);
}

TEST(HeartbeatTest, EventAfterHeartbeatBoundIsNotLate) {
  FixedKSlack handler(0);
  CollectingSink sink;
  handler.OnHeartbeat(1000, 1000, &sink);
  handler.OnEvent(E(0, 1000, 1100), &sink);  // Exactly at the bound: fine.
  EXPECT_EQ(sink.events.size(), 1u);
  EXPECT_TRUE(sink.late_events.empty());
}

TEST(HeartbeatTest, EventBehindHeartbeatBoundIsLate) {
  FixedKSlack handler(0);
  CollectingSink sink;
  handler.OnHeartbeat(1000, 1000, &sink);
  handler.OnEvent(E(0, 900, 1100), &sink);  // Violates the promise.
  EXPECT_EQ(handler.stats().events_late, 1);
}

TEST(HeartbeatTest, PassThroughAdvancesWatermarkOnly) {
  PassThrough handler;
  CollectingSink sink;
  handler.OnEvent(E(0, 100, 100), &sink);
  handler.OnHeartbeat(500, 600, &sink);
  EXPECT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(sink.watermarks.back(), 500);
}

TEST(HeartbeatTest, ClosesWindowsDuringIdlePeriod) {
  // An idle tail: without heartbeats the last window only fires at
  // Finish(); with them it fires as soon as the source vouches for
  // progress.
  QueryExecutor exec(QueryBuilder("hb")
                         .Tumbling(Millis(10))
                         .Aggregate("count")
                         .FixedSlack(Millis(5))
                         .Build());
  exec.Feed(E(0, Millis(2), Millis(2)));
  exec.Feed(E(1, Millis(4), Millis(4)));
  EXPECT_TRUE(exec.results().empty());
  // Idle... source heartbeats to Millis(20).
  exec.FeedHeartbeat(Millis(20), Millis(30));
  ASSERT_EQ(exec.results().size(), 1u);
  EXPECT_DOUBLE_EQ(exec.results()[0].value, 2.0);
  EXPECT_EQ(exec.results()[0].emit_stream_time, Millis(30));
  exec.Finish();
}

TEST(HeartbeatTest, AdaptiveHandlersHonorHeartbeats) {
  AqKSlack::Options aq;
  aq.target_quality = 0.9;
  AqKSlack handler(aq);
  CollectingSink sink;
  // Feed some disordered tuples to build a sketch, then heartbeat far ahead.
  const auto w = testutil::DisorderedWorkload(2000);
  for (const Event& e : w.arrival_order) handler.OnEvent(e, &sink);
  const size_t before = sink.events.size();
  EXPECT_GT(handler.buffered(), 0u);
  const TimestampUs far = w.arrival_order.back().arrival_time + Seconds(10);
  handler.OnHeartbeat(far, far, &sink);
  EXPECT_EQ(handler.buffered(), 0u);  // Fully drained.
  EXPECT_GT(sink.events.size(), before);
}

}  // namespace
}  // namespace streamq
