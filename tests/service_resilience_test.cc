/// Fault-tolerance tests for the service layer: chaos transport schedules,
/// the sequenced idempotent-replay protocol, client retry/reconnect, server
/// admission control, and graceful drain.
///
/// The headline soak runs the same workload over a clean wire and over a
/// wire with >= 5% injected faults on both sides, and requires the final
/// per-tenant reports — result checksums included — to be byte-identical,
/// with the server's replay and dedup counters exactly equal (the
/// no-double-apply invariant).

#include <chrono>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/session_options.h"
#include "net/chaos.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/retry.h"
#include "net/server.h"
#include "net/socket.h"
#include "stream/generator.h"

namespace streamq {
namespace {

std::vector<Event> TestStream(uint64_t seed, int64_t n) {
  WorkloadConfig config;
  config.num_events = n;
  config.num_keys = 8;
  config.seed = seed;
  return GenerateWorkload(config).arrival_order;
}

SessionOptions TestSession(const std::string& name) {
  SessionOptions options;
  options.Name(name).Window(100);
  return options;
}

/// Fast-cycling retry schedule so injected faults cost milliseconds.
RetryPolicy FastPolicy() {
  RetryPolicy policy;
  policy.max_attempts = 12;
  policy.initial_backoff = Millis(1);
  policy.max_backoff = Millis(16);
  policy.deadline = Seconds(120);
  policy.seed = 9;
  return policy;
}

/// Round-robin the tenants' batch streams through one client — the exact
/// same application order for every run, chaos or not.
void IngestRoundRobin(ResilientClient* client,
                      const std::vector<std::vector<Event>>& streams,
                      size_t batch) {
  size_t offset = 0;
  bool more = true;
  while (more) {
    more = false;
    for (size_t t = 0; t < streams.size(); ++t) {
      const std::vector<Event>& stream = streams[t];
      if (offset >= stream.size()) continue;
      const size_t n = std::min(batch, stream.size() - offset);
      ASSERT_TRUE(
          client
              ->Ingest(static_cast<uint32_t>(t + 1),
                       std::span<const Event>(stream.data() + offset, n))
              .ok());
      more = true;
    }
    offset += batch;
  }
}

// ---------------------------------------------------------- frame codecs

TEST(ResilienceCodecTest, RoundTripsAndRejectsCorruption) {
  std::string payload;
  EncodeOpenSession(0xdeadbeefULL, "--window=100", &payload);
  uint64_t token = 0;
  std::string options_text;
  ASSERT_TRUE(DecodeOpenSession(payload, &token, &options_text).ok());
  EXPECT_EQ(token, 0xdeadbeefULL);
  EXPECT_EQ(options_text, "--window=100");
  std::string bad = payload;
  bad[bad.size() / 2] ^= 0x10;
  EXPECT_FALSE(DecodeOpenSession(bad, &token, &options_text).ok());
  bad = payload;
  bad[3] ^= 0x20;  // A token byte: flipped in flight it would arm the
                   // session under a key the client can never present.
  EXPECT_FALSE(DecodeOpenSession(bad, &token, &options_text).ok());

  const SessionGrant grant{0xdeadbeefULL, 3, 41};
  payload.clear();
  EncodeSessionGrant(grant, &payload);
  SessionGrant decoded_grant;
  ASSERT_TRUE(DecodeSessionGrant(payload, &decoded_grant).ok());
  EXPECT_EQ(decoded_grant, grant);
  bad = payload;
  bad[1] ^= 0x01;
  EXPECT_FALSE(DecodeSessionGrant(bad, &decoded_grant).ok());

  const std::string body = "ingest-bytes";
  payload.clear();
  AppendSeqEnvelope(0xfeedULL, 7, body, &payload);
  SeqEnvelope env;
  std::string_view body_view;
  ASSERT_TRUE(DecodeSeqEnvelope(payload, &env, &body_view).ok());
  EXPECT_EQ(env.token, 0xfeedULL);
  EXPECT_EQ(env.seq, 7u);
  EXPECT_EQ(body_view, body);
  bad = payload;
  bad.back() ^= 0x40;  // Flip a bit inside the body: the hash must catch it.
  EXPECT_FALSE(DecodeSeqEnvelope(bad, &env, &body_view).ok());
  bad = payload;
  bad[2] ^= 0x08;  // Flip a bit inside the token: equally fatal — a token
                   // or seq that decodes cleanly but wrong would misroute
                   // dedup decisions.
  EXPECT_FALSE(DecodeSeqEnvelope(bad, &env, &body_view).ok());
  bad = payload;
  bad[9] ^= 0x01;  // And inside the seq.
  EXPECT_FALSE(DecodeSeqEnvelope(bad, &env, &body_view).ok());

  const AckInfo ack{9, 1};
  payload.clear();
  EncodeAck(ack, &payload);
  AckInfo decoded_ack;
  ASSERT_TRUE(DecodeAck(payload, &decoded_ack).ok());
  EXPECT_EQ(decoded_ack, ack);
  bad = payload;
  bad[0] ^= 0x02;
  EXPECT_FALSE(DecodeAck(bad, &decoded_ack).ok());

  const OverloadInfo info{250, "rate quota"};
  payload.clear();
  EncodeOverloaded(info, &payload);
  OverloadInfo decoded_info;
  ASSERT_TRUE(DecodeOverloaded(payload, &decoded_info).ok());
  EXPECT_EQ(decoded_info, info);
}

// ----------------------------------------------------- chaos determinism

/// The fault schedule is a pure function of (spec, send sequence): two runs
/// of the identical workload see identical per-class fault counts.
TEST(ChaosTransportTest, FaultScheduleReplaysFromSeed) {
  ChaosSpec spec;
  spec.seed = 1234;
  spec.reset_prob = 0.03;
  spec.short_write_prob = 0.03;
  spec.corrupt_prob = 0.03;
  spec.truncate_prob = 0.03;

  auto run = [&spec]() {
    StreamQServer server;  // Clean server: all chaos is client-side.
    EXPECT_TRUE(server.Start().ok());
    ChaosInjector injector(spec);
    auto client = ResilientClient::Connect(server.port(), FastPolicy(),
                                           &injector, Millis(250));
    EXPECT_TRUE(client.ok());
    EXPECT_TRUE(client.value()->Open(1, TestSession("tenant-1")).ok());
    const std::vector<Event> events = TestStream(5, 4000);
    for (size_t i = 0; i < events.size(); i += 200) {
      const size_t n = std::min<size_t>(200, events.size() - i);
      EXPECT_TRUE(client.value()
                      ->Ingest(1, std::span<const Event>(events.data() + i, n))
                      .ok());
    }
    server.Stop();
    return injector.stats();
  };

  const ChaosStats first = run();
  const ChaosStats second = run();
  EXPECT_GT(first.total(), 0) << first.ToString();
  EXPECT_EQ(first.resets, second.resets);
  EXPECT_EQ(first.short_writes, second.short_writes);
  EXPECT_EQ(first.corruptions, second.corruptions);
  EXPECT_EQ(first.truncations, second.truncations);
  EXPECT_EQ(first.sends, second.sends);
}

// ------------------------------------------------------------ chaos soak

/// The acceptance soak: >= 5% aggregate fault rate on both sides of the
/// wire, byte-identical per-tenant results vs. the fault-free run, and
/// replayed == deduped exactly.
TEST(ChaosSoakTest, ChecksumsIdenticalToFaultFreeRunAtFivePercentFaults) {
  const size_t kBatch = 250;
  std::vector<std::vector<Event>> streams;
  streams.push_back(TestStream(21, 10000));
  streams.push_back(TestStream(22, 10000));

  // Fault-free baseline.
  std::vector<SnapshotStats> baseline;
  {
    StreamQServer server;
    ASSERT_TRUE(server.Start().ok());
    auto client = ResilientClient::Connect(server.port(), FastPolicy());
    ASSERT_TRUE(client.ok());
    for (size_t t = 1; t <= streams.size(); ++t) {
      ASSERT_TRUE(client.value()
                      ->Open(static_cast<uint32_t>(t),
                             TestSession("tenant-" + std::to_string(t)))
                      .ok());
    }
    IngestRoundRobin(client.value().get(), streams, kBatch);
    for (size_t t = 1; t <= streams.size(); ++t) {
      auto stats = client.value()->Snapshot(static_cast<uint32_t>(t));
      ASSERT_TRUE(stats.ok());
      baseline.push_back(stats.value());
    }
    server.Stop();
  }

  // Chaos run: the same injector wraps the client's connections AND every
  // connection the server accepts, so requests, acks, and grants all cross
  // a hostile wire.
  ChaosSpec spec;
  spec.seed = 77;
  spec.reset_prob = 0.02;
  spec.short_write_prob = 0.02;
  spec.corrupt_prob = 0.02;
  spec.truncate_prob = 0.02;
  spec.accept_close_prob = 0.05;
  ChaosInjector injector(spec);
  ServerOptions server_options;
  server_options.chaos = &injector;
  StreamQServer server(server_options);
  ASSERT_TRUE(server.Start().ok());
  auto client = ResilientClient::Connect(server.port(), FastPolicy(),
                                         &injector, Millis(250));
  ASSERT_TRUE(client.ok());
  for (size_t t = 1; t <= streams.size(); ++t) {
    ASSERT_TRUE(client.value()
                    ->Open(static_cast<uint32_t>(t),
                           TestSession("tenant-" + std::to_string(t)))
                    .ok());
  }
  IngestRoundRobin(client.value().get(), streams, kBatch);

  for (size_t t = 1; t <= streams.size(); ++t) {
    auto stats = client.value()->Snapshot(static_cast<uint32_t>(t));
    ASSERT_TRUE(stats.ok());
    const SnapshotStats& base = baseline[t - 1];
    EXPECT_EQ(stats.value().result_checksum, base.result_checksum)
        << "tenant " << t << " diverged from the fault-free run";
    EXPECT_EQ(stats.value().events_ingested, base.events_ingested);
    EXPECT_EQ(stats.value().events_out, base.events_out);
    EXPECT_EQ(stats.value().events_late, base.events_late);
    EXPECT_EQ(stats.value().events_shed, base.events_shed);
    EXPECT_EQ(stats.value().results, base.results);
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.frames_replayed, stats.frames_deduped)
      << "a replayed frame was applied instead of deduped";
  EXPECT_GT(injector.stats().total(), 0) << injector.stats().ToString();
  // Reconnect resumes bump the epoch; the invariant either way is that
  // dedup exactly absorbed every replay.
  EXPECT_GE(stats.sessions_resumed, client.value()->stats().reconnects);
  server.Stop();
}

// ------------------------------------------------------ admission control

TEST(AdmissionControlTest, TokenBucketHoldsRateQuotaExactly) {
  ServerOptions server_options;
  server_options.quota_rate_eps = 5000.0;
  server_options.quota_burst = 500.0;
  StreamQServer server(server_options);
  ASSERT_TRUE(server.Start().ok());

  auto client = ResilientClient::Connect(server.port(), FastPolicy());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value()->Open(1, TestSession("tenant-1")).ok());

  const std::vector<Event> events = TestStream(31, 3000);
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < events.size(); i += 250) {
    const size_t n = std::min<size_t>(250, events.size() - i);
    ASSERT_TRUE(client.value()
                    ->Ingest(1, std::span<const Event>(events.data() + i, n))
                    .ok());
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  auto stats = client.value()->Snapshot(1);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().events_ingested, 3000);
  // accepted <= rate * wall + burst, i.e. the bucket stretched the run.
  EXPECT_GE(server_options.quota_rate_eps * wall_s +
                server_options.quota_burst,
            3000.0);
  EXPECT_GT(stats.value().frames_throttled, 0);
  EXPECT_GT(client.value()->stats().throttled, 0);
  EXPECT_EQ(server.stats().frames_throttled, stats.value().frames_throttled);
  server.Stop();
}

TEST(AdmissionControlTest, SessionQuotaRejectsThenAdmits) {
  ServerOptions server_options;
  server_options.quota_max_sessions = 1;
  StreamQServer server(server_options);
  ASSERT_TRUE(server.Start().ok());

  auto client = StreamQClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  auto grant = client.value()->OpenSession(1, 0x11, TestSession("tenant-1"));
  ASSERT_TRUE(grant.ok());
  EXPECT_EQ(grant.value().epoch, 1u);

  // Second sequenced open and a plain register both bounce off the quota.
  auto rejected = client.value()->OpenSession(2, 0x21, TestSession("t2"));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  const Status plain = client.value()->RegisterQuery(3, TestSession("t3"));
  ASSERT_FALSE(plain.ok());
  EXPECT_EQ(plain.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(server.stats().sessions_rejected, 2);

  ASSERT_TRUE(client.value()->Unregister(1).ok());
  EXPECT_TRUE(
      client.value()->OpenSession(2, 0x21, TestSession("t2")).ok());
  server.Stop();
}

// --------------------------------------------------- sequenced semantics

TEST(SequencedProtocolTest, BlindReplayDedupsGapAndWrongTokenRejected) {
  StreamQServer server;
  ASSERT_TRUE(server.Start().ok());
  auto client = StreamQClient::Connect(server.port());
  ASSERT_TRUE(client.ok());

  const uint64_t token = 0xabcdef01;
  auto grant = client.value()->OpenSession(1, token, TestSession("tenant-1"));
  ASSERT_TRUE(grant.ok());
  EXPECT_EQ(grant.value().epoch, 1u);
  EXPECT_EQ(grant.value().last_acked_seq, 0u);

  const std::vector<Event> events = TestStream(41, 100);
  auto first = client.value()->SeqIngest(1, token, 1, events);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().replayed);
  EXPECT_EQ(first.value().acked_seq, 1u);

  // Blind resend of the same seq: acked as a replay, applied zero times.
  auto replay = client.value()->SeqIngest(1, token, 1, events);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay.value().replayed);
  auto snapshot = client.value()->Snapshot(1);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot.value().events_ingested, 100);
  EXPECT_EQ(snapshot.value().frames_replayed, 1);
  EXPECT_EQ(snapshot.value().frames_deduped, 1);
  EXPECT_EQ(snapshot.value().last_acked_seq, 1u);

  // A gap is a protocol-state error, not something to retry into.
  auto gap = client.value()->SeqIngest(1, token, 5, events);
  ASSERT_FALSE(gap.ok());
  EXPECT_EQ(gap.status().code(), StatusCode::kFailedPrecondition);

  // A frame carrying the wrong token never reaches the session.
  auto stolen = client.value()->SeqIngest(1, token ^ 1, 2, events);
  ASSERT_FALSE(stolen.ok());
  EXPECT_EQ(stolen.status().code(), StatusCode::kFailedPrecondition);

  // Idempotent re-open with the original token resumes (epoch bump, seq
  // reported); a different token is rejected.
  auto resumed = client.value()->OpenSession(1, token, TestSession("tenant-1"));
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed.value().epoch, 2u);
  EXPECT_EQ(resumed.value().last_acked_seq, 1u);
  EXPECT_FALSE(
      client.value()->OpenSession(1, token ^ 2, TestSession("tenant-1")).ok());

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.frames_replayed, 1);
  EXPECT_EQ(stats.frames_deduped, 1);
  server.Stop();
}

// -------------------------------------------------- mid-frame timeout (b)

TEST(ClientDesyncTest, MidFrameTimeoutFailsCleanlyAndStaysBroken) {
  Listener listener;
  ASSERT_TRUE(listener.Listen(0).ok());

  std::thread peer([&listener] {
    auto accepted = listener.Accept(Seconds(5));
    ASSERT_TRUE(accepted.ok());
    Socket sock = std::move(accepted).value();
    char buf[4096];
    (void)sock.Recv(buf, sizeof(buf));  // Swallow the request.
    // Reply with a frame header promising 100 payload bytes, deliver 10,
    // and go silent: the client is now stuck mid-frame.
    Frame partial{FrameType::kOk, 1, std::string(100, 'x')};
    std::string wire;
    AppendFrame(partial, &wire);
    ASSERT_TRUE(sock.SendAll(wire.data(), 22).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
  });

  auto client = StreamQClient::Connect(listener.port(), Millis(150));
  ASSERT_TRUE(client.ok());
  const Status timed_out =
      client.value()->RegisterQuery(1, TestSession("tenant-1"));
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.code(), StatusCode::kIOError);
  EXPECT_NE(timed_out.ToString().find("desynchronized"), std::string::npos)
      << timed_out.ToString();
  EXPECT_TRUE(client.value()->broken());

  // Every later call fails fast instead of reading garbage.
  const Status after = client.value()->Ingest(1, {});
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.code(), StatusCode::kIOError);
  peer.join();
}

// -------------------------------------------------------- graceful drain

TEST(DrainTest, RejectsNewSessionsWhileExistingTenantsFinish) {
  StreamQServer server;
  ASSERT_TRUE(server.Start().ok());
  auto client = StreamQClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value()->RegisterQuery(1, TestSession("tenant-1")).ok());
  const std::vector<Event> events = TestStream(51, 500);
  ASSERT_TRUE(client.value()->Ingest(1, events).ok());

  server.BeginDrain();
  EXPECT_TRUE(server.draining());

  // New sessions are refused on existing connections, and the closed
  // listener refuses new connections outright.
  const Status reg = client.value()->RegisterQuery(2, TestSession("t2"));
  ASSERT_FALSE(reg.ok());
  EXPECT_EQ(reg.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(client.value()->OpenSession(3, 0x31, TestSession("t3")).ok());
  // A brand-new connection is either refused outright or never serviced
  // (the accept loop is gone), so its first round trip must fail.
  auto late = StreamQClient::Connect(server.port(), Millis(200));
  if (late.ok()) {
    EXPECT_FALSE(late.value()->RegisterQuery(4, TestSession("t4")).ok());
  }

  // The registered tenant keeps working to completion.
  ASSERT_TRUE(client.value()->Ingest(1, events).ok());
  auto report = client.value()->Unregister(1);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().events_ingested, 1000);
  EXPECT_GE(server.stats().sessions_rejected, 2);

  client.value().reset();  // Last live connection goes away...
  server.Drain(Seconds(2));  // ...so the drain completes promptly.
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace streamq
