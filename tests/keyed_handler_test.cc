#include "disorder/keyed_handler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/executor.h"
#include "disorder/fixed_kslack.h"
#include "quality/oracle.h"
#include "quality/quality_metrics.h"
#include "tests/test_util.h"

namespace streamq {
namespace {

using testutil::E;

std::unique_ptr<KeyedDisorderHandler> MakeKeyedFixed(DurationUs k) {
  return std::make_unique<KeyedDisorderHandler>(
      [k] { return std::make_unique<FixedKSlack>(k); });
}

/// Per-key ordering + per-key watermark respect (global order is NOT part
/// of the keyed contract; each key honors its own keyed watermark).
class PerKeyContractSink : public EventSink {
 public:
  void OnEvent(const Event& e) override {
    auto [it, inserted] = last_ts_.try_emplace(e.key, e.event_time);
    if (!inserted) {
      per_key_ordered &= it->second <= e.event_time;
      it->second = e.event_time;
    }
    const auto wm_it = keyed_wm_.find(e.key);
    if (wm_it != keyed_wm_.end()) {
      respects_keyed_watermark &= e.event_time >= wm_it->second;
    }
    ++events;
  }
  void OnWatermark(TimestampUs wm, TimestampUs) override {
    if (watermark != kMinTimestamp) monotone &= wm >= watermark;
    watermark = wm;
  }
  void OnKeyedWatermark(int64_t key, TimestampUs wm, TimestampUs) override {
    auto [it, inserted] = keyed_wm_.try_emplace(key, wm);
    if (!inserted) {
      keyed_monotone &= wm >= it->second;
      it->second = wm;
    }
  }
  void OnLateEvent(const Event&) override { ++late; }

  std::map<int64_t, TimestampUs> last_ts_;
  std::map<int64_t, TimestampUs> keyed_wm_;
  TimestampUs watermark = kMinTimestamp;
  bool per_key_ordered = true;
  bool respects_keyed_watermark = true;
  bool monotone = true;
  bool keyed_monotone = true;
  int64_t events = 0;
  int64_t late = 0;
};

TEST(KeyedHandlerTest, BuffersPerKeyIndependently) {
  auto handler = MakeKeyedFixed(100);
  CollectingSink sink;
  handler->OnEvent(E(0, 1000, 1000, /*key=*/1), &sink);
  handler->OnEvent(E(1, 1000, 1001, /*key=*/2), &sink);
  // Key 1 advances far; key 2 does not.
  handler->OnEvent(E(2, 5000, 5000, /*key=*/1), &sink);
  // Key 1's first tuple released; key 2's still held.
  ASSERT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(sink.events[0].id, 0);
  EXPECT_EQ(handler->buffered(), 2u);
  EXPECT_EQ(handler->key_count(), 2u);
}

TEST(KeyedHandlerTest, MergedWatermarkIsMinimumOverKeys) {
  auto handler = MakeKeyedFixed(0);
  CollectingSink sink;
  handler->OnEvent(E(0, 1000, 1000, 1), &sink);
  // Only key 1 has a watermark; key 2 unseen -> merged = key 1's.
  EXPECT_EQ(sink.watermarks.back(), 1000);
  handler->OnEvent(E(1, 500, 1001, 2), &sink);
  // Key 2's watermark 500 drags the merged minimum down; the merged
  // watermark must NOT regress (it just does not advance).
  EXPECT_EQ(sink.watermarks.back(), 1000);
  handler->OnEvent(E(2, 2000, 2000, 2), &sink);
  // min(1000, 2000) = 1000: still no advance.
  EXPECT_EQ(sink.watermarks.back(), 1000);
  handler->OnEvent(E(3, 3000, 3000, 1), &sink);
  // min(3000, 2000) = 2000.
  EXPECT_EQ(sink.watermarks.back(), 2000);
}

TEST(KeyedHandlerTest, PerKeyContractOnHeterogeneousWorkload) {
  WorkloadConfig cfg;
  cfg.num_events = 20000;
  cfg.num_keys = 8;
  cfg.key_delay_spread = 16.0;  // Last key 16x slower than first.
  cfg.delay.model = DelayModel::kExponential;
  cfg.delay.a = 5000.0;
  cfg.seed = 17;
  const auto w = GenerateWorkload(cfg);

  AqKSlack::Options aq;
  aq.target_quality = 0.95;
  const DisorderHandlerSpec spec = DisorderHandlerSpec::Aq(aq).PerKey();
  auto handler = MakeDisorderHandlerOrDie(spec);
  EXPECT_EQ(handler->name(), "keyed");

  PerKeyContractSink sink;
  for (const Event& e : w.arrival_order) handler->OnEvent(e, &sink);
  handler->Flush(&sink);

  EXPECT_TRUE(sink.per_key_ordered);
  EXPECT_TRUE(sink.respects_keyed_watermark);
  EXPECT_TRUE(sink.monotone);
  EXPECT_TRUE(sink.keyed_monotone);
  EXPECT_EQ(sink.watermark, kMaxTimestamp);
  EXPECT_EQ(sink.events + sink.late,
            static_cast<int64_t>(w.arrival_order.size()));
  EXPECT_EQ(handler->stats().events_in,
            handler->stats().events_out + handler->stats().events_late);
}

TEST(KeyedHandlerTest, PerKeySlacksTrackPerKeyDelays) {
  WorkloadConfig cfg;
  cfg.num_events = 30000;
  cfg.num_keys = 4;
  cfg.key_delay_spread = 20.0;
  cfg.delay.model = DelayModel::kExponential;
  cfg.delay.a = 3000.0;
  cfg.seed = 19;
  const auto w = GenerateWorkload(cfg);

  AqKSlack::Options aq;
  aq.target_quality = 0.95;
  KeyedDisorderHandler handler(
      [&aq] { return std::make_unique<AqKSlack>(aq); });
  CollectingSink sink;
  for (const Event& e : w.arrival_order) handler.OnEvent(e, &sink);
  handler.Flush(&sink);

  // The slow key's shard must run a much larger slack than the fast key's.
  const DisorderHandler* fast = handler.shard(0);
  const DisorderHandler* slow = handler.shard(3);
  ASSERT_NE(fast, nullptr);
  ASSERT_NE(slow, nullptr);
  EXPECT_GT(slow->current_slack(), fast->current_slack() * 5);
}

TEST(KeyedHandlerTest, KeyedIsFairAndFresherOnHeterogeneousDelays) {
  // The motivating comparison. A single global quality-driven buffer hits
  // its aggregate 0.95 target by shedding mostly the slow keys' tuples
  // (they are the late ones) -> slow keys are sacrificed. Per-key buffers
  // enforce the target for EVERY key. And with per-key watermarks, fast
  // keys' windows fire without waiting for the slowest key's stragglers.
  WorkloadConfig cfg;
  cfg.num_events = 40000;
  cfg.num_keys = 8;
  cfg.key_delay_spread = 16.0;
  cfg.delay.model = DelayModel::kExponential;
  cfg.delay.a = 4000.0;
  cfg.seed = 23;
  const auto w = GenerateWorkload(cfg);

  AggregateSpec sum;
  sum.kind = AggKind::kSum;
  const OracleEvaluator oracle(w.arrival_order,
                               WindowSpec::Tumbling(Millis(50)), sum);

  struct Outcome {
    double min_key_coverage;
    double fast_key_response_p50_us;
  };
  auto run = [&](bool per_key) {
    QueryBuilder builder("cmp");
    builder.Tumbling(Millis(50)).Aggregate("sum").QualityTarget(0.95, 1.0);
    if (per_key) builder.PerKey();
    QueryExecutor exec(builder.Build());
    VectorSource source(w.arrival_order);
    const RunReport report = exec.Run(&source);
    const QualityReport quality = EvaluateQuality(report.results, oracle);

    // Per-key mean coverage.
    std::map<int64_t, std::pair<double, int64_t>> cov;
    for (const WindowQuality& q : quality.per_window) {
      cov[q.key].first += q.coverage;
      cov[q.key].second += 1;
    }
    Outcome out{1.0, 0.0};
    for (const auto& [key, acc] : cov) {
      out.min_key_coverage = std::min(
          out.min_key_coverage, acc.first / static_cast<double>(acc.second));
    }
    // Fast key (0) response latency.
    std::vector<double> fast_latencies;
    for (const WindowResult& r : report.results) {
      if (r.key == 0 && !r.is_revision) {
        fast_latencies.push_back(static_cast<double>(
            std::max<DurationUs>(0, r.emit_stream_time - r.bounds.end)));
      }
    }
    out.fast_key_response_p50_us = Summarize(fast_latencies).p50;
    return out;
  };

  const Outcome global = run(false);
  const Outcome keyed = run(true);

  // Fairness: the keyed plan protects every key; the global plan leaves the
  // slowest key well under target.
  EXPECT_GE(keyed.min_key_coverage, 0.90);
  EXPECT_LT(global.min_key_coverage, keyed.min_key_coverage - 0.03);
  // Freshness: fast-key windows fire much sooner under per-key watermarks.
  EXPECT_LT(keyed.fast_key_response_p50_us,
            global.fast_key_response_p50_us * 0.7);
}

TEST(KeyedHandlerTest, HeartbeatReachesEveryShard) {
  auto handler = MakeKeyedFixed(100);
  CollectingSink sink;
  handler->OnEvent(E(0, 1000, 1000, 1), &sink);
  handler->OnEvent(E(1, 1000, 1001, 2), &sink);
  EXPECT_EQ(handler->buffered(), 2u);
  handler->OnHeartbeat(5000, 5000, &sink);
  EXPECT_EQ(handler->buffered(), 0u);
  EXPECT_EQ(sink.events.size(), 2u);
  EXPECT_EQ(sink.watermarks.back(), 4900);
}

TEST(KeyedHandlerTest, HeartbeatAdvancesIdleKeyAndUnblocksMergedWatermark) {
  // Regression (both buffer engines): a key that stops receiving events must
  // still advance its watermark on OnHeartbeat, otherwise its stale minimum
  // blocks the merged watermark forever.
  for (const ReorderBuffer::Engine engine :
       {ReorderBuffer::Engine::kHeap, ReorderBuffer::Engine::kRing}) {
    SCOPED_TRACE(engine == ReorderBuffer::Engine::kHeap ? "heap" : "ring");
    auto handler = MakeKeyedFixed(100);
    handler->set_buffer_engine(engine);
    CollectingSink sink;
    handler->OnEvent(E(0, 1000, 1000, /*key=*/1), &sink);
    ASSERT_EQ(sink.watermarks.back(), 900);
    // Key 2 arrives once with a low watermark, then goes idle.
    handler->OnEvent(E(1, 500, 1001, /*key=*/2), &sink);
    // Key 1 races ahead; merged = min(9900, 400) is still pinned by the
    // idle key, so the merged watermark cannot advance past 900.
    handler->OnEvent(E(2, 10000, 10000, /*key=*/1), &sink);
    EXPECT_EQ(sink.watermarks.back(), 900);
    EXPECT_EQ(handler->buffered(), 2u);  // ts=500 (key 2), ts=10000 (key 1).

    // The heartbeat reaches the idle shard: key 2's frontier advances to
    // the bound, its buffered tuple releases, and the merged minimum jumps.
    handler->OnHeartbeat(8000, 11000, &sink);
    EXPECT_EQ(sink.watermarks.back(), 7900);
    EXPECT_EQ(handler->buffered(), 1u);  // Key 1's ts=10000 still held.
    const auto released = std::find_if(
        sink.events.begin(), sink.events.end(),
        [](const Event& e) { return e.id == 1; });
    EXPECT_NE(released, sink.events.end());
  }
}

TEST(KeyedHandlerTest, AggregateAccessorsMatchFullRecompute) {
  // buffered() and current_slack() are maintained incrementally (O(1) reads
  // independent of key count); pin them against a full recompute over the
  // shards after every arrival.
  WorkloadConfig cfg;
  cfg.num_events = 6000;
  cfg.num_keys = 16;
  cfg.key_delay_spread = 8.0;
  cfg.delay.model = DelayModel::kExponential;
  cfg.delay.a = 4000.0;
  cfg.seed = 31;
  const auto w = GenerateWorkload(cfg);

  AqKSlack::Options aq;
  aq.target_quality = 0.95;
  KeyedDisorderHandler handler(
      [&aq] { return std::make_unique<AqKSlack>(aq); });
  CollectingSink sink;
  size_t fed = 0;
  auto check = [&] {
    size_t buffered = 0;
    int64_t slack_sum = 0;
    size_t shards = 0;
    for (int64_t key = 0; key < cfg.num_keys; ++key) {
      const DisorderHandler* shard = handler.shard(key);
      if (shard == nullptr) continue;
      ++shards;
      buffered += shard->buffered();
      slack_sum += shard->current_slack();
    }
    ASSERT_EQ(handler.key_count(), shards);
    ASSERT_EQ(handler.buffered(), buffered);
    const DurationUs mean_slack =
        shards == 0 ? 0
                    : static_cast<DurationUs>(static_cast<double>(slack_sum) /
                                              static_cast<double>(shards));
    ASSERT_EQ(handler.current_slack(), mean_slack) << "after " << fed;
  };
  for (const Event& e : w.arrival_order) {
    handler.OnEvent(e, &sink);
    ++fed;
    if (fed % 97 == 0) check();
  }
  check();
  handler.OnHeartbeat(w.arrival_order.back().event_time,
                      w.arrival_order.back().arrival_time, &sink);
  check();
  handler.Flush(&sink);
  check();
  EXPECT_EQ(handler.buffered(), 0u);
}

TEST(KeyedHandlerTest, EndToEndKeyedQueryMatchesOracleAtFullSlack) {
  WorkloadConfig cfg;
  cfg.num_events = 10000;
  cfg.num_keys = 6;
  cfg.key_delay_spread = 8.0;
  cfg.seed = 29;
  const auto w = GenerateWorkload(cfg);

  ContinuousQuery q = QueryBuilder("keyed")
                          .Tumbling(Millis(50))
                          .Aggregate("sum")
                          .FixedSlack(Seconds(1000))
                          .PerKey()
                          .Build();
  EXPECT_NE(q.Describe().find("per-key"), std::string::npos);
  QueryExecutor exec(q);
  VectorSource source(w.arrival_order);
  const RunReport report = exec.Run(&source);

  const OracleEvaluator oracle(w.arrival_order, q.window.window,
                               q.window.aggregate);
  const QualityReport quality = EvaluateQuality(report.results, oracle);
  EXPECT_EQ(quality.missed_windows, 0);
  EXPECT_NEAR(quality.value_quality.mean, 1.0, 1e-9);
}

}  // namespace
}  // namespace streamq
