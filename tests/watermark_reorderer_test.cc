#include "disorder/watermark_reorderer.h"

#include <gtest/gtest.h>

#include "disorder/fixed_kslack.h"
#include "tests/test_util.h"

namespace streamq {
namespace {

using testutil::E;

WatermarkReorderer::Options Opt(DurationUs bound, int64_t period,
                                DurationUs lateness = 0) {
  WatermarkReorderer::Options o;
  o.bound = bound;
  o.period_events = period;
  o.allowed_lateness = lateness;
  return o;
}

TEST(WatermarkReordererTest, ReleasesOnlyAtTicks) {
  WatermarkReorderer handler(Opt(0, 3));
  CollectingSink sink;
  handler.OnEvent(E(0, 100, 100), &sink);
  handler.OnEvent(E(1, 200, 200), &sink);
  EXPECT_TRUE(sink.events.empty());  // No tick yet.
  handler.OnEvent(E(2, 300, 300), &sink);  // Tick: watermark 300.
  EXPECT_EQ(sink.events.size(), 3u);
  EXPECT_EQ(sink.watermarks.back(), 300);
}

TEST(WatermarkReordererTest, PeriodOneMatchesFixedKSlack) {
  // With per-tuple watermarks and no allowed lateness, the watermark
  // baseline degenerates to fixed K-slack: identical releases, identical
  // late diverts.
  const auto w = testutil::DisorderedWorkload(3000);
  const DurationUs bound = Millis(15);

  WatermarkReorderer wm(Opt(bound, 1));
  CollectingSink wm_sink;
  testutil::RunHandler(&wm, w.arrival_order, &wm_sink);

  FixedKSlack ks(bound);
  CollectingSink ks_sink;
  testutil::RunHandler(&ks, w.arrival_order, &ks_sink);

  ASSERT_EQ(wm_sink.events.size(), ks_sink.events.size());
  for (size_t i = 0; i < wm_sink.events.size(); ++i) {
    EXPECT_EQ(wm_sink.events[i].id, ks_sink.events[i].id);
  }
  EXPECT_EQ(wm.stats().events_late, ks.stats().events_late);
}

TEST(WatermarkReordererTest, LargerPeriodDelaysReleases) {
  const auto w = testutil::DisorderedWorkload(5000);
  double latency_p1, latency_p64;
  {
    WatermarkReorderer handler(Opt(Millis(10), 1));
    CollectingSink sink;
    testutil::RunHandler(&handler, w.arrival_order, &sink);
    latency_p1 = handler.stats().buffering_latency_us.mean();
  }
  {
    WatermarkReorderer handler(Opt(Millis(10), 64));
    CollectingSink sink;
    testutil::RunHandler(&handler, w.arrival_order, &sink);
    latency_p64 = handler.stats().buffering_latency_us.mean();
  }
  EXPECT_GT(latency_p64, latency_p1);
}

TEST(WatermarkReordererTest, AllowedLatenessForwardsInsteadOfDropping) {
  WatermarkReorderer handler(Opt(0, 1, /*lateness=*/Millis(1)));
  CollectingSink sink;
  handler.OnEvent(E(0, Millis(10), Millis(10)), &sink);
  // 0.5ms behind the watermark: forwarded late.
  handler.OnEvent(E(1, Millis(10) - 500, Millis(11)), &sink);
  EXPECT_EQ(sink.late_events.size(), 1u);
  EXPECT_EQ(handler.stats().events_dropped, 0);
  // 5ms behind: dropped.
  handler.OnEvent(E(2, Millis(5), Millis(12)), &sink);
  EXPECT_EQ(sink.late_events.size(), 1u);
  EXPECT_EQ(handler.stats().events_dropped, 1);
}

TEST(WatermarkReordererTest, DropsBeyondAllowedLatenessCountedAsLate) {
  WatermarkReorderer handler(Opt(0, 1, 0));
  CollectingSink sink;
  handler.OnEvent(E(0, Millis(10), Millis(10)), &sink);
  handler.OnEvent(E(1, Millis(1), Millis(11)), &sink);
  EXPECT_EQ(handler.stats().events_late, 1);
  EXPECT_EQ(handler.stats().events_dropped, 1);
  EXPECT_TRUE(sink.late_events.empty());
  EXPECT_EQ(handler.stats().events_in, 2);
}

TEST(WatermarkReordererTest, OrderingContractHolds) {
  for (int64_t period : {int64_t{1}, int64_t{16}, int64_t{256}}) {
    WatermarkReorderer handler(Opt(Millis(20), period, Millis(5)));
    testutil::ContractCheckingSink sink;
    testutil::RunHandler(&handler,
                         testutil::DisorderedWorkload(3000).arrival_order,
                         &sink);
    EXPECT_TRUE(sink.ordered) << period;
    EXPECT_TRUE(sink.respects_watermark) << period;
    EXPECT_TRUE(sink.watermarks_monotone) << period;
  }
}

TEST(WatermarkReordererTest, FlushDrains) {
  WatermarkReorderer handler(Opt(Millis(100), 1000));
  CollectingSink sink;
  handler.OnEvent(E(0, 100, 100), &sink);
  handler.Flush(&sink);
  EXPECT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(sink.watermarks.back(), kMaxTimestamp);
}

TEST(WatermarkReordererTest, ConservationWithDrops) {
  WatermarkReorderer handler(Opt(Millis(2), 8, Millis(1)));
  CollectingSink sink;
  const auto w = testutil::DisorderedWorkload(5000);
  testutil::RunHandler(&handler, w.arrival_order, &sink);
  EXPECT_EQ(static_cast<int64_t>(sink.events.size() + sink.late_events.size()) +
                handler.stats().events_dropped,
            static_cast<int64_t>(w.arrival_order.size()));
}

TEST(WatermarkReordererTest, RejectsBadOptions) {
  EXPECT_DEATH(WatermarkReorderer handler(Opt(-1, 1)), "Check failed");
  EXPECT_DEATH(WatermarkReorderer handler(Opt(0, 0)), "Check failed");
}

TEST(WatermarkReordererTest, Name) {
  WatermarkReorderer handler(Opt(0, 1));
  EXPECT_EQ(handler.name(), "watermark");
}

}  // namespace
}  // namespace streamq
