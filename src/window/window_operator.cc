#include "window/window_operator.h"

#include <algorithm>

#include "common/logging.h"

namespace streamq {

WindowedAggregation::WindowedAggregation(const Options& options,
                                         WindowResultSink* sink)
    : options_(options), sink_(sink), agg_spec_(options.aggregate) {
  STREAMQ_CHECK(sink != nullptr);
  STREAMQ_CHECK_OK(options.window.Validate());
  STREAMQ_CHECK_OK(options.aggregate.Validate());
  STREAMQ_CHECK_GE(options.allowed_lateness, 0);
  if (options_.engine == Engine::kLegacy) return;

  if (options_.engine == Engine::kAmend) {
    amend_store_ = std::make_unique<AmendWindowStore>(options_.window.slide);
  } else {
    store_ = std::make_unique<FlatWindowStore>(options_.window.slide);
  }
  inline_kind_ = IsInlineAggKind(agg_spec_.kind);
  // Pane sharing folds each same-(pane, key) run once and merges the
  // partial into every covering window: correct for any window family, but
  // only profitable when windows overlap, and only byte-identical to the
  // per-tuple path for grouping-exact kinds. Gate on exactly-tiling
  // sliding windows; kAuto additionally requires bit-exact merges.
  const WindowSpec& w = options_.window;
  const bool tiling_sliding = w.slide < w.size && w.size % w.slide == 0;
  switch (options_.pane_sharing) {
    case PaneSharing::kOff:
      pane_active_ = false;
      break;
    case PaneSharing::kAuto:
      pane_active_ =
          inline_kind_ && tiling_sliding && PaneMergeIsExact(agg_spec_.kind);
      break;
    case PaneSharing::kForce:
      pane_active_ = inline_kind_ && tiling_sliding;
      break;
  }
  if (options_.engine == Engine::kAmend) {
    BindEngine<AmendWindowStore>();
  } else {
    BindEngine<FlatWindowStore>();
  }
}

template <class Store>
void WindowedAggregation::BindEngine() {
  wm_fn_ = &WindowedAggregation::HotOnWatermark<Store>;
  kwm_fn_ = &WindowedAggregation::HotOnKeyedWatermark<Store>;
  late_fn_ = &WindowedAggregation::HotOnLateEvent<Store>;
  switch (agg_spec_.kind) {
    case AggKind::kCount:
      BindHotFns<AggKind::kCount, Store>();
      break;
    case AggKind::kSum:
      BindHotFns<AggKind::kSum, Store>();
      break;
    case AggKind::kMean:
      BindHotFns<AggKind::kMean, Store>();
      break;
    case AggKind::kMin:
      BindHotFns<AggKind::kMin, Store>();
      break;
    case AggKind::kMax:
      BindHotFns<AggKind::kMax, Store>();
      break;
    case AggKind::kVariance:
      BindHotFns<AggKind::kVariance, Store>();
      break;
    case AggKind::kStdDev:
      BindHotFns<AggKind::kStdDev, Store>();
      break;
    default:
      one_fn_ = &WindowedAggregation::FoldEventHeavy<Store>;
      batch_fn_ = &WindowedAggregation::FoldBatchHeavy<Store>;
      break;
  }
}

template <AggKind K, class Store>
void WindowedAggregation::BindHotFns() {
  one_fn_ = &WindowedAggregation::FoldEventHot<K, Store>;
  batch_fn_ = pane_active_ ? &WindowedAggregation::FoldBatchPaned<K, Store>
                           : &WindowedAggregation::FoldBatchHot<K, Store>;
}

// ---------------------------------------------------------------------------
// Legacy engine: std::map over (start, key), polymorphic accumulators. The
// reference implementation the hot engine is pinned against.
// ---------------------------------------------------------------------------

WindowedAggregation::WindowState* WindowedAggregation::GetOrCreateState(
    TimestampUs window_start, int64_t key) {
  const StateKey sk{window_start, key};
  if (cached_state_ != nullptr && cached_key_ == sk) return cached_state_;
  auto it = windows_.find(sk);
  if (it == windows_.end()) {
    WindowState state;
    state.acc = MakeAggregator(agg_spec_);
    it = windows_.emplace(sk, std::move(state)).first;
    stats_.max_live_windows = std::max(
        stats_.max_live_windows, static_cast<int64_t>(windows_.size()));
  }
  cached_key_ = sk;
  cached_state_ = &it->second;
  return cached_state_;
}

void WindowedAggregation::FoldEvent(const Event& e) {
  ++stats_.events;
  last_activity_ = std::max(last_activity_, e.arrival_time);
  ForEachWindow(options_.window, e.event_time, [this, &e](
                                                   const WindowBounds& w) {
    WindowState* state = GetOrCreateState(w.start, e.key);
    state->acc->Add(e.value);
    // In-order events never target fired windows (their window end is above
    // the watermark by construction), so no revision logic here.
  });
}

void WindowedAggregation::Emit(const StateKey& sk, WindowState* state,
                               TimestampUs now, bool revision) {
  WindowResult r;
  r.bounds = WindowBounds{sk.first, sk.first + options_.window.size};
  r.key = sk.second;
  r.value = state->acc->Value();
  r.tuple_count = state->acc->count();
  r.emit_stream_time = now;
  r.is_revision = revision;
  r.revision_index = revision ? ++state->revisions : 0;
  state->fired = true;
  state->dirty_since_fire = false;
  if (revision) {
    ++stats_.revisions;
  } else {
    ++stats_.windows_fired;
  }
  sink_->OnResult(r);
  if (observer_ != nullptr) {
    observer_->OnWindowFired(r);
    if (revision) observer_->OnAmend(r);
  }
}

void WindowedAggregation::LegacyOnWatermark(TimestampUs watermark,
                                            TimestampUs stream_time) {
  cached_state_ = nullptr;  // The purge loop below may erase the memo target.

  auto it = windows_.begin();
  while (it != windows_.end()) {
    const TimestampUs end = it->first.first + options_.window.size;
    const bool fire = end <= watermark && !it->second.fired;
    // Saturating end + allowed_lateness (watermark can be kMaxTimestamp).
    const TimestampUs retire_at =
        (end > kMaxTimestamp - options_.allowed_lateness)
            ? kMaxTimestamp
            : end + options_.allowed_lateness;
    const bool purge = retire_at <= watermark || watermark == kMaxTimestamp;
    if (!fire && !purge && end > watermark) {
      // Map is ordered by window start; with fixed-size windows, both the
      // fire and purge conditions are monotone — nothing further can match.
      break;
    }
    if (fire) {
      Emit(it->first, &it->second, stream_time, /*revision=*/false);
    }
    if (purge) {
      if (it->second.fired && it->second.dirty_since_fire) {
        // Batch-refinement mode: flush pending amendments as one revision.
        Emit(it->first, &it->second, stream_time, /*revision=*/true);
      } else if (!it->second.fired) {
        // Purge without fire can only happen at the terminal watermark for
        // windows that never saw their end watermark; fire them now.
        Emit(it->first, &it->second, stream_time, /*revision=*/false);
      }
      it = windows_.erase(it);
      if (observer_ != nullptr) observer_->OnWindowPurged(end, windows_.size());
    } else {
      ++it;
    }
  }
}

void WindowedAggregation::LegacyOnKeyedWatermark(int64_t key,
                                                 TimestampUs watermark,
                                                 TimestampUs stream_time) {
  // Fire this key's complete windows without waiting for the merged
  // watermark. Purge stays with the merged watermark (OnWatermark). Firing
  // mutates state in place (map nodes are stable), but drop the lookup
  // memo anyway: this path runs interleaved with per-key purge policies and
  // a stale memo here is the dangling-pointer hazard class the flat store
  // guards against with its epoch.
  cached_state_ = nullptr;
  for (auto& [sk, state] : windows_) {
    if (sk.second != key || state.fired) continue;
    const TimestampUs end = sk.first + options_.window.size;
    if (end > watermark) break;  // Ordered by start; later entries are later.
    Emit(sk, &state, stream_time, /*revision=*/false);
  }
}

void WindowedAggregation::LegacyOnLateEvent(const Event& e) {
  for (const WindowBounds& w : AssignWindows(options_.window, e.event_time)) {
    const StateKey sk{w.start, e.key};
    auto it = windows_.find(sk);
    if (it == windows_.end()) {
      // No state yet: either the window was purged (a real quality loss) or
      // no on-time tuple of this key ever touched it. Admit the tuple when
      // the window is still open (it has not fired, so the contribution is
      // free) or when the lateness policy allows amending.
      const bool window_open = w.end > last_watermark_;
      if (window_open ||
          (options_.allowed_lateness > 0 &&
           w.end + options_.allowed_lateness > last_watermark_)) {
        // Window state never existed (no on-time tuple) but is still within
        // lateness: create it so the late tuple is not lost.
        WindowState* state = GetOrCreateState(w.start, e.key);
        state->acc->Add(e.value);
        ++stats_.late_applied;
        if (w.end <= last_watermark_) {
          // Window already semantically closed: this is a (first) firing
          // with the late data included.
          if (options_.emit_revision_per_update) {
            Emit(sk, state, e.arrival_time, /*revision=*/false);
          } else {
            state->dirty_since_fire = true;
            state->fired = true;
          }
        }
        continue;
      }
      ++stats_.late_dropped;
      if (observer_ != nullptr) observer_->OnWindowLateDropped(e);
      continue;
    }
    WindowState* state = &it->second;
    state->acc->Add(e.value);
    ++stats_.late_applied;
    if (state->fired) {
      if (options_.emit_revision_per_update) {
        Emit(sk, state, e.arrival_time, /*revision=*/true);
      } else {
        state->dirty_since_fire = true;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Hot/amend engines: inline states in a flat (kHot) or finger-B-tree
// (kAmend) store, fold-plan memo, pane-shared batch folding. Result- and
// stat-equivalent to the legacy engine above (aggregation_equivalence_test
// and amend_equivalence_test pin this byte-for-byte).
// ---------------------------------------------------------------------------

template <class Store>
WindowedAggregation::Slot* WindowedAggregation::GetOrCreateSlot(
    Store* store, TimestampUs window_start, int64_t key) {
  bool created = false;
  Slot* s = store->GetOrCreate(window_start, key, &created);
  if (created) {
    if (!inline_kind_) s->acc = MakeAggregator(agg_spec_);
    stats_.max_live_windows = std::max(stats_.max_live_windows,
                                       static_cast<int64_t>(store->size()));
  }
  return s;
}

template <class Store>
void WindowedAggregation::RebuildPlan(Store* store, TimestampUs ts,
                                      int64_t key) {
  const DurationUs size = options_.window.size;
  const DurationUs slide = options_.window.slide;
  const int64_t q_last = window_internal::FloorDiv(ts, slide);
  const int64_t q_first = window_internal::FloorDiv(ts - size, slide) + 1;
  // The covering set {q_first..q_last} is constant while both quotients
  // are: intersect the two preimage intervals. For sampling gaps
  // (q_first > q_last) this yields the gap itself and num == 0.
  plan_.valid_begin = std::max(q_last * slide, (q_first - 1) * slide + size);
  plan_.valid_end = std::min((q_last + 1) * slide, q_first * slide + size);
  plan_.key = key;
  const int64_t num = q_last - q_first + 1;
  if (num > FoldPlan::kMaxWindows) {
    // Extreme size/slide fanout: fold via ForEachWindow, no slot memo (and
    // so no epoch dependency).
    plan_.num = FoldPlan::kOversized;
    return;
  }
  plan_.num = static_cast<int>(std::max<int64_t>(num, 0));
  for (int i = 0; i < plan_.num; ++i) {
    plan_.slots[i] = GetOrCreateSlot(store, (q_first + i) * slide, key);
  }
  plan_.epoch = store->epoch();  // After creation-driven bumps.
}

template <AggKind K, class Store>
void WindowedAggregation::FoldEventHot(const Event& e) {
  Store* store = GetStore<Store>();
  ++stats_.events;
  last_activity_ = std::max(last_activity_, e.arrival_time);
  if (!PlanHits(e, store->epoch())) RebuildPlan(store, e.event_time, e.key);
  if (plan_.num >= 0) {
    for (int i = 0; i < plan_.num; ++i) {
      InlineFold<K>(plan_.slots[i]->state, e.value);
    }
    return;
  }
  ForEachWindow(options_.window, e.event_time,
                [this, store, &e](const WindowBounds& w) {
                  InlineFold<K>(GetOrCreateSlot(store, w.start, e.key)->state,
                                e.value);
                });
}

template <AggKind K, class Store>
void WindowedAggregation::FoldBatchHot(std::span<const Event> events) {
  for (const Event& e : events) FoldEventHot<K, Store>(e);
}

template <AggKind K, class Store>
void WindowedAggregation::FoldBatchPaned(std::span<const Event> events) {
  Store* store = GetStore<Store>();
  // Fold each maximal run of events sharing one covering-window set (same
  // pane, same key) into a single partial, then merge the partial into the
  // size/slide covering windows once — one fold per tuple plus one merge
  // per (run, window) instead of one fold per (tuple, window).
  size_t i = 0;
  while (i < events.size()) {
    const Event& head = events[i];
    ++stats_.events;
    last_activity_ = std::max(last_activity_, head.arrival_time);
    if (!PlanHits(head, store->epoch())) {
      RebuildPlan(store, head.event_time, head.key);
    }
    if (plan_.num < 0) {  // Oversized fanout: per-tuple fallback.
      ForEachWindow(options_.window, head.event_time,
                    [this, store, &head](const WindowBounds& w) {
                      InlineFold<K>(
                          GetOrCreateSlot(store, w.start, head.key)->state,
                          head.value);
                    });
      ++i;
      continue;
    }
    AggregateState partial;
    InlineFold<K>(partial, head.value);
    size_t j = i + 1;
    // No store mutation inside the run, so the plan stays valid; PlanHits
    // is interval + key only from here.
    while (j < events.size() && events[j].key == plan_.key &&
           events[j].event_time >= plan_.valid_begin &&
           events[j].event_time < plan_.valid_end) {
      InlineFold<K>(partial, events[j].value);
      ++stats_.events;
      last_activity_ = std::max(last_activity_, events[j].arrival_time);
      ++j;
    }
    for (int k = 0; k < plan_.num; ++k) {
      InlineMerge<K>(plan_.slots[k]->state, partial);
    }
    i = j;
  }
}

template <class Store>
void WindowedAggregation::FoldEventHeavy(const Event& e) {
  Store* store = GetStore<Store>();
  ++stats_.events;
  last_activity_ = std::max(last_activity_, e.arrival_time);
  if (!PlanHits(e, store->epoch())) RebuildPlan(store, e.event_time, e.key);
  if (plan_.num >= 0) {
    for (int i = 0; i < plan_.num; ++i) plan_.slots[i]->acc->Add(e.value);
    return;
  }
  ForEachWindow(options_.window, e.event_time,
                [this, store, &e](const WindowBounds& w) {
                  GetOrCreateSlot(store, w.start, e.key)->acc->Add(e.value);
                });
}

template <class Store>
void WindowedAggregation::FoldBatchHeavy(std::span<const Event> events) {
  for (const Event& e : events) FoldEventHeavy<Store>(e);
}

void WindowedAggregation::FoldValueDyn(Slot& slot, double v) {
  if (inline_kind_) {
    InlineFoldDyn(agg_spec_.kind, slot.state, v);
  } else {
    slot.acc->Add(v);
  }
}

void WindowedAggregation::EmitSlot(TimestampUs window_start, Slot& slot,
                                   TimestampUs now, bool revision) {
  WindowResult r;
  r.bounds = WindowBounds{window_start, window_start + options_.window.size};
  r.key = slot.key;
  if (inline_kind_) {
    r.value = InlineValueDyn(agg_spec_.kind, slot.state);
    r.tuple_count = slot.state.n;
  } else {
    r.value = slot.acc->Value();
    r.tuple_count = slot.acc->count();
  }
  r.emit_stream_time = now;
  r.is_revision = revision;
  r.revision_index = revision ? ++slot.revisions : 0;
  slot.fired = true;
  slot.dirty_since_fire = false;
  if (revision) {
    ++stats_.revisions;
  } else {
    ++stats_.windows_fired;
  }
  sink_->OnResult(r);
  if (observer_ != nullptr) {
    observer_->OnWindowFired(r);
    if (revision) observer_->OnAmend(r);
  }
}

template <class Store>
void WindowedAggregation::HotOnWatermark(TimestampUs watermark,
                                         TimestampUs stream_time) {
  Store* store = GetStore<Store>();
  plan_.num = FoldPlan::kInvalid;  // Purges below invalidate slot pointers.
  // Mirrors LegacyOnWatermark entry for entry: buckets ascend by start and
  // SortedByKey ascends by key, reproducing the map's (start, key) order;
  // `live` tracks the post-erase store size the legacy observer call saw.
  size_t live = store->size();
  store->Scan([&](typename Store::Bucket& b) {
    const TimestampUs end = b.start() + options_.window.size;
    const bool can_fire = end <= watermark;
    const TimestampUs retire_at =
        (end > kMaxTimestamp - options_.allowed_lateness)
            ? kMaxTimestamp
            : end + options_.allowed_lateness;
    const bool purge = retire_at <= watermark || watermark == kMaxTimestamp;
    if (!can_fire && !purge) {
      // end > watermark and nothing retires: monotone in start, stop.
      return Store::Visit::kStop;
    }
    for (uint32_t idx : b.SortedByKey()) {
      Slot& s = b.slot(idx);
      if (can_fire && !s.fired) {
        EmitSlot(b.start(), s, stream_time, /*revision=*/false);
      }
      if (purge) {
        if (s.fired && s.dirty_since_fire) {
          // Batch-refinement mode: flush pending amendments as one revision.
          EmitSlot(b.start(), s, stream_time, /*revision=*/true);
        } else if (!s.fired) {
          // Terminal-watermark purge of a window that never saw its end
          // watermark; fire it now.
          EmitSlot(b.start(), s, stream_time, /*revision=*/false);
        }
        --live;
        if (observer_ != nullptr) observer_->OnWindowPurged(end, live);
      }
    }
    return purge ? Store::Visit::kPurge : Store::Visit::kKeep;
  });
}

template <class Store>
void WindowedAggregation::HotOnKeyedWatermark(int64_t key,
                                              TimestampUs watermark,
                                              TimestampUs stream_time) {
  Store* store = GetStore<Store>();
  store->Scan([&](typename Store::Bucket& b) {
    const TimestampUs end = b.start() + options_.window.size;
    if (end > watermark) return Store::Visit::kStop;
    Slot* s = b.Find(key);
    if (s != nullptr && !s->fired) {
      EmitSlot(b.start(), *s, stream_time, /*revision=*/false);
    }
    return Store::Visit::kKeep;
  });
}

template <class Store>
void WindowedAggregation::HotOnLateEvent(const Event& e) {
  Store* store = GetStore<Store>();
  for (const WindowBounds& w : AssignWindows(options_.window, e.event_time)) {
    Slot* s = store->Find(w.start, e.key);
    if (s == nullptr) {
      const bool window_open = w.end > last_watermark_;
      if (window_open ||
          (options_.allowed_lateness > 0 &&
           w.end + options_.allowed_lateness > last_watermark_)) {
        s = GetOrCreateSlot(store, w.start, e.key);
        FoldValueDyn(*s, e.value);
        ++stats_.late_applied;
        if (w.end <= last_watermark_) {
          if (options_.emit_revision_per_update) {
            EmitSlot(w.start, *s, e.arrival_time, /*revision=*/false);
          } else {
            s->dirty_since_fire = true;
            s->fired = true;
          }
        }
        continue;
      }
      ++stats_.late_dropped;
      if (observer_ != nullptr) observer_->OnWindowLateDropped(e);
      continue;
    }
    FoldValueDyn(*s, e.value);
    ++stats_.late_applied;
    if (s->fired) {
      if (options_.emit_revision_per_update) {
        EmitSlot(w.start, *s, e.arrival_time, /*revision=*/true);
      } else {
        s->dirty_since_fire = true;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// EventSink entry points: one engine branch, then straight-line code.
// ---------------------------------------------------------------------------

void WindowedAggregation::OnEvent(const Event& e) {
  if (one_fn_ != nullptr) {
    (this->*one_fn_)(e);
  } else {
    FoldEvent(e);
  }
}

void WindowedAggregation::OnEvents(std::span<const Event> events) {
  if (batch_fn_ != nullptr) {
    (this->*batch_fn_)(events);
  } else {
    for (const Event& e : events) FoldEvent(e);
  }
}

void WindowedAggregation::OnWatermark(TimestampUs watermark,
                                      TimestampUs stream_time) {
  if (watermark <= last_watermark_) return;
  last_watermark_ = watermark;
  if (wm_fn_ != nullptr) {
    (this->*wm_fn_)(watermark, stream_time);
  } else {
    LegacyOnWatermark(watermark, stream_time);
  }
}

void WindowedAggregation::OnKeyedWatermark(int64_t key, TimestampUs watermark,
                                           TimestampUs stream_time) {
  if (!options_.per_key_watermarks) return;
  if (kwm_fn_ != nullptr) {
    (this->*kwm_fn_)(key, watermark, stream_time);
  } else {
    LegacyOnKeyedWatermark(key, watermark, stream_time);
  }
}

void WindowedAggregation::OnLateEvent(const Event& e) {
  ++stats_.events;
  last_activity_ = std::max(last_activity_, e.arrival_time);
  if (late_fn_ != nullptr) {
    (this->*late_fn_)(e);
  } else {
    LegacyOnLateEvent(e);
  }
}

}  // namespace streamq
