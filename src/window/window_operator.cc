#include "window/window_operator.h"

#include <algorithm>

#include "common/logging.h"

namespace streamq {

WindowedAggregation::WindowedAggregation(const Options& options,
                                         WindowResultSink* sink)
    : options_(options), sink_(sink), agg_spec_(options.aggregate) {
  STREAMQ_CHECK(sink != nullptr);
  STREAMQ_CHECK_OK(options.window.Validate());
  STREAMQ_CHECK_OK(options.aggregate.Validate());
  STREAMQ_CHECK_GE(options.allowed_lateness, 0);
}

WindowedAggregation::WindowState* WindowedAggregation::GetOrCreateState(
    TimestampUs window_start, int64_t key) {
  const StateKey sk{window_start, key};
  if (cached_state_ != nullptr && cached_key_ == sk) return cached_state_;
  auto it = windows_.find(sk);
  if (it == windows_.end()) {
    WindowState state;
    state.acc = MakeAggregator(agg_spec_);
    it = windows_.emplace(sk, std::move(state)).first;
    stats_.max_live_windows = std::max(
        stats_.max_live_windows, static_cast<int64_t>(windows_.size()));
  }
  cached_key_ = sk;
  cached_state_ = &it->second;
  return cached_state_;
}

void WindowedAggregation::FoldEvent(const Event& e) {
  ++stats_.events;
  last_activity_ = std::max(last_activity_, e.arrival_time);
  ForEachWindow(options_.window, e.event_time, [this, &e](
                                                   const WindowBounds& w) {
    WindowState* state = GetOrCreateState(w.start, e.key);
    state->acc->Add(e.value);
    // In-order events never target fired windows (their window end is above
    // the watermark by construction), so no revision logic here.
  });
}

void WindowedAggregation::OnEvent(const Event& e) { FoldEvent(e); }

void WindowedAggregation::OnEvents(std::span<const Event> events) {
  for (const Event& e : events) FoldEvent(e);
}

void WindowedAggregation::Emit(const StateKey& sk, WindowState* state,
                               TimestampUs now, bool revision) {
  WindowResult r;
  r.bounds = WindowBounds{sk.first, sk.first + options_.window.size};
  r.key = sk.second;
  r.value = state->acc->Value();
  r.tuple_count = state->acc->count();
  r.emit_stream_time = now;
  r.is_revision = revision;
  r.revision_index = revision ? ++state->revisions : 0;
  state->fired = true;
  state->dirty_since_fire = false;
  if (revision) {
    ++stats_.revisions;
  } else {
    ++stats_.windows_fired;
  }
  sink_->OnResult(r);
  if (observer_ != nullptr) observer_->OnWindowFired(r);
}

void WindowedAggregation::OnWatermark(TimestampUs watermark,
                                      TimestampUs stream_time) {
  if (watermark <= last_watermark_) return;
  last_watermark_ = watermark;
  cached_state_ = nullptr;  // The purge loop below may erase the memo target.

  auto it = windows_.begin();
  while (it != windows_.end()) {
    const TimestampUs end = it->first.first + options_.window.size;
    const bool fire = end <= watermark && !it->second.fired;
    // Saturating end + allowed_lateness (watermark can be kMaxTimestamp).
    const TimestampUs retire_at =
        (end > kMaxTimestamp - options_.allowed_lateness)
            ? kMaxTimestamp
            : end + options_.allowed_lateness;
    const bool purge = retire_at <= watermark || watermark == kMaxTimestamp;
    if (!fire && !purge && end > watermark) {
      // Map is ordered by window start; with fixed-size windows, both the
      // fire and purge conditions are monotone — nothing further can match.
      break;
    }
    if (fire) {
      Emit(it->first, &it->second, stream_time, /*revision=*/false);
    }
    if (purge) {
      if (it->second.fired && it->second.dirty_since_fire) {
        // Batch-refinement mode: flush pending amendments as one revision.
        Emit(it->first, &it->second, stream_time, /*revision=*/true);
      } else if (!it->second.fired) {
        // Purge without fire can only happen at the terminal watermark for
        // windows that never saw their end watermark; fire them now.
        Emit(it->first, &it->second, stream_time, /*revision=*/false);
      }
      it = windows_.erase(it);
      if (observer_ != nullptr) observer_->OnWindowPurged(end, windows_.size());
    } else {
      ++it;
    }
  }
}

void WindowedAggregation::OnKeyedWatermark(int64_t key, TimestampUs watermark,
                                           TimestampUs stream_time) {
  if (!options_.per_key_watermarks) return;
  // Fire this key's complete windows without waiting for the merged
  // watermark. Purge stays with the merged watermark (OnWatermark).
  for (auto& [sk, state] : windows_) {
    if (sk.second != key || state.fired) continue;
    const TimestampUs end = sk.first + options_.window.size;
    if (end > watermark) break;  // Ordered by start; later entries are later.
    Emit(sk, &state, stream_time, /*revision=*/false);
  }
}

void WindowedAggregation::OnLateEvent(const Event& e) {
  ++stats_.events;
  last_activity_ = std::max(last_activity_, e.arrival_time);
  for (const WindowBounds& w : AssignWindows(options_.window, e.event_time)) {
    const StateKey sk{w.start, e.key};
    auto it = windows_.find(sk);
    if (it == windows_.end()) {
      // No state yet: either the window was purged (a real quality loss) or
      // no on-time tuple of this key ever touched it. Admit the tuple when
      // the window is still open (it has not fired, so the contribution is
      // free) or when the lateness policy allows amending.
      const bool window_open = w.end > last_watermark_;
      if (window_open ||
          (options_.allowed_lateness > 0 &&
           w.end + options_.allowed_lateness > last_watermark_)) {
        // Window state never existed (no on-time tuple) but is still within
        // lateness: create it so the late tuple is not lost.
        WindowState* state = GetOrCreateState(w.start, e.key);
        state->acc->Add(e.value);
        ++stats_.late_applied;
        if (w.end <= last_watermark_) {
          // Window already semantically closed: this is a (first) firing
          // with the late data included.
          if (options_.emit_revision_per_update) {
            Emit(sk, state, e.arrival_time, /*revision=*/false);
          } else {
            state->dirty_since_fire = true;
            state->fired = true;
          }
        }
        continue;
      }
      ++stats_.late_dropped;
      if (observer_ != nullptr) observer_->OnWindowLateDropped(e);
      continue;
    }
    WindowState* state = &it->second;
    state->acc->Add(e.value);
    ++stats_.late_applied;
    if (state->fired) {
      if (options_.emit_revision_per_update) {
        Emit(sk, state, e.arrival_time, /*revision=*/true);
      } else {
        state->dirty_since_fire = true;
      }
    }
  }
}

}  // namespace streamq
