#ifndef STREAMQ_WINDOW_PANED_WINDOW_OPERATOR_H_
#define STREAMQ_WINDOW_PANED_WINDOW_OPERATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <utility>

#include "agg/aggregate.h"
#include "common/time.h"
#include "disorder/event_sink.h"
#include "window/window_operator.h"

namespace streamq {

/// Pane-optimized sliding-window aggregation (the classic "panes" / slicing
/// technique): each tuple is folded into exactly ONE pane — the
/// slide-aligned interval containing it — instead of into all size/slide
/// overlapping windows. A window result is produced by merging its
/// size/slide pane partials at fire time.
///
/// Per-tuple cost drops from O(size/slide) to O(1); fire cost is
/// O(size/slide) per window, amortized O(1/slide·size) per tuple only at
/// window boundaries. For a 60s/1s sliding window this is a 60x per-tuple
/// reduction — the ablation bench R-F14 measures it.
///
/// Requirements: size % slide == 0 (exact pane tiling) and mergeable
/// aggregates (all of ours are). Late amendments are not supported
/// (allowed_lateness is effectively 0: late tuples are counted dropped) —
/// refinement needs per-window state, which is exactly what panes share
/// away. Results are identical to WindowedAggregation with
/// allowed_lateness = 0, which the equivalence tests assert.
class PanedWindowedAggregation : public EventSink {
 public:
  struct Options {
    WindowSpec window = WindowSpec::Sliding(Seconds(10), Seconds(1));
    AggregateSpec aggregate;
  };

  struct Stats {
    int64_t events = 0;
    int64_t late_applied = 0;  // Late tuples folded into a live pane.
    int64_t late_dropped = 0;  // Late tuples whose pane was already consumed.
    int64_t windows_fired = 0;
    int64_t max_live_panes = 0;
  };

  PanedWindowedAggregation(const Options& options, WindowResultSink* sink);

  void OnEvent(const Event& e) override;
  void OnWatermark(TimestampUs watermark, TimestampUs stream_time) override;
  void OnLateEvent(const Event& e) override;

  const Stats& stats() const { return stats_; }
  size_t live_panes() const { return panes_.size(); }

 private:
  using PaneKey = std::pair<TimestampUs, int64_t>;  // (pane start, key).

  /// Fires the window starting at `start` for every key with data in it.
  void FireWindow(TimestampUs start, TimestampUs stream_time);

  Options options_;
  WindowResultSink* sink_;
  std::map<PaneKey, std::unique_ptr<Aggregator>> panes_;
  /// Next window start to consider firing; kMinTimestamp until first event.
  TimestampUs fire_cursor_ = kMinTimestamp;
  TimestampUs last_watermark_ = kMinTimestamp;
  Stats stats_;
};

}  // namespace streamq

#endif  // STREAMQ_WINDOW_PANED_WINDOW_OPERATOR_H_
