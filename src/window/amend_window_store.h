#ifndef STREAMQ_WINDOW_AMEND_WINDOW_STORE_H_
#define STREAMQ_WINDOW_AMEND_WINDOW_STORE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/time.h"
#include "window/flat_window_store.h"
#include "window/window.h"

namespace streamq {

/// Time-indexed per-(window-start, key) state store for the amend-capable
/// window engine (`Engine::kAmend`), in the spirit of the FiBA line of
/// sliding-window aggregation structures: a shallow B-tree over
/// window-start buckets with *finger* hints, built for streams whose tuples
/// reach the operator out of order — no reorder buffer in front.
///
///  * The time dimension is a two-level B+-tree: leaves hold short sorted
///    runs of window-start buckets, the root is a sorted array of leaves
///    with a parallel min-start index for binary search. Height is
///    constant, so an arbitrary out-of-order access is two binary searches
///    over small arrays — O(log n) with tiny constants.
///  * A *back finger* tracks the frontier leaf: tuples at or past the
///    frontier (the overwhelmingly common case even in disordered streams)
///    append in amortized O(1) without touching the root index.
///  * An *amend finger* remembers the last leaf a non-frontier access
///    landed in: stragglers cluster in time, so repeated amendments to the
///    same region skip the root search (FiBA's "finger" insight: cost
///    scales with the *distance* d of the out-of-order access, not with
///    store size).
///  * Evictions are bulk: a watermark purge wave marks dead buckets during
///    the scan and each leaf compacts once (one erase per leaf, empty
///    leaves dropped in one root pass) instead of shifting per bucket.
///
/// Buckets and slots are `FlatWindowStore::Bucket`/`Slot` verbatim — same
/// key probe tables, same inline `AggregateState` payloads — so the window
/// operator's fold plans, pane-shared batch folds and emission paths work
/// unchanged over either store, and the two engines stay byte-identical.
///
/// Pointer stability and epoch() follow the FlatWindowStore contract:
/// slot insertions and bucket purges bump epoch(); cached Slot pointers
/// must revalidate against it.
class AmendWindowStore {
 public:
  using Slot = FlatWindowStore::Slot;
  using Bucket = FlatWindowStore::Bucket;
  using Visit = FlatWindowStore::Visit;

  /// `slide` is accepted for construction parity with FlatWindowStore
  /// (window starts are slide-aligned); the tree orders by raw start and
  /// needs no ring arithmetic.
  explicit AmendWindowStore(DurationUs slide);

  /// Returns the state slot for (start, key), creating bucket and slot as
  /// needed — in any time order. `*created` reports whether the slot is
  /// new (the caller initializes heavy accumulators).
  Slot* GetOrCreate(TimestampUs start, int64_t key, bool* created);

  /// Lookup without creation; nullptr if absent.
  Slot* Find(TimestampUs start, int64_t key);

  /// Visits live buckets in ascending window-start order. The visitor
  /// returns a Visit action; kPurge removals are batched per leaf (bulk
  /// eviction), kStop ends the scan after the current bucket.
  template <typename Fn>
  void Scan(Fn&& fn) {
    if (bucket_count_ == 0) return;
    bool stopped = false;
    bool structure_changed = false;
    for (auto& leaf_ptr : leaves_) {
      Leaf& leaf = *leaf_ptr;
      bool purged_any = false;
      for (std::unique_ptr<Bucket>& b : leaf.buckets) {
        const Visit action = fn(*b);
        if (action == Visit::kStop) {
          stopped = true;
          break;
        }
        if (action == Visit::kPurge) {
          slot_count_ -= b->size();
          --bucket_count_;
          ++epoch_;
          b.reset();  // Marked dead; compacted in one pass below.
          purged_any = true;
        }
      }
      if (purged_any) {
        leaf.buckets.erase(
            std::remove(leaf.buckets.begin(), leaf.buckets.end(), nullptr),
            leaf.buckets.end());
        structure_changed = true;
      }
      if (stopped) break;
    }
    if (structure_changed) CompactLeaves();
  }

  /// Live (start, key) states across all buckets.
  size_t size() const { return slot_count_; }
  size_t live_buckets() const { return bucket_count_; }

  /// Bumped on every slot insertion and bucket purge — any mutation that
  /// can invalidate a cached Slot pointer.
  uint64_t epoch() const { return epoch_; }

 private:
  struct Leaf {
    std::vector<std::unique_ptr<Bucket>> buckets;  // Ascending start.
  };

  static std::unique_ptr<Bucket> MakeBucket(TimestampUs start);

  Bucket* GetOrCreateBucket(TimestampUs start);
  /// Index of the leaf whose start range covers `start` (the last leaf
  /// with min start <= `start`; 0 if `start` precedes everything).
  size_t FindLeafIndex(TimestampUs start) const;
  /// Splits leaves_[li] in half, keeping root index and fingers coherent.
  void SplitLeaf(size_t li);
  /// Drops empty leaves, rebuilds the min-start index, resets fingers.
  void CompactLeaves();

  DurationUs slide_;
  std::vector<std::unique_ptr<Leaf>> leaves_;  // Ascending min start.
  std::vector<TimestampUs> leaf_min_;          // leaves_[i] min start.
  size_t finger_leaf_ = 0;  // Amend finger; valid iff bucket_count_ > 0.
  size_t bucket_count_ = 0;
  size_t slot_count_ = 0;
  uint64_t epoch_ = 0;
};

}  // namespace streamq

#endif  // STREAMQ_WINDOW_AMEND_WINDOW_STORE_H_
