#include "window/paned_window_operator.h"

#include <algorithm>

#include "common/logging.h"

namespace streamq {

namespace {

int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

}  // namespace

PanedWindowedAggregation::PanedWindowedAggregation(const Options& options,
                                                   WindowResultSink* sink)
    : options_(options), sink_(sink) {
  STREAMQ_CHECK(sink != nullptr);
  STREAMQ_CHECK_OK(options.window.Validate());
  STREAMQ_CHECK_OK(options.aggregate.Validate());
  STREAMQ_CHECK_LE(options.window.slide, options.window.size)
      << "paned aggregation requires slide <= size";
  STREAMQ_CHECK_EQ(options.window.size % options.window.slide, 0)
      << "paned aggregation requires size % slide == 0";
}

void PanedWindowedAggregation::OnEvent(const Event& e) {
  ++stats_.events;
  const TimestampUs pane_start =
      FloorDiv(e.event_time, options_.window.slide) * options_.window.slide;
  auto& acc = panes_[{pane_start, e.key}];
  if (!acc) acc = MakeAggregator(options_.aggregate);
  acc->Add(e.value);
  stats_.max_live_panes = std::max(stats_.max_live_panes,
                                   static_cast<int64_t>(panes_.size()));
  // The earliest window containing this pane starts size - slide before it.
  const TimestampUs first_window_start =
      pane_start - (options_.window.size - options_.window.slide);
  if (fire_cursor_ == kMinTimestamp) {
    fire_cursor_ = first_window_start;
  } else if (panes_.size() == 1 && first_window_start > fire_cursor_) {
    // The operator was idle (no live panes): every window between the
    // cursor and this pane is empty, so skip them instead of firing each.
    fire_cursor_ = first_window_start;
  }
}

void PanedWindowedAggregation::FireWindow(TimestampUs start,
                                          TimestampUs stream_time) {
  const TimestampUs end = start + options_.window.size;
  // Scan the window's panes, grouped per key. Entries are ordered by
  // (pane_start, key); collect per-key merged accumulators.
  std::map<int64_t, std::unique_ptr<Aggregator>> per_key;
  for (auto it = panes_.lower_bound({start, INT64_MIN});
       it != panes_.end() && it->first.first < end; ++it) {
    auto& merged = per_key[it->first.second];
    if (!merged) merged = it->second->MakeEmpty();
    merged->Merge(*it->second);
  }
  for (const auto& [key, acc] : per_key) {
    if (acc->count() == 0) continue;
    WindowResult r;
    r.bounds = WindowBounds{start, end};
    r.key = key;
    r.value = acc->Value();
    r.tuple_count = acc->count();
    r.emit_stream_time = stream_time;
    ++stats_.windows_fired;
    sink_->OnResult(r);
  }
}

void PanedWindowedAggregation::OnWatermark(TimestampUs watermark,
                                           TimestampUs stream_time) {
  if (watermark <= last_watermark_) return;
  last_watermark_ = watermark;
  if (fire_cursor_ == kMinTimestamp) return;  // No data yet.

  // Fire every complete window with live panes, in order. The !empty()
  // guard also terminates the kMaxTimestamp (terminal) watermark, which
  // otherwise satisfies the time condition forever.
  while (!panes_.empty() &&
         fire_cursor_ <= kMaxTimestamp - options_.window.size &&
         fire_cursor_ + options_.window.size <= watermark) {
    // Windows strictly before the earliest live pane are empty: skip ahead.
    const TimestampUs earliest_pane = panes_.begin()->first.first;
    const TimestampUs first_nonempty =
        earliest_pane - (options_.window.size - options_.window.slide);
    if (first_nonempty > fire_cursor_) fire_cursor_ = first_nonempty;
    if (fire_cursor_ > kMaxTimestamp - options_.window.size ||
        fire_cursor_ + options_.window.size > watermark) {
      break;
    }
    FireWindow(fire_cursor_, stream_time);
    // Purge panes no future window needs: pane [p, p+slide) is dead once
    // the window starting at p has fired, i.e. p <= fire_cursor_.
    auto it = panes_.begin();
    while (it != panes_.end() && it->first.first <= fire_cursor_) {
      it = panes_.erase(it);
    }
    fire_cursor_ += options_.window.slide;
  }
}

void PanedWindowedAggregation::OnLateEvent(const Event& e) {
  ++stats_.events;
  const TimestampUs pane_start =
      FloorDiv(e.event_time, options_.window.slide) * options_.window.slide;
  // A live (not yet purged) pane only feeds windows that have not fired, so
  // folding the late tuple in affects exactly the still-open windows — the
  // same semantics as WindowedAggregation with allowed_lateness = 0.
  if (fire_cursor_ != kMinTimestamp && pane_start < fire_cursor_) {
    ++stats_.late_dropped;
    return;
  }
  auto& acc = panes_[{pane_start, e.key}];
  if (!acc) acc = MakeAggregator(options_.aggregate);
  acc->Add(e.value);
  ++stats_.late_applied;
  if (fire_cursor_ == kMinTimestamp) {
    fire_cursor_ =
        pane_start - (options_.window.size - options_.window.slide);
  }
}

}  // namespace streamq
