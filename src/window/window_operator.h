#ifndef STREAMQ_WINDOW_WINDOW_OPERATOR_H_
#define STREAMQ_WINDOW_WINDOW_OPERATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "agg/aggregate.h"
#include "agg/aggregate_state.h"
#include "common/time.h"
#include "core/pipeline_observer.h"
#include "disorder/event_sink.h"
#include "window/amend_window_store.h"
#include "window/flat_window_store.h"
#include "window/window.h"

namespace streamq {

/// Consumer of window results.
class WindowResultSink {
 public:
  virtual ~WindowResultSink() = default;
  virtual void OnResult(const WindowResult& result) = 0;
};

/// Records every result (tests/harness).
class CollectingResultSink : public WindowResultSink {
 public:
  void OnResult(const WindowResult& result) override {
    results.push_back(result);
  }
  std::vector<WindowResult> results;
};

/// Keyed, windowed aggregation driven by the EventSink protocol of a
/// disorder handler:
///
///  * OnEvent    — in-order tuple: fold into all covering windows.
///  * OnWatermark — fire every unfired window whose end <= watermark.
///  * OnLateEvent — tuple behind the watermark: if the window state still
///    exists (within allowed lateness), fold it in; if the window already
///    fired, emit a *revision* result. Otherwise count it as dropped.
///
/// Window state is purged once the watermark passes end + allowed_lateness.
/// With a PassThrough disorder handler and allowed_lateness > 0 this
/// implements the speculative strategy: results appear immediately and are
/// amended as stragglers arrive.
///
/// Two result-equivalent execution engines (Options::engine):
///
///  * kHot (default) — light aggregate kinds fold into inline
///    `AggregateState`s (no virtual dispatch, no per-window heap
///    accumulator) stored in a `FlatWindowStore` (O(1) amortized lookup).
///    Fold dispatch is resolved once per batch, and for exactly-tiling
///    sliding windows each batch is folded once per pane run and merged
///    into the covering windows when that is bit-exact (count/min/max;
///    Options::pane_sharing). Heavy kinds (median/quantile/distinct) keep
///    the polymorphic accumulator inside the flat store.
///  * kLegacy — the original std::map + virtual-Aggregator path, kept as
///    the reference implementation the equivalence test pins kHot against.
///  * kAmend — the same inline-state hot path over an `AmendWindowStore`
///    (finger-hinted B-tree over window starts) instead of the slide-
///    aligned ring: tuples may reach OnEvent *out of order* and amend
///    already-materialized window state directly, which is what the
///    speculative emit-then-amend execution mode feeds it. Behind an
///    identical disorder handler it is byte-identical to kHot.
class WindowedAggregation : public EventSink {
 public:
  /// Execution engine selection. All engines produce byte-identical
  /// results and stats under the same sink-call sequence; kLegacy exists
  /// as the reference for equivalence testing and as an escape hatch.
  enum class Engine {
    kHot,
    kLegacy,
    kAmend,
  };

  /// Pane-shared batch folding policy (kHot engine, light kinds only).
  enum class PaneSharing {
    /// Share only when merging partials is bit-identical to per-tuple
    /// folding (count/min/max) and the window tiles exactly.
    kAuto,
    /// Never share; always per-tuple folds.
    kOff,
    /// Share for every inline kind. For sum/mean/variance/stddev this
    /// regroups floating-point reductions and may differ from the
    /// per-tuple path in the last ulps.
    kForce,
  };

  struct Options {
    WindowSpec window = WindowSpec::Tumbling(Seconds(1));
    AggregateSpec aggregate;

    /// How long after a window's end (in event time) late tuples may still
    /// amend it. 0 = late tuples beyond the watermark are dropped.
    DurationUs allowed_lateness = 0;

    /// If true, every late tuple that amends an already-fired window
    /// triggers an immediate revision emission. If false, amendments
    /// accumulate silently and a single revision fires when the window is
    /// purged (batch refinement).
    bool emit_revision_per_update = true;

    /// If true, windows fire on per-key watermarks (OnKeyedWatermark) from
    /// a KeyedDisorderHandler: key k's windows close as soon as key k's own
    /// progress allows, instead of waiting for the slowest key's merged
    /// watermark. Purging still follows the merged watermark.
    bool per_key_watermarks = false;

    Engine engine = Engine::kHot;
    PaneSharing pane_sharing = PaneSharing::kAuto;
  };

  struct Stats {
    int64_t events = 0;
    int64_t late_applied = 0;   // Late tuples folded into live state.
    int64_t late_dropped = 0;   // Late tuples whose window was gone.
    int64_t windows_fired = 0;  // First emissions.
    int64_t revisions = 0;      // Amendment emissions.
    int64_t max_live_windows = 0;
  };

  WindowedAggregation(const Options& options, WindowResultSink* sink);

  /// EventSink interface (fed by a DisorderHandler).
  void OnEvent(const Event& e) override;
  void OnEvents(std::span<const Event> events) override;
  void OnWatermark(TimestampUs watermark, TimestampUs stream_time) override;
  void OnKeyedWatermark(int64_t key, TimestampUs watermark,
                        TimestampUs stream_time) override;
  void OnLateEvent(const Event& e) override;

  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }

  /// Number of window instances currently holding state.
  size_t live_windows() const {
    if (store_ != nullptr) return store_->size();
    if (amend_store_ != nullptr) return amend_store_->size();
    return windows_.size();
  }

  /// True when this instance runs the devirtualized inline-state fold
  /// (kHot/kAmend engine and a light aggregate kind).
  bool uses_inline_states() const {
    return (store_ != nullptr || amend_store_ != nullptr) && inline_kind_;
  }

  /// True when batches are folded once per pane run and merged.
  bool uses_pane_sharing() const { return pane_active_; }

  /// Installs a read-only instrumentation observer (nullptr = none). Same
  /// zero-cost-when-off contract as DisorderHandler::set_observer.
  void set_observer(PipelineObserver* observer) { observer_ = observer; }

 private:
  // ---- Legacy engine (reference implementation) ----

  struct WindowState {
    std::unique_ptr<Aggregator> acc;
    bool fired = false;
    int32_t revisions = 0;
    /// Dirty since last emission (for batch refinement mode).
    bool dirty_since_fire = false;
  };

  /// State key ordered by (window start, key) so firing scans stop early.
  using StateKey = std::pair<TimestampUs, int64_t>;

  WindowState* GetOrCreateState(TimestampUs window_start, int64_t key);
  void Emit(const StateKey& sk, WindowState* state, TimestampUs now,
            bool revision);
  /// Folds one in-order event into all covering windows (shared by OnEvent
  /// and the batched OnEvents).
  void FoldEvent(const Event& e);
  void LegacyOnWatermark(TimestampUs watermark, TimestampUs stream_time);
  void LegacyOnKeyedWatermark(int64_t key, TimestampUs watermark,
                              TimestampUs stream_time);
  void LegacyOnLateEvent(const Event& e);

  // ---- Hot / amend engines ----
  //
  // One body of code, two stores: the fold, watermark and late paths are
  // templated on the store type (FlatWindowStore for kHot, AmendWindowStore
  // for kAmend — same Bucket/Slot/Visit vocabulary) and bound once, at
  // construction, into the member-function pointers the entry points call.

  using Slot = FlatWindowStore::Slot;

  /// Memo of the covering-window slots for the last (timestamp, key)
  /// resolved. All events with event_time in [valid_begin, valid_end) and
  /// the same key share the same covering-window set, so consecutive
  /// tuples skip window assignment and state lookup entirely. Slot
  /// pointers are revalidated against the store's epoch: any insertion or
  /// purge (late events, watermarks) invalidates the plan instead of
  /// leaving it dangling.
  struct FoldPlan {
    static constexpr int kMaxWindows = 64;
    static constexpr int kInvalid = -1;
    /// The (interval, key) is valid but the covering set is too large to
    /// memoize; fold via ForEachWindow.
    static constexpr int kOversized = -2;

    TimestampUs valid_begin = 0;
    TimestampUs valid_end = 0;  // Empty interval == never hits.
    int64_t key = 0;
    uint64_t epoch = 0;
    int num = kInvalid;
    Slot* slots[kMaxWindows];
  };

  bool PlanHits(const Event& e, uint64_t store_epoch) const {
    return e.event_time >= plan_.valid_begin &&
           e.event_time < plan_.valid_end && e.key == plan_.key &&
           plan_.num != FoldPlan::kInvalid &&
           (plan_.num == FoldPlan::kOversized || plan_.epoch == store_epoch);
  }
  /// The engine's store instance (FlatWindowStore under kHot,
  /// AmendWindowStore under kAmend).
  template <class Store>
  Store* GetStore();
  template <class Store>
  void RebuildPlan(Store* store, TimestampUs ts, int64_t key);
  template <class Store>
  Slot* GetOrCreateSlot(Store* store, TimestampUs window_start, int64_t key);
  void EmitSlot(TimestampUs window_start, Slot& slot, TimestampUs now,
                bool revision);
  /// Folds one value into a slot with runtime kind dispatch (cold paths:
  /// late events, plan-miss fallbacks for heavy kinds).
  void FoldValueDyn(Slot& slot, double v);

  template <AggKind K, class Store>
  void FoldEventHot(const Event& e);
  template <AggKind K, class Store>
  void FoldBatchHot(std::span<const Event> events);
  template <AggKind K, class Store>
  void FoldBatchPaned(std::span<const Event> events);
  template <class Store>
  void FoldEventHeavy(const Event& e);
  template <class Store>
  void FoldBatchHeavy(std::span<const Event> events);
  template <AggKind K, class Store>
  void BindHotFns();
  /// Resolves all engine entry points for one store type (kind switch for
  /// the fold pair, direct binds for watermark/late paths).
  template <class Store>
  void BindEngine();

  template <class Store>
  void HotOnWatermark(TimestampUs watermark, TimestampUs stream_time);
  template <class Store>
  void HotOnKeyedWatermark(int64_t key, TimestampUs watermark,
                           TimestampUs stream_time);
  template <class Store>
  void HotOnLateEvent(const Event& e);

  Options options_;
  WindowResultSink* sink_;
  AggregateSpec agg_spec_;
  std::map<StateKey, WindowState> windows_;  // kLegacy engine only.
  TimestampUs last_watermark_ = kMinTimestamp;
  TimestampUs last_activity_ = 0;  // Arrival time of last event seen.
  Stats stats_;
  PipelineObserver* observer_ = nullptr;

  /// Memo of the last state lookup (kLegacy): consecutive tuples
  /// overwhelmingly hit the same (window, key) slot, and map nodes are
  /// stable until erased. Invalidated whenever OnWatermark purges state.
  StateKey cached_key_{};
  WindowState* cached_state_ = nullptr;

  // kHot/kAmend engine state. Fold and watermark dispatch are resolved
  // once, at construction (one member-function-pointer indirection per
  // event / per batch instead of a virtual call per tuple per window, and
  // no per-call engine branches). All pointers stay null under kLegacy.
  std::unique_ptr<FlatWindowStore> store_;        // kHot only.
  std::unique_ptr<AmendWindowStore> amend_store_;  // kAmend only.
  bool inline_kind_ = false;
  bool pane_active_ = false;
  FoldPlan plan_;
  void (WindowedAggregation::*one_fn_)(const Event&) = nullptr;
  void (WindowedAggregation::*batch_fn_)(std::span<const Event>) = nullptr;
  void (WindowedAggregation::*wm_fn_)(TimestampUs, TimestampUs) = nullptr;
  void (WindowedAggregation::*kwm_fn_)(int64_t, TimestampUs, TimestampUs) =
      nullptr;
  void (WindowedAggregation::*late_fn_)(const Event&) = nullptr;
};

template <>
inline FlatWindowStore* WindowedAggregation::GetStore<FlatWindowStore>() {
  return store_.get();
}
template <>
inline AmendWindowStore* WindowedAggregation::GetStore<AmendWindowStore>() {
  return amend_store_.get();
}

}  // namespace streamq

#endif  // STREAMQ_WINDOW_WINDOW_OPERATOR_H_
