#ifndef STREAMQ_WINDOW_WINDOW_OPERATOR_H_
#define STREAMQ_WINDOW_WINDOW_OPERATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "agg/aggregate.h"
#include "common/time.h"
#include "core/pipeline_observer.h"
#include "disorder/event_sink.h"
#include "window/window.h"

namespace streamq {

/// Consumer of window results.
class WindowResultSink {
 public:
  virtual ~WindowResultSink() = default;
  virtual void OnResult(const WindowResult& result) = 0;
};

/// Records every result (tests/harness).
class CollectingResultSink : public WindowResultSink {
 public:
  void OnResult(const WindowResult& result) override {
    results.push_back(result);
  }
  std::vector<WindowResult> results;
};

/// Keyed, windowed aggregation driven by the EventSink protocol of a
/// disorder handler:
///
///  * OnEvent    — in-order tuple: fold into all covering windows.
///  * OnWatermark — fire every unfired window whose end <= watermark.
///  * OnLateEvent — tuple behind the watermark: if the window state still
///    exists (within allowed lateness), fold it in; if the window already
///    fired, emit a *revision* result. Otherwise count it as dropped.
///
/// Window state is purged once the watermark passes end + allowed_lateness.
/// With a PassThrough disorder handler and allowed_lateness > 0 this
/// implements the speculative strategy: results appear immediately and are
/// amended as stragglers arrive.
class WindowedAggregation : public EventSink {
 public:
  struct Options {
    WindowSpec window = WindowSpec::Tumbling(Seconds(1));
    AggregateSpec aggregate;

    /// How long after a window's end (in event time) late tuples may still
    /// amend it. 0 = late tuples beyond the watermark are dropped.
    DurationUs allowed_lateness = 0;

    /// If true, every late tuple that amends an already-fired window
    /// triggers an immediate revision emission. If false, amendments
    /// accumulate silently and a single revision fires when the window is
    /// purged (batch refinement).
    bool emit_revision_per_update = true;

    /// If true, windows fire on per-key watermarks (OnKeyedWatermark) from
    /// a KeyedDisorderHandler: key k's windows close as soon as key k's own
    /// progress allows, instead of waiting for the slowest key's merged
    /// watermark. Purging still follows the merged watermark.
    bool per_key_watermarks = false;
  };

  struct Stats {
    int64_t events = 0;
    int64_t late_applied = 0;   // Late tuples folded into live state.
    int64_t late_dropped = 0;   // Late tuples whose window was gone.
    int64_t windows_fired = 0;  // First emissions.
    int64_t revisions = 0;      // Amendment emissions.
    int64_t max_live_windows = 0;
  };

  WindowedAggregation(const Options& options, WindowResultSink* sink);

  /// EventSink interface (fed by a DisorderHandler).
  void OnEvent(const Event& e) override;
  void OnEvents(std::span<const Event> events) override;
  void OnWatermark(TimestampUs watermark, TimestampUs stream_time) override;
  void OnKeyedWatermark(int64_t key, TimestampUs watermark,
                        TimestampUs stream_time) override;
  void OnLateEvent(const Event& e) override;

  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }

  /// Number of window instances currently holding state.
  size_t live_windows() const { return windows_.size(); }

  /// Installs a read-only instrumentation observer (nullptr = none). Same
  /// zero-cost-when-off contract as DisorderHandler::set_observer.
  void set_observer(PipelineObserver* observer) { observer_ = observer; }

 private:
  struct WindowState {
    std::unique_ptr<Aggregator> acc;
    bool fired = false;
    int32_t revisions = 0;
    /// Dirty since last emission (for batch refinement mode).
    bool dirty_since_fire = false;
  };

  /// State key ordered by (window start, key) so firing scans stop early.
  using StateKey = std::pair<TimestampUs, int64_t>;

  WindowState* GetOrCreateState(TimestampUs window_start, int64_t key);
  void Emit(const StateKey& sk, WindowState* state, TimestampUs now,
            bool revision);
  /// Folds one in-order event into all covering windows (shared by OnEvent
  /// and the batched OnEvents).
  void FoldEvent(const Event& e);

  Options options_;
  WindowResultSink* sink_;
  AggregateSpec agg_spec_;
  std::map<StateKey, WindowState> windows_;
  TimestampUs last_watermark_ = kMinTimestamp;
  TimestampUs last_activity_ = 0;  // Arrival time of last event seen.
  Stats stats_;
  PipelineObserver* observer_ = nullptr;

  /// Memo of the last state lookup: consecutive tuples overwhelmingly hit
  /// the same (window, key) slot, and map nodes are stable until erased.
  /// Invalidated whenever OnWatermark purges state.
  StateKey cached_key_{};
  WindowState* cached_state_ = nullptr;
};

}  // namespace streamq

#endif  // STREAMQ_WINDOW_WINDOW_OPERATOR_H_
