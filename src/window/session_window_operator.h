#ifndef STREAMQ_WINDOW_SESSION_WINDOW_OPERATOR_H_
#define STREAMQ_WINDOW_SESSION_WINDOW_OPERATOR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>

#include "agg/aggregate.h"
#include "common/time.h"
#include "disorder/event_sink.h"
#include "window/window_operator.h"

namespace streamq {

/// Keyed session windows (gap-based): a session groups consecutive tuples
/// of a key whose inter-event gaps are < `gap`; it closes once the
/// watermark passes `last_event + gap`.
///
/// Session windows are the strongest argument for upstream reordering: with
/// an in-order input, an event can only extend the key's newest session or
/// start a new one, so no window merging is ever needed. Fed out of order,
/// sessions fragment and must be merged retroactively (what Flink's merging
/// window sets do). This operator therefore requires a reordering disorder
/// handler; tuples behind the watermark are counted as dropped quality loss
/// (the coverage metric still applies).
class SessionWindowedAggregation : public EventSink {
 public:
  struct Options {
    /// Maximum inter-event gap within one session (> 0). A tuple with
    /// ts >= last_ts + gap starts a new session (half-open semantics).
    DurationUs gap = Seconds(1);
    AggregateSpec aggregate;
  };

  struct Stats {
    int64_t events = 0;
    int64_t late_dropped = 0;
    int64_t sessions_fired = 0;
    int64_t max_open_sessions = 0;
  };

  SessionWindowedAggregation(const Options& options, WindowResultSink* sink);

  /// EventSink interface (fed by a DisorderHandler).
  void OnEvent(const Event& e) override;
  void OnWatermark(TimestampUs watermark, TimestampUs stream_time) override;
  void OnLateEvent(const Event& e) override;

  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }
  size_t open_sessions() const { return open_sessions_; }

 private:
  struct Session {
    TimestampUs start;
    TimestampUs last_ts;
    std::unique_ptr<Aggregator> acc;
  };

  Options options_;
  WindowResultSink* sink_;
  /// Per key, open sessions ordered oldest-first; only the back can absorb
  /// new in-order events.
  std::map<int64_t, std::deque<Session>> sessions_;
  size_t open_sessions_ = 0;
  TimestampUs last_watermark_ = kMinTimestamp;
  Stats stats_;
};

}  // namespace streamq

#endif  // STREAMQ_WINDOW_SESSION_WINDOW_OPERATOR_H_
