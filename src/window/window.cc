#include "window/window.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace streamq {

using window_internal::FloorDiv;

std::string WindowBounds::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "[%lld, %lld)",
                static_cast<long long>(start), static_cast<long long>(end));
  return buf;
}

Status WindowSpec::Validate() const {
  if (size <= 0) return Status::InvalidArgument("window size must be > 0");
  if (slide <= 0) return Status::InvalidArgument("window slide must be > 0");
  return Status::OK();
}

std::string WindowSpec::Describe() const {
  char buf[96];
  if (IsTumbling()) {
    std::snprintf(buf, sizeof(buf), "tumbling(%s)",
                  FormatDuration(size).c_str());
  } else {
    std::snprintf(buf, sizeof(buf), "sliding(%s/%s)",
                  FormatDuration(size).c_str(),
                  FormatDuration(slide).c_str());
  }
  return buf;
}

TimestampUs FirstWindowStart(const WindowSpec& spec, TimestampUs ts) {
  // Window starts are the multiples of `slide`; [start, start+size) covers
  // ts iff ts - size < start <= ts. The earliest such start is the smallest
  // multiple of slide strictly greater than ts - size.
  return (FloorDiv(ts - spec.size, spec.slide) + 1) * spec.slide;
}

std::vector<WindowBounds> AssignWindows(const WindowSpec& spec,
                                        TimestampUs ts) {
  STREAMQ_CHECK_OK(spec.Validate());
  std::vector<WindowBounds> out;
  ForEachWindow(spec, ts, [&out](const WindowBounds& w) { out.push_back(w); });
  return out;
}

std::string WindowResult::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "WindowResult{%s key=%lld v=%g n=%lld emit=%lld rev=%d}",
                bounds.ToString().c_str(), static_cast<long long>(key),
                value, static_cast<long long>(tuple_count),
                static_cast<long long>(emit_stream_time), revision_index);
  return buf;
}

}  // namespace streamq
