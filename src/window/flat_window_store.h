#ifndef STREAMQ_WINDOW_FLAT_WINDOW_STORE_H_
#define STREAMQ_WINDOW_FLAT_WINDOW_STORE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "agg/aggregate.h"
#include "agg/aggregate_state.h"
#include "common/time.h"
#include "window/window.h"

namespace streamq {

/// Flat per-(window-start, key) state store for the window-operator hot
/// path, replacing the node-based std::map<(start, key), state>:
///
///  * Window starts are multiples of the slide, so the time dimension is a
///    ring of slide-aligned buckets indexed by start/slide modulo a
///    power-of-two capacity. Locating a bucket is a shift-and-mask; the
///    ring grows geometrically when the live start span outgrows it
///    (bucket objects are heap-owned, so growth never moves a bucket).
///  * Within a bucket, keys live in an open-addressing probe table mapping
///    key -> dense slot index. Slots are appended in first-touch order and
///    never erased individually — a bucket dies as a whole when its window
///    retires — so dense indices are stable for a bucket's lifetime.
///  * Firing and purging need the ordered (start, key) scan the old map
///    gave for free: Scan() walks buckets in ascending start order, and
///    SortedByKey() lazily materializes a key-sorted view of a bucket's
///    slots (cached until the next insertion).
///
/// Lookup is O(1) amortized per tuple; the ordered scan work is
/// proportional to live buckets, as before.
///
/// Pointer stability: Slot pointers are invalidated by insertions into the
/// same bucket (dense vector growth) and by bucket purges. Every such
/// mutation bumps epoch(); callers caching Slot pointers (the operator's
/// fold-plan memo) must revalidate against it.
class FlatWindowStore {
 public:
  struct Slot {
    AggregateState state;              // Inline aggregate kinds.
    std::unique_ptr<Aggregator> acc;   // Heavy kinds only; null otherwise.
    int64_t key = 0;
    int32_t revisions = 0;
    bool fired = false;
    bool dirty_since_fire = false;
  };

  class Bucket {
   public:
    TimestampUs start() const { return start_; }
    size_t size() const { return slots_.size(); }
    Slot& slot(uint32_t dense_index) { return slots_[dense_index]; }

    /// O(1) expected; nullptr if the key has no state here.
    Slot* Find(int64_t key);

    /// Dense slot indices in ascending key order. Lazily rebuilt after
    /// insertions; firing scans are the only consumers.
    const std::vector<uint32_t>& SortedByKey();

   private:
    friend class FlatWindowStore;
    // The amend store (amend_window_store.h) reuses Bucket verbatim so the
    // two engines share Slot layout, probe tables and the FoldPlan memo
    // contract; it needs the same insert/start access this store has.
    friend class AmendWindowStore;

    Slot* Insert(int64_t key);  // Key must be absent.
    void Rehash(size_t new_capacity);

    TimestampUs start_ = 0;
    std::vector<Slot> slots_;         // First-touch order; indices stable.
    std::vector<uint32_t> probe_;     // Power-of-two; value = index + 1.
    std::vector<uint32_t> by_key_;    // Key-sorted dense indices (lazy).
    bool by_key_valid_ = false;
  };

  /// What a Scan visitor tells the store to do with the visited bucket.
  enum class Visit {
    kKeep,   // Leave the bucket; continue with the next start.
    kPurge,  // Remove the bucket (all its slots); continue scanning.
    kStop,   // Leave the bucket and end the scan (monotone early-out).
  };

  explicit FlatWindowStore(DurationUs slide);

  /// Returns the state slot for (start, key), creating bucket and slot as
  /// needed. `*created` reports whether the slot is new (the caller
  /// initializes heavy accumulators). `start` must be a multiple of the
  /// slide, as produced by window assignment.
  Slot* GetOrCreate(TimestampUs start, int64_t key, bool* created);

  /// Lookup without creation; nullptr if absent.
  Slot* Find(TimestampUs start, int64_t key);

  /// Visits live buckets in ascending window-start order. The visitor
  /// returns a Visit action; purged buckets are removed mid-scan (their
  /// slots die with them).
  template <typename Fn>
  void Scan(Fn&& fn) {
    if (live_buckets_ == 0) return;
    for (int64_t q = q_min_; q <= q_max_; ++q) {
      Bucket* b = BucketAt(q);
      if (b == nullptr) continue;
      const Visit action = fn(*b);
      if (action == Visit::kPurge) {
        RemoveBucket(q);
      } else if (action == Visit::kStop) {
        break;
      }
    }
    TrimFront();
  }

  /// Live (start, key) states across all buckets.
  size_t size() const { return slot_count_; }
  size_t live_buckets() const { return live_buckets_; }

  /// Bumped on every slot insertion and bucket purge — any mutation that
  /// can invalidate a cached Slot pointer.
  uint64_t epoch() const { return epoch_; }

 private:
  size_t IndexOf(int64_t q) const {
    return static_cast<size_t>(static_cast<uint64_t>(q) &
                               (ring_.size() - 1));
  }
  Bucket* BucketAt(int64_t q) const {
    Bucket* b = ring_[IndexOf(q)].get();
    return (b != nullptr && b->start_ == q * slide_) ? b : nullptr;
  }

  Bucket* GetOrCreateBucket(TimestampUs start);
  void RemoveBucket(int64_t q);
  void EnsureSpan(int64_t q);  // Grows the ring to cover q.
  void TrimFront();            // Advances q_min_ past purged buckets.

  DurationUs slide_;
  std::vector<std::unique_ptr<Bucket>> ring_;  // Power-of-two capacity.
  int64_t q_min_ = 0;   // Valid iff live_buckets_ > 0.
  int64_t q_max_ = -1;
  size_t live_buckets_ = 0;
  size_t slot_count_ = 0;
  uint64_t epoch_ = 0;
};

}  // namespace streamq

#endif  // STREAMQ_WINDOW_FLAT_WINDOW_STORE_H_
