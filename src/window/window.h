#ifndef STREAMQ_WINDOW_WINDOW_H_
#define STREAMQ_WINDOW_WINDOW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"

namespace streamq {

/// Half-open event-time interval [start, end).
struct WindowBounds {
  TimestampUs start = 0;
  TimestampUs end = 0;

  DurationUs length() const { return end - start; }
  bool Contains(TimestampUs ts) const { return ts >= start && ts < end; }
  bool operator==(const WindowBounds& other) const = default;

  std::string ToString() const;
};

/// Time-based window family: tumbling when slide == size, sliding (hopping)
/// when slide < size, sampling when slide > size.
struct WindowSpec {
  DurationUs size = Seconds(1);
  DurationUs slide = Seconds(1);

  static WindowSpec Tumbling(DurationUs size) { return {size, size}; }
  static WindowSpec Sliding(DurationUs size, DurationUs slide) {
    return {size, slide};
  }

  bool IsTumbling() const { return size == slide; }

  Status Validate() const;

  std::string Describe() const;
};

/// Enumerates the windows containing `ts` under `spec`, earliest first.
/// Works for negative timestamps too (floor semantics).
std::vector<WindowBounds> AssignWindows(const WindowSpec& spec,
                                        TimestampUs ts);

/// Start of the earliest window containing `ts`.
TimestampUs FirstWindowStart(const WindowSpec& spec, TimestampUs ts);

namespace window_internal {

/// Floor division for int64 (rounds toward negative infinity).
inline int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

}  // namespace window_internal

/// Invokes `fn(WindowBounds)` for each window containing `ts`, earliest
/// first — the allocation-free equivalent of AssignWindows for per-tuple
/// hot paths. Same floor semantics (negative timestamps included); zero
/// invocations for timestamps in a sampling gap (slide > size).
template <typename Fn>
inline void ForEachWindow(const WindowSpec& spec, TimestampUs ts, Fn&& fn) {
  // Window starts are the multiples of `slide`; [start, start+size) covers
  // ts iff ts - size < start <= ts (see FirstWindowStart).
  const TimestampUs first =
      (window_internal::FloorDiv(ts - spec.size, spec.slide) + 1) * spec.slide;
  const TimestampUs last =
      window_internal::FloorDiv(ts, spec.slide) * spec.slide;
  for (TimestampUs start = first; start <= last; start += spec.slide) {
    fn(WindowBounds{start, start + spec.size});
  }
}

/// One emitted window result.
struct WindowResult {
  WindowBounds bounds;
  int64_t key = 0;

  /// Aggregate value over the tuples that were present at emission time.
  double value = 0.0;

  /// Number of tuples that contributed.
  int64_t tuple_count = 0;

  /// Stream (arrival) time at which the result was produced. Response
  /// latency of the result = emit_stream_time - bounds.end (how long after
  /// the window semantically closed the answer appeared).
  TimestampUs emit_stream_time = 0;

  /// True if this emission amends an earlier one for the same window
  /// (speculative / allowed-lateness refinement).
  bool is_revision = false;

  /// 0 for the first emission of a window, 1 for its first revision, ...
  int32_t revision_index = 0;

  bool operator==(const WindowResult& other) const = default;

  std::string ToString() const;
};

}  // namespace streamq

#endif  // STREAMQ_WINDOW_WINDOW_H_
