#include "window/session_window_operator.h"

#include <algorithm>

#include "common/logging.h"

namespace streamq {

SessionWindowedAggregation::SessionWindowedAggregation(
    const Options& options, WindowResultSink* sink)
    : options_(options), sink_(sink) {
  STREAMQ_CHECK(sink != nullptr);
  STREAMQ_CHECK_GT(options.gap, 0);
  STREAMQ_CHECK_OK(options.aggregate.Validate());
}

void SessionWindowedAggregation::OnEvent(const Event& e) {
  ++stats_.events;
  auto& key_sessions = sessions_[e.key];
  if (!key_sessions.empty() &&
      e.event_time < key_sessions.back().last_ts + options_.gap) {
    // Extends the newest session. In-order input guarantees
    // e.event_time >= last_ts, so `last_ts` only moves forward.
    Session& s = key_sessions.back();
    s.last_ts = std::max(s.last_ts, e.event_time);
    s.acc->Add(e.value);
    return;
  }
  Session s;
  s.start = e.event_time;
  s.last_ts = e.event_time;
  s.acc = MakeAggregator(options_.aggregate);
  s.acc->Add(e.value);
  key_sessions.push_back(std::move(s));
  ++open_sessions_;
  stats_.max_open_sessions = std::max(
      stats_.max_open_sessions, static_cast<int64_t>(open_sessions_));
}

void SessionWindowedAggregation::OnWatermark(TimestampUs watermark,
                                             TimestampUs stream_time) {
  if (watermark <= last_watermark_) return;
  last_watermark_ = watermark;

  auto key_it = sessions_.begin();
  while (key_it != sessions_.end()) {
    auto& key_sessions = key_it->second;
    while (!key_sessions.empty()) {
      Session& s = key_sessions.front();
      // Closed once no in-order event can extend it: every future event has
      // ts >= watermark >= last_ts + gap.
      const bool saturating =
          s.last_ts > kMaxTimestamp - options_.gap;  // Overflow guard.
      if (!saturating && s.last_ts + options_.gap > watermark) break;

      WindowResult r;
      r.bounds = WindowBounds{
          s.start, saturating ? kMaxTimestamp : s.last_ts + options_.gap};
      r.key = key_it->first;
      r.value = s.acc->Value();
      r.tuple_count = s.acc->count();
      r.emit_stream_time = stream_time;
      sink_->OnResult(r);
      ++stats_.sessions_fired;
      key_sessions.pop_front();
      --open_sessions_;
    }
    if (key_sessions.empty()) {
      key_it = sessions_.erase(key_it);
    } else {
      ++key_it;
    }
  }
}

void SessionWindowedAggregation::OnLateEvent(const Event& e) {
  (void)e;
  ++stats_.events;
  ++stats_.late_dropped;
}

}  // namespace streamq
