#include "window/flat_window_store.h"

#include "common/logging.h"

namespace streamq {

namespace {

constexpr size_t kInitialRingCapacity = 64;
constexpr size_t kInitialProbeCapacity = 4;

/// Finalizer-style 64-bit mix; clustering-resistant for sequential keys.
inline uint64_t MixKey(int64_t key) {
  uint64_t h = static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ull;
  h ^= h >> 32;
  return h;
}

}  // namespace

FlatWindowStore::Slot* FlatWindowStore::Bucket::Find(int64_t key) {
  const size_t mask = probe_.size() - 1;
  for (size_t i = MixKey(key) & mask;; i = (i + 1) & mask) {
    const uint32_t entry = probe_[i];
    if (entry == 0) return nullptr;
    Slot& s = slots_[entry - 1];
    if (s.key == key) return &s;
  }
}

FlatWindowStore::Slot* FlatWindowStore::Bucket::Insert(int64_t key) {
  // Grow at 70% load so probes stay short. +1 accounts for this insert.
  if ((slots_.size() + 1) * 10 >= probe_.size() * 7) {
    Rehash(std::max(kInitialProbeCapacity, probe_.size() * 2));
  }
  slots_.emplace_back();
  Slot& s = slots_.back();
  s.key = key;
  const size_t mask = probe_.size() - 1;
  size_t i = MixKey(key) & mask;
  while (probe_[i] != 0) i = (i + 1) & mask;
  probe_[i] = static_cast<uint32_t>(slots_.size());  // Index + 1.
  by_key_valid_ = false;
  return &s;
}

void FlatWindowStore::Bucket::Rehash(size_t new_capacity) {
  probe_.assign(new_capacity, 0);
  const size_t mask = new_capacity - 1;
  for (size_t idx = 0; idx < slots_.size(); ++idx) {
    size_t i = MixKey(slots_[idx].key) & mask;
    while (probe_[i] != 0) i = (i + 1) & mask;
    probe_[i] = static_cast<uint32_t>(idx + 1);
  }
}

const std::vector<uint32_t>& FlatWindowStore::Bucket::SortedByKey() {
  if (!by_key_valid_) {
    by_key_.resize(slots_.size());
    for (uint32_t i = 0; i < by_key_.size(); ++i) by_key_[i] = i;
    std::sort(by_key_.begin(), by_key_.end(),
              [this](uint32_t a, uint32_t b) {
                return slots_[a].key < slots_[b].key;
              });
    by_key_valid_ = true;
  }
  return by_key_;
}

FlatWindowStore::FlatWindowStore(DurationUs slide) : slide_(slide) {
  STREAMQ_CHECK_GT(slide, 0);
  ring_.resize(kInitialRingCapacity);
}

FlatWindowStore::Bucket* FlatWindowStore::GetOrCreateBucket(
    TimestampUs start) {
  const int64_t q = window_internal::FloorDiv(start, slide_);
  if (live_buckets_ == 0) {
    q_min_ = q_max_ = q;
  } else if (q < q_min_ || q > q_max_) {
    EnsureSpan(q);
    q_min_ = std::min(q_min_, q);
    q_max_ = std::max(q_max_, q);
  }
  std::unique_ptr<Bucket>& cell = ring_[IndexOf(q)];
  if (cell == nullptr) {
    cell = std::make_unique<Bucket>();
    cell->start_ = start;
    cell->probe_.assign(kInitialProbeCapacity, 0);
    ++live_buckets_;
  } else {
    STREAMQ_DCHECK_EQ(cell->start_, start);
  }
  return cell.get();
}

FlatWindowStore::Slot* FlatWindowStore::GetOrCreate(TimestampUs start,
                                                    int64_t key,
                                                    bool* created) {
  Bucket* b = GetOrCreateBucket(start);
  Slot* s = b->Find(key);
  if (s != nullptr) {
    *created = false;
    return s;
  }
  s = b->Insert(key);
  ++slot_count_;
  ++epoch_;  // Insertion may have reallocated the bucket's slot array.
  *created = true;
  return s;
}

FlatWindowStore::Slot* FlatWindowStore::Find(TimestampUs start, int64_t key) {
  if (live_buckets_ == 0) return nullptr;
  const int64_t q = window_internal::FloorDiv(start, slide_);
  if (q < q_min_ || q > q_max_) return nullptr;
  Bucket* b = BucketAt(q);
  return b == nullptr ? nullptr : b->Find(key);
}

void FlatWindowStore::RemoveBucket(int64_t q) {
  std::unique_ptr<Bucket>& cell = ring_[IndexOf(q)];
  STREAMQ_DCHECK(cell != nullptr);
  slot_count_ -= cell->slots_.size();
  cell.reset();
  --live_buckets_;
  ++epoch_;
}

void FlatWindowStore::EnsureSpan(int64_t q) {
  const int64_t new_min = std::min(q, q_min_);
  const int64_t new_max = std::max(q, q_max_);
  // Spans are bounded by live window retention (watermark purging), so the
  // unsigned difference fits comfortably; grow with 2x headroom.
  const uint64_t span =
      static_cast<uint64_t>(new_max) - static_cast<uint64_t>(new_min) + 1;
  if (span <= ring_.size()) return;
  size_t new_capacity = ring_.size();
  while (new_capacity < span * 2) new_capacity *= 2;
  std::vector<std::unique_ptr<Bucket>> old = std::move(ring_);
  const size_t old_mask = old.size() - 1;
  ring_.clear();
  ring_.resize(new_capacity);
  for (int64_t i = q_min_; i <= q_max_; ++i) {
    std::unique_ptr<Bucket>& cell =
        old[static_cast<size_t>(static_cast<uint64_t>(i) & old_mask)];
    if (cell != nullptr) ring_[IndexOf(i)] = std::move(cell);
  }
}

void FlatWindowStore::TrimFront() {
  if (live_buckets_ == 0) {
    q_min_ = 0;
    q_max_ = -1;
    return;
  }
  while (BucketAt(q_min_) == nullptr) ++q_min_;
}

}  // namespace streamq
