#include "window/amend_window_store.h"

#include "common/logging.h"

namespace streamq {

namespace {

/// Leaf fanout. Small enough that intra-leaf inserts (a memmove of a few
/// pointers) stay cheap, large enough that the root index is tiny: 32
/// buckets/leaf covers a million live window starts with a ~32k-entry
/// root — two cache-friendly binary searches end to end.
constexpr size_t kLeafCapacity = 32;

constexpr size_t kInitialProbeCapacity = 4;

}  // namespace

std::unique_ptr<AmendWindowStore::Bucket> AmendWindowStore::MakeBucket(
    TimestampUs start) {
  auto b = std::make_unique<Bucket>();
  b->start_ = start;
  b->probe_.assign(kInitialProbeCapacity, 0);
  return b;
}

AmendWindowStore::AmendWindowStore(DurationUs slide) : slide_(slide) {
  STREAMQ_CHECK_GT(slide, 0);
}

size_t AmendWindowStore::FindLeafIndex(TimestampUs start) const {
  // Last leaf with min start <= `start`. upper_bound returns the first
  // leaf strictly past `start`; step back one (clamped at the front).
  auto it = std::upper_bound(leaf_min_.begin(), leaf_min_.end(), start);
  if (it == leaf_min_.begin()) return 0;
  return static_cast<size_t>(it - leaf_min_.begin()) - 1;
}

void AmendWindowStore::SplitLeaf(size_t li) {
  Leaf& left = *leaves_[li];
  auto right = std::make_unique<Leaf>();
  const size_t half = left.buckets.size() / 2;
  right->buckets.assign(std::make_move_iterator(left.buckets.begin() + half),
                        std::make_move_iterator(left.buckets.end()));
  left.buckets.resize(half);
  const TimestampUs right_min = right->buckets.front()->start();
  leaves_.insert(leaves_.begin() + li + 1, std::move(right));
  leaf_min_.insert(leaf_min_.begin() + li + 1, right_min);
  if (finger_leaf_ > li) ++finger_leaf_;
}

void AmendWindowStore::CompactLeaves() {
  size_t out = 0;
  for (size_t i = 0; i < leaves_.size(); ++i) {
    if (leaves_[i]->buckets.empty()) continue;
    if (out != i) leaves_[out] = std::move(leaves_[i]);
    ++out;
  }
  leaves_.resize(out);
  leaf_min_.resize(out);
  for (size_t i = 0; i < out; ++i) {
    leaf_min_[i] = leaves_[i]->buckets.front()->start();
  }
  finger_leaf_ = 0;
}

AmendWindowStore::Bucket* AmendWindowStore::GetOrCreateBucket(
    TimestampUs start) {
  if (bucket_count_ == 0) {
    if (leaves_.empty()) {
      leaves_.push_back(std::make_unique<Leaf>());
      leaf_min_.push_back(start);
    }
    Leaf& leaf = *leaves_.front();
    leaf.buckets.push_back(MakeBucket(start));
    leaf_min_.front() = start;
    finger_leaf_ = 0;
    ++bucket_count_;
    return leaf.buckets.back().get();
  }

  // Back finger: frontier appends (start past everything stored) go
  // straight to the last leaf — the common case even under disorder.
  Leaf* back = leaves_.back().get();
  if (start > back->buckets.back()->start()) {
    if (back->buckets.size() >= kLeafCapacity) {
      SplitLeaf(leaves_.size() - 1);
      back = leaves_.back().get();
    }
    back->buckets.push_back(MakeBucket(start));
    ++bucket_count_;
    return back->buckets.back().get();
  }

  // Out-of-order access. Amend finger first: stragglers cluster, so the
  // last amended leaf usually covers this one too.
  size_t li = finger_leaf_;
  const bool finger_hits =
      li < leaves_.size() && leaf_min_[li] <= start &&
      (li + 1 == leaves_.size() || start < leaf_min_[li + 1]);
  if (!finger_hits) li = FindLeafIndex(start);
  finger_leaf_ = li;

  Leaf* leaf = leaves_[li].get();
  auto pos = std::lower_bound(
      leaf->buckets.begin(), leaf->buckets.end(), start,
      [](const std::unique_ptr<Bucket>& b, TimestampUs s) {
        return b->start() < s;
      });
  if (pos != leaf->buckets.end() && (*pos)->start() == start) {
    return pos->get();
  }
  if (leaf->buckets.size() >= kLeafCapacity) {
    SplitLeaf(li);
    if (start >= leaf_min_[li + 1]) {
      ++li;
      finger_leaf_ = li;
    }
    leaf = leaves_[li].get();
    pos = std::lower_bound(
        leaf->buckets.begin(), leaf->buckets.end(), start,
        [](const std::unique_ptr<Bucket>& b, TimestampUs s) {
          return b->start() < s;
        });
  }
  pos = leaf->buckets.insert(pos, MakeBucket(start));
  if (pos == leaf->buckets.begin()) leaf_min_[li] = start;
  ++bucket_count_;
  return pos->get();
}

AmendWindowStore::Slot* AmendWindowStore::GetOrCreate(TimestampUs start,
                                                      int64_t key,
                                                      bool* created) {
  Bucket* b = GetOrCreateBucket(start);
  Slot* s = b->Find(key);
  if (s != nullptr) {
    *created = false;
    return s;
  }
  s = b->Insert(key);
  ++slot_count_;
  ++epoch_;  // Insertion may have reallocated the bucket's slot array.
  *created = true;
  return s;
}

AmendWindowStore::Slot* AmendWindowStore::Find(TimestampUs start,
                                               int64_t key) {
  if (bucket_count_ == 0) return nullptr;
  const size_t li = FindLeafIndex(start);
  Leaf& leaf = *leaves_[li];
  auto pos = std::lower_bound(
      leaf.buckets.begin(), leaf.buckets.end(), start,
      [](const std::unique_ptr<Bucket>& b, TimestampUs s) {
        return b->start() < s;
      });
  if (pos == leaf.buckets.end() || (*pos)->start() != start) return nullptr;
  return (*pos)->Find(key);
}

}  // namespace streamq
