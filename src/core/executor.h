#ifndef STREAMQ_CORE_EXECUTOR_H_
#define STREAMQ_CORE_EXECUTOR_H_

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/continuous_query.h"
#include "core/pipeline_observer.h"
#include "disorder/disorder_handler.h"
#include "stream/source.h"
#include "window/window_operator.h"

namespace streamq {

/// Outcome of executing a query over a finite stream.
struct RunReport {
  std::string query_name;
  int64_t events_processed = 0;

  /// Arrivals rejected by ingest validation before reaching the handler
  /// (ContinuousQuery::validation != kOff). Not counted in
  /// events_processed, so total arrivals = events_processed +
  /// events_rejected.
  int64_t events_rejected = 0;

  /// Overall run health. Non-OK when strict ingest validation rejected a
  /// tuple, or (parallel runners) when a worker failed or a shard queue
  /// stayed stuck past the feed timeout. The pipeline state behind a
  /// non-OK degraded report is still internally consistent — stats and
  /// results cover everything processed before the failure.
  Status status;

  /// Wall-clock execution time and derived throughput (the only place wall
  /// time appears; everything else is stream time).
  double wall_seconds = 0.0;
  double throughput_eps = 0.0;

  DisorderHandlerStats handler_stats;
  WindowedAggregation::Stats window_stats;

  /// Results emitted as revisions of an already-materialized window
  /// (speculative emit-then-amend repairs; late-tuple amendments under
  /// allowed lateness). Mirrors window_stats.revisions so report consumers
  /// need not reach into the nested stats; every amended result's final
  /// revision matches what a fully-buffered run would have emitted.
  int64_t results_amended = 0;

  /// Every emitted result, revisions included, in emission order.
  std::vector<WindowResult> results;

  /// Handler slack at end of run (instrumentation).
  DurationUs final_slack = 0;

  /// Scheduler accounting from the sharded runner: shard handoffs
  /// performed by the periodic rebalancer and by demand-driven work
  /// stealing (ParallelOptions::rebalance / ::steal). Zero for sequential
  /// and independent-runner reports.
  int64_t shard_migrations = 0;
  int64_t segments_stolen = 0;

  /// Runtime configuration the run executed under (thread count, feed
  /// mode, arena/pinning switches, migrations...). Filled by the threaded
  /// runners so a persisted report says how it was produced; empty for
  /// plain sequential runs.
  std::string runtime_config;

  std::string ToString() const;
};

/// Single-query pipeline: EventSource -> DisorderHandler ->
/// WindowedAggregation -> results. Use Run() for whole-stream execution or
/// the Feed()/Finish() pair to drive it incrementally (e.g. interleaved with
/// other pipelines).
class QueryExecutor {
 public:
  explicit QueryExecutor(const ContinuousQuery& query);

  /// Processes one arrival.
  void Feed(const Event& e);

  /// Processes a chunk of consecutive arrivals (arrival order). Semantically
  /// identical to calling Feed() on each element in order, but routes through
  /// DisorderHandler::OnBatch so per-tuple virtual dispatch and buffer churn
  /// are amortized across the chunk.
  void FeedBatch(std::span<const Event> batch);

  /// Injects a source heartbeat: no future tuple will carry event_time <
  /// `event_time_bound`. Drains buffers / closes windows during idle gaps.
  void FeedHeartbeat(TimestampUs event_time_bound, TimestampUs stream_time);

  /// Ends the stream: drains buffers, fires and purges remaining windows.
  void Finish();

  /// Chunk size used by Run(): large enough to amortize dispatch, small
  /// enough to stay cache-resident (512 events * 40 B = 20 KiB).
  static constexpr size_t kDefaultRunBatchSize = 512;

  /// Feed-everything convenience; calls Finish() and returns the report.
  /// Pulls `batch_size` events at a time through FeedBatch; pass 0 for the
  /// legacy one-event-at-a-time loop.
  RunReport Run(EventSource* source, size_t batch_size = kDefaultRunBatchSize);

  /// Results collected so far (also included in the RunReport).
  const std::vector<WindowResult>& results() const {
    return result_sink_.results;
  }

  /// Installs a read-only instrumentation observer on the whole pipeline
  /// (source batches, handler, window operator). nullptr uninstalls. The
  /// observer must outlive the executor; when unset the pipeline pays only
  /// pointer null-checks (see core/pipeline_observer.h).
  void SetObserver(PipelineObserver* observer) {
    observer_ = observer;
    handler_->set_observer(observer);
    window_op_->set_observer(observer);
  }

  /// Read-only views of the pipeline stages, for inspection (stats, slack,
  /// buffer occupancy). Mutation goes through the query spec at construction
  /// or through SetObserver — not by reaching into the stages.
  const DisorderHandler& handler_view() const { return *handler_; }
  const WindowedAggregation& window_view() const { return *window_op_; }

  const ContinuousQuery& query() const { return query_; }

  /// Builds the report from current state (without finishing).
  RunReport Report() const;

  /// Sticky run status (see RunReport::status). Always OK unless the query
  /// uses strict ingest validation.
  const Status& status() const { return status_; }

 private:
  /// Cold path of Feed/FeedBatch when ingest validation is on.
  void FeedBatchValidated(std::span<const Event> batch);
  void RejectEvent(const Event& e, Status status);

  ContinuousQuery query_;
  CollectingResultSink result_sink_;
  std::unique_ptr<DisorderHandler> handler_;
  std::unique_ptr<WindowedAggregation> window_op_;
  PipelineObserver* observer_ = nullptr;
  int64_t events_processed_ = 0;
  int64_t events_rejected_ = 0;
  Status status_;
  double wall_seconds_ = 0.0;
};

}  // namespace streamq

#endif  // STREAMQ_CORE_EXECUTOR_H_
