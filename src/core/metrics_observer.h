#ifndef STREAMQ_CORE_METRICS_OBSERVER_H_
#define STREAMQ_CORE_METRICS_OBSERVER_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/metrics.h"
#include "core/pipeline_observer.h"

namespace streamq {

/// The standard PipelineObserver: routes every hook into a bounded-memory
/// MetricsRegistry (counters, gauges, log-bucketed histograms — no
/// unbounded Series), ready for Prometheus/JSON export via Snapshot().
///
/// Thread-safe: all referenced metrics are atomic, so one MetricsObserver
/// may be shared by a whole parallel run (driver + workers + shards).
/// Hot-path hooks use pointers cached at construction; only the per-shard
/// counters take a lock, and only on first sight of a shard.
class MetricsObserver : public PipelineObserver {
 public:
  explicit MetricsObserver(
      const MetricsRegistry::Options& options = MetricsRegistry::Options{});

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }
  MetricsSnapshot Snapshot() const { return registry_.Snapshot(); }

  // Source / executor.
  void OnSourceBatch(int64_t events) override;
  void OnRunCompleted(int64_t events, double wall_seconds) override;

  // Disorder handler.
  void OnHandlerRelease(int64_t released, size_t buffered_after,
                        TimestampUs watermark) override;
  void OnBufferingLatency(double latency_us) override;
  void OnLateEvent(const Event& e) override;
  void OnEventDropped(const Event& e) override;
  void OnSlackChanged(DurationUs old_k, DurationUs new_k) override;
  void OnAdaptation(const AdaptationSample& sample) override;
  void OnShed(int64_t count, ShedPolicy policy) override;
  void OnEventRejected(const Event& e) override;

  // Window operator.
  void OnWindowFired(const WindowResult& result) override;
  void OnAmend(const WindowResult& result) override;
  void OnWindowPurged(TimestampUs window_end, size_t live_windows) override;
  void OnWindowLateDropped(const Event& e) override;

  // Parallel runners.
  void OnQueueDepth(size_t worker, size_t depth) override;
  void OnBackpressureStall(size_t worker) override;
  void OnShardBatch(size_t shard, int64_t events) override;
  void OnSegmentSteal(size_t victim, size_t thief, size_t shard) override;
  void OnBatchSizeAdapted(size_t producer, size_t batch) override;
  void OnArenaNodeRelease(size_t worker, bool local) override;

 private:
  /// Lazily-created per-worker scheduler metrics (same pattern as
  /// ShardCounter: a lock on the lookup, atomic metrics after).
  struct WorkerMetrics {
    Gauge* queue_depth = nullptr;
    Counter* segments_stolen = nullptr;
    Counter* segments_donated = nullptr;
  };
  WorkerMetrics& WorkerEntry(size_t worker);

  Counter* ShardCounter(size_t shard);

  MetricsRegistry registry_;

  // Cached metric pointers (stable for the registry's lifetime).
  Counter* source_batches_;
  Counter* source_events_;
  Counter* runs_;
  Gauge* run_wall_seconds_;
  Gauge* run_throughput_eps_;
  Counter* handler_releases_;
  Counter* handler_released_;
  FixedHistogram* buffer_occupancy_;
  FixedHistogram* buffering_latency_us_;
  Gauge* watermark_us_;
  Counter* late_events_;
  Counter* dropped_events_;
  Gauge* slack_us_;
  Counter* slack_changes_;
  Counter* shed_events_;
  Counter* force_released_events_;
  Counter* rejected_events_;
  Counter* adaptations_;
  Gauge* measured_quality_;
  Gauge* setpoint_;
  Counter* windows_fired_;
  Counter* window_revisions_;
  Counter* window_amends_;
  Gauge* amend_rate_;
  Counter* windows_purged_;
  Gauge* live_windows_;
  Counter* window_late_dropped_;
  FixedHistogram* queue_depth_;
  Counter* backpressure_stalls_;
  Counter* shard_batches_;
  Counter* segments_stolen_;
  Gauge* batch_size_;
  Counter* batch_adaptations_;
  Counter* arena_node_local_;
  Counter* arena_node_remote_;

  std::mutex shard_mu_;
  std::vector<Counter*> shard_events_;
  std::vector<WorkerMetrics> worker_metrics_;
};

}  // namespace streamq

#endif  // STREAMQ_CORE_METRICS_OBSERVER_H_
