#ifndef STREAMQ_CORE_ADAPTIVE_BATCH_H_
#define STREAMQ_CORE_ADAPTIVE_BATCH_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "control/pi_controller.h"

namespace streamq {

/// Per-producer feed batch-size controller for the parallel runners: grows
/// the batch when workers are starving (deep amortization of per-batch
/// dispatch) and shrinks it when their queues back up (less in-flight work
/// per decision, finer migration granularity, lower queueing latency). The
/// same PI shape as the AQ quality loop, re-targeted from delay quantiles
/// to queue occupancy:
///
///   error = depth_setpoint - mean queue-depth fraction - service penalty
///
/// driving the *log2* of the batch size, so one unit of control output is
/// one doubling/halving — growth is multiplicative, like TCP slow start in
/// reverse. The service-time penalty kicks in when one source batch keeps
/// the driver busy past `service_guard_us`, bounding the scheduling latency
/// a single oversized batch can inflict regardless of queue headroom.
///
/// Batch size never affects merged results: routing is per event and
/// FeedBatch is semantically a loop of Feed (pinned by
/// batch_equivalence_test), so the controller is free to chase throughput.
/// It only changes *when* decisions (rebalance checks, steal safe points)
/// happen, which placement-invariance already makes output-neutral.
class AdaptiveBatcher {
 public:
  struct Options {
    size_t min_batch = 64;
    size_t max_batch = 8192;
    /// Starting size (clamped into [min_batch, max_batch]); the runners
    /// seed it with ParallelOptions::batch_size.
    size_t initial = 512;
    /// Target mean queue occupancy as a fraction of capacity: 0.5 keeps
    /// queues half full — headroom against bursts, no starvation.
    double depth_setpoint = 0.5;
    /// Driver time per source batch above which the penalty term pushes
    /// the size back down even with empty queues.
    double service_guard_us = 5000.0;
    /// Source batches per control step (samples are averaged in between).
    int interval_batches = 16;
    double kp = 1.0;
    double ki = 0.5;
  };

  explicit AdaptiveBatcher(const Options& options)
      : options_(options), pi_(PiOptions(options)) {
    const size_t init = std::clamp(options_.initial, options_.min_batch,
                                   options_.max_batch);
    base_log2_ = std::log2(static_cast<double>(init));
    batch_ = init;
  }

  /// Current feed size, updated every `interval_batches` observations.
  size_t batch() const { return batch_; }

  /// Control steps taken so far; `batch()` changed at most this often.
  int64_t adaptations() const { return adaptations_; }

  /// Feeds one routed source batch's measurements: the mean depth of the
  /// worker queues as a fraction of capacity (sampled at publish time) and
  /// the driver time spent routing and delivering the batch. Returns true
  /// when this observation completed a control step (batch() may have
  /// changed) — the runners' hook point for setpoint gauges.
  bool Observe(double depth_fraction, double service_us) {
    depth_sum_ += depth_fraction;
    service_sum_ += service_us;
    if (++samples_ < options_.interval_batches) return false;
    const double mean_depth = depth_sum_ / static_cast<double>(samples_);
    const double mean_service = service_sum_ / static_cast<double>(samples_);
    depth_sum_ = 0.0;
    service_sum_ = 0.0;
    samples_ = 0;
    const double penalty = std::min(
        1.5, std::max(0.0, mean_service / options_.service_guard_us - 1.0));
    const double error = options_.depth_setpoint - mean_depth - penalty;
    const double x = base_log2_ + pi_.Update(error);
    const auto proposed = static_cast<size_t>(std::llround(std::exp2(x)));
    batch_ = std::clamp(proposed, options_.min_batch, options_.max_batch);
    ++adaptations_;
    return true;
  }

  const Options& options() const { return options_; }

 private:
  static PiController::Options PiOptions(const Options& options) {
    PiController::Options pi;
    pi.kp = options.kp;
    pi.ki = options.ki;
    // The output is a log2 offset from the initial size; the rails span the
    // whole [min, max] range so the integrator can hold either extreme.
    const double lo = std::log2(static_cast<double>(options.min_batch));
    const double hi = std::log2(static_cast<double>(options.max_batch));
    const double base = std::log2(static_cast<double>(
        std::clamp(options.initial, options.min_batch, options.max_batch)));
    pi.out_min = lo - base;
    pi.out_max = hi - base;
    pi.integral_limit = hi - lo + 1.0;
    return pi;
  }

  Options options_;
  PiController pi_;
  double base_log2_ = 0.0;
  size_t batch_ = 512;
  double depth_sum_ = 0.0;
  double service_sum_ = 0.0;
  int samples_ = 0;
  int64_t adaptations_ = 0;
};

}  // namespace streamq

#endif  // STREAMQ_CORE_ADAPTIVE_BATCH_H_
