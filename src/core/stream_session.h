#ifndef STREAMQ_CORE_STREAM_SESSION_H_
#define STREAMQ_CORE_STREAM_SESSION_H_

#include <memory>
#include <span>
#include <string>
#include <thread>

#include "core/executor.h"
#include "core/parallel_runner.h"
#include "core/session_options.h"

namespace streamq {

namespace internal {
class BlockingQueueSource;
}  // namespace internal

/// One running continuous query, opened from a validated SessionOptions —
/// the facade over the executor/runner/observer wiring that examples and
/// harnesses used to hand-roll. Every front end (CLI, network server,
/// load generator) goes through here, so they cannot drift apart on how a
/// session is assembled.
///
/// Two driving styles, chosen by the caller (not the options):
///
///  * Whole-stream: Run(source) executes a finite stream to completion and
///    returns the report. threads == 0 runs the sequential QueryExecutor;
///    threads > 0 the ShardedKeyedRunner, with the stream partitioned into
///    key-disjoint sub-sources when mpsc > 0 (RunMultiSource).
///
///  * Incremental: Ingest()/Heartbeat() feed arrivals as they show up
///    (network frames, interleaved tenants), Snapshot() reads live
///    progress, Finish() drains buffers and seals the final report. With
///    threads > 0 the arrivals flow through a bounded blocking queue into
///    the sharded runner on an internal driver thread — the server's
///    "every tenant rides the same runners" path.
///
/// A session is single-caller: external synchronization (the server holds a
/// per-tenant mutex) is required if multiple threads share one session.
class StreamSession {
 public:
  /// Validates `options`, builds the query, and assembles the pipeline.
  /// On error nothing is constructed and the Status names the bad field.
  static Result<std::unique_ptr<StreamSession>> Open(
      const SessionOptions& options);

  /// Finishes the session if the caller did not (threaded incremental
  /// sessions own a driver thread that must be joined).
  ~StreamSession();

  StreamSession(const StreamSession&) = delete;
  StreamSession& operator=(const StreamSession&) = delete;

  /// Runs a finite stream to completion. Exclusive with the incremental
  /// API: calling Run after Ingest (or twice) yields a FailedPrecondition
  /// report. Fault-injection wrappers compose outside: pass the wrapped
  /// source.
  RunReport Run(EventSource* source);

  /// Feeds a chunk of arrivals (arrival order). Sequential sessions
  /// process inline; threaded sessions enqueue to the runner (blocking
  /// briefly under backpressure). Returns the session's sticky status —
  /// non-OK after a strict-validation reject, but ingest keeps accounting
  /// either way.
  Status Ingest(std::span<const Event> events);

  /// Source heartbeat: no future arrival will carry event_time <
  /// `event_time_bound`; drains buffers across idle gaps. Sequential
  /// sessions only (threaded runners manage watermarks per shard):
  /// Unimplemented otherwise.
  Status Heartbeat(TimestampUs event_time_bound, TimestampUs stream_time);

  /// Live progress without finishing. Sequential sessions return the full
  /// mid-run report (stats cover everything processed; buffered tuples are
  /// not yet in events_out, so the in == out + late + shed identity is a
  /// Finish()-time property). Threaded sessions mid-run report ingested
  /// counts only (runtime_config = "pending"); after Finish() this is the
  /// final report.
  RunReport Snapshot() const;

  /// Ends the stream: drains buffers, fires remaining windows, joins the
  /// driver thread (threaded), and seals the final report. Idempotent.
  const RunReport& Finish();

  bool finished() const { return finished_; }

  /// Arrivals handed to Ingest so far (validation rejects included — they
  /// are arrivals, just not processed ones).
  int64_t events_ingested() const { return events_ingested_; }

  /// Live in-flight occupancy, the quantity server admission control caps:
  /// sequential sessions report the reorder-buffer population, threaded
  /// ones the ingest-queue depth (events accepted but not yet consumed by
  /// the runner). Cheap enough to call per ingest frame.
  int64_t BufferedEvents() const;

  /// Shard migrations performed (threaded sessions with rebalance on).
  int64_t migrations() const;

  /// Segments stolen by starving workers (threaded sessions with steal
  /// on). Timing-dependent; the output is not.
  int64_t steals() const;

  /// Installs an observer on the pipeline. Must be called before Run or
  /// the first Ingest; must be thread-safe for threaded sessions; must
  /// outlive the session.
  void SetObserver(PipelineObserver* observer);

  const SessionOptions& options() const { return options_; }
  const ContinuousQuery& query() const { return query_; }

 private:
  StreamSession(SessionOptions options, ContinuousQuery query);

  bool threaded() const { return options_.threads > 0; }

  /// Spawns the threaded-incremental driver on first use.
  void EnsureStarted();

  RunReport RunSharded(EventSource* source);

  SessionOptions options_;
  ContinuousQuery query_;
  PipelineObserver* observer_ = nullptr;

  /// Sequential pipeline (threads == 0).
  std::unique_ptr<QueryExecutor> executor_;

  /// Threaded pipeline (threads > 0).
  std::unique_ptr<ShardedKeyedRunner> runner_;
  std::unique_ptr<internal::BlockingQueueSource> queue_;
  std::thread driver_;

  bool started_ = false;   // Incremental feeding has begun.
  bool ran_ = false;       // Run() was used.
  bool finished_ = false;
  int64_t events_ingested_ = 0;
  RunReport final_report_;
};

}  // namespace streamq

#endif  // STREAMQ_CORE_STREAM_SESSION_H_
