#ifndef STREAMQ_CORE_SPSC_QUEUE_H_
#define STREAMQ_CORE_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace streamq {

/// Bounded single-producer / single-consumer ring queue.
///
/// Lock-free in the fast path: the producer owns `tail_`, the consumer owns
/// `head_`, and each side only *reads* the other's index (acquire) before
/// publishing its own (release). Capacity is rounded up to a power of two so
/// index wrapping is a mask. The blocking Push/Pop spin briefly and then
/// yield, which is the right shape for the pipeline here: queues are sized
/// so that blocking means the other side is genuinely busy, not gone.
///
/// This is the fan-out primitive of ParallelMultiQueryRunner: the driver
/// thread is the single producer for every worker's queue, and each worker
/// is the single consumer of its own. Do not share one side between threads.
template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(size_t min_capacity) : slots_(RoundUpPow2(min_capacity)) {
    mask_ = slots_.size() - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  size_t capacity() const { return slots_.size(); }

  /// Approximate occupancy (instrumentation only): both indices are read
  /// relaxed, so the value may be momentarily stale from either side, but
  /// it is always within [0, capacity] for the single producer/consumer.
  size_t size() const {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_relaxed);
    return tail - head;
  }

  /// Producer side. Returns false when the ring is full.
  bool TryPush(T&& value) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == slots_.size()) {
      return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side; spins (then yields) until the consumer makes room.
  void Push(T value) {
    Backoff backoff;
    while (!TryPush(std::move(value))) backoff.Pause();
  }

  /// Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side; spins (then yields) until an element is available.
  T Pop() {
    T out;
    Backoff backoff;
    while (!TryPop(&out)) backoff.Pause();
    return out;
  }

 private:
  struct Backoff {
    int spins = 0;
    void Pause() {
      if (++spins < 64) return;  // Stay on-core while the wait is short.
      std::this_thread::yield();
    }
  };

  static size_t RoundUpPow2(size_t n) {
    STREAMQ_CHECK_GT(n, 0u);
    size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  std::vector<T> slots_;
  size_t mask_;
  alignas(64) std::atomic<size_t> head_{0};  // Next slot to pop (consumer).
  alignas(64) std::atomic<size_t> tail_{0};  // Next slot to fill (producer).
};

}  // namespace streamq

#endif  // STREAMQ_CORE_SPSC_QUEUE_H_
