#ifndef STREAMQ_CORE_SPSC_QUEUE_H_
#define STREAMQ_CORE_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/logging.h"
#include "common/time.h"
#include "core/queue_backoff.h"

namespace streamq {

/// Bounded single-producer / single-consumer ring queue.
///
/// Lock-free in the fast path: the producer owns `tail_`, the consumer owns
/// `head_`, and each side only *reads* the other's index (acquire) before
/// publishing its own (release). Capacity is rounded up to a power of two so
/// index wrapping is a mask.
///
/// Failure safety: either side may Close() the queue. Close is sticky and
/// one-way — after it, pushes fail immediately (fast: the producer checks
/// the flag only when the ring looks full, so the uncontended path is
/// unchanged), while pops still drain whatever was already published before
/// returning false. This is how a dying worker tells the driver to stop
/// feeding it, and how a driver abandons a stuck worker without blocking
/// forever.
///
/// Blocking waits escalate: spin on-core for short waits, yield for medium
/// ones, and sleep once the peer has clearly stalled — a stalled peer must
/// not burn a core at 100%. TryPushFor() adds a deadline on top, for callers
/// that need to distinguish "slow" from "gone".
///
/// This is the fan-out primitive of ParallelMultiQueryRunner: the driver
/// thread is the single producer for every worker's queue, and each worker
/// is the single consumer of its own. Do not share one side between threads.
template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(size_t min_capacity) : slots_(RoundUpPow2(min_capacity)) {
    mask_ = slots_.size() - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  size_t capacity() const { return slots_.size(); }

  /// Approximate occupancy (instrumentation only): both indices are read
  /// relaxed, so the value may be momentarily stale from either side, but
  /// it is always within [0, capacity] for the single producer/consumer.
  size_t size() const {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_relaxed);
    return tail - head;
  }

  /// Approximate emptiness (same caveats as size()); the work-stealing
  /// driver uses it to tell a drained victim from a backlogged one.
  bool empty() const { return size() == 0; }

  /// Marks the queue closed (sticky; either side may call it). Elements
  /// already in the ring stay poppable.
  void Close() { closed_.store(true, std::memory_order_release); }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Producer side. Returns false when the ring is full or the queue is
  /// closed; `value` is only consumed (moved from) on success.
  bool TryPush(T&& value) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == slots_.size()) {
      return false;
    }
    if (closed()) return false;
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side; blocks (spin → yield → sleep) until the consumer makes
  /// room. Returns false — with `value` dropped — only if the queue closes
  /// while waiting.
  bool Push(T value) {
    QueueBackoff backoff;
    while (!TryPush(std::move(value))) {
      if (closed()) return false;
      backoff.Pause();
    }
    return true;
  }

  /// Producer side with a deadline: blocks at most ~`timeout_us` wall
  /// microseconds. Returns false on timeout or close; `value` is only
  /// consumed on success, so the caller can retry or requeue it.
  bool TryPushFor(T&& value, DurationUs timeout_us) {
    QueueBackoff backoff;
    TimestampUs deadline = 0;  // Resolved lazily: the fast path never reads
                               // the clock.
    while (!TryPush(std::move(value))) {
      if (closed()) return false;
      if (backoff.spins >= QueueBackoff::kSpinLimit) {
        const TimestampUs now = WallClockMicros();
        if (deadline == 0) {
          deadline = now + timeout_us;
        } else if (now >= deadline) {
          return false;
        }
      }
      backoff.Pause();
    }
    return true;
  }

  /// Consumer side. Returns false when the ring is empty (even if closed:
  /// close never discards published elements).
  bool TryPop(T* out) {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side; blocks (spin → yield → sleep) until an element is
  /// available. Returns false only when the queue is closed *and* drained.
  bool Pop(T* out) {
    QueueBackoff backoff;
    while (!TryPop(out)) {
      // Check closed before the final empty test: a producer that pushes
      // and then closes is never missed (push precedes close).
      if (closed()) return TryPop(out);
      backoff.Pause();
    }
    return true;
  }

 private:
  std::vector<T> slots_;
  size_t mask_;
  alignas(64) std::atomic<size_t> head_{0};  // Next slot to pop (consumer).
  alignas(64) std::atomic<size_t> tail_{0};  // Next slot to fill (producer).
  alignas(64) std::atomic<bool> closed_{false};
};

}  // namespace streamq

#endif  // STREAMQ_CORE_SPSC_QUEUE_H_
