#ifndef STREAMQ_CORE_QUEUE_BACKOFF_H_
#define STREAMQ_CORE_QUEUE_BACKOFF_H_

#include <chrono>
#include <cstddef>
#include <thread>

#include "common/logging.h"

namespace streamq {

/// Escalating wait loop shared by the bounded queues (SPSC and MPSC): spin
/// on-core for short waits, yield for medium ones, and sleep once the peer
/// has clearly stalled — a stalled peer must not burn a core at 100%.
struct QueueBackoff {
  static constexpr int kSpinLimit = 64;

  int spins = 0;
  void Pause() {
    ++spins;
    if (spins < kSpinLimit) return;  // On-core while the wait is short.
    if (spins < 4096) {
      std::this_thread::yield();
      return;
    }
    // The peer has been unresponsive for thousands of iterations: stop
    // burning the core. Short naps first (a GC-less pipeline usually
    // resumes fast), longer ones once the stall is clearly persistent.
    std::this_thread::sleep_for(
        std::chrono::microseconds(spins < 65536 ? 50 : 500));
  }
};

/// Spins with escalating backoff until `done()` returns true. The drivers'
/// bounded waits (migration settles, handoff acknowledgements) all share
/// this shape; the predicate must become true through another thread's
/// progress, which the backoff never blocks.
template <typename Pred>
inline void BackoffUntil(Pred&& done) {
  QueueBackoff backoff;
  while (!done()) backoff.Pause();
}

/// Capacity helper for the ring queues: power-of-two sizes make index
/// wrapping a mask.
inline size_t RoundUpPow2(size_t n) {
  STREAMQ_CHECK_GT(n, 0u);
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace streamq

#endif  // STREAMQ_CORE_QUEUE_BACKOFF_H_
