#ifndef STREAMQ_CORE_MULTI_QUERY_H_
#define STREAMQ_CORE_MULTI_QUERY_H_

#include <memory>
#include <vector>

#include "core/continuous_query.h"
#include "core/executor.h"
#include "stream/source.h"

namespace streamq {

/// Executes several continuous queries over one input stream.
///
/// Two plans:
///  * kIndependent — every query gets its own disorder handler (buffering
///    is paid per query, but each query's quality/latency contract is met
///    exactly);
///  * kSharedHandler — one disorder handler feeds every query's window
///    operator. The shared handler is configured from the *strictest*
///    quality target among the queries, so every target is met, but
///    looser queries inherit the strict query's buffering latency. The
///    saving: one reorder buffer and one sort instead of N.
///
/// This is the classic shared-execution trade-off for this operator:
/// the ablation bench (R-F12) quantifies both sides.
class MultiQueryRunner {
 public:
  enum class Plan { kIndependent, kSharedHandler };

  explicit MultiQueryRunner(Plan plan) : plan_(plan) {}

  /// Registers a query. All queries must be added before Run().
  void AddQuery(const ContinuousQuery& query);

  /// Runs all queries over the stream; reports are in AddQuery order.
  /// With kSharedHandler, each report's handler_stats describe the single
  /// shared handler (identical across reports).
  std::vector<RunReport> Run(EventSource* source);

  Plan plan() const { return plan_; }

  /// The handler spec a shared plan would use (strictest quality target;
  /// falls back to the first query's spec when none is quality-driven).
  static DisorderHandlerSpec SharedHandlerSpec(
      const std::vector<ContinuousQuery>& queries);

 private:
  std::vector<RunReport> RunIndependent(EventSource* source);
  std::vector<RunReport> RunShared(EventSource* source);

  Plan plan_;
  std::vector<ContinuousQuery> queries_;
};

}  // namespace streamq

#endif  // STREAMQ_CORE_MULTI_QUERY_H_
