#ifndef STREAMQ_CORE_STREAM_JOIN_H_
#define STREAMQ_CORE_STREAM_JOIN_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "disorder/disorder_handler.h"
#include "disorder/handler_factory.h"
#include "stream/event.h"

namespace streamq {

/// One joined tuple pair.
struct JoinedPair {
  int64_t key = 0;
  Event left;
  Event right;
  /// Stream time at which the pair was produced.
  TimestampUs emit_stream_time = 0;
};

/// Consumer of join output.
class JoinSink {
 public:
  virtual ~JoinSink() = default;
  virtual void OnPair(const JoinedPair& pair) = 0;
};

/// Counts pairs and keeps a value checksum (bench/tests).
class CountingJoinSink : public JoinSink {
 public:
  void OnPair(const JoinedPair& pair) override {
    ++pairs;
    checksum += pair.left.value * pair.right.value;
  }
  int64_t pairs = 0;
  double checksum = 0.0;
};

/// Records every pair (tests).
class CollectingJoinSink : public JoinSink {
 public:
  void OnPair(const JoinedPair& pair) override { pairs.push_back(pair); }
  std::vector<JoinedPair> pairs;
};

/// Event-time windowed equi-join of two out-of-order streams:
/// emit (l, r) iff l.key == r.key and |l.event_time - r.event_time| <=
/// join_window. Each input passes through its own disorder handler; the
/// join core is a symmetric hash join over the handlers' in-order outputs,
/// with state evicted by the *other* side's watermark (a right event can
/// stop waiting for left partners once the left watermark has passed
/// r.ts + join_window).
///
/// Quality semantics: tuples a handler sheds as late lose all their pairs —
/// join recall (pairs found / true pairs, see OracleJoinCount) is the
/// quality metric, and it composes multiplicatively from per-side coverage.
/// This makes the join the sharpest consumer of quality-driven buffering:
/// at per-side coverage c, recall is ~c², so hitting a recall target
/// requires per-side targets of sqrt(target).
class WindowedStreamJoin {
 public:
  struct Options {
    /// Maximum event-time distance between joined tuples (>= 0).
    DurationUs join_window = Millis(100);
    DisorderHandlerSpec left_handler;
    DisorderHandlerSpec right_handler;
  };

  struct Stats {
    int64_t pairs_emitted = 0;
    int64_t left_in = 0;
    int64_t right_in = 0;
    int64_t left_late_dropped = 0;
    int64_t right_late_dropped = 0;
    /// Peak total tuples held in the two join stores.
    int64_t max_store_size = 0;
  };

  WindowedStreamJoin(const Options& options, JoinSink* sink);
  ~WindowedStreamJoin();  // Out-of-line: SideSink is defined in the .cc.

  /// Feeds one arrival on each input (arrival-ordered per input).
  void FeedLeft(const Event& e);
  void FeedRight(const Event& e);

  /// Ends both streams, draining handler buffers and emitting remaining
  /// pairs.
  void Finish();

  const Stats& stats() const { return stats_; }
  const DisorderHandler& left_handler() const { return *left_handler_; }
  const DisorderHandler& right_handler() const { return *right_handler_; }

 private:
  /// Per-side in-order store: per key, events in event-time order.
  struct SideStore {
    std::unordered_map<int64_t, std::deque<Event>> by_key;
    int64_t size = 0;
    TimestampUs watermark = kMinTimestamp;
    TimestampUs last_stream_time = 0;
  };

  /// EventSink adapter for one input side.
  class SideSink;

  /// Handles an in-order event from `from`: probe the opposite store, emit
  /// pairs, insert into own store.
  void OnOrderedEvent(const Event& e, bool from_left);
  void OnSideWatermark(TimestampUs watermark, TimestampUs stream_time,
                       bool from_left);
  /// Evicts from `store` everything no future event of the *other* side can
  /// join with.
  void Evict(SideStore* store, TimestampUs other_watermark);

  Options options_;
  JoinSink* sink_;
  std::unique_ptr<DisorderHandler> left_handler_;
  std::unique_ptr<DisorderHandler> right_handler_;
  std::unique_ptr<SideSink> left_sink_;
  std::unique_ptr<SideSink> right_sink_;
  SideStore left_store_;
  SideStore right_store_;
  Stats stats_;
};

/// Ground truth: the number of (left, right) pairs with equal key and
/// event-time distance <= join_window, over the complete streams. O(n log n
/// + pairs-scan) two-pointer sweep per key.
int64_t OracleJoinCount(const std::vector<Event>& left,
                        const std::vector<Event>& right,
                        DurationUs join_window);

}  // namespace streamq

#endif  // STREAMQ_CORE_STREAM_JOIN_H_
