#include "core/executor.h"

#include <cstdio>

#include "common/logging.h"
#include "common/time.h"

namespace streamq {

std::string RunReport::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "RunReport{%s: events=%lld rejected=%lld results=%zu (amended=%lld) "
      "throughput=%.0f ev/s buf_latency_mean=%s late=%lld dropped=%lld "
      "shed=%lld",
      query_name.c_str(), static_cast<long long>(events_processed),
      static_cast<long long>(events_rejected), results.size(),
      static_cast<long long>(results_amended), throughput_eps,
      FormatDuration(
          static_cast<DurationUs>(handler_stats.buffering_latency_us.mean()))
          .c_str(),
      static_cast<long long>(handler_stats.events_late),
      static_cast<long long>(window_stats.late_dropped),
      static_cast<long long>(handler_stats.events_shed));
  std::string out = buf;
  if (!runtime_config.empty()) {
    out += " runtime=[" + runtime_config + "]";
  }
  if (!status.ok()) {
    out += " status=" + status.ToString();
  }
  out += "}";
  return out;
}

QueryExecutor::QueryExecutor(const ContinuousQuery& query) : query_(query) {
  STREAMQ_CHECK_OK(query.Validate());
  handler_ = MakeDisorderHandlerOrDie(query.handler);
  window_op_ =
      std::make_unique<WindowedAggregation>(query.window, &result_sink_);
}

void QueryExecutor::Feed(const Event& e) {
  if (query_.validation != IngestValidation::kOff) [[unlikely]] {
    if (!status_.ok()) return;  // strict mode already tripped
    Status s = ValidateEvent(e);
    if (!s.ok()) {
      RejectEvent(e, std::move(s));
      return;
    }
  }
  ++events_processed_;
  handler_->OnEvent(e, window_op_.get());
}

void QueryExecutor::FeedBatch(std::span<const Event> batch) {
  if (query_.validation != IngestValidation::kOff) [[unlikely]] {
    FeedBatchValidated(batch);
    return;
  }
  events_processed_ += static_cast<int64_t>(batch.size());
  handler_->OnBatch(batch, window_op_.get());
}

void QueryExecutor::FeedBatchValidated(std::span<const Event> batch) {
  if (!status_.ok()) return;
  // Feed maximal valid sub-spans so one bad tuple does not force the whole
  // chunk down the per-event path.
  size_t begin = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    Status s = ValidateEvent(batch[i]);
    if (s.ok()) continue;
    if (i > begin) {
      events_processed_ += static_cast<int64_t>(i - begin);
      handler_->OnBatch(batch.subspan(begin, i - begin), window_op_.get());
    }
    RejectEvent(batch[i], std::move(s));
    begin = i + 1;
    if (!status_.ok()) return;  // strict: stop at the first rejection
  }
  if (begin < batch.size()) {
    events_processed_ += static_cast<int64_t>(batch.size() - begin);
    handler_->OnBatch(batch.subspan(begin), window_op_.get());
  }
}

void QueryExecutor::RejectEvent(const Event& e, Status status) {
  ++events_rejected_;
  if (observer_ != nullptr) {
    observer_->OnEventRejected(e);
  }
  if (query_.validation == IngestValidation::kStrict && status_.ok()) {
    status_ = std::move(status);
  }
}

void QueryExecutor::FeedHeartbeat(TimestampUs event_time_bound,
                                  TimestampUs stream_time) {
  handler_->OnHeartbeat(event_time_bound, stream_time, window_op_.get());
}

void QueryExecutor::Finish() { handler_->Flush(window_op_.get()); }

RunReport QueryExecutor::Run(EventSource* source, size_t batch_size) {
  const TimestampUs start = WallClockMicros();
  if (batch_size == 0) {
    Event e;
    while (source->Next(&e)) {
      Feed(e);
      if (!status_.ok()) break;
    }
  } else {
    std::vector<Event> chunk;
    chunk.reserve(batch_size);
    while (source->NextBatch(&chunk, batch_size) > 0) {
      FeedBatch(chunk);
      if (observer_ != nullptr) {
        observer_->OnSourceBatch(static_cast<int64_t>(chunk.size()));
      }
      chunk.clear();
      if (!status_.ok()) break;  // strict validation tripped: stop feeding
    }
  }
  Finish();
  wall_seconds_ = ToSeconds(WallClockMicros() - start);
  if (observer_ != nullptr) {
    observer_->OnRunCompleted(events_processed_, wall_seconds_);
  }
  return Report();
}

RunReport QueryExecutor::Report() const {
  RunReport report;
  report.query_name = query_.name;
  report.events_processed = events_processed_;
  report.events_rejected = events_rejected_;
  report.status = status_;
  report.wall_seconds = wall_seconds_;
  report.throughput_eps =
      wall_seconds_ > 0.0
          ? static_cast<double>(events_processed_) / wall_seconds_
          : 0.0;
  report.handler_stats = handler_->stats();
  report.window_stats = window_op_->stats();
  report.results_amended = report.window_stats.revisions;
  report.results = result_sink_.results;
  report.final_slack = handler_->current_slack();
  return report;
}

}  // namespace streamq
