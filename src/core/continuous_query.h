#ifndef STREAMQ_CORE_CONTINUOUS_QUERY_H_
#define STREAMQ_CORE_CONTINUOUS_QUERY_H_

#include <string>

#include "agg/aggregate.h"
#include "common/status.h"
#include "disorder/handler_factory.h"
#include "window/window_operator.h"

namespace streamq {

/// What QueryExecutor does with arrivals that fail ValidateEvent
/// (non-finite value, negative/overflowing timestamp, clock regression).
enum class IngestValidation {
  /// Trust the source; feed everything straight to the handler (default —
  /// zero per-tuple cost, right for generated workloads).
  kOff,
  /// Count-and-drop: reject the tuple, bump RunReport::events_rejected,
  /// keep running. Right for external / fault-injected feeds.
  kDrop,
  /// First malformed tuple stops the run: it is rejected and counted, and
  /// RunReport::status carries the validation error (sticky).
  kStrict,
};

const char* IngestValidationName(IngestValidation validation);

/// A continuous query: disorder handling strategy + windowed aggregation.
/// Build with QueryBuilder; run with QueryExecutor.
struct ContinuousQuery {
  std::string name = "query";
  DisorderHandlerSpec handler;
  WindowedAggregation::Options window;
  IngestValidation validation = IngestValidation::kOff;

  Status Validate() const;

  /// e.g. "q1: sliding(10s/1s) sum via aq-kslack(q*=0.950)".
  std::string Describe() const;
};

/// Fluent builder for ContinuousQuery. Example:
///
///   ContinuousQuery q = QueryBuilder("avg-load")
///       .Sliding(Seconds(10), Seconds(1))
///       .Aggregate("mean")
///       .QualityTarget(0.95)       // quality-driven buffering (the paper)
///       .Build();
///
/// Alternatives to QualityTarget: FixedSlack(k), AdaptiveMaxSlack(),
/// Watermark(bound), NoDisorderHandling().
class QueryBuilder {
 public:
  explicit QueryBuilder(std::string name = "query");

  /// Window shape.
  QueryBuilder& Tumbling(DurationUs size);
  QueryBuilder& Sliding(DurationUs size, DurationUs slide);

  /// Aggregate function: by spec or by name ("sum", "quantile:0.9", ...).
  /// The string form aborts on parse error (use ParseAggregateSpec for
  /// recoverable handling).
  QueryBuilder& Aggregate(const AggregateSpec& spec);
  QueryBuilder& Aggregate(const std::string& name);

  /// How long after window close late tuples may still amend results.
  QueryBuilder& AllowedLateness(DurationUs lateness);

  /// Emit one revision per late update (default) or batch at purge time.
  QueryBuilder& RevisionPerUpdate(bool on);

  /// --- Disorder handling strategies (choose exactly one; the last call
  /// wins). Default: QualityTarget(0.95). ---

  /// The paper's operator: meet a result-quality target with minimal
  /// buffering latency. The coverage→quality model defaults to the
  /// aggregate's DefaultQualityGamma; override with `gamma` > 0, or pass
  /// gamma = 1 for the pure coverage metric.
  QueryBuilder& QualityTarget(double target, double gamma = 0.0);

  /// QualityTarget with full AqKSlack options control.
  QueryBuilder& QualityDriven(const AqKSlack::Options& options,
                              double gamma = 0.0);

  /// The dual contract: "mean buffering latency at most `budget`, quality
  /// as high as that allows" (LbKSlack).
  QueryBuilder& LatencyBudget(DurationUs budget);

  /// LatencyBudget with full LbKSlack options control.
  QueryBuilder& LatencyConstrained(const LbKSlack::Options& options);

  /// Classic fixed K-slack.
  QueryBuilder& FixedSlack(DurationUs k);

  /// Disorder-bound-tracking baseline.
  QueryBuilder& AdaptiveMaxSlack(
      const MpKSlack::Options& options = MpKSlack::Options{});

  /// Flink-style heuristic watermark baseline.
  QueryBuilder& Watermark(const WatermarkReorderer::Options& options);

  /// No reordering at all (use with AllowedLateness for the speculative
  /// emit-then-amend strategy).
  QueryBuilder& NoDisorderHandling();

  /// Speculative emit-then-amend: no reorder buffer, an adaptive hold on
  /// the output watermark driven by the amend-rate controller. Requires an
  /// amend-capable window engine (WindowEngine kAmend or kHot); rejected
  /// with kLegacy by Validate. Like QualityTarget, `target` prices the
  /// provisional results: 1 - target is the amend-rate budget.
  QueryBuilder& Speculative(double target = 0.95, double gamma = 0.0);

  /// Speculative with full SpeculativeHandler options control.
  QueryBuilder& SpeculativeDriven(const SpeculativeHandler::Options& options,
                                  double gamma = 0.0);

  /// Window engine selection (default kHot). kAmend accepts out-of-order
  /// tuples directly — the engine the speculative strategies pair with.
  QueryBuilder& WindowEngine(WindowedAggregation::Engine engine);

  /// Runs the chosen disorder strategy per key (one buffer per key, merged
  /// minimum watermark). Call after choosing the strategy.
  QueryBuilder& PerKey(bool on = true);

  /// Ingest validation policy for malformed arrivals (default kOff).
  QueryBuilder& ValidateIngest(IngestValidation validation);

  /// Bounded-memory degradation: cap the handler's reorder buffer and shed
  /// per `policy` once it fills (see DisorderHandlerSpec::WithBufferCap).
  QueryBuilder& BufferCap(size_t max_buffered_events,
                          ShedPolicy policy = ShedPolicy::kEmitEarly);

  /// Clamp on the slack adaptive handlers may request (0 = unbounded).
  QueryBuilder& MaxSlack(DurationUs max_slack);

  /// Finalizes the query. Aborts if the configuration is invalid.
  ContinuousQuery Build() const;

 private:
  ContinuousQuery query_;
  bool explicit_gamma_ = false;
  double gamma_override_ = 0.0;
  bool quality_driven_ = true;
};

}  // namespace streamq

#endif  // STREAMQ_CORE_CONTINUOUS_QUERY_H_
