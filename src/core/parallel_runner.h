#ifndef STREAMQ_CORE_PARALLEL_RUNNER_H_
#define STREAMQ_CORE_PARALLEL_RUNNER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/continuous_query.h"
#include "core/executor.h"
#include "core/pipeline_observer.h"
#include "stream/source.h"

namespace streamq {

/// Shared knobs for the threaded runners below.
struct ParallelOptions {
  /// Events per batch handed across the thread boundary. Batches are the
  /// unit of queue traffic, so this trades dispatch amortization against
  /// pipeline latency; the default matches QueryExecutor::Run.
  size_t batch_size = QueryExecutor::kDefaultRunBatchSize;

  /// Bound (in batches) on each worker's input queue. Limits memory to
  /// queue_capacity * batch_size events per worker when the source outruns
  /// a query.
  size_t queue_capacity = 64;

  /// First deadline when a worker's queue stays full. The driver retries
  /// with this timeout doubled per attempt (exponential backoff), so a
  /// merely slow worker gets progressively more patience.
  DurationUs feed_timeout_us = Millis(250);

  /// Attempts before the driver declares the worker stuck, closes its
  /// queue, and degrades the run (ResourceExhausted in that worker's
  /// report) instead of blocking forever. With the defaults the driver
  /// waits ~7.75 s total per worker.
  int feed_max_attempts = 5;
};

/// Runs N independent continuous queries over one arrival-ordered stream,
/// one worker thread per query.
///
/// A driver thread (the caller) pulls batches from the source and publishes
/// each batch — one shared, immutable copy — to every worker's bounded SPSC
/// queue. Each worker drives its own QueryExecutor::FeedBatch over exactly
/// the stream prefix order the sequential MultiQueryRunner would have fed
/// it, so every query's results, stats, and watermarks are byte-identical
/// to a sequential kIndependent run (and therefore deterministic): threads
/// change *when* work happens, never *what* each query observes.
class ParallelMultiQueryRunner {
 public:
  explicit ParallelMultiQueryRunner(ParallelOptions options = {})
      : options_(options) {}

  /// Registers a query. All queries must be added before Run().
  void AddQuery(const ContinuousQuery& query);

  /// Runs all queries to completion; reports are in AddQuery order, with
  /// wall_seconds/throughput measured over the shared (parallel) run.
  ///
  /// Failure containment: a worker that throws is caught on its own
  /// thread — its queue is closed, its report comes back with a non-OK
  /// status covering everything processed up to the failure, and the other
  /// queries finish normally. A worker whose queue stays full past the
  /// feed timeout is likewise abandoned with ResourceExhausted instead of
  /// wedging the driver. The process never terminates on a worker fault.
  std::vector<RunReport> Run(EventSource* source);

  const ParallelOptions& options() const { return options_; }

  /// Installs one observer on every worker pipeline plus the driver's queue
  /// instrumentation (per-worker queue depth, backpressure stalls). The
  /// observer is shared across threads, so it must be thread-safe (e.g.
  /// MetricsObserver); it must outlive Run().
  void SetObserver(PipelineObserver* observer) { observer_ = observer; }

 private:
  ParallelOptions options_;
  std::vector<ContinuousQuery> queries_;
  PipelineObserver* observer_ = nullptr;
};

/// Runs ONE keyed query with its key space sharded across worker threads.
///
/// Each shard owns a full pipeline (per-key disorder handler + window
/// operator with per-key watermarks) and receives exactly the arrival-order
/// subsequence of tuples whose key hashes to it. Because a per-key handler's
/// buffering and a per-key-watermark window's *first emission* for key k
/// depend only on key k's own subsequence, every window's first emission
/// (bounds, key, value, tuple_count) is identical to the unsharded run.
/// What sharding may legitimately change: each shard's merged watermark is
/// at least the global one (fewer keys to wait for), so terminal-flush
/// emission times and revision/purge timing can differ. Results are merged
/// and sorted by (window start, key, revision index) for a deterministic
/// output order.
class ShardedKeyedRunner {
 public:
  /// `query` must use a per-key disorder handler (handler.per_key); the
  /// window operator is forced to per_key_watermarks to make first
  /// emissions shard-invariant (see class comment).
  ShardedKeyedRunner(const ContinuousQuery& query, size_t num_shards,
                     ParallelOptions options = {});

  /// Runs the query to completion and returns one merged report: counters
  /// summed, latency moments merged, max_buffer_size summed across shards
  /// (aggregate memory bound), final_slack = max over shards.
  RunReport Run(EventSource* source);

  size_t num_shards() const { return num_shards_; }

  /// Shard assignment: splitmix64-style mix of the key, mod num_shards.
  /// Raw keys are often sequential, so a plain modulo would alias key
  /// patterns onto shards; the mix makes placement uniform regardless.
  static size_t ShardOf(int64_t key, size_t num_shards);

  /// Installs one observer on every shard pipeline plus the driver's
  /// per-shard routing counters. Must be thread-safe and outlive Run().
  void SetObserver(PipelineObserver* observer) { observer_ = observer; }

 private:
  ContinuousQuery query_;
  size_t num_shards_;
  ParallelOptions options_;
  PipelineObserver* observer_ = nullptr;
};

}  // namespace streamq

#endif  // STREAMQ_CORE_PARALLEL_RUNNER_H_
