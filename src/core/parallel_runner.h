#ifndef STREAMQ_CORE_PARALLEL_RUNNER_H_
#define STREAMQ_CORE_PARALLEL_RUNNER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/continuous_query.h"
#include "core/executor.h"
#include "core/pipeline_observer.h"
#include "stream/source.h"

namespace streamq {

/// Shared knobs for the threaded runners below.
struct ParallelOptions {
  /// Events per batch handed across the thread boundary. Batches are the
  /// unit of queue traffic, so this trades dispatch amortization against
  /// pipeline latency; the default matches QueryExecutor::Run.
  size_t batch_size = QueryExecutor::kDefaultRunBatchSize;

  /// Bound (in batches) on each worker's input queue. Limits memory to
  /// queue_capacity * batch_size events per worker when the source outruns
  /// a query.
  size_t queue_capacity = 64;

  /// First deadline when a worker's queue stays full. The driver retries
  /// with this timeout doubled per attempt (exponential backoff), so a
  /// merely slow worker gets progressively more patience.
  DurationUs feed_timeout_us = Millis(250);

  /// Attempts before the driver declares the worker stuck, closes its
  /// queue, and degrades the run (ResourceExhausted in that worker's
  /// report) instead of blocking forever. With the defaults the driver
  /// waits ~7.75 s total per worker.
  int feed_max_attempts = 5;

  /// Allocation mode for batches crossing the queues. On (default): slab
  /// arena with whole-batch recycling — the steady state allocates nothing;
  /// feed scratch, queue batches and (via the handler spec) reorder-buffer
  /// buckets all cycle through pooled storage. Off: one heap allocation
  /// per batch, freed by whichever thread drops the last reference — the
  /// reference malloc path the f21 benchmark compares against. Pure
  /// allocation-path switch: results are identical either way.
  bool use_arena = true;

  /// Pin worker thread i to logical core i (mod core count), and producer
  /// threads to the cores after the workers. Best-effort placement hint:
  /// failures and unsupported platforms are recorded in runtime_config,
  /// never fatal.
  bool pin_cores = false;

  /// ShardedKeyedRunner only: number of virtual shards multiplexed over
  /// the worker threads (0 = one per worker, the static legacy topology,
  /// bit-for-bit identical routing to earlier releases). With more virtual
  /// shards than workers, each shard is a self-contained executor the
  /// rebalancer can migrate between workers without splitting any key's
  /// state. Must be >= the worker count when nonzero.
  size_t virtual_shards = 0;

  /// ShardedKeyedRunner, single-source runs only: periodically migrate the
  /// hottest shard off the most loaded worker at a watermark-aligned safe
  /// point (see DESIGN §11.3). Decisions depend only on routed-event
  /// counts, so a rebalanced run is deterministic — same placements, same
  /// migrations, same merged output — for a given source.
  bool rebalance = false;

  /// Source batches between rebalance checks.
  int64_t rebalance_interval_batches = 32;

  /// Trigger: migrate when max worker load > threshold * min worker load.
  double rebalance_threshold = 1.25;

  /// Exponential decay applied to per-shard load at each check (recent
  /// traffic dominates; old skew fades).
  double rebalance_decay = 0.5;

  /// ShardedKeyedRunner, single-source runs only: demand-driven work
  /// stealing. Each worker's bounded queue is its deque of ready
  /// virtual-shard batch segments; when a worker runs dry (blocked on an
  /// empty deque) while another is backlogged past steal_min_backlog
  /// events, the driver moves the hottest movable shard from the
  /// most-backlogged victim to the starving worker through the same
  /// in-band kRelease safe-point handshake the rebalancer uses (DESIGN
  /// §14). Stealing moves whole shards — never splitting a key's state —
  /// so the merged output is byte-identical to a static placement for
  /// *any* steal schedule; unlike `rebalance`, the trigger reads worker
  /// progress, so the steal count (recorded in runtime_config and
  /// WorkerLoad) is timing-dependent even though the results are not.
  /// Composes with rebalance; both share the single in-flight handoff.
  bool steal = false;

  /// Steal trigger: the victim must be at least this many routed-but-
  /// unprocessed events behind before a starving worker may pull from it.
  int64_t steal_min_backlog = 1024;

  /// Adapt the per-source feed batch size at run time within [min_batch,
  /// max_batch], starting from batch_size, driven by observed queue depth
  /// and per-batch service time (core/adaptive_batch.h). Applies to every
  /// feed path on both runners; results are unaffected — batch size only
  /// changes throughput, latency, and when scheduler decisions fire.
  bool adaptive_batch = false;
  size_t min_batch = 64;
  size_t max_batch = 8192;

  /// Mint feed slabs from per-NUMA-node arena pools (NumaArenaSet +
  /// cpu_affinity topology detection): each producer acquires from the
  /// node it runs on (first-touch page placement) and batch storage always
  /// returns to its minting node's pool, so migrated or stolen segments
  /// never drag slab storage across sockets. Single-node machines take the
  /// identical code path with one pool.
  bool numa_arena = false;

  /// Field and range checks for everything above, centralized so every
  /// front end (runner constructors, SessionOptions::Validate, tests)
  /// rejects the same bad numerics with the same did-you-mean hints. The
  /// runners check-fail on options that do not validate.
  Status Validate() const;
};

/// Post-run, per-worker accounting from the driver and workers: what was
/// routed to each worker's queue, what it reported processing, and how
/// often the driver stalled on its queue. For the independent runner every
/// worker is routed the whole stream; for the keyed runner this is the
/// placement-weighted load the rebalancer acts on.
struct WorkerLoad {
  int64_t events_routed = 0;
  int64_t batches_routed = 0;
  int64_t events_processed = 0;
  int64_t stalls = 0;
  /// Shards this worker pulled while starving (steal mode) and shards
  /// pulled *from* it.
  int64_t segments_stolen = 0;
  int64_t segments_donated = 0;
  /// Feed batches this worker released whose slab storage was minted on
  /// its own NUMA node vs another node (numa_arena runs only; both zero
  /// otherwise).
  int64_t node_local_batches = 0;
  int64_t node_remote_batches = 0;
};

/// Runs N independent continuous queries over one arrival-ordered stream,
/// one worker thread per query.
///
/// A driver thread (the caller) pulls batches from the source and publishes
/// each batch — one shared, immutable copy — to every worker's bounded SPSC
/// queue. Each worker drives its own QueryExecutor::FeedBatch over exactly
/// the stream prefix order the sequential MultiQueryRunner would have fed
/// it, so every query's results, stats, and watermarks are byte-identical
/// to a sequential kIndependent run (and therefore deterministic): threads
/// change *when* work happens, never *what* each query observes.
class ParallelMultiQueryRunner {
 public:
  explicit ParallelMultiQueryRunner(ParallelOptions options = {})
      : options_(options) {}

  /// Registers a query. All queries must be added before Run().
  void AddQuery(const ContinuousQuery& query);

  /// Runs all queries to completion; reports are in AddQuery order, with
  /// wall_seconds/throughput measured over the shared (parallel) run.
  ///
  /// Failure containment: a worker that throws is caught on its own
  /// thread — its queue is closed, its report comes back with a non-OK
  /// status covering everything processed up to the failure, and the other
  /// queries finish normally. A worker whose queue stays full past the
  /// feed timeout is likewise abandoned with ResourceExhausted instead of
  /// wedging the driver. The process never terminates on a worker fault.
  std::vector<RunReport> Run(EventSource* source);

  /// Multi-producer feed: one producer thread per source pushes batches
  /// into lock-free MPSC worker queues, with the same failure-safety
  /// contract as Run(). Each query sees all sources' events, interleaved
  /// in queue-arrival order — use when the "stream" is physically many
  /// feeds (network sockets, partitioned logs) whose interleaving is
  /// already arbitrary. Unlike Run(), the interleaving is scheduling-
  /// dependent, so per-query results are only deterministic up to source
  /// interleaving.
  std::vector<RunReport> RunMultiSource(std::span<EventSource* const> sources);

  const ParallelOptions& options() const { return options_; }

  /// Installs one observer on every worker pipeline plus the driver's queue
  /// instrumentation (per-worker queue depth, backpressure stalls). The
  /// observer is shared across threads, so it must be thread-safe (e.g.
  /// MetricsObserver); it must outlive Run().
  void SetObserver(PipelineObserver* observer) { observer_ = observer; }

 private:
  ParallelOptions options_;
  std::vector<ContinuousQuery> queries_;
  PipelineObserver* observer_ = nullptr;
};

/// Runs ONE keyed query with its key space sharded across worker threads.
///
/// The key space hashes onto V >= W *virtual shards* (ParallelOptions::
/// virtual_shards; V == W when 0), each a full pipeline (per-key disorder
/// handler + window operator with per-key watermarks) multiplexed onto W
/// worker threads. Each shard receives exactly the arrival-order
/// subsequence of tuples whose key hashes to it. Because a per-key
/// handler's buffering and a per-key-watermark window's *first emission*
/// for key k depend only on key k's own subsequence, every window's first
/// emission (bounds, key, value, tuple_count) is identical to the
/// unsharded run — and independent of shard→worker placement, which is
/// what makes rebalancing output-preserving: migration moves a whole shard
/// (executor and all) between workers at a watermark-aligned safe point,
/// never splitting a key's state. What sharding may legitimately change:
/// each shard's merged watermark is at least the global one (fewer keys to
/// wait for), so terminal-flush emission times and revision/purge timing
/// can differ. Results are merged and sorted by (window start, key,
/// revision index) for a deterministic output order.
class ShardedKeyedRunner {
 public:
  /// `query` must use a per-key disorder handler (handler.per_key); the
  /// window operator is forced to per_key_watermarks to make first
  /// emissions shard-invariant (see class comment). `num_workers` is the
  /// worker-thread count (historically "shards": it doubles as the virtual
  /// shard count when options.virtual_shards is 0).
  ShardedKeyedRunner(const ContinuousQuery& query, size_t num_workers,
                     ParallelOptions options = {});

  /// Runs the query to completion and returns one merged report: counters
  /// summed, latency moments merged, max_buffer_size summed across shards
  /// (aggregate memory bound), final_slack = max over shards.
  RunReport Run(EventSource* source);

  /// Multi-producer feed over lock-free MPSC worker queues: one producer
  /// thread per source routes its own events (static placement; rebalance
  /// must be off). Sources must partition the key space — each key's
  /// events all arriving through one source — for the per-key subsequences
  /// (hence first emissions) to be interleaving-invariant; with key-
  /// disjoint sources the merged first-emission output is byte-identical
  /// to Run() over the merged stream.
  RunReport RunMultiSource(std::span<EventSource* const> sources);

  size_t num_shards() const { return num_workers_; }
  size_t num_workers() const { return num_workers_; }

  /// Shard assignment: splitmix64-style mix of the key, mod num_shards.
  /// Raw keys are often sequential, so a plain modulo would alias key
  /// patterns onto shards; the mix makes placement uniform regardless.
  static size_t ShardOf(int64_t key, size_t num_shards);

  /// Per-worker accounting for the most recent Run/RunMultiSource, indexed
  /// by worker; empty before the first run.
  const std::vector<WorkerLoad>& worker_loads() const { return loads_; }

  /// Shard migrations performed by the most recent run (periodic
  /// rebalancing; demand-driven steals are counted separately).
  int64_t migrations() const { return migrations_; }

  /// Segments stolen by starving workers during the most recent run
  /// (options.steal). Timing-dependent by design; the merged output is
  /// byte-identical to a static run regardless of the schedule.
  int64_t steals() const { return steals_; }

  /// Feed batch size at the end of the most recent run: the adaptive
  /// controller's converged setpoint, or options.batch_size when
  /// adaptive_batch is off.
  size_t final_batch_size() const { return final_batch_; }

  /// Installs one observer on every shard pipeline plus the driver's
  /// per-shard routing counters. Must be thread-safe and outlive Run().
  void SetObserver(PipelineObserver* observer) { observer_ = observer; }

 private:
  ContinuousQuery query_;
  size_t num_workers_;
  ParallelOptions options_;
  PipelineObserver* observer_ = nullptr;
  std::vector<WorkerLoad> loads_;
  int64_t migrations_ = 0;
  int64_t steals_ = 0;
  size_t final_batch_ = 0;
};

}  // namespace streamq

#endif  // STREAMQ_CORE_PARALLEL_RUNNER_H_
