#include "core/continuous_query.h"

#include <cstdio>

#include "common/logging.h"

namespace streamq {

const char* IngestValidationName(IngestValidation validation) {
  switch (validation) {
    case IngestValidation::kOff:
      return "off";
    case IngestValidation::kDrop:
      return "drop";
    case IngestValidation::kStrict:
      return "strict";
  }
  return "?";
}

Status ContinuousQuery::Validate() const {
  STREAMQ_RETURN_NOT_OK(window.window.Validate());
  STREAMQ_RETURN_NOT_OK(window.aggregate.Validate());
  if (window.allowed_lateness < 0) {
    return Status::InvalidArgument("allowed_lateness must be >= 0");
  }
  if (handler.kind == DisorderHandlerSpec::Kind::kSpeculative &&
      window.engine == WindowedAggregation::Engine::kLegacy) {
    return Status::InvalidArgument(
        "speculative emit-then-amend forwards tuples out of order and "
        "needs an amend-capable window engine: use --window-engine=amend "
        "(or hot), not legacy");
  }
  return handler.Validate();
}

std::string ContinuousQuery::Describe() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%s: %s %s via %s", name.c_str(),
                window.window.Describe().c_str(),
                window.aggregate.Describe().c_str(),
                handler.Describe().c_str());
  return buf;
}

QueryBuilder::QueryBuilder(std::string name) {
  query_.name = std::move(name);
  query_.handler = DisorderHandlerSpec::Aq(AqKSlack::Options{});
}

QueryBuilder& QueryBuilder::Tumbling(DurationUs size) {
  query_.window.window = WindowSpec::Tumbling(size);
  return *this;
}

QueryBuilder& QueryBuilder::Sliding(DurationUs size, DurationUs slide) {
  query_.window.window = WindowSpec::Sliding(size, slide);
  return *this;
}

QueryBuilder& QueryBuilder::Aggregate(const AggregateSpec& spec) {
  query_.window.aggregate = spec;
  return *this;
}

QueryBuilder& QueryBuilder::Aggregate(const std::string& name) {
  auto parsed = ParseAggregateSpec(name);
  STREAMQ_CHECK(parsed.ok()) << parsed.status().ToString();
  query_.window.aggregate = parsed.value();
  return *this;
}

QueryBuilder& QueryBuilder::AllowedLateness(DurationUs lateness) {
  query_.window.allowed_lateness = lateness;
  return *this;
}

QueryBuilder& QueryBuilder::RevisionPerUpdate(bool on) {
  query_.window.emit_revision_per_update = on;
  return *this;
}

QueryBuilder& QueryBuilder::QualityTarget(double target, double gamma) {
  AqKSlack::Options options;
  options.target_quality = target;
  return QualityDriven(options, gamma);
}

QueryBuilder& QueryBuilder::QualityDriven(const AqKSlack::Options& options,
                                          double gamma) {
  query_.handler = DisorderHandlerSpec::Aq(options, gamma);
  quality_driven_ = true;
  explicit_gamma_ = gamma > 0.0;
  gamma_override_ = gamma;
  return *this;
}

QueryBuilder& QueryBuilder::LatencyBudget(DurationUs budget) {
  LbKSlack::Options options;
  options.latency_budget = budget;
  return LatencyConstrained(options);
}

QueryBuilder& QueryBuilder::LatencyConstrained(const LbKSlack::Options& options) {
  query_.handler = DisorderHandlerSpec::Lb(options);
  quality_driven_ = false;
  return *this;
}

QueryBuilder& QueryBuilder::FixedSlack(DurationUs k) {
  query_.handler = DisorderHandlerSpec::Fixed(k);
  quality_driven_ = false;
  return *this;
}

QueryBuilder& QueryBuilder::AdaptiveMaxSlack(const MpKSlack::Options& options) {
  query_.handler = DisorderHandlerSpec::Mp(options);
  quality_driven_ = false;
  return *this;
}

QueryBuilder& QueryBuilder::Watermark(
    const WatermarkReorderer::Options& options) {
  query_.handler = DisorderHandlerSpec::Watermark(options);
  quality_driven_ = false;
  return *this;
}

QueryBuilder& QueryBuilder::NoDisorderHandling() {
  query_.handler = DisorderHandlerSpec::PassThrough();
  quality_driven_ = false;
  return *this;
}

QueryBuilder& QueryBuilder::Speculative(double target, double gamma) {
  SpeculativeHandler::Options options;
  options.target_quality = target;
  return SpeculativeDriven(options, gamma);
}

QueryBuilder& QueryBuilder::SpeculativeDriven(
    const SpeculativeHandler::Options& options, double gamma) {
  query_.handler = DisorderHandlerSpec::Speculative(options, gamma);
  // Same aggregate-aware gamma defaulting as the buffered quality path:
  // the amend-rate budget should price provisional error the way the
  // aggregate experiences it.
  quality_driven_ = true;
  explicit_gamma_ = gamma > 0.0;
  gamma_override_ = gamma;
  // Speculation needs an engine that absorbs out-of-order folds; switch
  // off the legacy reference unless the caller already chose.
  if (query_.window.engine == WindowedAggregation::Engine::kLegacy) {
    query_.window.engine = WindowedAggregation::Engine::kAmend;
  }
  return *this;
}

QueryBuilder& QueryBuilder::WindowEngine(WindowedAggregation::Engine engine) {
  query_.window.engine = engine;
  return *this;
}

QueryBuilder& QueryBuilder::PerKey(bool on) {
  query_.handler = query_.handler.PerKey(on);
  query_.window.per_key_watermarks = on;
  return *this;
}

QueryBuilder& QueryBuilder::ValidateIngest(IngestValidation validation) {
  query_.validation = validation;
  return *this;
}

QueryBuilder& QueryBuilder::BufferCap(size_t max_buffered_events,
                                      ShedPolicy policy) {
  query_.handler = query_.handler.WithBufferCap(max_buffered_events, policy);
  return *this;
}

QueryBuilder& QueryBuilder::MaxSlack(DurationUs max_slack) {
  query_.handler = query_.handler.WithMaxSlack(max_slack);
  return *this;
}

ContinuousQuery QueryBuilder::Build() const {
  ContinuousQuery q = query_;
  if (quality_driven_ && !explicit_gamma_) {
    // Aggregate-aware default: translate the quality target through the
    // aggregate's error profile.
    q.handler.aq_quality_gamma = DefaultQualityGamma(q.window.aggregate.kind);
  }
  STREAMQ_CHECK_OK(q.Validate());
  return q;
}

}  // namespace streamq
