#include "core/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <string>
#include <thread>
#include <tuple>
#include <utility>

#include "common/arena.h"
#include "common/cpu_affinity.h"
#include "common/logging.h"
#include "common/time.h"
#include "core/adaptive_batch.h"
#include "core/mpsc_queue.h"
#include "core/queue_backoff.h"
#include "core/spsc_queue.h"
#include "stream/event.h"

namespace streamq {

namespace {

using EventBatch = EventArena::Batch;
using EventSlab = EventArena::Slab;

/// Run-scoped arena pools for everything crossing the queues: feed scratch,
/// shard sub-batches, and the batch nodes themselves. use_arena=false keeps
/// the same code path but disables pooling, so every batch is one heap
/// allocation freed by whichever thread drops it last — the reference
/// malloc path. Without numa_arena this is one pool (node 0); with it, one
/// independent pool per detected NUMA node, and each producer mints from
/// the node it runs on.
NumaArenaSet<Event> MakeRunArenas(const ParallelOptions& options) {
  EventArena::Options a;
  a.slab_capacity = options.batch_size;
  const bool pool = options.use_arena;
  a.max_free_slabs = pool ? 1024 : 0;
  a.max_free_batches = pool ? 1024 : 0;
  const int nodes =
      options.numa_arena ? NumaTopology::System().node_count() : 1;
  return NumaArenaSet<Event>(a, nodes);
}

/// NUMA node whose pool the calling (producer) thread should mint from.
/// Sampled once per thread, after any pinning, so a pinned producer's
/// choice is stable for the run.
int ProducerNode(const ParallelOptions& options) {
  return options.numa_arena ? NumaTopology::System().NodeOfCurrentThread()
                            : 0;
}

AdaptiveBatcher::Options BatcherOptions(const ParallelOptions& options) {
  AdaptiveBatcher::Options b;
  b.min_batch = options.min_batch;
  b.max_batch = options.max_batch;
  b.initial = options.batch_size;
  return b;
}

/// Mean worker-queue occupancy as a fraction of capacity — the adaptive
/// batch controller's depth input.
template <typename Queue>
double MeanDepthFraction(const std::vector<std::unique_ptr<Queue>>& queues) {
  double sum = 0.0;
  for (const auto& q : queues) {
    sum += static_cast<double>(q->size()) /
           static_cast<double>(q->capacity());
  }
  return queues.empty() ? 0.0 : sum / static_cast<double>(queues.size());
}

void MaybePin(const ParallelOptions& options, int core) {
  // Placement is a hint: a refused mask (cgroup cpuset, unsupported OS)
  // must never fail the run.
  if (options.pin_cores) (void)PinCurrentThreadToCore(core);
}

const char* DescribePin(const ParallelOptions& options) {
  if (!options.pin_cores) return "off";
  return CpuPinningSupported() ? "on" : "unsupported";
}

/// Driver-side delivery of one item with bounded patience. Fast path: one
/// lock-free TryPush. On a full ring: one backpressure-stall notification,
/// then deadline pushes with exponentially growing timeouts. Returns false
/// when the worker was abandoned — either it closed the queue itself
/// (failure; its own status explains why) or it stayed wedged past every
/// deadline, in which case `*fail_status` gets ResourceExhausted and the
/// queue is closed so the worker sees early end-of-stream.
template <typename Queue, typename Item>
bool FeedQueue(Queue* q, Item item, size_t worker,
               const ParallelOptions& options, PipelineObserver* observer,
               std::atomic<int64_t>* stall_counter, Status* fail_status) {
  if (q->TryPush(std::move(item))) return true;
  if (q->closed()) return false;
  stall_counter->fetch_add(1, std::memory_order_relaxed);
  if (observer != nullptr) observer->OnBackpressureStall(worker);
  DurationUs timeout = options.feed_timeout_us;
  for (int attempt = 0; attempt < options.feed_max_attempts; ++attempt) {
    // TryPushFor only consumes `item` on success, so retry keeps it.
    if (q->TryPushFor(std::move(item), timeout)) return true;
    if (q->closed()) return false;
    timeout *= 2;
  }
  *fail_status = Status::ResourceExhausted(
      "worker " + std::to_string(worker) +
      " stuck: queue full past feed timeout");
  q->Close();
  return false;
}

/// First abandoner records the driver status and drops the worker from the
/// feed set; with several producers the CAS makes exactly one of them win,
/// so `*driver_status` is written once, race-free.
void AbandonWorker(std::atomic<bool>* feeding_flag,
                   std::atomic<size_t>* feeding_count, Status* driver_status,
                   Status fail) {
  bool expected = true;
  if (feeding_flag->compare_exchange_strong(expected, false)) {
    if (!fail.ok()) *driver_status = std::move(fail);
    feeding_count->fetch_sub(1, std::memory_order_relaxed);
  }
}

/// End-of-stream sentinel (empty batch / kStop item), unless the worker is
/// already gone.
template <typename Queue>
void SendEos(Queue* q) {
  if (!q->closed()) q->Push({});
}

/// Report status priority: a worker fault explains more than the driver's
/// view of it, which explains more than the executor's own (strict
/// validation) status.
void ApplyRunStatus(RunReport* report, const Status& worker_status,
                    const Status& driver_status) {
  if (!worker_status.ok()) {
    report->status = worker_status;
  } else if (!driver_status.ok()) {
    report->status = driver_status;
  }
}

// --- Independent (multi-query) runner ------------------------------------

/// Worker loop: drain the queue into the executor, then flush. Exceptions
/// are contained on the worker thread — the queue is closed (so producers
/// stop feeding), drained (so a blocked producer gets room and the shared
/// batches are released), and the failure lands in `*status` for the
/// merged report instead of std::terminate.
template <typename Queue>
void RunWorker(QueryExecutor* exec, Queue* q, Status* status) {
  try {
    EventBatch batch;
    while (q->Pop(&batch)) {
      if (!batch) break;  // End-of-stream sentinel.
      exec->FeedBatch(*batch);
      batch.reset();
    }
    exec->Finish();
  } catch (const std::exception& ex) {
    *status = Status::Internal(std::string("worker failed: ") + ex.what());
  } catch (...) {
    *status = Status::Internal("worker failed: non-standard exception");
  }
  if (!status->ok()) {
    q->Close();
    EventBatch drain;
    while (q->TryPop(&drain)) drain.reset();
  }
}

template <typename Queue>
std::vector<RunReport> RunIndependent(const std::vector<ContinuousQuery>& queries,
                                      std::span<EventSource* const> sources,
                                      const ParallelOptions& options,
                                      PipelineObserver* observer) {
  const size_t n = queries.size();
  const size_t num_producers = sources.size();

  std::vector<std::unique_ptr<QueryExecutor>> executors;
  std::vector<std::unique_ptr<Queue>> queues;
  executors.reserve(n);
  queues.reserve(n);
  for (const ContinuousQuery& q : queries) {
    executors.push_back(std::make_unique<QueryExecutor>(q));
    if (observer != nullptr) executors.back()->SetObserver(observer);
    queues.push_back(std::make_unique<Queue>(options.queue_capacity));
  }

  NumaArenaSet<Event> arenas = MakeRunArenas(options);
  const TimestampUs start = WallClockMicros();

  std::vector<Status> worker_status(n);
  std::vector<Status> driver_status(n);
  auto feeding = std::make_unique<std::atomic<bool>[]>(n);
  auto stalls = std::make_unique<std::atomic<int64_t>[]>(n);
  for (size_t i = 0; i < n; ++i) {
    feeding[i].store(true, std::memory_order_relaxed);
    stalls[i].store(0, std::memory_order_relaxed);
  }
  std::atomic<size_t> feeding_count{n};
  std::atomic<int64_t> events_pulled{0};
  std::atomic<size_t> final_batch{options.batch_size};

  std::vector<std::thread> workers;
  workers.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers.emplace_back([&, i] {
      MaybePin(options, static_cast<int>(i));
      RunWorker(executors[i].get(), queues[i].get(), &worker_status[i]);
    });
  }

  // Producer: pull arrival-ordered batches and publish each to every worker
  // still accepting input. A failed or stuck worker is abandoned (see
  // FeedQueue), never waited on forever. The scratch slab swap-cycles with
  // the arena's batch nodes, so the steady state allocates nothing.
  auto produce = [&](EventSource* source, size_t producer) {
    MaybePin(options, static_cast<int>(n + producer));
    // Shared handle onto this producer's node-local pools.
    EventArena local = arenas.ForNode(ProducerNode(options));
    AdaptiveBatcher batcher(BatcherOptions(options));
    size_t feed_batch = options.batch_size;
    EventSlab chunk = local.Acquire();
    while (feeding_count.load(std::memory_order_relaxed) > 0 &&
           source->NextBatch(&chunk, feed_batch) > 0) {
      const TimestampUs route_start =
          options.adaptive_batch ? WallClockMicros() : 0;
      const int64_t pulled = static_cast<int64_t>(chunk.size());
      events_pulled.fetch_add(pulled, std::memory_order_relaxed);
      if (observer != nullptr) observer->OnSourceBatch(pulled);
      EventBatch batch = local.Share(&chunk);
      for (size_t i = 0; i < n; ++i) {
        if (!feeding[i].load(std::memory_order_relaxed)) continue;
        EventBatch copy = batch;
        Status fail;
        if (!FeedQueue(queues[i].get(), std::move(copy), i, options, observer,
                       &stalls[i], &fail)) {
          AbandonWorker(&feeding[i], &feeding_count, &driver_status[i],
                        std::move(fail));
          continue;
        }
        if (observer != nullptr) observer->OnQueueDepth(i, queues[i]->size());
      }
      if (options.adaptive_batch &&
          batcher.Observe(MeanDepthFraction(queues),
                          static_cast<double>(WallClockMicros() -
                                              route_start))) {
        feed_batch = batcher.batch();
        if (observer != nullptr) {
          observer->OnBatchSizeAdapted(producer, feed_batch);
        }
      }
    }
    local.Recycle(std::move(chunk));
    final_batch.store(feed_batch, std::memory_order_relaxed);
  };

  if (num_producers == 1) {
    produce(sources[0], 0);  // Single source: drive from the caller thread.
  } else {
    std::vector<std::thread> producers;
    producers.reserve(num_producers);
    for (size_t p = 0; p < num_producers; ++p) {
      producers.emplace_back([&, p] { produce(sources[p], p); });
    }
    for (std::thread& t : producers) t.join();
  }

  for (auto& q : queues) SendEos(q.get());
  for (std::thread& t : workers) t.join();

  const double wall_seconds = ToSeconds(WallClockMicros() - start);
  if (observer != nullptr) {
    observer->OnRunCompleted(events_pulled.load(std::memory_order_relaxed),
                             wall_seconds);
  }

  char cfg[224];
  std::snprintf(cfg, sizeof(cfg),
                "workers=%zu producers=%zu feed=%s arena=%s pin=%s "
                "batch_final=%zu numa=%s",
                n, num_producers, num_producers > 1 ? "mpsc" : "spsc",
                options.use_arena ? "on" : "off", DescribePin(options),
                final_batch.load(std::memory_order_relaxed),
                options.numa_arena ? "on" : "off");

  std::vector<RunReport> reports;
  reports.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    RunReport r = executors[i]->Report();
    // Workers do not time themselves; charge the shared parallel wall time.
    r.wall_seconds = wall_seconds;
    r.throughput_eps =
        wall_seconds > 0.0
            ? static_cast<double>(r.events_processed) / wall_seconds
            : 0.0;
    r.runtime_config = cfg;
    ApplyRunStatus(&r, worker_status[i], driver_status[i]);
    reports.push_back(std::move(r));
  }
  return reports;
}

// --- Sharded keyed runner -------------------------------------------------

/// What crosses a keyed worker's queue. kBatch carries events for one
/// virtual shard; the markers drive the migration/termination protocol:
/// kRelease publishes "every batch this worker will ever see for this
/// shard has been fed" (the watermark-aligned migration safe point),
/// kFinish flushes one shard's executor, kStop ends the worker. A
/// default-constructed item is kStop, so SendEos works unchanged.
enum class FeedKind : uint8_t { kStop, kBatch, kRelease, kFinish };

struct FeedItem {
  EventBatch batch;
  uint32_t shard = 0;
  FeedKind kind = FeedKind::kStop;
  /// NUMA node the batch's slab storage was minted on (numa_arena runs);
  /// lets the receiving worker account local vs remote batches.
  uint8_t node = 0;
};

/// Per-worker scheduling context shared between a keyed worker and the
/// driver. `hungry` is the pull signal for work stealing: the worker raises
/// it when its queue runs dry, right before blocking, and clears it on the
/// next item — the driver reads it (relaxed; it is a heuristic, not a
/// synchronization edge) to pick steal beneficiaries. The NUMA fields are
/// written by the worker thread only and read by the driver after join.
struct ShardWorkerSched {
  std::atomic<uint32_t>* hungry = nullptr;
  bool count_nodes = false;
  int node = 0;
  int64_t local_batches = 0;
  int64_t remote_batches = 0;
  PipelineObserver* observer = nullptr;
  size_t worker = 0;
};

/// Keyed worker loop. `executors` is the full virtual-shard table (shared,
/// but a shard is only ever touched by its current owner: batches for it
/// arrive on exactly one queue at a time, and ownership moves only through
/// the kRelease handshake, which sequences old-owner writes
/// before new-owner reads). `owned` tracks which shards this worker is
/// currently responsible for, so an abandoned worker can still flush its
/// partial results like the legacy runner did.
template <typename Queue>
void RunShardWorker(Queue* q, QueryExecutor* const* executors,
                    size_t num_virtual, std::atomic<uint32_t>* released,
                    Status* status, std::atomic<int64_t>* processed,
                    std::atomic<bool>* exited, ShardWorkerSched* sched) {
  std::vector<uint8_t> owned(num_virtual, 0);
  try {
    FeedItem item;
    bool stop = false;
    while (!stop) {
      if (!q->TryPop(&item)) {
        // Queue dry: advertise hunger so a stealing driver can route a
        // backlogged shard here, then block for the next item.
        sched->hungry->store(1, std::memory_order_relaxed);
        const bool got = q->Pop(&item);
        sched->hungry->store(0, std::memory_order_relaxed);
        if (!got) break;
      }
      switch (item.kind) {
        case FeedKind::kBatch:
          owned[item.shard] = 1;
          executors[item.shard]->FeedBatch(*item.batch);
          processed->fetch_add(static_cast<int64_t>(item.batch->size()),
                               std::memory_order_relaxed);
          if (sched->count_nodes) {
            const bool local =
                item.node == static_cast<uint8_t>(sched->node);
            (local ? sched->local_batches : sched->remote_batches) += 1;
            if (sched->observer != nullptr) {
              sched->observer->OnArenaNodeRelease(sched->worker, local);
            }
          }
          item.batch.reset();
          break;
        case FeedKind::kRelease:
          // Everything before this marker in the queue has been fed;
          // publish the handoff (release pairs with the driver's acquire).
          owned[item.shard] = 0;
          released[item.shard].store(1, std::memory_order_release);
          break;
        case FeedKind::kFinish:
          owned[item.shard] = 0;
          executors[item.shard]->Finish();
          break;
        case FeedKind::kStop:
          stop = true;
          break;
      }
    }
    // A clean kStop arrives after kFinish markers cleared every owned
    // shard, making this a no-op. An abandoned worker (queue closed by the
    // driver) lands here after processing its backlog: finish what it
    // still owns so the partial results surface, as the legacy runner did.
    for (size_t v = 0; v < num_virtual; ++v) {
      if (owned[v] != 0) executors[v]->Finish();
    }
  } catch (const std::exception& ex) {
    *status = Status::Internal(std::string("worker failed: ") + ex.what());
  } catch (...) {
    *status = Status::Internal("worker failed: non-standard exception");
  }
  if (!status->ok()) {
    q->Close();
    FeedItem drain;
    while (q->TryPop(&drain)) {
      // Honor handoff markers even in the failure drain: this worker will
      // never touch the shard again, and the driver may be waiting.
      if (drain.kind == FeedKind::kRelease) {
        released[drain.shard].store(1, std::memory_order_release);
      }
      drain.batch.reset();
    }
  }
  exited->store(true, std::memory_order_release);
}

struct KeyedOutcome {
  RunReport merged;
  std::vector<WorkerLoad> loads;
  int64_t migrations = 0;
  int64_t steals = 0;
  size_t final_batch = 0;
};

template <typename Queue>
KeyedOutcome RunSharded(const ContinuousQuery& query, size_t num_workers,
                        std::span<EventSource* const> sources,
                        const ParallelOptions& options,
                        PipelineObserver* observer) {
  const size_t W = num_workers;
  const size_t V =
      options.virtual_shards == 0 ? W : options.virtual_shards;
  STREAMQ_CHECK_GE(V, W) << "virtual_shards must cover every worker";
  const size_t num_producers = sources.size();

  std::vector<std::unique_ptr<QueryExecutor>> executors;
  executors.reserve(V);
  std::vector<QueryExecutor*> exec_ptrs(V);
  for (size_t v = 0; v < V; ++v) {
    executors.push_back(std::make_unique<QueryExecutor>(query));
    if (observer != nullptr) executors.back()->SetObserver(observer);
    exec_ptrs[v] = executors.back().get();
  }
  std::vector<std::unique_ptr<Queue>> queues;
  queues.reserve(W);
  for (size_t w = 0; w < W; ++w) {
    queues.push_back(std::make_unique<Queue>(options.queue_capacity));
  }

  auto released = std::make_unique<std::atomic<uint32_t>[]>(V);
  for (size_t v = 0; v < V; ++v) released[v].store(0, std::memory_order_relaxed);
  auto feeding = std::make_unique<std::atomic<bool>[]>(W);
  auto exited = std::make_unique<std::atomic<bool>[]>(W);
  auto processed = std::make_unique<std::atomic<int64_t>[]>(W);
  auto routed_events = std::make_unique<std::atomic<int64_t>[]>(W);
  auto routed_batches = std::make_unique<std::atomic<int64_t>[]>(W);
  auto stalls = std::make_unique<std::atomic<int64_t>[]>(W);
  for (size_t w = 0; w < W; ++w) {
    feeding[w].store(true, std::memory_order_relaxed);
    exited[w].store(false, std::memory_order_relaxed);
    processed[w].store(0, std::memory_order_relaxed);
    routed_events[w].store(0, std::memory_order_relaxed);
    routed_batches[w].store(0, std::memory_order_relaxed);
    stalls[w].store(0, std::memory_order_relaxed);
  }
  std::atomic<size_t> feeding_count{W};
  std::vector<Status> worker_status(W);
  std::vector<Status> driver_status(W);

  /// shard -> worker. Starts round-robin (identity when V == W, matching
  /// the legacy static routing bit for bit); the rebalancer is the only
  /// writer, and only in the single-producer path.
  std::vector<uint32_t> placement(V);
  for (size_t v = 0; v < V; ++v) placement[v] = static_cast<uint32_t>(v % W);

  auto hungry = std::make_unique<std::atomic<uint32_t>[]>(W);
  for (size_t w = 0; w < W; ++w) hungry[w].store(0, std::memory_order_relaxed);
  std::vector<ShardWorkerSched> sched(W);
  for (size_t w = 0; w < W; ++w) {
    sched[w].hungry = &hungry[w];
    sched[w].count_nodes = options.numa_arena;
    sched[w].observer = observer;
    sched[w].worker = w;
  }

  NumaArenaSet<Event> arenas = MakeRunArenas(options);
  const TimestampUs start = WallClockMicros();

  std::vector<std::thread> workers;
  workers.reserve(W);
  for (size_t w = 0; w < W; ++w) {
    workers.emplace_back([&, w] {
      MaybePin(options, static_cast<int>(w));
      sched[w].node = options.numa_arena
                          ? NumaTopology::System().NodeOfCurrentThread()
                          : 0;
      RunShardWorker(queues[w].get(), exec_ptrs.data(), V, released.get(),
                     &worker_status[w], &processed[w], &exited[w], &sched[w]);
    });
  }

  int64_t migrations = 0;
  int64_t steals = 0;
  std::vector<int64_t> stolen_by(W, 0);
  std::vector<int64_t> donated_by(W, 0);
  std::atomic<size_t> final_batch{options.batch_size};

  if (num_producers == 1) {
    // --- Single-producer drive; rebalancing and stealing live here -------
    EventSource* source = sources[0];
    const int driver_node = ProducerNode(options);
    EventArena arena = arenas.ForNode(driver_node);
    std::vector<EventSlab> shard_slabs(V);
    std::vector<uint32_t> touched;
    touched.reserve(std::min<size_t>(V, 256));
    // Per-shard decayed load (rebalance decisions) and the raw counts
    // accumulated since the last check. Both derive only from routed
    // events, so decisions — hence placements and output — are a pure
    // function of the source stream.
    std::vector<double> shard_load(V, 0.0);
    std::vector<int64_t> shard_recent(V, 0);
    std::vector<double> worker_load(W, 0.0);

    bool migrating = false;
    uint32_t mig_shard = 0;
    uint32_t mig_from = 0;
    uint32_t mig_to = 0;
    std::vector<EventBatch> mig_pending;
    int64_t batch_counter = 0;

    auto deliver = [&](uint32_t v, EventBatch batch) {
      const size_t w = placement[v];
      if (!feeding[w].load(std::memory_order_relaxed)) return;  // Degraded.
      const int64_t count = static_cast<int64_t>(batch->size());
      FeedItem item;
      item.batch = std::move(batch);
      item.shard = v;
      item.kind = FeedKind::kBatch;
      item.node = static_cast<uint8_t>(driver_node);
      Status fail;
      if (!FeedQueue(queues[w].get(), std::move(item), w, options, observer,
                     &stalls[w], &fail)) {
        AbandonWorker(&feeding[w], &feeding_count, &driver_status[w],
                      std::move(fail));
        return;
      }
      routed_events[w].fetch_add(count, std::memory_order_relaxed);
      routed_batches[w].fetch_add(1, std::memory_order_relaxed);
      if (observer != nullptr) {
        observer->OnShardBatch(w, count);
        observer->OnQueueDepth(w, queues[w]->size());
      }
    };

    // The old owner acknowledged the handoff (or died): flush the batches
    // buffered while the shard was in flight to its new worker, in routed
    // order. placement[mig_shard] already points at the target.
    auto complete_migration = [&] {
      for (EventBatch& b : mig_pending) deliver(mig_shard, std::move(b));
      mig_pending.clear();
      migrating = false;
    };

    // Shared safe-point handoff: re-arm the release flag *before* the
    // marker is visible, then hand the in-band kRelease marker to the
    // current owner. From the marker on, batches for the shard are
    // buffered (mig_pending) until the owner acknowledges. Both the
    // periodic rebalancer and demand-driven stealing start transfers
    // through this one path, so at most one handoff is in flight.
    auto start_handoff = [&](uint32_t shard, size_t from, size_t to) -> bool {
      released[shard].store(0, std::memory_order_relaxed);
      FeedItem marker;
      marker.shard = shard;
      marker.kind = FeedKind::kRelease;
      Status fail;
      if (!FeedQueue(queues[from].get(), std::move(marker), from, options,
                     observer, &stalls[from], &fail)) {
        AbandonWorker(&feeding[from], &feeding_count, &driver_status[from],
                      std::move(fail));
        return false;
      }
      migrating = true;
      mig_shard = shard;
      mig_from = static_cast<uint32_t>(from);
      mig_to = static_cast<uint32_t>(to);
      placement[shard] = mig_to;
      return true;
    };

    auto maybe_start_migration = [&] {
      for (size_t v = 0; v < V; ++v) {
        shard_load[v] = shard_load[v] * options.rebalance_decay +
                        static_cast<double>(shard_recent[v]);
        shard_recent[v] = 0;
      }
      std::fill(worker_load.begin(), worker_load.end(), 0.0);
      for (size_t v = 0; v < V; ++v) worker_load[placement[v]] += shard_load[v];
      size_t wmax = 0;
      size_t wmin = 0;
      for (size_t w = 1; w < W; ++w) {
        if (worker_load[w] > worker_load[wmax]) wmax = w;
        if (worker_load[w] < worker_load[wmin]) wmin = w;
      }
      if (wmax == wmin) return;
      if (!feeding[wmax].load(std::memory_order_relaxed) ||
          !feeding[wmin].load(std::memory_order_relaxed)) {
        return;
      }
      if (worker_load[wmax] <=
          options.rebalance_threshold * worker_load[wmin]) {
        return;
      }
      // Move the largest shard that still fits in the gap, so the transfer
      // shrinks the imbalance instead of flipping it onto the target.
      const double gap = worker_load[wmax] - worker_load[wmin];
      int64_t best = -1;
      for (size_t v = 0; v < V; ++v) {
        if (placement[v] != wmax) continue;
        if (shard_load[v] <= 0.0 || shard_load[v] >= gap) continue;
        if (best < 0 || shard_load[v] > shard_load[static_cast<size_t>(best)]) {
          best = static_cast<int64_t>(v);
        }
      }
      if (best < 0) return;
      if (start_handoff(static_cast<uint32_t>(best), wmax, wmin)) {
        ++migrations;
      }
    };

    // Decayed per-shard load as the rebalancer would see it at the next
    // fold, computed without mutating the fold state: stealing must not
    // perturb the rebalancer's decision sequence.
    auto effective_load = [&](size_t v) {
      return shard_load[v] * options.rebalance_decay +
             static_cast<double>(shard_recent[v]);
    };

    // Demand-driven steal: a worker blocked on an empty queue (hungry)
    // pulls the hottest movable shard from the most-backlogged worker.
    // Triggers read worker progress (hunger flags, processed counters), so
    // *when* steals happen is timing-dependent; *what* they produce is not
    // — placement never affects the merged output (see class comment).
    auto maybe_steal = [&] {
      // Thief: a starving worker that is still fed and genuinely drained.
      size_t thief = W;
      for (size_t w = 0; w < W; ++w) {
        if (hungry[w].load(std::memory_order_relaxed) != 0 &&
            feeding[w].load(std::memory_order_relaxed) &&
            queues[w]->empty()) {
          thief = w;
          break;
        }
      }
      if (thief == W) return;
      // Victim: the most backlogged worker (routed minus processed) with
      // at least steal_min_backlog events pending and batches still
      // queued; a drained victim has nothing worth pulling.
      size_t victim = W;
      int64_t victim_backlog = options.steal_min_backlog - 1;
      for (size_t w = 0; w < W; ++w) {
        if (w == thief) continue;
        if (!feeding[w].load(std::memory_order_relaxed)) continue;
        if (queues[w]->empty()) continue;
        const int64_t backlog =
            routed_events[w].load(std::memory_order_relaxed) -
            processed[w].load(std::memory_order_relaxed);
        if (backlog > victim_backlog) {
          victim = w;
          victim_backlog = backlog;
        }
      }
      if (victim == W) return;
      // Segment: the hottest shard on the victim that moves at most half
      // its load. Taking more would flip the imbalance onto the thief and
      // bounce the shard straight back (and with one shard holding all
      // the heat, there is nothing stealable — correct: moving it only
      // relabels the bottleneck).
      double victim_total = 0.0;
      for (size_t v = 0; v < V; ++v) {
        if (placement[v] == victim) victim_total += effective_load(v);
      }
      int64_t best = -1;
      double best_load = 0.0;
      for (size_t v = 0; v < V; ++v) {
        if (placement[v] != victim) continue;
        const double load = effective_load(v);
        if (load <= 0.0 || load > 0.5 * victim_total) continue;
        if (best < 0 || load > best_load) {
          best = static_cast<int64_t>(v);
          best_load = load;
        }
      }
      if (best < 0) return;
      if (start_handoff(static_cast<uint32_t>(best), victim, thief)) {
        ++steals;
        ++stolen_by[thief];
        ++donated_by[victim];
        if (observer != nullptr) {
          observer->OnSegmentSteal(victim, thief,
                                   static_cast<size_t>(best));
        }
      }
    };

    AdaptiveBatcher batcher(BatcherOptions(options));
    size_t feed_batch = options.batch_size;
    EventSlab chunk = arena.Acquire();
    while (feeding_count.load(std::memory_order_relaxed) > 0 &&
           source->NextBatch(&chunk, feed_batch) > 0) {
      const TimestampUs route_start =
          options.adaptive_batch ? WallClockMicros() : 0;
      if (observer != nullptr) {
        observer->OnSourceBatch(static_cast<int64_t>(chunk.size()));
      }
      for (const Event& e : chunk) {
        const auto v = static_cast<uint32_t>(
            ShardedKeyedRunner::ShardOf(e.key, V));
        EventSlab& slab = shard_slabs[v];
        if (slab.empty()) touched.push_back(v);
        slab.push_back(e);
        ++shard_recent[v];
      }
      chunk.clear();
      for (const uint32_t v : touched) {
        if (migrating && v == mig_shard) {
          // In flight between workers: buffer until the old owner
          // acknowledges the release marker.
          mig_pending.push_back(arena.Share(&shard_slabs[v]));
          continue;
        }
        deliver(v, arena.Share(&shard_slabs[v]));
      }
      touched.clear();
      ++batch_counter;
      if (options.adaptive_batch &&
          batcher.Observe(MeanDepthFraction(queues),
                          static_cast<double>(WallClockMicros() -
                                              route_start))) {
        feed_batch = batcher.batch();
        if (observer != nullptr) observer->OnBatchSizeAdapted(0, feed_batch);
      }
      if (migrating &&
          released[mig_shard].load(std::memory_order_acquire) != 0) {
        complete_migration();
      }
      if (options.steal && !migrating) maybe_steal();
      if (options.rebalance &&
          batch_counter % options.rebalance_interval_batches == 0) {
        // A decision point must not depend on how fast the old owner
        // drains: if the handoff is still in flight, wait for the
        // acknowledgement (or the owner's death) before deciding, so the
        // decision sequence — hence migration count and placements — stays
        // a pure function of the routed stream. The wait is bounded: the
        // marker is already in the old owner's queue.
        if (migrating) {
          BackoffUntil([&] {
            return released[mig_shard].load(std::memory_order_acquire) != 0 ||
                   exited[mig_from].load(std::memory_order_acquire);
          });
          complete_migration();
        }
        maybe_start_migration();
      }
    }
    arena.Recycle(std::move(chunk));
    for (EventSlab& slab : shard_slabs) {
      if (slab.capacity() > 0) arena.Recycle(std::move(slab));
    }
    final_batch.store(feed_batch, std::memory_order_relaxed);

    // Settle an in-flight migration before the terminal flush: wait for
    // the old owner's acknowledgement (or its exit — a dead owner can
    // never touch the shard again, which is just as safe).
    if (migrating) {
      BackoffUntil([&] {
        return released[mig_shard].load(std::memory_order_acquire) != 0 ||
               exited[mig_from].load(std::memory_order_acquire);
      });
      complete_migration();
    }
  } else {
    // --- Multi-producer drive: static placement over MPSC queues ---------
    STREAMQ_CHECK(!options.rebalance)
        << "rebalance requires a single-source run";
    STREAMQ_CHECK(!options.steal) << "steal requires a single-source run";
    std::vector<std::thread> producers;
    producers.reserve(num_producers);
    for (size_t p = 0; p < num_producers; ++p) {
      producers.emplace_back([&, p] {
        MaybePin(options, static_cast<int>(W + p));
        const int node = ProducerNode(options);
        EventArena local = arenas.ForNode(node);
        EventSource* source = sources[p];
        std::vector<EventSlab> shard_slabs(V);
        std::vector<uint32_t> touched;
        touched.reserve(std::min<size_t>(V, 256));
        AdaptiveBatcher batcher(BatcherOptions(options));
        size_t feed_batch = options.batch_size;
        EventSlab chunk = local.Acquire();
        while (feeding_count.load(std::memory_order_relaxed) > 0 &&
               source->NextBatch(&chunk, feed_batch) > 0) {
          const TimestampUs route_start =
              options.adaptive_batch ? WallClockMicros() : 0;
          if (observer != nullptr) {
            observer->OnSourceBatch(static_cast<int64_t>(chunk.size()));
          }
          for (const Event& e : chunk) {
            const auto v = static_cast<uint32_t>(
                ShardedKeyedRunner::ShardOf(e.key, V));
            EventSlab& slab = shard_slabs[v];
            if (slab.empty()) touched.push_back(v);
            slab.push_back(e);
          }
          chunk.clear();
          for (const uint32_t v : touched) {
            const size_t w = placement[v];  // Static; never written here.
            if (!feeding[w].load(std::memory_order_relaxed)) {
              shard_slabs[v].clear();
              continue;
            }
            const int64_t count =
                static_cast<int64_t>(shard_slabs[v].size());
            FeedItem item;
            item.batch = local.Share(&shard_slabs[v]);
            item.shard = v;
            item.kind = FeedKind::kBatch;
            item.node = static_cast<uint8_t>(node);
            Status fail;
            if (!FeedQueue(queues[w].get(), std::move(item), w, options,
                           observer, &stalls[w], &fail)) {
              AbandonWorker(&feeding[w], &feeding_count, &driver_status[w],
                            std::move(fail));
              continue;
            }
            routed_events[w].fetch_add(count, std::memory_order_relaxed);
            routed_batches[w].fetch_add(1, std::memory_order_relaxed);
            if (observer != nullptr) {
              observer->OnShardBatch(w, count);
              observer->OnQueueDepth(w, queues[w]->size());
            }
          }
          touched.clear();
          if (options.adaptive_batch &&
              batcher.Observe(MeanDepthFraction(queues),
                              static_cast<double>(WallClockMicros() -
                                                  route_start))) {
            feed_batch = batcher.batch();
            if (observer != nullptr) {
              observer->OnBatchSizeAdapted(p, feed_batch);
            }
          }
        }
        local.Recycle(std::move(chunk));
        for (EventSlab& slab : shard_slabs) {
          if (slab.capacity() > 0) local.Recycle(std::move(slab));
        }
        final_batch.store(feed_batch, std::memory_order_relaxed);
      });
    }
    for (std::thread& t : producers) t.join();
  }

  // Terminal flush: every shard gets a kFinish on its current owner's
  // queue (owners flush in parallel), then the stop sentinels.
  for (size_t v = 0; v < V; ++v) {
    const size_t w = placement[v];
    if (!feeding[w].load(std::memory_order_relaxed)) continue;
    FeedItem fin;
    fin.shard = static_cast<uint32_t>(v);
    fin.kind = FeedKind::kFinish;
    Status fail;
    if (!FeedQueue(queues[w].get(), std::move(fin), w, options, observer,
                   &stalls[w], &fail)) {
      AbandonWorker(&feeding[w], &feeding_count, &driver_status[w],
                    std::move(fail));
    }
  }
  for (auto& q : queues) SendEos(q.get());
  for (std::thread& t : workers) t.join();

  const double wall_seconds = ToSeconds(WallClockMicros() - start);

  char cfg[320];
  std::snprintf(
      cfg, sizeof(cfg),
      "workers=%zu vshards=%zu producers=%zu feed=%s arena=%s pin=%s "
      "rebalance=%s migrations=%lld steal=%s steals=%lld "
      "batch_final=%zu numa=%s nodes=%d",
      W, V, num_producers, num_producers > 1 ? "mpsc" : "spsc",
      options.use_arena ? "on" : "off", DescribePin(options),
      options.rebalance ? "on" : "off", static_cast<long long>(migrations),
      options.steal ? "on" : "off", static_cast<long long>(steals),
      final_batch.load(std::memory_order_relaxed),
      options.numa_arena ? "on" : "off",
      options.numa_arena ? NumaTopology::System().node_count() : 1);

  // Merge shard reports into one.
  KeyedOutcome out;
  out.migrations = migrations;
  out.steals = steals;
  out.final_batch = final_batch.load(std::memory_order_relaxed);
  RunReport& merged = out.merged;
  merged.query_name = query.name;
  merged.wall_seconds = wall_seconds;
  merged.runtime_config = cfg;
  for (size_t v = 0; v < V; ++v) {
    RunReport r = executors[v]->Report();
    const size_t w = placement[v];
    ApplyRunStatus(&r, worker_status[w], driver_status[w]);
    if (merged.status.ok() && !r.status.ok()) merged.status = r.status;
    merged.events_processed += r.events_processed;
    merged.events_rejected += r.events_rejected;
    merged.handler_stats.events_in += r.handler_stats.events_in;
    merged.handler_stats.events_out += r.handler_stats.events_out;
    merged.handler_stats.events_late += r.handler_stats.events_late;
    merged.handler_stats.events_dropped += r.handler_stats.events_dropped;
    merged.handler_stats.events_shed += r.handler_stats.events_shed;
    merged.handler_stats.events_force_released +=
        r.handler_stats.events_force_released;
    // Shards buffer concurrently; the sum bounds aggregate memory.
    merged.handler_stats.max_buffer_size += r.handler_stats.max_buffer_size;
    merged.handler_stats.buffering_latency_us.Merge(
        r.handler_stats.buffering_latency_us);
    merged.handler_stats.latency_samples.insert(
        merged.handler_stats.latency_samples.end(),
        r.handler_stats.latency_samples.begin(),
        r.handler_stats.latency_samples.end());
    merged.window_stats.events += r.window_stats.events;
    merged.window_stats.late_applied += r.window_stats.late_applied;
    merged.window_stats.late_dropped += r.window_stats.late_dropped;
    merged.window_stats.windows_fired += r.window_stats.windows_fired;
    merged.window_stats.revisions += r.window_stats.revisions;
    merged.results_amended += r.results_amended;
    merged.window_stats.max_live_windows += r.window_stats.max_live_windows;
    merged.final_slack = std::max(merged.final_slack, r.final_slack);
    merged.results.insert(merged.results.end(),
                          std::make_move_iterator(r.results.begin()),
                          std::make_move_iterator(r.results.end()));
  }
  merged.shard_migrations = migrations;
  merged.segments_stolen = steals;
  merged.throughput_eps =
      wall_seconds > 0.0
          ? static_cast<double>(merged.events_processed) / wall_seconds
          : 0.0;
  std::stable_sort(merged.results.begin(), merged.results.end(),
                   [](const WindowResult& a, const WindowResult& b) {
                     return std::tie(a.bounds.start, a.key, a.revision_index) <
                            std::tie(b.bounds.start, b.key, b.revision_index);
                   });
  if (observer != nullptr) {
    observer->OnRunCompleted(merged.events_processed, wall_seconds);
  }

  out.loads.resize(W);
  for (size_t w = 0; w < W; ++w) {
    out.loads[w].events_routed =
        routed_events[w].load(std::memory_order_relaxed);
    out.loads[w].batches_routed =
        routed_batches[w].load(std::memory_order_relaxed);
    out.loads[w].events_processed =
        processed[w].load(std::memory_order_relaxed);
    out.loads[w].stalls = stalls[w].load(std::memory_order_relaxed);
    out.loads[w].segments_stolen = stolen_by[w];
    out.loads[w].segments_donated = donated_by[w];
    out.loads[w].node_local_batches = sched[w].local_batches;
    out.loads[w].node_remote_batches = sched[w].remote_batches;
  }
  return out;
}

}  // namespace

Status ParallelOptions::Validate() const {
  if (batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  if (queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be positive");
  }
  if (feed_timeout_us <= 0) {
    return Status::InvalidArgument("feed_timeout_us must be positive");
  }
  if (feed_max_attempts <= 0) {
    return Status::InvalidArgument("feed_max_attempts must be positive");
  }
  if (rebalance_interval_batches <= 0) {
    return Status::InvalidArgument(
        "rebalance_interval_batches must be positive (source batches "
        "between checks; did you mean 32?)");
  }
  if (rebalance_threshold < 1.0) {
    return Status::InvalidArgument(
        "rebalance_threshold is a max/min load ratio and must be >= 1.0 "
        "(did you mean 1.25?)");
  }
  if (rebalance_decay < 0.0 || rebalance_decay > 1.0) {
    return Status::InvalidArgument(
        "rebalance_decay must be in [0, 1] (per-check exponential decay; "
        "did you mean 0.5?)");
  }
  if (steal_min_backlog <= 0) {
    return Status::InvalidArgument(
        "steal_min_backlog must be positive (events behind before a steal; "
        "did you mean 1024?)");
  }
  if (min_batch == 0) {
    return Status::InvalidArgument("min_batch must be positive");
  }
  if (max_batch < min_batch) {
    return Status::InvalidArgument(
        "max_batch must be >= min_batch (the adaptive controller clamps "
        "to [min_batch, max_batch])");
  }
  if (adaptive_batch && (batch_size < min_batch || batch_size > max_batch)) {
    return Status::InvalidArgument(
        "batch_size is the adaptive controller's starting point and must "
        "lie within [min_batch, max_batch]");
  }
  return Status::OK();
}

void ParallelMultiQueryRunner::AddQuery(const ContinuousQuery& query) {
  STREAMQ_CHECK_OK(query.Validate());
  queries_.push_back(query);
}

std::vector<RunReport> ParallelMultiQueryRunner::Run(EventSource* source) {
  STREAMQ_CHECK(!queries_.empty()) << "no queries added";
  STREAMQ_CHECK_OK(options_.Validate());
  EventSource* one[1] = {source};
  return RunIndependent<SpscQueue<EventBatch>>(
      queries_, std::span<EventSource* const>(one, 1), options_, observer_);
}

std::vector<RunReport> ParallelMultiQueryRunner::RunMultiSource(
    std::span<EventSource* const> sources) {
  STREAMQ_CHECK(!queries_.empty()) << "no queries added";
  STREAMQ_CHECK(!sources.empty()) << "no sources";
  STREAMQ_CHECK_OK(options_.Validate());
  if (sources.size() == 1) {
    return RunIndependent<SpscQueue<EventBatch>>(queries_, sources, options_,
                                                 observer_);
  }
  return RunIndependent<MpscQueue<EventBatch>>(queries_, sources, options_,
                                               observer_);
}

ShardedKeyedRunner::ShardedKeyedRunner(const ContinuousQuery& query,
                                       size_t num_workers,
                                       ParallelOptions options)
    : query_(query), num_workers_(num_workers), options_(options) {
  STREAMQ_CHECK_GT(num_workers, 0u);
  STREAMQ_CHECK_OK(options_.Validate());
  STREAMQ_CHECK_OK(query.Validate());
  STREAMQ_CHECK(query.handler.per_key)
      << "ShardedKeyedRunner requires a per-key disorder handler";
  if (options_.virtual_shards != 0) {
    STREAMQ_CHECK_GE(options_.virtual_shards, num_workers)
        << "virtual_shards must cover every worker";
  }
  // Per-key watermarks make a window's first emission depend only on its
  // key's subsequence, which is what makes sharding result-preserving.
  query_.window.per_key_watermarks = true;
}

size_t ShardedKeyedRunner::ShardOf(int64_t key, size_t num_shards) {
  // splitmix64 finalizer.
  uint64_t x = static_cast<uint64_t>(key);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<size_t>(x % num_shards);
}

RunReport ShardedKeyedRunner::Run(EventSource* source) {
  EventSource* one[1] = {source};
  KeyedOutcome out = RunSharded<SpscQueue<FeedItem>>(
      query_, num_workers_, std::span<EventSource* const>(one, 1), options_,
      observer_);
  loads_ = std::move(out.loads);
  migrations_ = out.migrations;
  steals_ = out.steals;
  final_batch_ = out.final_batch;
  return std::move(out.merged);
}

RunReport ShardedKeyedRunner::RunMultiSource(
    std::span<EventSource* const> sources) {
  STREAMQ_CHECK(!sources.empty()) << "no sources";
  STREAMQ_CHECK(!options_.rebalance || sources.size() == 1)
      << "rebalance requires a single-source run";
  STREAMQ_CHECK(!options_.steal || sources.size() == 1)
      << "steal requires a single-source run";
  KeyedOutcome out =
      sources.size() == 1
          ? RunSharded<SpscQueue<FeedItem>>(query_, num_workers_, sources,
                                            options_, observer_)
          : RunSharded<MpscQueue<FeedItem>>(query_, num_workers_, sources,
                                            options_, observer_);
  loads_ = std::move(out.loads);
  migrations_ = out.migrations;
  steals_ = out.steals;
  final_batch_ = out.final_batch;
  return std::move(out.merged);
}

}  // namespace streamq
