#include "core/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <string>
#include <thread>
#include <tuple>
#include <utility>

#include "common/arena.h"
#include "common/cpu_affinity.h"
#include "common/logging.h"
#include "common/time.h"
#include "core/mpsc_queue.h"
#include "core/queue_backoff.h"
#include "core/spsc_queue.h"
#include "stream/event.h"

namespace streamq {

namespace {

using EventBatch = EventArena::Batch;
using EventSlab = EventArena::Slab;

/// One run-scoped arena for everything crossing the queues: feed scratch,
/// shard sub-batches, and the batch nodes themselves. use_arena=false keeps
/// the same code path but disables pooling, so every batch is one heap
/// allocation freed by whichever thread drops it last — the reference
/// malloc path.
EventArena MakeRunArena(const ParallelOptions& options) {
  EventArena::Options a;
  a.slab_capacity = options.batch_size;
  const bool pool = options.use_arena;
  a.max_free_slabs = pool ? 1024 : 0;
  a.max_free_batches = pool ? 1024 : 0;
  return EventArena(a);
}

void MaybePin(const ParallelOptions& options, int core) {
  // Placement is a hint: a refused mask (cgroup cpuset, unsupported OS)
  // must never fail the run.
  if (options.pin_cores) (void)PinCurrentThreadToCore(core);
}

const char* DescribePin(const ParallelOptions& options) {
  if (!options.pin_cores) return "off";
  return CpuPinningSupported() ? "on" : "unsupported";
}

/// Driver-side delivery of one item with bounded patience. Fast path: one
/// lock-free TryPush. On a full ring: one backpressure-stall notification,
/// then deadline pushes with exponentially growing timeouts. Returns false
/// when the worker was abandoned — either it closed the queue itself
/// (failure; its own status explains why) or it stayed wedged past every
/// deadline, in which case `*fail_status` gets ResourceExhausted and the
/// queue is closed so the worker sees early end-of-stream.
template <typename Queue, typename Item>
bool FeedQueue(Queue* q, Item item, size_t worker,
               const ParallelOptions& options, PipelineObserver* observer,
               std::atomic<int64_t>* stall_counter, Status* fail_status) {
  if (q->TryPush(std::move(item))) return true;
  if (q->closed()) return false;
  stall_counter->fetch_add(1, std::memory_order_relaxed);
  if (observer != nullptr) observer->OnBackpressureStall(worker);
  DurationUs timeout = options.feed_timeout_us;
  for (int attempt = 0; attempt < options.feed_max_attempts; ++attempt) {
    // TryPushFor only consumes `item` on success, so retry keeps it.
    if (q->TryPushFor(std::move(item), timeout)) return true;
    if (q->closed()) return false;
    timeout *= 2;
  }
  *fail_status = Status::ResourceExhausted(
      "worker " + std::to_string(worker) +
      " stuck: queue full past feed timeout");
  q->Close();
  return false;
}

/// First abandoner records the driver status and drops the worker from the
/// feed set; with several producers the CAS makes exactly one of them win,
/// so `*driver_status` is written once, race-free.
void AbandonWorker(std::atomic<bool>* feeding_flag,
                   std::atomic<size_t>* feeding_count, Status* driver_status,
                   Status fail) {
  bool expected = true;
  if (feeding_flag->compare_exchange_strong(expected, false)) {
    if (!fail.ok()) *driver_status = std::move(fail);
    feeding_count->fetch_sub(1, std::memory_order_relaxed);
  }
}

/// End-of-stream sentinel (empty batch / kStop item), unless the worker is
/// already gone.
template <typename Queue>
void SendEos(Queue* q) {
  if (!q->closed()) q->Push({});
}

/// Report status priority: a worker fault explains more than the driver's
/// view of it, which explains more than the executor's own (strict
/// validation) status.
void ApplyRunStatus(RunReport* report, const Status& worker_status,
                    const Status& driver_status) {
  if (!worker_status.ok()) {
    report->status = worker_status;
  } else if (!driver_status.ok()) {
    report->status = driver_status;
  }
}

// --- Independent (multi-query) runner ------------------------------------

/// Worker loop: drain the queue into the executor, then flush. Exceptions
/// are contained on the worker thread — the queue is closed (so producers
/// stop feeding), drained (so a blocked producer gets room and the shared
/// batches are released), and the failure lands in `*status` for the
/// merged report instead of std::terminate.
template <typename Queue>
void RunWorker(QueryExecutor* exec, Queue* q, Status* status) {
  try {
    EventBatch batch;
    while (q->Pop(&batch)) {
      if (!batch) break;  // End-of-stream sentinel.
      exec->FeedBatch(*batch);
      batch.reset();
    }
    exec->Finish();
  } catch (const std::exception& ex) {
    *status = Status::Internal(std::string("worker failed: ") + ex.what());
  } catch (...) {
    *status = Status::Internal("worker failed: non-standard exception");
  }
  if (!status->ok()) {
    q->Close();
    EventBatch drain;
    while (q->TryPop(&drain)) drain.reset();
  }
}

template <typename Queue>
std::vector<RunReport> RunIndependent(const std::vector<ContinuousQuery>& queries,
                                      std::span<EventSource* const> sources,
                                      const ParallelOptions& options,
                                      PipelineObserver* observer) {
  const size_t n = queries.size();
  const size_t num_producers = sources.size();

  std::vector<std::unique_ptr<QueryExecutor>> executors;
  std::vector<std::unique_ptr<Queue>> queues;
  executors.reserve(n);
  queues.reserve(n);
  for (const ContinuousQuery& q : queries) {
    executors.push_back(std::make_unique<QueryExecutor>(q));
    if (observer != nullptr) executors.back()->SetObserver(observer);
    queues.push_back(std::make_unique<Queue>(options.queue_capacity));
  }

  EventArena arena = MakeRunArena(options);
  const TimestampUs start = WallClockMicros();

  std::vector<Status> worker_status(n);
  std::vector<Status> driver_status(n);
  auto feeding = std::make_unique<std::atomic<bool>[]>(n);
  auto stalls = std::make_unique<std::atomic<int64_t>[]>(n);
  for (size_t i = 0; i < n; ++i) {
    feeding[i].store(true, std::memory_order_relaxed);
    stalls[i].store(0, std::memory_order_relaxed);
  }
  std::atomic<size_t> feeding_count{n};
  std::atomic<int64_t> events_pulled{0};

  std::vector<std::thread> workers;
  workers.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers.emplace_back([&, i] {
      MaybePin(options, static_cast<int>(i));
      RunWorker(executors[i].get(), queues[i].get(), &worker_status[i]);
    });
  }

  // Producer: pull arrival-ordered batches and publish each to every worker
  // still accepting input. A failed or stuck worker is abandoned (see
  // FeedQueue), never waited on forever. The scratch slab swap-cycles with
  // the arena's batch nodes, so the steady state allocates nothing.
  auto produce = [&](EventSource* source, size_t producer) {
    MaybePin(options, static_cast<int>(n + producer));
    EventArena local = arena;  // Shared handle onto the same pools.
    EventSlab chunk = local.Acquire();
    while (feeding_count.load(std::memory_order_relaxed) > 0 &&
           source->NextBatch(&chunk, options.batch_size) > 0) {
      const int64_t pulled = static_cast<int64_t>(chunk.size());
      events_pulled.fetch_add(pulled, std::memory_order_relaxed);
      if (observer != nullptr) observer->OnSourceBatch(pulled);
      EventBatch batch = local.Share(&chunk);
      for (size_t i = 0; i < n; ++i) {
        if (!feeding[i].load(std::memory_order_relaxed)) continue;
        EventBatch copy = batch;
        Status fail;
        if (!FeedQueue(queues[i].get(), std::move(copy), i, options, observer,
                       &stalls[i], &fail)) {
          AbandonWorker(&feeding[i], &feeding_count, &driver_status[i],
                        std::move(fail));
          continue;
        }
        if (observer != nullptr) observer->OnQueueDepth(i, queues[i]->size());
      }
    }
    local.Recycle(std::move(chunk));
  };

  if (num_producers == 1) {
    produce(sources[0], 0);  // Single source: drive from the caller thread.
  } else {
    std::vector<std::thread> producers;
    producers.reserve(num_producers);
    for (size_t p = 0; p < num_producers; ++p) {
      producers.emplace_back([&, p] { produce(sources[p], p); });
    }
    for (std::thread& t : producers) t.join();
  }

  for (auto& q : queues) SendEos(q.get());
  for (std::thread& t : workers) t.join();

  const double wall_seconds = ToSeconds(WallClockMicros() - start);
  if (observer != nullptr) {
    observer->OnRunCompleted(events_pulled.load(std::memory_order_relaxed),
                             wall_seconds);
  }

  char cfg[160];
  std::snprintf(cfg, sizeof(cfg),
                "workers=%zu producers=%zu feed=%s arena=%s pin=%s", n,
                num_producers, num_producers > 1 ? "mpsc" : "spsc",
                options.use_arena ? "on" : "off", DescribePin(options));

  std::vector<RunReport> reports;
  reports.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    RunReport r = executors[i]->Report();
    // Workers do not time themselves; charge the shared parallel wall time.
    r.wall_seconds = wall_seconds;
    r.throughput_eps =
        wall_seconds > 0.0
            ? static_cast<double>(r.events_processed) / wall_seconds
            : 0.0;
    r.runtime_config = cfg;
    ApplyRunStatus(&r, worker_status[i], driver_status[i]);
    reports.push_back(std::move(r));
  }
  return reports;
}

// --- Sharded keyed runner -------------------------------------------------

/// What crosses a keyed worker's queue. kBatch carries events for one
/// virtual shard; the markers drive the migration/termination protocol:
/// kRelease publishes "every batch this worker will ever see for this
/// shard has been fed" (the watermark-aligned migration safe point),
/// kFinish flushes one shard's executor, kStop ends the worker. A
/// default-constructed item is kStop, so SendEos works unchanged.
enum class FeedKind : uint8_t { kStop, kBatch, kRelease, kFinish };

struct FeedItem {
  EventBatch batch;
  uint32_t shard = 0;
  FeedKind kind = FeedKind::kStop;
};

/// Keyed worker loop. `executors` is the full virtual-shard table (shared,
/// but a shard is only ever touched by its current owner: batches for it
/// arrive on exactly one queue at a time, and ownership moves only through
/// the kRelease handshake, which sequences old-owner writes
/// before new-owner reads). `owned` tracks which shards this worker is
/// currently responsible for, so an abandoned worker can still flush its
/// partial results like the legacy runner did.
template <typename Queue>
void RunShardWorker(Queue* q, QueryExecutor* const* executors,
                    size_t num_virtual, std::atomic<uint32_t>* released,
                    Status* status, std::atomic<int64_t>* processed,
                    std::atomic<bool>* exited) {
  std::vector<uint8_t> owned(num_virtual, 0);
  try {
    FeedItem item;
    bool stop = false;
    while (!stop && q->Pop(&item)) {
      switch (item.kind) {
        case FeedKind::kBatch:
          owned[item.shard] = 1;
          executors[item.shard]->FeedBatch(*item.batch);
          processed->fetch_add(static_cast<int64_t>(item.batch->size()),
                               std::memory_order_relaxed);
          item.batch.reset();
          break;
        case FeedKind::kRelease:
          // Everything before this marker in the queue has been fed;
          // publish the handoff (release pairs with the driver's acquire).
          owned[item.shard] = 0;
          released[item.shard].store(1, std::memory_order_release);
          break;
        case FeedKind::kFinish:
          owned[item.shard] = 0;
          executors[item.shard]->Finish();
          break;
        case FeedKind::kStop:
          stop = true;
          break;
      }
    }
    // A clean kStop arrives after kFinish markers cleared every owned
    // shard, making this a no-op. An abandoned worker (queue closed by the
    // driver) lands here after processing its backlog: finish what it
    // still owns so the partial results surface, as the legacy runner did.
    for (size_t v = 0; v < num_virtual; ++v) {
      if (owned[v] != 0) executors[v]->Finish();
    }
  } catch (const std::exception& ex) {
    *status = Status::Internal(std::string("worker failed: ") + ex.what());
  } catch (...) {
    *status = Status::Internal("worker failed: non-standard exception");
  }
  if (!status->ok()) {
    q->Close();
    FeedItem drain;
    while (q->TryPop(&drain)) {
      // Honor handoff markers even in the failure drain: this worker will
      // never touch the shard again, and the driver may be waiting.
      if (drain.kind == FeedKind::kRelease) {
        released[drain.shard].store(1, std::memory_order_release);
      }
      drain.batch.reset();
    }
  }
  exited->store(true, std::memory_order_release);
}

struct KeyedOutcome {
  RunReport merged;
  std::vector<WorkerLoad> loads;
  int64_t migrations = 0;
};

template <typename Queue>
KeyedOutcome RunSharded(const ContinuousQuery& query, size_t num_workers,
                        std::span<EventSource* const> sources,
                        const ParallelOptions& options,
                        PipelineObserver* observer) {
  const size_t W = num_workers;
  const size_t V =
      options.virtual_shards == 0 ? W : options.virtual_shards;
  STREAMQ_CHECK_GE(V, W) << "virtual_shards must cover every worker";
  const size_t num_producers = sources.size();

  std::vector<std::unique_ptr<QueryExecutor>> executors;
  executors.reserve(V);
  std::vector<QueryExecutor*> exec_ptrs(V);
  for (size_t v = 0; v < V; ++v) {
    executors.push_back(std::make_unique<QueryExecutor>(query));
    if (observer != nullptr) executors.back()->SetObserver(observer);
    exec_ptrs[v] = executors.back().get();
  }
  std::vector<std::unique_ptr<Queue>> queues;
  queues.reserve(W);
  for (size_t w = 0; w < W; ++w) {
    queues.push_back(std::make_unique<Queue>(options.queue_capacity));
  }

  auto released = std::make_unique<std::atomic<uint32_t>[]>(V);
  for (size_t v = 0; v < V; ++v) released[v].store(0, std::memory_order_relaxed);
  auto feeding = std::make_unique<std::atomic<bool>[]>(W);
  auto exited = std::make_unique<std::atomic<bool>[]>(W);
  auto processed = std::make_unique<std::atomic<int64_t>[]>(W);
  auto routed_events = std::make_unique<std::atomic<int64_t>[]>(W);
  auto routed_batches = std::make_unique<std::atomic<int64_t>[]>(W);
  auto stalls = std::make_unique<std::atomic<int64_t>[]>(W);
  for (size_t w = 0; w < W; ++w) {
    feeding[w].store(true, std::memory_order_relaxed);
    exited[w].store(false, std::memory_order_relaxed);
    processed[w].store(0, std::memory_order_relaxed);
    routed_events[w].store(0, std::memory_order_relaxed);
    routed_batches[w].store(0, std::memory_order_relaxed);
    stalls[w].store(0, std::memory_order_relaxed);
  }
  std::atomic<size_t> feeding_count{W};
  std::vector<Status> worker_status(W);
  std::vector<Status> driver_status(W);

  /// shard -> worker. Starts round-robin (identity when V == W, matching
  /// the legacy static routing bit for bit); the rebalancer is the only
  /// writer, and only in the single-producer path.
  std::vector<uint32_t> placement(V);
  for (size_t v = 0; v < V; ++v) placement[v] = static_cast<uint32_t>(v % W);

  EventArena arena = MakeRunArena(options);
  const TimestampUs start = WallClockMicros();

  std::vector<std::thread> workers;
  workers.reserve(W);
  for (size_t w = 0; w < W; ++w) {
    workers.emplace_back([&, w] {
      MaybePin(options, static_cast<int>(w));
      RunShardWorker(queues[w].get(), exec_ptrs.data(), V, released.get(),
                     &worker_status[w], &processed[w], &exited[w]);
    });
  }

  int64_t migrations = 0;

  if (num_producers == 1) {
    // --- Single-producer drive; rebalancing lives here -------------------
    EventSource* source = sources[0];
    std::vector<EventSlab> shard_slabs(V);
    std::vector<uint32_t> touched;
    touched.reserve(std::min<size_t>(V, 256));
    // Per-shard decayed load (rebalance decisions) and the raw counts
    // accumulated since the last check. Both derive only from routed
    // events, so decisions — hence placements and output — are a pure
    // function of the source stream.
    std::vector<double> shard_load(V, 0.0);
    std::vector<int64_t> shard_recent(V, 0);
    std::vector<double> worker_load(W, 0.0);

    bool migrating = false;
    uint32_t mig_shard = 0;
    uint32_t mig_from = 0;
    uint32_t mig_to = 0;
    std::vector<EventBatch> mig_pending;
    int64_t batch_counter = 0;

    auto deliver = [&](uint32_t v, EventBatch batch) {
      const size_t w = placement[v];
      if (!feeding[w].load(std::memory_order_relaxed)) return;  // Degraded.
      const int64_t count = static_cast<int64_t>(batch->size());
      FeedItem item;
      item.batch = std::move(batch);
      item.shard = v;
      item.kind = FeedKind::kBatch;
      Status fail;
      if (!FeedQueue(queues[w].get(), std::move(item), w, options, observer,
                     &stalls[w], &fail)) {
        AbandonWorker(&feeding[w], &feeding_count, &driver_status[w],
                      std::move(fail));
        return;
      }
      routed_events[w].fetch_add(count, std::memory_order_relaxed);
      routed_batches[w].fetch_add(1, std::memory_order_relaxed);
      if (observer != nullptr) {
        observer->OnShardBatch(w, count);
        observer->OnQueueDepth(w, queues[w]->size());
      }
    };

    // The old owner acknowledged the handoff (or died): flush the batches
    // buffered while the shard was in flight to its new worker, in routed
    // order. placement[mig_shard] already points at the target.
    auto complete_migration = [&] {
      for (EventBatch& b : mig_pending) deliver(mig_shard, std::move(b));
      mig_pending.clear();
      migrating = false;
    };

    auto maybe_start_migration = [&] {
      for (size_t v = 0; v < V; ++v) {
        shard_load[v] = shard_load[v] * options.rebalance_decay +
                        static_cast<double>(shard_recent[v]);
        shard_recent[v] = 0;
      }
      std::fill(worker_load.begin(), worker_load.end(), 0.0);
      for (size_t v = 0; v < V; ++v) worker_load[placement[v]] += shard_load[v];
      size_t wmax = 0;
      size_t wmin = 0;
      for (size_t w = 1; w < W; ++w) {
        if (worker_load[w] > worker_load[wmax]) wmax = w;
        if (worker_load[w] < worker_load[wmin]) wmin = w;
      }
      if (wmax == wmin) return;
      if (!feeding[wmax].load(std::memory_order_relaxed) ||
          !feeding[wmin].load(std::memory_order_relaxed)) {
        return;
      }
      if (worker_load[wmax] <=
          options.rebalance_threshold * worker_load[wmin]) {
        return;
      }
      // Move the largest shard that still fits in the gap, so the transfer
      // shrinks the imbalance instead of flipping it onto the target.
      const double gap = worker_load[wmax] - worker_load[wmin];
      int64_t best = -1;
      for (size_t v = 0; v < V; ++v) {
        if (placement[v] != wmax) continue;
        if (shard_load[v] <= 0.0 || shard_load[v] >= gap) continue;
        if (best < 0 || shard_load[v] > shard_load[static_cast<size_t>(best)]) {
          best = static_cast<int64_t>(v);
        }
      }
      if (best < 0) return;
      const auto shard = static_cast<uint32_t>(best);
      // Re-arm the flag *before* the marker is visible, then hand the
      // in-band marker to the current owner.
      released[shard].store(0, std::memory_order_relaxed);
      FeedItem marker;
      marker.shard = shard;
      marker.kind = FeedKind::kRelease;
      Status fail;
      if (!FeedQueue(queues[wmax].get(), std::move(marker), wmax, options,
                     observer, &stalls[wmax], &fail)) {
        AbandonWorker(&feeding[wmax], &feeding_count, &driver_status[wmax],
                      std::move(fail));
        return;
      }
      migrating = true;
      mig_shard = shard;
      mig_from = static_cast<uint32_t>(wmax);
      mig_to = static_cast<uint32_t>(wmin);
      placement[shard] = mig_to;
      ++migrations;
    };

    EventSlab chunk = arena.Acquire();
    while (feeding_count.load(std::memory_order_relaxed) > 0 &&
           source->NextBatch(&chunk, options.batch_size) > 0) {
      if (observer != nullptr) {
        observer->OnSourceBatch(static_cast<int64_t>(chunk.size()));
      }
      for (const Event& e : chunk) {
        const auto v = static_cast<uint32_t>(
            ShardedKeyedRunner::ShardOf(e.key, V));
        EventSlab& slab = shard_slabs[v];
        if (slab.empty()) touched.push_back(v);
        slab.push_back(e);
        ++shard_recent[v];
      }
      chunk.clear();
      for (const uint32_t v : touched) {
        if (migrating && v == mig_shard) {
          // In flight between workers: buffer until the old owner
          // acknowledges the release marker.
          mig_pending.push_back(arena.Share(&shard_slabs[v]));
          continue;
        }
        deliver(v, arena.Share(&shard_slabs[v]));
      }
      touched.clear();
      ++batch_counter;
      if (migrating &&
          released[mig_shard].load(std::memory_order_acquire) != 0) {
        complete_migration();
      }
      if (options.rebalance &&
          batch_counter % options.rebalance_interval_batches == 0) {
        // A decision point must not depend on how fast the old owner
        // drains: if the handoff is still in flight, wait for the
        // acknowledgement (or the owner's death) before deciding, so the
        // decision sequence — hence migration count and placements — stays
        // a pure function of the routed stream. The wait is bounded: the
        // marker is already in the old owner's queue.
        if (migrating) {
          QueueBackoff backoff;
          while (released[mig_shard].load(std::memory_order_acquire) == 0 &&
                 !exited[mig_from].load(std::memory_order_acquire)) {
            backoff.Pause();
          }
          complete_migration();
        }
        maybe_start_migration();
      }
    }
    arena.Recycle(std::move(chunk));
    for (EventSlab& slab : shard_slabs) {
      if (slab.capacity() > 0) arena.Recycle(std::move(slab));
    }

    // Settle an in-flight migration before the terminal flush: wait for
    // the old owner's acknowledgement (or its exit — a dead owner can
    // never touch the shard again, which is just as safe).
    if (migrating) {
      QueueBackoff backoff;
      while (released[mig_shard].load(std::memory_order_acquire) == 0 &&
             !exited[mig_from].load(std::memory_order_acquire)) {
        backoff.Pause();
      }
      complete_migration();
    }
  } else {
    // --- Multi-producer drive: static placement over MPSC queues ---------
    STREAMQ_CHECK(!options.rebalance)
        << "rebalance requires a single-source run";
    std::vector<std::thread> producers;
    producers.reserve(num_producers);
    for (size_t p = 0; p < num_producers; ++p) {
      producers.emplace_back([&, p] {
        MaybePin(options, static_cast<int>(W + p));
        EventArena local = arena;
        EventSource* source = sources[p];
        std::vector<EventSlab> shard_slabs(V);
        std::vector<uint32_t> touched;
        touched.reserve(std::min<size_t>(V, 256));
        EventSlab chunk = local.Acquire();
        while (feeding_count.load(std::memory_order_relaxed) > 0 &&
               source->NextBatch(&chunk, options.batch_size) > 0) {
          if (observer != nullptr) {
            observer->OnSourceBatch(static_cast<int64_t>(chunk.size()));
          }
          for (const Event& e : chunk) {
            const auto v = static_cast<uint32_t>(
                ShardedKeyedRunner::ShardOf(e.key, V));
            EventSlab& slab = shard_slabs[v];
            if (slab.empty()) touched.push_back(v);
            slab.push_back(e);
          }
          chunk.clear();
          for (const uint32_t v : touched) {
            const size_t w = placement[v];  // Static; never written here.
            if (!feeding[w].load(std::memory_order_relaxed)) {
              shard_slabs[v].clear();
              continue;
            }
            const int64_t count =
                static_cast<int64_t>(shard_slabs[v].size());
            FeedItem item;
            item.batch = local.Share(&shard_slabs[v]);
            item.shard = v;
            item.kind = FeedKind::kBatch;
            Status fail;
            if (!FeedQueue(queues[w].get(), std::move(item), w, options,
                           observer, &stalls[w], &fail)) {
              AbandonWorker(&feeding[w], &feeding_count, &driver_status[w],
                            std::move(fail));
              continue;
            }
            routed_events[w].fetch_add(count, std::memory_order_relaxed);
            routed_batches[w].fetch_add(1, std::memory_order_relaxed);
            if (observer != nullptr) {
              observer->OnShardBatch(w, count);
              observer->OnQueueDepth(w, queues[w]->size());
            }
          }
          touched.clear();
        }
        local.Recycle(std::move(chunk));
        for (EventSlab& slab : shard_slabs) {
          if (slab.capacity() > 0) local.Recycle(std::move(slab));
        }
      });
    }
    for (std::thread& t : producers) t.join();
  }

  // Terminal flush: every shard gets a kFinish on its current owner's
  // queue (owners flush in parallel), then the stop sentinels.
  for (size_t v = 0; v < V; ++v) {
    const size_t w = placement[v];
    if (!feeding[w].load(std::memory_order_relaxed)) continue;
    FeedItem fin;
    fin.shard = static_cast<uint32_t>(v);
    fin.kind = FeedKind::kFinish;
    Status fail;
    if (!FeedQueue(queues[w].get(), std::move(fin), w, options, observer,
                   &stalls[w], &fail)) {
      AbandonWorker(&feeding[w], &feeding_count, &driver_status[w],
                    std::move(fail));
    }
  }
  for (auto& q : queues) SendEos(q.get());
  for (std::thread& t : workers) t.join();

  const double wall_seconds = ToSeconds(WallClockMicros() - start);

  char cfg[200];
  std::snprintf(
      cfg, sizeof(cfg),
      "workers=%zu vshards=%zu producers=%zu feed=%s arena=%s pin=%s "
      "rebalance=%s migrations=%lld",
      W, V, num_producers, num_producers > 1 ? "mpsc" : "spsc",
      options.use_arena ? "on" : "off", DescribePin(options),
      options.rebalance ? "on" : "off", static_cast<long long>(migrations));

  // Merge shard reports into one.
  KeyedOutcome out;
  out.migrations = migrations;
  RunReport& merged = out.merged;
  merged.query_name = query.name;
  merged.wall_seconds = wall_seconds;
  merged.runtime_config = cfg;
  for (size_t v = 0; v < V; ++v) {
    RunReport r = executors[v]->Report();
    const size_t w = placement[v];
    ApplyRunStatus(&r, worker_status[w], driver_status[w]);
    if (merged.status.ok() && !r.status.ok()) merged.status = r.status;
    merged.events_processed += r.events_processed;
    merged.events_rejected += r.events_rejected;
    merged.handler_stats.events_in += r.handler_stats.events_in;
    merged.handler_stats.events_out += r.handler_stats.events_out;
    merged.handler_stats.events_late += r.handler_stats.events_late;
    merged.handler_stats.events_dropped += r.handler_stats.events_dropped;
    merged.handler_stats.events_shed += r.handler_stats.events_shed;
    merged.handler_stats.events_force_released +=
        r.handler_stats.events_force_released;
    // Shards buffer concurrently; the sum bounds aggregate memory.
    merged.handler_stats.max_buffer_size += r.handler_stats.max_buffer_size;
    merged.handler_stats.buffering_latency_us.Merge(
        r.handler_stats.buffering_latency_us);
    merged.handler_stats.latency_samples.insert(
        merged.handler_stats.latency_samples.end(),
        r.handler_stats.latency_samples.begin(),
        r.handler_stats.latency_samples.end());
    merged.window_stats.events += r.window_stats.events;
    merged.window_stats.late_applied += r.window_stats.late_applied;
    merged.window_stats.late_dropped += r.window_stats.late_dropped;
    merged.window_stats.windows_fired += r.window_stats.windows_fired;
    merged.window_stats.revisions += r.window_stats.revisions;
    merged.results_amended += r.results_amended;
    merged.window_stats.max_live_windows += r.window_stats.max_live_windows;
    merged.final_slack = std::max(merged.final_slack, r.final_slack);
    merged.results.insert(merged.results.end(),
                          std::make_move_iterator(r.results.begin()),
                          std::make_move_iterator(r.results.end()));
  }
  merged.throughput_eps =
      wall_seconds > 0.0
          ? static_cast<double>(merged.events_processed) / wall_seconds
          : 0.0;
  std::stable_sort(merged.results.begin(), merged.results.end(),
                   [](const WindowResult& a, const WindowResult& b) {
                     return std::tie(a.bounds.start, a.key, a.revision_index) <
                            std::tie(b.bounds.start, b.key, b.revision_index);
                   });
  if (observer != nullptr) {
    observer->OnRunCompleted(merged.events_processed, wall_seconds);
  }

  out.loads.resize(W);
  for (size_t w = 0; w < W; ++w) {
    out.loads[w].events_routed =
        routed_events[w].load(std::memory_order_relaxed);
    out.loads[w].batches_routed =
        routed_batches[w].load(std::memory_order_relaxed);
    out.loads[w].events_processed =
        processed[w].load(std::memory_order_relaxed);
    out.loads[w].stalls = stalls[w].load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace

void ParallelMultiQueryRunner::AddQuery(const ContinuousQuery& query) {
  STREAMQ_CHECK_OK(query.Validate());
  queries_.push_back(query);
}

std::vector<RunReport> ParallelMultiQueryRunner::Run(EventSource* source) {
  STREAMQ_CHECK(!queries_.empty()) << "no queries added";
  EventSource* one[1] = {source};
  return RunIndependent<SpscQueue<EventBatch>>(
      queries_, std::span<EventSource* const>(one, 1), options_, observer_);
}

std::vector<RunReport> ParallelMultiQueryRunner::RunMultiSource(
    std::span<EventSource* const> sources) {
  STREAMQ_CHECK(!queries_.empty()) << "no queries added";
  STREAMQ_CHECK(!sources.empty()) << "no sources";
  if (sources.size() == 1) {
    return RunIndependent<SpscQueue<EventBatch>>(queries_, sources, options_,
                                                 observer_);
  }
  return RunIndependent<MpscQueue<EventBatch>>(queries_, sources, options_,
                                               observer_);
}

ShardedKeyedRunner::ShardedKeyedRunner(const ContinuousQuery& query,
                                       size_t num_workers,
                                       ParallelOptions options)
    : query_(query), num_workers_(num_workers), options_(options) {
  STREAMQ_CHECK_GT(num_workers, 0u);
  STREAMQ_CHECK_OK(query.Validate());
  STREAMQ_CHECK(query.handler.per_key)
      << "ShardedKeyedRunner requires a per-key disorder handler";
  if (options_.virtual_shards != 0) {
    STREAMQ_CHECK_GE(options_.virtual_shards, num_workers)
        << "virtual_shards must cover every worker";
  }
  // Per-key watermarks make a window's first emission depend only on its
  // key's subsequence, which is what makes sharding result-preserving.
  query_.window.per_key_watermarks = true;
}

size_t ShardedKeyedRunner::ShardOf(int64_t key, size_t num_shards) {
  // splitmix64 finalizer.
  uint64_t x = static_cast<uint64_t>(key);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<size_t>(x % num_shards);
}

RunReport ShardedKeyedRunner::Run(EventSource* source) {
  EventSource* one[1] = {source};
  KeyedOutcome out = RunSharded<SpscQueue<FeedItem>>(
      query_, num_workers_, std::span<EventSource* const>(one, 1), options_,
      observer_);
  loads_ = std::move(out.loads);
  migrations_ = out.migrations;
  return std::move(out.merged);
}

RunReport ShardedKeyedRunner::RunMultiSource(
    std::span<EventSource* const> sources) {
  STREAMQ_CHECK(!sources.empty()) << "no sources";
  STREAMQ_CHECK(!options_.rebalance || sources.size() == 1)
      << "rebalance requires a single-source run";
  KeyedOutcome out =
      sources.size() == 1
          ? RunSharded<SpscQueue<FeedItem>>(query_, num_workers_, sources,
                                            options_, observer_)
          : RunSharded<MpscQueue<FeedItem>>(query_, num_workers_, sources,
                                            options_, observer_);
  loads_ = std::move(out.loads);
  migrations_ = out.migrations;
  return std::move(out.merged);
}

}  // namespace streamq
