#include "core/parallel_runner.h"

#include <algorithm>
#include <exception>
#include <string>
#include <thread>
#include <tuple>
#include <utility>

#include "common/logging.h"
#include "common/time.h"
#include "core/spsc_queue.h"
#include "stream/event.h"

namespace streamq {

namespace {

/// One batch crossing a thread boundary. Shared because the independent
/// runner publishes the same batch to every worker; nullptr is the
/// end-of-stream sentinel.
using BatchPtr = std::shared_ptr<const std::vector<Event>>;
using BatchQueue = SpscQueue<BatchPtr>;

/// Worker loop shared by both runners: drain the queue into the executor,
/// then flush. Exceptions are contained on the worker thread — the queue is
/// closed (so the driver stops feeding), drained (so a blocked driver gets
/// room and the shared batches are released), and the failure lands in
/// `*status` for the merged report instead of std::terminate.
void RunWorker(QueryExecutor* exec, BatchQueue* q, Status* status) {
  try {
    BatchPtr batch;
    while (q->Pop(&batch)) {
      if (batch == nullptr) break;  // End-of-stream sentinel.
      exec->FeedBatch(*batch);
      batch.reset();
    }
    exec->Finish();
  } catch (const std::exception& ex) {
    *status = Status::Internal(std::string("worker failed: ") + ex.what());
  } catch (...) {
    *status = Status::Internal("worker failed: non-standard exception");
  }
  if (!status->ok()) {
    q->Close();
    BatchPtr drain;
    while (q->TryPop(&drain)) drain.reset();
  }
}

/// Driver-side delivery of one batch with bounded patience. Fast path: one
/// lock-free TryPush. On a full ring: one backpressure-stall notification,
/// then deadline pushes with exponentially growing timeouts. Returns false
/// when the worker was abandoned — either it closed the queue itself
/// (failure; its own status explains why) or it stayed wedged past every
/// deadline, in which case `*driver_status` gets ResourceExhausted and the
/// queue is closed so the worker sees early end-of-stream.
bool FeedQueue(BatchQueue* q, BatchPtr batch, size_t worker,
               const ParallelOptions& options, PipelineObserver* observer,
               Status* driver_status) {
  if (q->TryPush(std::move(batch))) return true;
  if (q->closed()) return false;
  if (observer != nullptr) observer->OnBackpressureStall(worker);
  DurationUs timeout = options.feed_timeout_us;
  for (int attempt = 0; attempt < options.feed_max_attempts; ++attempt) {
    // TryPushFor only consumes `batch` on success, so retry keeps it.
    if (q->TryPushFor(std::move(batch), timeout)) return true;
    if (q->closed()) return false;
    timeout *= 2;
  }
  *driver_status = Status::ResourceExhausted(
      "worker " + std::to_string(worker) +
      " stuck: queue full past feed timeout");
  q->Close();
  return false;
}

/// End-of-stream, unless the worker is already gone.
void SendEos(BatchQueue* q) {
  if (!q->closed()) q->Push(nullptr);
}

/// Report status priority: a worker fault explains more than the driver's
/// view of it, which explains more than the executor's own (strict
/// validation) status.
void ApplyRunStatus(RunReport* report, const Status& worker_status,
                    const Status& driver_status) {
  if (!worker_status.ok()) {
    report->status = worker_status;
  } else if (!driver_status.ok()) {
    report->status = driver_status;
  }
}

}  // namespace

void ParallelMultiQueryRunner::AddQuery(const ContinuousQuery& query) {
  STREAMQ_CHECK_OK(query.Validate());
  queries_.push_back(query);
}

std::vector<RunReport> ParallelMultiQueryRunner::Run(EventSource* source) {
  STREAMQ_CHECK(!queries_.empty()) << "no queries added";
  const size_t n = queries_.size();

  std::vector<std::unique_ptr<QueryExecutor>> executors;
  std::vector<std::unique_ptr<BatchQueue>> queues;
  executors.reserve(n);
  queues.reserve(n);
  for (const ContinuousQuery& q : queries_) {
    executors.push_back(std::make_unique<QueryExecutor>(q));
    if (observer_ != nullptr) executors.back()->SetObserver(observer_);
    queues.push_back(std::make_unique<BatchQueue>(options_.queue_capacity));
  }

  const TimestampUs start = WallClockMicros();

  std::vector<Status> worker_status(n);
  std::vector<Status> driver_status(n);
  std::vector<std::thread> workers;
  workers.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers.emplace_back(RunWorker, executors[i].get(), queues[i].get(),
                         &worker_status[i]);
  }

  // Driver: pull arrival-ordered batches and publish each to every worker
  // still accepting input. A failed or stuck worker is abandoned (see
  // FeedQueue), never waited on forever.
  std::vector<bool> feeding(n, true);
  size_t feeding_count = n;
  std::vector<Event> chunk;
  chunk.reserve(options_.batch_size);
  int64_t events_pulled = 0;
  while (feeding_count > 0 &&
         source->NextBatch(&chunk, options_.batch_size) > 0) {
    auto batch = std::make_shared<const std::vector<Event>>(std::move(chunk));
    events_pulled += static_cast<int64_t>(batch->size());
    if (observer_ != nullptr) {
      observer_->OnSourceBatch(static_cast<int64_t>(batch->size()));
    }
    for (size_t i = 0; i < n; ++i) {
      if (!feeding[i]) continue;
      BatchPtr copy = batch;
      if (!FeedQueue(queues[i].get(), std::move(copy), i, options_, observer_,
                     &driver_status[i])) {
        feeding[i] = false;
        --feeding_count;
        continue;
      }
      if (observer_ != nullptr) observer_->OnQueueDepth(i, queues[i]->size());
    }
    chunk = std::vector<Event>();
    chunk.reserve(options_.batch_size);
  }
  for (auto& q : queues) SendEos(q.get());
  for (std::thread& t : workers) t.join();

  const double wall_seconds = ToSeconds(WallClockMicros() - start);
  if (observer_ != nullptr) {
    observer_->OnRunCompleted(events_pulled, wall_seconds);
  }

  std::vector<RunReport> reports;
  reports.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    RunReport r = executors[i]->Report();
    // Workers do not time themselves; charge the shared parallel wall time.
    r.wall_seconds = wall_seconds;
    r.throughput_eps =
        wall_seconds > 0.0
            ? static_cast<double>(r.events_processed) / wall_seconds
            : 0.0;
    ApplyRunStatus(&r, worker_status[i], driver_status[i]);
    reports.push_back(std::move(r));
  }
  return reports;
}

ShardedKeyedRunner::ShardedKeyedRunner(const ContinuousQuery& query,
                                       size_t num_shards,
                                       ParallelOptions options)
    : query_(query), num_shards_(num_shards), options_(options) {
  STREAMQ_CHECK_GT(num_shards, 0u);
  STREAMQ_CHECK_OK(query.Validate());
  STREAMQ_CHECK(query.handler.per_key)
      << "ShardedKeyedRunner requires a per-key disorder handler";
  // Per-key watermarks make a window's first emission depend only on its
  // key's subsequence, which is what makes sharding result-preserving.
  query_.window.per_key_watermarks = true;
}

size_t ShardedKeyedRunner::ShardOf(int64_t key, size_t num_shards) {
  // splitmix64 finalizer.
  uint64_t x = static_cast<uint64_t>(key);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<size_t>(x % num_shards);
}

RunReport ShardedKeyedRunner::Run(EventSource* source) {
  const size_t n = num_shards_;

  std::vector<std::unique_ptr<QueryExecutor>> executors;
  std::vector<std::unique_ptr<BatchQueue>> queues;
  executors.reserve(n);
  queues.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    executors.push_back(std::make_unique<QueryExecutor>(query_));
    if (observer_ != nullptr) executors.back()->SetObserver(observer_);
    queues.push_back(std::make_unique<BatchQueue>(options_.queue_capacity));
  }

  const TimestampUs start = WallClockMicros();

  std::vector<Status> worker_status(n);
  std::vector<Status> driver_status(n);
  std::vector<std::thread> workers;
  workers.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers.emplace_back(RunWorker, executors[i].get(), queues[i].get(),
                         &worker_status[i]);
  }

  // Driver: pull arrival-ordered batches, partition by key hash, and send
  // each shard its (arrival-ordered) sub-batch. A failed or stuck shard is
  // abandoned (see FeedQueue); the others keep their keys flowing.
  std::vector<bool> feeding(n, true);
  size_t feeding_count = n;
  std::vector<Event> chunk;
  chunk.reserve(options_.batch_size);
  std::vector<std::vector<Event>> shard_chunks(n);
  while (feeding_count > 0 &&
         source->NextBatch(&chunk, options_.batch_size) > 0) {
    if (observer_ != nullptr) {
      observer_->OnSourceBatch(static_cast<int64_t>(chunk.size()));
    }
    for (const Event& e : chunk) {
      shard_chunks[ShardOf(e.key, n)].push_back(e);
    }
    for (size_t i = 0; i < n; ++i) {
      if (shard_chunks[i].empty()) continue;
      if (!feeding[i]) {
        shard_chunks[i].clear();
        continue;
      }
      const auto sub_batch_events =
          static_cast<int64_t>(shard_chunks[i].size());
      BatchPtr batch = std::make_shared<const std::vector<Event>>(
          std::move(shard_chunks[i]));
      if (!FeedQueue(queues[i].get(), std::move(batch), i, options_,
                     observer_, &driver_status[i])) {
        feeding[i] = false;
        --feeding_count;
      } else if (observer_ != nullptr) {
        observer_->OnShardBatch(i, sub_batch_events);
        observer_->OnQueueDepth(i, queues[i]->size());
      }
      shard_chunks[i] = std::vector<Event>();
    }
    chunk.clear();
  }
  for (auto& q : queues) SendEos(q.get());
  for (std::thread& t : workers) t.join();

  const double wall_seconds = ToSeconds(WallClockMicros() - start);

  // Merge shard reports into one.
  RunReport merged;
  merged.query_name = query_.name;
  merged.wall_seconds = wall_seconds;
  for (size_t i = 0; i < n; ++i) {
    RunReport r = executors[i]->Report();
    ApplyRunStatus(&r, worker_status[i], driver_status[i]);
    if (merged.status.ok() && !r.status.ok()) merged.status = r.status;
    merged.events_processed += r.events_processed;
    merged.events_rejected += r.events_rejected;
    merged.handler_stats.events_in += r.handler_stats.events_in;
    merged.handler_stats.events_out += r.handler_stats.events_out;
    merged.handler_stats.events_late += r.handler_stats.events_late;
    merged.handler_stats.events_dropped += r.handler_stats.events_dropped;
    merged.handler_stats.events_shed += r.handler_stats.events_shed;
    merged.handler_stats.events_force_released +=
        r.handler_stats.events_force_released;
    // Shards buffer concurrently; the sum bounds aggregate memory.
    merged.handler_stats.max_buffer_size += r.handler_stats.max_buffer_size;
    merged.handler_stats.buffering_latency_us.Merge(
        r.handler_stats.buffering_latency_us);
    merged.handler_stats.latency_samples.insert(
        merged.handler_stats.latency_samples.end(),
        r.handler_stats.latency_samples.begin(),
        r.handler_stats.latency_samples.end());
    merged.window_stats.events += r.window_stats.events;
    merged.window_stats.late_applied += r.window_stats.late_applied;
    merged.window_stats.late_dropped += r.window_stats.late_dropped;
    merged.window_stats.windows_fired += r.window_stats.windows_fired;
    merged.window_stats.revisions += r.window_stats.revisions;
    merged.window_stats.max_live_windows += r.window_stats.max_live_windows;
    merged.final_slack = std::max(merged.final_slack, r.final_slack);
    merged.results.insert(merged.results.end(),
                          std::make_move_iterator(r.results.begin()),
                          std::make_move_iterator(r.results.end()));
  }
  merged.throughput_eps =
      wall_seconds > 0.0
          ? static_cast<double>(merged.events_processed) / wall_seconds
          : 0.0;
  std::stable_sort(merged.results.begin(), merged.results.end(),
                   [](const WindowResult& a, const WindowResult& b) {
                     return std::tie(a.bounds.start, a.key, a.revision_index) <
                            std::tie(b.bounds.start, b.key, b.revision_index);
                   });
  if (observer_ != nullptr) {
    observer_->OnRunCompleted(merged.events_processed, wall_seconds);
  }
  return merged;
}

}  // namespace streamq
