#include "core/parallel_runner.h"

#include <algorithm>
#include <thread>
#include <tuple>
#include <utility>

#include "common/logging.h"
#include "common/time.h"
#include "core/spsc_queue.h"
#include "stream/event.h"

namespace streamq {

namespace {

/// One batch crossing a thread boundary. Shared because the independent
/// runner publishes the same batch to every worker; nullptr is the
/// end-of-stream sentinel.
using BatchPtr = std::shared_ptr<const std::vector<Event>>;
using BatchQueue = SpscQueue<BatchPtr>;

}  // namespace

void ParallelMultiQueryRunner::AddQuery(const ContinuousQuery& query) {
  STREAMQ_CHECK_OK(query.Validate());
  queries_.push_back(query);
}

std::vector<RunReport> ParallelMultiQueryRunner::Run(EventSource* source) {
  STREAMQ_CHECK(!queries_.empty()) << "no queries added";
  const size_t n = queries_.size();

  std::vector<std::unique_ptr<QueryExecutor>> executors;
  std::vector<std::unique_ptr<BatchQueue>> queues;
  executors.reserve(n);
  queues.reserve(n);
  for (const ContinuousQuery& q : queries_) {
    executors.push_back(std::make_unique<QueryExecutor>(q));
    if (observer_ != nullptr) executors.back()->SetObserver(observer_);
    queues.push_back(std::make_unique<BatchQueue>(options_.queue_capacity));
  }

  const TimestampUs start = WallClockMicros();

  std::vector<std::thread> workers;
  workers.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers.emplace_back([exec = executors[i].get(), q = queues[i].get()] {
      while (BatchPtr batch = q->Pop()) {
        exec->FeedBatch(*batch);
      }
      exec->Finish();
    });
  }

  // Driver: pull arrival-ordered batches and publish each to every worker.
  std::vector<Event> chunk;
  chunk.reserve(options_.batch_size);
  int64_t events_pulled = 0;
  while (source->NextBatch(&chunk, options_.batch_size) > 0) {
    auto batch = std::make_shared<const std::vector<Event>>(std::move(chunk));
    events_pulled += static_cast<int64_t>(batch->size());
    if (observer_ == nullptr) {
      for (auto& q : queues) q->Push(batch);
    } else {
      observer_->OnSourceBatch(static_cast<int64_t>(batch->size()));
      for (size_t i = 0; i < n; ++i) {
        BatchPtr copy = batch;
        // A failed TryPush means this worker's ring is full: one stall per
        // full-queue encounter, then the normal blocking Push.
        if (!queues[i]->TryPush(std::move(copy))) {
          observer_->OnBackpressureStall(i);
          queues[i]->Push(std::move(copy));
        }
        observer_->OnQueueDepth(i, queues[i]->size());
      }
    }
    chunk = std::vector<Event>();
    chunk.reserve(options_.batch_size);
  }
  for (auto& q : queues) q->Push(nullptr);  // End of stream.
  for (std::thread& t : workers) t.join();

  const double wall_seconds = ToSeconds(WallClockMicros() - start);
  if (observer_ != nullptr) {
    observer_->OnRunCompleted(events_pulled, wall_seconds);
  }

  std::vector<RunReport> reports;
  reports.reserve(n);
  for (auto& exec : executors) {
    RunReport r = exec->Report();
    // Workers do not time themselves; charge the shared parallel wall time.
    r.wall_seconds = wall_seconds;
    r.throughput_eps =
        wall_seconds > 0.0
            ? static_cast<double>(r.events_processed) / wall_seconds
            : 0.0;
    reports.push_back(std::move(r));
  }
  return reports;
}

ShardedKeyedRunner::ShardedKeyedRunner(const ContinuousQuery& query,
                                       size_t num_shards,
                                       ParallelOptions options)
    : query_(query), num_shards_(num_shards), options_(options) {
  STREAMQ_CHECK_GT(num_shards, 0u);
  STREAMQ_CHECK_OK(query.Validate());
  STREAMQ_CHECK(query.handler.per_key)
      << "ShardedKeyedRunner requires a per-key disorder handler";
  // Per-key watermarks make a window's first emission depend only on its
  // key's subsequence, which is what makes sharding result-preserving.
  query_.window.per_key_watermarks = true;
}

size_t ShardedKeyedRunner::ShardOf(int64_t key, size_t num_shards) {
  // splitmix64 finalizer.
  uint64_t x = static_cast<uint64_t>(key);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<size_t>(x % num_shards);
}

RunReport ShardedKeyedRunner::Run(EventSource* source) {
  const size_t n = num_shards_;

  std::vector<std::unique_ptr<QueryExecutor>> executors;
  std::vector<std::unique_ptr<BatchQueue>> queues;
  executors.reserve(n);
  queues.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    executors.push_back(std::make_unique<QueryExecutor>(query_));
    if (observer_ != nullptr) executors.back()->SetObserver(observer_);
    queues.push_back(std::make_unique<BatchQueue>(options_.queue_capacity));
  }

  const TimestampUs start = WallClockMicros();

  std::vector<std::thread> workers;
  workers.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers.emplace_back([exec = executors[i].get(), q = queues[i].get()] {
      while (BatchPtr batch = q->Pop()) {
        exec->FeedBatch(*batch);
      }
      exec->Finish();
    });
  }

  // Driver: pull arrival-ordered batches, partition by key hash, and send
  // each shard its (arrival-ordered) sub-batch.
  std::vector<Event> chunk;
  chunk.reserve(options_.batch_size);
  std::vector<std::vector<Event>> shard_chunks(n);
  while (source->NextBatch(&chunk, options_.batch_size) > 0) {
    if (observer_ != nullptr) {
      observer_->OnSourceBatch(static_cast<int64_t>(chunk.size()));
    }
    for (const Event& e : chunk) {
      shard_chunks[ShardOf(e.key, n)].push_back(e);
    }
    for (size_t i = 0; i < n; ++i) {
      if (shard_chunks[i].empty()) continue;
      const auto sub_batch_events =
          static_cast<int64_t>(shard_chunks[i].size());
      BatchPtr batch = std::make_shared<const std::vector<Event>>(
          std::move(shard_chunks[i]));
      if (observer_ == nullptr) {
        queues[i]->Push(std::move(batch));
      } else {
        if (!queues[i]->TryPush(std::move(batch))) {
          observer_->OnBackpressureStall(i);
          queues[i]->Push(std::move(batch));
        }
        observer_->OnShardBatch(i, sub_batch_events);
        observer_->OnQueueDepth(i, queues[i]->size());
      }
      shard_chunks[i] = std::vector<Event>();
    }
    chunk.clear();
  }
  for (auto& q : queues) q->Push(nullptr);  // End of stream.
  for (std::thread& t : workers) t.join();

  const double wall_seconds = ToSeconds(WallClockMicros() - start);

  // Merge shard reports into one.
  RunReport merged;
  merged.query_name = query_.name;
  merged.wall_seconds = wall_seconds;
  for (auto& exec : executors) {
    RunReport r = exec->Report();
    merged.events_processed += r.events_processed;
    merged.handler_stats.events_in += r.handler_stats.events_in;
    merged.handler_stats.events_out += r.handler_stats.events_out;
    merged.handler_stats.events_late += r.handler_stats.events_late;
    merged.handler_stats.events_dropped += r.handler_stats.events_dropped;
    // Shards buffer concurrently; the sum bounds aggregate memory.
    merged.handler_stats.max_buffer_size += r.handler_stats.max_buffer_size;
    merged.handler_stats.buffering_latency_us.Merge(
        r.handler_stats.buffering_latency_us);
    merged.handler_stats.latency_samples.insert(
        merged.handler_stats.latency_samples.end(),
        r.handler_stats.latency_samples.begin(),
        r.handler_stats.latency_samples.end());
    merged.window_stats.events += r.window_stats.events;
    merged.window_stats.late_applied += r.window_stats.late_applied;
    merged.window_stats.late_dropped += r.window_stats.late_dropped;
    merged.window_stats.windows_fired += r.window_stats.windows_fired;
    merged.window_stats.revisions += r.window_stats.revisions;
    merged.window_stats.max_live_windows += r.window_stats.max_live_windows;
    merged.final_slack = std::max(merged.final_slack, r.final_slack);
    merged.results.insert(merged.results.end(),
                          std::make_move_iterator(r.results.begin()),
                          std::make_move_iterator(r.results.end()));
  }
  merged.throughput_eps =
      wall_seconds > 0.0
          ? static_cast<double>(merged.events_processed) / wall_seconds
          : 0.0;
  std::stable_sort(merged.results.begin(), merged.results.end(),
                   [](const WindowResult& a, const WindowResult& b) {
                     return std::tie(a.bounds.start, a.key, a.revision_index) <
                            std::tie(b.bounds.start, b.key, b.revision_index);
                   });
  if (observer_ != nullptr) {
    observer_->OnRunCompleted(merged.events_processed, wall_seconds);
  }
  return merged;
}

}  // namespace streamq
