#include "core/session_options.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "agg/aggregate.h"

namespace streamq {

namespace {

const char* const kStrategies[] = {"aq", "lb", "fixed", "mp", "watermark",
                                   "none"};

bool KnownStrategy(const std::string& s) {
  for (const char* name : kStrategies) {
    if (s == name) return true;
  }
  return false;
}

/// Levenshtein distance, the classic O(n*m) DP.
size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

/// The flag part of a token: everything before the first '='.
std::string FlagPart(const std::string& token) {
  const size_t eq = token.find('=');
  return eq == std::string::npos ? token : token.substr(0, eq);
}

}  // namespace

Status ParseInt64Strict(const std::string& text, int64_t* out) {
  if (text.empty()) return Status::InvalidArgument("empty integer");
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno == ERANGE || end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("not an integer: '" + text + "'");
  }
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status ParseDoubleStrict(const std::string& text, double* out) {
  if (text.empty()) return Status::InvalidArgument("empty number");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno == ERANGE || end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("not a number: '" + text + "'");
  }
  *out = v;
  return Status::OK();
}

Status ParseShedPolicyName(const std::string& name, ShedPolicy* out) {
  if (name == "emit-early") {
    *out = ShedPolicy::kEmitEarly;
  } else if (name == "drop-newest") {
    *out = ShedPolicy::kDropNewest;
  } else if (name == "drop-oldest") {
    *out = ShedPolicy::kDropOldest;
  } else {
    return Status::InvalidArgument(
        "unknown shed policy '" + name +
        "' (want emit-early, drop-newest or drop-oldest)");
  }
  return Status::OK();
}

Status ParseWindowEngineName(const std::string& name,
                             WindowedAggregation::Engine* out) {
  if (name == "hot") {
    *out = WindowedAggregation::Engine::kHot;
  } else if (name == "amend") {
    *out = WindowedAggregation::Engine::kAmend;
  } else if (name == "legacy") {
    *out = WindowedAggregation::Engine::kLegacy;
  } else {
    return Status::InvalidArgument("unknown window engine '" + name +
                                   "' (want hot, amend or legacy)");
  }
  return Status::OK();
}

Status ParseIngestValidationName(const std::string& name,
                                 IngestValidation* out) {
  if (name == "off") {
    *out = IngestValidation::kOff;
  } else if (name == "drop") {
    *out = IngestValidation::kDrop;
  } else if (name == "strict") {
    *out = IngestValidation::kStrict;
  } else {
    return Status::InvalidArgument("unknown validation mode '" + name +
                                   "' (want off, drop or strict)");
  }
  return Status::OK();
}

// --------------------------------------------------------------- setters

SessionOptions& SessionOptions::Name(std::string v) {
  name = std::move(v);
  return *this;
}
SessionOptions& SessionOptions::Window(int64_t ms) {
  window_ms = ms;
  return *this;
}
SessionOptions& SessionOptions::Slide(int64_t ms) {
  slide_ms = ms;
  return *this;
}
SessionOptions& SessionOptions::Aggregate(std::string v) {
  agg = std::move(v);
  return *this;
}
SessionOptions& SessionOptions::Strategy(std::string v) {
  strategy = std::move(v);
  return *this;
}
SessionOptions& SessionOptions::QualityTarget(double v) {
  strategy = "aq";
  quality = v;
  return *this;
}
SessionOptions& SessionOptions::LatencyBudget(int64_t ms) {
  strategy = "lb";
  latency_budget_ms = ms;
  return *this;
}
SessionOptions& SessionOptions::FixedK(int64_t ms) {
  strategy = "fixed";
  k_ms = ms;
  return *this;
}
SessionOptions& SessionOptions::Speculative(bool on) {
  speculative = on;
  return *this;
}
SessionOptions& SessionOptions::Engine(std::string engine) {
  window_engine = std::move(engine);
  return *this;
}
SessionOptions& SessionOptions::PerKey(bool on) {
  per_key = on;
  return *this;
}
SessionOptions& SessionOptions::AllowedLateness(int64_t ms) {
  lateness_ms = ms;
  return *this;
}
SessionOptions& SessionOptions::Threads(int64_t n) {
  threads = n;
  return *this;
}
SessionOptions& SessionOptions::VirtualShards(int64_t n) {
  vshards = n;
  return *this;
}
SessionOptions& SessionOptions::Rebalance(bool on) {
  rebalance = on;
  return *this;
}
SessionOptions& SessionOptions::PinCores(bool on) {
  pin_cores = on;
  return *this;
}
SessionOptions& SessionOptions::MpscProducers(int64_t n) {
  mpsc = n;
  return *this;
}
SessionOptions& SessionOptions::Arena(bool on) {
  arena = on;
  return *this;
}
SessionOptions& SessionOptions::Steal(bool on) {
  steal = on;
  return *this;
}
SessionOptions& SessionOptions::AdaptiveBatch(bool on) {
  adaptive_batch = on;
  return *this;
}
SessionOptions& SessionOptions::NumaArena(bool on) {
  numa_arena = on;
  return *this;
}
SessionOptions& SessionOptions::BufferCap(int64_t cap, std::string policy) {
  buffer_cap = cap;
  shed = std::move(policy);
  return *this;
}
SessionOptions& SessionOptions::MaxSlack(int64_t ms) {
  max_slack_ms = ms;
  return *this;
}
SessionOptions& SessionOptions::ValidateIngest(std::string mode) {
  validate = std::move(mode);
  return *this;
}

// ------------------------------------------------------------- validation

Status SessionOptions::Validate() const {
  if (name.empty()) return Status::InvalidArgument("empty session name");
  if (window_ms <= 0) {
    return Status::InvalidArgument("--window must be > 0 ms");
  }
  if (slide_ms < 0) {
    return Status::InvalidArgument("--slide must be >= 0 ms (0 = tumbling)");
  }
  {
    auto spec = ParseAggregateSpec(agg);
    if (!spec.ok()) {
      return Status::InvalidArgument("bad --agg: " +
                                     spec.status().message());
    }
  }
  if (!KnownStrategy(strategy)) {
    return Status::InvalidArgument(
        "unknown --strategy: " + strategy +
        " (want aq, lb, fixed, mp, watermark or none)");
  }
  if ((strategy == "aq" || speculative) &&
      (quality <= 0.0 || quality > 1.0)) {
    return Status::InvalidArgument("--quality must be in (0, 1]");
  }
  {
    WindowedAggregation::Engine engine;
    STREAMQ_RETURN_NOT_OK(ParseWindowEngineName(window_engine, &engine));
  }
  if (speculative) {
    if (strategy != "aq") {
      return Status::InvalidArgument(
          "--speculative is its own disorder strategy (emit-then-amend); "
          "drop --strategy=" + strategy);
    }
    if (window_engine == "legacy") {
      return Status::InvalidArgument(
          "--speculative emits provisional results and amends them in "
          "place, which the legacy reference engine cannot do; use "
          "--window-engine=amend (or hot)");
    }
  }
  if (strategy == "lb" && latency_budget_ms <= 0) {
    return Status::InvalidArgument("--latency-budget must be > 0 ms");
  }
  if ((strategy == "fixed" || strategy == "watermark") && k_ms < 0) {
    return Status::InvalidArgument("--k must be >= 0 ms");
  }
  if (lateness_ms < 0) {
    return Status::InvalidArgument("--lateness must be >= 0 ms");
  }
  if (threads < 0) return Status::InvalidArgument("--threads must be >= 0");
  if (threads == 0) {
    if (vshards != 0 || rebalance || pin_cores || mpsc != 0 || steal ||
        adaptive_batch || numa_arena) {
      return Status::InvalidArgument(
          "--vshards/--rebalance/--pin-cores/--mpsc/--steal/"
          "--adaptive-batch/--numa-arena require --threads=<n>");
    }
  } else {
    if (!per_key) {
      return Status::InvalidArgument(
          "--threads shards the key space, so it requires --per-key");
    }
    if (vshards != 0 && vshards < threads) {
      return Status::InvalidArgument(
          "--vshards must be 0 or >= --threads");
    }
    if (mpsc != 0) {
      if (mpsc < 2) {
        return Status::InvalidArgument("--mpsc needs >= 2 producers");
      }
      if (rebalance) {
        return Status::InvalidArgument(
            "--rebalance requires a single-source run; drop --mpsc");
      }
      if (steal) {
        return Status::InvalidArgument(
            "--steal requires a single-source run; drop --mpsc");
      }
    }
    STREAMQ_RETURN_NOT_OK(BuildParallelOptions().Validate());
  }
  if (buffer_cap < 0) {
    return Status::InvalidArgument("--buffer-cap must be >= 0");
  }
  {
    ShedPolicy policy;
    STREAMQ_RETURN_NOT_OK(ParseShedPolicyName(shed, &policy));
  }
  if (max_slack_ms < 0) {
    return Status::InvalidArgument("--max-slack must be >= 0 ms");
  }
  {
    IngestValidation mode;
    STREAMQ_RETURN_NOT_OK(ParseIngestValidationName(validate, &mode));
  }
  return Status::OK();
}

Result<ContinuousQuery> SessionOptions::BuildQuery() const {
  STREAMQ_RETURN_NOT_OK(Validate());

  const DurationUs window = Millis(window_ms);
  const DurationUs slide = slide_ms > 0 ? Millis(slide_ms) : window;
  QueryBuilder builder(name);
  builder.Sliding(window, slide);
  auto agg_spec = ParseAggregateSpec(agg);
  builder.Aggregate(agg_spec.value());
  builder.AllowedLateness(Millis(lateness_ms));

  {
    WindowedAggregation::Engine engine = WindowedAggregation::Engine::kHot;
    (void)ParseWindowEngineName(window_engine, &engine);  // Validated above.
    builder.WindowEngine(engine);
  }
  if (speculative) {
    builder.Speculative(quality);
  } else if (strategy == "aq") {
    builder.QualityTarget(quality);
  } else if (strategy == "lb") {
    builder.LatencyBudget(Millis(latency_budget_ms));
  } else if (strategy == "fixed") {
    builder.FixedSlack(Millis(k_ms));
  } else if (strategy == "mp") {
    builder.AdaptiveMaxSlack();
  } else if (strategy == "watermark") {
    WatermarkReorderer::Options wm;
    wm.bound = Millis(k_ms);
    wm.allowed_lateness = Millis(lateness_ms);
    builder.Watermark(wm);
  } else {  // "none"
    builder.NoDisorderHandling();
  }
  if (per_key) builder.PerKey();

  if (buffer_cap > 0) {
    ShedPolicy policy = ShedPolicy::kEmitEarly;
    (void)ParseShedPolicyName(shed, &policy);  // Validated above.
    builder.BufferCap(static_cast<size_t>(buffer_cap), policy);
  }
  if (max_slack_ms > 0) builder.MaxSlack(Millis(max_slack_ms));
  IngestValidation mode = IngestValidation::kOff;
  (void)ParseIngestValidationName(validate, &mode);  // Validated above.
  builder.ValidateIngest(mode);

  ContinuousQuery query = builder.Build();
  if (threads > 0 && arena) {
    // Arena mode also backs the reorder buffers with recycled bucket slabs.
    query.handler = query.handler.WithArena();
  }
  return query;
}

ParallelOptions SessionOptions::BuildParallelOptions() const {
  ParallelOptions popts;
  popts.use_arena = arena;
  popts.pin_cores = pin_cores;
  popts.virtual_shards = static_cast<size_t>(vshards);
  popts.rebalance = rebalance;
  popts.steal = steal;
  popts.adaptive_batch = adaptive_batch;
  popts.numa_arena = numa_arena;
  return popts;
}

// ------------------------------------------------------------ (de)serialize

std::vector<std::string> SessionOptions::ToTokens() const {
  const SessionOptions defaults;
  std::vector<std::string> out;
  auto emit = [&out](const std::string& flag, const std::string& value) {
    out.push_back(flag + "=" + value);
  };
  if (name != defaults.name) emit("--name", name);
  if (window_ms != defaults.window_ms) {
    emit("--window", std::to_string(window_ms));
  }
  if (slide_ms != defaults.slide_ms) emit("--slide", std::to_string(slide_ms));
  if (agg != defaults.agg) emit("--agg", agg);
  if (strategy != defaults.strategy) emit("--strategy", strategy);
  if (speculative) out.push_back("--speculative");
  if (window_engine != defaults.window_engine) {
    emit("--window-engine", window_engine);
  }
  if (quality != defaults.quality) {
    std::ostringstream q;
    q << quality;
    emit("--quality", q.str());
  }
  if (latency_budget_ms != defaults.latency_budget_ms) {
    emit("--latency-budget", std::to_string(latency_budget_ms));
  }
  if (k_ms != defaults.k_ms) emit("--k", std::to_string(k_ms));
  if (per_key) out.push_back("--per-key");
  if (lateness_ms != defaults.lateness_ms) {
    emit("--lateness", std::to_string(lateness_ms));
  }
  if (threads != defaults.threads) emit("--threads", std::to_string(threads));
  if (vshards != defaults.vshards) emit("--vshards", std::to_string(vshards));
  if (rebalance) out.push_back("--rebalance");
  if (pin_cores) out.push_back("--pin-cores");
  if (mpsc != defaults.mpsc) emit("--mpsc", std::to_string(mpsc));
  if (arena != defaults.arena) emit("--arena", arena ? "on" : "off");
  if (steal) out.push_back("--steal");
  if (adaptive_batch) out.push_back("--adaptive-batch");
  if (numa_arena) out.push_back("--numa-arena");
  if (buffer_cap != defaults.buffer_cap) {
    emit("--buffer-cap", std::to_string(buffer_cap));
  }
  if (shed != defaults.shed) emit("--shed", shed);
  if (max_slack_ms != defaults.max_slack_ms) {
    emit("--max-slack", std::to_string(max_slack_ms));
  }
  if (validate != defaults.validate) emit("--validate", validate);
  return out;
}

std::string SessionOptions::Serialize() const {
  std::string out;
  for (const std::string& token : ToTokens()) {
    if (!out.empty()) out += ' ';
    out += token;
  }
  return out;
}

Result<SessionOptions> SessionOptions::Deserialize(const std::string& text) {
  std::vector<std::string> tokens;
  std::istringstream in(text);
  for (std::string token; in >> token;) tokens.push_back(token);
  SessionOptions options;
  std::vector<std::string> unrecognized;
  STREAMQ_RETURN_NOT_OK(ParseTokens(tokens, &options, &unrecognized));
  if (!unrecognized.empty()) {
    return Status::InvalidArgument("unknown session option: " +
                                   unrecognized.front());
  }
  return options;
}

// ----------------------------------------------------------------- parsing

namespace {

/// One recognized flag. `value` is null for bare boolean flags.
struct ParsedToken {
  std::string flag;
  const std::string* raw = nullptr;  // Token as given (for errors).
  bool has_value = false;
  std::string value;
};

Status BadValue(const ParsedToken& t, const Status& why) {
  return Status::InvalidArgument("bad " + t.flag + ": " + why.message());
}

}  // namespace

Status SessionOptions::ParseTokens(std::span<const std::string> tokens,
                                   SessionOptions* out,
                                   std::vector<std::string>* unrecognized) {
  for (const std::string& token : tokens) {
    ParsedToken t;
    t.raw = &token;
    const size_t eq = token.find('=');
    t.flag = token.substr(0, eq);
    if (eq != std::string::npos) {
      t.has_value = true;
      t.value = token.substr(eq + 1);
    }

    auto want_value = [&t]() -> Status {
      if (!t.has_value) {
        return Status::InvalidArgument(t.flag + " needs a value (" + t.flag +
                                       "=...)");
      }
      return Status::OK();
    };
    auto int_value = [&](int64_t* field) -> Status {
      STREAMQ_RETURN_NOT_OK(want_value());
      int64_t v = 0;
      Status st = ParseInt64Strict(t.value, &v);
      if (!st.ok()) return BadValue(t, st);
      *field = v;
      return Status::OK();
    };
    auto string_value = [&](std::string* field) -> Status {
      STREAMQ_RETURN_NOT_OK(want_value());
      *field = t.value;
      return Status::OK();
    };

    Status st;
    if (t.flag == "--name") {
      st = string_value(&out->name);
    } else if (t.flag == "--window") {
      st = int_value(&out->window_ms);
    } else if (t.flag == "--slide") {
      st = int_value(&out->slide_ms);
    } else if (t.flag == "--agg") {
      st = string_value(&out->agg);
    } else if (t.flag == "--strategy") {
      st = string_value(&out->strategy);
    } else if (t.flag == "--quality") {
      STREAMQ_RETURN_NOT_OK(want_value());
      double v = 0.0;
      st = ParseDoubleStrict(t.value, &v);
      if (!st.ok()) return BadValue(t, st);
      out->quality = v;
    } else if (t.flag == "--latency-budget") {
      st = int_value(&out->latency_budget_ms);
    } else if (t.flag == "--k") {
      st = int_value(&out->k_ms);
    } else if (t.flag == "--speculative") {
      out->speculative = true;
    } else if (t.flag == "--window-engine") {
      st = string_value(&out->window_engine);
    } else if (t.flag == "--per-key") {
      out->per_key = true;
    } else if (t.flag == "--lateness") {
      st = int_value(&out->lateness_ms);
    } else if (t.flag == "--threads") {
      st = int_value(&out->threads);
    } else if (t.flag == "--vshards") {
      st = int_value(&out->vshards);
    } else if (t.flag == "--rebalance") {
      out->rebalance = true;
    } else if (t.flag == "--pin-cores") {
      out->pin_cores = true;
    } else if (t.flag == "--mpsc") {
      st = int_value(&out->mpsc);
    } else if (t.flag == "--arena") {
      STREAMQ_RETURN_NOT_OK(want_value());
      if (t.value == "on") {
        out->arena = true;
      } else if (t.value == "off") {
        out->arena = false;
      } else {
        return Status::InvalidArgument("bad --arena: " + t.value +
                                       " (want on or off)");
      }
    } else if (t.flag == "--steal") {
      out->steal = true;
    } else if (t.flag == "--adaptive-batch") {
      out->adaptive_batch = true;
    } else if (t.flag == "--numa-arena") {
      out->numa_arena = true;
    } else if (t.flag == "--buffer-cap") {
      st = int_value(&out->buffer_cap);
    } else if (t.flag == "--shed") {
      st = string_value(&out->shed);
    } else if (t.flag == "--max-slack") {
      st = int_value(&out->max_slack_ms);
    } else if (t.flag == "--validate") {
      st = string_value(&out->validate);
    } else {
      if (unrecognized != nullptr) unrecognized->push_back(token);
      continue;
    }
    STREAMQ_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

Status SessionOptions::ParseArgs(int argc, char** argv, SessionOptions* out,
                                 std::vector<std::string>* unrecognized) {
  std::vector<std::string> tokens;
  tokens.reserve(argc > 0 ? static_cast<size_t>(argc - 1) : 0);
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  return ParseTokens(tokens, out, unrecognized);
}

const std::vector<std::string>& SessionOptions::KnownFlags() {
  static const std::vector<std::string>* flags = new std::vector<std::string>{
      "--name",      "--window",    "--slide",          "--agg",
      "--strategy",  "--speculative", "--window-engine", "--quality",
      "--latency-budget", "--k",
      "--per-key",   "--lateness",  "--threads",        "--vshards",
      "--rebalance", "--pin-cores", "--mpsc",           "--arena",
      "--steal",     "--adaptive-batch", "--numa-arena",
      "--buffer-cap", "--shed",     "--max-slack",      "--validate"};
  return *flags;
}

std::string SessionOptions::Describe() const {
  std::ostringstream out;
  const int64_t slide = slide_ms > 0 ? slide_ms : window_ms;
  out << name << ": sliding(" << window_ms << "ms/" << slide << "ms) " << agg;
  if (speculative) {
    out << " via speculative(q*=" << quality << ")";
  } else {
    out << " via " << strategy;
    if (strategy == "aq") out << "(q*=" << quality << ")";
    if (strategy == "lb") out << "(L<=" << latency_budget_ms << "ms)";
    if (strategy == "fixed" || strategy == "watermark") {
      out << "(k=" << k_ms << "ms)";
    }
  }
  if (window_engine != "hot") out << " [" << window_engine << " engine]";
  if (per_key) out << " per-key";
  if (threads > 0) {
    out << ", " << threads << " thread" << (threads > 1 ? "s" : "");
    if (vshards > 0) out << " x " << vshards << " vshards";
    if (mpsc > 0) out << ", " << mpsc << " producers";
    if (rebalance) out << ", rebalance";
    if (steal) out << ", steal";
    if (adaptive_batch) out << ", adaptive-batch";
    if (numa_arena) out << ", numa";
  }
  if (buffer_cap > 0) out << ", cap=" << buffer_cap << "(" << shed << ")";
  if (validate != "off") out << ", validate=" << validate;
  return out.str();
}

std::string SuggestFlag(const std::string& arg,
                        std::span<const std::string> extra_known) {
  const std::string flag = FlagPart(arg);
  std::string best;
  size_t best_dist = flag.size();  // Anything worse is no suggestion.
  auto consider = [&](const std::string& candidate) {
    const size_t d = EditDistance(flag, candidate);
    if (d < best_dist) {
      best_dist = d;
      best = candidate;
    }
  };
  for (const std::string& f : SessionOptions::KnownFlags()) consider(f);
  for (const std::string& f : extra_known) consider(f);
  // Only suggest near-misses: within 3 edits and at most half the flag.
  if (best_dist > 3 || best_dist * 2 > flag.size()) return "";
  return best;
}

}  // namespace streamq
