#ifndef STREAMQ_CORE_SESSION_OPTIONS_H_
#define STREAMQ_CORE_SESSION_OPTIONS_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/continuous_query.h"
#include "core/parallel_runner.h"

namespace streamq {

/// The one front door for configuring a streamq session: every runtime knob
/// the CLI, the network server's RegisterQuery frames, and the load
/// generator agree on lives here, with one validator and one flag parser
/// shared by all three. Construct with the chainable named setters (mirrors
/// DisorderHandlerSpec's style), or parse from `--flag=value` tokens; both
/// paths funnel through Validate(), which centralizes the cross-field rules
/// that used to be scattered across hand-rolled parsers (`--threads`
/// requires `--per-key`, `vshards >= threads`, cap/policy combos, ...).
///
/// Sessions are opened from a validated SessionOptions via
/// StreamSession::Open (core/stream_session.h).
struct SessionOptions {
  /// Session / query name (diagnostics and RunReport::query_name).
  std::string name = "session";

  /// Window shape: size and slide in milliseconds. slide == 0 means
  /// tumbling (slide = window).
  int64_t window_ms = 50;
  int64_t slide_ms = 0;

  /// Aggregate by name: count|sum|mean|min|max|var|stddev|median|
  /// quantile:<q>|distinct (see ParseAggregateSpec).
  std::string agg = "sum";

  /// Disorder handling strategy: aq|lb|fixed|mp|watermark|none.
  std::string strategy = "aq";

  /// Speculative emit-then-amend: skip the reorder buffer, emit provisional
  /// results at watermark time and patch them with amendment revisions.
  /// Replaces the buffered strategy (so combining it with a non-default
  /// --strategy is rejected) and requires an amend-capable window engine —
  /// --window-engine=legacy is rejected with it. Uses `quality` as the
  /// amend-rate target, like aq.
  bool speculative = false;

  /// Window engine: hot (flat store, the default), amend (out-of-order
  /// B-tree store), legacy (std::map reference).
  std::string window_engine = "hot";

  /// Strategy parameters (each read only by the matching strategy).
  double quality = 0.95;          // aq: result-quality target in (0, 1].
  int64_t latency_budget_ms = 10; // lb: mean buffering-latency budget.
  int64_t k_ms = 30;              // fixed/watermark: slack / bound.

  /// Per-key disorder handling (one buffer per key, merged watermark).
  bool per_key = false;

  /// Allowed lateness for revisions, milliseconds.
  int64_t lateness_ms = 0;

  /// Parallel runtime (threads > 0 selects the sharded keyed runner and
  /// requires per_key; everything below it requires threads > 0).
  int64_t threads = 0;
  int64_t vshards = 0;   // 0 = one per worker; else must be >= threads.
  bool rebalance = false;
  bool pin_cores = false;
  int64_t mpsc = 0;      // 0 = single producer; else >= 2 producer threads.
  bool arena = true;     // slab-arena batch memory on the threaded paths.
  bool steal = false;    // demand-driven work stealing (single source only).
  bool adaptive_batch = false;  // adapt feed batch size at run time.
  bool numa_arena = false;      // per-NUMA-node arena pools.

  /// Robustness / degradation.
  int64_t buffer_cap = 0;            // 0 = unbounded.
  std::string shed = "emit-early";   // emit-early|drop-newest|drop-oldest.
  int64_t max_slack_ms = 0;          // clamp on adaptive K; 0 = unbounded.
  std::string validate = "off";      // off|drop|strict ingest validation.

  /// --- Chainable named setters. ---
  SessionOptions& Name(std::string v);
  SessionOptions& Window(int64_t ms);
  SessionOptions& Slide(int64_t ms);
  SessionOptions& Aggregate(std::string v);
  SessionOptions& Strategy(std::string v);
  SessionOptions& QualityTarget(double v);
  SessionOptions& LatencyBudget(int64_t ms);
  SessionOptions& FixedK(int64_t ms);
  SessionOptions& Speculative(bool on = true);
  SessionOptions& Engine(std::string engine);
  SessionOptions& PerKey(bool on = true);
  SessionOptions& AllowedLateness(int64_t ms);
  SessionOptions& Threads(int64_t n);
  SessionOptions& VirtualShards(int64_t n);
  SessionOptions& Rebalance(bool on = true);
  SessionOptions& PinCores(bool on = true);
  SessionOptions& MpscProducers(int64_t n);
  SessionOptions& Arena(bool on);
  SessionOptions& Steal(bool on = true);
  SessionOptions& AdaptiveBatch(bool on = true);
  SessionOptions& NumaArena(bool on = true);
  SessionOptions& BufferCap(int64_t cap, std::string policy = "emit-early");
  SessionOptions& MaxSlack(int64_t ms);
  SessionOptions& ValidateIngest(std::string mode);

  /// Checks every field and every cross-field rule. A SessionOptions that
  /// passes Validate() is guaranteed to open (BuildQuery succeeds and the
  /// runner constraints hold).
  Status Validate() const;

  /// Builds the ContinuousQuery this options set describes (validates
  /// first). The arena switch is applied to the handler spec on threaded
  /// sessions, matching the runner's allocation mode.
  Result<ContinuousQuery> BuildQuery() const;

  /// Runner knobs for threaded sessions (threads > 0).
  ParallelOptions BuildParallelOptions() const;

  /// Serializes the non-default fields as `--flag=value` tokens — the same
  /// vocabulary ParseTokens consumes, so options round-trip through the
  /// wire (RegisterQuery payloads) and through argv unchanged.
  std::vector<std::string> ToTokens() const;

  /// ToTokens joined with single spaces (the RegisterQuery payload format).
  std::string Serialize() const;

  /// Parses a Serialize()d string. Unknown tokens are an error here (wire
  /// payloads have no caller to hand leftovers to).
  static Result<SessionOptions> Deserialize(const std::string& text);

  /// Parses the session flags out of `tokens` into `*out`. Tokens that are
  /// not session flags are appended to `*unrecognized` (never an error:
  /// callers with extra flags of their own — trace paths, fault injection,
  /// output knobs — handle them and then reject real strays, with
  /// SuggestFlag for the hint). Malformed values for known flags are an
  /// immediate InvalidArgument. Does not call Validate().
  static Status ParseTokens(std::span<const std::string> tokens,
                            SessionOptions* out,
                            std::vector<std::string>* unrecognized);

  /// argv adapter for ParseTokens (skips argv[0]).
  static Status ParseArgs(int argc, char** argv, SessionOptions* out,
                          std::vector<std::string>* unrecognized);

  /// Every flag name ParseTokens recognizes (for help text and the
  /// did-you-mean hint).
  static const std::vector<std::string>& KnownFlags();

  /// e.g. "session: sliding(50ms/50ms) sum via aq(q*=0.95), 4 threads".
  std::string Describe() const;
};

/// Closest known flag name to `arg` (by edit distance over the flag part,
/// ignoring any =value suffix), drawn from SessionOptions::KnownFlags()
/// plus `extra_known`; empty when nothing is plausibly close. Powers the
/// CLI's "unknown flag --thread (did you mean --threads?)" rejection.
std::string SuggestFlag(const std::string& arg,
                        std::span<const std::string> extra_known);

/// Strict numeric parsers shared by the flag front ends: the whole string
/// must parse (unlike atoll/atof, which silently return 0 on garbage).
Status ParseInt64Strict(const std::string& text, int64_t* out);
Status ParseDoubleStrict(const std::string& text, double* out);

/// Name <-> enum helpers centralized here so every front end agrees.
Status ParseShedPolicyName(const std::string& name, ShedPolicy* out);
Status ParseIngestValidationName(const std::string& name,
                                 IngestValidation* out);
Status ParseWindowEngineName(const std::string& name,
                             WindowedAggregation::Engine* out);

}  // namespace streamq

#endif  // STREAMQ_CORE_SESSION_OPTIONS_H_
