#include "core/metrics_observer.h"

#include <string>

#include "disorder/disorder_handler.h"
#include "stream/event.h"
#include "window/window.h"

namespace streamq {

namespace {

FixedHistogram::Options LatencyBuckets() {
  // 1us .. 100s of stream time, ~5% relative bucket width.
  FixedHistogram::Options o;
  o.min = 1.0;
  o.max = 1e8;
  o.buckets = 96;
  return o;
}

FixedHistogram::Options OccupancyBuckets() {
  // 1 .. 10M buffered tuples.
  FixedHistogram::Options o;
  o.min = 1.0;
  o.max = 1e7;
  o.buckets = 48;
  return o;
}

FixedHistogram::Options DepthBuckets() {
  // 1 .. 64k queued batches.
  FixedHistogram::Options o;
  o.min = 1.0;
  o.max = 65536.0;
  o.buckets = 32;
  return o;
}

}  // namespace

MetricsObserver::MetricsObserver(const MetricsRegistry::Options& options)
    : registry_(options),
      source_batches_(registry_.counter("streamq.source.batches_total")),
      source_events_(registry_.counter("streamq.source.events_total")),
      runs_(registry_.counter("streamq.runs_total")),
      run_wall_seconds_(registry_.gauge("streamq.run.wall_seconds")),
      run_throughput_eps_(registry_.gauge("streamq.run.throughput_eps")),
      handler_releases_(registry_.counter("streamq.handler.releases_total")),
      handler_released_(
          registry_.counter("streamq.handler.released_events_total")),
      buffer_occupancy_(registry_.histogram("streamq.handler.buffer_occupancy",
                                            OccupancyBuckets())),
      buffering_latency_us_(registry_.histogram(
          "streamq.handler.buffering_latency_us", LatencyBuckets())),
      watermark_us_(registry_.gauge("streamq.handler.watermark_us")),
      late_events_(registry_.counter("streamq.handler.late_events_total")),
      dropped_events_(
          registry_.counter("streamq.handler.dropped_events_total")),
      slack_us_(registry_.gauge("streamq.handler.slack_us")),
      slack_changes_(registry_.counter("streamq.handler.slack_changes_total")),
      shed_events_(registry_.counter("streamq.handler.shed_events_total")),
      force_released_events_(
          registry_.counter("streamq.handler.force_released_events_total")),
      rejected_events_(
          registry_.counter("streamq.ingest.rejected_events_total")),
      adaptations_(registry_.counter("streamq.handler.adaptations_total")),
      measured_quality_(registry_.gauge("streamq.handler.measured_quality")),
      setpoint_(registry_.gauge("streamq.handler.setpoint")),
      windows_fired_(registry_.counter("streamq.window.fired_total")),
      window_revisions_(registry_.counter("streamq.window.revisions_total")),
      window_amends_(registry_.counter("streamq.window.amends_total")),
      amend_rate_(registry_.gauge("streamq.window.amend_rate")),
      windows_purged_(registry_.counter("streamq.window.purged_total")),
      live_windows_(registry_.gauge("streamq.window.live_windows")),
      window_late_dropped_(
          registry_.counter("streamq.window.late_dropped_total")),
      queue_depth_(
          registry_.histogram("streamq.queue.depth", DepthBuckets())),
      backpressure_stalls_(
          registry_.counter("streamq.queue.backpressure_stalls_total")),
      shard_batches_(registry_.counter("streamq.shard.batches_total")),
      segments_stolen_(
          registry_.counter("streamq.scheduler.segments_stolen_total")),
      batch_size_(registry_.gauge("streamq.scheduler.batch_size")),
      batch_adaptations_(
          registry_.counter("streamq.scheduler.batch_adaptations_total")),
      arena_node_local_(
          registry_.counter("streamq.arena.node_local_batches_total")),
      arena_node_remote_(
          registry_.counter("streamq.arena.node_remote_batches_total")) {}

void MetricsObserver::OnSourceBatch(int64_t events) {
  source_batches_->Increment();
  source_events_->Increment(events);
}

void MetricsObserver::OnRunCompleted(int64_t events, double wall_seconds) {
  runs_->Increment();
  run_wall_seconds_->Set(wall_seconds);
  run_throughput_eps_->Set(
      wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds : 0.0);
}

void MetricsObserver::OnHandlerRelease(int64_t released, size_t buffered_after,
                                       TimestampUs watermark) {
  handler_releases_->Increment();
  handler_released_->Increment(released);
  buffer_occupancy_->Record(static_cast<double>(buffered_after));
  watermark_us_->Set(static_cast<double>(watermark));
}

void MetricsObserver::OnBufferingLatency(double latency_us) {
  buffering_latency_us_->Record(latency_us);
}

void MetricsObserver::OnLateEvent(const Event& e) {
  (void)e;
  late_events_->Increment();
}

void MetricsObserver::OnEventDropped(const Event& e) {
  (void)e;
  dropped_events_->Increment();
}

void MetricsObserver::OnSlackChanged(DurationUs old_k, DurationUs new_k) {
  (void)old_k;
  slack_changes_->Increment();
  slack_us_->Set(static_cast<double>(new_k));
}

void MetricsObserver::OnShed(int64_t count, ShedPolicy policy) {
  if (policy == ShedPolicy::kEmitEarly) {
    force_released_events_->Increment(count);
  } else {
    shed_events_->Increment(count);
  }
}

void MetricsObserver::OnEventRejected(const Event& e) {
  (void)e;
  rejected_events_->Increment();
}

void MetricsObserver::OnAdaptation(const AdaptationSample& sample) {
  adaptations_->Increment();
  measured_quality_->Set(sample.measured);
  setpoint_->Set(sample.setpoint);
  slack_us_->Set(static_cast<double>(sample.k));
}

void MetricsObserver::OnWindowFired(const WindowResult& result) {
  if (result.is_revision) {
    window_revisions_->Increment();
  } else {
    windows_fired_->Increment();
  }
}

void MetricsObserver::OnAmend(const WindowResult& result) {
  (void)result;
  window_amends_->Increment();
  // Fraction of all emissions that were amendments — the signal the
  // speculative controller trades against latency.
  const double amends = static_cast<double>(window_amends_->value());
  const double fired = static_cast<double>(windows_fired_->value());
  const double total = amends + fired;
  amend_rate_->Set(total > 0.0 ? amends / total : 0.0);
}

void MetricsObserver::OnWindowPurged(TimestampUs window_end,
                                     size_t live_windows) {
  (void)window_end;
  windows_purged_->Increment();
  live_windows_->Set(static_cast<double>(live_windows));
}

void MetricsObserver::OnWindowLateDropped(const Event& e) {
  (void)e;
  window_late_dropped_->Increment();
}

void MetricsObserver::OnQueueDepth(size_t worker, size_t depth) {
  queue_depth_->Record(static_cast<double>(depth));
  WorkerEntry(worker).queue_depth->Set(static_cast<double>(depth));
}

void MetricsObserver::OnBackpressureStall(size_t worker) {
  (void)worker;
  backpressure_stalls_->Increment();
}

void MetricsObserver::OnShardBatch(size_t shard, int64_t events) {
  shard_batches_->Increment();
  ShardCounter(shard)->Increment(events);
}

void MetricsObserver::OnSegmentSteal(size_t victim, size_t thief,
                                     size_t shard) {
  (void)shard;
  segments_stolen_->Increment();
  WorkerEntry(thief).segments_stolen->Increment();
  WorkerEntry(victim).segments_donated->Increment();
}

void MetricsObserver::OnBatchSizeAdapted(size_t producer, size_t batch) {
  (void)producer;
  batch_adaptations_->Increment();
  batch_size_->Set(static_cast<double>(batch));
}

void MetricsObserver::OnArenaNodeRelease(size_t worker, bool local) {
  (void)worker;
  (local ? arena_node_local_ : arena_node_remote_)->Increment();
}

Counter* MetricsObserver::ShardCounter(size_t shard) {
  std::lock_guard<std::mutex> lock(shard_mu_);
  if (shard >= shard_events_.size()) {
    shard_events_.resize(shard + 1, nullptr);
  }
  if (shard_events_[shard] == nullptr) {
    shard_events_[shard] = registry_.counter(
        "streamq.shard." + std::to_string(shard) + ".events_total");
  }
  return shard_events_[shard];
}

MetricsObserver::WorkerMetrics& MetricsObserver::WorkerEntry(size_t worker) {
  std::lock_guard<std::mutex> lock(shard_mu_);
  if (worker >= worker_metrics_.size()) {
    worker_metrics_.resize(worker + 1);
  }
  WorkerMetrics& m = worker_metrics_[worker];
  if (m.queue_depth == nullptr) {
    const std::string prefix = "streamq.worker." + std::to_string(worker);
    m.queue_depth = registry_.gauge(prefix + ".queue_depth");
    m.segments_stolen = registry_.counter(prefix + ".segments_stolen_total");
    m.segments_donated =
        registry_.counter(prefix + ".segments_donated_total");
  }
  return m;
}

}  // namespace streamq
