#ifndef STREAMQ_CORE_PIPELINE_OBSERVER_H_
#define STREAMQ_CORE_PIPELINE_OBSERVER_H_

#include <cstddef>
#include <cstdint>

#include "common/time.h"

namespace streamq {

struct Event;
struct WindowResult;
enum class ShedPolicy : int;

/// One adaptation step of an adaptive disorder handler (AqKSlack/LbKSlack),
/// reported through PipelineObserver::OnAdaptation. Scalar-only so the
/// observer layer has no dependency on concrete handler types.
struct AdaptationSample {
  int64_t tuple_index = 0;
  TimestampUs stream_time = 0;
  /// Smoothed measured quality (AqKSlack) or interval mean latency in us
  /// (LbKSlack) — whatever the handler's control loop measures.
  double measured = 0.0;
  /// Current quantile setpoint p.
  double setpoint = 0.0;
  /// Slack bound K after this step, in event-time microseconds.
  DurationUs k = 0;
  size_t buffer_size = 0;
};

/// Read-only instrumentation hooks along the pipeline:
///
///   EventSource -> DisorderHandler -> WindowedAggregation -> results
///                (+ parallel runners: queues, shards)
///
/// Every hook defaults to a no-op; implementations override what they need.
/// The contract that keeps observation free when unused and exact when
/// used:
///
///  * Zero-cost when off. Instrumented components hold a raw
///    `PipelineObserver*` that defaults to nullptr and guard every
///    notification with a pointer check — no virtual call happens in the
///    per-tuple hot loop unless an observer is installed.
///  * Results are never affected. Hooks receive const references and fire
///    after the observed action; an installed observer must not change any
///    emitted result, watermark, or stat (enforced by
///    observer_equivalence_test).
///  * Threading follows the pipeline. A single-threaded pipeline invokes
///    hooks on its one thread; the parallel runners invoke them from
///    driver and worker threads concurrently, so observers shared across a
///    parallel run must be thread-safe (MetricsObserver is).
class PipelineObserver {
 public:
  virtual ~PipelineObserver() = default;

  // --- Source / executor level. ---

  /// A batch of `events` arrivals was pulled from the source.
  virtual void OnSourceBatch(int64_t events) { (void)events; }

  /// A whole-stream run finished (QueryExecutor::Run or a parallel runner).
  virtual void OnRunCompleted(int64_t events, double wall_seconds) {
    (void)events;
    (void)wall_seconds;
  }

  // --- Disorder handler level. ---

  /// The handler released `released` tuples in one go and (possibly)
  /// advanced its output watermark; `buffered_after` is the buffer
  /// occupancy after the release.
  virtual void OnHandlerRelease(int64_t released, size_t buffered_after,
                                TimestampUs watermark) {
    (void)released;
    (void)buffered_after;
    (void)watermark;
  }

  /// Per released tuple: stream-time gap between arrival and release.
  virtual void OnBufferingLatency(double latency_us) { (void)latency_us; }

  /// A tuple arrived behind the output watermark and was diverted late.
  virtual void OnLateEvent(const Event& e) { (void)e; }

  /// A tuple was discarded entirely (beyond allowed lateness).
  virtual void OnEventDropped(const Event& e) { (void)e; }

  /// The slack bound K changed (adaptive handlers).
  virtual void OnSlackChanged(DurationUs old_k, DurationUs new_k) {
    (void)old_k;
    (void)new_k;
  }

  /// An adaptive handler completed one control step.
  virtual void OnAdaptation(const AdaptationSample& sample) { (void)sample; }

  /// The buffer cap forced `count` tuples out under `policy`: either
  /// discarded (kDropNewest/kDropOldest) or force-released early with the
  /// watermark advanced past them (kEmitEarly).
  virtual void OnShed(int64_t count, ShedPolicy policy) {
    (void)count;
    (void)policy;
  }

  /// Ingest validation rejected a malformed arrival before the handler.
  virtual void OnEventRejected(const Event& e) { (void)e; }

  // --- Window operator level. ---

  /// A window result was emitted (first firing or revision).
  virtual void OnWindowFired(const WindowResult& result) { (void)result; }

  /// A previously-emitted result was amended: `result` is the revision
  /// emission patching the earlier value (speculative emit-then-amend and
  /// allowed-lateness refinement). Fires in addition to OnWindowFired.
  virtual void OnAmend(const WindowResult& result) { (void)result; }

  /// Window state was purged; `live_windows` is the count remaining.
  virtual void OnWindowPurged(TimestampUs window_end, size_t live_windows) {
    (void)window_end;
    (void)live_windows;
  }

  /// A late tuple's window was already gone: a permanent quality loss.
  virtual void OnWindowLateDropped(const Event& e) { (void)e; }

  // --- Parallel runner level. ---

  /// Depth of `worker`'s input queue (in batches) sampled at publish time.
  virtual void OnQueueDepth(size_t worker, size_t depth) {
    (void)worker;
    (void)depth;
  }

  /// The driver found `worker`'s queue full and had to block.
  virtual void OnBackpressureStall(size_t worker) { (void)worker; }

  /// `events` tuples were routed to shard `shard` (ShardedKeyedRunner).
  virtual void OnShardBatch(size_t shard, int64_t events) {
    (void)shard;
    (void)events;
  }

  /// Starving worker `thief` pulled virtual shard `shard` from the
  /// backlogged worker `victim` at a watermark-aligned safe point
  /// (ShardedKeyedRunner with ParallelOptions::steal). Fires when the
  /// driver publishes the release marker, before the old owner drains.
  virtual void OnSegmentSteal(size_t victim, size_t thief, size_t shard) {
    (void)victim;
    (void)thief;
    (void)shard;
  }

  /// Producer `producer`'s adaptive batch controller completed a control
  /// step; `batch` is the new per-source feed size (the setpoint gauge).
  virtual void OnBatchSizeAdapted(size_t producer, size_t batch) {
    (void)producer;
    (void)batch;
  }

  /// Worker `worker` released a feed batch whose slab storage was minted
  /// on its own NUMA node (`local`) or a different node. Per batch, only
  /// on numa-arena runs.
  virtual void OnArenaNodeRelease(size_t worker, bool local) {
    (void)worker;
    (void)local;
  }
};

}  // namespace streamq

#endif  // STREAMQ_CORE_PIPELINE_OBSERVER_H_
