#ifndef STREAMQ_CORE_MPSC_QUEUE_H_
#define STREAMQ_CORE_MPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/time.h"
#include "core/queue_backoff.h"

namespace streamq {

/// Bounded multi-producer / single-consumer ring queue.
///
/// Vyukov-style: every slot carries a sequence counter. A producer claims a
/// slot by CAS-advancing `tail_`, writes the value, then publishes it by
/// bumping the slot's sequence (release); the consumer reads the sequence
/// (acquire) to know when a claimed slot is actually filled, so producers
/// never block each other past the one CAS, and there are no locks anywhere.
/// The single consumer owns `head_` exclusively. Capacity is rounded up to
/// a power of two (minimum 2: with one slot the "published" and "free next
/// lap" sequence values coincide and a full ring would look free) so index
/// wrapping is a mask.
///
/// Contract mirrors SpscQueue (the runners treat them interchangeably):
///
///  * Close() is sticky and one-way; any side may call it. After close,
///    pushes fail fast, while pops still drain everything *published*
///    before the close was observed. A push that already claimed its slot
///    when the close landed completes normally — the consumer waits for
///    claimed-but-unpublished slots before declaring the queue drained, so
///    nothing accepted is ever lost.
///  * Push() blocks with the shared spin→yield→sleep backoff; TryPushFor()
///    adds a lazy wall-clock deadline on top so callers can distinguish
///    "slow" from "gone".
///  * Pop() returns false only when the queue is closed *and* drained.
///
/// Use one consumer thread only. Any number of producers.
template <typename T>
class MpscQueue {
 public:
  explicit MpscQueue(size_t min_capacity)
      : capacity_(RoundUpPow2(min_capacity < 2 ? 2 : min_capacity)),
        mask_(capacity_ - 1),
        slots_(new Slot[capacity_]) {
    for (size_t i = 0; i < capacity_; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  size_t capacity() const { return capacity_; }

  /// Approximate occupancy (instrumentation only; racy by nature).
  size_t size() const {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

  /// Approximate emptiness (same caveats as size()).
  bool empty() const { return size() == 0; }

  /// Marks the queue closed (sticky; any thread may call it). Elements
  /// already published stay poppable.
  void Close() { closed_.store(true, std::memory_order_release); }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Producer side. Returns false when the ring is full or the queue is
  /// closed; `value` is only consumed (moved from) on success.
  bool TryPush(T&& value) {
    if (closed()) return false;
    size_t tail = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[tail & mask_];
      const size_t seq = slot.seq.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(tail);
      if (dif == 0) {
        // Slot is free at this lap; race other producers for it.
        if (tail_.compare_exchange_weak(tail, tail + 1,
                                        std::memory_order_relaxed)) {
          slot.value = std::move(value);
          slot.seq.store(tail + 1, std::memory_order_release);
          return true;
        }
        // CAS updated `tail` to the fresh value; retry with it.
      } else if (dif < 0) {
        return false;  // A full lap behind: the ring is full.
      } else {
        tail = tail_.load(std::memory_order_relaxed);  // Lost a race; reload.
      }
    }
  }

  /// Producer side; blocks (spin → yield → sleep) until the consumer makes
  /// room. Returns false — with `value` dropped — only if the queue closes
  /// while waiting.
  bool Push(T value) {
    QueueBackoff backoff;
    while (!TryPush(std::move(value))) {
      if (closed()) return false;
      backoff.Pause();
    }
    return true;
  }

  /// Producer side with a deadline: blocks at most ~`timeout_us` wall
  /// microseconds. Returns false on timeout or close; `value` is only
  /// consumed on success, so the caller can retry or requeue it.
  bool TryPushFor(T&& value, DurationUs timeout_us) {
    QueueBackoff backoff;
    TimestampUs deadline = 0;  // Resolved lazily: the fast path never reads
                               // the clock.
    while (!TryPush(std::move(value))) {
      if (closed()) return false;
      if (backoff.spins >= QueueBackoff::kSpinLimit) {
        const TimestampUs now = WallClockMicros();
        if (deadline == 0) {
          deadline = now + timeout_us;
        } else if (now >= deadline) {
          return false;
        }
      }
      backoff.Pause();
    }
    return true;
  }

  /// Consumer side. Returns false when no *published* element is ready
  /// (even if closed: close never discards published elements).
  bool TryPop(T* out) {
    const size_t head = head_.load(std::memory_order_relaxed);
    Slot& slot = slots_[head & mask_];
    const size_t seq = slot.seq.load(std::memory_order_acquire);
    if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(head + 1) < 0) {
      return false;  // Not yet published (empty, or claimed and in flight).
    }
    *out = std::move(slot.value);
    slot.seq.store(head + capacity_, std::memory_order_release);
    head_.store(head + 1, std::memory_order_relaxed);
    return true;
  }

  /// Consumer side; blocks (spin → yield → sleep) until an element is
  /// available. Returns false only when the queue is closed *and* drained —
  /// including slots claimed before the close but published after it, which
  /// are waited for, not dropped.
  bool Pop(T* out) {
    QueueBackoff backoff;
    while (!TryPop(out)) {
      if (closed() &&
          head_.load(std::memory_order_relaxed) ==
              tail_.load(std::memory_order_acquire)) {
        // No claimed slots remain; one final poll closes the races where a
        // producer published between our TryPop and the closed/tail reads.
        return TryPop(out);
      }
      backoff.Pause();
    }
    return true;
  }

 private:
  struct Slot {
    std::atomic<size_t> seq{0};
    T value{};
  };

  const size_t capacity_;
  const size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<size_t> head_{0};  // Next slot to pop (consumer).
  alignas(64) std::atomic<size_t> tail_{0};  // Next slot to claim (producers).
  alignas(64) std::atomic<bool> closed_{false};
};

}  // namespace streamq

#endif  // STREAMQ_CORE_MPSC_QUEUE_H_
