#include "core/stream_session.h"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace streamq {

namespace internal {

/// Bounded blocking MPMC event queue exposed as an EventSource: the bridge
/// between an incremental caller (network frames arriving on a connection
/// thread) and the pull-based sharded runner (whose driver thread calls
/// NextBatch). Push blocks under backpressure, so a slow tenant pipeline
/// throttles its own ingest instead of growing without bound.
class BlockingQueueSource : public EventSource {
 public:
  explicit BlockingQueueSource(size_t max_events) : max_events_(max_events) {}

  /// Appends a chunk of arrivals, blocking while the queue is full.
  void Push(std::span<const Event> events) {
    size_t offset = 0;
    std::unique_lock<std::mutex> lock(mu_);
    while (offset < events.size()) {
      not_full_.wait(lock,
                     [this] { return queue_.size() < max_events_ || closed_; });
      if (closed_) return;  // Finishing: drop the remainder silently.
      const size_t room = max_events_ - queue_.size();
      const size_t n = std::min(room, events.size() - offset);
      queue_.insert(queue_.end(), events.begin() + static_cast<ptrdiff_t>(offset),
                    events.begin() + static_cast<ptrdiff_t>(offset + n));
      offset += n;
      not_empty_.notify_all();
    }
  }

  /// No more pushes; NextBatch drains the remainder then reports
  /// end-of-stream.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool Next(Event* out) override {
    std::vector<Event> one;
    if (NextBatch(&one, 1) == 0) return false;
    *out = one.front();
    return true;
  }

  size_t NextBatch(std::vector<Event>* out, size_t max_events) override {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return !queue_.empty() || closed_; });
    const size_t n = std::min(max_events, queue_.size());
    out->insert(out->end(), queue_.begin(), queue_.begin() + static_cast<ptrdiff_t>(n));
    queue_.erase(queue_.begin(), queue_.begin() + static_cast<ptrdiff_t>(n));
    if (n > 0) not_full_.notify_all();
    return n;
  }

  /// One-shot stream; the runners never rewind their source.
  void Reset() override {}

  /// Current depth (events pushed but not yet pulled by the runner).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

 private:
  const size_t max_events_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Event> queue_;
  bool closed_ = false;
};

}  // namespace internal

namespace {

/// Queue bound for threaded-incremental sessions: enough to decouple the
/// connection thread from the runner's dips, small enough that one stalled
/// tenant pipeline caps its own memory (64k events ~= 2.5 MiB).
constexpr size_t kIncrementalQueueCap = 64 * 1024;

}  // namespace

Result<std::unique_ptr<StreamSession>> StreamSession::Open(
    const SessionOptions& options) {
  STREAMQ_ASSIGN_OR_RETURN(ContinuousQuery query, options.BuildQuery());
  return std::unique_ptr<StreamSession>(
      new StreamSession(options, std::move(query)));
}

StreamSession::StreamSession(SessionOptions options, ContinuousQuery query)
    : options_(std::move(options)), query_(std::move(query)) {
  if (threaded()) {
    runner_ = std::make_unique<ShardedKeyedRunner>(
        query_, static_cast<size_t>(options_.threads),
        options_.BuildParallelOptions());
  } else {
    executor_ = std::make_unique<QueryExecutor>(query_);
  }
}

StreamSession::~StreamSession() {
  if (!finished_ && (started_ || threaded())) Finish();
}

void StreamSession::SetObserver(PipelineObserver* observer) {
  observer_ = observer;
  if (executor_ != nullptr) executor_->SetObserver(observer);
  if (runner_ != nullptr) runner_->SetObserver(observer);
}

RunReport StreamSession::Run(EventSource* source) {
  if (started_ || ran_ || finished_) {
    RunReport report;
    report.query_name = query_.name;
    report.status = Status::FailedPrecondition(
        "StreamSession::Run on a session already driven");
    return report;
  }
  ran_ = true;
  finished_ = true;
  if (!threaded()) {
    final_report_ = executor_->Run(source);
  } else {
    final_report_ = RunSharded(source);
  }
  events_ingested_ =
      final_report_.events_processed + final_report_.events_rejected;
  return final_report_;
}

RunReport StreamSession::RunSharded(EventSource* source) {
  if (options_.mpsc > 0) {
    // Key-disjoint partitions: every key's events flow through exactly one
    // producer, which keeps per-key first emissions interleaving-invariant
    // (see ShardedKeyedRunner::RunMultiSource).
    const size_t parts = static_cast<size_t>(options_.mpsc);
    std::vector<std::vector<Event>> partitioned(parts);
    Event e;
    while (source->Next(&e)) {
      partitioned[ShardedKeyedRunner::ShardOf(e.key, parts)].push_back(e);
    }
    std::vector<VectorSource> part_sources;
    part_sources.reserve(parts);
    for (std::vector<Event>& part : partitioned) {
      part_sources.emplace_back(std::move(part));
    }
    std::vector<EventSource*> sources;
    sources.reserve(parts);
    for (VectorSource& s : part_sources) sources.push_back(&s);
    return runner_->RunMultiSource(sources);
  }
  return runner_->Run(source);
}

void StreamSession::EnsureStarted() {
  if (started_) return;
  started_ = true;
  if (!threaded()) return;
  queue_ = std::make_unique<internal::BlockingQueueSource>(
      kIncrementalQueueCap);
  driver_ = std::thread([this] {
    // The runner contains worker faults itself (non-OK report), so the
    // driver body is exception-free by contract.
    final_report_ = runner_->Run(queue_.get());
  });
}

Status StreamSession::Ingest(std::span<const Event> events) {
  if (ran_ || finished_) {
    return Status::FailedPrecondition("Ingest on a finished session");
  }
  EnsureStarted();
  events_ingested_ += static_cast<int64_t>(events.size());
  if (threaded()) {
    queue_->Push(events);
    return Status::OK();
  }
  executor_->FeedBatch(events);
  return executor_->status();
}

Status StreamSession::Heartbeat(TimestampUs event_time_bound,
                                TimestampUs stream_time) {
  if (ran_ || finished_) {
    return Status::FailedPrecondition("Heartbeat on a finished session");
  }
  if (threaded()) {
    return Status::Unimplemented(
        "heartbeats are per-shard on threaded sessions; drive them through "
        "the stream instead");
  }
  EnsureStarted();
  executor_->FeedHeartbeat(event_time_bound, stream_time);
  return executor_->status();
}

RunReport StreamSession::Snapshot() const {
  if (finished_) return final_report_;
  if (!threaded()) {
    if (executor_ == nullptr) return RunReport{};
    return executor_->Report();
  }
  RunReport report;
  report.query_name = query_.name;
  report.events_processed = events_ingested_;
  report.runtime_config = "pending";
  return report;
}

const RunReport& StreamSession::Finish() {
  if (finished_) return final_report_;
  finished_ = true;
  if (!threaded()) {
    executor_->Finish();
    final_report_ = executor_->Report();
    return final_report_;
  }
  EnsureStarted();  // Never-fed session still produces a (empty) report.
  queue_->Close();
  if (driver_.joinable()) driver_.join();
  return final_report_;
}

int64_t StreamSession::BufferedEvents() const {
  if (finished_) return 0;
  if (!threaded()) {
    if (executor_ == nullptr) return 0;
    return static_cast<int64_t>(executor_->handler_view().buffered());
  }
  return queue_ != nullptr ? static_cast<int64_t>(queue_->size()) : 0;
}

int64_t StreamSession::migrations() const {
  return runner_ != nullptr ? runner_->migrations() : 0;
}

int64_t StreamSession::steals() const {
  return runner_ != nullptr ? runner_->steals() : 0;
}

}  // namespace streamq
