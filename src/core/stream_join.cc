#include "core/stream_join.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace streamq {

/// Adapts the DisorderHandler EventSink protocol onto the join core.
class WindowedStreamJoin::SideSink : public EventSink {
 public:
  SideSink(WindowedStreamJoin* join, bool is_left)
      : join_(join), is_left_(is_left) {}

  void OnEvent(const Event& e) override {
    join_->OnOrderedEvent(e, is_left_);
  }
  void OnWatermark(TimestampUs watermark, TimestampUs stream_time) override {
    join_->OnSideWatermark(watermark, stream_time, is_left_);
  }
  void OnLateEvent(const Event&) override {
    if (is_left_) {
      ++join_->stats_.left_late_dropped;
    } else {
      ++join_->stats_.right_late_dropped;
    }
  }

 private:
  WindowedStreamJoin* join_;
  bool is_left_;
};

WindowedStreamJoin::WindowedStreamJoin(const Options& options, JoinSink* sink)
    : options_(options), sink_(sink) {
  STREAMQ_CHECK(sink != nullptr);
  STREAMQ_CHECK_GE(options.join_window, 0);
  left_handler_ = MakeDisorderHandlerOrDie(options.left_handler);
  right_handler_ = MakeDisorderHandlerOrDie(options.right_handler);
  left_sink_ = std::make_unique<SideSink>(this, /*is_left=*/true);
  right_sink_ = std::make_unique<SideSink>(this, /*is_left=*/false);
}

WindowedStreamJoin::~WindowedStreamJoin() = default;

void WindowedStreamJoin::FeedLeft(const Event& e) {
  ++stats_.left_in;
  left_handler_->OnEvent(e, left_sink_.get());
}

void WindowedStreamJoin::FeedRight(const Event& e) {
  ++stats_.right_in;
  right_handler_->OnEvent(e, right_sink_.get());
}

void WindowedStreamJoin::Finish() {
  left_handler_->Flush(left_sink_.get());
  right_handler_->Flush(right_sink_.get());
}

void WindowedStreamJoin::OnOrderedEvent(const Event& e, bool from_left) {
  SideStore& own = from_left ? left_store_ : right_store_;
  SideStore& other = from_left ? right_store_ : left_store_;

  const TimestampUs now =
      std::max(e.arrival_time,
               std::max(own.last_stream_time, other.last_stream_time));

  // Probe the opposite store: partners with |ts - e.ts| <= W.
  const auto it = other.by_key.find(e.key);
  if (it != other.by_key.end()) {
    const TimestampUs lo = e.event_time - options_.join_window;
    const TimestampUs hi = e.event_time + options_.join_window;
    for (const Event& partner : it->second) {
      if (partner.event_time > hi) break;  // Deque is event-time ordered.
      if (partner.event_time < lo) continue;
      JoinedPair pair;
      pair.key = e.key;
      pair.left = from_left ? e : partner;
      pair.right = from_left ? partner : e;
      pair.emit_stream_time = now;
      ++stats_.pairs_emitted;
      sink_->OnPair(pair);
    }
  }

  // Store for future partners from the other side.
  own.by_key[e.key].push_back(e);
  ++own.size;
  stats_.max_store_size =
      std::max(stats_.max_store_size, left_store_.size + right_store_.size);
}

void WindowedStreamJoin::OnSideWatermark(TimestampUs watermark,
                                         TimestampUs stream_time,
                                         bool from_left) {
  SideStore& own = from_left ? left_store_ : right_store_;
  SideStore& other = from_left ? right_store_ : left_store_;
  own.watermark = watermark;
  own.last_stream_time = std::max(own.last_stream_time, stream_time);
  // This side's watermark bounds the event times of its future output, so
  // the *other* store can evict everything older than watermark - W.
  Evict(&other, watermark);
}

void WindowedStreamJoin::Evict(SideStore* store,
                               TimestampUs other_watermark) {
  if (other_watermark == kMinTimestamp) return;
  const TimestampUs cutoff =
      (other_watermark < kMinTimestamp + options_.join_window)
          ? kMinTimestamp
          : other_watermark - options_.join_window;
  auto it = store->by_key.begin();
  while (it != store->by_key.end()) {
    auto& dq = it->second;
    while (!dq.empty() && dq.front().event_time < cutoff) {
      dq.pop_front();
      --store->size;
    }
    if (dq.empty()) {
      it = store->by_key.erase(it);
    } else {
      ++it;
    }
  }
}

int64_t OracleJoinCount(const std::vector<Event>& left,
                        const std::vector<Event>& right,
                        DurationUs join_window) {
  std::map<int64_t, std::vector<TimestampUs>> l_by_key, r_by_key;
  for (const Event& e : left) l_by_key[e.key].push_back(e.event_time);
  for (const Event& e : right) r_by_key[e.key].push_back(e.event_time);

  int64_t pairs = 0;
  for (auto& [key, ls] : l_by_key) {
    auto rit = r_by_key.find(key);
    if (rit == r_by_key.end()) continue;
    auto& rs = rit->second;
    std::sort(ls.begin(), ls.end());
    std::sort(rs.begin(), rs.end());
    size_t lo = 0, hi = 0;
    for (const TimestampUs tl : ls) {
      while (lo < rs.size() && rs[lo] < tl - join_window) ++lo;
      if (hi < lo) hi = lo;
      while (hi < rs.size() && rs[hi] <= tl + join_window) ++hi;
      pairs += static_cast<int64_t>(hi - lo);
    }
  }
  return pairs;
}

}  // namespace streamq
