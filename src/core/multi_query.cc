#include "core/multi_query.h"

#include "common/logging.h"
#include "common/time.h"

namespace streamq {

namespace {

/// Fans one handler's output out to several window operators.
class FanOutSink : public EventSink {
 public:
  explicit FanOutSink(std::vector<EventSink*> sinks)
      : sinks_(std::move(sinks)) {}

  void OnEvent(const Event& e) override {
    for (EventSink* s : sinks_) s->OnEvent(e);
  }
  void OnEvents(std::span<const Event> events) override {
    for (EventSink* s : sinks_) s->OnEvents(events);
  }
  void OnWatermark(TimestampUs watermark, TimestampUs stream_time) override {
    for (EventSink* s : sinks_) s->OnWatermark(watermark, stream_time);
  }
  void OnLateEvent(const Event& e) override {
    for (EventSink* s : sinks_) s->OnLateEvent(e);
  }

 private:
  std::vector<EventSink*> sinks_;
};

}  // namespace

void MultiQueryRunner::AddQuery(const ContinuousQuery& query) {
  STREAMQ_CHECK_OK(query.Validate());
  queries_.push_back(query);
}

DisorderHandlerSpec MultiQueryRunner::SharedHandlerSpec(
    const std::vector<ContinuousQuery>& queries) {
  STREAMQ_CHECK(!queries.empty());
  const DisorderHandlerSpec* strictest = nullptr;
  for (const ContinuousQuery& q : queries) {
    if (q.handler.kind != DisorderHandlerSpec::Kind::kAqKSlack) continue;
    if (strictest == nullptr ||
        q.handler.aq.target_quality > strictest->aq.target_quality) {
      strictest = &q.handler;
    }
  }
  return strictest != nullptr ? *strictest : queries.front().handler;
}

std::vector<RunReport> MultiQueryRunner::Run(EventSource* source) {
  STREAMQ_CHECK(!queries_.empty()) << "no queries added";
  return plan_ == Plan::kIndependent ? RunIndependent(source)
                                     : RunShared(source);
}

std::vector<RunReport> MultiQueryRunner::RunIndependent(EventSource* source) {
  std::vector<std::unique_ptr<QueryExecutor>> executors;
  executors.reserve(queries_.size());
  for (const ContinuousQuery& q : queries_) {
    executors.push_back(std::make_unique<QueryExecutor>(q));
  }
  const TimestampUs start = WallClockMicros();
  std::vector<Event> chunk;
  chunk.reserve(QueryExecutor::kDefaultRunBatchSize);
  while (source->NextBatch(&chunk, QueryExecutor::kDefaultRunBatchSize) > 0) {
    for (auto& exec : executors) exec->FeedBatch(chunk);
    chunk.clear();
  }
  for (auto& exec : executors) exec->Finish();
  const double wall_seconds = ToSeconds(WallClockMicros() - start);

  std::vector<RunReport> reports;
  reports.reserve(executors.size());
  for (auto& exec : executors) {
    RunReport r = exec->Report();
    // The executors were driven externally; charge the shared loop's wall
    // time to every report (Feed/Finish do not time themselves).
    r.wall_seconds = wall_seconds;
    r.throughput_eps = wall_seconds > 0.0
                           ? static_cast<double>(r.events_processed) /
                                 wall_seconds
                           : 0.0;
    reports.push_back(std::move(r));
  }
  return reports;
}

std::vector<RunReport> MultiQueryRunner::RunShared(EventSource* source) {
  auto handler = MakeDisorderHandlerOrDie(SharedHandlerSpec(queries_));

  std::vector<std::unique_ptr<CollectingResultSink>> result_sinks;
  std::vector<std::unique_ptr<WindowedAggregation>> window_ops;
  std::vector<EventSink*> fan_targets;
  for (const ContinuousQuery& q : queries_) {
    result_sinks.push_back(std::make_unique<CollectingResultSink>());
    window_ops.push_back(std::make_unique<WindowedAggregation>(
        q.window, result_sinks.back().get()));
    fan_targets.push_back(window_ops.back().get());
  }
  FanOutSink fan(fan_targets);

  const TimestampUs start = WallClockMicros();
  int64_t events = 0;
  std::vector<Event> chunk;
  chunk.reserve(QueryExecutor::kDefaultRunBatchSize);
  while (source->NextBatch(&chunk, QueryExecutor::kDefaultRunBatchSize) > 0) {
    events += static_cast<int64_t>(chunk.size());
    handler->OnBatch(chunk, &fan);
    chunk.clear();
  }
  handler->Flush(&fan);
  const double wall_seconds = ToSeconds(WallClockMicros() - start);

  std::vector<RunReport> reports;
  reports.reserve(queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    RunReport r;
    r.query_name = queries_[i].name;
    r.events_processed = events;
    r.wall_seconds = wall_seconds;
    r.throughput_eps =
        wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds : 0.0;
    r.handler_stats = handler->stats();
    r.window_stats = window_ops[i]->stats();
    r.results = result_sinks[i]->results;
    r.final_slack = handler->current_slack();
    reports.push_back(std::move(r));
  }
  return reports;
}

}  // namespace streamq
