#ifndef STREAMQ_NET_CLIENT_H_
#define STREAMQ_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "core/session_options.h"
#include "net/frame.h"
#include "net/socket.h"
#include "stream/event.h"

namespace streamq {

/// Blocking request/reply client for the streamq frame protocol. One
/// connection, one outstanding request at a time — exactly the discipline
/// the load generator and tests need. Not thread-safe.
class StreamQClient {
 public:
  /// Connects to the server on 127.0.0.1:`port`. `reply_timeout` bounds
  /// every round trip so a wedged server fails the call instead of hanging
  /// the caller.
  static Result<std::unique_ptr<StreamQClient>> Connect(
      uint16_t port, DurationUs reply_timeout = Seconds(30));

  /// Registers `tenant` with a session built from `options` — serialized
  /// into the same `--flag=value` text the CLI parses.
  Status RegisterQuery(uint32_t tenant, const SessionOptions& options);

  /// Sends a batch of events to `tenant`'s session.
  Status Ingest(uint32_t tenant, std::span<const Event> events);

  /// Source heartbeat for sequential sessions.
  Status Heartbeat(uint32_t tenant, TimestampUs event_time_bound,
                   TimestampUs stream_time);

  /// Live accounting snapshot for `tenant`.
  Result<SnapshotStats> Snapshot(uint32_t tenant);

  /// Finishes `tenant`'s session and returns its final sealed report
  /// stats; the tenant id is free afterwards.
  Result<SnapshotStats> Unregister(uint32_t tenant);

  /// Server-wide metrics snapshot, rendered as Prometheus exposition text
  /// (kMetricsFormatPrometheus) or JSON (kMetricsFormatJson). Covers every
  /// tenant: sessions report into one shared registry.
  Result<std::string> Metrics(uint8_t format = kMetricsFormatPrometheus);

  /// Asks the server process to shut down.
  Status Shutdown();

  /// Sends one fully-formed request frame and waits for the reply. kError
  /// replies come back as the decoded Status.
  Result<Frame> RoundTrip(const Frame& request);

  /// Test hook: writes raw bytes on the connection (malformed-frame
  /// injection) and waits for one reply frame.
  Result<Frame> SendRawAndAwaitReply(std::string_view bytes);

 private:
  StreamQClient(Socket sock, DurationUs reply_timeout)
      : sock_(std::move(sock)), reply_timeout_(reply_timeout) {}

  /// Reads until one complete frame (or timeout / EOF / decode error).
  Result<Frame> AwaitReply();

  Socket sock_;
  DurationUs reply_timeout_;
  FrameDecoder decoder_;
};

}  // namespace streamq

#endif  // STREAMQ_NET_CLIENT_H_
