#ifndef STREAMQ_NET_CLIENT_H_
#define STREAMQ_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "core/session_options.h"
#include "net/chaos.h"
#include "net/frame.h"
#include "net/socket.h"
#include "stream/event.h"

namespace streamq {

/// Reply to a sequenced request (kSeqIngest / kSeqHeartbeat): either an ack
/// (possibly for a replayed frame the server deduped) or an admission-
/// control throttle carrying the server's retry-after.
struct SeqReply {
  bool throttled = false;
  uint32_t retry_after_ms = 0;
  uint64_t acked_seq = 0;
  bool replayed = false;
};

/// Blocking request/reply client for the streamq frame protocol. One
/// connection, one outstanding request at a time — exactly the discipline
/// the load generator and tests need. Not thread-safe.
///
/// The connection is fail-fast: any transport error, decode failure, or
/// mid-frame reply timeout marks the stream broken, and every later round
/// trip fails with IOError immediately. There is no resync point inside a
/// corrupt length-prefixed stream, so the only safe recovery is a new
/// connection — which is the retry layer's job (net/retry.h), not this
/// class's.
class StreamQClient {
 public:
  /// Connects to the server on 127.0.0.1:`port`. `reply_timeout` bounds
  /// every round trip so a wedged server fails the call instead of hanging
  /// the caller. A non-null `chaos` wraps the connection in seeded
  /// transport faults (must outlive the client).
  static Result<std::unique_ptr<StreamQClient>> Connect(
      uint16_t port, DurationUs reply_timeout = Seconds(30),
      ChaosInjector* chaos = nullptr);

  /// Registers `tenant` with a session built from `options` — serialized
  /// into the same `--flag=value` text the CLI parses.
  Status RegisterQuery(uint32_t tenant, const SessionOptions& options);

  /// Sends a batch of events to `tenant`'s session.
  Status Ingest(uint32_t tenant, std::span<const Event> events);

  /// Source heartbeat for sequential sessions.
  Status Heartbeat(uint32_t tenant, TimestampUs event_time_bound,
                   TimestampUs stream_time);

  /// Idempotent open/resume of a sequenced session (kOpenSession). `token`
  /// is client-minted and nonzero; re-opening with the same token resumes
  /// and returns the server's epoch and last-acked seq.
  Result<SessionGrant> OpenSession(uint32_t tenant, uint64_t token,
                                   const SessionOptions& options);

  /// Sequence-numbered idempotent ingest: the server applies the batch at
  /// most once per `seq` and acks, or throttles without applying.
  Result<SeqReply> SeqIngest(uint32_t tenant, uint64_t token, uint64_t seq,
                             std::span<const Event> events);

  /// Sequence-numbered heartbeat.
  Result<SeqReply> SeqHeartbeat(uint32_t tenant, uint64_t token, uint64_t seq,
                                TimestampUs event_time_bound,
                                TimestampUs stream_time);

  /// Live accounting snapshot for `tenant`.
  Result<SnapshotStats> Snapshot(uint32_t tenant);

  /// Finishes `tenant`'s session and returns its final sealed report
  /// stats; the tenant id is free afterwards.
  Result<SnapshotStats> Unregister(uint32_t tenant);

  /// Server-wide metrics snapshot, rendered as Prometheus exposition text
  /// (kMetricsFormatPrometheus) or JSON (kMetricsFormatJson). Covers every
  /// tenant: sessions report into one shared registry.
  Result<std::string> Metrics(uint8_t format = kMetricsFormatPrometheus);

  /// Asks the server process to shut down.
  Status Shutdown();

  /// Sends one fully-formed request frame and waits for the reply. kError
  /// replies come back as the decoded Status.
  Result<Frame> RoundTrip(const Frame& request);

  /// Test hook: writes raw bytes on the connection (malformed-frame
  /// injection) and waits for one reply frame.
  Result<Frame> SendRawAndAwaitReply(std::string_view bytes);

  /// True once the stream is unusable (transport error, decode failure, or
  /// a reply timeout that struck mid-frame). A broken client only ever
  /// returns IOError; reconnect to recover.
  bool broken() const { return broken_; }

 private:
  StreamQClient(ChaosTransport sock, DurationUs reply_timeout)
      : sock_(std::move(sock)), reply_timeout_(reply_timeout) {}

  /// Reads until one complete frame (or timeout / EOF / decode error).
  /// With `expected_tenant` >= 0, a reply whose header does not echo that
  /// tenant id fails the connection: the tenant field rides outside every
  /// payload integrity hash, so a mismatch means a corrupted header
  /// misrouted the request (or mangled the reply) — either way the frame
  /// may have been handled as another tenant and only a fresh
  /// conversation is trustworthy.
  Result<Frame> AwaitReply(int64_t expected_tenant = -1);

  /// Decodes a sequenced reply: kAck or kOverloaded.
  Result<SeqReply> SeqRoundTrip(const Frame& request);

  ChaosTransport sock_;
  DurationUs reply_timeout_;
  FrameDecoder decoder_;
  bool broken_ = false;
};

}  // namespace streamq

#endif  // STREAMQ_NET_CLIENT_H_
