#ifndef STREAMQ_NET_FRAME_H_
#define STREAMQ_NET_FRAME_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/executor.h"
#include "stream/event.h"

namespace streamq {

/// The streamq wire protocol: length-prefixed binary frames over a byte
/// stream (localhost TCP in practice; the codec itself is transport-free
/// and fully testable in memory). All integers are little-endian.
///
/// Frame layout (header is kFrameHeaderBytes = 12):
///
///   offset  size  field
///   0       2     magic   'S' 'Q' — resync guard: a client that sends
///                 garbage fails fast instead of being misparsed
///   2       1     type    FrameType
///   3       1     flags   reserved, must be 0
///   4       4     tenant  tenant id the frame addresses (0 for kShutdown)
///   8       4     length  payload byte count (bounded; oversized frames
///                 are a protocol error, not an allocation)
///   12      len   payload type-specific body, see below
///
/// Payloads:
///   kRegisterQuery  SessionOptions::Serialize() text — the same
///                   `--flag=value` vocabulary the CLI parses, so every
///                   front door shares one parser and one validator
///   kIngest         u32 count, then count * 40-byte events
///                   (id, key, event_time, arrival_time: i64; value: f64)
///   kHeartbeat      i64 event_time_bound, i64 stream_time
///   kSnapshot       empty
///   kUnregister     empty
///   kShutdown       empty
///   kMetricsRequest u8 format: 0 = Prometheus text, 1 = JSON. Server-wide
///                   (tenant 0): the reply snapshots the server's shared
///                   metrics registry across all tenants
///   kOpenSession    u64 client token (nonzero), then SessionOptions text.
///                   Idempotent open/resume for the sequenced protocol: a
///                   fresh tenant is registered under the token; re-opening
///                   with the same token resumes (epoch += 1) and returns
///                   the last acked sequence number so a reconnecting
///                   client knows where the server really is. A different
///                   token is rejected — the token doubles as the guard
///                   against misdirected frames.
///   kSeqIngest      sequenced envelope (u64 token, u64 seq, u64 FNV-1a of
///                   the body) wrapping a kIngest event-batch body
///   kSeqHeartbeat   sequenced envelope wrapping a kHeartbeat body
///   kOk             empty
///   kError          u32 status code, u32 message length, message bytes
///   kReport         SnapshotStats binary body (see EncodeSnapshotStats)
///   kMetricsReply   rendered metrics text (Prometheus or JSON per request)
///   kSessionAccepted u64 token, u32 epoch, u64 last_acked_seq
///   kAck            u64 acked seq (echo of the request), u8 replayed —
///                   1 when the frame was a duplicate the server suppressed
///   kOverloaded     u32 retry-after ms, u32 message length, message bytes.
///                   Admission control saying "not now": the frame was NOT
///                   applied and the same seq must be retried after the
///                   given backoff
enum class FrameType : uint8_t {
  // Requests.
  kRegisterQuery = 1,
  kIngest = 2,
  kHeartbeat = 3,
  kSnapshot = 4,
  kUnregister = 5,
  kShutdown = 6,
  kMetricsRequest = 7,
  kOpenSession = 8,
  kSeqIngest = 9,
  kSeqHeartbeat = 10,
  // Replies.
  kOk = 16,
  kError = 17,
  kReport = 18,
  kMetricsReply = 19,
  kSessionAccepted = 20,
  kAck = 21,
  kOverloaded = 22,
};

/// kMetricsRequest payload formats.
inline constexpr uint8_t kMetricsFormatPrometheus = 0;
inline constexpr uint8_t kMetricsFormatJson = 1;

/// True for the frame types a client may send.
bool IsRequestFrameType(FrameType type);
/// True for the frame types a server may send back.
bool IsReplyFrameType(FrameType type);

inline constexpr size_t kFrameHeaderBytes = 12;
inline constexpr char kFrameMagic0 = 'S';
inline constexpr char kFrameMagic1 = 'Q';

/// Default bound on payload size. Generous for event batches (16 MiB is
/// ~400k events) while keeping a garbage length prefix from looking like a
/// gigabyte allocation.
inline constexpr size_t kDefaultMaxFramePayload = 16u << 20;

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kOk;
  uint32_t tenant = 0;
  std::string payload;

  bool operator==(const Frame& other) const = default;
};

/// Serializes `frame` onto `*out` (appends; callers batch frames into one
/// send).
void AppendFrame(const Frame& frame, std::string* out);

/// Incremental frame decoder for a byte stream: feed whatever recv()
/// returned, pull zero or more complete frames. A malformed stream (bad
/// magic, nonzero flags, unknown type, oversized length) is unrecoverable —
/// once Next returns an error the decoder stays failed and the connection
/// must be dropped (there is no resync point inside a corrupt
/// length-prefixed stream).
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kDefaultMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Appends raw bytes from the transport.
  void Feed(std::string_view bytes);

  /// If a complete, well-formed frame is buffered, fills `*out`, sets
  /// `*have_frame` and returns OK. With only a partial frame buffered,
  /// returns OK with `*have_frame` false. Malformed input returns
  /// InvalidArgument (sticky).
  Status Next(Frame* out, bool* have_frame);

  /// Bytes buffered but not yet consumed (diagnostics).
  size_t buffered_bytes() const { return buffer_.size() - pos_; }

 private:
  const size_t max_payload_;
  std::string buffer_;
  size_t pos_ = 0;
  Status failed_;
};

// ----------------------------------------------------------- payload codecs

/// Little-endian primitive appenders.
void AppendU32(uint32_t v, std::string* out);
void AppendU64(uint64_t v, std::string* out);
void AppendI64(int64_t v, std::string* out);
void AppendF64(double v, std::string* out);

/// Sequential little-endian reader over a payload; every getter fails with
/// OutOfRange once the payload is exhausted.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : data_(payload) {}

  Status ReadU8(uint8_t* out);
  Status ReadU32(uint32_t* out);
  Status ReadU64(uint64_t* out);
  Status ReadI64(int64_t* out);
  Status ReadF64(double* out);
  Status ReadBytes(size_t n, std::string* out);

  /// OK iff every byte has been consumed (trailing garbage is a protocol
  /// error).
  Status ExpectEnd() const;

  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Event-batch payload: u32 count + count fixed 40-byte records.
void EncodeEventBatch(std::span<const Event> events, std::string* out);
Status DecodeEventBatch(std::string_view payload, std::vector<Event>* out);

/// Error payload: status code + message.
void EncodeError(const Status& status, std::string* out);
Status DecodeError(std::string_view payload);

// ------------------------------------------------- resilience protocol

/// FNV-1a over raw bytes: the integrity hash carried by sequenced frames.
/// The chaos transport can flip payload bytes that still decode cleanly
/// (an event value, a sequence number) — without an end-to-end hash such a
/// frame would be applied and silently break checksum identity. Passing
/// `seed` (a previous HashBytes result) chains the stream across
/// non-contiguous spans.
uint64_t HashBytes(std::string_view bytes,
                   uint64_t seed = 1469598103934665603ull);

/// kOpenSession payload: client-minted nonzero token + options text.
void EncodeOpenSession(uint64_t token, const std::string& options_text,
                       std::string* out);
Status DecodeOpenSession(std::string_view payload, uint64_t* token,
                         std::string* options_text);

/// kSessionAccepted payload: what the server knows about the session.
/// `epoch` counts opens (1 on first registration, +1 per resume);
/// `last_acked_seq` is where a resuming client should resync its window.
struct SessionGrant {
  uint64_t token = 0;
  uint32_t epoch = 0;
  uint64_t last_acked_seq = 0;

  bool operator==(const SessionGrant& other) const = default;
};

void EncodeSessionGrant(const SessionGrant& grant, std::string* out);
Status DecodeSessionGrant(std::string_view payload, SessionGrant* out);

/// Sequenced request envelope: token + monotone seq + FNV-1a of the body,
/// then the body (a kIngest or kHeartbeat payload). Decode verifies the
/// hash and returns the body view into `payload`.
struct SeqEnvelope {
  uint64_t token = 0;
  uint64_t seq = 0;
};

void AppendSeqEnvelope(uint64_t token, uint64_t seq, std::string_view body,
                       std::string* out);
Status DecodeSeqEnvelope(std::string_view payload, SeqEnvelope* out,
                         std::string_view* body);

/// kAck payload.
struct AckInfo {
  uint64_t acked_seq = 0;
  uint8_t replayed = 0;

  bool operator==(const AckInfo& other) const = default;
};

void EncodeAck(const AckInfo& ack, std::string* out);
Status DecodeAck(std::string_view payload, AckInfo* out);

/// kOverloaded payload: admission control's "not now".
struct OverloadInfo {
  uint32_t retry_after_ms = 0;
  std::string message;

  bool operator==(const OverloadInfo& other) const = default;
};

void EncodeOverloaded(const OverloadInfo& info, std::string* out);
Status DecodeOverloaded(std::string_view payload, OverloadInfo* out);

/// Per-tenant accounting snapshot crossing the wire in kReport frames:
/// the counters behind the `in == out + late + shed` identity, the result
/// checksum (byte-equality witness across runs), and summary latency.
struct SnapshotStats {
  uint8_t finished = 0;
  StatusCode status_code = StatusCode::kOk;
  std::string status_message;
  int64_t events_ingested = 0;
  int64_t events_processed = 0;   // == handler events_in
  int64_t events_rejected = 0;
  int64_t events_out = 0;
  int64_t events_late = 0;
  int64_t events_dropped = 0;     // subset of late
  int64_t events_shed = 0;
  int64_t events_force_released = 0;
  int64_t max_buffer_size = 0;
  int64_t results = 0;
  uint64_t result_checksum = 0;
  double mean_buffering_latency_us = 0.0;
  int64_t final_slack_us = 0;
  /// Scheduler accounting from threaded sessions (v2 fields): shards the
  /// rebalancer migrated and segments starving workers stole. Zero on
  /// single-threaded sessions.
  int64_t shard_migrations = 0;
  int64_t segments_stolen = 0;
  /// Resilience accounting (v3 fields); all zero for plain (non-sequenced)
  /// tenants. `frames_replayed` counts sequenced frames that arrived with
  /// seq <= last acked, `frames_deduped` the ones suppressed without
  /// touching the session — equal by construction (the no-double-apply
  /// invariant the chaos soak gates on). `frames_throttled` counts
  /// kOverloaded replies from admission control.
  uint32_t epoch = 0;
  uint64_t last_acked_seq = 0;
  int64_t frames_replayed = 0;
  int64_t frames_deduped = 0;
  int64_t frames_throttled = 0;

  /// The conservation identity every finished session must satisfy:
  /// in == out + late + shed (drops are a subset of late; force-released
  /// tuples are a subset of out).
  bool AccountingIdentityHolds() const {
    return events_processed == events_out + events_late + events_shed;
  }

  bool operator==(const SnapshotStats& other) const = default;

  std::string ToString() const;
};

void EncodeSnapshotStats(const SnapshotStats& stats, std::string* out);
Status DecodeSnapshotStats(std::string_view payload, SnapshotStats* out);

/// Order-sensitive FNV-style fold over a report's results — the same
/// checksum the R-F19..F22 benches gate on. Two runs with equal checksums
/// emitted byte-identical result sequences (window bounds, key, value at
/// fixed precision, tuple count).
uint64_t ResultChecksum(const RunReport& report);

/// Builds the wire snapshot for a report (`ingested` from the session,
/// `finished` per lifecycle).
SnapshotStats SnapshotFromReport(const RunReport& report, int64_t ingested,
                                 bool finished);

}  // namespace streamq

#endif  // STREAMQ_NET_FRAME_H_
