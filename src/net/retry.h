#ifndef STREAMQ_NET_RETRY_H_
#define STREAMQ_NET_RETRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"
#include "net/client.h"

namespace streamq {

/// Bounded exponential backoff with seeded jitter and an overall per-op
/// deadline — the schedule ResilientClient runs every operation under.
struct RetryPolicy {
  /// Attempts per operation (1 = no retry). Throttles (kOverloaded) do not
  /// consume attempts — the server asked us to wait, nothing failed — but
  /// they do burn deadline.
  int max_attempts = 8;

  /// First backoff; doubles (times `multiplier`) per retry up to
  /// `max_backoff`.
  DurationUs initial_backoff = Millis(2);
  DurationUs max_backoff = Millis(250);
  double multiplier = 2.0;

  /// Uniform jitter fraction: each sleep is scaled by a seeded draw from
  /// [1 - jitter, 1 + jitter], decorrelating clients that fail together.
  double jitter = 0.25;

  /// Overall wall-clock budget per operation, retries and throttle waits
  /// included.
  DurationUs deadline = Seconds(60);

  /// Seeds the jitter stream and the client-minted session tokens.
  uint64_t seed = 42;

  Status Validate() const;
};

/// Client-side resilience accounting (the loadgen CSV taxonomy).
struct ResilienceStats {
  /// Public operations completed (Open/Ingest/Heartbeat/...).
  int64_t ops = 0;
  /// Failed attempts that were retried.
  int64_t retries = 0;
  /// Connections re-established after a transport fault.
  int64_t reconnects = 0;
  /// Acks flagged replayed=1 — retransmissions the server deduped.
  int64_t replayed_acks = 0;
  /// kOverloaded replies honored (slept the server's retry-after).
  int64_t throttled = 0;
  /// Total wall time spent sleeping between attempts.
  DurationUs backoff_total_us = 0;

  std::string ToString() const;
};

/// A StreamQClient wrapped in automatic reconnect + idempotent sequenced
/// replay: every Ingest/Heartbeat carries a monotone per-tenant sequence
/// number, so a retry after an ambiguous failure (reset mid-round-trip —
/// did the server apply the batch or not?) is safe: the server dedups
/// anything it already acked, and the final per-tenant checksums are
/// byte-identical to a fault-free run.
///
/// On reconnect the client re-opens every open tenant with its original
/// token (kOpenSession is idempotent by token; the server bumps the epoch
/// and reports its last-acked seq), then resends the in-flight frame
/// blindly — dedup, not client-side bookkeeping, is the correctness
/// mechanism, which keeps the replay machinery on the hot path where the
/// chaos soak can gate on it.
///
/// Not thread-safe: one ResilientClient per driving thread, like the
/// blocking client underneath.
class ResilientClient {
 public:
  /// `chaos` (optional, not owned) injects transport faults into every
  /// connection this client establishes — including reconnects.
  static Result<std::unique_ptr<ResilientClient>> Connect(
      uint16_t port, RetryPolicy policy = {}, ChaosInjector* chaos = nullptr,
      DurationUs reply_timeout = Seconds(30));

  /// Opens tenant's sequenced session (client-minted token; idempotent
  /// across retries and reconnects).
  Status Open(uint32_t tenant, const SessionOptions& options);

  /// Sequence-numbered idempotent ingest with retry/reconnect/backoff.
  Status Ingest(uint32_t tenant, std::span<const Event> events);

  /// Sequence-numbered heartbeat with retry/reconnect/backoff.
  Status Heartbeat(uint32_t tenant, TimestampUs event_time_bound,
                   TimestampUs stream_time);

  /// Read-only snapshot with retry.
  Result<SnapshotStats> Snapshot(uint32_t tenant);

  /// Finishes and unregisters the tenant (with retry; NOT idempotent — a
  /// replayed unregister whose first try succeeded returns NotFound, so
  /// prefer a clean control path for final collection when chaos is on).
  Result<SnapshotStats> Unregister(uint32_t tenant);

  const ResilienceStats& stats() const { return stats_; }

  /// Server-reported epoch for an open tenant (1 = never resumed).
  uint32_t epoch(uint32_t tenant) const;

 private:
  struct TenantState {
    uint64_t token = 0;
    uint32_t epoch = 0;
    uint64_t next_seq = 1;
    bool open = false;
    SessionOptions options;
  };

  ResilientClient(uint16_t port, RetryPolicy policy, ChaosInjector* chaos,
                  DurationUs reply_timeout);

  /// (Re)connects if the current connection is absent or broken, then
  /// re-opens every open tenant (resume by token).
  Status EnsureConnected();

  /// The retry loop every public operation runs under. The op lambda
  /// returns OK when done; on a server throttle it sets *throttle_ms >= 0
  /// and returns non-OK (the wait is server-directed and consumes no
  /// attempt). Everything else is classified by Retryable().
  Status Execute(const std::function<Status(StreamQClient*, int64_t*)>& op);

  /// Sleeps `backoff` scaled by seeded jitter, growing `*backoff` for the
  /// next round; charges stats_.
  void Backoff(DurationUs* backoff);

  /// True when `code` is worth retrying over a fresh connection.
  static bool Retryable(StatusCode code);

  uint16_t port_;
  RetryPolicy policy_;
  ChaosInjector* chaos_;
  DurationUs reply_timeout_;
  std::unique_ptr<StreamQClient> client_;
  Rng rng_;
  bool ever_connected_ = false;
  std::map<uint32_t, TenantState> tenants_;
  ResilienceStats stats_;
};

}  // namespace streamq

#endif  // STREAMQ_NET_RETRY_H_
