#include "net/server.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace streamq {

namespace {

/// Effective token-bucket capacity: an unset burst defaults to one second
/// of refill.
double EffectiveBurst(const ServerOptions& options) {
  return options.quota_burst > 0 ? options.quota_burst
                                 : options.quota_rate_eps;
}

}  // namespace

StreamQServer::StreamQServer(ServerOptions options)
    : options_(options) {}

StreamQServer::~StreamQServer() { Stop(); }

Status StreamQServer::Start() {
  if (running_) return Status::FailedPrecondition("server already running");
  STREAMQ_RETURN_NOT_OK(listener_.Listen(options_.port));
  stop_ = false;
  running_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void StreamQServer::WaitForShutdownRequest() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_ || stop_; });
}

void StreamQServer::BeginDrain() {
  if (!running_ || draining_.exchange(true)) return;
  // New connections stop here; established ones keep their loops — the
  // drain contract is "finish what's in flight", not "cut the wire".
  listener_.Close();
}

void StreamQServer::Drain(DurationUs grace) {
  BeginDrain();
  const TimestampUs deadline = WallClockMicros() + grace;
  while (live_connections_.load(std::memory_order_acquire) > 0 &&
         WallClockMicros() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Stop() flush-finishes every still-registered session before the
  // registry is torn down, which is the "flush live sessions" half.
  Stop();
}

void StreamQServer::Stop() {
  if (!running_.exchange(false)) return;
  stop_ = true;
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_cv_.notify_all();
  }
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Unblock every connection thread sitting in Recv, then join.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& conn : connections_) conn->sock.ShutdownReadWrite();
  }
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections.swap(connections_);
  }
  for (auto& conn : connections) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  // Seal any sessions their tenants never unregistered, so driver threads
  // are joined before the registry is torn down.
  std::map<uint32_t, std::shared_ptr<Tenant>> tenants;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    tenants.swap(tenants_);
  }
  for (auto& [id, tenant] : tenants) {
    std::lock_guard<std::mutex> lock(tenant->mu);
    if (tenant->session && !tenant->session->finished()) {
      tenant->session->Finish();
    }
  }
}

ServerStats StreamQServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

size_t StreamQServer::active_tenants() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return tenants_.size();
}

void StreamQServer::AcceptLoop() {
  // Accept-failure decisions draw from their own decorrelated chaos stream
  // so the per-connection transports replay identically regardless of how
  // many accepts were faulted.
  Rng accept_rng(options_.chaos != nullptr ? options_.chaos->MintStreamSeed()
                                           : 0);
  while (!stop_) {
    Result<Socket> accepted = listener_.Accept(options_.accept_poll);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kResourceExhausted) {
        continue;  // Poll timeout: re-check the stop flag.
      }
      break;  // Listener closed (Stop) or fatal.
    }
    Socket accepted_sock = std::move(accepted).value();
    if (options_.chaos != nullptr && options_.chaos->armed() &&
        options_.chaos->spec().Enabled()) {
      // Injected accept failure: the handshake succeeded, then the server
      // dropped the connection on the floor — the client's next round trip
      // fails and its retry layer reconnects.
      if (accept_rng.NextBool(options_.chaos->spec().accept_close_prob)) {
        options_.chaos->CountAcceptClose();
        accepted_sock.Close();
        continue;
      }
    }
    auto conn = std::make_unique<Connection>();
    conn->sock = ChaosTransport(std::move(accepted_sock), options_.chaos);
    const Status timeout_set = conn->sock.SetRecvTimeout(options_.recv_poll);
    if (!timeout_set.ok()) {
      // Without the timeout this connection's read loop cannot poll the
      // stop flag, so Stop() latency degrades to connection close. Worth a
      // log line, not worth refusing the connection.
      STREAMQ_LOG(Warning) << "connection recv timeout not set: "
                           << timeout_set.ToString();
    }
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections_accepted;
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stop_) break;
    live_connections_.fetch_add(1, std::memory_order_acq_rel);
    conn->thread = std::thread([this, raw] { ConnectionLoop(raw); });
    connections_.push_back(std::move(conn));
  }
}

void StreamQServer::ConnectionLoop(Connection* conn) {
  /// Drain() watches this count to know when in-flight conversations are
  /// done; decrement on every exit path.
  struct LiveGuard {
    std::atomic<int64_t>* count;
    ~LiveGuard() { count->fetch_sub(1, std::memory_order_acq_rel); }
  } live_guard{&live_connections_};
  FrameDecoder decoder(options_.max_frame_payload);
  char buf[64 * 1024];
  while (!stop_) {
    Result<size_t> received = conn->sock.Recv(buf, sizeof(buf));
    if (!received.ok()) {
      if (received.status().code() == StatusCode::kResourceExhausted) {
        continue;  // Recv timeout: re-check the stop flag.
      }
      return;  // Connection error.
    }
    if (received.value() == 0) return;  // Orderly EOF.
    decoder.Feed(std::string_view(buf, received.value()));
    for (;;) {
      Frame request;
      bool have_frame = false;
      const Status framing = decoder.Next(&request, &have_frame);
      if (!framing.ok()) {
        // Framing is unrecoverable: one error reply, then drop the
        // connection. No session was touched, so other tenants (and even
        // this tenant's session) are unaffected.
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.protocol_errors;
        }
        std::string wire;
        AppendFrame(ErrorReply(0, framing, /*protocol=*/false), &wire);
        (void)conn->sock.SendAll(wire.data(), wire.size());
        return;
      }
      if (!have_frame) break;
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.frames_processed;
      }
      if (!IsRequestFrameType(request.type)) {
        // Reply-typed frames from a client are nonsense; treat like framing
        // corruption and drop the connection after answering.
        std::string wire;
        AppendFrame(ErrorReply(request.tenant,
                               Status::InvalidArgument(
                                   "reply-typed frame sent by client"),
                               /*protocol=*/true),
                    &wire);
        (void)conn->sock.SendAll(wire.data(), wire.size());
        return;
      }
      const Frame reply = HandleFrame(request);
      std::string wire;
      AppendFrame(reply, &wire);
      if (!conn->sock.SendAll(wire.data(), wire.size()).ok()) return;
      if (request.type == FrameType::kShutdown) {
        std::lock_guard<std::mutex> lock(shutdown_mu_);
        shutdown_requested_ = true;
        shutdown_cv_.notify_all();
        return;
      }
    }
  }
}

Frame StreamQServer::HandleFrame(const Frame& request) {
  switch (request.type) {
    case FrameType::kRegisterQuery:
      return HandleRegister(request);
    case FrameType::kIngest:
      return HandleIngest(request);
    case FrameType::kHeartbeat:
      return HandleHeartbeat(request);
    case FrameType::kSnapshot:
      return HandleSnapshot(request, /*unregister=*/false);
    case FrameType::kUnregister:
      return HandleSnapshot(request, /*unregister=*/true);
    case FrameType::kMetricsRequest:
      return HandleMetrics(request);
    case FrameType::kOpenSession:
      return HandleOpenSession(request);
    case FrameType::kSeqIngest:
    case FrameType::kSeqHeartbeat:
      return HandleSequenced(request);
    case FrameType::kShutdown:
      return Frame{FrameType::kOk, request.tenant, {}};
    default:
      return ErrorReply(request.tenant,
                        Status::InvalidArgument("unhandled frame type"),
                        /*protocol=*/true);
  }
}

Frame StreamQServer::HandleRegister(const Frame& request) {
  if (draining_) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.sessions_rejected;
    }
    return ErrorReply(request.tenant,
                      Status::FailedPrecondition(
                          "server draining; not accepting new sessions"),
                      /*protocol=*/false);
  }
  Result<SessionOptions> options = SessionOptions::Deserialize(request.payload);
  if (!options.ok()) {
    return ErrorReply(request.tenant, options.status(), /*protocol=*/true);
  }
  Result<std::unique_ptr<StreamSession>> session =
      StreamSession::Open(options.value());
  if (!session.ok()) {
    return ErrorReply(request.tenant, session.status(), /*protocol=*/true);
  }
  auto tenant = std::make_shared<Tenant>();
  tenant->session = std::move(session).value();
  // Every tenant reports into the one server-wide registry, so a metrics
  // scrape sees the whole server. Installed before any ingest can race.
  tenant->session->SetObserver(&metrics_);
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    // Session quota is enforced under the same lock as the insert, so a
    // registration race cannot overshoot it.
    if (options_.quota_max_sessions > 0 &&
        static_cast<int64_t>(tenants_.size()) >= options_.quota_max_sessions) {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.sessions_rejected;
      ++stats_.frames_throttled;
      metrics_.registry().counter("streamq.server.frames_throttled")
          ->Increment();
      Frame reply{FrameType::kOverloaded, request.tenant, {}};
      EncodeOverloaded(
          OverloadInfo{options_.retry_after_ms,
                       "session quota: " +
                           std::to_string(options_.quota_max_sessions) +
                           " tenants already registered"},
          &reply.payload);
      return reply;
    }
    const auto [it, inserted] = tenants_.emplace(request.tenant, tenant);
    (void)it;
    if (!inserted) {
      return ErrorReply(
          request.tenant,
          Status::AlreadyExists("tenant " + std::to_string(request.tenant) +
                                " already registered"),
          /*protocol=*/true);
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.tenants_registered;
  }
  return Frame{FrameType::kOk, request.tenant, {}};
}

Frame StreamQServer::HandleOpenSession(const Frame& request) {
  uint64_t token = 0;
  std::string options_text;
  const Status decoded = DecodeOpenSession(request.payload, &token,
                                           &options_text);
  if (!decoded.ok()) {
    if (decoded.code() == StatusCode::kIOError) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.integrity_failures;
    }
    return ErrorReply(request.tenant, decoded, /*protocol=*/true);
  }
  // Resume path: the tenant already exists. Idempotent by token — a client
  // whose first open succeeded but whose grant was lost on the wire simply
  // opens again and lands here.
  if (std::shared_ptr<Tenant> tenant = FindTenant(request.tenant)) {
    std::lock_guard<std::mutex> lock(tenant->mu);
    if (tenant->token == 0) {
      return ErrorReply(request.tenant,
                        Status::FailedPrecondition(
                            "tenant " + std::to_string(request.tenant) +
                            " is registered without the sequenced protocol"),
                        /*protocol=*/false);
    }
    if (tenant->token != token) {
      return ErrorReply(request.tenant,
                        Status::FailedPrecondition("session token mismatch"),
                        /*protocol=*/false);
    }
    if (tenant->session->finished()) {
      return ErrorReply(request.tenant,
                        Status::FailedPrecondition("session finished"),
                        /*protocol=*/false);
    }
    ++tenant->epoch;
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.sessions_resumed;
    }
    metrics_.registry().counter("streamq.server.sessions_resumed")
        ->Increment();
    Frame reply{FrameType::kSessionAccepted, request.tenant, {}};
    EncodeSessionGrant(
        SessionGrant{token, tenant->epoch, tenant->last_acked_seq},
        &reply.payload);
    return reply;
  }
  // Fresh open: identical admission to kRegisterQuery, then sequenced
  // state is armed (token bucket starts full).
  Frame registered = HandleRegister(
      Frame{FrameType::kRegisterQuery, request.tenant, options_text});
  if (registered.type != FrameType::kOk) return registered;
  std::shared_ptr<Tenant> tenant = FindTenant(request.tenant);
  if (!tenant) {
    // Racing unregister between the two steps; the client retries.
    return ErrorReply(request.tenant,
                      Status::NotFound("tenant vanished during open"),
                      /*protocol=*/false);
  }
  Frame reply{FrameType::kSessionAccepted, request.tenant, {}};
  {
    std::lock_guard<std::mutex> lock(tenant->mu);
    tenant->token = token;
    tenant->epoch = 1;
    tenant->bucket_tokens = EffectiveBurst(options_);
    tenant->bucket_refill_us = WallClockMicros();
    EncodeSessionGrant(SessionGrant{token, tenant->epoch, 0}, &reply.payload);
  }
  return reply;
}

Frame StreamQServer::OverloadedReply(uint32_t tenant, uint32_t retry_after_ms,
                                     const std::string& why, Tenant* state) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.frames_throttled;
  }
  if (state != nullptr) ++state->frames_throttled;
  metrics_.registry().counter("streamq.server.frames_throttled")->Increment();
  Frame reply{FrameType::kOverloaded, tenant, {}};
  EncodeOverloaded(OverloadInfo{retry_after_ms, why}, &reply.payload);
  return reply;
}

Status StreamQServer::AdmitBatch(Tenant* tenant, int64_t count,
                                 uint32_t* retry_after_ms) {
  if (options_.quota_rate_eps > 0) {
    const TimestampUs now = WallClockMicros();
    const double elapsed_s =
        static_cast<double>(now - tenant->bucket_refill_us) / 1e6;
    const double burst = EffectiveBurst(options_);
    tenant->bucket_tokens = std::min(
        burst, tenant->bucket_tokens + elapsed_s * options_.quota_rate_eps);
    tenant->bucket_refill_us = now;
    if (static_cast<double>(count) > tenant->bucket_tokens) {
      const double deficit =
          static_cast<double>(count) - tenant->bucket_tokens;
      const double wait_ms = deficit / options_.quota_rate_eps * 1e3;
      *retry_after_ms =
          static_cast<uint32_t>(std::max(1.0, std::min(wait_ms, 60e3)));
      return Status::ResourceExhausted(
          "rate quota: batch of " + std::to_string(count) + " exceeds " +
          std::to_string(static_cast<int64_t>(tenant->bucket_tokens)) +
          " available tokens");
    }
    tenant->bucket_tokens -= static_cast<double>(count);
  }
  if (options_.quota_max_buffered > 0) {
    const int64_t buffered = tenant->session->BufferedEvents();
    if (buffered + count > options_.quota_max_buffered) {
      *retry_after_ms = options_.retry_after_ms;
      return Status::ResourceExhausted(
          "buffer quota: " + std::to_string(buffered) + " buffered + " +
          std::to_string(count) + " would exceed " +
          std::to_string(options_.quota_max_buffered));
    }
  }
  return Status::OK();
}

Frame StreamQServer::HandleSequenced(const Frame& request) {
  SeqEnvelope env;
  std::string_view body;
  const Status decoded = DecodeSeqEnvelope(request.payload, &env, &body);
  if (!decoded.ok()) {
    if (decoded.code() == StatusCode::kIOError) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.integrity_failures;
      metrics_.registry().counter("streamq.server.integrity_failures")
          ->Increment();
    }
    return ErrorReply(request.tenant, decoded, /*protocol=*/true);
  }
  std::shared_ptr<Tenant> tenant = FindTenant(request.tenant);
  if (!tenant) {
    return ErrorReply(request.tenant,
                      Status::NotFound("tenant " +
                                       std::to_string(request.tenant) +
                                       " not registered"),
                      /*protocol=*/true);
  }
  std::lock_guard<std::mutex> lock(tenant->mu);
  if (tenant->token == 0) {
    return ErrorReply(request.tenant,
                      Status::FailedPrecondition(
                          "tenant is not using the sequenced protocol"),
                      /*protocol=*/false);
  }
  if (env.token != tenant->token) {
    // Also catches a corrupted tenant id steering the frame into another
    // live tenant: 64-bit tokens do not collide.
    return ErrorReply(request.tenant,
                      Status::FailedPrecondition("session token mismatch"),
                      /*protocol=*/false);
  }
  if (env.seq == 0) {
    return ErrorReply(request.tenant,
                      Status::InvalidArgument("sequence numbers start at 1"),
                      /*protocol=*/true);
  }
  if (env.seq <= tenant->last_acked_seq) {
    // Replay of a frame already applied (its ack was lost, or the client
    // resent blindly after reconnect): suppress, count, re-ack. This is
    // the idempotence that keeps retried runs byte-identical.
    ++tenant->frames_replayed;
    ++tenant->frames_deduped;
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.frames_replayed;
      ++stats_.frames_deduped;
    }
    metrics_.registry().counter("streamq.server.frames_replayed")
        ->Increment();
    metrics_.registry().counter("streamq.server.frames_deduped")->Increment();
    Frame reply{FrameType::kAck, request.tenant, {}};
    EncodeAck(AckInfo{env.seq, 1}, &reply.payload);
    return reply;
  }
  if (env.seq != tenant->last_acked_seq + 1) {
    return ErrorReply(
        request.tenant,
        Status::FailedPrecondition(
            "sequence gap: got " + std::to_string(env.seq) +
            " after acked " + std::to_string(tenant->last_acked_seq)),
        /*protocol=*/false);
  }
  if (tenant->session->finished()) {
    return ErrorReply(request.tenant,
                      Status::FailedPrecondition("session finished"),
                      /*protocol=*/false);
  }
  if (request.type == FrameType::kSeqIngest) {
    std::vector<Event> events;
    const Status batch = DecodeEventBatch(body, &events);
    if (!batch.ok()) {
      // Seq not consumed: the client resends the same number after fixing
      // (or reconnecting through) whatever mangled the batch.
      return ErrorReply(request.tenant, batch, /*protocol=*/true);
    }
    uint32_t retry_after_ms = 0;
    const Status admitted =
        AdmitBatch(tenant.get(), static_cast<int64_t>(events.size()),
                   &retry_after_ms);
    if (!admitted.ok()) {
      return OverloadedReply(request.tenant, retry_after_ms,
                             admitted.message(), tenant.get());
    }
    const Status ingest = tenant->session->Ingest(events);
    tenant->last_acked_seq = env.seq;
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      stats_.events_ingested += static_cast<int64_t>(events.size());
    }
    if (!ingest.ok()) {
      // Applied-but-unhappy (e.g. strict validation): the seq advanced —
      // a retry would double-apply — so the client learns the sticky
      // status and must not resend this frame.
      return ErrorReply(request.tenant, ingest, /*protocol=*/false);
    }
  } else {
    PayloadReader reader(body);
    int64_t bound = 0, stream_time = 0;
    Status parsed = reader.ReadI64(&bound);
    if (parsed.ok()) parsed = reader.ReadI64(&stream_time);
    if (parsed.ok()) parsed = reader.ExpectEnd();
    if (!parsed.ok()) {
      return ErrorReply(request.tenant, parsed, /*protocol=*/true);
    }
    const Status beat = tenant->session->Heartbeat(bound, stream_time);
    tenant->last_acked_seq = env.seq;
    if (!beat.ok()) {
      return ErrorReply(request.tenant, beat, /*protocol=*/false);
    }
  }
  Frame reply{FrameType::kAck, request.tenant, {}};
  EncodeAck(AckInfo{env.seq, 0}, &reply.payload);
  return reply;
}

Frame StreamQServer::HandleIngest(const Frame& request) {
  std::shared_ptr<Tenant> tenant = FindTenant(request.tenant);
  if (!tenant) {
    return ErrorReply(request.tenant,
                      Status::NotFound("tenant " +
                                       std::to_string(request.tenant) +
                                       " not registered"),
                      /*protocol=*/true);
  }
  std::vector<Event> events;
  const Status decoded = DecodeEventBatch(request.payload, &events);
  if (!decoded.ok()) {
    // Malformed batch: rejected before it reaches the session, so the
    // tenant's accounting is untouched.
    return ErrorReply(request.tenant, decoded, /*protocol=*/true);
  }
  Status ingest;
  {
    std::lock_guard<std::mutex> lock(tenant->mu);
    if (tenant->session->finished()) {
      return ErrorReply(request.tenant,
                        Status::FailedPrecondition("session finished"),
                        /*protocol=*/true);
    }
    ingest = tenant->session->Ingest(events);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.events_ingested += static_cast<int64_t>(events.size());
  }
  if (!ingest.ok()) {
    // Application-level (e.g. strict validation): the batch was accounted,
    // the session keeps running, and the client learns the sticky status.
    return ErrorReply(request.tenant, ingest, /*protocol=*/false);
  }
  return Frame{FrameType::kOk, request.tenant, {}};
}

Frame StreamQServer::HandleHeartbeat(const Frame& request) {
  std::shared_ptr<Tenant> tenant = FindTenant(request.tenant);
  if (!tenant) {
    return ErrorReply(request.tenant,
                      Status::NotFound("tenant " +
                                       std::to_string(request.tenant) +
                                       " not registered"),
                      /*protocol=*/true);
  }
  PayloadReader reader(request.payload);
  int64_t bound = 0;
  int64_t stream_time = 0;
  Status parsed = reader.ReadI64(&bound);
  if (parsed.ok()) parsed = reader.ReadI64(&stream_time);
  if (parsed.ok()) parsed = reader.ExpectEnd();
  if (!parsed.ok()) {
    return ErrorReply(request.tenant, parsed, /*protocol=*/true);
  }
  Status beat;
  {
    std::lock_guard<std::mutex> lock(tenant->mu);
    if (tenant->session->finished()) {
      return ErrorReply(request.tenant,
                        Status::FailedPrecondition("session finished"),
                        /*protocol=*/true);
    }
    beat = tenant->session->Heartbeat(bound, stream_time);
  }
  if (!beat.ok()) return ErrorReply(request.tenant, beat, /*protocol=*/false);
  return Frame{FrameType::kOk, request.tenant, {}};
}

Frame StreamQServer::HandleSnapshot(const Frame& request, bool unregister) {
  std::shared_ptr<Tenant> tenant = FindTenant(request.tenant);
  if (!tenant) {
    return ErrorReply(request.tenant,
                      Status::NotFound("tenant " +
                                       std::to_string(request.tenant) +
                                       " not registered"),
                      /*protocol=*/true);
  }
  if (!request.payload.empty()) {
    return ErrorReply(request.tenant,
                      Status::InvalidArgument("unexpected payload"),
                      /*protocol=*/true);
  }
  SnapshotStats stats;
  {
    std::lock_guard<std::mutex> lock(tenant->mu);
    StreamSession* session = tenant->session.get();
    if (unregister && !session->finished()) session->Finish();
    stats = SnapshotFromReport(session->Snapshot(),
                               session->events_ingested(),
                               session->finished());
    stats.epoch = tenant->epoch;
    stats.last_acked_seq = tenant->last_acked_seq;
    stats.frames_replayed = tenant->frames_replayed;
    stats.frames_deduped = tenant->frames_deduped;
    stats.frames_throttled = tenant->frames_throttled;
  }
  if (unregister) {
    {
      std::lock_guard<std::mutex> lock(registry_mu_);
      tenants_.erase(request.tenant);
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.tenants_unregistered;
  }
  Frame reply{FrameType::kReport, request.tenant, {}};
  EncodeSnapshotStats(stats, &reply.payload);
  return reply;
}

Frame StreamQServer::HandleMetrics(const Frame& request) {
  PayloadReader reader(request.payload);
  uint8_t format = 0;
  Status parsed = reader.ReadU8(&format);
  if (parsed.ok()) parsed = reader.ExpectEnd();
  if (!parsed.ok()) {
    return ErrorReply(request.tenant, parsed, /*protocol=*/true);
  }
  if (format != kMetricsFormatPrometheus && format != kMetricsFormatJson) {
    return ErrorReply(request.tenant,
                      Status::InvalidArgument(
                          "unknown metrics format " + std::to_string(format) +
                          " (0 = prometheus, 1 = json)"),
                      /*protocol=*/true);
  }
  const MetricsSnapshot snapshot = metrics_.Snapshot();
  Frame reply{FrameType::kMetricsReply, request.tenant, {}};
  reply.payload = format == kMetricsFormatJson ? snapshot.ToJson()
                                               : snapshot.ToPrometheusText();
  return reply;
}

Frame StreamQServer::ErrorReply(uint32_t tenant, const Status& status,
                                bool protocol) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (protocol) {
      ++stats_.protocol_errors;
    } else {
      ++stats_.application_errors;
    }
  }
  Frame reply{FrameType::kError, tenant, {}};
  EncodeError(status, &reply.payload);
  return reply;
}

std::shared_ptr<StreamQServer::Tenant> StreamQServer::FindTenant(uint32_t id) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  const auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second;
}

}  // namespace streamq
