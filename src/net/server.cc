#include "net/server.h"

#include <utility>

namespace streamq {

StreamQServer::StreamQServer(ServerOptions options)
    : options_(options) {}

StreamQServer::~StreamQServer() { Stop(); }

Status StreamQServer::Start() {
  if (running_) return Status::FailedPrecondition("server already running");
  STREAMQ_RETURN_NOT_OK(listener_.Listen(options_.port));
  stop_ = false;
  running_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void StreamQServer::WaitForShutdownRequest() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_ || stop_; });
}

void StreamQServer::Stop() {
  if (!running_.exchange(false)) return;
  stop_ = true;
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_cv_.notify_all();
  }
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Unblock every connection thread sitting in Recv, then join.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& conn : connections_) conn->sock.ShutdownReadWrite();
  }
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections.swap(connections_);
  }
  for (auto& conn : connections) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  // Seal any sessions their tenants never unregistered, so driver threads
  // are joined before the registry is torn down.
  std::map<uint32_t, std::shared_ptr<Tenant>> tenants;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    tenants.swap(tenants_);
  }
  for (auto& [id, tenant] : tenants) {
    std::lock_guard<std::mutex> lock(tenant->mu);
    if (tenant->session && !tenant->session->finished()) {
      tenant->session->Finish();
    }
  }
}

ServerStats StreamQServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

size_t StreamQServer::active_tenants() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return tenants_.size();
}

void StreamQServer::AcceptLoop() {
  while (!stop_) {
    Result<Socket> accepted = listener_.Accept(options_.accept_poll);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kResourceExhausted) {
        continue;  // Poll timeout: re-check the stop flag.
      }
      break;  // Listener closed (Stop) or fatal.
    }
    auto conn = std::make_unique<Connection>();
    conn->sock = std::move(accepted).value();
    (void)conn->sock.SetRecvTimeout(options_.recv_poll);
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections_accepted;
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stop_) break;
    conn->thread = std::thread([this, raw] { ConnectionLoop(raw); });
    connections_.push_back(std::move(conn));
  }
}

void StreamQServer::ConnectionLoop(Connection* conn) {
  FrameDecoder decoder(options_.max_frame_payload);
  char buf[64 * 1024];
  while (!stop_) {
    Result<size_t> received = conn->sock.Recv(buf, sizeof(buf));
    if (!received.ok()) {
      if (received.status().code() == StatusCode::kResourceExhausted) {
        continue;  // Recv timeout: re-check the stop flag.
      }
      return;  // Connection error.
    }
    if (received.value() == 0) return;  // Orderly EOF.
    decoder.Feed(std::string_view(buf, received.value()));
    for (;;) {
      Frame request;
      bool have_frame = false;
      const Status framing = decoder.Next(&request, &have_frame);
      if (!framing.ok()) {
        // Framing is unrecoverable: one error reply, then drop the
        // connection. No session was touched, so other tenants (and even
        // this tenant's session) are unaffected.
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.protocol_errors;
        }
        std::string wire;
        AppendFrame(ErrorReply(0, framing, /*protocol=*/false), &wire);
        (void)conn->sock.SendAll(wire.data(), wire.size());
        return;
      }
      if (!have_frame) break;
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.frames_processed;
      }
      if (!IsRequestFrameType(request.type)) {
        // Reply-typed frames from a client are nonsense; treat like framing
        // corruption and drop the connection after answering.
        std::string wire;
        AppendFrame(ErrorReply(request.tenant,
                               Status::InvalidArgument(
                                   "reply-typed frame sent by client"),
                               /*protocol=*/true),
                    &wire);
        (void)conn->sock.SendAll(wire.data(), wire.size());
        return;
      }
      const Frame reply = HandleFrame(request);
      std::string wire;
      AppendFrame(reply, &wire);
      if (!conn->sock.SendAll(wire.data(), wire.size()).ok()) return;
      if (request.type == FrameType::kShutdown) {
        std::lock_guard<std::mutex> lock(shutdown_mu_);
        shutdown_requested_ = true;
        shutdown_cv_.notify_all();
        return;
      }
    }
  }
}

Frame StreamQServer::HandleFrame(const Frame& request) {
  switch (request.type) {
    case FrameType::kRegisterQuery:
      return HandleRegister(request);
    case FrameType::kIngest:
      return HandleIngest(request);
    case FrameType::kHeartbeat:
      return HandleHeartbeat(request);
    case FrameType::kSnapshot:
      return HandleSnapshot(request, /*unregister=*/false);
    case FrameType::kUnregister:
      return HandleSnapshot(request, /*unregister=*/true);
    case FrameType::kMetricsRequest:
      return HandleMetrics(request);
    case FrameType::kShutdown:
      return Frame{FrameType::kOk, request.tenant, {}};
    default:
      return ErrorReply(request.tenant,
                        Status::InvalidArgument("unhandled frame type"),
                        /*protocol=*/true);
  }
}

Frame StreamQServer::HandleRegister(const Frame& request) {
  Result<SessionOptions> options = SessionOptions::Deserialize(request.payload);
  if (!options.ok()) {
    return ErrorReply(request.tenant, options.status(), /*protocol=*/true);
  }
  Result<std::unique_ptr<StreamSession>> session =
      StreamSession::Open(options.value());
  if (!session.ok()) {
    return ErrorReply(request.tenant, session.status(), /*protocol=*/true);
  }
  auto tenant = std::make_shared<Tenant>();
  tenant->session = std::move(session).value();
  // Every tenant reports into the one server-wide registry, so a metrics
  // scrape sees the whole server. Installed before any ingest can race.
  tenant->session->SetObserver(&metrics_);
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    const auto [it, inserted] = tenants_.emplace(request.tenant, tenant);
    (void)it;
    if (!inserted) {
      return ErrorReply(
          request.tenant,
          Status::AlreadyExists("tenant " + std::to_string(request.tenant) +
                                " already registered"),
          /*protocol=*/true);
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.tenants_registered;
  }
  return Frame{FrameType::kOk, request.tenant, {}};
}

Frame StreamQServer::HandleIngest(const Frame& request) {
  std::shared_ptr<Tenant> tenant = FindTenant(request.tenant);
  if (!tenant) {
    return ErrorReply(request.tenant,
                      Status::NotFound("tenant " +
                                       std::to_string(request.tenant) +
                                       " not registered"),
                      /*protocol=*/true);
  }
  std::vector<Event> events;
  const Status decoded = DecodeEventBatch(request.payload, &events);
  if (!decoded.ok()) {
    // Malformed batch: rejected before it reaches the session, so the
    // tenant's accounting is untouched.
    return ErrorReply(request.tenant, decoded, /*protocol=*/true);
  }
  Status ingest;
  {
    std::lock_guard<std::mutex> lock(tenant->mu);
    if (tenant->session->finished()) {
      return ErrorReply(request.tenant,
                        Status::FailedPrecondition("session finished"),
                        /*protocol=*/true);
    }
    ingest = tenant->session->Ingest(events);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.events_ingested += static_cast<int64_t>(events.size());
  }
  if (!ingest.ok()) {
    // Application-level (e.g. strict validation): the batch was accounted,
    // the session keeps running, and the client learns the sticky status.
    return ErrorReply(request.tenant, ingest, /*protocol=*/false);
  }
  return Frame{FrameType::kOk, request.tenant, {}};
}

Frame StreamQServer::HandleHeartbeat(const Frame& request) {
  std::shared_ptr<Tenant> tenant = FindTenant(request.tenant);
  if (!tenant) {
    return ErrorReply(request.tenant,
                      Status::NotFound("tenant " +
                                       std::to_string(request.tenant) +
                                       " not registered"),
                      /*protocol=*/true);
  }
  PayloadReader reader(request.payload);
  int64_t bound = 0;
  int64_t stream_time = 0;
  Status parsed = reader.ReadI64(&bound);
  if (parsed.ok()) parsed = reader.ReadI64(&stream_time);
  if (parsed.ok()) parsed = reader.ExpectEnd();
  if (!parsed.ok()) {
    return ErrorReply(request.tenant, parsed, /*protocol=*/true);
  }
  Status beat;
  {
    std::lock_guard<std::mutex> lock(tenant->mu);
    if (tenant->session->finished()) {
      return ErrorReply(request.tenant,
                        Status::FailedPrecondition("session finished"),
                        /*protocol=*/true);
    }
    beat = tenant->session->Heartbeat(bound, stream_time);
  }
  if (!beat.ok()) return ErrorReply(request.tenant, beat, /*protocol=*/false);
  return Frame{FrameType::kOk, request.tenant, {}};
}

Frame StreamQServer::HandleSnapshot(const Frame& request, bool unregister) {
  std::shared_ptr<Tenant> tenant = FindTenant(request.tenant);
  if (!tenant) {
    return ErrorReply(request.tenant,
                      Status::NotFound("tenant " +
                                       std::to_string(request.tenant) +
                                       " not registered"),
                      /*protocol=*/true);
  }
  if (!request.payload.empty()) {
    return ErrorReply(request.tenant,
                      Status::InvalidArgument("unexpected payload"),
                      /*protocol=*/true);
  }
  SnapshotStats stats;
  {
    std::lock_guard<std::mutex> lock(tenant->mu);
    StreamSession* session = tenant->session.get();
    if (unregister && !session->finished()) session->Finish();
    stats = SnapshotFromReport(session->Snapshot(),
                               session->events_ingested(),
                               session->finished());
  }
  if (unregister) {
    {
      std::lock_guard<std::mutex> lock(registry_mu_);
      tenants_.erase(request.tenant);
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.tenants_unregistered;
  }
  Frame reply{FrameType::kReport, request.tenant, {}};
  EncodeSnapshotStats(stats, &reply.payload);
  return reply;
}

Frame StreamQServer::HandleMetrics(const Frame& request) {
  PayloadReader reader(request.payload);
  uint8_t format = 0;
  Status parsed = reader.ReadU8(&format);
  if (parsed.ok()) parsed = reader.ExpectEnd();
  if (!parsed.ok()) {
    return ErrorReply(request.tenant, parsed, /*protocol=*/true);
  }
  if (format != kMetricsFormatPrometheus && format != kMetricsFormatJson) {
    return ErrorReply(request.tenant,
                      Status::InvalidArgument(
                          "unknown metrics format " + std::to_string(format) +
                          " (0 = prometheus, 1 = json)"),
                      /*protocol=*/true);
  }
  const MetricsSnapshot snapshot = metrics_.Snapshot();
  Frame reply{FrameType::kMetricsReply, request.tenant, {}};
  reply.payload = format == kMetricsFormatJson ? snapshot.ToJson()
                                               : snapshot.ToPrometheusText();
  return reply;
}

Frame StreamQServer::ErrorReply(uint32_t tenant, const Status& status,
                                bool protocol) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (protocol) {
      ++stats_.protocol_errors;
    } else {
      ++stats_.application_errors;
    }
  }
  Frame reply{FrameType::kError, tenant, {}};
  EncodeError(status, &reply.payload);
  return reply;
}

std::shared_ptr<StreamQServer::Tenant> StreamQServer::FindTenant(uint32_t id) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  const auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second;
}

}  // namespace streamq
