#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace streamq {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownReadWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Status Socket::SendAll(const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, p + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> Socket::Recv(void* buf, size_t size) {
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, size, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::ResourceExhausted("recv timeout");
    }
    return Errno("recv");
  }
}

Status Socket::SetRecvTimeout(DurationUs timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout / 1000000);
  tv.tv_usec = static_cast<suseconds_t>(timeout % 1000000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

Status Socket::SetNoDelay() {
  const int one = 1;
  if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

Result<Socket> ConnectLoopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  const sockaddr_in addr = LoopbackAddr(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Errno("connect to 127.0.0.1:" + std::to_string(port));
  }
  (void)sock.SetNoDelay();  // Best-effort.
  return sock;
}

Status Listener::Listen(uint16_t port, int backlog) {
  Close();
  // Built on a local fd and published into fd_ only once listening: the
  // accept loop must never observe a half-configured socket.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddr(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st = Errno("bind 127.0.0.1:" + std::to_string(port));
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    const Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status st = Errno("getsockname");
    ::close(fd);
    return st;
  }
  port_ = ntohs(bound.sin_port);
  fd_.store(fd, std::memory_order_release);
  return Status::OK();
}

Result<Socket> Listener::Accept(DurationUs timeout) {
  // One load per call: a concurrent Close() between the poll and the
  // accept leaves `fd` pointing at a dead descriptor, which both calls
  // report as an error — the IOError exit the accept loop expects.
  const int lfd = fd_.load(std::memory_order_acquire);
  if (lfd < 0) return Status::IOError("accept on closed listener");
  pollfd pfd{};
  pfd.fd = lfd;
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, static_cast<int>(timeout / 1000));
  if (ready < 0) {
    if (errno == EINTR) return Status::ResourceExhausted("accept interrupted");
    return Errno("poll");
  }
  if (ready == 0) return Status::ResourceExhausted("accept timeout");
  if ((pfd.revents & POLLIN) == 0) {
    return Status::IOError("accept on closed listener");
  }
  const int fd = ::accept(lfd, nullptr, nullptr);
  if (fd < 0) return Errno("accept");
  Socket sock(fd);
  (void)sock.SetNoDelay();  // Best-effort.
  return sock;
}

void Listener::Close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // A concurrent poll() in the accept loop keeps the socket alive past
    // close(), and a live listening socket keeps completing handshakes
    // into its backlog. shutdown() kills the backlog immediately so a
    // drained server stops admitting connections the moment Close returns.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace streamq
