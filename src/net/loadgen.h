#ifndef STREAMQ_NET_LOADGEN_H_
#define STREAMQ_NET_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/session_options.h"
#include "net/chaos.h"
#include "net/frame.h"
#include "net/retry.h"

namespace streamq {

/// Multi-client load driver for a running streamq server — the measurement
/// half of the service split (the DECS-style server/loadgen pairing).
///
/// Determinism: every tenant's event stream is generated from
/// `seed ^ f(tenant)` and delivered in generated arrival order by a single
/// writer whenever `clients <= tenants`, so the tenant's final report —
/// including its result checksum — is byte-identical across runs and across
/// client counts. That is what lets the R-F22 bench gate on checksum
/// equality while sweeping concurrency. With `clients > tenants` the extra
/// clients co-write tenants (batch-striped), which keeps the accounting
/// identity but makes arrival interleaving timing-dependent; checksums are
/// then only comparable within a run.
///
/// Pacing: `rate_eps` throttles each client to a fixed event rate (open
/// load). Paced clients spend most wall time asleep, so aggregate
/// throughput scales with client count by overlap even on a single core —
/// the honest basis for the f22 scaling gate.
struct LoadGenOptions {
  /// Server port on 127.0.0.1.
  uint16_t port = 0;

  /// Concurrent client connections driving ingest.
  int clients = 1;

  /// Tenants (queries) registered for the measured phase, ids 1..tenants.
  int tenants = 1;

  /// Events per tenant for the measured phase. 0 switches to duration
  /// mode: cycle the workload (with event times shifted each lap) until
  /// `measure_s` elapses.
  int64_t events_per_tenant = 100000;

  /// Per-client pacing in events/second. 0 = closed loop (send as fast as
  /// the request/reply RTT allows).
  double rate_eps = 0.0;

  /// Seconds of throwaway traffic (separate scratch tenants) before the
  /// measured phase, to warm connections, allocators, and branch caches.
  double warmup_s = 0.0;

  /// Duration-mode length in seconds (only used when events_per_tenant
  /// is 0).
  double measure_s = 5.0;

  /// Events per kIngest frame.
  int batch = 512;

  /// Base PRNG seed; equal seeds replay bit-identical workloads.
  uint64_t seed = 42;

  /// Distinct keys per tenant workload.
  int64_t keys = 64;

  /// Mean exponential arrival delay (disorder) in milliseconds.
  double disorder_ms = 5.0;

  /// Mean event-time rate of each tenant's workload (events/s).
  double workload_eps = 10000.0;

  /// Session template every tenant registers with (name is overridden to
  /// tenant-<id>); the same SessionOptions vocabulary as the CLI.
  SessionOptions session;

  /// Drive through ResilientClient: sequenced idempotent ingest with
  /// automatic reconnect and backoff. Requires clients <= tenants (the
  /// sequence number needs a single writer per tenant). Checksums stay
  /// byte-identical to a fault-free run even under --chaos faults.
  bool retry = false;

  /// Backoff/attempt schedule for retry mode.
  RetryPolicy retry_policy;

  /// Transport fault injection on every driver connection (requires
  /// retry mode; the control connection stays chaos-free so final
  /// collection is reliable). All-zero probabilities = off.
  ChaosSpec chaos;

  Status Validate() const;
};

/// Final accounting for one measured tenant.
struct TenantOutcome {
  uint32_t tenant = 0;
  /// Events this run handed to Ingest RPCs that returned OK.
  int64_t events_sent = 0;
  /// The server's sealed final report for the tenant.
  SnapshotStats stats;
  /// events_sent == server-side ingested count.
  bool delivery_ok = false;
  /// The in == out + late + shed conservation identity.
  bool identity_ok = false;
};

struct LoadGenReport {
  std::vector<TenantOutcome> tenants;

  int64_t events_sent = 0;
  int64_t batches_sent = 0;
  /// Client-observed RPC failures (error replies, transport errors).
  int64_t errors = 0;

  /// Measured-phase wall time and aggregate delivered throughput.
  double wall_s = 0.0;
  double throughput_eps = 0.0;

  /// Ingest round-trip latency over the measured phase, microseconds.
  double rtt_p50_us = 0.0;
  double rtt_p99_us = 0.0;
  double rtt_max_us = 0.0;

  /// FNV fold of per-tenant result checksums in tenant-id order — one
  /// number that witnesses every tenant's result bytes.
  uint64_t combined_checksum = 0;

  /// Scheduler activity summed over the sealed tenant reports: shards the
  /// rebalancer migrated and segments starving workers stole. Zero unless
  /// tenants registered with --threads plus --rebalance/--steal.
  int64_t shard_migrations = 0;
  int64_t segments_stolen = 0;

  /// Resilience taxonomy (all zero unless retry/chaos mode):
  /// connection-killing faults the injector fired (resets + short writes +
  /// accept closes), client-side retried attempts and reconnects, and the
  /// server's sequenced-protocol accounting summed over tenant reports
  /// (replayed == deduped is the no-double-apply invariant; throttled
  /// counts admission-control pushbacks).
  int64_t faults_injected = 0;
  int64_t retries = 0;
  int64_t reconnects = 0;
  int64_t replayed = 0;
  int64_t deduped = 0;
  int64_t throttled = 0;

  bool all_identities_ok = false;
  bool all_deliveries_ok = false;

  std::string Summary() const;
};

/// Runs the full driver: registers tenants, optional warmup, measured
/// ingest from `clients` concurrent connections, then unregisters each
/// tenant and collects its sealed report.
Result<LoadGenReport> RunLoadGen(const LoadGenOptions& options);

}  // namespace streamq

#endif  // STREAMQ_NET_LOADGEN_H_
