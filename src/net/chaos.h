#ifndef STREAMQ_NET_CHAOS_H_
#define STREAMQ_NET_CHAOS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"
#include "net/socket.h"

namespace streamq {

/// Transport-level chaos: per-operation probabilities for each fault class,
/// all independent and all off by default. The transport analogue of
/// FaultSpec (stream/fault_injector.h) — where that one mutates tuples on
/// the way into a pipeline, this one breaks the wire underneath the frame
/// protocol: connections reset mid-conversation, writes land partially,
/// bytes flip, reads stall.
///
/// All randomness flows from `seed`: the shared ChaosInjector mints one
/// decorrelated Rng stream per wrapped transport, so a given (workload,
/// spec) pair replays the identical fault schedule — chaos soaks are
/// seeded experiments, not flaky tests.
struct ChaosSpec {
  uint64_t seed = 42;

  /// Per send: the connection is hard-reset before any byte leaves (both
  /// directions shut down; the peer sees EOF, the caller an IOError).
  double reset_prob = 0.0;

  /// Per send: a strict prefix of the buffer is written, then the
  /// connection resets — the peer is left holding a partial frame.
  double short_write_prob = 0.0;

  /// Per send: one byte of the outgoing copy is flipped. The frame layer
  /// must catch this (magic/type/flags checks, payload integrity hashes on
  /// sequenced frames) — silent acceptance would break checksum identity.
  double corrupt_prob = 0.0;

  /// Per send: a strict prefix is written and the tail silently dropped,
  /// but the connection stays open — the peer stalls mid-frame until its
  /// recv timeout fires (the desync path StreamQClient must fail cleanly).
  double truncate_prob = 0.0;

  /// Per recv: the read sleeps `stall_us` of wall time first (congested
  /// peer; exercises reply timeouts and retry deadlines).
  double stall_prob = 0.0;
  DurationUs stall_us = Millis(2);

  /// Per accept (server side): the freshly accepted connection is closed
  /// immediately — the client's next round trip fails and must reconnect.
  double accept_close_prob = 0.0;

  Status Validate() const;

  /// True when any fault class has nonzero probability.
  bool Enabled() const {
    return reset_prob > 0 || short_write_prob > 0 || corrupt_prob > 0 ||
           truncate_prob > 0 || stall_prob > 0 || accept_close_prob > 0;
  }
};

/// Exact per-class fault accounting, aggregated across every transport
/// wrapped by one injector.
struct ChaosStats {
  int64_t sends = 0;
  int64_t recvs = 0;
  int64_t resets = 0;
  int64_t short_writes = 0;
  int64_t corruptions = 0;
  int64_t truncations = 0;
  int64_t stalls = 0;
  int64_t accept_closes = 0;

  /// Connection-fatal faults (the peer or caller must reconnect).
  int64_t fatal() const { return resets + short_writes + accept_closes; }
  /// Every injected fault, fatal or not.
  int64_t total() const {
    return resets + short_writes + corruptions + truncations + stalls +
           accept_closes;
  }

  bool operator==(const ChaosStats& other) const = default;

  std::string ToString() const;
};

/// Shared fault decider + counter sink for a set of ChaosTransports (e.g.
/// every driver connection of a loadgen run). Thread-safe: each transport
/// draws from its own decorrelated Rng stream, counters aggregate under a
/// mutex. Does not own the transports.
class ChaosInjector {
 public:
  /// `spec` must Validate(); aborts otherwise (harness misconfiguration).
  explicit ChaosInjector(const ChaosSpec& spec);

  const ChaosSpec& spec() const { return spec_; }

  ChaosStats stats() const;

  /// Chaos window control: a disarmed injector turns every transport it
  /// wraps (and the server accept path) into a transparent pass-through
  /// without touching its fault schedule or counters, so a harness can
  /// inject during the measured phase and then seal/collect final
  /// accounting over a clean wire. Re-arming resumes the schedule where
  /// it left off.
  void Arm() { armed_.store(true, std::memory_order_relaxed); }
  void Disarm() { armed_.store(false, std::memory_order_relaxed); }
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Deterministic per-transport sub-seed: the n-th transport wrapped by
  /// this injector always gets the same Rng stream, independent of what
  /// the other transports drew.
  uint64_t MintStreamSeed();

  /// Counter sinks (called by ChaosTransport / the server accept path).
  void CountSend() { Bump(&ChaosStats::sends); }
  void CountRecv() { Bump(&ChaosStats::recvs); }
  void CountReset() { Bump(&ChaosStats::resets); }
  void CountShortWrite() { Bump(&ChaosStats::short_writes); }
  void CountCorruption() { Bump(&ChaosStats::corruptions); }
  void CountTruncation() { Bump(&ChaosStats::truncations); }
  void CountStall() { Bump(&ChaosStats::stalls); }
  void CountAcceptClose() { Bump(&ChaosStats::accept_closes); }

 private:
  void Bump(int64_t ChaosStats::* field);

  const ChaosSpec spec_;
  std::atomic<bool> armed_{true};
  std::atomic<uint64_t> next_stream_{0};
  mutable std::mutex mu_;
  ChaosStats stats_;
};

/// A Socket wrapped with seeded fault injection. With a null injector (or
/// an all-zero spec) it is a transparent pass-through, so the server and
/// client are always built over ChaosTransport and pay nothing when chaos
/// is off.
///
/// Fault semantics:
///   reset        SendAll shuts the socket down both ways and fails; every
///                later op fails too (the connection is dead).
///   short write  a strict prefix hits the wire, then reset.
///   corrupt      one byte of a local copy is flipped; the full (wrong)
///                buffer is sent and the connection stays up.
///   truncate     a strict prefix hits the wire, the tail vanishes, the
///                connection stays up — the peer hangs mid-frame.
///   stall        Recv sleeps spec.stall_us before reading.
class ChaosTransport {
 public:
  ChaosTransport() = default;
  /// Wraps `sock`; `injector` may be null (pass-through) and must outlive
  /// the transport otherwise.
  explicit ChaosTransport(Socket sock, ChaosInjector* injector = nullptr);

  ChaosTransport(ChaosTransport&&) = default;
  ChaosTransport& operator=(ChaosTransport&&) = default;

  bool valid() const { return sock_.valid(); }
  void Close() { sock_.Close(); }
  void ShutdownReadWrite() { sock_.ShutdownReadWrite(); }

  /// Socket::SendAll with injected resets / short writes / corruption /
  /// truncation per the spec.
  Status SendAll(const void* data, size_t size);

  /// Socket::Recv with injected stalls.
  Result<size_t> Recv(void* buf, size_t size);

  Status SetRecvTimeout(DurationUs timeout) {
    return sock_.SetRecvTimeout(timeout);
  }

  /// The wrapped socket (tests poking at the raw fd).
  Socket& socket() { return sock_; }

 private:
  Socket sock_;
  ChaosInjector* injector_ = nullptr;
  Rng rng_;
  /// Recv decisions draw from their own stream so the number of reads
  /// (poll-loop wakeups vary with timing) can never perturb the send-side
  /// fault schedule — that schedule must replay exactly from the seed.
  Rng recv_rng_;
  /// Set by an injected reset: the connection is dead by our own hand and
  /// every later op reports IOError without touching the socket.
  bool broken_ = false;
};

}  // namespace streamq

#endif  // STREAMQ_NET_CHAOS_H_
