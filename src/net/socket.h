#ifndef STREAMQ_NET_SOCKET_H_
#define STREAMQ_NET_SOCKET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "common/time.h"

namespace streamq {

/// Thin RAII wrappers over POSIX loopback TCP — just enough socket for the
/// streamq server and clients, with Status-based errors and no external
/// dependencies. IPv4 127.0.0.1 only by design: the protocol is a local
/// service/loadgen split, not an internet-facing endpoint.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void Close();

  /// Half-closes both directions without releasing the fd — unblocks a
  /// thread sitting in Recv on this socket (used for shutdown).
  void ShutdownReadWrite();

  /// Writes all of `data`, looping over partial sends. EINTR is retried.
  Status SendAll(const void* data, size_t size);

  /// Reads up to `size` bytes. Returns the count (0 = orderly EOF), or
  /// ResourceExhausted on a receive-timeout, or IOError.
  Result<size_t> Recv(void* buf, size_t size);

  /// Receive timeout for Recv (0 disables — block indefinitely).
  Status SetRecvTimeout(DurationUs timeout);

  /// Disables Nagle; the protocol is request/reply over loopback, where
  /// coalescing only adds latency.
  Status SetNoDelay();

 private:
  int fd_ = -1;
};

/// Connects to 127.0.0.1:`port`.
Result<Socket> ConnectLoopback(uint16_t port);

/// Listening socket on 127.0.0.1 with poll-based accept so the accept loop
/// can observe a stop flag.
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and listens.
  Status Listen(uint16_t port, int backlog = 64);

  /// The bound port (after Listen; useful with port 0).
  uint16_t port() const { return port_; }

  /// Waits up to `timeout` for a connection. ResourceExhausted when none
  /// arrived in time (poll again), IOError when the listener is dead.
  Result<Socket> Accept(DurationUs timeout);

  void Close();

  bool valid() const { return fd_.load(std::memory_order_relaxed) >= 0; }

 private:
  /// Atomic because Close() races Accept() by design: Stop() closes the
  /// listener from another thread to unblock the accept loop, which then
  /// sees a dead fd and exits on the resulting IOError.
  std::atomic<int> fd_{-1};
  uint16_t port_ = 0;
};

}  // namespace streamq

#endif  // STREAMQ_NET_SOCKET_H_
