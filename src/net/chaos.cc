#include "net/chaos.h"

#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace streamq {

namespace {

Status ValidateProb(double p, const char* name) {
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument(std::string(name) + " must be in [0, 1]");
  }
  return Status::OK();
}

}  // namespace

Status ChaosSpec::Validate() const {
  STREAMQ_RETURN_NOT_OK(ValidateProb(reset_prob, "reset_prob"));
  STREAMQ_RETURN_NOT_OK(ValidateProb(short_write_prob, "short_write_prob"));
  STREAMQ_RETURN_NOT_OK(ValidateProb(corrupt_prob, "corrupt_prob"));
  STREAMQ_RETURN_NOT_OK(ValidateProb(truncate_prob, "truncate_prob"));
  STREAMQ_RETURN_NOT_OK(ValidateProb(stall_prob, "stall_prob"));
  STREAMQ_RETURN_NOT_OK(ValidateProb(accept_close_prob, "accept_close_prob"));
  if (stall_us < 0) return Status::InvalidArgument("stall_us must be >= 0");
  return Status::OK();
}

std::string ChaosStats::ToString() const {
  std::ostringstream out;
  out << "sends=" << sends << " recvs=" << recvs << " resets=" << resets
      << " short_writes=" << short_writes << " corruptions=" << corruptions
      << " truncations=" << truncations << " stalls=" << stalls
      << " accept_closes=" << accept_closes;
  return out.str();
}

ChaosInjector::ChaosInjector(const ChaosSpec& spec) : spec_(spec) {
  STREAMQ_CHECK_OK(spec.Validate());
}

ChaosStats ChaosInjector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

uint64_t ChaosInjector::MintStreamSeed() {
  // Same decorrelation recipe as the keyed workload generators: golden-ratio
  // multiply keeps consecutive stream ids from producing correlated draws.
  const uint64_t n = next_stream_.fetch_add(1, std::memory_order_relaxed);
  return spec_.seed ^ ((n + 1) * 0x9E3779B97F4A7C15ULL);
}

void ChaosInjector::Bump(int64_t ChaosStats::* field) {
  std::lock_guard<std::mutex> lock(mu_);
  ++(stats_.*field);
}

ChaosTransport::ChaosTransport(Socket sock, ChaosInjector* injector)
    : sock_(std::move(sock)), injector_(injector) {
  if (injector_ != nullptr) {
    const uint64_t seed = injector_->MintStreamSeed();
    rng_ = Rng(seed);
    recv_rng_ = Rng(seed ^ 0x94D049BB133111EBULL);
  }
}

Status ChaosTransport::SendAll(const void* data, size_t size) {
  if (injector_ == nullptr || !injector_->armed() ||
      !injector_->spec().Enabled()) {
    return sock_.SendAll(data, size);
  }
  if (broken_) return Status::IOError("chaos: connection reset");
  injector_->CountSend();
  const ChaosSpec& spec = injector_->spec();
  if (rng_.NextBool(spec.reset_prob)) {
    injector_->CountReset();
    broken_ = true;
    sock_.ShutdownReadWrite();
    return Status::IOError("chaos: connection reset before send");
  }
  if (size > 1 && rng_.NextBool(spec.short_write_prob)) {
    injector_->CountShortWrite();
    const size_t prefix = static_cast<size_t>(
        rng_.NextInt(1, static_cast<int64_t>(size) - 1));
    (void)sock_.SendAll(data, prefix);
    broken_ = true;
    sock_.ShutdownReadWrite();
    return Status::IOError("chaos: connection reset after short write of " +
                           std::to_string(prefix) + "/" +
                           std::to_string(size) + " bytes");
  }
  if (size > 1 && rng_.NextBool(spec.truncate_prob)) {
    // The cruelest class: the caller sees success, the tail is gone, and
    // the connection stays up — the peer hangs inside a partial frame.
    injector_->CountTruncation();
    const size_t prefix = static_cast<size_t>(
        rng_.NextInt(1, static_cast<int64_t>(size) - 1));
    return sock_.SendAll(data, prefix);
  }
  if (size > 0 && rng_.NextBool(spec.corrupt_prob)) {
    injector_->CountCorruption();
    std::vector<char> copy(static_cast<const char*>(data),
                           static_cast<const char*>(data) + size);
    const size_t at = static_cast<size_t>(
        rng_.NextInt(0, static_cast<int64_t>(size) - 1));
    copy[at] = static_cast<char>(copy[at] ^ (1u << rng_.NextInt(0, 7)));
    return sock_.SendAll(copy.data(), copy.size());
  }
  return sock_.SendAll(data, size);
}

Result<size_t> ChaosTransport::Recv(void* buf, size_t size) {
  if (injector_ == nullptr || !injector_->armed() ||
      !injector_->spec().Enabled()) {
    return sock_.Recv(buf, size);
  }
  if (broken_) return Status::IOError("chaos: connection reset");
  injector_->CountRecv();
  const ChaosSpec& spec = injector_->spec();
  if (recv_rng_.NextBool(spec.stall_prob)) {
    injector_->CountStall();
    std::this_thread::sleep_for(std::chrono::microseconds(spec.stall_us));
  }
  return sock_.Recv(buf, size);
}

}  // namespace streamq
