#include "net/frame.h"

#include <cstring>
#include <sstream>

namespace streamq {

namespace {

/// Fixed per-event record size in kIngest payloads: 4 i64 + 1 f64.
constexpr size_t kEventWireBytes = 40;

uint64_t Fold(uint64_t h, int64_t v) {
  h ^= static_cast<uint64_t>(v);
  h *= 0x100000001B3ull;
  return h;
}

}  // namespace

bool IsRequestFrameType(FrameType type) {
  switch (type) {
    case FrameType::kRegisterQuery:
    case FrameType::kIngest:
    case FrameType::kHeartbeat:
    case FrameType::kSnapshot:
    case FrameType::kUnregister:
    case FrameType::kShutdown:
    case FrameType::kMetricsRequest:
    case FrameType::kOpenSession:
    case FrameType::kSeqIngest:
    case FrameType::kSeqHeartbeat:
      return true;
    default:
      return false;
  }
}

bool IsReplyFrameType(FrameType type) {
  switch (type) {
    case FrameType::kOk:
    case FrameType::kError:
    case FrameType::kReport:
    case FrameType::kMetricsReply:
    case FrameType::kSessionAccepted:
    case FrameType::kAck:
    case FrameType::kOverloaded:
      return true;
    default:
      return false;
  }
}

// ------------------------------------------------------------- primitives

void AppendU32(uint32_t v, std::string* out) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 4);
}

void AppendU64(uint64_t v, std::string* out) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 8);
}

void AppendI64(int64_t v, std::string* out) {
  AppendU64(static_cast<uint64_t>(v), out);
}

void AppendF64(double v, std::string* out) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(bits, out);
}

Status PayloadReader::ReadU8(uint8_t* out) {
  if (remaining() < 1) return Status::OutOfRange("payload truncated");
  *out = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status PayloadReader::ReadU32(uint32_t* out) {
  if (remaining() < 4) return Status::OutOfRange("payload truncated");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 4;
  *out = v;
  return Status::OK();
}

Status PayloadReader::ReadU64(uint64_t* out) {
  if (remaining() < 8) return Status::OutOfRange("payload truncated");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 8;
  *out = v;
  return Status::OK();
}

Status PayloadReader::ReadI64(int64_t* out) {
  uint64_t v;
  STREAMQ_RETURN_NOT_OK(ReadU64(&v));
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status PayloadReader::ReadF64(double* out) {
  uint64_t bits;
  STREAMQ_RETURN_NOT_OK(ReadU64(&bits));
  std::memcpy(out, &bits, sizeof(*out));
  return Status::OK();
}

Status PayloadReader::ReadBytes(size_t n, std::string* out) {
  if (remaining() < n) return Status::OutOfRange("payload truncated");
  out->assign(data_.substr(pos_, n));
  pos_ += n;
  return Status::OK();
}

Status PayloadReader::ExpectEnd() const {
  if (pos_ != data_.size()) {
    return Status::InvalidArgument("trailing bytes in payload");
  }
  return Status::OK();
}

// ------------------------------------------------------------------ frames

void AppendFrame(const Frame& frame, std::string* out) {
  out->push_back(kFrameMagic0);
  out->push_back(kFrameMagic1);
  out->push_back(static_cast<char>(frame.type));
  out->push_back(0);  // flags
  AppendU32(frame.tenant, out);
  AppendU32(static_cast<uint32_t>(frame.payload.size()), out);
  out->append(frame.payload);
}

void FrameDecoder::Feed(std::string_view bytes) {
  // Compact once consumed bytes dominate, so the buffer stays bounded by
  // one frame plus one read.
  if (pos_ > 0 && pos_ >= buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(bytes);
}

Status FrameDecoder::Next(Frame* out, bool* have_frame) {
  *have_frame = false;
  if (!failed_.ok()) return failed_;
  const size_t available = buffer_.size() - pos_;
  if (available < kFrameHeaderBytes) return Status::OK();
  const char* h = buffer_.data() + pos_;
  if (h[0] != kFrameMagic0 || h[1] != kFrameMagic1) {
    failed_ = Status::InvalidArgument("bad frame magic");
    return failed_;
  }
  const uint8_t type = static_cast<uint8_t>(h[2]);
  if (!IsRequestFrameType(static_cast<FrameType>(type)) &&
      !IsReplyFrameType(static_cast<FrameType>(type))) {
    failed_ = Status::InvalidArgument("unknown frame type " +
                                      std::to_string(type));
    return failed_;
  }
  if (h[3] != 0) {
    failed_ = Status::InvalidArgument("nonzero frame flags");
    return failed_;
  }
  PayloadReader header(std::string_view(h + 4, 8));
  uint32_t tenant = 0, length = 0;
  (void)header.ReadU32(&tenant);
  (void)header.ReadU32(&length);
  if (length > max_payload_) {
    failed_ = Status::InvalidArgument(
        "frame payload of " + std::to_string(length) + " bytes exceeds cap " +
        std::to_string(max_payload_));
    return failed_;
  }
  if (available < kFrameHeaderBytes + length) return Status::OK();
  out->type = static_cast<FrameType>(type);
  out->tenant = tenant;
  out->payload.assign(buffer_, pos_ + kFrameHeaderBytes, length);
  pos_ += kFrameHeaderBytes + length;
  *have_frame = true;
  return Status::OK();
}

// ---------------------------------------------------------- event batches

void EncodeEventBatch(std::span<const Event> events, std::string* out) {
  AppendU32(static_cast<uint32_t>(events.size()), out);
  out->reserve(out->size() + events.size() * kEventWireBytes);
  for (const Event& e : events) {
    AppendI64(e.id, out);
    AppendI64(e.key, out);
    AppendI64(e.event_time, out);
    AppendI64(e.arrival_time, out);
    AppendF64(e.value, out);
  }
}

Status DecodeEventBatch(std::string_view payload, std::vector<Event>* out) {
  PayloadReader reader(payload);
  uint32_t count = 0;
  STREAMQ_RETURN_NOT_OK(reader.ReadU32(&count));
  if (reader.remaining() != count * kEventWireBytes) {
    return Status::InvalidArgument(
        "event batch length mismatch: count=" + std::to_string(count) +
        " but " + std::to_string(reader.remaining()) + " payload bytes");
  }
  out->reserve(out->size() + count);
  for (uint32_t i = 0; i < count; ++i) {
    Event e;
    STREAMQ_RETURN_NOT_OK(reader.ReadI64(&e.id));
    STREAMQ_RETURN_NOT_OK(reader.ReadI64(&e.key));
    STREAMQ_RETURN_NOT_OK(reader.ReadI64(&e.event_time));
    STREAMQ_RETURN_NOT_OK(reader.ReadI64(&e.arrival_time));
    STREAMQ_RETURN_NOT_OK(reader.ReadF64(&e.value));
    out->push_back(e);
  }
  return reader.ExpectEnd();
}

// ------------------------------------------------------------------ errors

void EncodeError(const Status& status, std::string* out) {
  AppendU32(static_cast<uint32_t>(status.code()), out);
  AppendU32(static_cast<uint32_t>(status.message().size()), out);
  out->append(status.message());
}

Status DecodeError(std::string_view payload) {
  PayloadReader reader(payload);
  uint32_t code = 0, length = 0;
  STREAMQ_RETURN_NOT_OK(reader.ReadU32(&code));
  STREAMQ_RETURN_NOT_OK(reader.ReadU32(&length));
  std::string message;
  STREAMQ_RETURN_NOT_OK(reader.ReadBytes(length, &message));
  STREAMQ_RETURN_NOT_OK(reader.ExpectEnd());
  if (code == 0 || code > static_cast<uint32_t>(StatusCode::kCancelled)) {
    return Status::Internal("server error with unintelligible code " +
                            std::to_string(code) + ": " + message);
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

// ------------------------------------------------- resilience protocol

uint64_t HashBytes(std::string_view bytes, uint64_t seed) {
  uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

void EncodeOpenSession(uint64_t token, const std::string& options_text,
                       std::string* out) {
  const size_t start = out->size();
  AppendU64(token, out);
  // The hash binds the token too: a token byte flipped in flight would
  // otherwise arm the server session under a key its owner can never
  // present again.
  AppendU64(HashBytes(options_text,
                      HashBytes(std::string_view(*out).substr(start))),
            out);
  out->append(options_text);
}

Status DecodeOpenSession(std::string_view payload, uint64_t* token,
                         std::string* options_text) {
  PayloadReader reader(payload);
  uint64_t hash = 0;
  STREAMQ_RETURN_NOT_OK(reader.ReadU64(token));
  STREAMQ_RETURN_NOT_OK(reader.ReadU64(&hash));
  STREAMQ_RETURN_NOT_OK(reader.ReadBytes(reader.remaining(), options_text));
  if (*token == 0) {
    return Status::InvalidArgument("open-session token must be nonzero");
  }
  if (hash != HashBytes(*options_text, HashBytes(payload.substr(0, 8)))) {
    return Status::IOError("open-session payload failed integrity check");
  }
  return Status::OK();
}

void EncodeSessionGrant(const SessionGrant& grant, std::string* out) {
  const size_t start = out->size();
  AppendU64(grant.token, out);
  AppendU32(grant.epoch, out);
  AppendU64(grant.last_acked_seq, out);
  AppendU64(HashBytes(std::string_view(*out).substr(start)), out);
}

Status DecodeSessionGrant(std::string_view payload, SessionGrant* out) {
  PayloadReader reader(payload);
  STREAMQ_RETURN_NOT_OK(reader.ReadU64(&out->token));
  STREAMQ_RETURN_NOT_OK(reader.ReadU32(&out->epoch));
  STREAMQ_RETURN_NOT_OK(reader.ReadU64(&out->last_acked_seq));
  uint64_t hash = 0;
  STREAMQ_RETURN_NOT_OK(reader.ReadU64(&hash));
  STREAMQ_RETURN_NOT_OK(reader.ExpectEnd());
  if (hash != HashBytes(payload.substr(0, payload.size() - 8))) {
    return Status::IOError("session grant failed integrity check");
  }
  return Status::OK();
}

void AppendSeqEnvelope(uint64_t token, uint64_t seq, std::string_view body,
                       std::string* out) {
  const size_t start = out->size();
  AppendU64(token, out);
  AppendU64(seq, out);
  // The hash binds token and seq along with the body: all three steer
  // server-side session state (routing, dedup), so none may survive a
  // byte flip and still decode cleanly.
  AppendU64(HashBytes(body, HashBytes(std::string_view(*out).substr(start))),
            out);
  out->append(body);
}

Status DecodeSeqEnvelope(std::string_view payload, SeqEnvelope* out,
                         std::string_view* body) {
  PayloadReader reader(payload);
  uint64_t hash = 0;
  STREAMQ_RETURN_NOT_OK(reader.ReadU64(&out->token));
  STREAMQ_RETURN_NOT_OK(reader.ReadU64(&out->seq));
  STREAMQ_RETURN_NOT_OK(reader.ReadU64(&hash));
  *body = payload.substr(payload.size() - reader.remaining());
  if (hash != HashBytes(*body, HashBytes(payload.substr(0, 16)))) {
    return Status::IOError("sequenced frame failed integrity check");
  }
  return Status::OK();
}

void EncodeAck(const AckInfo& ack, std::string* out) {
  const size_t start = out->size();
  AppendU64(ack.acked_seq, out);
  out->push_back(static_cast<char>(ack.replayed));
  AppendU64(HashBytes(std::string_view(*out).substr(start)), out);
}

Status DecodeAck(std::string_view payload, AckInfo* out) {
  PayloadReader reader(payload);
  STREAMQ_RETURN_NOT_OK(reader.ReadU64(&out->acked_seq));
  STREAMQ_RETURN_NOT_OK(reader.ReadU8(&out->replayed));
  uint64_t hash = 0;
  STREAMQ_RETURN_NOT_OK(reader.ReadU64(&hash));
  STREAMQ_RETURN_NOT_OK(reader.ExpectEnd());
  if (out->replayed > 1) {
    return Status::IOError("ack replayed flag out of range");
  }
  if (hash != HashBytes(payload.substr(0, payload.size() - 8))) {
    return Status::IOError("ack failed integrity check");
  }
  return Status::OK();
}

void EncodeOverloaded(const OverloadInfo& info, std::string* out) {
  AppendU32(info.retry_after_ms, out);
  AppendU32(static_cast<uint32_t>(info.message.size()), out);
  out->append(info.message);
}

Status DecodeOverloaded(std::string_view payload, OverloadInfo* out) {
  PayloadReader reader(payload);
  uint32_t msg_len = 0;
  STREAMQ_RETURN_NOT_OK(reader.ReadU32(&out->retry_after_ms));
  STREAMQ_RETURN_NOT_OK(reader.ReadU32(&msg_len));
  STREAMQ_RETURN_NOT_OK(reader.ReadBytes(msg_len, &out->message));
  return reader.ExpectEnd();
}

// --------------------------------------------------------------- snapshots

namespace {
// v2 appended the scheduler counters (shard_migrations, segments_stolen);
// v3 the resilience counters (epoch, last_acked_seq, replay/dedup/throttle).
// Decoding is strict: both peers ship from one tree, so there is no
// cross-version traffic to tolerate, and a version mismatch should fail
// loudly instead of zero-filling.
constexpr uint8_t kSnapshotVersion = 3;
}  // namespace

void EncodeSnapshotStats(const SnapshotStats& stats, std::string* out) {
  out->push_back(static_cast<char>(kSnapshotVersion));
  out->push_back(static_cast<char>(stats.finished));
  AppendU32(static_cast<uint32_t>(stats.status_code), out);
  AppendU32(static_cast<uint32_t>(stats.status_message.size()), out);
  out->append(stats.status_message);
  AppendI64(stats.events_ingested, out);
  AppendI64(stats.events_processed, out);
  AppendI64(stats.events_rejected, out);
  AppendI64(stats.events_out, out);
  AppendI64(stats.events_late, out);
  AppendI64(stats.events_dropped, out);
  AppendI64(stats.events_shed, out);
  AppendI64(stats.events_force_released, out);
  AppendI64(stats.max_buffer_size, out);
  AppendI64(stats.results, out);
  AppendU64(stats.result_checksum, out);
  AppendF64(stats.mean_buffering_latency_us, out);
  AppendI64(stats.final_slack_us, out);
  AppendI64(stats.shard_migrations, out);
  AppendI64(stats.segments_stolen, out);
  AppendU32(stats.epoch, out);
  AppendU64(stats.last_acked_seq, out);
  AppendI64(stats.frames_replayed, out);
  AppendI64(stats.frames_deduped, out);
  AppendI64(stats.frames_throttled, out);
}

Status DecodeSnapshotStats(std::string_view payload, SnapshotStats* out) {
  PayloadReader reader(payload);
  uint8_t version = 0;
  STREAMQ_RETURN_NOT_OK(reader.ReadU8(&version));
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument("unknown snapshot version " +
                                   std::to_string(version));
  }
  STREAMQ_RETURN_NOT_OK(reader.ReadU8(&out->finished));
  uint32_t code = 0, msg_len = 0;
  STREAMQ_RETURN_NOT_OK(reader.ReadU32(&code));
  if (code > static_cast<uint32_t>(StatusCode::kCancelled)) {
    return Status::InvalidArgument("bad snapshot status code");
  }
  out->status_code = static_cast<StatusCode>(code);
  STREAMQ_RETURN_NOT_OK(reader.ReadU32(&msg_len));
  STREAMQ_RETURN_NOT_OK(reader.ReadBytes(msg_len, &out->status_message));
  STREAMQ_RETURN_NOT_OK(reader.ReadI64(&out->events_ingested));
  STREAMQ_RETURN_NOT_OK(reader.ReadI64(&out->events_processed));
  STREAMQ_RETURN_NOT_OK(reader.ReadI64(&out->events_rejected));
  STREAMQ_RETURN_NOT_OK(reader.ReadI64(&out->events_out));
  STREAMQ_RETURN_NOT_OK(reader.ReadI64(&out->events_late));
  STREAMQ_RETURN_NOT_OK(reader.ReadI64(&out->events_dropped));
  STREAMQ_RETURN_NOT_OK(reader.ReadI64(&out->events_shed));
  STREAMQ_RETURN_NOT_OK(reader.ReadI64(&out->events_force_released));
  STREAMQ_RETURN_NOT_OK(reader.ReadI64(&out->max_buffer_size));
  STREAMQ_RETURN_NOT_OK(reader.ReadI64(&out->results));
  STREAMQ_RETURN_NOT_OK(reader.ReadU64(&out->result_checksum));
  STREAMQ_RETURN_NOT_OK(reader.ReadF64(&out->mean_buffering_latency_us));
  STREAMQ_RETURN_NOT_OK(reader.ReadI64(&out->final_slack_us));
  STREAMQ_RETURN_NOT_OK(reader.ReadI64(&out->shard_migrations));
  STREAMQ_RETURN_NOT_OK(reader.ReadI64(&out->segments_stolen));
  STREAMQ_RETURN_NOT_OK(reader.ReadU32(&out->epoch));
  STREAMQ_RETURN_NOT_OK(reader.ReadU64(&out->last_acked_seq));
  STREAMQ_RETURN_NOT_OK(reader.ReadI64(&out->frames_replayed));
  STREAMQ_RETURN_NOT_OK(reader.ReadI64(&out->frames_deduped));
  STREAMQ_RETURN_NOT_OK(reader.ReadI64(&out->frames_throttled));
  return reader.ExpectEnd();
}

std::string SnapshotStats::ToString() const {
  std::ostringstream out;
  out << (finished ? "final" : "live") << " in=" << events_processed
      << " out=" << events_out << " late=" << events_late
      << " shed=" << events_shed << " rejected=" << events_rejected
      << " results=" << results << " checksum=" << result_checksum;
  if (status_code != StatusCode::kOk) {
    out << " status=" << StatusCodeToString(status_code);
  }
  return out.str();
}

uint64_t ResultChecksum(const RunReport& report) {
  uint64_t h = 1469598103934665603ull;
  for (const WindowResult& r : report.results) {
    h = Fold(h, r.bounds.start);
    h = Fold(h, r.key);
    h = Fold(h, static_cast<int64_t>(r.value * 1e6));
    h = Fold(h, r.tuple_count);
  }
  return h;
}

SnapshotStats SnapshotFromReport(const RunReport& report, int64_t ingested,
                                 bool finished) {
  SnapshotStats s;
  s.finished = finished ? 1 : 0;
  s.status_code = report.status.code();
  s.status_message = report.status.message();
  s.events_ingested = ingested;
  s.events_processed = report.events_processed;
  s.events_rejected = report.events_rejected;
  s.events_out = report.handler_stats.events_out;
  s.events_late = report.handler_stats.events_late;
  s.events_dropped = report.handler_stats.events_dropped;
  s.events_shed = report.handler_stats.events_shed;
  s.events_force_released = report.handler_stats.events_force_released;
  s.max_buffer_size = report.handler_stats.max_buffer_size;
  s.results = static_cast<int64_t>(report.results.size());
  s.result_checksum = ResultChecksum(report);
  s.mean_buffering_latency_us = report.handler_stats.buffering_latency_us.mean();
  s.final_slack_us = report.final_slack;
  s.shard_migrations = report.shard_migrations;
  s.segments_stolen = report.segments_stolen;
  return s;
}

}  // namespace streamq
