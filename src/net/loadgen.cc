#include "net/loadgen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>

#include "net/client.h"
#include "stream/generator.h"

namespace streamq {

namespace {

using Clock = std::chrono::steady_clock;

/// One (tenant, stripe) assignment a client drives.
struct Assignment {
  uint32_t tenant = 0;
  const std::vector<Event>* events = nullptr;
  int rank = 0;         // This client's stripe among the tenant's writers.
  int num_writers = 1;  // 1 whenever clients <= tenants (single writer).
};

/// Per-client results, merged after join.
struct ClientResult {
  Status status;
  int64_t batches_sent = 0;
  std::vector<int64_t> events_sent_per_tenant;  // Indexed by tenant - 1.
  int64_t errors = 0;
  std::vector<double> rtt_us;
  /// Retry-mode taxonomy (zero in plain mode).
  ResilienceStats resilience;
};

WorkloadConfig TenantWorkload(const LoadGenOptions& options, uint32_t tenant,
                              int64_t num_events) {
  WorkloadConfig config;
  config.num_events = num_events;
  config.events_per_second = options.workload_eps;
  config.num_keys = options.keys;
  config.delay.model = DelayModel::kExponential;
  config.delay.a = options.disorder_ms * 1000.0;
  // Decorrelate tenants without losing replayability.
  config.seed = options.seed ^ (static_cast<uint64_t>(tenant) * 0x9e3779b97f4a7c15ULL);
  return config;
}

/// Event-time span of a workload plus one mean gap — the per-lap offset in
/// duration mode, so cycled laps keep event time monotone overall.
TimestampUs WorkloadSpan(const std::vector<Event>& events, double eps) {
  TimestampUs max_t = 0;
  for (const Event& e : events) max_t = std::max(max_t, e.event_time);
  return max_t + static_cast<TimestampUs>(1e6 / std::max(eps, 1.0)) + 1;
}

uint64_t FoldChecksum(uint64_t h, uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ULL;
  return h;
}

/// The shared measured-phase loop: walks each assignment's batch stripe in
/// order (cycling with time-shifted laps in duration mode), pacing and
/// recording RTTs. `send` is Status(tenant, span) — the plain or resilient
/// ingest path.
template <typename SendFn>
void DriveLoop(const LoadGenOptions& options,
               const std::vector<Assignment>& assignments,
               Clock::time_point deadline, bool duration_mode,
               const SendFn& send, ClientResult* result) {
  // Cursor per assignment: next batch index within this client's stripe.
  struct Cursor {
    int64_t next_batch = 0;  // Global batch index into the tenant stream.
    int64_t lap = 0;         // Duration-mode lap count.
    TimestampUs lap_span = 0;
    bool done = false;
  };
  std::vector<Cursor> cursors(assignments.size());
  for (size_t i = 0; i < assignments.size(); ++i) {
    cursors[i].next_batch = assignments[i].rank;
    if (duration_mode) {
      cursors[i].lap_span =
          WorkloadSpan(*assignments[i].events, options.workload_eps);
    }
  }

  const int64_t batch = options.batch;
  std::vector<Event> scratch;
  Clock::time_point next_send = Clock::now();
  const bool paced = options.rate_eps > 0.0;

  size_t live = assignments.size();
  size_t turn = 0;
  while (live > 0) {
    if (duration_mode && Clock::now() >= deadline) break;
    // Round-robin across this client's tenants so they all advance.
    const size_t i = turn++ % assignments.size();
    Cursor& cur = cursors[i];
    if (cur.done) continue;
    const Assignment& a = assignments[i];
    const std::vector<Event>& stream = *a.events;
    const int64_t num_batches =
        (static_cast<int64_t>(stream.size()) + batch - 1) / batch;

    if (cur.next_batch >= num_batches) {
      if (duration_mode) {
        ++cur.lap;
        cur.next_batch = a.rank;
      } else {
        cur.done = true;
        --live;
        continue;
      }
    }

    const int64_t begin = cur.next_batch * batch;
    const int64_t end =
        std::min<int64_t>(begin + batch, static_cast<int64_t>(stream.size()));
    std::span<const Event> slice(stream.data() + begin,
                                 static_cast<size_t>(end - begin));
    std::span<const Event> to_send = slice;
    if (duration_mode && cur.lap > 0) {
      // Shift the lap's events forward in time so the stream stays a
      // stream instead of rewinding.
      scratch.assign(slice.begin(), slice.end());
      const TimestampUs shift = cur.lap * cur.lap_span;
      const int64_t id_shift =
          cur.lap * static_cast<int64_t>(stream.size());
      for (Event& e : scratch) {
        e.id += id_shift;
        e.event_time += shift;
        e.arrival_time += shift;
      }
      to_send = scratch;
    }

    if (paced) {
      std::this_thread::sleep_until(next_send);
      next_send += std::chrono::microseconds(static_cast<int64_t>(
          1e6 * static_cast<double>(to_send.size()) / options.rate_eps));
    }

    const Clock::time_point t0 = Clock::now();
    const Status sent = send(a.tenant, to_send);
    const Clock::time_point t1 = Clock::now();
    result->rtt_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
    ++result->batches_sent;
    if (sent.ok()) {
      result->events_sent_per_tenant[a.tenant - 1] +=
          static_cast<int64_t>(to_send.size());
    } else {
      ++result->errors;
    }
    cur.next_batch += a.num_writers;
  }
  result->status = Status::OK();
}

void DriveClient(const LoadGenOptions& options,
                 const std::vector<Assignment>& assignments,
                 Clock::time_point deadline, bool duration_mode,
                 ClientResult* result) {
  result->events_sent_per_tenant.assign(options.tenants, 0);
  Result<std::unique_ptr<StreamQClient>> connected =
      StreamQClient::Connect(options.port);
  if (!connected.ok()) {
    result->status = connected.status();
    return;
  }
  StreamQClient& client = *connected.value();
  DriveLoop(
      options, assignments, deadline, duration_mode,
      [&client](uint32_t tenant, std::span<const Event> events) {
        return client.Ingest(tenant, events);
      },
      result);
}

/// Retry-mode driver: a ResilientClient opens its own tenants (sequenced
/// sessions; registration must ride the same retrying connection so a
/// chaos fault during open is survivable), then runs the shared loop over
/// idempotent SeqIngest.
void DriveResilientClient(const LoadGenOptions& options,
                          const std::vector<Assignment>& assignments,
                          Clock::time_point deadline, bool duration_mode,
                          int client_index, ChaosInjector* injector,
                          ClientResult* result) {
  result->events_sent_per_tenant.assign(options.tenants, 0);
  RetryPolicy policy = options.retry_policy;
  // Decorrelate token minting and jitter across driver clients.
  policy.seed ^= (static_cast<uint64_t>(client_index) + 1) *
                 0x9E3779B97F4A7C15ULL;
  // A truncated frame leaves the peer waiting for bytes that never come,
  // so the reply timeout is what bounds each injected hang; the fault-free
  // default of 30 s would stretch a chaos run by minutes.
  const DurationUs reply_timeout =
      options.chaos.Enabled() ? Millis(500) : Seconds(30);
  Result<std::unique_ptr<ResilientClient>> connected =
      ResilientClient::Connect(options.port, policy, injector, reply_timeout);
  if (!connected.ok()) {
    result->status = connected.status();
    return;
  }
  ResilientClient& client = *connected.value();
  for (const Assignment& a : assignments) {
    SessionOptions session = options.session;
    session.Name("tenant-" + std::to_string(a.tenant));
    const Status opened = client.Open(a.tenant, session);
    if (!opened.ok()) {
      result->status = opened;
      result->resilience = client.stats();
      return;
    }
  }
  DriveLoop(
      options, assignments, deadline, duration_mode,
      [&client](uint32_t tenant, std::span<const Event> events) {
        return client.Ingest(tenant, events);
      },
      result);
  result->resilience = client.stats();
}

/// Warmup: scratch tenants (one per client, ids far above the measured
/// range) absorb paced traffic for warmup_s, then vanish.
void RunWarmup(const LoadGenOptions& options) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(options.warmup_s));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(options.clients));
  for (int c = 0; c < options.clients; ++c) {
    threads.emplace_back([&options, deadline, c] {
      const uint32_t tenant = 0x40000000u + static_cast<uint32_t>(c);
      Result<std::unique_ptr<StreamQClient>> connected =
          StreamQClient::Connect(options.port);
      if (!connected.ok()) return;
      StreamQClient& client = *connected.value();
      SessionOptions session = options.session;
      session.Name("warmup-" + std::to_string(tenant));
      if (!client.RegisterQuery(tenant, session).ok()) return;
      const GeneratedWorkload workload = GenerateWorkload(
          TenantWorkload(options, tenant, std::max<int64_t>(options.batch, 1)));
      while (Clock::now() < deadline) {
        (void)client.Ingest(tenant, workload.arrival_order);
        if (options.rate_eps > 0.0) {
          std::this_thread::sleep_for(std::chrono::microseconds(
              static_cast<int64_t>(1e6 * workload.arrival_order.size() /
                                   options.rate_eps)));
        }
      }
      (void)client.Unregister(tenant);
    });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace

Status LoadGenOptions::Validate() const {
  if (clients < 1) return Status::InvalidArgument("--clients must be >= 1");
  if (tenants < 1) return Status::InvalidArgument("--tenants must be >= 1");
  if (events_per_tenant < 0) {
    return Status::InvalidArgument("--events must be >= 0");
  }
  if (events_per_tenant == 0 && measure_s <= 0.0) {
    return Status::InvalidArgument(
        "duration mode (--events=0) needs --measure-s > 0");
  }
  if (batch < 1) return Status::InvalidArgument("--batch must be >= 1");
  if (rate_eps < 0.0) return Status::InvalidArgument("--rate must be >= 0");
  if (warmup_s < 0.0) return Status::InvalidArgument("--warmup-s must be >= 0");
  if (keys < 1) return Status::InvalidArgument("--keys must be >= 1");
  if (disorder_ms < 0.0) {
    return Status::InvalidArgument("--disorder must be >= 0");
  }
  if (workload_eps <= 0.0) {
    return Status::InvalidArgument("--workload-eps must be > 0");
  }
  if (retry) {
    STREAMQ_RETURN_NOT_OK(retry_policy.Validate());
    if (clients > tenants) {
      return Status::InvalidArgument(
          "--retry needs --clients <= --tenants: sequenced ingest requires "
          "a single writer per tenant");
    }
  }
  STREAMQ_RETURN_NOT_OK(chaos.Validate());
  if (chaos.Enabled() && !retry) {
    return Status::InvalidArgument(
        "--chaos-* fault injection requires --retry (a plain client cannot "
        "survive transport faults)");
  }
  return session.Validate();
}

std::string LoadGenReport::Summary() const {
  std::ostringstream out;
  out << "clients sent " << events_sent << " events in " << batches_sent
      << " batches over " << wall_s << " s (" << throughput_eps
      << " events/s), rtt p50 " << rtt_p50_us << " us p99 " << rtt_p99_us
      << " us, errors " << errors << ", tenants " << tenants.size()
      << ", identities " << (all_identities_ok ? "ok" : "VIOLATED")
      << ", delivery " << (all_deliveries_ok ? "ok" : "INCOMPLETE")
      << ", migrations " << shard_migrations << ", steals "
      << segments_stolen << ", faults " << faults_injected << ", retries "
      << retries << ", reconnects " << reconnects << ", replayed "
      << replayed << ", deduped " << deduped << ", throttled " << throttled
      << ", checksum " << combined_checksum;
  return out.str();
}

Result<LoadGenReport> RunLoadGen(const LoadGenOptions& options) {
  STREAMQ_RETURN_NOT_OK(options.Validate());
  const bool duration_mode = options.events_per_tenant == 0;

  // Control connection: registration and final collection stay off the
  // measured path — and off the chaos path, so sealing each tenant's
  // report is reliable even at high fault rates. Connecting retries a few
  // times because a chaos-configured server may close fresh accepts.
  std::unique_ptr<StreamQClient> control;
  for (int attempt = 0;; ++attempt) {
    Result<std::unique_ptr<StreamQClient>> connected =
        StreamQClient::Connect(options.port);
    if (connected.ok()) {
      // An accept-close fault only shows on the first round trip (the TCP
      // handshake happens in the kernel), so probe before trusting it.
      if (connected.value()->Metrics().ok()) {
        control = std::move(connected).value();
        break;
      }
      if (attempt >= 8) {
        return Status::IOError("control connection kept failing its probe");
      }
      continue;
    }
    if (attempt >= 8) return connected.status();
  }
  if (!options.retry) {
    // Retry mode instead opens sequenced sessions from the driver threads,
    // so registration itself survives injected faults.
    for (int t = 1; t <= options.tenants; ++t) {
      SessionOptions session = options.session;
      session.Name("tenant-" + std::to_string(t));
      STREAMQ_RETURN_NOT_OK(
          control->RegisterQuery(static_cast<uint32_t>(t), session));
    }
  }

  std::optional<ChaosInjector> injector;
  if (options.chaos.Enabled()) injector.emplace(options.chaos);

  // Deterministic per-tenant workloads (generated once, shared read-only).
  const int64_t per_tenant = duration_mode
                                 ? std::max<int64_t>(options.batch * 64, 4096)
                                 : options.events_per_tenant;
  std::vector<std::vector<Event>> streams;
  streams.reserve(static_cast<size_t>(options.tenants));
  for (int t = 1; t <= options.tenants; ++t) {
    streams.push_back(
        GenerateWorkload(
            TenantWorkload(options, static_cast<uint32_t>(t), per_tenant))
            .arrival_order);
  }

  // Tenant -> writers. clients <= tenants: single writer per tenant,
  // tenants round-robined over clients. clients > tenants: clients
  // round-robined over tenants, each co-writer taking a batch stripe.
  std::vector<std::vector<Assignment>> per_client(
      static_cast<size_t>(options.clients));
  if (options.clients <= options.tenants) {
    for (int t = 0; t < options.tenants; ++t) {
      per_client[static_cast<size_t>(t % options.clients)].push_back(
          Assignment{static_cast<uint32_t>(t + 1), &streams[t], 0, 1});
    }
  } else {
    std::vector<int> writers(static_cast<size_t>(options.tenants), 0);
    for (int c = 0; c < options.clients; ++c) {
      ++writers[static_cast<size_t>(c % options.tenants)];
    }
    for (int c = 0; c < options.clients; ++c) {
      const int t = c % options.tenants;
      per_client[static_cast<size_t>(c)].push_back(
          Assignment{static_cast<uint32_t>(t + 1), &streams[t],
                     c / options.tenants, writers[static_cast<size_t>(t)]});
    }
  }

  if (options.warmup_s > 0.0) RunWarmup(options);

  // Measured phase.
  std::vector<ClientResult> results(static_cast<size_t>(options.clients));
  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(
                      duration_mode ? options.measure_s : 0.0));
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(options.clients));
    for (int c = 0; c < options.clients; ++c) {
      if (options.retry) {
        threads.emplace_back(DriveResilientClient, std::cref(options),
                             std::cref(per_client[static_cast<size_t>(c)]),
                             deadline, duration_mode, c,
                             injector ? &*injector : nullptr,
                             &results[static_cast<size_t>(c)]);
      } else {
        threads.emplace_back(DriveClient, std::cref(options),
                             std::cref(per_client[static_cast<size_t>(c)]),
                             deadline, duration_mode,
                             &results[static_cast<size_t>(c)]);
      }
    }
    for (std::thread& t : threads) t.join();
  }
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  LoadGenReport report;
  std::vector<int64_t> sent_per_tenant(static_cast<size_t>(options.tenants),
                                       0);
  std::vector<double> rtts;
  for (const ClientResult& r : results) {
    STREAMQ_RETURN_NOT_OK(r.status);
    report.batches_sent += r.batches_sent;
    report.errors += r.errors;
    report.retries += r.resilience.retries;
    report.reconnects += r.resilience.reconnects;
    for (int t = 0; t < options.tenants; ++t) {
      sent_per_tenant[static_cast<size_t>(t)] +=
          r.events_sent_per_tenant[static_cast<size_t>(t)];
    }
    rtts.insert(rtts.end(), r.rtt_us.begin(), r.rtt_us.end());
  }
  if (injector) report.faults_injected = injector->stats().total();
  for (int64_t n : sent_per_tenant) report.events_sent += n;
  report.wall_s = wall_s;
  report.throughput_eps =
      wall_s > 0.0 ? static_cast<double>(report.events_sent) / wall_s : 0.0;
  if (!rtts.empty()) {
    std::sort(rtts.begin(), rtts.end());
    report.rtt_p50_us = rtts[rtts.size() / 2];
    report.rtt_p99_us = rtts[static_cast<size_t>(
        static_cast<double>(rtts.size() - 1) * 0.99)];
    report.rtt_max_us = rtts.back();
  }

  // Seal every tenant and collect its final accounting.
  report.all_identities_ok = true;
  report.all_deliveries_ok = true;
  uint64_t checksum = 0xcbf29ce484222325ULL;
  for (int t = 1; t <= options.tenants; ++t) {
    STREAMQ_ASSIGN_OR_RETURN(SnapshotStats stats,
                             control->Unregister(static_cast<uint32_t>(t)));
    TenantOutcome outcome;
    outcome.tenant = static_cast<uint32_t>(t);
    outcome.events_sent = sent_per_tenant[static_cast<size_t>(t - 1)];
    outcome.stats = stats;
    outcome.delivery_ok = stats.events_ingested == outcome.events_sent;
    outcome.identity_ok = stats.AccountingIdentityHolds();
    report.all_identities_ok &= outcome.identity_ok;
    report.all_deliveries_ok &= outcome.delivery_ok;
    report.shard_migrations += stats.shard_migrations;
    report.segments_stolen += stats.segments_stolen;
    report.replayed += stats.frames_replayed;
    report.deduped += stats.frames_deduped;
    report.throttled += stats.frames_throttled;
    checksum = FoldChecksum(checksum, stats.result_checksum);
    report.tenants.push_back(std::move(outcome));
  }
  report.combined_checksum = checksum;
  return report;
}

}  // namespace streamq
