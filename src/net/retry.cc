#include "net/retry.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <sstream>
#include <thread>
#include <utility>

#include "common/logging.h"

namespace streamq {

namespace {

void SleepUs(DurationUs us) {
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace

Status RetryPolicy::Validate() const {
  if (max_attempts < 1) {
    return Status::InvalidArgument("max_attempts must be >= 1");
  }
  if (initial_backoff < 0 || max_backoff < initial_backoff) {
    return Status::InvalidArgument(
        "backoff bounds must satisfy 0 <= initial <= max");
  }
  if (multiplier < 1.0) {
    return Status::InvalidArgument("multiplier must be >= 1");
  }
  if (jitter < 0.0 || jitter >= 1.0) {
    return Status::InvalidArgument("jitter must be in [0, 1)");
  }
  if (deadline <= 0) return Status::InvalidArgument("deadline must be > 0");
  return Status::OK();
}

std::string ResilienceStats::ToString() const {
  std::ostringstream out;
  out << "ops=" << ops << " retries=" << retries
      << " reconnects=" << reconnects << " replayed_acks=" << replayed_acks
      << " throttled=" << throttled
      << " backoff=" << FormatDuration(backoff_total_us);
  return out.str();
}

Result<std::unique_ptr<ResilientClient>> ResilientClient::Connect(
    uint16_t port, RetryPolicy policy, ChaosInjector* chaos,
    DurationUs reply_timeout) {
  STREAMQ_RETURN_NOT_OK(policy.Validate());
  std::unique_ptr<ResilientClient> client(
      new ResilientClient(port, policy, chaos, reply_timeout));
  // First connection attempt up front, so a dead server fails Connect the
  // way the plain client does; faults after this are retried per policy.
  STREAMQ_RETURN_NOT_OK(client->EnsureConnected());
  return client;
}

ResilientClient::ResilientClient(uint16_t port, RetryPolicy policy,
                                 ChaosInjector* chaos,
                                 DurationUs reply_timeout)
    : port_(port),
      policy_(policy),
      chaos_(chaos),
      reply_timeout_(reply_timeout),
      rng_(policy.seed) {}

bool ResilientClient::Retryable(StatusCode code) {
  switch (code) {
    // Transport faults, timeouts, decode failures, and server-side framing
    // rejections (a corrupted frame looks like a client bug to the server).
    case StatusCode::kIOError:
    case StatusCode::kResourceExhausted:
    case StatusCode::kInternal:
    case StatusCode::kCancelled:
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return true;
    // Protocol-state verdicts: retrying the same frame cannot change them.
    default:
      return false;
  }
}

void ResilientClient::Backoff(DurationUs* backoff) {
  const double scale =
      1.0 + policy_.jitter * (2.0 * rng_.NextDouble() - 1.0);
  const DurationUs sleep =
      static_cast<DurationUs>(static_cast<double>(*backoff) * scale);
  SleepUs(sleep);
  stats_.backoff_total_us += sleep;
  *backoff = std::min<DurationUs>(
      policy_.max_backoff,
      static_cast<DurationUs>(static_cast<double>(*backoff) *
                              policy_.multiplier));
}

Status ResilientClient::EnsureConnected() {
  if (client_ != nullptr && !client_->broken()) return Status::OK();
  client_.reset();
  Result<std::unique_ptr<StreamQClient>> connected =
      StreamQClient::Connect(port_, reply_timeout_, chaos_);
  if (!connected.ok()) return connected.status();
  client_ = std::move(connected).value();
  if (ever_connected_) ++stats_.reconnects;
  ever_connected_ = true;
  // Resume every open sequenced session by token. The server can only be
  // at next_seq - 1 (in-flight frame lost) or next_seq (applied, ack
  // lost); either way resending from next_seq is correct — the second
  // case dedups.
  for (auto& [id, st] : tenants_) {
    if (!st.open) continue;
    Result<SessionGrant> grant = client_->OpenSession(id, st.token,
                                                      st.options);
    if (!grant.ok()) return grant.status();
    st.epoch = grant.value().epoch;
  }
  return Status::OK();
}

Status ResilientClient::Execute(
    const std::function<Status(StreamQClient*, int64_t*)>& op) {
  const TimestampUs deadline = WallClockMicros() + policy_.deadline;
  DurationUs backoff = policy_.initial_backoff;
  int attempts = 0;
  Status last = Status::IOError("never attempted");
  for (;;) {
    if (WallClockMicros() >= deadline) {
      return Status::ResourceExhausted("retry deadline exceeded: " +
                                       last.ToString());
    }
    Status ready = EnsureConnected();
    if (ready.ok()) {
      int64_t throttle_ms = -1;  // -1 = the op was not throttled.
      const Status st = op(client_.get(), &throttle_ms);
      if (st.ok()) return st;
      if (throttle_ms >= 0) {
        // Admission control said "not now": honor the server's backoff.
        // Clamped — the advisory rides an unhashed reply field, so a
        // corrupted value must degrade to a long pause, not a wedged
        // client (the deadline still bounds the total).
        ++stats_.throttled;
        const DurationUs wait = std::min<DurationUs>(
            Seconds(5), Millis(std::max<int64_t>(1, throttle_ms)));
        if (WallClockMicros() + wait >= deadline) {
          return Status::ResourceExhausted(
              "retry deadline exceeded while throttled: " + st.ToString());
        }
        SleepUs(wait);
        stats_.backoff_total_us += wait;
        continue;
      }
      if (!Retryable(st.code())) return st;
      last = st;
    } else {
      if (!Retryable(ready.code())) return ready;
      last = ready;
    }
    ++attempts;
    if (attempts >= policy_.max_attempts) {
      return Status(last.code(), "gave up after " +
                                     std::to_string(attempts) +
                                     " attempts: " + last.message());
    }
    ++stats_.retries;
    Backoff(&backoff);
  }
}

Status ResilientClient::Open(uint32_t tenant, const SessionOptions& options) {
  const auto [it, inserted] = tenants_.try_emplace(tenant);
  TenantState& st = it->second;
  if (!inserted && st.open) {
    return Status::AlreadyExists("tenant " + std::to_string(tenant) +
                                 " already open on this client");
  }
  st.token = rng_.NextUint64() | 1;  // Nonzero by construction.
  st.options = options;
  const Status done = Execute(
      [&](StreamQClient* c, int64_t* throttle_ms) -> Status {
        Result<SessionGrant> grant = c->OpenSession(tenant, st.token,
                                                    options);
        if (!grant.ok()) {
          if (grant.status().code() == StatusCode::kResourceExhausted) {
            // Session quota: the reply's retry-after is folded into the
            // message; wait the server's advisory default.
            *throttle_ms = 5;
          }
          return grant.status();
        }
        st.epoch = grant.value().epoch;
        st.next_seq = grant.value().last_acked_seq + 1;
        st.open = true;
        return Status::OK();
      });
  if (done.ok()) {
    ++stats_.ops;
  } else if (!st.open) {
    tenants_.erase(tenant);  // Nothing armed; a later Open mints fresh.
  }
  return done;
}

Status ResilientClient::Ingest(uint32_t tenant,
                               std::span<const Event> events) {
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end() || !it->second.open) {
    return Status::FailedPrecondition("tenant " + std::to_string(tenant) +
                                      " is not open; call Open first");
  }
  TenantState& st = it->second;
  const uint64_t seq = st.next_seq;
  const Status done = Execute(
      [&](StreamQClient* c, int64_t* throttle_ms) -> Status {
        Result<SeqReply> reply = c->SeqIngest(tenant, st.token, seq, events);
        if (!reply.ok()) return reply.status();
        if (reply.value().throttled) {
          *throttle_ms = reply.value().retry_after_ms;
          return Status::ResourceExhausted("throttled by admission control");
        }
        if (reply.value().replayed) ++stats_.replayed_acks;
        return Status::OK();
      });
  if (done.ok()) {
    st.next_seq = seq + 1;
    ++stats_.ops;
  }
  return done;
}

Status ResilientClient::Heartbeat(uint32_t tenant,
                                  TimestampUs event_time_bound,
                                  TimestampUs stream_time) {
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end() || !it->second.open) {
    return Status::FailedPrecondition("tenant " + std::to_string(tenant) +
                                      " is not open; call Open first");
  }
  TenantState& st = it->second;
  const uint64_t seq = st.next_seq;
  const Status done = Execute(
      [&](StreamQClient* c, int64_t* throttle_ms) -> Status {
        (void)throttle_ms;
        Result<SeqReply> reply = c->SeqHeartbeat(
            tenant, st.token, seq, event_time_bound, stream_time);
        if (!reply.ok()) return reply.status();
        if (reply.value().replayed) ++stats_.replayed_acks;
        return Status::OK();
      });
  if (done.ok()) {
    st.next_seq = seq + 1;
    ++stats_.ops;
  }
  return done;
}

Result<SnapshotStats> ResilientClient::Snapshot(uint32_t tenant) {
  SnapshotStats out;
  const Status done = Execute(
      [&](StreamQClient* c, int64_t*) -> Status {
        Result<SnapshotStats> stats = c->Snapshot(tenant);
        if (!stats.ok()) return stats.status();
        out = std::move(stats).value();
        return Status::OK();
      });
  if (!done.ok()) return done;
  ++stats_.ops;
  return out;
}

Result<SnapshotStats> ResilientClient::Unregister(uint32_t tenant) {
  SnapshotStats out;
  const Status done = Execute(
      [&](StreamQClient* c, int64_t*) -> Status {
        Result<SnapshotStats> stats = c->Unregister(tenant);
        if (!stats.ok()) return stats.status();
        out = std::move(stats).value();
        return Status::OK();
      });
  if (!done.ok()) return done;
  tenants_.erase(tenant);
  ++stats_.ops;
  return out;
}

uint32_t ResilientClient::epoch(uint32_t tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.epoch;
}

}  // namespace streamq
