#ifndef STREAMQ_NET_SERVER_H_
#define STREAMQ_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/metrics_observer.h"
#include "core/stream_session.h"
#include "net/frame.h"
#include "net/socket.h"

namespace streamq {

struct ServerOptions {
  /// Port to bind on 127.0.0.1 (0 = ephemeral; read it back via port()).
  uint16_t port = 0;

  /// Per-frame payload bound; larger length prefixes are protocol errors.
  size_t max_frame_payload = kDefaultMaxFramePayload;

  /// Accept-poll granularity (how quickly Stop() is observed).
  DurationUs accept_poll = Millis(100);

  /// Connection recv timeout: the read loop wakes this often to check the
  /// stop flag, then resumes.
  DurationUs recv_poll = Millis(200);
};

/// Monotonic server-wide counters (snapshot via StreamQServer::stats()).
struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t frames_processed = 0;
  /// Malformed traffic: framing errors, unknown tenants/types, bad
  /// payloads, rejected registrations. The smoke gates hold this at zero
  /// for well-behaved load.
  int64_t protocol_errors = 0;
  /// Application-level error replies on well-formed frames (e.g. strict
  /// ingest validation tripping) — a tenant hurting itself, not the
  /// protocol.
  int64_t application_errors = 0;
  int64_t events_ingested = 0;
  int64_t tenants_registered = 0;
  int64_t tenants_unregistered = 0;
};

/// The streamq service: a long-running multi-tenant continuous-query server
/// speaking the frame protocol (net/frame.h) over localhost TCP.
///
/// Every tenant is one StreamSession opened through the same
/// SessionOptions front door the CLI uses — RegisterQuery payloads are
/// literally the CLI's `--flag=value` vocabulary. Tenants are fully
/// isolated: each has its own session (own handler, window store, arena
/// wiring, optional sharded runner) and its own mutex, so one tenant's
/// malformed frames, validation rejects, or shed events cannot perturb
/// another tenant's pipeline — the per-tenant `in == out + late + shed`
/// identity and result bytes match a solo run exactly.
///
/// Threading: one accept thread plus one thread per connection. A frame
/// addressed to tenant T locks only T's mutex, so concurrent clients
/// driving different tenants run in parallel; two connections driving the
/// same tenant serialize (and interleave at batch granularity).
///
/// Failure containment: a connection whose byte stream breaks framing
/// (bad magic, oversized length, unknown type) gets one kError reply and
/// is closed — a corrupt length-prefixed stream has no resync point. A
/// well-formed frame with a bad payload (unparseable options, mangled
/// event batch, unknown tenant) gets a kError reply and the connection
/// lives on. Neither path touches any session.
class StreamQServer {
 public:
  explicit StreamQServer(ServerOptions options = {});
  ~StreamQServer();

  StreamQServer(const StreamQServer&) = delete;
  StreamQServer& operator=(const StreamQServer&) = delete;

  /// Binds, listens, and starts the accept thread.
  Status Start();

  /// Bound port (valid after Start; the ephemeral-port answer).
  uint16_t port() const { return listener_.port(); }

  /// Blocks until a client sends kShutdown (or Stop is called).
  void WaitForShutdownRequest();

  /// Stops accepting, unblocks and joins every connection thread, and
  /// finishes any still-registered sessions. Idempotent.
  void Stop();

  bool running() const { return running_; }

  ServerStats stats() const;

  size_t active_tenants() const;

  /// The server-wide metrics registry every tenant session reports into
  /// (amend rates, buffering latency, watermark lag, ...). Snapshot-able
  /// locally or over the wire via kMetricsRequest frames.
  const MetricsObserver& metrics() const { return metrics_; }

 private:
  /// One registered tenant: the session plus the mutex serializing access
  /// to it. Held by shared_ptr so a frame in flight survives a concurrent
  /// unregister (it then sees a finished session and reports the error).
  struct Tenant {
    std::mutex mu;
    std::unique_ptr<StreamSession> session;
  };

  struct Connection {
    Socket sock;
    std::thread thread;
  };

  void AcceptLoop();
  void ConnectionLoop(Connection* conn);

  /// Dispatches one well-formed frame; returns the reply frame.
  Frame HandleFrame(const Frame& request);
  Frame HandleRegister(const Frame& request);
  Frame HandleIngest(const Frame& request);
  Frame HandleHeartbeat(const Frame& request);
  Frame HandleSnapshot(const Frame& request, bool unregister);
  Frame HandleMetrics(const Frame& request);

  Frame ErrorReply(uint32_t tenant, const Status& status, bool protocol);

  std::shared_ptr<Tenant> FindTenant(uint32_t id);

  ServerOptions options_;
  Listener listener_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  mutable std::mutex registry_mu_;
  std::map<uint32_t, std::shared_ptr<Tenant>> tenants_;

  std::mutex conn_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;

  mutable std::mutex stats_mu_;
  ServerStats stats_;

  /// Shared by every tenant session (MetricsObserver is thread-safe);
  /// installed at registration, before the first ingest.
  MetricsObserver metrics_;

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace streamq

#endif  // STREAMQ_NET_SERVER_H_
