#ifndef STREAMQ_NET_SERVER_H_
#define STREAMQ_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/metrics_observer.h"
#include "core/stream_session.h"
#include "net/chaos.h"
#include "net/frame.h"
#include "net/socket.h"

namespace streamq {

struct ServerOptions {
  /// Port to bind on 127.0.0.1 (0 = ephemeral; read it back via port()).
  uint16_t port = 0;

  /// Per-frame payload bound; larger length prefixes are protocol errors.
  size_t max_frame_payload = kDefaultMaxFramePayload;

  /// Accept-poll granularity (how quickly Stop() is observed).
  DurationUs accept_poll = Millis(100);

  /// Connection recv timeout: the read loop wakes this often to check the
  /// stop flag, then resumes.
  DurationUs recv_poll = Millis(200);

  // ------------------------------------------- admission control / quotas

  /// Per-tenant token-bucket ingest rate (events/second). 0 = unlimited.
  /// A sequenced ingest whose batch exceeds the available tokens is NOT
  /// applied; the client gets kOverloaded with a computed retry-after and
  /// must resend the same sequence number.
  double quota_rate_eps = 0.0;

  /// Token-bucket capacity in events. 0 with a nonzero rate defaults to
  /// one second of refill (== quota_rate_eps). The accepted-event bound
  /// the f25 overload gate checks is exactly rate * wall + burst.
  double quota_burst = 0.0;

  /// Max in-flight (buffered but unprocessed) events per tenant; a batch
  /// that would exceed it is throttled. 0 = unlimited.
  int64_t quota_max_buffered = 0;

  /// Max concurrently registered tenants; opens beyond it are throttled.
  /// 0 = unlimited.
  int64_t quota_max_sessions = 0;

  /// Advisory backoff carried by kOverloaded replies when no better value
  /// is computable (session/buffer quota; the rate bucket derives its own).
  uint32_t retry_after_ms = 5;

  /// Optional transport chaos: accepted connections are wrapped in
  /// ChaosTransport over this injector, and accept failures are injected
  /// per its spec. Null = clean wire. Not owned; must outlive the server.
  ChaosInjector* chaos = nullptr;
};

/// Monotonic server-wide counters (snapshot via StreamQServer::stats()).
struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t frames_processed = 0;
  /// Malformed traffic: framing errors, unknown tenants/types, bad
  /// payloads, rejected registrations. The smoke gates hold this at zero
  /// for well-behaved load.
  int64_t protocol_errors = 0;
  /// Application-level error replies on well-formed frames (e.g. strict
  /// ingest validation tripping) — a tenant hurting itself, not the
  /// protocol.
  int64_t application_errors = 0;
  int64_t events_ingested = 0;
  int64_t tenants_registered = 0;
  int64_t tenants_unregistered = 0;
  /// Resilience accounting. Replayed counts sequenced frames arriving at
  /// or below the tenant's last-acked seq; deduped counts the ones
  /// suppressed without touching the session. The two are equal by
  /// construction — the no-double-apply invariant the chaos soak asserts.
  int64_t frames_replayed = 0;
  int64_t frames_deduped = 0;
  /// kOverloaded replies (rate, buffer, or session quota).
  int64_t frames_throttled = 0;
  /// kOpenSession frames that resumed an existing sequenced session
  /// (epoch bumps — one per client reconnect that re-opened).
  int64_t sessions_resumed = 0;
  /// Opens/registrations rejected by admission control (session quota or
  /// draining).
  int64_t sessions_rejected = 0;
  /// Sequenced frames whose payload failed the end-to-end integrity hash
  /// (transport corruption caught before it could touch a session).
  int64_t integrity_failures = 0;
};

/// The streamq service: a long-running multi-tenant continuous-query server
/// speaking the frame protocol (net/frame.h) over localhost TCP.
///
/// Every tenant is one StreamSession opened through the same
/// SessionOptions front door the CLI uses — RegisterQuery payloads are
/// literally the CLI's `--flag=value` vocabulary. Tenants are fully
/// isolated: each has its own session (own handler, window store, arena
/// wiring, optional sharded runner) and its own mutex, so one tenant's
/// malformed frames, validation rejects, or shed events cannot perturb
/// another tenant's pipeline — the per-tenant `in == out + late + shed`
/// identity and result bytes match a solo run exactly.
///
/// Threading: one accept thread plus one thread per connection. A frame
/// addressed to tenant T locks only T's mutex, so concurrent clients
/// driving different tenants run in parallel; two connections driving the
/// same tenant serialize (and interleave at batch granularity).
///
/// Failure containment: a connection whose byte stream breaks framing
/// (bad magic, oversized length, unknown type) gets one kError reply and
/// is closed — a corrupt length-prefixed stream has no resync point. A
/// well-formed frame with a bad payload (unparseable options, mangled
/// event batch, unknown tenant) gets a kError reply and the connection
/// lives on. Neither path touches any session.
class StreamQServer {
 public:
  explicit StreamQServer(ServerOptions options = {});
  ~StreamQServer();

  StreamQServer(const StreamQServer&) = delete;
  StreamQServer& operator=(const StreamQServer&) = delete;

  /// Binds, listens, and starts the accept thread.
  Status Start();

  /// Bound port (valid after Start; the ephemeral-port answer).
  uint16_t port() const { return listener_.port(); }

  /// Blocks until a client sends kShutdown (or Stop is called).
  void WaitForShutdownRequest();

  /// Stops accepting, unblocks and joins every connection thread, and
  /// finishes any still-registered sessions. Idempotent.
  void Stop();

  /// Graceful-drain phase 1: closes the listener and rejects new session
  /// registrations/opens, while connections already established keep
  /// ingesting, snapshotting and unregistering. Idempotent.
  void BeginDrain();

  /// Full graceful drain: BeginDrain, then wait up to `grace` for every
  /// live connection to finish (clients close when done), then Stop —
  /// which flushes any still-registered session before teardown.
  void Drain(DurationUs grace = Seconds(5));

  bool draining() const { return draining_; }

  bool running() const { return running_; }

  ServerStats stats() const;

  size_t active_tenants() const;

  /// The server-wide metrics registry every tenant session reports into
  /// (amend rates, buffering latency, watermark lag, ...). Snapshot-able
  /// locally or over the wire via kMetricsRequest frames.
  const MetricsObserver& metrics() const { return metrics_; }

 private:
  /// One registered tenant: the session plus the mutex serializing access
  /// to it. Held by shared_ptr so a frame in flight survives a concurrent
  /// unregister (it then sees a finished session and reports the error).
  struct Tenant {
    std::mutex mu;
    std::unique_ptr<StreamSession> session;
    /// Sequenced-protocol state (all zero for plain kRegisterQuery
    /// tenants). The token is client-minted at open; a frame carrying a
    /// different token is rejected, which also guards against corrupted
    /// tenant ids steering a frame into the wrong session.
    uint64_t token = 0;
    uint32_t epoch = 0;
    uint64_t last_acked_seq = 0;
    int64_t frames_replayed = 0;
    int64_t frames_deduped = 0;
    int64_t frames_throttled = 0;
    /// Token bucket (quota_rate_eps > 0): current tokens and last refill.
    double bucket_tokens = 0.0;
    TimestampUs bucket_refill_us = 0;
  };

  struct Connection {
    ChaosTransport sock;
    std::thread thread;
  };

  void AcceptLoop();
  void ConnectionLoop(Connection* conn);

  /// Dispatches one well-formed frame; returns the reply frame.
  Frame HandleFrame(const Frame& request);
  Frame HandleRegister(const Frame& request);
  Frame HandleIngest(const Frame& request);
  Frame HandleHeartbeat(const Frame& request);
  Frame HandleSnapshot(const Frame& request, bool unregister);
  Frame HandleMetrics(const Frame& request);
  Frame HandleOpenSession(const Frame& request);
  Frame HandleSequenced(const Frame& request);

  Frame ErrorReply(uint32_t tenant, const Status& status, bool protocol);
  Frame OverloadedReply(uint32_t tenant, uint32_t retry_after_ms,
                        const std::string& why, Tenant* state);

  /// Token-bucket + buffered-events admission for a sequenced batch of
  /// `count` events. OK = admit; ResourceExhausted carries the computed
  /// retry-after (ms) in `*retry_after_ms`. Caller holds tenant->mu.
  Status AdmitBatch(Tenant* tenant, int64_t count, uint32_t* retry_after_ms);

  std::shared_ptr<Tenant> FindTenant(uint32_t id);

  ServerOptions options_;
  Listener listener_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};
  /// Connections whose loop is currently running (Drain waits on zero).
  std::atomic<int64_t> live_connections_{0};

  mutable std::mutex registry_mu_;
  std::map<uint32_t, std::shared_ptr<Tenant>> tenants_;

  std::mutex conn_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;

  mutable std::mutex stats_mu_;
  ServerStats stats_;

  /// Shared by every tenant session (MetricsObserver is thread-safe);
  /// installed at registration, before the first ingest.
  MetricsObserver metrics_;

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace streamq

#endif  // STREAMQ_NET_SERVER_H_
