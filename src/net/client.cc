#include "net/client.h"

#include <utility>

namespace streamq {

Result<std::unique_ptr<StreamQClient>> StreamQClient::Connect(
    uint16_t port, DurationUs reply_timeout) {
  STREAMQ_ASSIGN_OR_RETURN(Socket sock, ConnectLoopback(port));
  STREAMQ_RETURN_NOT_OK(sock.SetRecvTimeout(reply_timeout));
  return std::unique_ptr<StreamQClient>(
      new StreamQClient(std::move(sock), reply_timeout));
}

Status StreamQClient::RegisterQuery(uint32_t tenant,
                                    const SessionOptions& options) {
  Frame request{FrameType::kRegisterQuery, tenant, options.Serialize()};
  STREAMQ_ASSIGN_OR_RETURN(Frame reply, RoundTrip(request));
  (void)reply;
  return Status::OK();
}

Status StreamQClient::Ingest(uint32_t tenant, std::span<const Event> events) {
  Frame request{FrameType::kIngest, tenant, {}};
  EncodeEventBatch(events, &request.payload);
  STREAMQ_ASSIGN_OR_RETURN(Frame reply, RoundTrip(request));
  (void)reply;
  return Status::OK();
}

Status StreamQClient::Heartbeat(uint32_t tenant, TimestampUs event_time_bound,
                                TimestampUs stream_time) {
  Frame request{FrameType::kHeartbeat, tenant, {}};
  AppendI64(event_time_bound, &request.payload);
  AppendI64(stream_time, &request.payload);
  STREAMQ_ASSIGN_OR_RETURN(Frame reply, RoundTrip(request));
  (void)reply;
  return Status::OK();
}

Result<SnapshotStats> StreamQClient::Snapshot(uint32_t tenant) {
  STREAMQ_ASSIGN_OR_RETURN(
      Frame reply, RoundTrip(Frame{FrameType::kSnapshot, tenant, {}}));
  if (reply.type != FrameType::kReport) {
    return Status::IOError("snapshot reply was not a report frame");
  }
  SnapshotStats stats;
  STREAMQ_RETURN_NOT_OK(DecodeSnapshotStats(reply.payload, &stats));
  return stats;
}

Result<SnapshotStats> StreamQClient::Unregister(uint32_t tenant) {
  STREAMQ_ASSIGN_OR_RETURN(
      Frame reply, RoundTrip(Frame{FrameType::kUnregister, tenant, {}}));
  if (reply.type != FrameType::kReport) {
    return Status::IOError("unregister reply was not a report frame");
  }
  SnapshotStats stats;
  STREAMQ_RETURN_NOT_OK(DecodeSnapshotStats(reply.payload, &stats));
  return stats;
}

Result<std::string> StreamQClient::Metrics(uint8_t format) {
  Frame request{FrameType::kMetricsRequest, 0, {}};
  request.payload.push_back(static_cast<char>(format));
  STREAMQ_ASSIGN_OR_RETURN(Frame reply, RoundTrip(request));
  if (reply.type != FrameType::kMetricsReply) {
    return Status::IOError("metrics reply had the wrong frame type");
  }
  return std::move(reply.payload);
}

Status StreamQClient::Shutdown() {
  STREAMQ_ASSIGN_OR_RETURN(Frame reply,
                           RoundTrip(Frame{FrameType::kShutdown, 0, {}}));
  (void)reply;
  return Status::OK();
}

Result<Frame> StreamQClient::RoundTrip(const Frame& request) {
  std::string wire;
  AppendFrame(request, &wire);
  STREAMQ_RETURN_NOT_OK(sock_.SendAll(wire.data(), wire.size()));
  return AwaitReply();
}

Result<Frame> StreamQClient::SendRawAndAwaitReply(std::string_view bytes) {
  STREAMQ_RETURN_NOT_OK(sock_.SendAll(bytes.data(), bytes.size()));
  return AwaitReply();
}

Result<Frame> StreamQClient::AwaitReply() {
  char buf[64 * 1024];
  for (;;) {
    Frame frame;
    bool have_frame = false;
    STREAMQ_RETURN_NOT_OK(decoder_.Next(&frame, &have_frame));
    if (have_frame) {
      if (!IsReplyFrameType(frame.type)) {
        return Status::IOError("server sent a request-typed frame");
      }
      if (frame.type == FrameType::kError) {
        Status decoded = DecodeError(frame.payload);
        if (decoded.ok()) {
          return Status::IOError("error frame carried an OK status");
        }
        return decoded;
      }
      return frame;
    }
    STREAMQ_ASSIGN_OR_RETURN(size_t n, sock_.Recv(buf, sizeof(buf)));
    if (n == 0) return Status::IOError("connection closed by server");
    decoder_.Feed(std::string_view(buf, n));
  }
}

}  // namespace streamq
