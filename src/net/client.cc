#include "net/client.h"

#include <utility>

namespace streamq {

Result<std::unique_ptr<StreamQClient>> StreamQClient::Connect(
    uint16_t port, DurationUs reply_timeout, ChaosInjector* chaos) {
  STREAMQ_ASSIGN_OR_RETURN(Socket sock, ConnectLoopback(port));
  STREAMQ_RETURN_NOT_OK(sock.SetRecvTimeout(reply_timeout));
  return std::unique_ptr<StreamQClient>(new StreamQClient(
      ChaosTransport(std::move(sock), chaos), reply_timeout));
}

Status StreamQClient::RegisterQuery(uint32_t tenant,
                                    const SessionOptions& options) {
  Frame request{FrameType::kRegisterQuery, tenant, options.Serialize()};
  STREAMQ_ASSIGN_OR_RETURN(Frame reply, RoundTrip(request));
  if (reply.type == FrameType::kOverloaded) {
    OverloadInfo info;
    STREAMQ_RETURN_NOT_OK(DecodeOverloaded(reply.payload, &info));
    return Status::ResourceExhausted("overloaded (retry after " +
                                     std::to_string(info.retry_after_ms) +
                                     "ms): " + info.message);
  }
  if (reply.type != FrameType::kOk) {
    return Status::IOError("register reply had the wrong frame type");
  }
  return Status::OK();
}

Status StreamQClient::Ingest(uint32_t tenant, std::span<const Event> events) {
  Frame request{FrameType::kIngest, tenant, {}};
  EncodeEventBatch(events, &request.payload);
  STREAMQ_ASSIGN_OR_RETURN(Frame reply, RoundTrip(request));
  (void)reply;
  return Status::OK();
}

Status StreamQClient::Heartbeat(uint32_t tenant, TimestampUs event_time_bound,
                                TimestampUs stream_time) {
  Frame request{FrameType::kHeartbeat, tenant, {}};
  AppendI64(event_time_bound, &request.payload);
  AppendI64(stream_time, &request.payload);
  STREAMQ_ASSIGN_OR_RETURN(Frame reply, RoundTrip(request));
  (void)reply;
  return Status::OK();
}

Result<SessionGrant> StreamQClient::OpenSession(uint32_t tenant,
                                                uint64_t token,
                                                const SessionOptions& options) {
  if (token == 0) {
    return Status::InvalidArgument("session token must be nonzero");
  }
  Frame request{FrameType::kOpenSession, tenant, {}};
  EncodeOpenSession(token, options.Serialize(), &request.payload);
  STREAMQ_ASSIGN_OR_RETURN(Frame reply, RoundTrip(request));
  if (reply.type == FrameType::kOverloaded) {
    OverloadInfo info;
    STREAMQ_RETURN_NOT_OK(DecodeOverloaded(reply.payload, &info));
    return Status::ResourceExhausted("overloaded (retry after " +
                                     std::to_string(info.retry_after_ms) +
                                     "ms): " + info.message);
  }
  if (reply.type != FrameType::kSessionAccepted) {
    return Status::IOError("open-session reply had the wrong frame type");
  }
  SessionGrant grant;
  const Status decoded = DecodeSessionGrant(reply.payload, &grant);
  if (!decoded.ok()) {
    // A corrupt grant leaves us unsure what the server armed; only a fresh
    // conversation can resolve it.
    broken_ = true;
    return decoded;
  }
  if (grant.token != token) {
    broken_ = true;
    return Status::IOError("session grant echoed a different token");
  }
  return grant;
}

Result<SeqReply> StreamQClient::SeqRoundTrip(const Frame& request) {
  STREAMQ_ASSIGN_OR_RETURN(Frame reply, RoundTrip(request));
  SeqReply out;
  if (reply.type == FrameType::kOverloaded) {
    OverloadInfo info;
    STREAMQ_RETURN_NOT_OK(DecodeOverloaded(reply.payload, &info));
    out.throttled = true;
    out.retry_after_ms = info.retry_after_ms;
    return out;
  }
  if (reply.type != FrameType::kAck) {
    return Status::IOError("sequenced reply was not an ack");
  }
  AckInfo ack;
  const Status decoded = DecodeAck(reply.payload, &ack);
  if (!decoded.ok()) {
    broken_ = true;
    return decoded;
  }
  out.acked_seq = ack.acked_seq;
  out.replayed = ack.replayed != 0;
  return out;
}

Result<SeqReply> StreamQClient::SeqIngest(uint32_t tenant, uint64_t token,
                                          uint64_t seq,
                                          std::span<const Event> events) {
  Frame request{FrameType::kSeqIngest, tenant, {}};
  std::string body;
  EncodeEventBatch(events, &body);
  AppendSeqEnvelope(token, seq, body, &request.payload);
  STREAMQ_ASSIGN_OR_RETURN(SeqReply reply, SeqRoundTrip(request));
  if (!reply.throttled && reply.acked_seq != seq) {
    // An ack for a seq we did not send means the conversation is skewed
    // (e.g. a corrupted ack that still passed framing); resync over a new
    // connection.
    broken_ = true;
    return Status::IOError("ack for unexpected seq " +
                           std::to_string(reply.acked_seq) + " (sent " +
                           std::to_string(seq) + ")");
  }
  return reply;
}

Result<SeqReply> StreamQClient::SeqHeartbeat(uint32_t tenant, uint64_t token,
                                             uint64_t seq,
                                             TimestampUs event_time_bound,
                                             TimestampUs stream_time) {
  Frame request{FrameType::kSeqHeartbeat, tenant, {}};
  std::string body;
  AppendI64(event_time_bound, &body);
  AppendI64(stream_time, &body);
  AppendSeqEnvelope(token, seq, body, &request.payload);
  STREAMQ_ASSIGN_OR_RETURN(SeqReply reply, SeqRoundTrip(request));
  if (!reply.throttled && reply.acked_seq != seq) {
    broken_ = true;
    return Status::IOError("ack for unexpected seq " +
                           std::to_string(reply.acked_seq) + " (sent " +
                           std::to_string(seq) + ")");
  }
  return reply;
}

Result<SnapshotStats> StreamQClient::Snapshot(uint32_t tenant) {
  STREAMQ_ASSIGN_OR_RETURN(
      Frame reply, RoundTrip(Frame{FrameType::kSnapshot, tenant, {}}));
  if (reply.type != FrameType::kReport) {
    return Status::IOError("snapshot reply was not a report frame");
  }
  SnapshotStats stats;
  STREAMQ_RETURN_NOT_OK(DecodeSnapshotStats(reply.payload, &stats));
  return stats;
}

Result<SnapshotStats> StreamQClient::Unregister(uint32_t tenant) {
  STREAMQ_ASSIGN_OR_RETURN(
      Frame reply, RoundTrip(Frame{FrameType::kUnregister, tenant, {}}));
  if (reply.type != FrameType::kReport) {
    return Status::IOError("unregister reply was not a report frame");
  }
  SnapshotStats stats;
  STREAMQ_RETURN_NOT_OK(DecodeSnapshotStats(reply.payload, &stats));
  return stats;
}

Result<std::string> StreamQClient::Metrics(uint8_t format) {
  Frame request{FrameType::kMetricsRequest, 0, {}};
  request.payload.push_back(static_cast<char>(format));
  STREAMQ_ASSIGN_OR_RETURN(Frame reply, RoundTrip(request));
  if (reply.type != FrameType::kMetricsReply) {
    return Status::IOError("metrics reply had the wrong frame type");
  }
  return std::move(reply.payload);
}

Status StreamQClient::Shutdown() {
  STREAMQ_ASSIGN_OR_RETURN(Frame reply,
                           RoundTrip(Frame{FrameType::kShutdown, 0, {}}));
  (void)reply;
  return Status::OK();
}

Result<Frame> StreamQClient::RoundTrip(const Frame& request) {
  if (broken_) {
    return Status::IOError(
        "connection is broken (earlier transport fault); reconnect");
  }
  std::string wire;
  AppendFrame(request, &wire);
  const Status sent = sock_.SendAll(wire.data(), wire.size());
  if (!sent.ok()) {
    broken_ = true;
    return sent;
  }
  return AwaitReply(static_cast<int64_t>(request.tenant));
}

Result<Frame> StreamQClient::SendRawAndAwaitReply(std::string_view bytes) {
  if (broken_) {
    return Status::IOError(
        "connection is broken (earlier transport fault); reconnect");
  }
  const Status sent = sock_.SendAll(bytes.data(), bytes.size());
  if (!sent.ok()) {
    broken_ = true;
    return sent;
  }
  return AwaitReply();
}

Result<Frame> StreamQClient::AwaitReply(int64_t expected_tenant) {
  char buf[64 * 1024];
  for (;;) {
    Frame frame;
    bool have_frame = false;
    const Status framing = decoder_.Next(&frame, &have_frame);
    if (!framing.ok()) {
      broken_ = true;  // Sticky decoder failure: no resync point.
      return framing;
    }
    if (have_frame) {
      // The echo check runs before kError interpretation: a misrouted
      // request usually comes back as some other tenant's error verdict,
      // and that verdict must read as a transport fault (retryable over a
      // new connection), not as protocol state.
      if (expected_tenant >= 0 &&
          frame.tenant != static_cast<uint32_t>(expected_tenant)) {
        broken_ = true;
        return Status::IOError(
            "reply tenant " + std::to_string(frame.tenant) +
            " does not echo request tenant " +
            std::to_string(expected_tenant) +
            "; header corrupted in flight, reconnect");
      }
      if (!IsReplyFrameType(frame.type)) {
        broken_ = true;
        return Status::IOError("server sent a request-typed frame");
      }
      if (frame.type == FrameType::kError) {
        Status decoded = DecodeError(frame.payload);
        if (decoded.ok()) {
          broken_ = true;
          return Status::IOError("error frame carried an OK status");
        }
        return decoded;
      }
      return frame;
    }
    Result<size_t> received = sock_.Recv(buf, sizeof(buf));
    if (!received.ok()) {
      if (received.status().code() == StatusCode::kResourceExhausted &&
          decoder_.buffered_bytes() > 0) {
        // Timeout mid-frame: the stream stalled inside a partial reply
        // (truncated send, wedged server). The bytes already buffered have
        // no resync point, so fail the connection cleanly instead of
        // leaving a desynchronized decoder for the next call to trip over.
        broken_ = true;
        return Status::IOError(
            "reply timed out mid-frame with " +
            std::to_string(decoder_.buffered_bytes()) +
            " bytes buffered; stream desynchronized, reconnect");
      }
      // Even a clean (no partial frame) timeout leaves this request
      // unanswered; a later reply would pair with the wrong round trip.
      // Either way the connection is done.
      broken_ = true;
      return received.status();
    }
    if (received.value() == 0) {
      broken_ = true;
      return Status::IOError("connection closed by server");
    }
    decoder_.Feed(std::string_view(buf, received.value()));
  }
}

}  // namespace streamq
