#ifndef STREAMQ_QUALITY_ORACLE_H_
#define STREAMQ_QUALITY_ORACLE_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "agg/aggregate.h"
#include "stream/event.h"
#include "window/window.h"

namespace streamq {

/// Ground-truth window results: what a query would produce if every tuple
/// were processed, regardless of arrival order. The evaluation substrate —
/// every quality number in the experiments is "produced result vs oracle".
class OracleEvaluator {
 public:
  /// Computes exact results for every (window, key) touched by `events`
  /// (any order; the oracle is order-insensitive by construction).
  OracleEvaluator(const std::vector<Event>& events, const WindowSpec& window,
                  const AggregateSpec& aggregate);

  /// Exact result for one window instance, or nullptr if no tuple of that
  /// key falls into it.
  const WindowResult* Lookup(TimestampUs window_start, int64_t key) const;

  /// All exact results, ordered by (window start, key). emit_stream_time is
  /// set to the window end (the earliest semantically possible emission).
  const std::vector<WindowResult>& results() const { return results_; }

  int64_t total_windows() const {
    return static_cast<int64_t>(results_.size());
  }

 private:
  std::map<std::pair<TimestampUs, int64_t>, size_t> index_;
  std::vector<WindowResult> results_;
};

}  // namespace streamq

#endif  // STREAMQ_QUALITY_ORACLE_H_
