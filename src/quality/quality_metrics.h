#ifndef STREAMQ_QUALITY_QUALITY_METRICS_H_
#define STREAMQ_QUALITY_QUALITY_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "quality/oracle.h"
#include "window/window.h"

namespace streamq {

/// Quality of one produced window result against the oracle.
struct WindowQuality {
  WindowBounds bounds;
  int64_t key = 0;

  /// tuple coverage = produced tuple count / true tuple count, in [0, 1].
  double coverage = 0.0;

  /// value quality = 1 - min(1, |produced - true| / max(|true|, eps)):
  /// 1 when exact, 0 when off by 100% (or more) of the true magnitude.
  double value_quality = 0.0;

  /// Relative error |produced - true| / max(|true|, eps) (unclamped).
  double relative_error = 0.0;

  /// Response latency: emission stream time - window end. Negative never
  /// happens for watermark-fired windows.
  DurationUs response_latency_us = 0;
};

/// Aggregated quality over a run.
struct QualityReport {
  std::vector<WindowQuality> per_window;

  /// Windows the oracle has but the run never produced (fully missed).
  int64_t missed_windows = 0;
  /// Produced windows with no oracle counterpart (should be zero; indicates
  /// a bug or spurious emissions).
  int64_t spurious_windows = 0;

  DistributionSummary coverage;
  DistributionSummary value_quality;
  DistributionSummary relative_error;
  DistributionSummary response_latency_us;

  /// Fraction of (oracle) windows whose value quality >= threshold.
  double FractionMeeting(double threshold) const;

  /// Mean value quality with fully-missed windows counted as quality 0.
  double MeanQualityIncludingMissed() const;

  std::string ToString() const;
};

struct QualityEvalOptions {
  /// If true, judge each window by its *last* emission (final revision);
  /// otherwise by its *first* emission (what a consumer acting immediately
  /// would have seen).
  bool use_final_emission = false;

  /// Denominator floor for relative error (protects near-zero true values).
  double epsilon = 1e-9;
};

/// Scores produced results against the oracle.
QualityReport EvaluateQuality(const std::vector<WindowResult>& produced,
                              const OracleEvaluator& oracle,
                              const QualityEvalOptions& options = {});

/// Response latencies (emit - window end) of first emissions, microseconds.
std::vector<double> ResponseLatencies(const std::vector<WindowResult>& results);

}  // namespace streamq

#endif  // STREAMQ_QUALITY_QUALITY_METRICS_H_
