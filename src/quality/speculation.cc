#include "quality/speculation.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <map>
#include <utility>

namespace streamq {

namespace {

using WindowKey = std::pair<TimestampUs, int64_t>;

/// Last emission per (start, key), keyed map keeps (start, key) order.
std::map<WindowKey, WindowResult> CollapseToFinal(
    const std::vector<WindowResult>& log) {
  std::map<WindowKey, WindowResult> finals;
  for (const WindowResult& r : log) {
    WindowResult& slot = finals[{r.bounds.start, r.key}];
    // The log is in emission order, but merged parallel logs interleave
    // shards: keep the highest revision, breaking ties toward the later
    // log entry (identical payloads in practice).
    if (slot.tuple_count == 0 || r.revision_index >= slot.revision_index) {
      slot = r;
    }
  }
  return finals;
}

}  // namespace

std::vector<WindowResult> FinalResults(const std::vector<WindowResult>& log) {
  auto finals = CollapseToFinal(log);
  std::vector<WindowResult> out;
  out.reserve(finals.size());
  for (auto& [key, r] : finals) out.push_back(r);
  return out;
}

uint64_t FinalChecksum(const std::vector<WindowResult>& log) {
  constexpr uint64_t kOffset = 1469598103934665603ULL;
  constexpr uint64_t kPrime = 1099511628211ULL;
  uint64_t h = kOffset;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= kPrime;
    }
  };
  for (const WindowResult& r : FinalResults(log)) {
    mix(static_cast<uint64_t>(r.bounds.start));
    mix(static_cast<uint64_t>(r.key));
    mix(static_cast<uint64_t>(r.tuple_count));
    mix(std::bit_cast<uint64_t>(r.value));
  }
  return h;
}

SpeculationReport AnalyzeSpeculation(const std::vector<WindowResult>& log) {
  SpeculationReport report;
  report.emissions = static_cast<int64_t>(log.size());

  std::vector<double> first_latencies;
  std::map<WindowKey, WindowResult> finals = CollapseToFinal(log);
  for (const WindowResult& r : log) {
    if (r.is_revision) {
      ++report.amendments;
    } else {
      first_latencies.push_back(
          static_cast<double>(r.emit_stream_time - r.bounds.end));
    }
  }
  std::vector<double> settle_latencies;
  settle_latencies.reserve(finals.size());
  int64_t never_amended = 0;
  for (const auto& [key, r] : finals) {
    settle_latencies.push_back(
        static_cast<double>(r.emit_stream_time - r.bounds.end));
    if (r.revision_index == 0) ++never_amended;
  }
  report.windows = static_cast<int64_t>(finals.size());
  report.amend_rate =
      report.emissions > 0
          ? static_cast<double>(report.amendments) / report.emissions
          : 0.0;
  report.first_emission_final_rate =
      report.windows > 0
          ? static_cast<double>(never_amended) / report.windows
          : 0.0;
  report.first_latency_us = Summarize(first_latencies);
  report.settle_latency_us = Summarize(settle_latencies);
  return report;
}

std::string SpeculationReport::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "SpeculationReport{windows=%lld emissions=%lld "
                "amendments=%lld (rate=%.3f, first-final=%.3f) "
                "first_p50=%.0fus settle_p50=%.0fus}",
                static_cast<long long>(windows),
                static_cast<long long>(emissions),
                static_cast<long long>(amendments), amend_rate,
                first_emission_final_rate, first_latency_us.p50,
                settle_latency_us.p50);
  return buf;
}

}  // namespace streamq
