#include "quality/quality_metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

#include "common/logging.h"

namespace streamq {

double QualityReport::FractionMeeting(double threshold) const {
  const int64_t total =
      static_cast<int64_t>(per_window.size()) + missed_windows;
  if (total == 0) return 1.0;
  int64_t meeting = 0;
  for (const WindowQuality& w : per_window) {
    if (w.value_quality >= threshold) ++meeting;
  }
  return static_cast<double>(meeting) / static_cast<double>(total);
}

double QualityReport::MeanQualityIncludingMissed() const {
  const int64_t total =
      static_cast<int64_t>(per_window.size()) + missed_windows;
  if (total == 0) return 1.0;
  double sum = 0.0;
  for (const WindowQuality& w : per_window) sum += w.value_quality;
  return sum / static_cast<double>(total);
}

std::string QualityReport::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "QualityReport{windows=%zu missed=%lld spurious=%lld "
                "coverage_mean=%.4f value_quality_mean=%.4f "
                "rel_err_mean=%.4f resp_latency_mean=%s resp_latency_p95=%s}",
                per_window.size(), static_cast<long long>(missed_windows),
                static_cast<long long>(spurious_windows), coverage.mean,
                value_quality.mean, relative_error.mean,
                FormatDuration(static_cast<DurationUs>(
                                   response_latency_us.mean))
                    .c_str(),
                FormatDuration(static_cast<DurationUs>(
                                   response_latency_us.p95))
                    .c_str());
  return buf;
}

QualityReport EvaluateQuality(const std::vector<WindowResult>& produced,
                              const OracleEvaluator& oracle,
                              const QualityEvalOptions& options) {
  // Pick one emission per (window, key): first or last per options. Also
  // remember the first emission's time for latency (latency is always about
  // the first answer the consumer saw).
  struct Picked {
    const WindowResult* judged = nullptr;
    TimestampUs first_emit = 0;
  };
  std::map<std::pair<TimestampUs, int64_t>, Picked> picked;
  for (const WindowResult& r : produced) {
    auto [it, inserted] =
        picked.try_emplace({r.bounds.start, r.key}, Picked{&r, r.emit_stream_time});
    if (!inserted) {
      if (options.use_final_emission) it->second.judged = &r;
      it->second.first_emit =
          std::min(it->second.first_emit, r.emit_stream_time);
    }
  }

  QualityReport report;
  report.per_window.reserve(picked.size());
  std::vector<double> coverages, value_qualities, rel_errors, latencies;

  int64_t matched = 0;
  for (const auto& [sk, p] : picked) {
    const WindowResult* truth = oracle.Lookup(sk.first, sk.second);
    if (truth == nullptr) {
      ++report.spurious_windows;
      continue;
    }
    ++matched;
    const WindowResult& r = *p.judged;

    WindowQuality q;
    q.bounds = r.bounds;
    q.key = r.key;
    q.coverage =
        truth->tuple_count > 0
            ? std::min(1.0, static_cast<double>(r.tuple_count) /
                                static_cast<double>(truth->tuple_count))
            : 1.0;

    const double denom = std::max(std::fabs(truth->value), options.epsilon);
    double err;
    if (std::isnan(truth->value) && std::isnan(r.value)) {
      err = 0.0;  // Both empty-window sentinels: agreement.
    } else if (std::isnan(r.value) || std::isnan(truth->value)) {
      err = 1.0;
    } else {
      err = std::fabs(r.value - truth->value) / denom;
    }
    q.relative_error = err;
    q.value_quality = 1.0 - std::min(1.0, err);
    q.response_latency_us =
        std::max<DurationUs>(0, p.first_emit - r.bounds.end);

    coverages.push_back(q.coverage);
    value_qualities.push_back(q.value_quality);
    rel_errors.push_back(q.relative_error);
    latencies.push_back(static_cast<double>(q.response_latency_us));
    report.per_window.push_back(q);
  }

  report.missed_windows = oracle.total_windows() - matched;
  STREAMQ_CHECK_GE(report.missed_windows, 0);
  report.coverage = Summarize(coverages);
  report.value_quality = Summarize(value_qualities);
  report.relative_error = Summarize(rel_errors);
  report.response_latency_us = Summarize(latencies);
  return report;
}

std::vector<double> ResponseLatencies(
    const std::vector<WindowResult>& results) {
  std::vector<double> out;
  out.reserve(results.size());
  for (const WindowResult& r : results) {
    if (r.is_revision) continue;
    out.push_back(static_cast<double>(
        std::max<DurationUs>(0, r.emit_stream_time - r.bounds.end)));
  }
  return out;
}

}  // namespace streamq
