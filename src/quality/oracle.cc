#include "quality/oracle.h"

#include <memory>

#include "common/logging.h"

namespace streamq {

OracleEvaluator::OracleEvaluator(const std::vector<Event>& events,
                                 const WindowSpec& window,
                                 const AggregateSpec& aggregate) {
  STREAMQ_CHECK_OK(window.Validate());
  STREAMQ_CHECK_OK(aggregate.Validate());

  std::map<std::pair<TimestampUs, int64_t>, std::unique_ptr<Aggregator>> accs;
  for (const Event& e : events) {
    for (const WindowBounds& w : AssignWindows(window, e.event_time)) {
      auto& acc = accs[{w.start, e.key}];
      if (!acc) acc = MakeAggregator(aggregate);
      acc->Add(e.value);
    }
  }

  results_.reserve(accs.size());
  for (const auto& [sk, acc] : accs) {
    WindowResult r;
    r.bounds = WindowBounds{sk.first, sk.first + window.size};
    r.key = sk.second;
    r.value = acc->Value();
    r.tuple_count = acc->count();
    r.emit_stream_time = r.bounds.end;
    index_[sk] = results_.size();
    results_.push_back(r);
  }
}

const WindowResult* OracleEvaluator::Lookup(TimestampUs window_start,
                                            int64_t key) const {
  const auto it = index_.find({window_start, key});
  if (it == index_.end()) return nullptr;
  return &results_[it->second];
}

}  // namespace streamq
