#include "quality/value_error_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "quality/oracle.h"

namespace streamq {

std::string GammaFit::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "GammaFit{gamma=%.3f rms=%.4f points=%zu}",
                gamma, rms_residual, curve.size());
  return buf;
}

namespace {

/// Mean value quality when each tuple survives with probability `coverage`.
double ProbeCoverage(const std::vector<Event>& events,
                     const WindowSpec& window, const AggregateSpec& aggregate,
                     const OracleEvaluator& oracle, double coverage,
                     int trials, Rng* rng) {
  double total_quality = 0.0;
  int64_t total_windows = 0;
  for (int trial = 0; trial < trials; ++trial) {
    std::map<std::pair<TimestampUs, int64_t>, std::unique_ptr<Aggregator>>
        accs;
    for (const Event& e : events) {
      if (!rng->NextBool(coverage)) continue;
      for (const WindowBounds& w : AssignWindows(window, e.event_time)) {
        auto& acc = accs[{w.start, e.key}];
        if (!acc) acc = MakeAggregator(aggregate);
        acc->Add(e.value);
      }
    }
    for (const WindowResult& truth : oracle.results()) {
      const auto it = accs.find({truth.bounds.start, truth.key});
      double quality = 0.0;  // Fully-missed window.
      if (it != accs.end()) {
        const double produced = it->second->Value();
        if (std::isnan(truth.value) && std::isnan(produced)) {
          quality = 1.0;
        } else if (std::isnan(produced) || std::isnan(truth.value)) {
          quality = 0.0;
        } else {
          const double denom = std::max(std::fabs(truth.value), 1e-9);
          quality =
              1.0 - std::min(1.0, std::fabs(produced - truth.value) / denom);
        }
      }
      total_quality += quality;
      ++total_windows;
    }
  }
  return total_windows > 0 ? total_quality / static_cast<double>(total_windows)
                           : 1.0;
}

}  // namespace

GammaFit FitQualityGamma(const std::vector<Event>& events,
                         const WindowSpec& window,
                         const AggregateSpec& aggregate,
                         const GammaFitOptions& options) {
  STREAMQ_CHECK(!options.coverage_grid.empty());
  STREAMQ_CHECK_GT(options.trials, 0);

  const OracleEvaluator oracle(events, window, aggregate);
  Rng rng(options.seed);

  GammaFit fit;
  double num = 0.0, den = 0.0;
  for (double c : options.coverage_grid) {
    STREAMQ_CHECK_GT(c, 0.0);
    STREAMQ_CHECK_LE(c, 1.0);
    const double q = ProbeCoverage(events, window, aggregate, oracle, c,
                                   options.trials, &rng);
    fit.curve.push_back({c, q});
    if (c < 1.0 && q > 1e-6) {
      const double lc = std::log(c);
      const double lq = std::log(q);
      num += lc * lq;
      den += lc * lc;
    }
  }
  fit.gamma = den > 0.0 ? std::clamp(num / den, 0.05, 5.0) : 1.0;

  // Residual diagnostics.
  double sq = 0.0;
  int n = 0;
  for (const CoverageQualityPoint& p : fit.curve) {
    if (p.coverage < 1.0 && p.mean_quality > 1e-6) {
      const double resid =
          std::log(p.mean_quality) - fit.gamma * std::log(p.coverage);
      sq += resid * resid;
      ++n;
    }
  }
  fit.rms_residual = n > 0 ? std::sqrt(sq / n) : 0.0;
  return fit;
}

}  // namespace streamq
