#ifndef STREAMQ_QUALITY_SPECULATION_H_
#define STREAMQ_QUALITY_SPECULATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "window/window.h"

namespace streamq {

/// Analysis helpers for speculative emit-then-amend runs: collapse an
/// emission log (provisional results + amendment revisions) to the final
/// answer per window, checksum it for cross-engine identity gates, and
/// summarize the latency/amend-rate trade the mode makes.

/// The last emission (highest revision_index) for each (window start, key),
/// ordered by (start, key). This is the answer a consumer that waits out
/// all amendments observes — the series that must match a fully-buffered
/// run byte for byte.
std::vector<WindowResult> FinalResults(const std::vector<WindowResult>& log);

/// Order-insensitive FNV-1a checksum over FinalResults(log): each final
/// result contributes its window start, key, tuple count and value bits.
/// Two runs agree iff their final answers are bit-identical per window,
/// regardless of how many provisional revisions either emitted on the way.
uint64_t FinalChecksum(const std::vector<WindowResult>& log);

/// How a speculative emission log traded latency against amendments.
struct SpeculationReport {
  int64_t windows = 0;       // distinct (window, key) pairs emitted
  int64_t emissions = 0;     // total emissions, revisions included
  int64_t amendments = 0;    // emissions with is_revision set
  /// amendments / emissions — the fraction of published results that were
  /// later corrections (the controller's quality complement).
  double amend_rate = 0.0;
  /// Fraction of windows whose first emission was already final (never
  /// amended): the "speculation was right" rate.
  double first_emission_final_rate = 0.0;
  /// Response latency of *first* emissions: emit_stream_time - bounds.end.
  /// The latency a consumer acting on provisional answers experiences.
  DistributionSummary first_latency_us;
  /// Response latency of the *final* emission per window: how long until
  /// the answer stopped changing.
  DistributionSummary settle_latency_us;

  std::string ToString() const;
};

SpeculationReport AnalyzeSpeculation(const std::vector<WindowResult>& log);

}  // namespace streamq

#endif  // STREAMQ_QUALITY_SPECULATION_H_
