#ifndef STREAMQ_QUALITY_VALUE_ERROR_MODEL_H_
#define STREAMQ_QUALITY_VALUE_ERROR_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "agg/aggregate.h"
#include "stream/event.h"
#include "window/window.h"

namespace streamq {

/// Options for the offline gamma fit.
struct GammaFitOptions {
  /// Coverage levels to probe.
  std::vector<double> coverage_grid = {0.5,  0.6,  0.7,  0.8,
                                       0.9,  0.95, 0.99};
  /// Independent subsampling trials per coverage level.
  int trials = 3;
  uint64_t seed = 1234;
};

/// One probed point of the coverage→quality curve.
struct CoverageQualityPoint {
  double coverage = 0.0;
  double mean_quality = 0.0;
};

/// Result of fitting quality ≈ coverage^gamma.
struct GammaFit {
  double gamma = 1.0;
  /// Residual RMS of log-quality (fit diagnostics).
  double rms_residual = 0.0;
  std::vector<CoverageQualityPoint> curve;

  std::string ToString() const;
};

/// Empirically fits the PowerQualityModel exponent for `aggregate` on this
/// workload: subsamples each window's tuples at each coverage level,
/// measures the resulting value quality against the exact result, and
/// least-squares fits `log q = gamma * log c`.
///
/// This is the offline calibration that turns the generic quality-driven
/// buffer into an aggregate-aware one: feed the fitted gamma to
/// MakePowerQualityModel and AqKSlack will hit *value* quality targets, not
/// just coverage targets.
GammaFit FitQualityGamma(const std::vector<Event>& events,
                         const WindowSpec& window,
                         const AggregateSpec& aggregate,
                         const GammaFitOptions& options = {});

}  // namespace streamq

#endif  // STREAMQ_QUALITY_VALUE_ERROR_MODEL_H_
