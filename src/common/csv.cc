#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace streamq {
namespace csv {

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  for (char ch : line) {
    if (ch == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (ch != '\r') {
      field.push_back(ch);
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

std::string JoinLine(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += fields[i];
  }
  return out;
}

Result<std::vector<std::vector<std::string>>> ReadFile(const std::string& path,
                                                       bool skip_header) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::vector<std::vector<std::string>> rows;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (first && skip_header) {
      first = false;
      continue;
    }
    first = false;
    if (line.empty()) continue;
    rows.push_back(SplitLine(line));
  }
  return rows;
}

Status WriteFile(const std::string& path,
                 const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open for writing: " + path);
  }
  for (const auto& row : rows) {
    out << JoinLine(row) << "\n";
  }
  if (!out) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace csv
}  // namespace streamq
