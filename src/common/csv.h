#ifndef STREAMQ_COMMON_CSV_H_
#define STREAMQ_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace streamq {

/// Minimal CSV support for trace files. Fields must not contain commas or
/// newlines (trace fields are numeric); quoting is intentionally out of
/// scope.
namespace csv {

/// Splits one CSV line into fields.
std::vector<std::string> SplitLine(const std::string& line);

/// Joins fields into one CSV line (no trailing newline).
std::string JoinLine(const std::vector<std::string>& fields);

/// Reads an entire CSV file. If `skip_header` is true the first line is
/// dropped. Returns rows of fields.
Result<std::vector<std::vector<std::string>>> ReadFile(
    const std::string& path, bool skip_header);

/// Writes rows (with optional header as first row already included by the
/// caller) to `path`, overwriting it.
Status WriteFile(const std::string& path,
                 const std::vector<std::vector<std::string>>& rows);

}  // namespace csv
}  // namespace streamq

#endif  // STREAMQ_COMMON_CSV_H_
