#include "common/arena.h"

#include <cstdio>

namespace streamq {

std::string ArenaStats::ToString() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "ArenaStats{slabs: %lld acquired / %lld reused / %lld recycled / "
      "%lld dropped, batches: %lld shared / %lld reused, pools: %zu slabs + "
      "%zu batches}",
      static_cast<long long>(slab_acquires),
      static_cast<long long>(slab_reuses),
      static_cast<long long>(slab_recycles),
      static_cast<long long>(slab_drops),
      static_cast<long long>(batch_shares),
      static_cast<long long>(batch_reuses), free_slabs, free_batches);
  return buf;
}

}  // namespace streamq
